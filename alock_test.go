package alock_test

import (
	"sync/atomic"
	"testing"

	"alock"
)

func TestClusterCounter(t *testing.T) {
	c := alock.NewCluster(alock.ClusterConfig{Nodes: 2})
	l := c.AllocLock(0)
	counter := 0
	const threads, iters = 6, 500
	for i := 0; i < threads; i++ {
		c.Spawn(i%2, func(ctx alock.Ctx) {
			h := alock.NewHandle(ctx, alock.DefaultConfig())
			for k := 0; k < iters; k++ {
				h.Lock(l)
				counter++ // protected solely by the ALock
				h.Unlock(l)
			}
		})
	}
	c.Wait()
	if counter != threads*iters {
		t.Fatalf("counter = %d, want %d", counter, threads*iters)
	}
}

func TestClusterDefaults(t *testing.T) {
	c := alock.NewCluster(alock.ClusterConfig{})
	if c.Nodes() != 1 {
		t.Fatalf("default nodes = %d", c.Nodes())
	}
	l := c.AllocLock(0)
	if l.IsNull() {
		t.Fatal("AllocLock returned null")
	}
	done := make(chan struct{})
	c.Spawn(0, func(ctx alock.Ctx) {
		defer close(done)
		h := alock.NewHandle(ctx, alock.DefaultConfig())
		h.Lock(l)
		h.Unlock(l)
	})
	c.Wait()
	<-done
}

func TestLockTablePartition(t *testing.T) {
	c := alock.NewCluster(alock.ClusterConfig{Nodes: 4})
	lt := c.NewLockTable(40)
	if lt.Len() != 40 {
		t.Fatalf("Len = %d", lt.Len())
	}
	counts := map[int]int{}
	for i := 0; i < lt.Len(); i++ {
		counts[lt.HomeNode(i)]++
		if lt.Ptr(i).NodeID() != lt.HomeNode(i) {
			t.Fatal("pointer/home mismatch")
		}
	}
	for n := 0; n < 4; n++ {
		if counts[n] != 10 {
			t.Fatalf("node %d owns %d locks, want 10", n, counts[n])
		}
	}
}

func TestClassify(t *testing.T) {
	c := alock.NewCluster(alock.ClusterConfig{Nodes: 2})
	l := c.AllocLock(1)
	if alock.Classify(1, l) != alock.CohortLocal {
		t.Error("home-node access should be local")
	}
	if alock.Classify(0, l) != alock.CohortRemote {
		t.Error("cross-node access should be remote")
	}
}

func TestStopWindsDownThreads(t *testing.T) {
	c := alock.NewCluster(alock.ClusterConfig{Nodes: 1})
	l := c.AllocLock(0)
	var ops atomic.Int64
	for i := 0; i < 4; i++ {
		c.Spawn(0, func(ctx alock.Ctx) {
			h := alock.NewHandle(ctx, alock.DefaultConfig())
			for !ctx.Stopped() {
				h.Lock(l)
				ops.Add(1)
				h.Unlock(l)
			}
		})
	}
	for ops.Load() < 1000 {
	}
	c.Stop()
	c.Wait()
	if ops.Load() < 1000 {
		t.Fatal("threads made no progress")
	}
}

func TestRunExperimentPublic(t *testing.T) {
	r, err := alock.RunExperiment(alock.ExperimentConfig{
		Algorithm:      "alock",
		Nodes:          2,
		ThreadsPerNode: 3,
		Locks:          10,
		LocalityPct:    80,
		WarmupNS:       50_000,
		MeasureNS:      500_000,
		TargetOps:      3_000,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops == 0 || r.Throughput <= 0 {
		t.Fatalf("empty result: %+v", r)
	}
}

func TestRunExperimentRejectsBadConfig(t *testing.T) {
	_, err := alock.RunExperiment(alock.ExperimentConfig{
		Algorithm: "alock", Nodes: 99, ThreadsPerNode: 1, Locks: 1,
	})
	if err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestReadWordAfterWait(t *testing.T) {
	c := alock.NewCluster(alock.ClusterConfig{Nodes: 1})
	l := c.AllocLock(0)
	data := c.AllocLock(0) // reuse a line as plain data
	c.Spawn(0, func(ctx alock.Ctx) {
		h := alock.NewHandle(ctx, alock.DefaultConfig())
		h.Lock(l)
		ctx.Write(data, 1234)
		h.Unlock(l)
	})
	c.Wait()
	if got := c.ReadWord(data); got != 1234 {
		t.Fatalf("ReadWord = %d", got)
	}
}
