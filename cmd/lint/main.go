// Lint runs the repo's determinism analyzer suite (internal/analysis/rules)
// over the named packages and exits non-zero on any unsuppressed finding.
//
// Usage:
//
//	go run ./cmd/lint ./...              # plain file:line:col findings
//	go run ./cmd/lint -github ./...      # GitHub Actions ::error annotations
//	go run ./cmd/lint -json ./...        # machine-readable findings
//	go run ./cmd/lint -only guardflow,lockorder ./...
//	go run ./cmd/lint -skip allocfree ./...
//	go run ./cmd/lint -list              # describe the analyzers and exit
//
// Exit status: 0 clean, 1 findings, 2 usage or load errors.
//
// Findings are suppressed per site with `//lint:allow <analyzer> <reason>`
// on the offending line or the line above; the reason is mandatory and
// directives naming unknown analyzers are findings themselves. On a full
// run, well-formed waivers that no longer suppress anything are reported
// as stale; subset runs (-only/-skip) cannot tell a stale waiver from one
// aimed at a deselected analyzer, so they skip that check. See the
// README's "Determinism invariants" section for the rules.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"alock/internal/analysis"
	"alock/internal/analysis/rules"
)

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	github := flag.Bool("github", false, "emit findings as GitHub Actions error annotations")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list the analyzers and their rules, then exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	skip := flag.String("skip", "", "comma-separated analyzer names to exclude")
	dir := flag.String("dir", ".", "directory to resolve package patterns from")
	flag.Parse()

	full := rules.All()
	if *list {
		for _, a := range full {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite, err := selectAnalyzers(full, *only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	opts := analysis.Options{ReportStale: len(suite) == len(full)}
	for _, a := range full {
		opts.Known = append(opts.Known, a.Name)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader()
	pkgs, err := loader.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings, err := analysis.RunWith(pkgs, suite, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch {
	case *asJSON:
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	case *github:
		for _, f := range findings {
			fmt.Println(f.GitHub())
		}
	default:
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s) in %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "lint: %d package(s) clean\n", len(pkgs))
}

// selectAnalyzers applies -only then -skip to the full suite, rejecting
// names that are not part of it.
func selectAnalyzers(full []*analysis.Analyzer, only, skip string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer, len(full))
	for _, a := range full {
		byName[a.Name] = a
	}
	parse := func(flagName, csv string) (map[string]bool, error) {
		if csv == "" {
			return nil, nil
		}
		set := map[string]bool{}
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("-%s: unknown analyzer %q (see -list)", flagName, name)
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse("only", only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse("skip", skip)
	if err != nil {
		return nil, err
	}
	var suite []*analysis.Analyzer
	for _, a := range full {
		if onlySet != nil && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		suite = append(suite, a)
	}
	if len(suite) == 0 {
		return nil, fmt.Errorf("-only/-skip selected no analyzers")
	}
	return suite, nil
}
