// Lint runs the repo's determinism analyzer suite (internal/analysis/rules)
// over the named packages and exits non-zero on any unsuppressed finding.
//
// Usage:
//
//	go run ./cmd/lint ./...            # plain file:line:col findings
//	go run ./cmd/lint -github ./...    # GitHub Actions ::error annotations
//	go run ./cmd/lint -list            # describe the analyzers and exit
//
// Findings are suppressed per site with `//lint:allow <analyzer> <reason>`
// on the offending line or the line above; the reason is mandatory and
// directives naming unknown analyzers are findings themselves. See the
// README's "Determinism invariants" section for the rules.
package main

import (
	"flag"
	"fmt"
	"os"

	"alock/internal/analysis"
	"alock/internal/analysis/rules"
)

func main() {
	github := flag.Bool("github", false, "emit findings as GitHub Actions error annotations")
	list := flag.Bool("list", false, "list the analyzers and their rules, then exit")
	dir := flag.String("dir", ".", "directory to resolve package patterns from")
	flag.Parse()

	suite := rules.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader()
	pkgs, err := loader.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, f := range findings {
		if *github {
			fmt.Println(f.GitHub())
		} else {
			fmt.Println(f.String())
		}
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s) in %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "lint: %d package(s) clean\n", len(pkgs))
}
