// Command bench runs the repo's standing performance suite and writes a
// BENCH_*.json trajectory file: every case measured on three engines — the
// production engine (typed event heap, direct handoff), the container/heap
// oracle, and the sharded windowed-parallel executor — with events/sec,
// ns/event and allocs/event per case plus typed-vs-oracle and
// sharded-vs-typed speedups. Perf PRs check the next trajectory file in (see the
// README's Benchmarking section), so the sequence BENCH_0001.json,
// BENCH_0002.json, ... records the engine's performance history alongside
// the code that produced it.
//
// Usage:
//
//	go run ./cmd/bench -suite tiny -reps 3 -out BENCH_0007.json
//	go run ./cmd/bench -suite all -cpuprofile cpu.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"alock/internal/bench"
)

func main() {
	suite := flag.String("suite", "tiny", "case suite: tiny, paper or all")
	reps := flag.Int("reps", 3, "repetitions per case (best rep is reported)")
	out := flag.String("out", "", "output JSON path (empty: print to stdout)")
	list := flag.Bool("list", false, "list the suite's case names and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run")
	memprofile := flag.String("memprofile", "", "write a post-run heap profile")
	engShards := flag.Int("engine-shards", 0, "worker count for the sharded variant (0 = default 4)")
	flag.Parse()

	bench.SetShardedWorkers(*engShards)

	if *list {
		cases, err := bench.Suite(*suite)
		if err != nil {
			fatal(err)
		}
		for _, c := range cases {
			fmt.Println(c.Name)
		}
		return
	}

	stopProfiles, err := bench.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}

	id := "bench"
	if *out != "" {
		id = strings.TrimSuffix(filepath.Base(*out), ".json")
	}
	rep, err := bench.Run(*suite, id, *reps, func(m bench.Measurement) {
		fmt.Fprintf(os.Stderr, "%-32s %-7s %9.0f ev/s  %7.1f ns/ev  %.4f allocs/ev\n",
			m.Name, m.Engine, m.EventsPerSec, m.NSPerEvent, m.AllocsPerEvent)
	})
	if err != nil {
		fatal(err)
	}
	rep.Created = time.Now().UTC().Format(time.RFC3339)

	if err := stopProfiles(); err != nil {
		fatal(err)
	}

	fmt.Fprintln(os.Stderr)
	fmt.Fprintf(os.Stderr, "%-32s %12s %12s %12s %8s %8s\n",
		"case", "typed ev/s", "oracle ev/s", "shard ev/s", "vs orcl", "vs shard")
	for _, c := range rep.Comparisons {
		fmt.Fprintf(os.Stderr, "%-32s %12.0f %12.0f %12.0f %7.2fx %7.2fx\n",
			c.Name, c.TypedEventsPerSec, c.OracleEventsPerSec, c.ShardedEventsPerSec,
			c.Speedup, c.ShardedSpeedup)
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "\nwrote %s (%d cases, %d comparisons)\n",
		*out, len(rep.Cases), len(rep.Comparisons))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
