// Command figures regenerates every table and figure of the paper's
// evaluation (Section 6) on the deterministic simulator:
//
//	Table 1   — local/remote atomicity matrix
//	Figure 1  — loopback congestion of an RDMA spinlock on one node
//	Figure 4  — cohort budget study
//	Figure 5  — throughput grid (nodes x contention x locality x threads)
//	Figure 6  — latency CDF grid (10 nodes, 8 threads/node)
//	Figure RW — reader/writer, failure, transaction and lock-service
//	            tails over the rw/*, lease/*, fail/*, multi/*,
//	            deadlock/* and svc/* scenario families (beyond the
//	            paper)
//	tla       — exhaustive model check of the Appendix A specification
//	ablations — budget / cohort-split ablations (beyond the paper)
//
// Every sweep is enumerated up front and fanned out across the host's
// cores by internal/sweep; results are bit-identical at any -parallel
// setting (each run is an independent seeded simulation).
//
// Usage:
//
//	figures                         # everything, full scale
//	figures -quick                  # everything, reduced scale
//	figures -only fig5              # one artifact
//	figures -parallel 1             # serial execution (same results, slower)
//	figures -csv out.csv            # also dump CSV series for replotting
//	figures -list-scenarios         # named scenarios from the registry
//	figures -scenario hotkey-zipf   # run one named scenario instead
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"alock/internal/check"
	"alock/internal/harness"
	"alock/internal/report"
	"alock/internal/scenario"
	"alock/internal/sweep"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "reduced sweep (same structure, fewer points)")
		only      = flag.String("only", "", "comma-separated subset: table1,fig1,fig4,fig5,fig6,figrw,tla,ablations,headlines,qp")
		csvPath   = flag.String("csv", "", "also write CSV series to this file")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		parallel  = flag.Int("parallel", 0, "concurrent simulations (0 = all cores)")
		scenName  = flag.String("scenario", "", "run a named scenario from the registry instead of the figures")
		listScens = flag.Bool("list-scenarios", false, "list registered scenarios and exit")
		progress  = flag.Bool("progress", false, "print per-run completion progress to stderr")
		engShards = flag.Int("engine-shards", 0, "per-run engine shard workers (0 = serial engine, 1 = sharded-serial, >1 = windowed parallel)")
	)
	flag.Parse()

	runner := sweep.Runner{Parallel: *parallel}
	if *progress {
		runner.OnResult = func(p sweep.Progress) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] config %d done\n", p.Done, p.Total, p.Index)
		}
	}
	// withShards stamps the engine selection onto every config a driver
	// enumerates; results are bit-identical at any setting, only the
	// engine's internal concurrency changes.
	withShards := func(cfgs []harness.Config) []harness.Config {
		if *engShards > 0 {
			for i := range cfgs {
				cfgs[i].EngineShards = *engShards
			}
		}
		return cfgs
	}
	runMany := runner.RunMany()
	run := func(cfgs []harness.Config) []harness.Result {
		return runMany(withShards(cfgs))
	}
	out := os.Stdout

	if *listScens {
		listScenarios(out)
		return
	}

	var csv io.WriteCloser
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		csv = f
		defer f.Close()
	}

	scale := harness.Scale{Quick: *quick, Seed: *seed}

	if *scenName != "" {
		sc, ok := scenario.Get(*scenName)
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown scenario %q (try -list-scenarios)\n", *scenName)
			os.Exit(1)
		}
		cfgs := withShards(sc.Configs(scale))
		fmt.Fprintf(out, "running scenario %s (%d configs)...\n", sc.Name, len(cfgs))
		results, err := runner.Run(cfgs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		report.Sweep(out, fmt.Sprintf("Scenario %s: %s", sc.Name, sc.Description), results)
		if csv != nil {
			report.SweepCSV(csv, sc.Name, results)
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	if sel("table1") {
		fmt.Fprintln(out, "running Table 1 atomicity probes...")
		report.Table1(out, harness.Table1())
	}
	if sel("fig1") {
		fmt.Fprintln(out, "\nrunning Figure 1 (loopback congestion)...")
		pts := harness.Figure1(scale, run)
		report.Figure1(out, pts)
		if csv != nil {
			report.Figure1CSV(csv, pts)
		}
	}
	if sel("fig4") {
		fmt.Fprintln(out, "\nrunning Figure 4 (budget study)...")
		report.Figure4(out, harness.Figure4(scale, run))
	}
	var fig5 []harness.Fig5Panel
	if sel("fig5") || sel("headlines") {
		fmt.Fprintln(out, "\nrunning Figure 5 (throughput grid)... this is the big sweep")
		fig5 = harness.Figure5(scale, run)
	}
	if sel("fig5") {
		report.Figure5(out, fig5)
		report.Figure5Locality(out, harness.Figure5LocalitySweep(scale, run))
		if csv != nil {
			report.Figure5CSV(csv, fig5)
		}
	}
	if sel("fig6") {
		fmt.Fprintln(out, "\nrunning Figure 6 (latency CDFs)...")
		panels := harness.Figure6(scale, run)
		report.Figure6(out, panels)
		if csv != nil {
			report.Figure6CSV(csv, panels)
		}
	}
	if sel("figrw") {
		fmt.Fprintln(out, "\nrunning Figure RW (reader/writer and failure tails)...")
		groups := harness.FigureRW(scenario.RWFigureGroups(scale), run)
		report.FigureRW(out, groups)
		if csv != nil {
			report.FigureRWCSV(csv, groups)
		}
	}
	if sel("headlines") && fig5 != nil {
		report.Headlines(out, harness.Headlines(fig5))
	}
	if sel("qp") {
		fmt.Fprintln(out, "\nrunning QP-thrashing sweep...")
		report.QPThrashing(out, harness.QPThrashing(scale, run))
	}
	if sel("ablations") {
		fmt.Fprintln(out, "\nrunning ablations...")
		report.Ablations(out, harness.Ablations(scale, run))
	}
	if sel("tla") {
		fmt.Fprintln(out, "\nmodel-checking the Appendix A specification...")
		configs := []check.Config{
			{Procs: 2, Budget: 1}, {Procs: 2, Budget: 2}, {Procs: 3, Budget: 1},
		}
		if !*quick {
			configs = append(configs, check.Config{Procs: 3, Budget: 2})
		}
		for _, cfg := range configs {
			res, err := check.Run(cfg)
			if err != nil {
				fmt.Fprintf(out, "  procs=%d budget=%d: %v\n", cfg.Procs, cfg.Budget, err)
				continue
			}
			verdict := "OK (mutual exclusion, deadlock-freedom, starvation-freedom)"
			if !res.OK() {
				verdict = "VIOLATION: " + res.String()
			}
			fmt.Fprintf(out, "  procs=%d budget=%d: %d states, %d transitions — %s\n",
				cfg.Procs, cfg.Budget, res.States, res.Transitions, verdict)
		}
	}
}

func listScenarios(w io.Writer) {
	fmt.Fprintln(w, "registered scenarios:")
	for _, sc := range scenario.All() {
		fmt.Fprintf(w, "  %-28s %s\n", sc.Name, sc.Description)
	}
}
