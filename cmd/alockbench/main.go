// Command alockbench runs lock-table experiments on the deterministic RDMA
// cluster simulator: a single configuration assembled from flags, or a
// named scenario from the registry fanned out across all cores.
//
// Examples:
//
//	alockbench -algo alock -nodes 10 -threads 8 -locks 100 -locality 90
//	alockbench -algo spinlock -nodes 1 -threads 16 -locks 1000
//	alockbench -algo alock -local-budget 5 -remote-budget 20 -cdf
//	alockbench -algo alock -burst-on 150us -burst-off 100us
//	alockbench -algo rw-budget -read-pct 95
//	alockbench -algo rw-queue -read-pct 70 -read-budget 32 -write-budget 8
//	alockbench -algo mcs -lease-prob 0.02 -lease-hold 25us
//	alockbench -algo alock -acquire-timeout 30us
//	alockbench -algo rw-queue -acquire-timeout 30us -abandon-prob 0.01 -abandon-hold 200us
//	alockbench -algo mcs -pair-prob 0.1
//	alockbench -algo mcs -txn-locks 2 -txn-policy wait-die -txn-ring -acquire-timeout 20us
//	alockbench -algo rw-queue -txn-locks 3 -txn-policy timeout-backoff -acquire-timeout 20us -txn-backoff 10us
//	alockbench -algo alock -arrival-rate 2e6 -clients 1000000 -svc-shards 8 -placement hash -admission drop-head
//	alockbench -algo alock -arrival-rate 1.5e6 -zipf 1.5 -placement home -svc-rebalance
//	alockbench -list-scenarios
//	alockbench -scenario deadlock/dining -quick -parallel 8
//	alockbench -figure-rw -quick -csv-out figrw.csv
//	alockbench -scenario paper/fig5-high-contention -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Algorithms: alock, alock-nobudget, alock-symmetric, spinlock, mcs,
// filter, bakery, rw-budget, rw-wpref, rw-queue. Algorithms without native
// shared mode run -read-pct workloads with reads degraded to exclusive;
// algorithms without a native timed path (filter, bakery) overshoot
// -acquire-timeout deadlines — the acquisition completes but is counted as
// a late acquire (the grant landed past the deadline), and the unordered
// transaction policies reject them outright since their recovery depends
// on real timeouts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"alock/internal/bench"
	"alock/internal/harness"
	"alock/internal/report"
	"alock/internal/scenario"
	"alock/internal/sweep"
)

func main() {
	var (
		algo     = flag.String("algo", "alock", "lock algorithm")
		nodes    = flag.Int("nodes", 5, "cluster nodes (1..16)")
		threads  = flag.Int("threads", 8, "threads per node")
		locks    = flag.Int("locks", 100, "lock table size (paper: 20/100/1000)")
		locality = flag.Int("locality", 90, "percent of operations on node-local locks")
		localB   = flag.Int64("local-budget", 0, "ALock local budget (0 = paper default 5)")
		remoteB  = flag.Int64("remote-budget", 0, "ALock remote budget (0 = paper default 20)")
		readB    = flag.Int64("read-budget", 0, "RW locks: reader admissions per group/phase (0 = default 16)")
		writeB   = flag.Int64("write-budget", 0, "RW locks: writer admissions per phase (0 = default 4)")
		warmup   = flag.Duration("warmup", 400*time.Microsecond, "virtual warmup window")
		measure  = flag.Duration("measure", 4*time.Millisecond, "virtual measurement window")
		target   = flag.Int64("target-ops", 0, "stop after this many recorded ops (0 = run full window)")
		cs       = flag.Duration("cs", 0, "critical-section body duration")
		think    = flag.Duration("think", 0, "think time between operations")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		cdf      = flag.Bool("cdf", false, "dump the full latency CDF as CSV")
		asJSON   = flag.Bool("json", false, "emit the full result as JSON instead of text")
		zipf     = flag.Float64("zipf", 0, "Zipf skew s (>1) for hot-key popularity (0 = uniform)")
		burstOn  = flag.Duration("burst-on", 0, "bursty arrivals: on-phase duration (0 = steady)")
		burstOff = flag.Duration("burst-off", 0, "bursty arrivals: off-phase duration")
		homeSkew = flag.Int("home-skew", 0, "percent of the lock table homed on node 0 (0 = equal partition)")
		readPct  = flag.Int("read-pct", 0, "percent of operations acquiring shared/read mode (0 = exclusive only)")
		leaseP   = flag.Float64("lease-prob", 0, "per-op probability of a lease-style long hold (0 = off)")
		leaseH   = flag.Duration("lease-hold", 0, "duration of a lease hold")
		acqTO    = flag.Duration("acquire-timeout", 0, "give up acquisitions after this engine time (0 = block; switches queued locks to the timed protocol)")
		abandonP = flag.Float64("abandon-prob", 0, "per-op probability the holder crashes and is reclaimed by recovery (0 = off; requires -acquire-timeout)")
		abandonH = flag.Duration("abandon-hold", 0, "dead time an abandoned hold wedges its lock")
		pairP    = flag.Float64("pair-prob", 0, "per-op probability of an ordered two-lock transaction (0 = off)")
		txnLocks = flag.Int("txn-locks", 0, "locks per transaction: every op becomes a k-lock transaction (0 = off, k >= 2)")
		txnOrder = flag.String("txn-order", "", "transaction acquisition order: ordered|unordered (default: the policy's natural order)")
		txnPol   = flag.String("txn-policy", "", "deadlock policy: ordered|timeout-backoff|wait-die (default ordered)")
		txnBack  = flag.Duration("txn-backoff", 0, "base randomized backoff between transaction retries (timeout-backoff default: -acquire-timeout)")
		txnRing  = flag.Bool("txn-ring", false, "dining-philosophers lock selection: thread t takes locks (t+j) mod -locks")

		arrival  = flag.Float64("arrival-rate", 0, "open-loop offered load in ops/s: switch to the sharded lock service driven by Poisson arrivals (0 = closed loop)")
		clients  = flag.Int64("clients", 0, "open loop: logical client population drawn from per arrival (0 = default 1e6)")
		svcShard = flag.Int("svc-shards", 0, "open loop: lock-table service shards (0 = one per node)")
		place    = flag.String("placement", "", "open loop: key→shard placement, hash|home (default hash)")
		admit    = flag.String("admission", "", "open loop: full-queue admission policy, drop-tail|drop-head (default drop-tail)")
		queueCap = flag.Int("svc-queue-cap", 0, "open loop: per-shard admission queue capacity (0 = default 64)")
		rebal    = flag.Bool("svc-rebalance", false, "open loop: move hot keys off overloaded shards before the run")

		engShards = flag.Int("engine-shards", 0, "per-run engine shard workers (0 = serial engine, 1 = sharded-serial, >1 = windowed parallel)")

		scenName  = flag.String("scenario", "", "run a named scenario instead of a single config")
		listScens = flag.Bool("list-scenarios", false, "list registered scenarios and exit")
		parallel  = flag.Int("parallel", 0, "concurrent simulations for -scenario (0 = all cores)")
		quick     = flag.Bool("quick", false, "reduced scenario scale (fewer points)")
		figRW     = flag.Bool("figure-rw", false, "run the reader/writer + failure figure (rw/*, lease/*, fail/* scenario families)")
		csvPath   = flag.String("csv-out", "", "with -figure-rw: also write the figure's CSV series to this file")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole run")
		memprofile = flag.String("memprofile", "", "write a post-run heap profile")
	)
	flag.Parse()

	stopProfiles, err := bench.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alockbench: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "alockbench: %v\n", err)
			os.Exit(1)
		}
	}()

	if *listScens {
		fmt.Println("registered scenarios:")
		for _, sc := range scenario.All() {
			fmt.Printf("  %-28s %s\n", sc.Name, sc.Description)
		}
		return
	}

	if *figRW {
		runFigureRW(*quick, *seed, *parallel, *engShards, *csvPath)
		return
	}

	if *scenName != "" {
		runScenario(*scenName, *quick, *seed, *parallel, *engShards, *asJSON)
		return
	}

	cfg := harness.Config{
		Algorithm:      *algo,
		Nodes:          *nodes,
		ThreadsPerNode: *threads,
		Locks:          *locks,
		LocalityPct:    *locality,
		LocalBudget:    *localB,
		RemoteBudget:   *remoteB,
		ReadBudget:     *readB,
		WriteBudget:    *writeB,
		WarmupNS:       warmup.Nanoseconds(),
		MeasureNS:      measure.Nanoseconds(),
		TargetOps:      *target,
		CSWork:         *cs,
		Think:          *think,
		ZipfS:          *zipf,
		BurstOn:        *burstOn,
		BurstOff:       *burstOff,
		HomeSkewPct:    *homeSkew,
		ReadPct:        *readPct,
		LeaseProb:      *leaseP,
		LeaseHold:      *leaseH,
		AcquireTimeout: *acqTO,
		AbandonProb:    *abandonP,
		AbandonHold:    *abandonH,
		PairProb:       *pairP,
		TxnLocks:       *txnLocks,
		TxnOrder:       *txnOrder,
		TxnPolicy:      *txnPol,
		TxnBackoff:     *txnBack,
		TxnRing:        *txnRing,
		ArrivalRate:    *arrival,
		Clients:        *clients,
		SvcShards:      *svcShard,
		SvcPlacement:   *place,
		SvcQueueCap:    *queueCap,
		SvcAdmission:   *admit,
		SvcRebalance:   *rebal,
		EngineShards:   *engShards,
		Seed:           *seed,
	}
	res, err := harness.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alockbench: %v\n", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "alockbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	report.Summary(os.Stdout, res)
	if *cdf {
		fmt.Println("\nlatency_ns,cdf")
		for _, pt := range res.CDF {
			fmt.Printf("%d,%.6f\n", pt.ValueNS, pt.F)
		}
	}
}

// withShards stamps the engine-shard setting onto every expanded config so a
// whole scenario or figure runs on the selected engine.
func withShards(cfgs []harness.Config, shards int) []harness.Config {
	if shards > 0 {
		for i := range cfgs {
			cfgs[i].EngineShards = shards
		}
	}
	return cfgs
}

func runFigureRW(quick bool, seed int64, parallel, shards int, csvPath string) {
	run := sweep.Runner{Parallel: parallel}.RunMany()
	groups := harness.FigureRW(
		scenario.RWFigureGroups(harness.Scale{Quick: quick, Seed: seed}),
		func(cfgs []harness.Config) []harness.Result {
			return run(withShards(cfgs, shards))
		})
	report.FigureRW(os.Stdout, groups)
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alockbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		report.FigureRWCSV(f, groups)
	}
}

func runScenario(name string, quick bool, seed int64, parallel, shards int, asJSON bool) {
	sc, ok := scenario.Get(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "alockbench: unknown scenario %q (try -list-scenarios)\n", name)
		os.Exit(1)
	}
	cfgs := withShards(sc.Configs(harness.Scale{Quick: quick, Seed: seed}), shards)
	results, err := sweep.Runner{Parallel: parallel}.Run(cfgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alockbench: %v\n", err)
		os.Exit(1)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "alockbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	report.Sweep(os.Stdout, fmt.Sprintf("Scenario %s: %s", sc.Name, sc.Description), results)
}
