// Command alockbench runs a single lock-table experiment on the
// deterministic RDMA cluster simulator and prints its throughput, latency
// distribution and fabric statistics.
//
// Examples:
//
//	alockbench -algo alock -nodes 10 -threads 8 -locks 100 -locality 90
//	alockbench -algo spinlock -nodes 1 -threads 16 -locks 1000
//	alockbench -algo alock -local-budget 5 -remote-budget 20 -cdf
//
// Algorithms: alock, alock-nobudget, alock-symmetric, spinlock, mcs,
// filter, bakery.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"alock/internal/harness"
	"alock/internal/report"
)

func main() {
	var (
		algo     = flag.String("algo", "alock", "lock algorithm")
		nodes    = flag.Int("nodes", 5, "cluster nodes (1..16)")
		threads  = flag.Int("threads", 8, "threads per node")
		locks    = flag.Int("locks", 100, "lock table size (paper: 20/100/1000)")
		locality = flag.Int("locality", 90, "percent of operations on node-local locks")
		localB   = flag.Int64("local-budget", 0, "ALock local budget (0 = paper default 5)")
		remoteB  = flag.Int64("remote-budget", 0, "ALock remote budget (0 = paper default 20)")
		warmup   = flag.Duration("warmup", 400*time.Microsecond, "virtual warmup window")
		measure  = flag.Duration("measure", 4*time.Millisecond, "virtual measurement window")
		target   = flag.Int64("target-ops", 0, "stop after this many recorded ops (0 = run full window)")
		cs       = flag.Duration("cs", 0, "critical-section body duration")
		think    = flag.Duration("think", 0, "think time between operations")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		cdf      = flag.Bool("cdf", false, "dump the full latency CDF as CSV")
		asJSON   = flag.Bool("json", false, "emit the full result as JSON instead of text")
		zipf     = flag.Float64("zipf", 0, "Zipf skew s (>1) for hot-key popularity (0 = uniform)")
	)
	flag.Parse()

	cfg := harness.Config{
		Algorithm:      *algo,
		Nodes:          *nodes,
		ThreadsPerNode: *threads,
		Locks:          *locks,
		LocalityPct:    *locality,
		LocalBudget:    *localB,
		RemoteBudget:   *remoteB,
		WarmupNS:       warmup.Nanoseconds(),
		MeasureNS:      measure.Nanoseconds(),
		TargetOps:      *target,
		CSWork:         *cs,
		Think:          *think,
		ZipfS:          *zipf,
		Seed:           *seed,
	}
	res, err := harness.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alockbench: %v\n", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "alockbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	report.Summary(os.Stdout, res)
	if *cdf {
		fmt.Println("\nlatency_ns,cdf")
		for _, pt := range res.CDF {
			fmt.Printf("%d,%.6f\n", pt.ValueNS, pt.F)
		}
	}
}
