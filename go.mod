module alock

go 1.24
