// Package alock is a pure-Go implementation of the ALock — the asymmetric
// lock primitive for RDMA systems from Baran, Nelson-Slivon, Tseng and
// Palmieri, "ALock: Asymmetric Lock Primitive for RDMA Systems" (SPAA '24)
// — together with the complete substrate the paper's evaluation runs on:
// a simulated RDMA fabric (one-sided verbs, queue-pair context caching,
// loopback congestion, local/remote atomicity asymmetry), the two
// competitor locks (RDMA spinlock and RDMA MCS queue lock), a distributed
// lock table, and the full benchmark harness that regenerates every table
// and figure of the paper.
//
// # The problem
//
// RDMA lets a thread read, write and CAS memory on a remote machine
// without involving the remote CPU — but a remote CAS is not atomic with
// local CAS or local writes on the same 8-byte word (the paper's Table 1).
// Systems historically worked around this by forcing local threads through
// the RDMA loopback path, which congests the NIC, or through RPC handlers,
// which forfeits one-sided performance. The ALock instead composes two
// budgeted MCS queue locks — one for the local cohort, one for the remote
// cohort — under a modified Peterson's lock, so that each memory word is
// only ever RMW'd by one class of operation while reads and writes (which
// are atomic across classes) carry the cross-cohort handshake.
//
// # Using the lock
//
// A Cluster is a set of nodes with RDMA-accessible memory and real
// goroutine threads (the real-time engine):
//
//	c := alock.NewCluster(alock.ClusterConfig{Nodes: 2})
//	table := c.NewLockTable(16)
//	c.Spawn(0, func(ctx alock.Ctx) {
//	    h := alock.NewHandle(ctx, alock.DefaultConfig())
//	    l := table.Ptr(3)
//	    h.Lock(l)
//	    // ... critical section ...
//	    h.Unlock(l)
//	})
//	c.Wait()
//
// # Reproducing the paper
//
// Experiments run on the deterministic discrete-event engine instead of
// real goroutines; see RunExperiment and the cmd/figures binary. The
// examples/ directory contains runnable walkthroughs and EXPERIMENTS.md
// records paper-vs-measured results for every table and figure.
package alock

import (
	"math/rand"
	"time"

	"alock/internal/api"
	"alock/internal/core"
	"alock/internal/harness"
	"alock/internal/locks"
	"alock/internal/locktable"
	"alock/internal/mem"
	"alock/internal/ptr"
	"alock/internal/rt"
)

// Ptr is an RDMA pointer: 4 bits of node ID plus 60 bits of offset within
// that node's RDMA-accessible memory (the paper's rdma_ptr, Section 6).
type Ptr = ptr.Ptr

// Null is the nil RDMA pointer.
const Null = ptr.Null

// Ctx is a thread's handle onto the cluster: the six memory operations of
// the paper's system model (local Read/Write/CAS, remote RRead/RWrite/
// RCAS), fences, allocation, timing and a deterministic random stream.
type Ctx = api.Ctx

// Locker is a per-thread lock handle: Lock and Unlock bracket a critical
// section on the lock object at the given pointer.
type Locker = api.Locker

// RWLocker is a Locker with an additional shared (read) acquire mode:
// RLock holders may overlap each other but never a Lock holder.
type RWLocker = api.RWLocker

// --- Acquisition-token API ---
//
// TokenLocker is the redesigned lock API: acquisitions are first-class
// values (Guards) carrying a fencing token minted at grant time, acquire
// attempts can carry deadlines and report explicit outcomes, and releases
// are validated against the fence so a crashed holder's late unlock is
// rejected instead of corrupting the lock. Lock/Unlock call sites migrate
// by wrapping a TokenLocker in api.Blocking (or keep using the classic
// handles, which are built on the same per-acquisition paths).

// Mode selects the acquisition class (Exclusive or Shared).
type Mode = api.Mode

// Acquisition modes.
const (
	Exclusive = api.Exclusive
	Shared    = api.Shared
)

// Outcome is an acquisition attempt's result (Acquired, TimedOut, or
// AcquiredLate — granted, but past the requested deadline).
type Outcome = api.Outcome

// Acquisition outcomes.
const (
	Acquired     = api.Acquired
	TimedOut     = api.TimedOut
	AcquiredLate = api.AcquiredLate
)

// ReleaseOutcome is a release's result (Released or Fenced).
type ReleaseOutcome = api.ReleaseOutcome

// Release outcomes.
const (
	Released = api.Released
	Fenced   = api.Fenced
)

// AcquireOpts carries an optional engine-time deadline.
type AcquireOpts = api.AcquireOpts

// Guard is one live acquisition: lock, mode, fencing token.
type Guard = api.Guard

// TokenLocker is the acquisition-token lock interface.
type TokenLocker = api.TokenLocker

// FenceTable is a run's fencing authority: it mints monotonically
// increasing tokens at grant time and invalidates them at release or
// recovery. Share one table among all handles of a cluster.
type FenceTable = locks.FenceTable

// NewFenceTable returns an empty fencing authority.
func NewFenceTable() *FenceTable { return locks.NewFenceTable() }

// NewTokenHandle returns a thread's ALock handle speaking the
// acquisition-token API against the shared fencing authority. Set
// cfg.Timed to enable acquire deadlines (a run-wide mode: every handle of
// the cluster must agree).
func NewTokenHandle(ctx Ctx, cfg Config, ft *FenceTable) TokenLocker {
	return locks.TokenHandleFor(&locks.ALockProvider{Cfg: cfg}, ctx, ft)
}

// Cohort identifies the paper's two access cohorts.
type Cohort = api.Cohort

// Cohort values: an access is local when the target word lives on the
// accessing thread's own node, remote otherwise.
const (
	CohortLocal  = api.CohortLocal
	CohortRemote = api.CohortRemote
)

// Config selects the ALock cohort budgets (Section 6.1).
type Config = core.Config

// DefaultConfig returns the paper's chosen budgets: local 5, remote 20.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewHandle allocates a thread's ALock descriptors on its own node and
// returns its lock handle. The handle may be used with any number of
// ALocks (a thread waits on at most one at a time); it is not safe for
// concurrent use by multiple threads.
func NewHandle(ctx Ctx, cfg Config) *core.Handle { return core.NewHandle(ctx, cfg) }

// AllocLock allocates one zeroed, 64-byte ALock on the given node of a
// cluster. The zero state is an unlocked ALock.
func (c *Cluster) AllocLock(node int) Ptr { return c.space().AllocLine(node) }

// Classify reports which cohort a thread on threadNode joins when
// accessing the object at p.
func Classify(threadNode int, p Ptr) Cohort { return api.Classify(threadNode, p) }

// ClusterConfig configures a real-time cluster.
type ClusterConfig struct {
	// Nodes is the number of simulated machines (1..16; the pointer
	// format's 4-bit node ID is the paper's own limit).
	Nodes int
	// WordsPerNode sizes each node's RDMA-accessible region in 8-byte
	// words (default 1Mi words = 8 MiB).
	WordsPerNode int
	// Seed drives the per-thread random streams (default 1).
	Seed int64
	// TornRCAS enables Table 1 fidelity on the real-time engine: remote
	// CAS becomes read + window + write and is no longer atomic with
	// local operations. Leave it off unless you are demonstrating the
	// hazard; ALock itself is correct either way.
	TornRCAS bool
	// TornGap is the torn window width (default 200ns when TornRCAS).
	TornGap time.Duration
	// RemoteDelay, if set, spin-delays every remote verb for coarse
	// wall-clock realism in demos.
	RemoteDelay time.Duration
}

// Cluster is a running real-time cluster: nodes with RDMA-accessible
// memory and real goroutine threads.
type Cluster struct {
	eng   *rt.Engine
	nodes int
}

// NewCluster creates a cluster per cfg.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.WordsPerNode <= 0 {
		cfg.WordsPerNode = 1 << 20
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	eng := rt.New(cfg.Nodes, cfg.WordsPerNode, rt.Config{
		TornRCAS:    cfg.TornRCAS,
		TornGap:     cfg.TornGap,
		RemoteDelay: cfg.RemoteDelay,
	}, cfg.Seed)
	return &Cluster{eng: eng, nodes: cfg.Nodes}
}

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return c.nodes }

// Spawn starts a goroutine as a thread on the given node.
func (c *Cluster) Spawn(node int, fn func(Ctx)) { c.eng.Spawn(node, fn) }

// Stop asks all threads to wind down (ctx.Stopped() turns true).
func (c *Cluster) Stop() { c.eng.Stop() }

// Wait blocks until every spawned thread has returned.
func (c *Cluster) Wait() { c.eng.Wait() }

// ReadWord reads a word of cluster memory from outside any thread (for
// inspecting results after Wait).
func (c *Cluster) ReadWord(p Ptr) uint64 { return *c.space().WordAddr(p) }

func (c *Cluster) space() *mem.Space { return c.eng.Space() }

// LockTable is the paper's evaluation application: n locks partitioned
// equally across the cluster's nodes.
type LockTable struct {
	t *locktable.Table
}

// NewLockTable allocates a lock table of n locks over this cluster.
func (c *Cluster) NewLockTable(n int) *LockTable {
	return &LockTable{t: locktable.New(c.space(), n)}
}

// Len returns the number of locks.
func (lt *LockTable) Len() int { return lt.t.Len() }

// Ptr returns the pointer of lock i.
func (lt *LockTable) Ptr(i int) Ptr { return lt.t.Ptr(i) }

// HomeNode returns the node storing lock i.
func (lt *LockTable) HomeNode(i int) int { return lt.t.HomeNode(i) }

// Pick draws a lock index for a thread on `node` with the given locality
// percentage (the paper's workload generator).
func (lt *LockTable) Pick(rng *rand.Rand, node, localityPct int) int {
	return lt.t.Pick(rng, node, localityPct)
}

// --- Experiments (deterministic simulator) ---

// ExperimentConfig configures one simulated experiment; see
// internal/harness for field semantics. Algorithm is one of: alock,
// alock-nobudget, alock-symmetric, spinlock, mcs, filter, bakery.
type ExperimentConfig = harness.Config

// ExperimentResult is one experiment's measured outcome.
type ExperimentResult = harness.Result

// RunExperiment executes a lock-table experiment on the deterministic
// discrete-event engine and returns throughput, latency distribution and
// fabric statistics. Identical configs (including Seed) produce identical
// results.
func RunExperiment(cfg ExperimentConfig) (ExperimentResult, error) {
	return harness.Run(cfg)
}
