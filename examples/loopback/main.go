// Loopback: reproduce the paper's Section 2 motivation experiment
// (Figure 1) through the public API.
//
// An RDMA spinlock runs over 1000 locks on a single machine — no logical
// contention at all — with every operation forced through the local RNIC's
// loopback path, exactly as loopback-based systems do. Throughput peaks at
// a handful of threads and then *declines*: the loopback traffic drains
// PCIe bandwidth, the RX buffer accumulates, and every CAS slows down.
// This is the pathology ALock eliminates by letting local threads use
// shared memory.
//
//	go run ./examples/loopback
package main

import (
	"fmt"
	"strings"

	"alock"
)

func main() {
	fmt.Println("RDMA spinlock, 1000 locks, 1 node, all operations via loopback")
	fmt.Println("(deterministic simulation; the paper's Figure 1)")
	fmt.Println()
	fmt.Printf("%-8s %-14s %-12s %s\n", "threads", "ops/sec", "p99 latency", "")

	var peak float64
	for _, threads := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		res, err := alock.RunExperiment(alock.ExperimentConfig{
			Algorithm:      "spinlock",
			Nodes:          1,
			ThreadsPerNode: threads,
			Locks:          1000,
			LocalityPct:    100,
			TargetOps:      30_000,
			Seed:           1,
		})
		if err != nil {
			panic(err)
		}
		if res.Throughput > peak {
			peak = res.Throughput
		}
		bar := strings.Repeat("#", int(res.Throughput/25_000))
		fmt.Printf("%-8d %-14.0f %-12s %s\n",
			threads, res.Throughput, fmt.Sprintf("%.1fus", float64(res.Latency.P99NS)/1000), bar)
	}
	fmt.Println()
	fmt.Printf("peak throughput %.0f ops/s is reached at a few threads;\n", peak)
	fmt.Println("adding more only congests the card — the loopback pitfall.")
}
