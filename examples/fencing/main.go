// Fencing: crash a lock holder and watch the acquisition-token API keep
// the system safe.
//
// Two workers on a two-node cluster contend for one ALock through the
// token API. Worker 1 acquires and then "crashes" mid-critical-section:
// it stops responding for two milliseconds while still holding the lock.
// Worker 2's first attempt carries a deadline and times out — the distinct
// TimedOut outcome, not a hang. When recovery reclaims the crashed hold
// (TokenLocker.Abandon), worker 2's retry succeeds and its guard carries a
// strictly larger fencing token than the crashed one. Finally the crashed
// worker comes back and tries its release anyway — and the fence rejects
// it: the lock worker 2 now holds is untouched.
//
//	go run ./examples/fencing
package main

import (
	"fmt"
	"time"

	"alock"
)

func main() {
	cluster := alock.NewCluster(alock.ClusterConfig{Nodes: 2})
	lock := cluster.AllocLock(0)
	fence := alock.NewFenceTable()

	cfg := alock.DefaultConfig()
	cfg.Timed = true // acquire deadlines need the timed handoff protocol

	done := make(chan struct{})
	held := make(chan struct{}) // closed once worker 1 holds the lock

	// Worker 1: acquires, crashes, is reclaimed, then releases too late.
	cluster.Spawn(0, func(ctx alock.Ctx) {
		h := alock.NewTokenHandle(ctx, cfg, fence)
		g, out := h.Acquire(lock, alock.Exclusive, alock.AcquireOpts{})
		if out != alock.Acquired {
			panic("deadline-free acquire did not succeed")
		}
		fmt.Printf("worker 1: acquired, fencing token %d — and now it wedges\n", g.Token)
		close(held)

		ctx.Work(2 * time.Millisecond) // the crash: holding, not releasing

		h.Abandon(g) // recovery reclaims the hold; the token is dead
		fmt.Println("recovery : reclaimed worker 1's hold, token revoked")

		ctx.Work(500 * time.Microsecond)
		if h.Release(g) == alock.Fenced {
			fmt.Println("worker 1: woke up and tried to unlock — FENCED, lock untouched")
		} else {
			panic("late release was not fenced")
		}
	})

	// Worker 2: times out against the wedged lock, then wins after
	// recovery. It runs on the lock's home node, joining the same cohort
	// queue as the crashed holder — a lone waiter in the *other* cohort
	// would become that cohort's leader, and leaders are committed (the
	// Peterson wait is budget-bounded in healthy runs), so it would ride
	// out the wedge instead of timing out.
	cluster.Spawn(0, func(ctx alock.Ctx) {
		defer close(done)
		h := alock.NewTokenHandle(ctx, cfg, fence)
		<-held // wait until worker 1 actually holds the lock (the rt
		// engine runs on wall time, so a blind sleep here races
		// worker 1's acquisition on a loaded host)

		deadline := ctx.Now() + (500 * time.Microsecond).Nanoseconds()
		if g, out := h.Acquire(lock, alock.Exclusive, alock.AcquireOpts{DeadlineNS: deadline}); out != alock.TimedOut {
			h.Release(g) // unexpectedly granted: put it back before failing
			panic("expected the first attempt to time out")
		}
		fmt.Println("worker 2: gave up at its deadline (TimedOut) — no hang, no corruption")

		g, out := h.Acquire(lock, alock.Exclusive, alock.AcquireOpts{}) // blocks until recovery
		if out != alock.Acquired {
			panic("post-recovery acquire did not succeed")
		}
		fmt.Printf("worker 2: acquired after recovery, fencing token %d (larger = newer)\n", g.Token)
		ctx.Work(100 * time.Microsecond)
		if h.Release(g) != alock.Released {
			panic("live release rejected")
		}
		fmt.Println("worker 2: released cleanly")
	})

	<-done
	cluster.Stop()
	cluster.Wait()
}
