// Fairness: watch the budget machinery arbitrate between the cohorts.
//
// One ALock lives on node 0. Three threads on node 0 (the local cohort)
// and three threads on node 1 (the remote cohort) contend for it
// continuously on the deterministic simulator, and every critical section
// appends its cohort to a shared admission log. The demo prints the
// admission sequence, its run-length statistics, and what happens when the
// budget is removed — making the Section 5 fairness argument visible:
//
//   - with budgets (local 3 / remote 4), cohorts alternate in runs bounded
//     by roughly their budget;
//
//   - with the budget ablated (effectively infinite), a cohort with a
//     steady supply of waiters passes the lock internally indefinitely and
//     the other cohort is shut out for the duration.
//
//     go run ./examples/fairness
package main

import (
	"fmt"
	"strings"

	"alock/internal/api"
	"alock/internal/core"
	"alock/internal/model"
	"alock/internal/sim"
)

const (
	threadsPerCohort = 3
	itersPerThread   = 250
)

// run contends both cohorts on one lock under the given budgets and
// returns the admission sequence (0 = local cohort, 1 = remote cohort).
func run(cfg core.Config) []int {
	e := sim.New(2, 1<<16, model.CX3(), 42)
	lock := e.Space().AllocLine(0)

	var log []int
	for node := 0; node < 2; node++ {
		for t := 0; t < threadsPerCohort; t++ {
			e.Spawn(node, func(ctx api.Ctx) {
				h := core.NewHandle(ctx, cfg)
				cohort := int(api.Classify(ctx.NodeID(), lock))
				for i := 0; i < itersPerThread; i++ {
					h.Lock(lock)
					log = append(log, cohort) // inside the CS: admission order
					h.Unlock(lock)
				}
			})
		}
	}
	e.Run(1 << 62)
	return log
}

// runStats compresses the admission sequence into run-length statistics.
func runStats(log []int) (maxRun [2]int, switches int) {
	cur, n := -1, 0
	for _, c := range log {
		if c == cur {
			n++
		} else {
			if cur >= 0 {
				switches++
			}
			cur, n = c, 1
		}
		if n > maxRun[cur] {
			maxRun[cur] = n
		}
	}
	return maxRun, switches
}

func sketch(log []int, width int) string {
	if len(log) == 0 {
		return ""
	}
	var b strings.Builder
	step := len(log) / width
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(log); i += step {
		if log[i] == 0 {
			b.WriteByte('L')
		} else {
			b.WriteByte('r')
		}
	}
	return b.String()
}

func main() {
	fmt.Printf("one ALock, %d local + %d remote threads, %d acquisitions each\n\n",
		threadsPerCohort, threadsPerCohort, itersPerThread)

	budgeted := run(core.Config{LocalBudget: 3, RemoteBudget: 4})
	maxRun, switches := runStats(budgeted)
	fmt.Println("with budgets (local 3, remote 4):")
	fmt.Printf("  admissions (sampled): %s\n", sketch(budgeted, 64))
	fmt.Printf("  longest local run %d, longest remote run %d, %d cohort switches\n\n",
		maxRun[0], maxRun[1], switches)

	nobudget := run(core.Config{LocalBudget: 1 << 40, RemoteBudget: 1 << 40})
	maxRunNB, switchesNB := runStats(nobudget)
	fmt.Println("budget ablated (effectively infinite):")
	fmt.Printf("  admissions (sampled): %s\n", sketch(nobudget, 64))
	fmt.Printf("  longest local run %d, longest remote run %d, %d cohort switches\n\n",
		maxRunNB[0], maxRunNB[1], switchesNB)

	fmt.Println("the budget bounds how long one cohort may monopolize the lock;")
	fmt.Println("without it, whoever holds the MCS queue keeps passing internally.")
}
