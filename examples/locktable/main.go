// Locktable: the paper's evaluation application as a runnable demo.
//
// A 4-node cluster hosts a 64-entry distributed lock table. Each node runs
// four worker threads that pick locks with 90% locality — the regime the
// ALock is designed for — and perform lock/unlock operations for a fixed
// wall-clock duration. Remote verbs carry an injected 2µs delay so the
// local/remote asymmetry is visible in real time.
//
// The demo then prints per-algorithm wall-clock throughput for the ALock
// and for the loopback-based RDMA MCS competitor, echoing (coarsely, in
// real time rather than in the calibrated simulator) the Figure 5 result
// that ALock's shared-memory local path dominates when most operations are
// local.
//
//	go run ./examples/locktable
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"alock"
	"alock/internal/locks"
)

const (
	nodes          = 4
	threadsPerNode = 4
	tableSize      = 64
	localityPct    = 90
	runFor         = 500 * time.Millisecond
)

func run(algorithm string) (opsPerSec float64) {
	cluster := alock.NewCluster(alock.ClusterConfig{
		Nodes:       nodes,
		RemoteDelay: 2 * time.Microsecond, // make verbs cost real time
	})
	table := cluster.NewLockTable(tableSize)

	var ops atomic.Int64
	for node := 0; node < nodes; node++ {
		for t := 0; t < threadsPerNode; t++ {
			cluster.Spawn(node, func(ctx alock.Ctx) {
				var h alock.Locker
				switch algorithm {
				case "alock":
					h = alock.NewHandle(ctx, alock.DefaultConfig())
				case "mcs":
					h = locks.NewMCSHandle(ctx)
				}
				for !ctx.Stopped() {
					idx := table.Pick(ctx.Rand(), ctx.NodeID(), localityPct)
					l := table.Ptr(idx)
					h.Lock(l)
					// Tiny critical section: touch the lock's line.
					h.Unlock(l)
					ops.Add(1)
				}
			})
		}
	}
	start := time.Now() //lint:allow detrand real-time demo: wall-clock throughput is the point
	time.Sleep(runFor)
	cluster.Stop()
	cluster.Wait()
	return float64(ops.Load()) / time.Since(start).Seconds() //lint:allow detrand real-time demo: wall-clock throughput is the point
}

func main() {
	fmt.Printf("distributed lock table: %d nodes x %d threads, %d locks, %d%% locality\n",
		nodes, threadsPerNode, tableSize, localityPct)
	alockTput := run("alock")
	fmt.Printf("  alock: %10.0f ops/s  (local cohort uses shared memory — no loopback)\n", alockTput)
	mcsTput := run("mcs")
	fmt.Printf("  mcs  : %10.0f ops/s  (every access pays the RDMA/loopback delay)\n", mcsTput)
	if mcsTput > 0 {
		fmt.Printf("  alock/mcs = %.1fx\n", alockTput/mcsTput)
	}
}
