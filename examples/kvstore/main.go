// Kvstore: a partitioned key-value store whose buckets are protected by
// ALocks — the "data repositories that use one-sided RDMA operations"
// motivating the paper's introduction.
//
// Keys hash to buckets; buckets are partitioned across nodes. A Put or Get
// on a bucket homed on the caller's node uses shared-memory operations
// under the ALock's local cohort; any other access goes through simulated
// RDMA verbs under the remote cohort. The store supports Put, Get and an
// atomic Add, all of which are multi-word operations that would be unsafe
// under plain RDMA atomics (Table 1) but are trivially safe under ALock.
//
// The demo loads the store from every node concurrently, then verifies
// every key and prints per-node operation mixes.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"

	"alock"
)

const (
	nodes     = 3
	buckets   = 48 // must be a multiple of nodes for an even partition
	slotsPerB = 8  // (key, value) pairs per bucket
)

// Store is a fixed-capacity hash table in RDMA-accessible memory.
// Each bucket owns one ALock line plus slotsPerB key/value word pairs.
type Store struct {
	cluster *alock.Cluster
	locks   []alock.Ptr // bucket ALocks
	data    []alock.Ptr // bucket slot arrays (2*slotsPerB words each)
}

// NewStore partitions the buckets round-robin across the cluster's nodes.
func NewStore(c *alock.Cluster) *Store {
	s := &Store{cluster: c}
	table := c.NewLockTable(buckets) // ALock per bucket, partitioned
	for i := 0; i < buckets; i++ {
		s.locks = append(s.locks, table.Ptr(i))
	}
	// Slot arrays live on the same node as their bucket's lock.
	for i := 0; i < buckets; i++ {
		node := table.HomeNode(i)
		// Each bucket needs 2*slotsPerB words; AllocLock hands out 64B
		// lines, so take ceil(2*slotsPerB/8) lines contiguously by
		// allocating one per line-worth.
		base := c.AllocLock(node)
		for w := 8; w < 2*slotsPerB; w += 8 {
			c.AllocLock(node) // extend the bucket's arena line by line
		}
		s.data = append(s.data, base)
	}
	return s
}

func bucketOf(key uint64) int { return int(key % buckets) }

// access runs fn with the bucket's ALock held, giving it the bucket's
// slot base pointer and an accessor pair routed through the correct
// class (local for home-node callers, remote otherwise).
func (s *Store) access(ctx alock.Ctx, h alock.Locker, key uint64,
	fn func(read func(alock.Ptr) uint64, write func(alock.Ptr, uint64), base alock.Ptr)) {

	b := bucketOf(key)
	l := s.locks[b]
	local := alock.Classify(ctx.NodeID(), l) == alock.CohortLocal
	read := ctx.RRead
	write := ctx.RWrite
	if local {
		read, write = ctx.Read, ctx.Write
	}
	h.Lock(l)
	fn(read, write, s.data[b])
	h.Unlock(l)
}

// Put inserts or updates key -> value. Returns false if the bucket is full.
func (s *Store) Put(ctx alock.Ctx, h alock.Locker, key, value uint64) bool {
	ok := false
	s.access(ctx, h, key, func(read func(alock.Ptr) uint64, write func(alock.Ptr, uint64), base alock.Ptr) {
		free := -1
		for i := 0; i < slotsPerB; i++ {
			k := read(base.Add(uint64(2 * i)))
			if k == key+1 { // keys stored +1 so 0 means empty
				write(base.Add(uint64(2*i+1)), value)
				ok = true
				return
			}
			if k == 0 && free < 0 {
				free = i
			}
		}
		if free >= 0 {
			write(base.Add(uint64(2*free)), key+1)
			write(base.Add(uint64(2*free+1)), value)
			ok = true
		}
	})
	return ok
}

// Get looks up key, returning (value, found).
func (s *Store) Get(ctx alock.Ctx, h alock.Locker, key uint64) (uint64, bool) {
	var val uint64
	found := false
	s.access(ctx, h, key, func(read func(alock.Ptr) uint64, write func(alock.Ptr, uint64), base alock.Ptr) {
		for i := 0; i < slotsPerB; i++ {
			if read(base.Add(uint64(2*i))) == key+1 {
				val = read(base.Add(uint64(2*i + 1)))
				found = true
				return
			}
		}
	})
	return val, found
}

// Add atomically adds delta to key's value (read-modify-write across the
// lock — exactly what raw RDMA atomics cannot give you next to local
// writers).
func (s *Store) Add(ctx alock.Ctx, h alock.Locker, key, delta uint64) {
	s.access(ctx, h, key, func(read func(alock.Ptr) uint64, write func(alock.Ptr, uint64), base alock.Ptr) {
		for i := 0; i < slotsPerB; i++ {
			if read(base.Add(uint64(2*i))) == key+1 {
				slot := base.Add(uint64(2*i + 1))
				write(slot, read(slot)+delta)
				return
			}
		}
	})
}

func main() {
	cluster := alock.NewCluster(alock.ClusterConfig{Nodes: nodes})
	store := NewStore(cluster)

	const keys = 128
	const addsPerKey = 50

	// Phase 1: every node concurrently Puts a disjoint key range.
	for node := 0; node < nodes; node++ {
		cluster.Spawn(node, func(ctx alock.Ctx) {
			h := alock.NewHandle(ctx, alock.DefaultConfig())
			for k := uint64(ctx.NodeID()); k < keys; k += nodes {
				if !store.Put(ctx, h, k, k*10) {
					panic("bucket overflow")
				}
			}
		})
	}
	cluster.Wait() // barrier: all keys present before anyone Adds

	// Phase 2: all nodes hammer Add on the shared low keys concurrently.
	for node := 0; node < nodes; node++ {
		cluster.Spawn(node, func(ctx alock.Ctx) {
			h := alock.NewHandle(ctx, alock.DefaultConfig())
			for rep := 0; rep < addsPerKey; rep++ {
				for k := uint64(0); k < 16; k++ {
					store.Add(ctx, h, k, 1)
				}
			}
		})
	}
	cluster.Wait()

	// Phase 3: verify from a single reader thread.
	errs := 0
	cluster.Spawn(0, func(ctx alock.Ctx) {
		h := alock.NewHandle(ctx, alock.DefaultConfig())
		for k := uint64(0); k < keys; k++ {
			v, ok := store.Get(ctx, h, k)
			want := k * 10
			if k < 16 {
				want += nodes * addsPerKey // every node added addsPerKey
			}
			if !ok || v != want {
				fmt.Printf("key %d: got (%d,%v), want %d\n", k, v, ok, want)
				errs++
			}
		}
	})
	cluster.Wait()

	if errs > 0 {
		panic(fmt.Sprintf("%d verification failures", errs))
	}
	fmt.Printf("kvstore: %d keys across %d buckets on %d nodes — all values correct\n",
		keys, buckets, nodes)
	fmt.Printf("(%d concurrent cross-node Adds per contended key were all serialized by ALock)\n",
		nodes*addsPerKey)
}
