// Quickstart: protect a shared counter with an ALock on a two-node
// cluster.
//
// Six goroutine "threads" — three on each node — increment one plain Go
// integer 10,000 times each. The counter is protected only by the ALock:
// threads on node 0 (where the lock lives) take the local cohort path with
// shared-memory operations, threads on node 1 take the remote cohort path
// with simulated RDMA verbs, and the final count proves every critical
// section was exclusive.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"alock"
)

func main() {
	cluster := alock.NewCluster(alock.ClusterConfig{Nodes: 2})

	// One ALock, homed on node 0. Its 64-byte line starts zeroed, which is
	// the unlocked state.
	lock := cluster.AllocLock(0)

	const threadsPerNode = 3
	const itersPerThread = 10_000
	counter := 0 // deliberately unsynchronized: the ALock is the only guard

	for node := 0; node < cluster.Nodes(); node++ {
		for t := 0; t < threadsPerNode; t++ {
			cluster.Spawn(node, func(ctx alock.Ctx) {
				handle := alock.NewHandle(ctx, alock.DefaultConfig())
				for i := 0; i < itersPerThread; i++ {
					handle.Lock(lock)
					counter++
					handle.Unlock(lock)
				}
			})
		}
	}
	cluster.Wait()

	want := cluster.Nodes() * threadsPerNode * itersPerThread
	fmt.Printf("counter = %d (want %d)\n", counter, want)
	if counter != want {
		panic("mutual exclusion violated")
	}
	fmt.Println("every increment survived: the local and remote cohorts were mutually exclusive")
}
