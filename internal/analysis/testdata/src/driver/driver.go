// Package drivertest is a fixture for the driver's //lint:allow handling.
package drivertest

func one() {}

//lint:allow flagfuncs driver test: suppressed by a line-above directive
func two() {}

func three() {} //lint:allow flagfuncs driver test: suppressed by a trailing directive

func four() {}

//lint:allow flagfuncs
var _ = 0

//lint:allow nosuchanalyzer a reason does not save an unknown name
var _ = 1
