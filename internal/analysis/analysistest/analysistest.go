// Package analysistest is a golden-file test harness for the determinism
// lint suite, mirroring golang.org/x/tools/go/analysis/analysistest on the
// repo's stdlib-only framework.
//
// A fixture is a directory of Go files (under testdata, invisible to the
// go tool) checked as one package. Expected findings are written as
// trailing comments on the offending line:
//
//	rand.Intn(10) // want `rand\.Intn is nondeterministic`
//
// Each `want` takes one or more quoted or backquoted regular expressions;
// every expectation must be matched by a distinct finding on that line and
// every finding must match an expectation. Driver-level findings
// (malformed //lint:allow directives) participate like any other, so
// suppression behavior is testable. Fixtures may import real module
// packages (alock/internal/api, ...): the harness type-checks the whole
// module once per process and resolves fixture imports against it.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"alock/internal/analysis"
)

var (
	loadOnce sync.Once
	loader   *analysis.Loader
	loadErr  error
)

// sharedLoader type-checks the module once per process so every fixture
// run reuses the same dependency packages.
func sharedLoader() (*analysis.Loader, error) {
	loadOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			loadErr = err
			return
		}
		loader = analysis.NewLoader()
		_, loadErr = loader.Load(root, "./...")
	})
	return loader, loadErr
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysistest: no go.mod above working directory")
		}
		dir = parent
	}
}

// Run checks the fixture package in dir (typed under importPath, which
// analyzers see as the package path — pick one inside or outside their
// scopes/allowlists as the case requires) against its want comments,
// running the given analyzers through the full driver, suppression
// handling included.
func Run(t *testing.T, dir, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.CheckDir(dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, pkg)

	// Match findings against expectations line by line.
	for _, f := range findings {
		key := lineKey{filepath.Base(f.Pos.Filename), f.Pos.Line}
		ws := wants[key]
		matched := false
		for i, w := range ws {
			if !w.used && w.re.MatchString(f.Message) {
				ws[i].used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected finding: %s [%s]", key.file, key.line, f.Message, f.Analyzer)
		}
	}
	keys := make([]lineKey, 0, len(wants))
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.used {
				t.Errorf("%s:%d: expected finding matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// collectWants parses `// want ...` comments out of the fixture files.
func collectWants(t *testing.T, pkg *analysis.Package) map[lineKey][]want {
	t.Helper()
	wants := make(map[lineKey][]want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey{filepath.Base(pos.Filename), pos.Line}
				for _, pat := range parsePatterns(t, pos, text) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[key] = append(wants[key], want{re: re})
				}
			}
		}
	}
	return wants
}

// parsePatterns splits a want payload into its quoted regexp literals.
func parsePatterns(t *testing.T, pos fmt.Stringer, text string) []string {
	t.Helper()
	var pats []string
	rest := strings.TrimSpace(text)
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("%s: malformed want clause %q (quoted or backquoted regexps expected)", pos, rest)
		}
		pat, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s: malformed want literal %q: %v", pos, q, err)
		}
		pats = append(pats, pat)
		rest = strings.TrimSpace(rest[len(q):])
	}
	return pats
}
