// Package flow builds per-function control-flow graphs from the AST and
// provides a small forward dataflow solver over them. It exists so the
// interprocedural determinism analyzers (guardflow, lockorder) can reason
// about every path through a function — early returns, loop back-edges,
// select branches — instead of the single statement order the PR 8
// analyzers walked.
//
// The CFG covers the control constructs the module uses: if/else, for and
// range loops (labeled break/continue included), switch and type switch,
// select, return, and panic. `defer` statements appear in their block at
// the registration point and are additionally collected in CFG.Defers;
// clients that care about exit-time effects (a deferred Release) treat a
// registered defer as guaranteed-at-exit, which is sound for the
// unconditional top-of-function defers the codebase uses. goto and
// fallthrough do not occur in the module and are not modeled.
package flow

import (
	"go/ast"
)

// A Block is one straight-line run of statements. Control enters at the
// top and leaves through Succs. A block ending in a branch exposes its
// condition: Cond != nil means Succs[0] is the true edge and Succs[1] the
// false edge, so transfer functions can refine state on outcome checks
// (`if out == api.Acquired`). Multi-way heads (switch, select, range)
// have Cond == nil and one successor per arm.
type Block struct {
	Index int
	Stmts []ast.Node
	Succs []*Block
	Cond  ast.Expr
}

// A CFG is one function body's control-flow graph. Exit is a synthetic
// empty block every return edge targets; paths ending in panic have no
// successor and never reach Exit.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers lists every defer statement in the body, in source order.
	Defers []*ast.DeferStmt
}

// New builds the CFG for a function body.
func New(body *ast.BlockStmt) *CFG {
	c := &CFG{}
	b := &cfgBuilder{cfg: c}
	c.Entry = b.newBlock()
	c.Exit = &Block{}
	b.cur = c.Entry
	b.stmtList(body.List)
	// Falling off the end of the body is an implicit return.
	b.jump(c.Exit)
	c.Exit.Index = len(c.Blocks)
	c.Blocks = append(c.Blocks, c.Exit)
	return c
}

// loopCtx records the jump targets one enclosing loop/switch/select
// provides to break and continue.
type loopCtx struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select: continue skips to the loop
}

type cfgBuilder struct {
	cfg   *CFG
	cur   *Block // nil after a terminal statement (return/panic/branch)
	loops []loopCtx
	// pendingLabel names the label attached to the next loop/switch
	// statement, set by LabeledStmt.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// ensure gives statements after a terminal a dangling (unreachable)
// block, so dead code is still built and analyzed harmlessly.
func (b *cfgBuilder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

// jump edges the current block to target and ends it.
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, target)
	}
	b.cur = nil
}

// takeLabel consumes the pending label for the statement that owns it.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findLoop resolves a break/continue target; label "" means innermost.
// wantContinue restricts the search to constructs that accept continue.
func (b *cfgBuilder) findLoop(label string, wantContinue bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		l := &b.loops[i]
		if wantContinue && l.continueTo == nil {
			continue
		}
		if label == "" || l.label == label {
			return l
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch v := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(v.List)
	case *ast.LabeledStmt:
		b.pendingLabel = v.Label.Name
		// A label is also a join point (it may be a loop head target).
		next := b.newBlock()
		b.ensure().Succs = append(b.cur.Succs, next)
		b.cur = next
		b.stmt(v.Stmt)
	case *ast.IfStmt:
		b.buildIf(v)
	case *ast.ForStmt:
		b.buildFor(v)
	case *ast.RangeStmt:
		b.buildRange(v)
	case *ast.SwitchStmt:
		b.buildSwitch(v.Init, v.Tag, v.Body)
	case *ast.TypeSwitchStmt:
		b.buildSwitch(v.Init, v.Assign, v.Body)
	case *ast.SelectStmt:
		b.buildSelect(v)
	case *ast.ReturnStmt:
		b.ensure().Stmts = append(b.cur.Stmts, v)
		b.jump(b.cfg.Exit)
	case *ast.BranchStmt:
		b.buildBranch(v)
	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, v)
		b.ensure().Stmts = append(b.cur.Stmts, v)
	case *ast.ExprStmt:
		b.ensure().Stmts = append(b.cur.Stmts, v)
		if isPanic(v.X) {
			b.cur = nil // panic terminates the path short of Exit
		}
	default:
		// Assignments, declarations, sends, go, inc/dec: straight-line.
		b.ensure().Stmts = append(b.cur.Stmts, s)
	}
}

func (b *cfgBuilder) buildIf(v *ast.IfStmt) {
	if v.Init != nil {
		b.stmt(v.Init)
	}
	cond := b.ensure()
	cond.Stmts = append(cond.Stmts, v.Cond)
	cond.Cond = v.Cond
	then := b.newBlock()
	els := b.newBlock()
	cond.Succs = append(cond.Succs, then, els)

	after := &Block{}
	b.cur = then
	b.stmtList(v.Body.List)
	b.joinTo(after)
	b.cur = els
	if v.Else != nil {
		b.stmt(v.Else)
	}
	b.joinTo(after)
	b.commitJoin(after)
}

// joinTo edges the current (possibly terminated) path to a join block not
// yet committed to the CFG.
func (b *cfgBuilder) joinTo(join *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, join)
	}
	b.cur = nil
}

// commitJoin numbers the join block and makes it current. Joins are
// committed after their predecessors so block indices stay roughly in
// source order.
func (b *cfgBuilder) commitJoin(join *Block) {
	join.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, join)
	b.cur = join
}

func (b *cfgBuilder) buildFor(v *ast.ForStmt) {
	label := b.takeLabel()
	if v.Init != nil {
		b.stmt(v.Init)
	}
	head := b.newBlock()
	b.jump(head)
	body := b.newBlock()
	after := &Block{}
	post := &Block{}
	if v.Cond != nil {
		head.Stmts = append(head.Stmts, v.Cond)
		head.Cond = v.Cond
		head.Succs = append(head.Succs, body, after)
	} else {
		head.Succs = append(head.Succs, body)
	}

	continueTo := head
	if v.Post != nil {
		continueTo = post
	}
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after, continueTo: continueTo})
	b.cur = body
	b.stmtList(v.Body.List)
	b.loops = b.loops[:len(b.loops)-1]

	if v.Post != nil {
		b.joinTo(post)
		b.commitJoin(post)
		b.stmt(v.Post)
		b.jump(head)
	} else {
		b.jump(head)
	}
	b.commitJoin(after)
}

func (b *cfgBuilder) buildRange(v *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock()
	b.jump(head)
	// The range head both binds the iteration variables and decides
	// whether another iteration runs.
	head.Stmts = append(head.Stmts, v)
	body := b.newBlock()
	after := &Block{}
	head.Succs = append(head.Succs, body, after)

	b.loops = append(b.loops, loopCtx{label: label, breakTo: after, continueTo: head})
	b.cur = body
	b.stmtList(v.Body.List)
	b.loops = b.loops[:len(b.loops)-1]
	b.jump(head)
	b.commitJoin(after)
}

// buildSwitch handles value and type switches; head is the tag
// expression or the type-switch assignment.
func (b *cfgBuilder) buildSwitch(init ast.Stmt, head ast.Node, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.stmt(init)
	}
	headBlk := b.ensure()
	if head != nil {
		headBlk.Stmts = append(headBlk.Stmts, head)
	}
	after := &Block{}
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after})
	hasDefault := false
	b.cur = nil
	for _, cs := range body.List {
		clause, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			hasDefault = true
		}
		caseBlk := b.newBlock()
		headBlk.Succs = append(headBlk.Succs, caseBlk)
		for _, e := range clause.List {
			caseBlk.Stmts = append(caseBlk.Stmts, e)
		}
		b.cur = caseBlk
		b.stmtList(clause.Body)
		b.joinTo(after)
	}
	b.loops = b.loops[:len(b.loops)-1]
	if !hasDefault {
		headBlk.Succs = append(headBlk.Succs, after)
	}
	b.commitJoin(after)
}

func (b *cfgBuilder) buildSelect(v *ast.SelectStmt) {
	label := b.takeLabel()
	headBlk := b.ensure()
	after := &Block{}
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after})
	b.cur = nil
	for _, cs := range v.Body.List {
		clause, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		caseBlk := b.newBlock()
		headBlk.Succs = append(headBlk.Succs, caseBlk)
		b.cur = caseBlk
		if clause.Comm != nil {
			b.stmt(clause.Comm)
		}
		b.stmtList(clause.Body)
		b.joinTo(after)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.commitJoin(after)
}

func (b *cfgBuilder) buildBranch(v *ast.BranchStmt) {
	label := ""
	if v.Label != nil {
		label = v.Label.Name
	}
	switch v.Tok.String() {
	case "break":
		if l := b.findLoop(label, false); l != nil {
			b.jump(l.breakTo)
			return
		}
	case "continue":
		if l := b.findLoop(label, true); l != nil {
			b.jump(l.continueTo)
			return
		}
	}
	// goto/fallthrough (unused in the module) or unresolved label:
	// conservatively terminate the path.
	b.cur = nil
}

// isPanic reports whether an expression statement is a builtin panic
// call, which terminates its path.
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
