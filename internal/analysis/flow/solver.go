package flow

// A Solver supplies the lattice operations for one forward dataflow
// problem over a CFG. States are values of type S; the solver never
// mutates them, so Transfer and Branch must return fresh or immutable
// states.
type Solver[S any] struct {
	// Transfer computes the state after executing a block's statements,
	// given the state on entry.
	Transfer func(b *Block, in S) S

	// Branch, if set, refines the post-block state on the edge to
	// Succs[i] — e.g. narrowing a guard's outcome on the true edge of
	// `if out == api.Acquired`. Nil means the edge carries the
	// post-block state unchanged.
	Branch func(b *Block, succIdx int, out S) S

	// Join merges the states of two predecessors at a join point.
	Join func(a, b S) S

	// Equal reports whether two states are indistinguishable; it bounds
	// the fixpoint iteration.
	Equal func(a, b S) bool
}

// Solve runs the forward worklist to a fixpoint and returns the state on
// entry to each block. entry seeds the CFG's Entry block. Blocks are
// visited in index order each round, so results are deterministic; the
// lattice must have finite height or iteration is capped (and the last
// computed states returned) after a generous bound.
func Solve[S any](c *CFG, entry S, s Solver[S]) map[*Block]S {
	in := make(map[*Block]S, len(c.Blocks))
	seen := make(map[*Block]bool, len(c.Blocks))
	in[c.Entry] = entry
	seen[c.Entry] = true

	// Height cap: |blocks|² rounds is far beyond any finite-height
	// lattice this package's clients use; it guards against a
	// non-converging Equal.
	maxRounds := len(c.Blocks)*len(c.Blocks) + 8
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, b := range c.Blocks {
			if !seen[b] {
				continue
			}
			out := s.Transfer(b, in[b])
			for i, succ := range b.Succs {
				edge := out
				if s.Branch != nil {
					edge = s.Branch(b, i, out)
				}
				if !seen[succ] {
					seen[succ] = true
					in[succ] = edge
					changed = true
					continue
				}
				merged := s.Join(in[succ], edge)
				if !s.Equal(in[succ], merged) {
					in[succ] = merged
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return in
}

// ExitState returns the fixpoint state on entry to the synthetic Exit
// block, or (zero, false) if no return path reaches it (e.g. the
// function always panics or loops forever).
func ExitState[S any](c *CFG, in map[*Block]S) (S, bool) {
	s, ok := in[c.Exit]
	return s, ok
}
