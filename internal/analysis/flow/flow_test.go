package flow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"alock/internal/analysis/flow"
)

// buildCFG parses a function body (markers like m1() need no types) and
// builds its CFG.
func buildCFG(t *testing.T, body string) *flow.CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return flow.New(f.Decls[0].(*ast.FuncDecl).Body)
}

// blockCalling returns the block whose statements contain a call to the
// named function, or nil.
func blockCalling(c *flow.CFG, name string) *flow.Block {
	for _, b := range c.Blocks {
		for _, s := range b.Stmts {
			found := false
			ast.Inspect(s, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return true
			})
			if found {
				return b
			}
		}
	}
	return nil
}

// reachable returns the set of blocks reachable from the entry.
func reachable(c *flow.CFG) map[*flow.Block]bool {
	seen := map[*flow.Block]bool{c.Entry: true}
	stack := []*flow.Block{c.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

func TestIfBranches(t *testing.T) {
	c := buildCFG(t, `
if cond() {
	m1()
} else {
	m2()
}
m3()`)
	condBlk := blockCalling(c, "cond")
	if condBlk == nil || condBlk.Cond == nil {
		t.Fatal("if head block missing or has no Cond")
	}
	if len(condBlk.Succs) != 2 {
		t.Fatalf("if head has %d successors, want 2", len(condBlk.Succs))
	}
	if condBlk.Succs[0] != blockCalling(c, "m1") || condBlk.Succs[1] != blockCalling(c, "m2") {
		t.Fatal("true/false edges not Succs[0]/Succs[1]")
	}
	if !reachable(c)[blockCalling(c, "m3")] {
		t.Fatal("join block unreachable")
	}
}

func TestDeferCollected(t *testing.T) {
	c := buildCFG(t, `
defer m1()
if cond() {
	return
}
m2()`)
	if len(c.Defers) != 1 {
		t.Fatalf("Defers = %d, want 1", len(c.Defers))
	}
	if blockCalling(c, "m1") != c.Entry {
		t.Fatal("defer statement not recorded at its registration block")
	}
	if !reachable(c)[c.Exit] {
		t.Fatal("exit unreachable")
	}
}

// TestLabeledBreak: both loops are infinite, so the statement after the
// outer loop is reachable only if `break outer` targets the labeled
// loop's exit rather than the inner loop's.
func TestLabeledBreak(t *testing.T) {
	c := buildCFG(t, `
outer:
	for {
		for {
			if cond() {
				break outer
			}
			m1()
		}
	}
	m2()`)
	if !reachable(c)[blockCalling(c, "m2")] {
		t.Fatal("break outer did not reach past the labeled loop")
	}
}

// TestPlainBreakStaysInner: with an unlabeled break, only the inner loop
// exits; the outer `for {}` never terminates and m2 stays unreachable.
func TestPlainBreakStaysInner(t *testing.T) {
	c := buildCFG(t, `
	for {
		for {
			if cond() {
				break
			}
		}
		m1()
	}
	m2()`)
	r := reachable(c)
	if !r[blockCalling(c, "m1")] {
		t.Fatal("inner break did not reach the outer loop body")
	}
	if r[blockCalling(c, "m2")] {
		t.Fatal("plain break escaped the outer infinite loop")
	}
}

func TestLabeledContinue(t *testing.T) {
	c := buildCFG(t, `
outer:
	for i := 0; i < n; i++ {
		for {
			continue outer
		}
	}
	m1()`)
	if !reachable(c)[blockCalling(c, "m1")] {
		t.Fatal("labeled continue lost the outer loop's exit edge")
	}
}

func TestSelect(t *testing.T) {
	c := buildCFG(t, `
m0()
select {
case <-a:
	m1()
case b <- 1:
	m2()
}
m3()`)
	head := blockCalling(c, "m0")
	if len(head.Succs) != 2 {
		t.Fatalf("select head has %d successors, want 2", len(head.Succs))
	}
	r := reachable(c)
	for _, m := range []string{"m1", "m2", "m3"} {
		if !r[blockCalling(c, m)] {
			t.Fatalf("%s unreachable through select", m)
		}
	}
}

func TestSwitchDefault(t *testing.T) {
	c := buildCFG(t, `
switch tag() {
case 1:
	m1()
default:
	m2()
}
m3()`)
	head := blockCalling(c, "tag")
	// With a default clause the head must not edge straight to the join.
	if len(head.Succs) != 2 {
		t.Fatalf("switch head has %d successors, want 2", len(head.Succs))
	}
	if !reachable(c)[blockCalling(c, "m3")] {
		t.Fatal("switch join unreachable")
	}
}

func TestPanicTerminates(t *testing.T) {
	c := buildCFG(t, `
if cond() {
	panic("boom")
}
m1()`)
	var panicBlk *flow.Block
	for _, b := range c.Blocks {
		for _, s := range b.Stmts {
			if es, ok := s.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						panicBlk = b
					}
				}
			}
		}
	}
	if panicBlk == nil {
		t.Fatal("panic block not found")
	}
	if len(panicBlk.Succs) != 0 {
		t.Fatal("panic path should not continue")
	}
	if !reachable(c)[c.Exit] {
		t.Fatal("non-panic path should reach exit")
	}
}

// TestSolverLeakShape runs the solver on the exact shape guardflow cares
// about: a resource acquired, an early return skipping the release. The
// all-paths-released lattice must report false at exit, and true once the
// early return also releases.
func TestSolverLeakShape(t *testing.T) {
	released := func(b *flow.Block) bool {
		return blockCallIn(b, "release")
	}
	solver := flow.Solver[bool]{
		Transfer: func(b *flow.Block, in bool) bool { return in || released(b) },
		Join:     func(a, b bool) bool { return a && b },
		Equal:    func(a, b bool) bool { return a == b },
	}

	leak := buildCFG(t, `
g := acquire()
if cond() {
	return
}
release(g)`)
	in := flow.Solve(leak, false, solver)
	if got, ok := flow.ExitState(leak, in); !ok || got {
		t.Fatalf("leak shape: exit released=%v reachable=%v, want false/true", got, ok)
	}

	clean := buildCFG(t, `
g := acquire()
if cond() {
	release(g)
	return
}
release(g)`)
	in = flow.Solve(clean, false, solver)
	if got, ok := flow.ExitState(clean, in); !ok || !got {
		t.Fatalf("clean shape: exit released=%v reachable=%v, want true/true", got, ok)
	}
}

func blockCallIn(b *flow.Block, name string) bool {
	for _, s := range b.Stmts {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
