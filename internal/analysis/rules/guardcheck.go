package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"alock/internal/analysis"
)

// apiPkgPath is the import path of the token-lock API package.
const apiPkgPath = "alock/internal/api"

// Guardcheck enforces the token-API acquisition contract at every call
// returning (api.Guard, api.Outcome) — api.TokenLocker.Acquire and any
// wrapper with the same result shape:
//
//   - the Outcome must not be discarded with the blank identifier, and a
//     freshly declared outcome variable must actually be read (a deadline
//     acquisition that never checks for TimedOut treats a dead guard as
//     live);
//   - the Guard must not be discarded with the blank identifier: if the
//     outcome turns out Acquired there is no way to Release or Abandon,
//     and the lock leaks forever.
//
// Passing the results straight through (return h.Acquire(...)) is fine —
// the contract transfers to the caller.
var Guardcheck = &analysis.Analyzer{
	Name: "guardcheck",
	Doc:  "Acquire call sites must check the Outcome and must not discard the Guard",
	Run:  runGuardcheck,
}

func runGuardcheck(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		// Track the innermost function body so outcome-usage checks scope
		// correctly (closures included: their bodies push onto the stack).
		var bodies []ast.Node
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return false
				}
				bodies = append(bodies, n.Body)
				ast.Inspect(n.Body, visit)
				bodies = bodies[:len(bodies)-1]
				return false
			case *ast.FuncLit:
				bodies = append(bodies, n.Body)
				ast.Inspect(n.Body, visit)
				bodies = bodies[:len(bodies)-1]
				return false
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && len(n.Lhs) == 2 {
					if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && isAcquireShaped(pass.TypesInfo, call) {
						var enclosing ast.Node
						if len(bodies) > 0 {
							enclosing = bodies[len(bodies)-1]
						}
						checkAcquireAssign(pass, n, call, enclosing)
					}
				}
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isAcquireShaped(pass.TypesInfo, call) {
					pass.Reportf(call.Pos(), "Acquire results discarded: the Guard and Outcome must be handled")
				}
			}
			return true
		}
		ast.Inspect(f, visit)
	}
	return nil
}

// isAcquireShaped reports whether call returns exactly
// (api.Guard, api.Outcome).
func isAcquireShaped(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	tuple, ok := tv.Type.(*types.Tuple)
	if !ok || tuple.Len() != 2 {
		return false
	}
	g, _ := tuple.At(0).Type().(*types.Named)
	o, _ := tuple.At(1).Type().(*types.Named)
	return isPkgType(g, apiPkgPath, "Guard") && isPkgType(o, apiPkgPath, "Outcome")
}

// checkAcquireAssign validates one `guard, outcome := locker.Acquire(...)`
// assignment (either token).
func checkAcquireAssign(pass *analysis.Pass, s *ast.AssignStmt, call *ast.CallExpr, enclosing ast.Node) {
	guardE, outE := s.Lhs[0], s.Lhs[1]
	if isBlank(outE) {
		pass.Reportf(call.Pos(), "Acquire outcome discarded: a TimedOut grant would be treated as held")
	} else if s.Tok == token.DEFINE && enclosing != nil {
		if id, ok := outE.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil && !objRead(pass.TypesInfo, enclosing, obj) {
				pass.Reportf(call.Pos(), "Acquire outcome %s is never checked", id.Name)
			}
		}
	}
	if isBlank(guardE) {
		pass.Reportf(call.Pos(), "Acquire guard discarded: an Acquired outcome would leak the lock")
	}
}

// objRead reports whether obj is genuinely read inside node: an identifier
// use that is neither the left-hand side of an assignment nor the sole
// operand of a `_ = x` discard.
func objRead(info *types.Info, node ast.Node, obj types.Object) bool {
	excluded := make(map[token.Pos]bool)
	ast.Inspect(node, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				excluded[id.Pos()] = true
			}
		}
		// `_ = x` is a discard, not a check.
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 && isBlank(as.Lhs[0]) {
			if id, ok := ast.Unparen(as.Rhs[0]).(*ast.Ident); ok {
				excluded[id.Pos()] = true
			}
		}
		return true
	})
	read := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj && !excluded[id.Pos()] {
			read = true
		}
		return !read
	})
	return read
}
