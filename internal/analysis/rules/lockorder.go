package rules

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"alock/internal/analysis"
	"alock/internal/analysis/callgraph"
)

// Lockorder enforces the deadlock-avoidance discipline on multi-lock code
// paths: whenever a function acquires a second lock while the first is
// still held, the two lock indices must be provably in ascending order.
// Three forms of evidence are accepted:
//
//   - both indices are integer constants and the second is larger;
//   - an if-swap normalization precedes the second acquire — a statement
//     of the form `if j < i { i, j = j, i }` whose comparison operands
//     cover both index variables (value aliases like `pair := j` are
//     traced through plain assignments);
//   - for a single acquire inside a `for _, i := range idxs` loop, the
//     index slice is sorted — by a sort call in the same function before
//     the loop, or anywhere inside the callee the slice was assigned
//     from (a conditional sort in the producer is accepted: the dynamic
//     TxnOrder gate is the producer's concern, not the call site's).
//
// Pairs are exempt when the first guard is released or abandoned between
// the two sites (the holds never overlap) or when the two locks come from
// different tables (no shared order domain). Test files are skipped.
var Lockorder = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "overlapping lock acquisitions must be provably ordered by ascending lock index",
	RunModule: runLockorder,
}

func runLockorder(mp *analysis.ModulePass) error {
	g := moduleGraph(mp)
	for _, n := range g.Nodes() {
		body := n.Body()
		if body == nil || n.Pkg == nil {
			continue
		}
		if strings.HasSuffix(mp.Fset.Position(n.Pos()).Filename, "_test.go") {
			continue
		}
		checkLockOrder(mp, g, n.Pkg.TypesInfo, body)
	}
	return nil
}

// An acquireSite is one lock-acquiring call with its index decomposed:
// base identifies the lock table (the indexed value or the receiver of a
// single-integer-argument pointer lookup like table.Ptr(i)), idx is the
// index expression, obj/val its variable or constant form when resolvable.
type acquireSite struct {
	call    *ast.CallExpr
	base    types.Object
	idx     ast.Expr
	obj     types.Object
	val     int64
	isConst bool
	guard   types.Object
}

func checkLockOrder(mp *analysis.ModulePass, g *callgraph.Graph, info *types.Info, body *ast.BlockStmt) {
	sites := acquireSitesIn(info, body)
	if len(sites) == 0 {
		return
	}
	origins := indexOrigins(info, body)
	norms := normalizations(info, body)
	for i := 0; i+1 < len(sites); i++ {
		checkAcquirePair(mp, info, body, origins, norms, sites[i], sites[i+1])
	}
	checkRangeAcquires(mp, g, info, body, sites, origins)
}

// shallowInspect walks body in source order without descending into
// function literals: a literal's acquires belong to its own callgraph
// node and are checked against its own body.
func shallowInspect(body *ast.BlockStmt, f func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

func acquireSitesIn(info *types.Info, body *ast.BlockStmt) []*acquireSite {
	var sites []*acquireSite
	shallowInspect(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || !isAcquireShaped(info, call) {
			return
		}
		s := &acquireSite{call: call}
		s.base, s.idx = lockIndex(info, body, call.Args[0], 0)
		if s.idx != nil {
			if tv, ok := info.Types[s.idx]; ok && tv.Value != nil {
				if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
					s.val, s.isConst = v, true
				}
			}
			s.obj = objOf(info, s.idx)
		}
		s.guard = guardAssignedBy(info, body, call)
		sites = append(sites, s)
	})
	return sites
}

// lockIndex resolves a lock-pointer argument to (table, index). Indexing
// (ptrs[i]) and single-integer-argument lookups (table.Ptr(i)) both
// qualify; a local assigned exactly once from such an expression is traced
// through, which covers the `l := table.Ptr(idx)` hoist in the workload
// loops.
func lockIndex(info *types.Info, body *ast.BlockStmt, e ast.Expr, depth int) (types.Object, ast.Expr) {
	if depth > 4 {
		return nil, nil
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.IndexExpr:
		return objOf(info, e.X), e.Index
	case *ast.CallExpr:
		if len(e.Args) != 1 || !isIntExpr(info, e.Args[0]) {
			return nil, nil
		}
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			return objOf(info, sel.X), e.Args[0]
		}
		return objOf(info, e.Fun), e.Args[0]
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return nil, nil
		}
		if rhs := soleAssignment(info, body, obj); rhs != nil {
			return lockIndex(info, body, rhs, depth+1)
		}
	}
	return nil, nil
}

func isIntExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// soleAssignment returns the only expression ever assigned to obj in
// body, or nil when obj is assigned zero times, more than once, or by a
// non 1:1 assignment.
func soleAssignment(info *types.Info, body *ast.BlockStmt, obj types.Object) ast.Expr {
	var rhs ast.Expr
	count := 0
	shallowInspect(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if assigneeObj(info, lhs) != obj {
					continue
				}
				count++
				if len(n.Lhs) == len(n.Rhs) {
					rhs = n.Rhs[i]
				}
			}
		case *ast.RangeStmt:
			if assigneeObj(info, n.Key) == obj || assigneeObj(info, n.Value) == obj {
				count += 2 // a range binding is never a traceable source
			}
		}
	})
	if count != 1 {
		return nil
	}
	return rhs
}

func assigneeObj(info *types.Info, e ast.Expr) types.Object {
	if e == nil {
		return nil
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if d := info.Defs[id]; d != nil {
		return d
	}
	return info.Uses[id]
}

// guardAssignedBy returns the variable the call's guard result is bound
// to, if the call is the sole RHS of an assignment.
func guardAssignedBy(info *types.Info, body *ast.BlockStmt, call *ast.CallExpr) types.Object {
	var guard types.Object
	shallowInspect(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || as.Rhs[0] != call || len(as.Lhs) == 0 {
			return
		}
		guard = assigneeObj(info, as.Lhs[0])
	})
	return guard
}

// indexOrigins maps each variable to the set of variables whose value may
// flow into it through plain ident-to-ident assignments (`pair := j`).
// Swap-shaped assignments (x, y = y, x) are excluded: they are order
// normalizations, not value aliases, and folding them in would make every
// normalized pair alias both ways and erase the order direction.
func indexOrigins(info *types.Info, body *ast.BlockStmt) map[types.Object]map[types.Object]bool {
	out := map[types.Object]map[types.Object]bool{}
	add := func(dst, src types.Object) {
		if out[dst] == nil {
			out[dst] = map[types.Object]bool{}
		}
		out[dst][src] = true
	}
	shallowInspect(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return
		}
		if _, _, isSwap := swapObjs(info, as); isSwap {
			return
		}
		for i := range as.Lhs {
			dst := assigneeObj(info, as.Lhs[i])
			src := objOf(info, as.Rhs[i])
			if dst != nil && src != nil && dst != src {
				add(dst, src)
			}
		}
	})
	for changed := true; changed; {
		changed = false
		for _, srcs := range out {
			for s := range srcs {
				for s2 := range out[s] {
					if !srcs[s2] {
						srcs[s2] = true //lint:allow maporder transitive-closure fixpoint: the closure is a set union, order-independent
						changed = true
					}
				}
			}
		}
	}
	return out
}

func originHas(origins map[types.Object]map[types.Object]bool, obj, want types.Object) bool {
	if obj == nil || want == nil {
		return false
	}
	return obj == want || origins[obj][want]
}

// A normalization records an if-swap statement: after it executes, min
// holds the smaller index and max the larger.
type normalization struct {
	min, max types.Object
	pos      token.Pos
}

func normalizations(info *types.Info, body *ast.BlockStmt) []normalization {
	var out []normalization
	shallowInspect(body, func(n ast.Node) {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Body == nil {
			return
		}
		cmp, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok {
			return
		}
		x, y := objOf(info, cmp.X), objOf(info, cmp.Y)
		if x == nil || y == nil || x == y {
			return
		}
		var min, max types.Object
		switch cmp.Op {
		case token.LSS, token.LEQ: // if x < y { swap } leaves y the smaller
			min, max = y, x
		case token.GTR, token.GEQ: // if x > y { swap } leaves x the smaller
			min, max = x, y
		default:
			return
		}
		for _, st := range ifs.Body.List {
			as, ok := st.(*ast.AssignStmt)
			if !ok {
				continue
			}
			p, q, isSwap := swapObjs(info, as)
			if isSwap && ((p == x && q == y) || (p == y && q == x)) {
				out = append(out, normalization{min: min, max: max, pos: ifs.Pos()})
				return
			}
		}
	})
	return out
}

// swapObjs recognizes `x, y = y, x` and returns the two swapped objects.
func swapObjs(info *types.Info, as *ast.AssignStmt) (p, q types.Object, ok bool) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != 2 || len(as.Rhs) != 2 {
		return nil, nil, false
	}
	l0, l1 := assigneeObj(info, as.Lhs[0]), assigneeObj(info, as.Lhs[1])
	r0, r1 := objOf(info, as.Rhs[0]), objOf(info, as.Rhs[1])
	if l0 == nil || l1 == nil || l0 == l1 || l0 != r1 || l1 != r0 {
		return nil, nil, false
	}
	return l0, l1, true
}

func checkAcquirePair(mp *analysis.ModulePass, info *types.Info, body *ast.BlockStmt,
	origins map[types.Object]map[types.Object]bool, norms []normalization, s1, s2 *acquireSite) {

	if s1.base != nil && s2.base != nil && s1.base != s2.base {
		return // different lock tables: no shared order domain
	}
	if releasedBetween(info, body, s1, s2) {
		return // the holds never overlap
	}
	line1 := mp.Fset.Position(s1.call.Pos()).Line
	switch {
	case s1.isConst && s2.isConst:
		switch {
		case s1.val < s2.val:
			// ascending by construction
		case s1.val == s2.val:
			mp.Reportf(s2.call.Pos(),
				"lock index %d acquired twice with the first hold still live (first acquire at line %d)",
				s2.val, line1)
		default:
			mp.Reportf(s2.call.Pos(),
				"lock index %d acquired while index %d is held (line %d): descending order can deadlock",
				s2.val, s1.val, line1)
		}
	case s1.obj != nil && s1.obj == s2.obj:
		mp.Reportf(s2.call.Pos(),
			"lock index %s acquired twice with the first hold still live (first acquire at line %d)",
			s1.obj.Name(), line1)
	default:
		for _, nm := range norms {
			if nm.pos < s2.call.Pos() &&
				originHas(origins, s1.obj, nm.min) && originHas(origins, s2.obj, nm.max) {
				return
			}
		}
		mp.Reportf(s2.call.Pos(),
			"lock order unprovable: this acquire overlaps the one at line %d with no ascending evidence (constant indices, an if-swap normalization, or a sorted index source)",
			line1)
	}
}

// releasedBetween reports whether s1's guard is passed to Release or
// Abandon strictly between the two acquire sites.
func releasedBetween(info *types.Info, body *ast.BlockStmt, s1, s2 *acquireSite) bool {
	if s1.guard == nil {
		return false
	}
	found := false
	shallowInspect(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() <= s1.call.End() || call.Pos() >= s2.call.Pos() {
			return
		}
		if name := calleeBaseName(call); name != "Release" && name != "Abandon" {
			return
		}
		for _, a := range call.Args {
			if objOf(info, a) == s1.guard {
				found = true
			}
		}
	})
	return found
}

// checkRangeAcquires handles the k-lock transaction shape: one acquire
// site inside `for _, li := range idxs`, indexed by the range value (or
// by idxs[i] under the range key). The slice must be provably sorted.
func checkRangeAcquires(mp *analysis.ModulePass, g *callgraph.Graph, info *types.Info,
	body *ast.BlockStmt, sites []*acquireSite, origins map[types.Object]map[types.Object]bool) {

	shallowInspect(body, func(n ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || rs.Body == nil {
			return
		}
		sliceObj := objOf(info, rs.X)
		if sliceObj == nil {
			return
		}
		keyObj := assigneeObj(info, rs.Key)
		valObj := assigneeObj(info, rs.Value)
		for _, s := range sites {
			if s.call.Pos() < rs.Body.Pos() || s.call.Pos() > rs.Body.End() {
				continue
			}
			if !rangeIndexed(info, origins, s, sliceObj, keyObj, valObj) {
				continue
			}
			if sortedEvidence(g, info, body, sliceObj, rs.Pos()) {
				continue
			}
			mp.Reportf(s.call.Pos(),
				"locks acquired in the order of %s, which is not provably sorted (no sort call in this function or in its producer)",
				sliceObj.Name())
		}
	})
}

// rangeIndexed reports whether the site's lock index is the loop's range
// value (possibly via an alias) or an idxs[key] subscript.
func rangeIndexed(info *types.Info, origins map[types.Object]map[types.Object]bool,
	s *acquireSite, sliceObj, keyObj, valObj types.Object) bool {

	if valObj != nil && originHas(origins, s.obj, valObj) {
		return true
	}
	if idx, ok := ast.Unparen(s.idx).(*ast.IndexExpr); ok && keyObj != nil {
		return objOf(info, idx.X) == sliceObj && objOf(info, idx.Index) == keyObj
	}
	return false
}

// sortedEvidence reports whether slice is sorted before pos: a sort call
// on it earlier in this body, or a sort call anywhere inside a callee the
// slice was assigned from. The producer's sort may be conditional — the
// dynamic ordered-mode gate lives there, not at the acquire site.
func sortedEvidence(g *callgraph.Graph, info *types.Info, body *ast.BlockStmt,
	slice types.Object, pos token.Pos) bool {

	found := false
	shallowInspect(body, func(n ast.Node) {
		if found {
			return
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if n.Pos() < pos && isSortCall(info, n) && len(n.Args) > 0 &&
				objOf(info, n.Args[0]) == slice {
				found = true
			}
		case *ast.AssignStmt:
			if n.Pos() >= pos {
				return
			}
			for i, lhs := range n.Lhs {
				if assigneeObj(info, lhs) != slice || len(n.Lhs) != len(n.Rhs) {
					continue
				}
				call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr)
				if !ok {
					continue
				}
				if fn := funcOf(info, call.Fun); fn != nil && calleeSorts(g, fn) {
					found = true
				}
			}
		}
	})
	return found
}

// calleeSorts reports whether fn's body contains any sort call.
func calleeSorts(g *callgraph.Graph, fn *types.Func) bool {
	node := g.NodeOf(fn)
	if node == nil || node.Body() == nil || node.Pkg == nil {
		return false
	}
	info := node.Pkg.TypesInfo
	found := false
	ast.Inspect(node.Body(), func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isSortCall(info, call) {
			found = true
		}
		return !found
	})
	return found
}

func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := funcOf(info, call.Fun)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Ints", "Float64s", "Strings", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}
