package rules

import (
	"go/ast"
	"go/types"

	"alock/internal/analysis"
)

// simPkgPath is the import path of the engine package that owns the
// Subsystem registry.
const simPkgPath = "alock/internal/sim"

// Rnggate enforces the stochastic-feature gate: every random stream must
// be drawn from a Subsystem registered in internal/sim. Concretely:
//
//   - the subsystem argument of sim.PartitionedRNG.Stream/SeedFor must be
//     a named sim.Subsystem constant declared in package sim (the
//     registry), never a literal, conversion, or locally declared value —
//     otherwise two features could silently share a stream and a
//     feature-off config would stop replaying bit-identically;
//   - outside package sim, no code may mint sim.Subsystem values at all
//     (conversions or typed const/var declarations): a new stochastic
//     field in harness.Config or workload.Spec gets its stream by adding
//     a Subsystem* constant to internal/sim first.
var Rnggate = &analysis.Analyzer{
	Name: "rnggate",
	Doc:  "PartitionedRNG streams must be keyed by Subsystem constants registered in internal/sim",
	Run:  runRnggate,
}

func runRnggate(pass *analysis.Pass) error {
	inSim := pass.Pkg.Path() == simPkgPath
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkStreamCall(pass, n)
				if !inSim {
					checkConversion(pass, n)
				}
			case *ast.ValueSpec:
				if !inSim && n.Type != nil && isSubsystemTypeExpr(pass.TypesInfo, n.Type) {
					pass.Reportf(n.Pos(),
						"sim.Subsystem declared outside internal/sim: register a Subsystem* constant in the sim package instead")
				}
			}
			return true
		})
	}
	return nil
}

// checkStreamCall validates the subsystem argument of
// PartitionedRNG.Stream / PartitionedRNG.SeedFor calls.
func checkStreamCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return
	}
	name := selection.Obj().Name()
	if (name != "Stream" && name != "SeedFor") || !isPkgType(namedRecv(selection), simPkgPath, "PartitionedRNG") {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	arg := call.Args[0]
	if obj := objOf(pass.TypesInfo, arg); obj != nil {
		named, _ := obj.Type().(*types.Named)
		if isPkgType(named, simPkgPath, "Subsystem") {
			switch obj := obj.(type) {
			case *types.Const:
				// A registered sim.Subsystem* constant.
				if obj.Pkg() != nil && obj.Pkg().Path() == simPkgPath {
					return
				}
			case *types.Var:
				// A Subsystem-typed variable or parameter: its value can
				// only have come from a registered constant, because the
				// conversion and declaration rules below forbid minting
				// Subsystem values outside package sim.
				return
			}
		}
	}
	pass.Reportf(arg.Pos(),
		"%s subsystem argument must be a named sim.Subsystem constant registered in internal/sim", name)
}

// checkConversion flags sim.Subsystem(x) conversions outside package sim.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	tn, ok := pass.TypesInfo.Uses[id].(*types.TypeName)
	if !ok {
		return
	}
	if named, _ := tn.Type().(*types.Named); isPkgType(named, simPkgPath, "Subsystem") {
		pass.Reportf(call.Pos(),
			"ad-hoc sim.Subsystem conversion: register a Subsystem* constant in internal/sim instead")
	}
}

// isSubsystemTypeExpr reports whether a type expression denotes
// sim.Subsystem.
func isSubsystemTypeExpr(info *types.Info, e ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	tn, ok := info.Uses[id].(*types.TypeName)
	if !ok {
		return false
	}
	named, _ := tn.Type().(*types.Named)
	return isPkgType(named, simPkgPath, "Subsystem")
}
