package rules

import (
	"go/ast"
	"go/types"

	"alock/internal/analysis"
)

// DetrandAllowedPkgs are the packages exempt from detrand: the only places
// in the tree where ambient randomness or the wall clock are the point.
// Everything else must draw randomness from sim.PartitionedRNG streams and
// time from the engine clock (api.Ctx.Now), or carry a per-site
// `//lint:allow detrand <reason>`.
var DetrandAllowedPkgs = map[string]bool{
	// PartitionedRNG internals: the one sanctioned rand.New in the repo.
	"alock/internal/sim": true,
	// Real-goroutine harness: real time and per-thread seeds are its job.
	"alock/internal/rt": true,
	// Benchmark CLI host metadata (report timestamps).
	"alock/cmd/bench": true,
}

// detrandBannedTime is the set of wall-clock time functions forbidden on
// simulated paths.
var detrandBannedTime = map[string]bool{"Now": true, "Since": true, "Until": true}

// Detrand forbids nondeterministic randomness and wall-clock reads outside
// an explicit allowlist. Any call to a top-level math/rand (or /v2)
// function — rand.New, rand.NewSource, the global draw functions — is
// flagged: all randomness must come from sim.PartitionedRNG so feature-off
// configs replay bit-identically. rand.NewZipf is exempt (it is a
// deterministic transformer over a caller-supplied *rand.Rand), as are
// methods on *rand.Rand values (drawing from a stream you were handed is
// the sanctioned pattern). time.Now/Since/Until are likewise flagged:
// simulated paths must use engine time. _test.go files are exempt.
var Detrand = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid ambient randomness (math/rand top-level funcs) and wall-clock reads (time.Now/Since/Until) outside the allowlist",
	Run:  runDetrand,
}

func runDetrand(pass *analysis.Pass) error {
	if DetrandAllowedPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. on *rand.Rand) are fine
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if fn.Name() == "NewZipf" {
					return true
				}
				pass.Reportf(sel.Pos(),
					"%s.%s is nondeterministic: draw from a sim.PartitionedRNG stream instead",
					fn.Pkg().Name(), fn.Name())
			case "time":
				if detrandBannedTime[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock: simulated paths must use engine time (Ctx.Now)",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
