package rules

// HotPathRoots declares the functions whose transitive callees must stay
// allocation-free. This is the checked-in twin of what alloc_test.go
// probes dynamically (`testing.AllocsPerRun` over ProcessNextEvent, the
// Mallocs bound over direct runs): the steady-state event loop of both
// executors, from scheduling through dispatch. Perf PRs that add a new
// dispatch entry point extend this list; the allocfree analyzer reports a
// finding if a root name stops resolving, so renames can't silently
// shrink the proved surface.
//
// Names use the callgraph format: "pkgpath.Func" or
// "pkgpath.(*Recv).Method". `go` edges are not followed — goroutine
// startup (per-thread launch) is priced separately from the per-event
// loop — so thread bodies hand control back via channels, not calls, and
// workload code stays out of the proved set.
var HotPathRoots = []string{
	// Serial executor: public stepping API and the direct-handoff loop.
	"alock/internal/sim.(*Engine).Step",
	"alock/internal/sim.(*Engine).ProcessNextEvent",
	"alock/internal/sim.(*Engine).runDirect",
	"alock/internal/sim.(*Engine).dispatchNext",

	// Event queue: the typed 4-ary heap's steady-state operations.
	"alock/internal/sim.(*eventQueue).push",
	"alock/internal/sim.(*eventQueue).pop",
	"alock/internal/sim.(*eventQueue).min",

	// Windowed-parallel executor: the per-window dispatch loop and the
	// per-shard drain it fans out to.
	"alock/internal/sim.(*Engine).runWindowed",
	"alock/internal/sim.(*shard).runWindow",
}
