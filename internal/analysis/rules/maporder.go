package rules

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"alock/internal/analysis"
)

// Maporder flags `range` over a map whose loop body has order-dependent
// effects. Go map iteration order is deliberately randomized, so anything
// the body does that is sensitive to visit order — appending values to a
// result slice, emitting output, scheduling work, returning an element —
// makes the enclosing computation nondeterministic run to run.
//
// The sorted-keys idiom is recognized: a body that only appends the bare
// loop key to a slice is accepted *provided* a sort call (package sort or
// slices, or a function whose name contains "Sort") is applied to that
// slice later in the same block. Also accepted, because they commute
// across iteration orders: writes to another map indexed by the loop key,
// delete of a key-derived entry, integer accumulation via
// += -= |= &= ^= *= and ++/--, and control flow composed of those.
// Float accumulation is NOT accepted: float addition is not associative,
// and this repo's guarantees are bit-level.
var Maporder = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration with order-dependent effects lacking the sorted-keys idiom",
	Run:  runMaporder,
}

func runMaporder(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var stmts []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				stmts = n.List
			case *ast.CaseClause:
				stmts = n.Body
			case *ast.CommClause:
				stmts = n.Body
			default:
				return true
			}
			for i, s := range stmts {
				rs, ok := s.(*ast.RangeStmt)
				if !ok {
					continue
				}
				if _, isMap := pass.TypesInfo.Types[rs.X].Type.Underlying().(*types.Map); !isMap {
					continue
				}
				checkMapRange(pass, rs, stmts[i+1:])
			}
			return true
		})
	}
	return nil
}

// checkMapRange validates one map-range statement. following holds the
// statements after it in the enclosing block, searched for the sort half
// of the collect-keys idiom.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, following []ast.Stmt) {
	v := &rangeValidator{
		pass:   pass,
		keyObj: rangeVarObj(pass.TypesInfo, rs, rs.Key),
	}
	v.stmts(rs.Body.List)
	if v.badPos.IsValid() {
		pass.Reportf(v.badPos, "map iteration has order-dependent effects (%s): iterate sorted keys instead", v.badWhat)
		return
	}
	collected := make([]types.Object, 0, len(v.collected))
	for obj := range v.collected {
		collected = append(collected, obj)
	}
	sort.Slice(collected, func(i, j int) bool { return collected[i].Pos() < collected[j].Pos() })
	for _, obj := range collected {
		if !sortedLater(pass.TypesInfo, following, obj) {
			pass.Reportf(rs.Pos(), "map keys collected into %s are never sorted: order-dependent result", obj.Name())
		}
	}
}

// rangeVarObj resolves a range clause variable (key or value) to its
// object, for both := and = forms. Returns nil for blank or absent.
func rangeVarObj(info *types.Info, rs *ast.RangeStmt, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if rs.Tok == token.DEFINE {
		return info.Defs[id]
	}
	return info.Uses[id]
}

// rangeValidator classifies a map-range body. The first order-dependent
// statement is recorded in badPos/badWhat; key-collect appends land in
// collected for the later sort check.
type rangeValidator struct {
	pass      *analysis.Pass
	keyObj    types.Object
	collected map[types.Object]bool
	badPos    token.Pos
	badWhat   string
}

func (v *rangeValidator) bad(pos token.Pos, what string) {
	if !v.badPos.IsValid() {
		v.badPos, v.badWhat = pos, what
	}
}

func (v *rangeValidator) stmts(list []ast.Stmt) {
	for _, s := range list {
		v.stmt(s)
	}
}

func (v *rangeValidator) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		v.assign(s)
	case *ast.IncDecStmt:
		// Counting elements commutes.
	case *ast.IfStmt:
		v.stmt(s.Body)
		if s.Else != nil {
			v.stmt(s.Else)
		}
	case *ast.BlockStmt:
		v.stmts(s.List)
	case *ast.ForStmt:
		v.stmt(s.Body)
	case *ast.RangeStmt:
		// A nested range gets its own top-level check if it is over a
		// map; relative to the outer map order its body obeys the same
		// commutativity rules.
		v.stmt(s.Body)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			v.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			v.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" && isBuiltin(v.pass.TypesInfo, id) {
				// delete(m2, k): removal keyed by the loop key commutes.
				if len(call.Args) == 2 && mentionsObj(v.pass.TypesInfo, call.Args[1], v.keyObj) {
					return
				}
			}
			v.bad(s.Pos(), "calls "+exprString(call.Fun)+" per iteration")
			return
		}
		v.bad(s.Pos(), "expression statement per iteration")
	case *ast.DeclStmt:
		hasCall := false
		ast.Inspect(s, func(n ast.Node) bool {
			if _, ok := n.(*ast.CallExpr); ok {
				hasCall = true
			}
			return !hasCall
		})
		if hasCall {
			v.bad(s.Pos(), "declaration with a call per iteration")
		}
	case *ast.BranchStmt:
		// break/continue/goto commute (they only prune work).
	case *ast.EmptyStmt:
	case *ast.ReturnStmt:
		v.bad(s.Pos(), "returns an arbitrary element")
	case *ast.SendStmt:
		v.bad(s.Pos(), "sends on a channel per iteration")
	default:
		v.bad(s.Pos(), "order-dependent statement")
	}
}

// assign classifies one assignment inside the body.
func (v *rangeValidator) assign(s *ast.AssignStmt) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		v.bad(s.Pos(), "multi-assignment per iteration")
		return
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		// s = append(s, key): the collect half of the sorted-keys idiom.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && isBuiltin(v.pass.TypesInfo, id) {
				v.appendStmt(s, lhs, call)
				return
			}
		}
		// m2[k] = ...: keyed by the loop key, writes commute.
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if _, isMap := v.pass.TypesInfo.Types[ix.X].Type.Underlying().(*types.Map); isMap {
				if mentionsObj(v.pass.TypesInfo, ix.Index, v.keyObj) {
					return
				}
				v.bad(s.Pos(), "map write not keyed by the loop key (same-key collisions resolve in map order)")
				return
			}
		}
		v.bad(s.Pos(), "assignment per iteration")
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
		t := v.pass.TypesInfo.Types[lhs].Type
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			return // integer accumulation commutes
		}
		v.bad(s.Pos(), "non-integer accumulation (not associative across map orders)")
	default:
		v.bad(s.Pos(), "compound assignment per iteration")
	}
}

// appendStmt validates `s = append(s, args...)`: only bare loop keys may
// be appended, and the result must land back in the same variable (which
// is then required to be sorted after the loop).
func (v *rangeValidator) appendStmt(s *ast.AssignStmt, lhs ast.Expr, call *ast.CallExpr) {
	lhsID, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		v.bad(s.Pos(), "append into a non-identifier per iteration")
		return
	}
	var lhsObj types.Object
	if s.Tok == token.DEFINE {
		lhsObj = v.pass.TypesInfo.Defs[lhsID]
	} else {
		lhsObj = v.pass.TypesInfo.Uses[lhsID]
	}
	if len(call.Args) < 2 || call.Ellipsis.IsValid() {
		v.bad(s.Pos(), "append of map contents in iteration order")
		return
	}
	if first, ok := ast.Unparen(call.Args[0]).(*ast.Ident); !ok || v.pass.TypesInfo.Uses[first] != lhsObj {
		v.bad(s.Pos(), "append into a different slice per iteration")
		return
	}
	for _, arg := range call.Args[1:] {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || v.keyObj == nil || v.pass.TypesInfo.Uses[id] != v.keyObj {
			v.bad(arg.Pos(), "appends map values in iteration order (only bare keys, sorted afterwards, are deterministic)")
			return
		}
	}
	if v.collected == nil {
		v.collected = make(map[types.Object]bool)
	}
	v.collected[lhsObj] = true
}

// sortedLater reports whether some statement after the range applies a
// sort to the collected slice: a call referencing obj whose callee is in
// package sort or slices, or whose name contains "Sort".
func sortedLater(info *types.Info, following []ast.Stmt, obj types.Object) bool {
	for _, s := range following {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if !mentionsObj(info, call, obj) {
				return true
			}
			if fn := funcOf(info, call.Fun); fn != nil {
				if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
					found = true
					return false
				}
				if strings.Contains(fn.Name(), "Sort") || strings.Contains(fn.Name(), "sort") {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// exprString renders a short printable form of a callee expression.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return fmt.Sprintf("%T", e)
	}
}
