// Package shardflowtest models the windowed executor's dispatch shape for
// the shardflow analyzer: code reachable from the per-shard dispatch root
// (or from a Spawn-registered thread body) must not resolve memory words
// outside the sanctioned accessor set, while unreachable code may.
package shardflowtest

import (
	"alock/internal/mem"
	"alock/internal/ptr"
)

type Engine struct {
	space  *mem.Space
	bodies []func(t *Thread)
}

type Thread struct{ e *Engine }

// Spawn registers a thread body, like the real engine.
func (e *Engine) Spawn(node int, fn func(t *Thread)) {
	e.bodies = append(e.bodies, fn)
}

// execProtocol is sanctioned: its direct accesses are audited at runtime.
func (e *Engine) execProtocol(p ptr.Ptr) uint64 {
	return *e.space.WordAddr(p) // sanctioned accessor: no finding
}

// Read is the sanctioned thread-local verb.
func (t *Thread) Read(p ptr.Ptr) uint64 {
	return *t.e.space.WordAddr(p) // sanctioned accessor: no finding
}

// runWindow is the fixture's dispatch root.
func (e *Engine) runWindow(p ptr.Ptr) {
	defer e.settle(p)
	_ = e.execProtocol(p)
	_ = peekWord(e, p)
	go e.flush(p)
}

// peekWord is reachable from the root and resolves a word directly.
func peekWord(e *Engine, p ptr.Ptr) uint64 {
	return *e.space.WordAddr(p) // want `reachable from per-shard dispatch`
}

// flush runs on a goroutine spawned by the dispatch: go edges count.
func (e *Engine) flush(p ptr.Ptr) {
	*e.space.WordAddr(p) = 0 // want `reachable from per-shard dispatch`
}

// settle is deferred from the dispatch and sidesteps the Space audit
// hook entirely through a Region handle.
func (e *Engine) settle(p ptr.Ptr) {
	r := e.space.Region(0)      // want `reachable from per-shard dispatch`
	_ = *r.WordAddr(p.Offset()) // want `bypasses the Space access audit`
}

// setup registers a thread body: the closure and what it calls become
// dispatch roots, because the window resumes them through channels the
// call graph cannot see.
func setup(e *Engine) {
	e.Spawn(0, func(t *Thread) {
		var p ptr.Ptr
		_ = t.Read(p)
		_ = snoop(t)
	})
}

// snoop is reachable only through the spawned thread body.
func snoop(t *Thread) uint64 {
	var p ptr.Ptr
	return *t.e.space.WordAddr(p) // want `reachable from per-shard dispatch`
}

// debugDump is unreachable from any dispatch root: no findings.
func debugDump(e *Engine) uint64 {
	r := e.space.Region(0)
	return *r.WordAddr(0)
}
