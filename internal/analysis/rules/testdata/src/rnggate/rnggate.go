// Package rnggatetest exercises the rnggate analyzer from outside the sim
// package: streams must be keyed by registered sim.Subsystem constants,
// and Subsystem values must not be minted locally.
package rnggatetest

import (
	"math/rand"

	"alock/internal/sim"
)

// registered keys a stream with a constant from the sim registry.
func registered(p sim.PartitionedRNG) *rand.Rand {
	return p.Stream(sim.SubsystemBackoff, 3)
}

// viaParam is fine: Subsystem-typed values are vetted where they are
// created, so passing one through is sanctioned.
func viaParam(p sim.PartitionedRNG, sub sim.Subsystem) int64 {
	return p.SeedFor(sub, 0)
}

// literalKey passes an untyped literal.
func literalKey(p sim.PartitionedRNG) int64 {
	return p.SeedFor(7, 0) // want `must be a named sim\.Subsystem constant`
}

// convertedKey mints a Subsystem on the spot.
func convertedKey(p sim.PartitionedRNG) *rand.Rand {
	return p.Stream(sim.Subsystem(9), 1) // want `must be a named sim\.Subsystem constant` `ad-hoc sim\.Subsystem conversion`
}

// rogueSub declares a Subsystem outside the registry.
const rogueSub sim.Subsystem = 99 // want `sim\.Subsystem declared outside internal/sim`

// rogueUse keys a stream with the unregistered constant.
func rogueUse(p sim.PartitionedRNG) *rand.Rand {
	return p.Stream(rogueSub, 0) // want `must be a named sim\.Subsystem constant`
}

// suppressedDecl records an accepted suppression for a local alias.
func suppressedDecl() sim.Subsystem {
	var local sim.Subsystem = sim.SubsystemThread //lint:allow rnggate fixture: accepted suppression for a vetted alias
	return local
}
