// Package guardchecktest exercises the guardcheck analyzer over a locker
// with the TokenLocker Acquire shape.
package guardchecktest

import (
	"alock/internal/api"
	"alock/internal/ptr"
)

// locker models any TokenLocker-shaped implementation.
type locker struct{ t api.TokenLocker }

// Acquire passes the results straight through: the contract transfers to
// the caller, no finding.
func (l *locker) Acquire(p ptr.Ptr, m api.Mode, o api.AcquireOpts) (api.Guard, api.Outcome) {
	return l.t.Acquire(p, m, o)
}

// proper checks the outcome and keeps the guard.
func proper(h *locker, p ptr.Ptr) api.Guard {
	g, out := h.Acquire(p, api.Exclusive, api.AcquireOpts{})
	if out != api.Acquired {
		return api.Guard{}
	}
	return g
}

// discardsOutcome blanks the outcome: a TimedOut grant would be treated
// as held.
func discardsOutcome(h *locker, p ptr.Ptr) api.Guard {
	g, _ := h.Acquire(p, api.Exclusive, api.AcquireOpts{}) // want `outcome discarded`
	return g
}

// discardsGuard blanks the guard: an Acquired outcome would leak.
func discardsGuard(h *locker, p ptr.Ptr) bool {
	_, out := h.Acquire(p, api.Exclusive, api.AcquireOpts{DeadlineNS: 1}) // want `guard discarded`
	return out == api.TimedOut
}

// neverChecks declares an outcome and only discards it.
func neverChecks(h *locker, p ptr.Ptr) api.Guard {
	g, out := h.Acquire(p, api.Exclusive, api.AcquireOpts{}) // want `outcome out is never checked`
	_ = out
	return g
}

// dropsEverything ignores both results.
func dropsEverything(h *locker, p ptr.Ptr) {
	h.Acquire(p, api.Exclusive, api.AcquireOpts{}) // want `results discarded`
}

// suppressed models the blocking-adapter pattern: a deadline-free acquire
// cannot time out, recorded as an accepted suppression.
func suppressed(h *locker, p ptr.Ptr) api.Guard {
	//lint:allow guardcheck fixture: no deadline means the grant is unconditional
	g, _ := h.Acquire(p, api.Exclusive, api.AcquireOpts{})
	return g
}

// checkedInInit checks the outcome inside an if-init clause.
func checkedInInit(h *locker, p ptr.Ptr) bool {
	if g, out := h.Acquire(p, api.Exclusive, api.AcquireOpts{}); out == api.Acquired {
		_ = g
		return true
	}
	return false
}
