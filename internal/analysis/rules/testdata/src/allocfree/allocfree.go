// Package allocfreetest exercises the allocfree analyzer. The fixture's
// root set is {allocfreetest.(*Engine).Step}: everything it transitively
// calls — including through an interface dispatch — must be free of
// allocating constructs, while unreachable code may allocate freely.
package allocfreetest

type handler interface{ handle(x int) }

// fast is the allocation-free implementation: no findings.
type fast struct{ n int }

func (f *fast) handle(x int) { f.n += x }

// slow allocates; it is reachable only through the handler interface at
// the Step call site, so a finding here proves interface resolution.
type slow struct{ sink []int }

func (s *slow) handle(x int) {
	tmp := append(s.sink, x) // want `append into a new backing array`
	_ = tmp
	s.sink = append(s.sink, x) // self-append: amortized, no finding
}

type Engine struct {
	h   handler
	buf []int
	n   int
}

// Step is the fixture root.
func (e *Engine) Step() {
	e.process(1)
	e.h.handle(2)
	e.spawnHelpers()
	e.boxes(3)
	e.literals()
	e.trap(4)
}

// process is clean: self-append and value composite only.
func (e *Engine) process(x int) {
	e.buf = append(e.buf, x)
	type point struct{ x, y int }
	_ = point{x, x} // value composite literal stays on the stack
}

func (e *Engine) spawnHelpers() {
	go e.process(1)        // want `go statement spawns a goroutine`
	fn := func() { e.n++ } // want `closure captures e`
	fn()
	hoisted := func() {} // capture-free literal: hoisted, no finding
	hoisted()
}

func sink(v any)         {}
func sinkPtr(p *int)     {}
func variadic(vs ...int) {}

func (e *Engine) boxes(x int) {
	sink(x)          // want `boxed into interface parameter`
	sinkPtr(&e.n)    // pointer-shaped: no boxing, no finding
	variadic(x, x)   // want `variadic call materializes an argument slice`
	buf := []int{}   // want `slice literal`
	variadic(buf...) // pass-through: no slice materialized, no finding
}

func (e *Engine) literals() {
	m := make(map[int]int) // want `make`
	_ = m
	_ = map[int]int{1: 2} // want `map literal`
	p := new(int)         // want `new`
	_ = p
	type point struct{ x, y int }
	q := &point{1, 2} // want `&composite literal escapes`
	_ = q
}

// trap panics: constructs feeding the panic argument are exempt, the
// statement before it is not.
func (e *Engine) trap(x int) {
	if x < 0 {
		bad := make([]int, x) // want `make`
		_ = bad
	}
	if x > 10 {
		panic(append(e.buf, x)) // allocation feeding panic is exempt: no finding
	}
}

// cold is unreachable from Step: its allocations produce no findings.
func (e *Engine) cold() {
	_ = make([]int, 8)
	_ = append([]int{}, 1)
	go e.process(1)
	sink(1)
}
