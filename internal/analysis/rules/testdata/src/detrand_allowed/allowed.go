// Package allowed is checked under an allowlisted import path
// (alock/internal/rt): the same calls that are findings elsewhere are
// exempt here, so the file carries no want comments.
package allowed

import (
	"math/rand"
	"time"
)

func seedClock() (*rand.Rand, time.Time) {
	return rand.New(rand.NewSource(7)), time.Now()
}
