// Package shardmemtest exercises the shardmem analyzer. It is checked
// under an in-scope import path (the locks scope) and models the
// engine shape: the sanctioned accessor names resolve words freely, any
// other function touching the substrate directly is flagged.
package shardmemtest

import (
	"alock/internal/mem"
	"alock/internal/ptr"
)

// Engine models the engine: execProtocol is in the sanctioned set.
type Engine struct{ space *mem.Space }

// execProtocol is sanctioned: the verb executor resolves words.
func (e *Engine) execProtocol(p ptr.Ptr) uint64 {
	return *e.space.WordAddr(p)
}

// rogue is not sanctioned.
func (e *Engine) rogue(p ptr.Ptr) uint64 {
	return *e.space.WordAddr(p) // want `outside the sanctioned accessor set`
}

// regionPeek escapes to region-level access, bypassing the audit hook.
func (e *Engine) regionPeek(p ptr.Ptr) uint64 {
	r := e.space.Region(p.NodeID()) // want `Space\.Region outside the sanctioned accessor set`
	return *r.WordAddr(p.Offset())  // want `bypasses the Space access audit`
}

// Thread models the engine thread: Read is in the sanctioned set.
type Thread struct{ e *Engine }

// Read is sanctioned.
func (t *Thread) Read(p ptr.Ptr) uint64 { return *t.e.space.WordAddr(p) }

// helper extends the accessor set explicitly via suppression.
func (t *Thread) helper(p ptr.Ptr) uint64 {
	return *t.e.space.WordAddr(p) //lint:allow shardmem fixture: accepted suppression extends the accessor set
}

// alloc is fine: allocation is not word resolution.
func (e *Engine) alloc(node int) ptr.Ptr {
	return e.space.AllocLine(node)
}
