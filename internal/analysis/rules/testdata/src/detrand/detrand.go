// Package detrandtest exercises the detrand analyzer: banned ambient
// randomness and wall-clock reads, the sanctioned stream-consuming
// patterns, and an accepted suppression.
package detrandtest

import (
	"math/rand"
	"time"
)

// newStream is the banned path: ad-hoc source construction.
func newStream() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `rand\.New is nondeterministic` `rand\.NewSource is nondeterministic`
}

// globalDraw uses the global source.
func globalDraw() int {
	return rand.Intn(10) // want `rand\.Intn is nondeterministic`
}

// wallClock reads real time.
func wallClock() time.Duration {
	t0 := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

// zipf is allowed: rand.NewZipf is a deterministic transformer over a
// caller-supplied stream.
func zipf(rng *rand.Rand) *rand.Zipf {
	return rand.NewZipf(rng, 1.2, 1, 63)
}

// draw is allowed: methods on a handed stream are the sanctioned pattern,
// and referencing the *rand.Rand type is not a draw.
func draw(rng *rand.Rand) int { return rng.Intn(10) }

// suppressed demonstrates an accepted per-site suppression.
func suppressed() time.Time {
	return time.Now() //lint:allow detrand fixture: accepted suppression with a reason
}
