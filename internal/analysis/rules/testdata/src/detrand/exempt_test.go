// _test.go files are exempt from detrand: tests may seed ad-hoc RNGs and
// read the wall clock freely. No want comments — no findings expected.
package detrandtest

import (
	"math/rand"
	"time"
)

func testOnlyHelper() (*rand.Rand, time.Time) {
	return rand.New(rand.NewSource(1)), time.Now()
}
