// Package lockordertest exercises the lockorder analyzer: overlapping
// acquires must be provably ascending by lock index — via constants, an
// if-swap normalization, or a sorted index slice.
package lockordertest

import (
	"sort"

	"alock/internal/api"
	"alock/internal/ptr"
)

type locker struct{ t api.TokenLocker }

func (l *locker) Acquire(p ptr.Ptr, m api.Mode, o api.AcquireOpts) (api.Guard, api.Outcome) {
	return l.t.Acquire(p, m, o)
}

func (l *locker) Release(g api.Guard) api.ReleaseOutcome { return l.t.Release(g) }

type table struct{ ptrs []ptr.Ptr }

func (t *table) Ptr(i int) ptr.Ptr { return t.ptrs[i] }

// constAscending acquires 0 then 1: provably ascending, no finding.
func constAscending(h *locker, t *table) {
	g1, _ := h.Acquire(t.Ptr(0), api.Exclusive, api.AcquireOpts{})
	g2, _ := h.Acquire(t.Ptr(1), api.Exclusive, api.AcquireOpts{})
	h.Release(g2)
	h.Release(g1)
}

// constDescending acquires 2 then 1: the classic deadlock shape.
func constDescending(h *locker, t *table) {
	g1, _ := h.Acquire(t.Ptr(2), api.Exclusive, api.AcquireOpts{})
	g2, _ := h.Acquire(t.Ptr(1), api.Exclusive, api.AcquireOpts{}) // want `descending order can deadlock`
	h.Release(g2)
	h.Release(g1)
}

// constTwice re-acquires the same index while the first hold is live.
func constTwice(h *locker, t *table) {
	g1, _ := h.Acquire(t.Ptr(1), api.Exclusive, api.AcquireOpts{})
	g2, _ := h.Acquire(t.Ptr(1), api.Exclusive, api.AcquireOpts{}) // want `acquired twice with the first hold still live`
	h.Release(g2)
	h.Release(g1)
}

// swapNormalized is the pair-transaction discipline: normalize, then
// acquire min first. No finding.
func swapNormalized(h *locker, t *table, a, b int) {
	if b < a {
		a, b = b, a
	}
	g1, _ := h.Acquire(t.Ptr(a), api.Exclusive, api.AcquireOpts{})
	g2, _ := h.Acquire(t.Ptr(b), api.Exclusive, api.AcquireOpts{})
	h.Release(g2)
	h.Release(g1)
}

// swapBackwards normalizes but then acquires the larger index first: the
// swap must not count as evidence in the wrong direction.
func swapBackwards(h *locker, t *table, a, b int) {
	if b < a {
		a, b = b, a
	}
	g1, _ := h.Acquire(t.Ptr(b), api.Exclusive, api.AcquireOpts{})
	g2, _ := h.Acquire(t.Ptr(a), api.Exclusive, api.AcquireOpts{}) // want `lock order unprovable`
	h.Release(g2)
	h.Release(g1)
}

// viaAlias mirrors the workload pair path: the first lock pointer is
// hoisted into a local and the second index reaches the acquire through a
// plain alias assignment.
func viaAlias(h *locker, t *table, idx, j int) {
	if j < idx {
		idx, j = j, idx
	}
	pair := j
	l := t.Ptr(idx)
	g1, _ := h.Acquire(l, api.Exclusive, api.AcquireOpts{})
	g2, _ := h.Acquire(t.Ptr(pair), api.Exclusive, api.AcquireOpts{})
	h.Release(g2)
	h.Release(g1)
}

// noEvidence overlaps two variable-indexed acquires with nothing relating
// the indices.
func noEvidence(h *locker, t *table, a, b int) {
	g1, _ := h.Acquire(t.Ptr(a), api.Exclusive, api.AcquireOpts{})
	g2, _ := h.Acquire(t.Ptr(b), api.Exclusive, api.AcquireOpts{}) // want `lock order unprovable`
	h.Release(g2)
	h.Release(g1)
}

// releasedBetween never overlaps the holds: order is irrelevant.
func releasedBetween(h *locker, t *table, a, b int) {
	g1, _ := h.Acquire(t.Ptr(a), api.Exclusive, api.AcquireOpts{})
	h.Release(g1)
	g2, _ := h.Acquire(t.Ptr(b), api.Exclusive, api.AcquireOpts{})
	h.Release(g2)
}

// differentTables acquires from two distinct tables: their indices share
// no order domain, so the constant "descent" is not a finding.
func differentTables(h *locker, t1, t2 *table) {
	g1, _ := h.Acquire(t1.Ptr(5), api.Exclusive, api.AcquireOpts{})
	g2, _ := h.Acquire(t2.Ptr(0), api.Exclusive, api.AcquireOpts{})
	h.Release(g2)
	h.Release(g1)
}

// pickRaw builds a descending (unsorted) index set.
func pickRaw(n int) []int {
	idxs := make([]int, 0, n)
	for i := n - 1; i >= 0; i-- {
		idxs = append(idxs, i)
	}
	return idxs
}

// pickSorted sorts conditionally, like the transaction picker: the
// ordered-mode gate lives in the producer.
func pickSorted(n int, ordered bool) []int {
	idxs := pickRaw(n)
	if ordered {
		sort.Ints(idxs)
	}
	return idxs
}

// sortedLoop sorts in-function before acquiring in slice order: clean.
func sortedLoop(h *locker, t *table, n int) {
	idxs := pickRaw(n)
	sort.Ints(idxs)
	held := make([]api.Guard, 0, n)
	for _, li := range idxs {
		g, _ := h.Acquire(t.Ptr(li), api.Exclusive, api.AcquireOpts{})
		held = append(held, g)
	}
	for i := len(held) - 1; i >= 0; i-- {
		h.Release(held[i])
	}
}

// producerSorted trusts the callee's (conditional) sort: clean.
func producerSorted(h *locker, t *table, n int) {
	idxs := pickSorted(n, true)
	held := make([]api.Guard, 0, n)
	for _, li := range idxs {
		g, _ := h.Acquire(t.Ptr(li), api.Exclusive, api.AcquireOpts{})
		held = append(held, g)
	}
	for i := len(held) - 1; i >= 0; i-- {
		h.Release(held[i])
	}
}

// unsortedLoop acquires in the order of a slice nothing ever sorts.
func unsortedLoop(h *locker, t *table, n int) {
	idxs := pickRaw(n)
	held := make([]api.Guard, 0, n)
	for _, li := range idxs {
		g, _ := h.Acquire(t.Ptr(li), api.Exclusive, api.AcquireOpts{}) // want `not provably sorted`
		held = append(held, g)
	}
	for i := len(held) - 1; i >= 0; i-- {
		h.Release(held[i])
	}
}
