// Package guardflowtest exercises the guardflow analyzer: guards must be
// released, abandoned, or handed off on every CFG path, with outcome
// checks refining which paths actually hold the lock.
package guardflowtest

import (
	"alock/internal/api"
	"alock/internal/ptr"
)

type locker struct{ t api.TokenLocker }

func (l *locker) Acquire(p ptr.Ptr, m api.Mode, o api.AcquireOpts) (api.Guard, api.Outcome) {
	return l.t.Acquire(p, m, o)
}

func (l *locker) Release(g api.Guard) api.ReleaseOutcome { return l.t.Release(g) }

func (l *locker) Abandon(g api.Guard) { l.t.Abandon(g) }

// clean acquires, dismisses the timeout branch, and releases: no finding.
func clean(h *locker, p ptr.Ptr) {
	g, out := h.Acquire(p, api.Exclusive, api.AcquireOpts{DeadlineNS: 10})
	if out == api.TimedOut {
		return
	}
	h.Release(g)
}

// leakEarlyReturn forgets the guard on the error path.
func leakEarlyReturn(h *locker, p ptr.Ptr, bad bool) {
	g, out := h.Acquire(p, api.Exclusive, api.AcquireOpts{DeadlineNS: 10}) // want `guard g may leak`
	if out == api.TimedOut {
		return
	}
	if bad {
		return // the live guard leaks here
	}
	h.Release(g)
}

// leakOnTimeoutBranch mixes up the outcome test: the code releases on the
// timeout branch (harmless, Fenced) and leaks on the granted one.
func leakOnTimeoutBranch(h *locker, p ptr.Ptr) {
	g, out := h.Acquire(p, api.Exclusive, api.AcquireOpts{DeadlineNS: 10}) // want `guard g may leak`
	if out == api.TimedOut {
		h.Release(g)
		return
	}
	// granted path falls off without a release
}

// grantedRefinement: != TimedOut proves the guard live; releasing only
// under that test is exactly right.
func grantedRefinement(h *locker, p ptr.Ptr) {
	g, out := h.Acquire(p, api.Exclusive, api.AcquireOpts{DeadlineNS: 10})
	if out != api.TimedOut {
		h.Release(g)
	}
}

// grantedMethod uses Outcome.Granted for the refinement.
func grantedMethod(h *locker, p ptr.Ptr) {
	g, out := h.Acquire(p, api.Exclusive, api.AcquireOpts{DeadlineNS: 10})
	if !out.Granted() {
		return
	}
	h.Release(g)
}

// timedOutAlias mirrors the public wrapper's constant re-export; the
// refinement must match it by value, not by object identity.
const timedOutAlias = api.TimedOut

// aliasedRefinement dismisses the timeout branch through the re-exported
// constant: no finding.
func aliasedRefinement(h *locker, p ptr.Ptr) {
	g, out := h.Acquire(p, api.Exclusive, api.AcquireOpts{DeadlineNS: 10})
	if out == timedOutAlias {
		return
	}
	h.Release(g)
}

// escapesByReturn hands the live guard to the caller: the obligation
// transfers, no finding.
func escapesByReturn(h *locker, p ptr.Ptr) (api.Guard, api.Outcome) {
	g, out := h.Acquire(p, api.Exclusive, api.AcquireOpts{})
	return g, out
}

// escapesToSlice parks guards in a held-set released elsewhere.
func escapesToSlice(h *locker, p ptr.Ptr, held []api.Guard) []api.Guard {
	g, out := h.Acquire(p, api.Exclusive, api.AcquireOpts{})
	if out == api.TimedOut {
		return held
	}
	held = append(held, g)
	return held
}

// releaseHelper provably releases its guard parameter.
func releaseHelper(h *locker, g api.Guard) {
	h.Release(g)
}

// dropsGuard provably drops its guard parameter — passing a live guard
// here does not discharge the caller's obligation.
func dropsGuard(h *locker, g api.Guard) int {
	return 0
}

// delegatesRelease trusts the helper's summary: no finding.
func delegatesRelease(h *locker, p ptr.Ptr) {
	g, out := h.Acquire(p, api.Exclusive, api.AcquireOpts{DeadlineNS: 10})
	if out == api.TimedOut {
		return
	}
	releaseHelper(h, g)
}

// delegatesToDropper leaks: the callee's summary says the guard is not
// handled there.
func delegatesToDropper(h *locker, p ptr.Ptr) {
	g, out := h.Acquire(p, api.Exclusive, api.AcquireOpts{DeadlineNS: 10}) // want `guard g may leak`
	if out == api.TimedOut {
		return
	}
	dropsGuard(h, g)
}

// deferredRelease registers the release up front: every exit is covered.
func deferredRelease(h *locker, p ptr.Ptr, n int) int {
	g, out := h.Acquire(p, api.Exclusive, api.AcquireOpts{})
	_ = out
	defer h.Release(g)
	if n > 0 {
		return n
	}
	return -n
}

// doubleRelease releases twice and never looks at the second outcome.
func doubleRelease(h *locker, p ptr.Ptr) {
	g, out := h.Acquire(p, api.Exclusive, api.AcquireOpts{DeadlineNS: 10})
	if out == api.TimedOut {
		return
	}
	h.Release(g)
	h.Release(g) // want `already released on this path`
}

// fencedCheck is the sanctioned double-release shape: Abandon, then a
// Release whose Fenced outcome is asserted.
func fencedCheck(h *locker, p ptr.Ptr) bool {
	g, out := h.Acquire(p, api.Exclusive, api.AcquireOpts{DeadlineNS: 10})
	if out == api.TimedOut {
		return false
	}
	h.Abandon(g)
	return h.Release(g) == api.Fenced
}

// retryLoop is the txn-harness shape: retry while TimedOut, then release.
func retryLoop(h *locker, p ptr.Ptr) {
	var g api.Guard
	var out api.Outcome
	for {
		g, out = h.Acquire(p, api.Exclusive, api.AcquireOpts{DeadlineNS: 10})
		if out != api.TimedOut {
			break
		}
	}
	h.Release(g)
}

// reacquireWhileHeld overwrites a live guard without releasing it first.
func reacquireWhileHeld(h *locker, p, q ptr.Ptr) {
	g, out := h.Acquire(p, api.Exclusive, api.AcquireOpts{DeadlineNS: 10})
	if out != api.TimedOut {
		g, out = h.Acquire(q, api.Exclusive, api.AcquireOpts{DeadlineNS: 10}) // want `reacquired while the previous acquisition may still be held`
		if out != api.TimedOut {
			h.Release(g)
		}
	}
}
