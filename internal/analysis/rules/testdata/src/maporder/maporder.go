// Package maportest exercises the maporder analyzer: the sorted-keys
// idiom, commutative bodies, and the order-dependent shapes it flags.
package maportest

import (
	"fmt"
	"sort"
)

// collectSorted is the sanctioned idiom: bare keys, sorted afterwards.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectUnsorted forgets the sort half of the idiom.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `keys collected into keys are never sorted`
		keys = append(keys, k)
	}
	return keys
}

// appendValues builds a result slice in iteration order.
func appendValues(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v) // want `appends map values in iteration order`
	}
	return vals
}

// printBody emits output per iteration.
func printBody(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `calls fmt\.Println per iteration`
	}
}

// anyElement returns whichever element the runtime visits first.
func anyElement(m map[string]int) string {
	for k := range m {
		return k // want `returns an arbitrary element`
	}
	return ""
}

// floatSum is flagged: float addition is not associative, so even an
// accumulation is order-dependent at the bit level.
func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `non-integer accumulation`
	}
	return sum
}

// commutes is all allowed shapes: integer accumulation, counting, writes
// to another map keyed by the loop key, key-derived deletes.
func commutes(m map[string]int, drop map[string]bool) (int, int, map[string]int) {
	n, sum := 0, 0
	out := make(map[string]int)
	for k, v := range m {
		if v > 0 {
			sum += v
			out[k] = v
			n++
		}
		if drop[k] {
			delete(out, k)
		}
	}
	return n, sum, out
}

// minValue is order-independent but beyond the analyzer's static proof;
// the suppression mirrors the real tree's annotated min-idiom sites.
func minValue(m map[string]int) int {
	best := int(^uint(0) >> 1)
	for _, v := range m {
		if v < best {
			best = v //lint:allow maporder pure minimum over values is order-independent
		}
	}
	return best
}
