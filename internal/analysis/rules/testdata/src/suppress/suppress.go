// Package suppresstest exercises the driver's //lint:allow policy: a
// reason is mandatory, unknown analyzer names are rejected, and a
// directive suppresses only the analyzer it names.
package suppresstest

import "math/rand"

// banned has no directive: the finding stands.
func banned() int {
	return rand.Int() // want `rand\.Int is nondeterministic`
}

// allowed carries a well-formed directive: suppressed, no finding.
func allowed() int {
	return rand.Int() //lint:allow detrand fixture: accepted suppression with a reason
}

// lineAbove shows a directive covering the next line.
func lineAbove() int {
	//lint:allow detrand fixture: directive on its own line covers the line below
	return rand.Int()
}

// wrongAnalyzer names a real analyzer that did not produce the finding:
// the directive is well-formed (no directive error) but detrand's finding
// survives, and the maporder waiver — suppressing nothing — is stale.
func wrongAnalyzer() int {
	return rand.Int() /*lint:allow maporder fixture: suppressing a different analyzer*/ // want `rand\.Int is nondeterministic` `stale //lint:allow maporder`
}

// unknownName is rejected even with a reason, and suppresses nothing.
func unknownName() int {
	return rand.Int() /*lint:allow nosuchanalyzer a reason does not rescue an unknown name*/ // want `unknown analyzer "nosuchanalyzer"` `rand\.Int is nondeterministic`
}

// missingReason is rejected: the reason is mandatory.
func missingReason() int {
	return rand.Int() /*lint:allow detrand*/ // want `requires a reason` `rand\.Int is nondeterministic`
}
