// Package outofscope has the same substrate accesses as the shardmem
// fixture but is checked under a package path outside the sim/locks
// scopes: the harness owns the whole space and may peek freely, so no
// findings are expected.
package outofscope

import (
	"alock/internal/mem"
	"alock/internal/ptr"
)

// peek reads a word directly; fine outside the engine scopes.
func peek(s *mem.Space, p ptr.Ptr) uint64 {
	return *s.WordAddr(p)
}

// regionPeek goes through the region; also fine here.
func regionPeek(s *mem.Space, p ptr.Ptr) uint64 {
	return *s.Region(p.NodeID()).WordAddr(p.Offset())
}
