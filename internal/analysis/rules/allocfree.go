package rules

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"alock/internal/analysis"
	"alock/internal/analysis/callgraph"
)

// Allocfree proves the hot-path roots in HotPathRoots allocation-free:
// every function reachable from them over call/defer edges (go edges are
// goroutine startup, priced separately) must contain no heap-allocating
// construct. It is the static twin of alloc_test.go's AllocsPerRun and
// Mallocs probes: the probes check the paths a test drives, this checks
// all of them.
var Allocfree = NewAllocfree(HotPathRoots)

// NewAllocfree builds an allocfree analyzer over a custom root set, in
// callgraph name format ("pkgpath.(*Recv).Method"). Fixture tests use
// fixture-local roots; the production instance uses HotPathRoots.
func NewAllocfree(roots []string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "allocfree",
		Doc: "forbids heap-allocating constructs (capturing closures, goroutine " +
			"spawns, interface boxing at call sites, non-self append, make, " +
			"map/slice literals, new/&composite) in every function reachable " +
			"from the hot-path roots; constructs feeding a panic are exempt " +
			"(trap paths terminate the run)",
	}
	a.RunModule = func(mp *analysis.ModulePass) error {
		runAllocfree(mp, roots)
		return nil
	}
	return a
}

func runAllocfree(mp *analysis.ModulePass, roots []string) {
	g := moduleGraph(mp)
	var rootNodes []*callgraph.Node
	for _, r := range roots {
		n := g.Lookup(r)
		if n == nil {
			// A missing root means a rename silently shrank the proved
			// surface; that is itself a finding, attributed to the root
			// config's package would be ideal but position-less is visible
			// enough to fail the run.
			mp.Reportf(token.NoPos, "hot-path root %q does not resolve to a module function; update HotPathRoots", r)
			continue
		}
		rootNodes = append(rootNodes, n)
	}
	reach := callgraph.Reachable(rootNodes, false)
	for _, n := range g.Nodes() {
		if !reach[n] || n.Body() == nil {
			continue
		}
		if strings.HasSuffix(n.Pkg.Fset.Position(n.Pos()).Filename, "_test.go") {
			continue
		}
		scanAllocs(mp, n)
	}
}

// scanAllocs reports every allocating construct in one hot node's body.
// Nested function literals are their own nodes (scanned if themselves
// reachable); here only their creation cost — the closure environment —
// is charged to the parent.
func scanAllocs(mp *analysis.ModulePass, n *callgraph.Node) {
	info := n.Pkg.TypesInfo
	body := n.Body()
	exempt := panicArgRanges(body)
	report := func(pos token.Pos, format string, args ...any) {
		for _, r := range exempt {
			if pos >= r[0] && pos < r[1] {
				return
			}
		}
		mp.Reportf(pos, "hot-path %s allocates: %s", n.Name(), fmt.Sprintf(format, args...))
	}

	// Self-appends (x = append(x, ...)) are amortized by the retained
	// backing array and stay allocation-free in steady state; collect
	// them first so the CallExpr walk can skip them.
	selfAppend := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(nd ast.Node) bool {
		as, ok := nd.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Rhs {
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || !isBuiltin(info, id) {
				continue
			}
			dst := allocTarget(info, as.Lhs[i])
			src := allocTarget(info, call.Args[0])
			if dst != nil && dst == src {
				selfAppend[call] = true
			}
		}
		return true
	})

	ast.Inspect(body, func(nd ast.Node) bool {
		switch v := nd.(type) {
		case *ast.FuncLit:
			if capt := litCapture(info, v); capt != "" {
				report(v.Pos(), "closure captures %s", capt)
			}
			return false // the literal's own body is a separate node
		case *ast.GoStmt:
			report(v.Pos(), "go statement spawns a goroutine")
		case *ast.CallExpr:
			checkAllocCall(info, v, selfAppend, report)
		case *ast.CompositeLit:
			switch info.Types[v].Type.Underlying().(type) {
			case *types.Slice:
				report(v.Pos(), "slice literal")
				return false
			case *types.Map:
				report(v.Pos(), "map literal")
				return false
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if _, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
					report(v.Pos(), "&composite literal escapes to the heap")
				}
			}
		}
		return true
	})
}

// checkAllocCall charges builtin allocators and interface boxing of
// arguments at one call site.
func checkAllocCall(info *types.Info, call *ast.CallExpr, selfAppend map[*ast.CallExpr]bool, report func(token.Pos, string, ...any)) {
	if id, ok := call.Fun.(*ast.Ident); ok && isBuiltin(info, id) {
		switch id.Name {
		case "make":
			report(call.Pos(), "make")
		case "new":
			report(call.Pos(), "new")
		case "append":
			if !selfAppend[call] {
				report(call.Pos(), "append into a new backing array (not x = append(x, ...))")
			}
		}
		return
	}
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		return // conversion, charged elsewhere if it boxes
	}
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		report(arg.Pos(), "argument %s boxed into interface parameter", typeLabel(at))
	}
	// A variadic call with at least one variadic element materializes the
	// argument slice; with none, the callee sees nil.
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= params.Len() {
		report(call.Pos(), "variadic call materializes an argument slice")
	}
}

// allocTarget resolves an append operand to a comparable object: the
// variable for identifiers, the field object for selector expressions
// (x.buf matches x.buf regardless of receiver spelling — per-field, not
// per-instance, which is the right granularity for the self-append
// exemption).
func allocTarget(info *types.Info, e ast.Expr) types.Object {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[v]; obj != nil {
			return obj
		}
		return info.Defs[v]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return info.Uses[v.Sel]
	}
	return nil
}

// callSignature resolves the signature a call invokes, nil for builtins
// and conversions.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// litCapture returns the name of a variable a function literal captures
// from its enclosing function, or "" for capture-free literals (which
// the compiler hoists to static functions, no allocation).
func litCapture(info *types.Info, lit *ast.FuncLit) string {
	capture := ""
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		if capture != "" {
			return false
		}
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		// Declared outside the literal but not at package scope ⇒ the
		// literal closes over the enclosing function's frame.
		if v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			capture = v.Name()
		}
		return true
	})
	return capture
}

// pointerShaped reports whether values of t fit a pointer word, so
// converting them to an interface stores the value directly without a
// heap allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}

// panicArgRanges collects the source ranges of every panic(...) argument
// in a body: allocation on a trap path is exempt, the run is over anyway.
func panicArgRanges(body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			for _, a := range call.Args {
				out = append(out, [2]token.Pos{a.Pos(), a.End()})
			}
		}
		return true
	})
	return out
}

// typeLabel renders a type tersely for diagnostics.
func typeLabel(t types.Type) string {
	s := t.String()
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		return s[i+1:]
	}
	return s
}
