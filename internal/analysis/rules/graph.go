package rules

import (
	"sync"

	"alock/internal/analysis"
	"alock/internal/analysis/callgraph"
)

// graphCache memoizes the call graph per loaded package set, so the four
// interprocedural analyzers share one build instead of each paying the
// fixpoint cost. The key is the identity of the package set (first
// package pointer + length): within one process a given set is loaded
// once, and distinct fixture sets never alias.
var graphCache struct {
	sync.Mutex
	key   *analysis.Package
	count int
	graph *callgraph.Graph
}

// moduleGraph returns the call graph for a module pass's package set,
// building it on first use.
func moduleGraph(mp *analysis.ModulePass) *callgraph.Graph {
	graphCache.Lock()
	defer graphCache.Unlock()
	var key *analysis.Package
	if len(mp.Pkgs) > 0 {
		key = mp.Pkgs[0]
	}
	if graphCache.graph != nil && graphCache.key == key && graphCache.count == len(mp.Pkgs) {
		return graphCache.graph
	}
	g := callgraph.Build(mp.Pkgs)
	graphCache.key = key
	graphCache.count = len(mp.Pkgs)
	graphCache.graph = g
	return g
}
