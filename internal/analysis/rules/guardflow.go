package rules

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"alock/internal/analysis"
	"alock/internal/analysis/callgraph"
	"alock/internal/analysis/flow"
)

// Guardflow is the interprocedural upgrade of guardcheck: every api.Guard
// whose acquisition may have succeeded must reach a Release/Abandon call,
// or escape to code that owns it (returned, stored, appended, passed to a
// callee that provably handles its guard parameter), on every CFG path.
// It flags leak-on-early-return, guards re-acquired while possibly still
// held, and releases of already-released guards whose ReleaseOutcome is
// discarded (an intentional double release checks for Fenced).
//
// Outcome checks refine the path state: on the true edge of
// `out == api.TimedOut` (or the false edge of out.Granted()) the guard is
// dead and needs no release; on edges proving Acquired/AcquiredLate it
// must be released. A guard whose outcome is never narrowed is treated as
// possibly live on every path.
var Guardflow = &analysis.Analyzer{
	Name: "guardflow",
	Doc: "an api.Guard that may be live must reach Release/Abandon or escape " +
		"to its owner on every path; double releases must check the outcome",
	RunModule: runGuardflow,
}

// Guard lifetime states, ordered by join severity: a path needing no
// release joins below a path that may still hold the lock.
const (
	gsReleased  int8 = iota + 1 // Release/Abandon reached
	gsEscaped                   // returned/stored/handed to owning code
	gsDismissed                 // outcome proved TimedOut: nothing held
	gsCond                      // acquired, outcome not yet narrowed
	gsLive                      // outcome proved granted: release required
)

// gstate is one guard's state plus the outcome variable its acquisition
// bound, for branch refinement.
type gstate struct {
	st  int8
	out types.Object
}

// gmap is the solver state: live guard objects to their lifetime state.
// Maps are treated as immutable; transfer clones before writing.
type gmap map[types.Object]gstate

func (m gmap) clone() gmap {
	c := make(gmap, len(m)+1)
	for k, v := range m {
		c[k] = v
	}
	return c
}

func gmapEqual(a, b gmap) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false //lint:allow maporder early exit from an equality check: the verdict is the same whichever mismatch is seen first
		}
	}
	return true
}

func gmapJoin(a, b gmap) gmap {
	out := a.clone()
	for k, v := range b {
		if cur, ok := out[k]; !ok || v.st > cur.st {
			out[k] = v
		}
	}
	return out
}

// guardFn is the per-function analysis context.
type guardFn struct {
	node  *callgraph.Node
	info  *types.Info
	cfg   *flow.CFG
	edges map[*ast.CallExpr][]*callgraph.Node
	// handles[node][i] reports whether the callee releases/escapes its
	// i-th parameter (guard-typed params only; others true vacuously).
	handles map[*callgraph.Node][]bool
	report  func(token.Pos, string, ...any)
}

func runGuardflow(mp *analysis.ModulePass) error {
	g := moduleGraph(mp)

	// Collect the functions that mention guards at all; everything else
	// needs no CFG.
	var fns []*guardFn
	handles := make(map[*callgraph.Node][]bool)
	for _, n := range g.Nodes() {
		if n.Body() == nil || strings.HasSuffix(n.Pkg.Fset.Position(n.Pos()).Filename, "_test.go") {
			continue
		}
		if !mentionsGuard(n) {
			continue
		}
		f := &guardFn{node: n, info: n.Pkg.TypesInfo, cfg: flow.New(n.Body()), handles: handles}
		f.edges = make(map[*ast.CallExpr][]*callgraph.Node)
		for _, e := range n.Out {
			f.edges[e.Site] = append(f.edges[e.Site], e.To)
		}
		fns = append(fns, f)
		handles[n] = optimisticSummary(n)
	}

	// Converge the guard-parameter summaries: start optimistic (every
	// callee handles its guards) and demote until stable. Demotion is
	// monotone, so the loop terminates in ≤ params×fns rounds.
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			sum := handles[f.node]
			if !anyTrue(sum) {
				continue
			}
			exit := f.solveParams()
			for i, h := range sum {
				if h && !exit[i] {
					sum[i] = false
					changed = true
				}
			}
		}
	}

	// Final pass: rerun each function's dataflow with reporting on.
	for _, f := range fns {
		f.report = func(pos token.Pos, format string, args ...any) {
			mp.Reportf(pos, format, args...)
		}
		f.check()
	}
	return nil
}

// mentionsGuard reports whether the node's body references the api.Guard
// type anywhere (acquire calls, guard params, guard vars).
func mentionsGuard(n *callgraph.Node) bool {
	found := false
	info := n.Pkg.TypesInfo
	ast.Inspect(n.Body(), func(nd ast.Node) bool {
		if found {
			return false
		}
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj != nil && isGuardType(obj.Type()) {
			found = true
		}
		return true
	})
	if found {
		return true
	}
	// A guard-typed parameter may go entirely unused (that is the leak).
	if sig := funcSig(n); sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			if isGuardType(sig.Params().At(i).Type()) {
				return true
			}
		}
	}
	return false
}

func funcSig(n *callgraph.Node) *types.Signature {
	if n.Fn != nil {
		sig, _ := n.Fn.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil {
		sig, _ := n.Pkg.TypesInfo.Types[n.Lit].Type.(*types.Signature)
		return sig
	}
	return nil
}

func isGuardType(t types.Type) bool {
	named, _ := t.(*types.Named)
	return isPkgType(named, apiPkgPath, "Guard")
}

// optimisticSummary seeds a node's handles vector: true for every
// parameter (guard or not; non-guard entries are never consulted).
func optimisticSummary(n *callgraph.Node) []bool {
	sig := funcSig(n)
	if sig == nil {
		return nil
	}
	sum := make([]bool, sig.Params().Len())
	for i := range sum {
		sum[i] = true
	}
	return sum
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// solveParams runs the dataflow with every guard parameter seeded live
// and reports, per parameter, whether it is handled on all exit paths.
func (f *guardFn) solveParams() []bool {
	sig := funcSig(f.node)
	out := make([]bool, sig.Params().Len())
	entry := make(gmap)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		out[i] = true
		if isGuardType(p.Type()) {
			entry[p] = gstate{st: gsCond}
		}
	}
	in := f.solve(entry)
	exit, reachable := flow.ExitState(f.cfg, in)
	if !reachable {
		return out // every path panics or loops: nothing leaks to a caller
	}
	exitSt := f.transfer(f.cfg.Exit, exit, nil)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if !isGuardType(p.Type()) {
			continue
		}
		if st, ok := exitSt[p]; ok && st.st >= gsCond {
			out[i] = false
		}
	}
	return out
}

// solve runs the forward solver from an entry state.
func (f *guardFn) solve(entry gmap) map[*flow.Block]gmap {
	return flow.Solve(f.cfg, entry, flow.Solver[gmap]{
		Transfer: func(b *flow.Block, in gmap) gmap { return f.transfer(b, in, nil) },
		Branch:   f.refine,
		Join:     gmapJoin,
		Equal:    gmapEqual,
	})
}

// check runs the final reporting pass: solve, then replay each reachable
// block once with reporting enabled, then flag exit leaks.
func (f *guardFn) check() {
	entry := make(gmap)
	in := f.solve(entry)
	reported := make(map[token.Pos]bool)
	reportOnce := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			f.report(pos, format, args...)
		}
	}
	for _, b := range f.cfg.Blocks {
		st, ok := in[b]
		if !ok {
			continue
		}
		f.transfer(b, st, reportOnce)
	}
	exit, reachable := flow.ExitState(f.cfg, in)
	if !reachable {
		return
	}
	exitSt := f.transfer(f.cfg.Exit, exit, nil)
	// Deterministic order for the leak reports.
	var leaked []types.Object
	for obj, st := range exitSt {
		if st.st >= gsCond {
			leaked = append(leaked, obj)
		}
	}
	sort.Slice(leaked, func(i, j int) bool { return leaked[i].Pos() < leaked[j].Pos() })
	for _, obj := range leaked {
		if _, isParam := obj.(*types.Var); isParam && obj.Pos() < f.node.Body().Pos() {
			// Parameter guards are the caller's problem; solveParams
			// already folded this into the summary consulted there.
			continue
		}
		reportOnce(obj.Pos(), "guard %s may leak: acquired but not released or handed off on every path", obj.Name())
	}
}

// transfer applies one block's statements to the state. report, when
// non-nil, emits the in-block findings (double release, reacquire while
// held).
func (f *guardFn) transfer(b *flow.Block, in gmap, report func(token.Pos, string, ...any)) gmap {
	st := in
	set := func(obj types.Object, gs gstate) {
		if st == nil {
			st = make(gmap)
		}
		st = st.clone()
		st[obj] = gs
	}
	for _, s := range b.Stmts {
		// A release whose call is a statement of its own (or deferred)
		// discards the ReleaseOutcome; anything else consumes it.
		bare := map[*ast.CallExpr]bool{}
		switch v := s.(type) {
		case *ast.ExprStmt:
			if c, ok := ast.Unparen(v.X).(*ast.CallExpr); ok {
				bare[c] = true
			}
		case *ast.DeferStmt:
			bare[v.Call] = true
		}
		ast.Inspect(s, func(nd ast.Node) bool {
			switch v := nd.(type) {
			case *ast.FuncLit:
				return false // separate node with its own CFG
			case *ast.CallExpr:
				f.applyCall(v, bare[v], &st, set, report)
			case *ast.AssignStmt:
				f.applyAssign(v, &st, set, report)
			case *ast.ReturnStmt:
				for _, r := range v.Results {
					f.escapeGuardsIn(r, &st, set)
				}
			case *ast.SendStmt:
				f.escapeGuardsIn(v.Value, &st, set)
			}
			return true
		})
	}
	return st
}

// applyCall handles a call site: release/abandon transitions, guard
// escapes through arguments, and double-release reporting.
func (f *guardFn) applyCall(call *ast.CallExpr, bare bool, st *gmap, set func(types.Object, gstate), report func(token.Pos, string, ...any)) {
	name := calleeBaseName(call)
	releasing := name == "Release" || name == "Abandon"
	// Guard as method receiver: g.Release().
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && releasing {
		if obj := guardObjOf(f.info, sel.X, *st); obj != nil {
			f.release(call, bare, obj, st, set, report)
		}
	}
	callees := f.edges[call]
	for i, arg := range call.Args {
		obj := guardObjOf(f.info, arg, *st)
		if obj == nil {
			continue
		}
		if releasing {
			f.release(call, bare, obj, st, set, report)
			continue
		}
		if f.calleesHandle(callees, i) {
			set(obj, gstate{st: gsEscaped})
		}
		// Otherwise: the callee provably drops its guard param; keep the
		// current state so an unreleased path still reports in this
		// function.
	}
}

// release transitions a guard to released, flagging a repeat release
// whose outcome is discarded (bare: the call is its own statement or
// deferred, so Fenced could never be observed).
func (f *guardFn) release(call *ast.CallExpr, bare bool, obj types.Object, st *gmap, set func(types.Object, gstate), report func(token.Pos, string, ...any)) {
	if cur, ok := (*st)[obj]; ok && cur.st == gsReleased && report != nil && bare {
		report(call.Pos(), "guard %s already released on this path: check the ReleaseOutcome (Fenced) if the double release is intentional", obj.Name())
	}
	set(obj, gstate{st: gsReleased})
}

// applyAssign handles acquire bindings, reacquire-while-held, and guard
// escapes through stores.
func (f *guardFn) applyAssign(as *ast.AssignStmt, st *gmap, set func(types.Object, gstate), report func(token.Pos, string, ...any)) {
	// Acquire-shaped binding: g, out := h.Acquire(...).
	if len(as.Rhs) == 1 && len(as.Lhs) == 2 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && isAcquireShaped(f.info, call) {
			gObj := assignObj(f.info, as.Lhs[0])
			oObj := assignObj(f.info, as.Lhs[1])
			if gObj != nil {
				if cur, ok := (*st)[gObj]; ok && cur.st == gsLive && report != nil {
					report(call.Pos(), "guard %s reacquired while the previous acquisition may still be held", gObj.Name())
				}
				set(gObj, gstate{st: gsCond, out: oObj})
			}
			return
		}
	}
	// Guard values on the RHS escape to their new home (slice, field,
	// other variable); the new owner carries the obligation.
	for _, r := range as.Rhs {
		f.escapeGuardsIn(r, st, set)
	}
}

// escapeGuardsIn marks every tracked guard referenced in expr as escaped.
func (f *guardFn) escapeGuardsIn(expr ast.Expr, st *gmap, set func(types.Object, gstate)) {
	ast.Inspect(expr, func(nd ast.Node) bool {
		if id, ok := nd.(*ast.Ident); ok {
			if obj := f.info.Uses[id]; obj != nil {
				if _, tracked := (*st)[obj]; tracked {
					set(obj, gstate{st: gsEscaped})
				}
			}
		}
		return true
	})
}

// calleesHandle reports whether every resolved callee handles its
// parameter at argument index i. Unresolved calls (builtins like append,
// stdlib, function values outside the lattice) are assumed to handle the
// guard: the escape rule is deliberately optimistic.
func (f *guardFn) calleesHandle(callees []*callgraph.Node, argIdx int) bool {
	if len(callees) == 0 {
		return true
	}
	for _, c := range callees {
		sum := f.handles[c]
		if sum == nil {
			return true // callee outside the analyzed set (no body)
		}
		idx := argIdx
		if sig := funcSig(c); sig != nil && sig.Variadic() && idx >= len(sum)-1 {
			idx = len(sum) - 1
		}
		if idx >= len(sum) || !sum[idx] {
			return false
		}
	}
	return true
}

// refine narrows guard states on outcome-check edges. succIdx 0 is the
// true edge, 1 the false edge.
func (f *guardFn) refine(b *flow.Block, succIdx int, out gmap) gmap {
	if b.Cond == nil || len(out) == 0 {
		return out
	}
	oObj, verdict := outcomeTest(f.info, b.Cond)
	if oObj == nil {
		return out
	}
	if succIdx == 1 {
		verdict = -verdict
	}
	var target int8
	switch verdict {
	case +1: // outcome proved granted
		target = gsLive
	case -1: // outcome proved timed out
		target = gsDismissed
	default:
		return out
	}
	refined := out
	cloned := false
	for obj, gs := range out {
		if gs.st == gsCond && gs.out != nil && gs.out == oObj {
			if !cloned {
				refined = out.clone() //lint:allow maporder copy-on-write clone: the refined state is the same whichever matching guard triggers it
				cloned = true
			}
			refined[obj] = gstate{st: target, out: gs.out}
		}
	}
	return refined
}

// outcomeTest decodes a condition over an outcome variable. It returns
// the outcome object and +1 if the true branch proves the guard granted,
// -1 if it proves it timed out, 0 if the condition says nothing.
func outcomeTest(info *types.Info, cond ast.Expr) (types.Object, int) {
	switch v := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if v.Op == token.NOT {
			obj, verdict := outcomeTest(info, v.X)
			return obj, -verdict
		}
	case *ast.CallExpr:
		// out.Granted() ⇔ Acquired or AcquiredLate.
		if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Granted" {
			if obj := objOf(info, sel.X); obj != nil && isOutcomeType(obj.Type()) {
				return obj, +1
			}
		}
	case *ast.BinaryExpr:
		if v.Op != token.EQL && v.Op != token.NEQ {
			return nil, 0
		}
		oObj, constName := outcomeComparison(info, v.X, v.Y)
		if oObj == nil {
			oObj, constName = outcomeComparison(info, v.Y, v.X)
		}
		if oObj == nil {
			return nil, 0
		}
		verdict := 0
		switch constName {
		case "Acquired", "AcquiredLate":
			// == Acquired proves granted on the true edge; != Acquired
			// proves nothing (AcquiredLate also grants).
			if v.Op == token.EQL {
				verdict = +1
			}
		case "TimedOut":
			if v.Op == token.EQL {
				verdict = -1
			} else {
				verdict = +1
			}
		}
		return oObj, verdict
	}
	return nil, 0
}

// outcomeComparison matches (outcome variable, outcome constant). The
// constant is matched by value against the api package's canonical
// Acquired/TimedOut/AcquiredLate, so re-exported constants (the public
// alock wrapper's `TimedOut = api.TimedOut`) refine exactly like the
// originals.
func outcomeComparison(info *types.Info, varSide, constSide ast.Expr) (types.Object, string) {
	obj := objOf(info, varSide)
	if obj == nil || !isOutcomeType(obj.Type()) {
		return nil, ""
	}
	if _, isConst := obj.(*types.Const); isConst {
		return nil, ""
	}
	c, ok := objOf(info, constSide).(*types.Const)
	if !ok || !isOutcomeType(c.Type()) {
		return nil, ""
	}
	named, _ := c.Type().(*types.Named)
	apiPkg := named.Obj().Pkg()
	if apiPkg == nil {
		return nil, ""
	}
	for _, name := range []string{"Acquired", "TimedOut", "AcquiredLate"} {
		canon, ok := apiPkg.Scope().Lookup(name).(*types.Const)
		if ok && constant.Compare(canon.Val(), token.EQL, c.Val()) {
			return obj, name
		}
	}
	return nil, ""
}

func isOutcomeType(t types.Type) bool {
	named, _ := t.(*types.Named)
	return isPkgType(named, apiPkgPath, "Outcome")
}

// guardObjOf resolves an expression to a tracked guard object, or nil.
func guardObjOf(info *types.Info, e ast.Expr, st gmap) types.Object {
	obj := objOf(info, e)
	if obj == nil {
		return nil
	}
	if _, tracked := st[obj]; tracked {
		return obj
	}
	if isGuardType(obj.Type()) {
		return obj
	}
	return nil
}

// assignObj resolves an assignment LHS to its object (defs for :=, uses
// for =), nil for blank or complex targets.
func assignObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// calleeBaseName returns the called function's unqualified name.
func calleeBaseName(call *ast.CallExpr) string {
	switch v := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	}
	return ""
}
