package rules

import (
	"testing"

	"alock/internal/analysis/analysistest"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata/src/detrand", "detrandtest", Detrand)
}

// TestDetrandAllowedPackage checks the package allowlist: the same kind of
// violations produce no findings when the package path is exempt.
func TestDetrandAllowedPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/detrand_allowed", "alock/internal/rt", Detrand)
}

func TestSuppressionPolicy(t *testing.T) {
	analysistest.Run(t, "testdata/src/suppress", "suppresstest", Detrand, Maporder)
}

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata/src/maporder", "maportest", Maporder)
}

func TestShardmem(t *testing.T) {
	analysistest.Run(t, "testdata/src/shardmem", "alock/internal/locks", Shardmem)
}

// TestShardmemOutOfScope checks that the analyzer is silent outside the
// sim/locks scopes even with direct substrate access present.
func TestShardmemOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/shardmem_outofscope", "alock/internal/harness", Shardmem)
}

func TestGuardcheck(t *testing.T) {
	analysistest.Run(t, "testdata/src/guardcheck", "guardchecktest", Guardcheck)
}

func TestRnggate(t *testing.T) {
	analysistest.Run(t, "testdata/src/rnggate", "rnggatetest", Rnggate)
}

func TestAllRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incomplete: Doc or Run missing", a.Name)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"detrand", "maporder", "shardmem", "guardcheck", "rnggate"} {
		if !names[want] {
			t.Errorf("All() is missing analyzer %q", want)
		}
	}
}
