package rules

import (
	"testing"

	"alock/internal/analysis/analysistest"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata/src/detrand", "detrandtest", Detrand)
}

// TestDetrandAllowedPackage checks the package allowlist: the same kind of
// violations produce no findings when the package path is exempt.
func TestDetrandAllowedPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/detrand_allowed", "alock/internal/rt", Detrand)
}

func TestSuppressionPolicy(t *testing.T) {
	analysistest.Run(t, "testdata/src/suppress", "suppresstest", Detrand, Maporder)
}

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata/src/maporder", "maportest", Maporder)
}

func TestShardmem(t *testing.T) {
	analysistest.Run(t, "testdata/src/shardmem", "alock/internal/locks", Shardmem)
}

// TestShardmemOutOfScope checks that the analyzer is silent outside the
// sim/locks scopes even with direct substrate access present.
func TestShardmemOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/shardmem_outofscope", "alock/internal/harness", Shardmem)
}

func TestGuardcheck(t *testing.T) {
	analysistest.Run(t, "testdata/src/guardcheck", "guardchecktest", Guardcheck)
}

func TestRnggate(t *testing.T) {
	analysistest.Run(t, "testdata/src/rnggate", "rnggatetest", Rnggate)
}

// TestGuardflow runs the interprocedural guard-lifetime check: leaks on
// early returns and timeout branches, escapes, delegation through
// summaries, double release, reacquire-while-held.
func TestGuardflow(t *testing.T) {
	analysistest.Run(t, "testdata/src/guardflow", "guardflowtest", Guardflow)
}

// TestAllocfree runs the interprocedural allocation check over a fixture
// root set; the slow-handler case proves call-through-interface
// reachability.
func TestAllocfree(t *testing.T) {
	analysistest.Run(t, "testdata/src/allocfree", "allocfreetest",
		NewAllocfree([]string{"allocfreetest.(*Engine).Step"}))
}

// TestLockorder runs the acquisition-order check: constant, if-swap, and
// sorted-slice evidence, with alias tracing and producer sorts.
func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata/src/lockorder", "lockordertest", Lockorder)
}

// TestShardflow runs the dispatch-reachability check: direct substrate
// access is flagged in anything reachable from the modeled runWindow root
// or a Spawn-registered thread body (including go and defer edges), and
// tolerated in the sanctioned accessors and unreachable code.
func TestShardflow(t *testing.T) {
	analysistest.Run(t, "testdata/src/shardflow", "shardflowtest",
		NewShardflow([]string{"shardflowtest.(*Engine).runWindow"}))
}

func TestAllRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %q incomplete: Name or Doc missing", a.Name)
		}
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("analyzer %q must set exactly one of Run and RunModule", a.Name)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"detrand", "maporder", "shardmem", "guardcheck", "rnggate",
		"allocfree", "guardflow", "lockorder", "shardflow"} {
		if !names[want] {
			t.Errorf("All() is missing analyzer %q", want)
		}
	}
}
