package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"alock/internal/analysis"
	"alock/internal/analysis/callgraph"
)

// ShardflowRoots name the windowed executor's per-shard dispatch: every
// function statically reachable from these (or from a thread body handed
// to Spawn) runs on a shard's private timeline during a parallel window.
// If a root fails to resolve the analyzer reports it, so a rename cannot
// silently turn the check off.
var ShardflowRoots = []string{
	"alock/internal/sim.(*shard).runWindow",
	"alock/internal/sim.(*Engine).runWindowed",
}

// Shardflow is the interprocedural twin of shardmem and the static twin
// of the runtime access audit (sim.WithAccessAudit): no function reachable
// from the per-shard dispatch may resolve memory words directly. Where
// shardmem checks every function in the sim/locks scopes one body at a
// time, shardflow follows the call graph — through any package — from the
// dispatch roots and the thread bodies registered via (*Engine).Spawn /
// (*Cluster).Spawn, including go and defer edges. Traversal stops at the
// sanctioned accessor set (ShardmemSanctioned): those functions route
// every access through mem.Space, whose audit hook enforces shard
// ownership at runtime. Everything else that touches
// (*mem.Space).WordAddr / Region or (*mem.Region).WordAddr on a dispatch
// path is a finding. Test files are skipped.
var Shardflow = NewShardflow(ShardflowRoots)

// NewShardflow builds the analyzer for an explicit root set; fixtures use
// it to model the dispatch shape under a test import path.
func NewShardflow(roots []string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:      "shardflow",
		Doc:       "code reachable from per-shard dispatch must not resolve memory words outside the sanctioned accessors",
		RunModule: func(mp *analysis.ModulePass) error { return runShardflow(mp, roots) },
	}
}

// shardflowExemptPkgs are packages whose bodies are never reported even
// when reached: the memory substrate itself (its internals implement the
// audited accessors) and the wall-clock runtime (its threads run on real
// time with no shard timelines to isolate — the Ctx-verb methods there
// are the moral equivalent of the sanctioned set, reached through
// api.Ctx interface dispatch).
var shardflowExemptPkgs = map[string]bool{
	memPkgPath:          true,
	"alock/internal/rt": true,
}

func runShardflow(mp *analysis.ModulePass, roots []string) error {
	g := moduleGraph(mp)
	var rootNodes []*callgraph.Node
	rootPkgs := map[string]bool{}
	for _, r := range roots {
		n := g.Lookup(r)
		if n == nil {
			mp.Reportf(token.NoPos,
				"shard-dispatch root %q does not resolve to a function in the module (renamed? update rules.ShardflowRoots)", r)
			continue
		}
		rootNodes = append(rootNodes, n)
		if n.Pkg != nil {
			rootPkgs[n.Pkg.ImportPath] = true
		}
	}
	rootNodes = append(rootNodes, spawnBodies(mp, g, rootPkgs)...)
	reached := reachableSharded(rootNodes)
	for _, n := range g.Nodes() {
		if !reached[n] || n.Body() == nil || n.Pkg == nil {
			continue
		}
		if shardflowExemptPkgs[n.Pkg.ImportPath] {
			continue
		}
		if strings.HasSuffix(mp.Fset.Position(n.Pos()).Filename, "_test.go") {
			continue
		}
		scanSubstrateAccess(mp, n)
	}
	return nil
}

// spawnBodies resolves the function values handed to a Spawn method of
// the engine package that owns the dispatch roots, outside test files:
// thread bodies resume inside shard windows through channels the call
// graph cannot see, so they are roots in their own right. Spawn methods
// of other runtimes (the wall-clock Cluster) schedule no shard windows
// and are ignored.
func spawnBodies(mp *analysis.ModulePass, g *callgraph.Graph, rootPkgs map[string]bool) []*callgraph.Node {
	var out []*callgraph.Node
	for _, pkg := range mp.Pkgs {
		info := pkg.TypesInfo
		for _, f := range pkg.Files {
			if strings.HasSuffix(mp.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) < 2 {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Spawn" {
					return true
				}
				selection := info.Selections[sel]
				if selection == nil || selection.Kind() != types.MethodVal {
					return true
				}
				recv := namedRecv(selection)
				if recv == nil || recv.Obj().Pkg() == nil || !rootPkgs[recv.Obj().Pkg().Path()] {
					return true
				}
				out = append(out, g.ValuesOf(pkg, call.Args[1])...)
				return true
			})
		}
	}
	return out
}

// reachableSharded walks out-edges (including go and defer) from the
// roots, refusing to enter the sanctioned accessor set: a sanctioned
// function's own substrate accesses are audited at runtime and are not
// findings here.
func reachableSharded(roots []*callgraph.Node) map[*callgraph.Node]bool {
	reached := map[*callgraph.Node]bool{}
	var stack []*callgraph.Node
	for _, r := range roots {
		if r != nil && !reached[r] && !sanctionedNode(r) {
			reached[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			if e.To == nil || reached[e.To] || sanctionedNode(e.To) {
				continue
			}
			reached[e.To] = true
			stack = append(stack, e.To)
		}
	}
	return reached
}

// sanctionedNode matches a node against ShardmemSanctioned by its
// package-stripped name, keeping the set package-agnostic the same way
// shardmem's per-body check is.
func sanctionedNode(n *callgraph.Node) bool {
	name := n.Name()
	if n.Pkg != nil {
		name = strings.TrimPrefix(name, n.Pkg.ImportPath+".")
	}
	return ShardmemSanctioned[name]
}

// scanSubstrateAccess reports direct word resolution inside one reached
// node. Nested literals are skipped: each is its own node, scanned iff
// it is itself reachable.
func scanSubstrateAccess(mp *analysis.ModulePass, n *callgraph.Node) {
	info := n.Pkg.TypesInfo
	shallowInspect(n.Body(), func(node ast.Node) {
		sel, ok := node.(*ast.SelectorExpr)
		if !ok {
			return
		}
		selection := info.Selections[sel]
		if selection == nil || selection.Kind() != types.MethodVal {
			return
		}
		recv := namedRecv(selection)
		method := selection.Obj().Name()
		switch {
		case isPkgType(recv, memPkgPath, "Region") && method == "WordAddr":
			mp.Reportf(sel.Pos(),
				"(*mem.Region).WordAddr on a shard-dispatch path bypasses the Space access audit: resolve through a sanctioned accessor")
		case isPkgType(recv, memPkgPath, "Space") && (method == "WordAddr" || method == "Region"):
			mp.Reportf(sel.Pos(),
				"mem.Space.%s reachable from per-shard dispatch (in %s): cross-shard words must go through the verb protocol",
				method, n.Name())
		}
	})
}
