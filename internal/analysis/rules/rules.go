// Package rules implements the repo's determinism lint suite: nine
// analyzers that statically enforce the invariants every bit-identity
// guarantee rests on — five per-package syntactic checks and four
// interprocedural ones built on the callgraph and flow packages. See each
// analyzer's Doc and the README's "Determinism invariants" section.
//
// Findings are suppressed per site with `//lint:allow <analyzer> <reason>`
// (the reason is mandatory; the driver rejects directives naming analyzers
// that are not part of the run).
package rules

import (
	"go/ast"
	"go/types"
	"strings"

	"alock/internal/analysis"
)

// All returns the full suite in reporting order: the five per-package
// analyzers from PR 8, then the four interprocedural ones built on the
// callgraph/flow packages.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{Detrand, Maporder, Shardmem, Guardcheck, Rnggate,
		Allocfree, Guardflow, Lockorder, Shardflow}
}

// --- shared helpers ---

// funcOf returns the *types.Func an expression's identifier resolves to,
// or nil. It sees through parenthesization.
func funcOf(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		f, _ := info.Uses[e].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[e.Sel].(*types.Func)
		return f
	}
	return nil
}

// namedRecv returns the named type of a method selection's receiver with
// pointers dereferenced, or nil.
func namedRecv(sel *types.Selection) *types.Named {
	t := sel.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isPkgType reports whether n is the named type pkgPath.name.
func isPkgType(n *types.Named, pkgPath, name string) bool {
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isTestFile reports whether the position's file is a _test.go file.
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

// mentionsObj reports whether node references obj anywhere.
func mentionsObj(info *types.Info, node ast.Node, obj types.Object) bool {
	if node == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// objOf resolves an identifier expression (ident or selector) to its
// object, or nil for anything more complex.
func objOf(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// isBuiltin reports whether id resolves to a language builtin.
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
