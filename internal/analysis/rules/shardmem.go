package rules

import (
	"go/ast"
	"go/types"
	"strings"

	"alock/internal/analysis"
)

// memPkgPath is the import path of the memory substrate package whose
// accessors shardmem polices.
const memPkgPath = "alock/internal/mem"

// ShardmemScopes are the package-path prefixes the analyzer applies to:
// the engine and the lock algorithms, where a stray direct word access
// from the wrong timeline breaks the sharded executor's isolation proof.
var ShardmemScopes = []string{"alock/internal/sim", "alock/internal/locks"}

// ShardmemSanctioned is the accessor set allowed to resolve memory words
// through (*mem.Space).WordAddr / (*mem.Space).Region: the engine's verb
// executors and the Thread local/remote operation methods, which are
// exactly the sites the runtime access audit (sim.WithAccessAudit)
// instruments. Names are receiver-qualified but package-agnostic so the
// golden fixtures can model the shape.
var ShardmemSanctioned = map[string]bool{
	"(*Engine).execProtocol": true,
	"(*Thread).Read":         true,
	"(*Thread).Write":        true,
	"(*Thread).CAS":          true,
	"(*Thread).RRead":        true,
	"(*Thread).RWrite":       true,
	"(*Thread).RCAS":         true,
}

// Shardmem is the static complement of the internal/mem runtime access
// audit. Inside the engine and lock packages, memory words may only be
// resolved by the sanctioned accessor set: those functions route every
// access through mem.Space, whose audit hook enforces at runtime that a
// shard never touches another node's words outside the verb protocol.
// (*mem.Region).WordAddr is flagged unconditionally in these packages —
// region-level access bypasses the Space audit hook entirely — and
// (*mem.Space).WordAddr / (*mem.Space).Region are flagged outside the
// sanctioned set.
var Shardmem = &analysis.Analyzer{
	Name: "shardmem",
	Doc:  "restrict direct memory-word resolution in sim/locks to the sanctioned accessor set",
	Run:  runShardmem,
}

func runShardmem(pass *analysis.Pass) error {
	inScope := false
	for _, prefix := range ShardmemScopes {
		if pass.Pkg.Path() == prefix || strings.HasPrefix(pass.Pkg.Path(), prefix+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		analysis.EnclosingFuncs(f, func(name string, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection := pass.TypesInfo.Selections[sel]
				if selection == nil || selection.Kind() != types.MethodVal {
					return true
				}
				recv := namedRecv(selection)
				method := selection.Obj().Name()
				switch {
				case isPkgType(recv, memPkgPath, "Region") && method == "WordAddr":
					pass.Reportf(sel.Pos(),
						"(*mem.Region).WordAddr bypasses the Space access audit: resolve through mem.Space in a sanctioned accessor")
				case isPkgType(recv, memPkgPath, "Space") && (method == "WordAddr" || method == "Region"):
					if !ShardmemSanctioned[name] {
						pass.Reportf(sel.Pos(),
							"mem.Space.%s outside the sanctioned accessor set (%s): cross-shard words must go through the verb protocol",
							method, name)
					}
				}
				return true
			})
		})
	}
	return nil
}
