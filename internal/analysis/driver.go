package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Finding is one driver-level diagnostic: an analyzer's diagnostic that
// survived suppression, or a malformed suppression directive.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// GitHub renders the finding as a GitHub Actions error annotation, so CI
// findings surface inline on pull requests.
func (f Finding) GitHub() string {
	// Annotation messages must be single-line; the format rejects newlines.
	msg := strings.ReplaceAll(f.Message, "\n", " ")
	return fmt.Sprintf("::error file=%s,line=%d,col=%d::%s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, msg, f.Analyzer)
}

// DirectiveName is the analyzer name under which the driver reports
// malformed `//lint:allow` directives. Directive findings are never
// themselves suppressible.
const DirectiveName = "lint"

// allowDirective is one parsed `//lint:allow <analyzer> <reason>` comment.
type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Pos
	// lines this directive covers: its own line, and the first code line
	// after its comment group (so a stack of directives above a statement
	// all apply to that statement).
	ownLine, nextLine int
	file              string
	// used records whether the directive suppressed at least one
	// diagnostic this run; an unused directive is stale (see Options).
	used bool
}

// Options tunes a driver run.
type Options struct {
	// Known lists every analyzer name `//lint:allow` directives may cite,
	// beyond the analyzers actually running. cmd/lint passes the full
	// suite here when -only/-skip selects a subset, so a directive for a
	// deselected analyzer is not misreported as naming an unknown one.
	Known []string

	// ReportStale, when set, reports every well-formed directive that
	// suppressed no diagnostic as a finding (analyzer "lint"): the waiver
	// has gone stale and must be deleted, or it silently green-lights a
	// future regression at that site. Only meaningful when every analyzer
	// the directives cite is part of the run.
	ReportStale bool
}

// Run applies every analyzer to every package with the default policy:
// stale-waiver reporting on, known names = the run set. See RunWith.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	return RunWith(pkgs, analyzers, Options{ReportStale: true})
}

// RunWith applies every analyzer to every package, filters diagnostics
// through the packages' `//lint:allow <analyzer> <reason>` suppression
// comments, and returns the surviving findings sorted by position.
// Per-package analyzers (Analyzer.Run) see one package at a time;
// module-level analyzers (Analyzer.RunModule) see the whole set once. A
// directive suppresses diagnostics from exactly one named analyzer, on the
// directive's own line or on the first line after its comment group.
// Directives missing a reason, or naming an analyzer outside the known
// set, are findings in their own right (analyzer "lint"), as are — under
// Options.ReportStale — directives that suppressed nothing.
func RunWith(pkgs []*Package, analyzers []*Analyzer, opts Options) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers)+len(opts.Known))
	running := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
		running[a.Name] = true
	}
	for _, name := range opts.Known {
		known[name] = true
	}

	var findings []Finding
	perPkg := make(map[*Package][]allowDirective, len(pkgs))
	for _, pkg := range pkgs {
		directives, bad := scanDirectives(pkg, known)
		findings = append(findings, bad...)
		perPkg[pkg] = directives
	}

	// filter routes one analyzer's diagnostics on one package through the
	// package's directives, marking the directives it consumes.
	filter := func(pkg *Package, name string, diags []Diagnostic) {
		directives := perPkg[pkg]
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if i := suppressedBy(directives, name, pos); i >= 0 {
				directives[i].used = true
				continue
			}
			findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
	}

	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
			filter(pkg, a.Name, diags)
		}
	}

	// Module-level analyzers run once over the whole set; their
	// diagnostics are attributed to packages by filename so the owning
	// package's directives apply.
	fileOwner := make(map[string]*Package)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			fileOwner[pkg.Fset.Position(f.Pos()).Filename] = pkg
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		var diags []Diagnostic
		var fset *token.FileSet
		if len(pkgs) > 0 {
			fset = pkgs[0].Fset
		}
		mp := &ModulePass{
			Analyzer: a,
			Fset:     fset,
			Pkgs:     pkgs,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.RunModule(mp); err != nil {
			return nil, fmt.Errorf("analysis: %s (module): %w", a.Name, err)
		}
		byPkg := make(map[*Package][]Diagnostic)
		for _, d := range diags {
			pkg := fileOwner[fset.Position(d.Pos).Filename]
			if pkg == nil {
				pos := fset.Position(d.Pos)
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
				continue
			}
			byPkg[pkg] = append(byPkg[pkg], d)
		}
		for _, pkg := range pkgs { // stable package order
			if ds := byPkg[pkg]; len(ds) > 0 {
				filter(pkg, a.Name, ds)
			}
		}
	}

	if opts.ReportStale {
		for _, pkg := range pkgs {
			for _, d := range perPkg[pkg] {
				if d.used || !running[d.analyzer] {
					continue
				}
				findings = append(findings, Finding{Analyzer: DirectiveName, Pos: pkg.Fset.Position(d.pos),
					Message: fmt.Sprintf("stale //lint:allow %s: the analyzer no longer fires here — delete the waiver", d.analyzer)})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}

// scanDirectives collects well-formed allow directives from a package's
// comments and reports malformed ones as findings.
func scanDirectives(pkg *Package, known map[string]bool) ([]allowDirective, []Finding) {
	var dirs []allowDirective
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			groupNext := pkg.Fset.Position(cg.End()).Line + 1
			for _, c := range cg.List {
				// Both comment forms carry directives: //lint:allow ... and
				// /*lint:allow ...*/ (the latter lets a directive share a
				// line with another comment, e.g. in golden fixtures).
				body := c.Text
				if strings.HasPrefix(body, "/*") {
					body = strings.TrimSuffix(body[2:], "*/")
				} else {
					body = strings.TrimPrefix(body, "//")
				}
				text, ok := strings.CutPrefix(body, "lint:allow")
				if !ok || (text != "" && text[0] != ' ' && text[0] != '\t') {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					bad = append(bad, Finding{Analyzer: DirectiveName, Pos: pos,
						Message: "malformed //lint:allow: want //lint:allow <analyzer> <reason>"})
					continue
				}
				name := fields[0]
				if !known[name] {
					bad = append(bad, Finding{Analyzer: DirectiveName, Pos: pos,
						Message: fmt.Sprintf("//lint:allow names unknown analyzer %q", name)})
					continue
				}
				if len(fields) == 1 {
					bad = append(bad, Finding{Analyzer: DirectiveName, Pos: pos,
						Message: fmt.Sprintf("//lint:allow %s requires a reason", name)})
					continue
				}
				dirs = append(dirs, allowDirective{
					analyzer: name,
					reason:   strings.Join(fields[1:], " "),
					pos:      c.Pos(),
					ownLine:  pos.Line,
					nextLine: groupNext,
					file:     pos.Filename,
				})
			}
		}
	}
	return dirs, bad
}

// suppressedBy returns the index of the first directive for the given
// analyzer that covers pos, or -1 if none does.
func suppressedBy(dirs []allowDirective, analyzer string, pos token.Position) int {
	for i, d := range dirs {
		if d.analyzer != analyzer || d.file != pos.Filename {
			continue
		}
		if pos.Line == d.ownLine || pos.Line == d.nextLine {
			return i
		}
	}
	return -1
}

// Funcs below are shared helpers for the rule implementations.

// EnclosingFuncs walks a file and calls fn for every function declaration
// and function literal with the node and a printable name
// ("(*Recv).Method", "Func", or "func literal").
func EnclosingFuncs(f *ast.File, fn func(name string, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn(FuncDeclName(fd), fd.Body)
	}
}

// FuncDeclName renders a function declaration's receiver-qualified name:
// "Func" for plain functions, "(Recv).Method" or "(*Recv).Method" for
// methods. The package is deliberately omitted so sanctioned-function
// allowlists match golden-fixture packages as well as the real tree.
func FuncDeclName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	star := ""
	if se, ok := t.(*ast.StarExpr); ok {
		star = "*"
		t = se.X
	}
	// Strip type parameters (Recv[T]).
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + star + id.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}
