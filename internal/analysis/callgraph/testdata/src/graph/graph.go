// Package graphtest exercises every call shape the callgraph package
// resolves: direct calls, concrete method calls, interface dispatch,
// function values through variables, parameters, struct fields, and
// returns, plus go/defer edge kinds and nested literals.
package graphtest

type Animal interface{ Sound() string }

type Dog struct{}

func (Dog) Sound() string { return "woof" }

type Cat struct{}

func (*Cat) Sound() string { return "meow" }

func direct() {}

func helper() {}

func callsDirect() { direct() }

func (d Dog) Walk() { helper() }

func callsMethod() { Dog{}.Walk() }

func callsInterface(a Animal) string { return a.Sound() }

var fv = direct

func callsFuncVar() { fv() }

func takesFn(fn func()) { fn() }

func callsParam() { takesFn(helper) }

type holder struct{ fn func() }

func callsField() {
	h := holder{fn: direct}
	h.fn()
}

func gives() func() { return helper }

func callsReturned() { gives()() }

func spawns() {
	defer helper()
	go direct()
}

func literalCaller() {
	f := func() { direct() }
	f()
}
