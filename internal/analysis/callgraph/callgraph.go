// Package callgraph builds a conservative static call graph over the
// packages loaded by internal/analysis. It resolves four call shapes:
//
//   - direct calls, through go/types object resolution;
//   - method calls on concrete receivers, through the selection's method
//     object (embedding-promoted methods included);
//   - interface method calls, resolved to the matching method of every
//     named type in the module that implements the interface;
//   - calls through function values, tracked by a flow-insensitive
//     assignment lattice (variable/field/parameter object → set of
//     possible functions) iterated to a fixpoint, including call-argument
//     to parameter binding and single-result return flow.
//
// The graph is conservative in the direction the determinism analyzers
// need: an edge may exist that no execution takes (interface resolution
// over-approximates), but a call the lattice can see is never dropped.
// `go` and `defer` statements produce edges tagged with their own kinds so
// clients choose whether goroutine hand-offs count as reachability.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"alock/internal/analysis"
)

// Kind classifies how an edge's call site transfers control.
type Kind int

const (
	// KindCall is a plain call expression.
	KindCall Kind = iota
	// KindGo is a `go f(...)` statement: the callee runs on a new
	// goroutine, so synchronous-path analyses may exclude these edges.
	KindGo
	// KindDefer is a `defer f(...)` statement: the callee runs on the
	// caller's goroutine at function exit.
	KindDefer
)

// String renders the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindGo:
		return "go"
	case KindDefer:
		return "defer"
	default:
		return "call"
	}
}

// A Node is one function with a body in the loaded module: a declared
// function or method (Fn/Decl set) or a function literal (Lit set).
type Node struct {
	// Fn is the type-checker's object for a declared function or method;
	// nil for function literals.
	Fn *types.Func
	// Decl is the declaration carrying Fn's body; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal's AST node; nil for declared functions.
	Lit *ast.FuncLit
	// Pkg owns the node's source file.
	Pkg *analysis.Package
	// Out lists every resolved call edge leaving this node, in source
	// order.
	Out []Edge

	name string
	sig  *types.Signature
}

// Name returns the node's stable, package-qualified name:
// "path.Func", "path.(*Recv).Method", or "path.Parent$lit@line" for
// literals. Hot-path root configs use this format.
func (n *Node) Name() string { return n.name }

// Body returns the node's function body.
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	if n.Lit != nil {
		return n.Lit.Body
	}
	return nil
}

// Pos returns the node's declaration position.
func (n *Node) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return token.NoPos
}

// An Edge is one resolved call site: To may be reached from the owning
// node at Site.
type Edge struct {
	Kind Kind
	Site *ast.CallExpr
	To   *Node
}

// A Graph is the call graph over one loaded package set.
type Graph struct {
	nodes  []*Node
	byFn   map[*types.Func]*Node
	byLit  map[*ast.FuncLit]*Node
	byName map[string]*Node

	lattice map[types.Object]nodeSet
	// retVar gives the pseudo-object standing for result i of a node, so
	// return flow reuses the assignment lattice.
	retVar map[retKey]*types.Var
	// named lists every non-interface named type in the module, the
	// candidate set for interface call resolution.
	named []*types.Named
	// ifaceImpls caches interface-method resolution.
	ifaceImpls map[*types.Func][]*Node
}

type retKey struct {
	node *Node
	idx  int
}

type nodeSet map[*Node]bool

// Build constructs the call graph for the given packages. Packages must
// share one token.FileSet (the loader guarantees this).
func Build(pkgs []*analysis.Package) *Graph {
	g := &Graph{
		byFn:       make(map[*types.Func]*Node),
		byLit:      make(map[*ast.FuncLit]*Node),
		byName:     make(map[string]*Node),
		lattice:    make(map[types.Object]nodeSet),
		retVar:     make(map[retKey]*types.Var),
		ifaceImpls: make(map[*types.Func][]*Node),
	}
	b := &builder{g: g}
	for _, pkg := range pkgs {
		b.collectPackage(pkg)
	}
	b.fixpoint()
	b.buildEdges()
	sort.Slice(g.nodes, func(i, j int) bool {
		a, c := g.nodes[i], g.nodes[j]
		pa := a.Pkg.Fset.Position(a.Pos())
		pc := c.Pkg.Fset.Position(c.Pos())
		if pa.Filename != pc.Filename {
			return pa.Filename < pc.Filename
		}
		return pa.Offset < pc.Offset
	})
	return g
}

// Nodes returns every node in deterministic (position) order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// NodeOf returns the node for a declared function object, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFn[origin(fn)] }

// LitOf returns the node for a function literal, or nil.
func (g *Graph) LitOf(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// Lookup resolves a package-qualified name ("path.(*Recv).Method",
// "path.Func") to its node, or nil if the module declares no such
// function.
func (g *Graph) Lookup(name string) *Node { return g.byName[name] }

// ValuesOf returns every function the lattice believes expr may evaluate
// to. pkg must be the package owning expr. Shard-dispatch analyses use
// this to resolve function-valued arguments (e.g. the body passed to
// Engine.Spawn) into roots.
func (g *Graph) ValuesOf(pkg *analysis.Package, expr ast.Expr) []*Node {
	b := &builder{g: g}
	set := b.funcValues(pkg, expr)
	return sortedNodes(set)
}

// Reachable returns the set of nodes reachable from roots over call and
// defer edges; includeGo additionally follows `go` edges. Roots are
// included.
func Reachable(roots []*Node, includeGo bool) map[*Node]bool {
	seen := make(map[*Node]bool)
	var stack []*Node
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			if e.Kind == KindGo && !includeGo {
				continue
			}
			if e.To != nil && !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// builder holds the intermediate state of one Build.
type builder struct {
	g       *Graph
	assigns []assignment
	calls   []callsite
}

// assignment is one flow constraint: dst may hold the functions src (an
// expression) or srcObj (an object, for naked returns of named results)
// evaluates to. resultIdx selects the tuple component when src is a
// multi-result call.
type assignment struct {
	pkg       *analysis.Package
	dst       types.Object
	src       ast.Expr
	srcObj    types.Object
	resultIdx int
}

// callsite is one call expression inside a node's body.
type callsite struct {
	pkg    *analysis.Package
	caller *Node
	call   *ast.CallExpr
	kind   Kind
}

// collectPackage creates nodes for every function with a body and records
// the package's flow constraints and call sites.
func (b *builder) collectPackage(pkg *analysis.Package) {
	// Named types feed interface call resolution.
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		b.g.named = append(b.g.named, named)
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				if gd, ok := decl.(*ast.GenDecl); ok {
					b.walkGenDecl(pkg, gd)
				}
				continue
			}
			fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			n := &Node{
				Fn:   fn,
				Decl: fd,
				Pkg:  pkg,
				name: FuncName(fn),
				sig:  fn.Type().(*types.Signature),
			}
			b.g.nodes = append(b.g.nodes, n)
			b.g.byFn[fn] = n
			b.g.byName[n.name] = n
			b.walkBody(pkg, n, fd.Body)
		}
	}
}

// walkBody records constraints and call sites from one function body,
// creating child nodes for nested literals (walked recursively, not as
// part of the parent).
func (b *builder) walkBody(pkg *analysis.Package, n *Node, body *ast.BlockStmt) {
	// claimed marks call expressions owned by a go/defer statement so the
	// generic CallExpr case doesn't double-record them.
	claimed := make(map[*ast.CallExpr]Kind)
	ast.Inspect(body, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.FuncLit:
			b.addLit(pkg, n, v)
			return false // the literal's body is its own node
		case *ast.GoStmt:
			claimed[v.Call] = KindGo
		case *ast.DeferStmt:
			claimed[v.Call] = KindDefer
		case *ast.CallExpr:
			kind, ok := claimed[v]
			if !ok {
				kind = KindCall
			}
			b.calls = append(b.calls, callsite{pkg: pkg, caller: n, call: v, kind: kind})
		case *ast.AssignStmt:
			b.addAssign(pkg, v.Lhs, v.Rhs)
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(v.Names))
			for i, id := range v.Names {
				lhs[i] = id
			}
			b.addAssign(pkg, lhs, v.Values)
		case *ast.CompositeLit:
			b.addCompositeLit(pkg, v)
		case *ast.ReturnStmt:
			b.addReturn(pkg, n, v)
		}
		return true
	})
}

// walkGenDecl records flow constraints from a package-level declaration
// (`var fv = direct`, struct-literal initializers), so function values
// seeded outside any body still enter the lattice.
func (b *builder) walkGenDecl(pkg *analysis.Package, d *ast.GenDecl) {
	initParent := &Node{name: pkg.ImportPath + ".init"}
	ast.Inspect(d, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.FuncLit:
			b.addLit(pkg, initParent, v)
			return false
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(v.Names))
			for i, id := range v.Names {
				lhs[i] = id
			}
			b.addAssign(pkg, lhs, v.Values)
		case *ast.CompositeLit:
			b.addCompositeLit(pkg, v)
		case *ast.CallExpr:
			b.calls = append(b.calls, callsite{pkg: pkg, call: v, kind: KindCall})
		}
		return true
	})
}

// addLit registers a function literal as its own node and recurses into
// its body.
func (b *builder) addLit(pkg *analysis.Package, parent *Node, lit *ast.FuncLit) {
	sig, _ := pkg.TypesInfo.Types[lit].Type.(*types.Signature)
	pos := pkg.Fset.Position(lit.Pos())
	n := &Node{
		Lit:  lit,
		Pkg:  pkg,
		name: fmt.Sprintf("%s$lit@%d", parent.name, pos.Line),
		sig:  sig,
	}
	b.g.nodes = append(b.g.nodes, n)
	b.g.byLit[lit] = n
	if _, taken := b.g.byName[n.name]; !taken {
		b.g.byName[n.name] = n
	}
	b.walkBody(pkg, n, lit.Body)
}

// addAssign records lhs_i ← rhs_i constraints for function-typed targets,
// including tuple assignment from a single multi-result call.
func (b *builder) addAssign(pkg *analysis.Package, lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) > 1 {
		call, ok := astUnparen(rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		for i, l := range lhs {
			if dst := b.lhsObject(pkg, l); dst != nil && isFuncTyped(dst.Type()) {
				b.assigns = append(b.assigns, assignment{pkg: pkg, dst: dst, src: call, resultIdx: i})
			}
		}
		return
	}
	for i := range lhs {
		if i >= len(rhs) {
			break
		}
		dst := b.lhsObject(pkg, lhs[i])
		if dst == nil || !isFuncTyped(dst.Type()) {
			continue
		}
		b.assigns = append(b.assigns, assignment{pkg: pkg, dst: dst, src: rhs[i]})
	}
}

// addCompositeLit records field ← value constraints for struct literals,
// both keyed and positional, so function values stored in struct fields
// (e.g. Thread.fn) stay tracked.
func (b *builder) addCompositeLit(pkg *analysis.Package, lit *ast.CompositeLit) {
	tv, ok := pkg.TypesInfo.Types[lit]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			if obj := pkg.TypesInfo.Uses[key]; obj != nil && isFuncTyped(obj.Type()) {
				b.assigns = append(b.assigns, assignment{pkg: pkg, dst: obj, src: kv.Value})
			}
			continue
		}
		if i < st.NumFields() {
			if f := st.Field(i); isFuncTyped(f.Type()) {
				b.assigns = append(b.assigns, assignment{pkg: pkg, dst: f, src: el})
			}
		}
	}
}

// addReturn records result flow: pseudo-result objects of the enclosing
// node gain the returned expressions' function values. Naked returns of
// named results flow the result variables instead.
func (b *builder) addReturn(pkg *analysis.Package, n *Node, ret *ast.ReturnStmt) {
	if n.sig == nil {
		return
	}
	results := n.sig.Results()
	if len(ret.Results) == 0 {
		for i := 0; i < results.Len(); i++ {
			rv := results.At(i)
			if rv.Name() != "" && isFuncTyped(rv.Type()) {
				b.assigns = append(b.assigns, assignment{pkg: pkg, dst: b.retObj(n, i), srcObj: rv})
			}
		}
		return
	}
	if len(ret.Results) != results.Len() {
		return // tuple pass-through return; out of scope for the lattice
	}
	for i, e := range ret.Results {
		if isFuncTyped(results.At(i).Type()) {
			b.assigns = append(b.assigns, assignment{pkg: pkg, dst: b.retObj(n, i), src: e})
		}
	}
}

// retObj returns the pseudo-object standing for result idx of node n.
func (b *builder) retObj(n *Node, idx int) *types.Var {
	k := retKey{n, idx}
	if v, ok := b.g.retVar[k]; ok {
		return v
	}
	v := types.NewVar(token.NoPos, nil, fmt.Sprintf("%s#ret%d", n.name, idx), n.sig.Results().At(idx).Type())
	b.g.retVar[k] = v
	return v
}

// lhsObject resolves an assignment target to its lattice object: a
// variable for identifiers, the field object for selector stores.
func (b *builder) lhsObject(pkg *analysis.Package, e ast.Expr) types.Object {
	switch v := astUnparen(e).(type) {
	case *ast.Ident:
		if v.Name == "_" {
			return nil
		}
		if obj := pkg.TypesInfo.Defs[v]; obj != nil {
			return obj
		}
		return pkg.TypesInfo.Uses[v]
	case *ast.SelectorExpr:
		if sel, ok := pkg.TypesInfo.Selections[v]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return pkg.TypesInfo.Uses[v.Sel]
	}
	return nil
}

// fixpoint iterates assignment and argument-binding flow until the
// lattice stops growing. Everything is monotone (sets only gain
// members), so termination is bounded by |objects| × |nodes|.
func (b *builder) fixpoint() {
	for changed := true; changed; {
		changed = false
		for _, a := range b.assigns {
			var vals nodeSet
			if a.srcObj != nil {
				vals = b.g.lattice[a.srcObj]
			} else if call, ok := astUnparen(a.src).(*ast.CallExpr); ok && a.resultIdx > 0 {
				vals = b.callResults(a.pkg, call, a.resultIdx)
			} else {
				vals = b.funcValues(a.pkg, a.src)
			}
			if b.addVals(a.dst, vals) {
				changed = true
			}
		}
		for _, c := range b.calls {
			for callee := range b.resolveCall(c.pkg, c.call) {
				if b.bindArgs(c.pkg, callee, c.call) {
					changed = true //lint:allow maporder monotone set-union fixpoint: the final lattice is the same under any iteration order
				}
			}
		}
	}
}

// bindArgs flows a call's function-typed arguments into the callee's
// parameter objects.
func (b *builder) bindArgs(pkg *analysis.Package, callee *Node, call *ast.CallExpr) bool {
	if callee.sig == nil {
		return false
	}
	params := callee.sig.Params()
	changed := false
	for i, arg := range call.Args {
		if i >= params.Len() {
			break // variadic tail: elements beyond the last named param
		}
		p := params.At(i)
		if !isFuncTyped(p.Type()) {
			continue
		}
		if b.addVals(p, b.funcValues(pkg, arg)) {
			changed = true
		}
	}
	return changed
}

// addVals merges vals into the lattice cell for obj.
func (b *builder) addVals(obj types.Object, vals nodeSet) bool {
	if len(vals) == 0 {
		return false
	}
	cell := b.g.lattice[obj]
	if cell == nil {
		cell = make(nodeSet)
		b.g.lattice[obj] = cell
	}
	changed := false
	for n := range vals {
		if !cell[n] {
			cell[n] = true
			changed = true //lint:allow maporder monotone set union: membership after the loop is order-independent
		}
	}
	return changed
}

// funcValues returns the set of module functions expr may evaluate to.
func (b *builder) funcValues(pkg *analysis.Package, expr ast.Expr) nodeSet {
	out := make(nodeSet)
	switch v := astUnparen(expr).(type) {
	case *ast.FuncLit:
		if n := b.g.byLit[v]; n != nil {
			out[n] = true
		}
	case *ast.Ident:
		obj := pkg.TypesInfo.Uses[v]
		if obj == nil {
			obj = pkg.TypesInfo.Defs[v]
		}
		b.objValues(obj, out)
	case *ast.SelectorExpr:
		if sel, ok := pkg.TypesInfo.Selections[v]; ok {
			switch sel.Kind() {
			case types.FieldVal:
				for n := range b.g.lattice[sel.Obj()] {
					out[n] = true
				}
			case types.MethodVal, types.MethodExpr:
				if m, ok := sel.Obj().(*types.Func); ok {
					b.methodValues(m, out)
				}
			}
			break
		}
		// Qualified identifier (pkg.Func) or field of a package-level var.
		b.objValues(pkg.TypesInfo.Uses[v.Sel], out)
	case *ast.CallExpr:
		for n := range b.callResults(pkg, v, 0) {
			out[n] = true
		}
	}
	return out
}

// objValues adds the functions an object may hold: the function itself
// for func objects, the lattice cell for variables.
func (b *builder) objValues(obj types.Object, out nodeSet) {
	switch o := obj.(type) {
	case *types.Func:
		b.methodValues(o, out)
	case *types.Var:
		for n := range b.g.lattice[o] {
			out[n] = true
		}
	}
}

// methodValues resolves a func object used as a value: the node itself
// for concrete functions, every implementation for interface methods.
func (b *builder) methodValues(m *types.Func, out nodeSet) {
	if recv := recvOf(m); recv != nil && types.IsInterface(recv.Type()) {
		for _, n := range b.implsOf(m) {
			out[n] = true
		}
		return
	}
	if n := b.g.byFn[origin(m)]; n != nil {
		out[n] = true
	}
}

// callResults returns the functions result idx of a call may evaluate to,
// via the callees' pseudo-result lattice cells.
func (b *builder) callResults(pkg *analysis.Package, call *ast.CallExpr, idx int) nodeSet {
	out := make(nodeSet)
	for callee := range b.resolveCall(pkg, call) {
		if callee.sig == nil || idx >= callee.sig.Results().Len() {
			continue
		}
		if rv, ok := b.g.retVar[retKey{callee, idx}]; ok {
			for n := range b.g.lattice[rv] {
				out[n] = true //lint:allow maporder set union across callees: the merged result set is order-independent
			}
		}
	}
	return out
}

// resolveCall returns every module function a call expression may invoke.
func (b *builder) resolveCall(pkg *analysis.Package, call *ast.CallExpr) nodeSet {
	out := make(nodeSet)
	fun := astUnparen(call.Fun)
	if tv, ok := pkg.TypesInfo.Types[fun]; ok && tv.IsType() {
		return out // conversion, not a call
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, builtin := pkg.TypesInfo.Uses[id].(*types.Builtin); builtin {
			return out
		}
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if selection, ok := pkg.TypesInfo.Selections[sel]; ok && selection.Kind() == types.MethodVal {
			m, ok := selection.Obj().(*types.Func)
			if !ok {
				return out
			}
			if recv := recvOf(m); recv != nil && types.IsInterface(recv.Type()) {
				for _, n := range b.implsOf(m) {
					out[n] = true
				}
				return out
			}
			if n := b.g.byFn[origin(m)]; n != nil {
				out[n] = true
			}
			return out
		}
	}
	// Direct function reference or function value.
	return b.funcValues(pkg, fun)
}

// implsOf resolves an interface method to the matching method node of
// every module type implementing the interface.
func (b *builder) implsOf(m *types.Func) []*Node {
	if cached, ok := b.g.ifaceImpls[m]; ok {
		return cached
	}
	recv := recvOf(m)
	iface, _ := recv.Type().Underlying().(*types.Interface)
	if iface == nil {
		return nil
	}
	var impls []*Node
	for _, named := range b.g.named {
		var recvType types.Type
		if types.Implements(named, iface) {
			recvType = named
		} else if ptr := types.NewPointer(named); types.Implements(ptr, iface) {
			recvType = ptr
		} else {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(recvType, true, m.Pkg(), m.Name())
		if impl, ok := obj.(*types.Func); ok {
			if n := b.g.byFn[origin(impl)]; n != nil {
				impls = append(impls, n)
			}
		}
	}
	sort.Slice(impls, func(i, j int) bool { return impls[i].name < impls[j].name })
	b.g.ifaceImpls[m] = impls
	return impls
}

// buildEdges materializes Out edges from the recorded call sites after
// the lattice has converged.
func (b *builder) buildEdges() {
	type edgeKey struct {
		site *ast.CallExpr
		to   *Node
	}
	seen := make(map[*Node]map[edgeKey]bool)
	for _, c := range b.calls {
		if c.caller == nil {
			continue // package-level initializer: no owning node
		}
		callees := sortedNodes(b.resolveCall(c.pkg, c.call))
		dup := seen[c.caller]
		if dup == nil {
			dup = make(map[edgeKey]bool)
			seen[c.caller] = dup
		}
		for _, to := range callees {
			k := edgeKey{c.call, to}
			if dup[k] {
				continue
			}
			dup[k] = true
			c.caller.Out = append(c.caller.Out, Edge{Kind: c.kind, Site: c.call, To: to})
		}
	}
	for _, n := range b.g.nodes {
		out := n.Out
		sort.SliceStable(out, func(i, j int) bool {
			if out[i].Site.Pos() != out[j].Site.Pos() {
				return out[i].Site.Pos() < out[j].Site.Pos()
			}
			return out[i].To.name < out[j].To.name
		})
	}
}

// FuncName renders a declared function's package-qualified name in the
// same format Graph.Lookup accepts: "path.Func" or "path.(*Recv).Method".
func FuncName(fn *types.Func) string {
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	if recv := recvOf(fn); recv != nil {
		t := recv.Type()
		star := ""
		if p, ok := t.(*types.Pointer); ok {
			star = "*"
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s.(%s%s).%s", pkgPath, star, n.Obj().Name(), fn.Name())
		}
	}
	return pkgPath + "." + fn.Name()
}

// recvOf returns fn's receiver variable, or nil for plain functions.
func recvOf(fn *types.Func) *types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Recv()
}

// origin maps an instantiated generic function back to its declaration
// object, the one node keys use.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

func sortedNodes(set nodeSet) []*Node {
	out := make([]*Node, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func astUnparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isFuncTyped(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}
