package callgraph_test

import (
	"sort"
	"sync"
	"testing"

	"alock/internal/analysis"
	"alock/internal/analysis/callgraph"
)

var (
	graphOnce sync.Once
	graph     *callgraph.Graph
	graphErr  error
)

// fixtureGraph builds the graph over the testdata fixture once per
// process; the fixture is stdlib-free so no module load is needed.
func fixtureGraph(t *testing.T) *callgraph.Graph {
	t.Helper()
	graphOnce.Do(func() {
		l := analysis.NewLoader()
		pkg, err := l.CheckDir("testdata/src/graph", "graphtest")
		if err != nil {
			graphErr = err
			return
		}
		graph = callgraph.Build([]*analysis.Package{pkg})
	})
	if graphErr != nil {
		t.Fatal(graphErr)
	}
	return graph
}

// calleeNames returns the sorted names of a node's callees, restricted to
// the given edge kind.
func calleeNames(t *testing.T, g *callgraph.Graph, caller string, kind callgraph.Kind) []string {
	t.Helper()
	n := g.Lookup(caller)
	if n == nil {
		t.Fatalf("no node %q", caller)
	}
	var names []string
	for _, e := range n.Out {
		if e.Kind == kind {
			names = append(names, e.To.Name())
		}
	}
	sort.Strings(names)
	return names
}

func wantCallees(t *testing.T, g *callgraph.Graph, caller string, kind callgraph.Kind, want ...string) {
	t.Helper()
	got := calleeNames(t, g, caller, kind)
	if len(got) != len(want) {
		t.Fatalf("%s: callees = %v, want %v", caller, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: callees = %v, want %v", caller, got, want)
		}
	}
}

func TestDirectCall(t *testing.T) {
	wantCallees(t, fixtureGraph(t), "graphtest.callsDirect", callgraph.KindCall, "graphtest.direct")
}

func TestMethodCall(t *testing.T) {
	g := fixtureGraph(t)
	wantCallees(t, g, "graphtest.callsMethod", callgraph.KindCall, "graphtest.(Dog).Walk")
	wantCallees(t, g, "graphtest.(Dog).Walk", callgraph.KindCall, "graphtest.helper")
}

// TestInterfaceCall checks that a.Sound() resolves to every module type
// implementing Animal, value and pointer receivers both.
func TestInterfaceCall(t *testing.T) {
	wantCallees(t, fixtureGraph(t), "graphtest.callsInterface", callgraph.KindCall,
		"graphtest.(*Cat).Sound", "graphtest.(Dog).Sound")
}

// TestFuncValueFlows checks the assignment lattice: package-level var,
// call-arg→param binding, struct field store, and return flow.
func TestFuncValueFlows(t *testing.T) {
	g := fixtureGraph(t)
	wantCallees(t, g, "graphtest.callsFuncVar", callgraph.KindCall, "graphtest.direct")
	wantCallees(t, g, "graphtest.takesFn", callgraph.KindCall, "graphtest.helper")
	wantCallees(t, g, "graphtest.callsField", callgraph.KindCall, "graphtest.direct")
	wantCallees(t, g, "graphtest.callsReturned", callgraph.KindCall,
		"graphtest.gives", "graphtest.helper")
}

func TestGoDeferKinds(t *testing.T) {
	g := fixtureGraph(t)
	wantCallees(t, g, "graphtest.spawns", callgraph.KindGo, "graphtest.direct")
	wantCallees(t, g, "graphtest.spawns", callgraph.KindDefer, "graphtest.helper")
	wantCallees(t, g, "graphtest.spawns", callgraph.KindCall)
}

// TestLiteralNode checks that a function literal is its own node,
// reachable from its caller through the lattice.
func TestLiteralNode(t *testing.T) {
	g := fixtureGraph(t)
	n := g.Lookup("graphtest.literalCaller")
	if n == nil {
		t.Fatal("no literalCaller node")
	}
	reach := callgraph.Reachable([]*callgraph.Node{n}, false)
	if d := g.Lookup("graphtest.direct"); !reach[d] {
		t.Fatal("direct not reachable through the literal")
	}
}

// TestReachableGoGate checks that `go` edges are followed only on request
// while defer edges always count.
func TestReachableGoGate(t *testing.T) {
	g := fixtureGraph(t)
	spawns := g.Lookup("graphtest.spawns")
	direct := g.Lookup("graphtest.direct")
	helper := g.Lookup("graphtest.helper")

	sync := callgraph.Reachable([]*callgraph.Node{spawns}, false)
	if sync[direct] {
		t.Fatal("go callee reachable without includeGo")
	}
	if !sync[helper] {
		t.Fatal("defer callee should always be reachable")
	}
	async := callgraph.Reachable([]*callgraph.Node{spawns}, true)
	if !async[direct] {
		t.Fatal("go callee not reachable with includeGo")
	}
}
