// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface the repo's determinism lint suite
// needs. The build environment bakes in only the standard library, so
// instead of depending on x/tools the suite runs on this stdlib-only
// framework: the same Analyzer/Pass/Diagnostic shapes (so analyzers port
// verbatim if x/tools ever becomes available), a package loader built on
// `go list -json` plus go/types, and a driver that applies the repo's
// `//lint:allow <analyzer> <reason>` suppression policy.
//
// The suite exists because every bit-identity guarantee the repo ships
// rests on conventions — all randomness via sim.PartitionedRNG, no
// wall-clock on simulated paths, cross-shard memory only through the verb
// protocol, every Acquired guard released — that runtime checks only catch
// when a test happens to exercise the bad path. The analyzers in
// internal/analysis/rules enforce them at review time. See the README's
// "Determinism invariants" section for the rules and the allowlist policy.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check. It mirrors x/tools' analysis.Analyzer:
// Run inspects a single type-checked package through the Pass and reports
// findings via Pass.Report. Interprocedural analyzers set RunModule instead
// and see every loaded package at once — call graphs and dataflow summaries
// don't stop at package boundaries.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name> <reason>` suppression comments. It must be a
	// valid Go identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string

	// Run applies the check to one package. Exactly one of Run and
	// RunModule must be set.
	Run func(*Pass) error

	// RunModule applies the check to the whole loaded package set in one
	// invocation. The driver calls it once per Run, after the per-package
	// analyzers; diagnostics are attributed to files by position and flow
	// through the same `//lint:allow` suppression policy.
	RunModule func(*ModulePass) error
}

// A Pass provides one analyzer with one type-checked package and a sink
// for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Report emits one diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A ModulePass provides one module-level analyzer with every loaded
// package and a sink for its diagnostics. All packages share one file set
// (the loader's), so a single Fset resolves every position.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package

	report func(Diagnostic)
}

// Report emits one diagnostic.
func (p *ModulePass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a diagnostic at pos with a formatted message.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position in the package's file set and a
// human-readable message. The analyzer name is attached by the driver.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
