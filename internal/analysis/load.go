package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// A Loader type-checks packages of the enclosing module plus their
// standard-library dependencies. Module packages are enumerated with
// `go list -json` (no network: everything resolves inside the module and
// GOROOT) and checked in dependency order; stdlib imports are satisfied by
// the go/importer source importer, which compiles them from GOROOT source.
// A Loader is not safe for concurrent use.
type Loader struct {
	fset   *token.FileSet
	std    types.ImporterFrom
	byPath map[string]*Package // loaded module packages
}

// NewLoader returns an empty loader.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		byPath: make(map[string]*Package),
	}
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
}

// Load enumerates the packages matching patterns (relative to dir, e.g.
// "./...") and type-checks them in dependency order. Test files are not
// loaded: the invariants the suite enforces govern the simulator and its
// tools, and test code deliberately probes the forbidden paths.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	inSet := make(map[string]*listedPackage, len(listed))
	for i := range listed {
		inSet[listed[i].ImportPath] = &listed[i]
	}

	// Dependency-order the listed packages (imports restricted to the
	// listed set; stdlib imports are handled lazily by the importer).
	var order []*listedPackage
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *listedPackage) error
	visit = func(p *listedPackage) error {
		switch state[p.ImportPath] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", p.ImportPath)
		case 2:
			return nil
		}
		state[p.ImportPath] = 1
		for _, imp := range p.Imports {
			if dep, ok := inSet[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p.ImportPath] = 2
		order = append(order, p)
		return nil
	}
	for i := range listed {
		if err := visit(&listed[i]); err != nil {
			return nil, err
		}
	}

	out := make([]*Package, 0, len(order))
	for _, lp := range order {
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := l.check(lp.Dir, lp.ImportPath, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		l.byPath[lp.ImportPath] = pkg
		out = append(out, pkg)
	}
	// Return in a stable order independent of traversal details.
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// CheckDir parses every .go file in dir as a single package and
// type-checks it under the given import path, resolving imports against
// the already-loaded module packages and the standard library. The
// analyzer test harness uses it to check golden fixture packages that live
// under testdata (invisible to the go tool) but import real module
// packages.
func (l *Loader) CheckDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	sort.Strings(files)
	return l.check(dir, importPath, files)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// check parses and type-checks one package.
func (l *Loader) check(dir, importPath string, fileNames []string) (*Package, error) {
	files := make([]*ast.File, 0, len(fileNames))
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{
		Importer:    loaderImporter{l},
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := cfg.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// loaderImporter resolves module packages from the loader's cache and
// everything else (the standard library) through the source importer.
type loaderImporter struct{ l *Loader }

func (im loaderImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

func (im loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := im.l.byPath[path]; ok {
		return p.Types, nil
	}
	return im.l.std.ImportFrom(path, srcDir, mode)
}

// goList runs `go list -json` and decodes the package stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Standard {
			continue
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
