package analysis

import (
	"go/ast"
	"strings"
	"testing"
)

// TestLoadModule proves the loader can enumerate and type-check the whole
// module (and, transitively, its stdlib imports) without network access.
func TestLoadModule(t *testing.T) {
	l := NewLoader()
	pkgs, err := l.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]*Package)
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	for _, want := range []string{"alock", "alock/internal/sim", "alock/internal/locks", "alock/internal/mem", "alock/internal/workload"} {
		p, ok := byPath[want]
		if !ok {
			t.Fatalf("package %s not loaded (got %d packages)", want, len(pkgs))
		}
		if p.Types == nil || len(p.Files) == 0 {
			t.Fatalf("package %s loaded without types or files", want)
		}
	}
	// Test files must not be part of the load: the suite's rules exempt
	// them, and fixtures rely on it.
	for _, p := range pkgs {
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			if strings.HasSuffix(name, "_test.go") {
				t.Fatalf("test file %s was loaded", name)
			}
		}
	}
}

// TestRunSuppression exercises the driver's directive handling end to end
// with a throwaway analyzer that flags every function declaration.
func TestRunSuppression(t *testing.T) {
	l := NewLoader()
	pkg, err := l.CheckDir("testdata/src/driver", "drivertest")
	if err != nil {
		t.Fatal(err)
	}
	flagFuncs := &Analyzer{
		Name: "flagfuncs",
		Doc:  "flags every function declaration (driver test double)",
		Run: func(p *Pass) error {
			for _, f := range p.Files {
				EnclosingFuncs(f, func(name string, body *ast.BlockStmt) {
					p.Reportf(body.Pos(), "function body in %s", name)
				})
			}
			return nil
		},
	}
	findings, err := Run([]*Package{pkg}, []*Analyzer{flagFuncs})
	if err != nil {
		t.Fatal(err)
	}
	byAnalyzer := map[string]int{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer]++
	}
	// driver.go fixture: one unsuppressed function, two suppressed ones
	// (same-line and line-above directives), one directive missing its
	// reason, one naming an unknown analyzer.
	if byAnalyzer["flagfuncs"] != 2 || byAnalyzer[DirectiveName] != 2 {
		var got []string
		for _, f := range findings {
			got = append(got, f.String())
		}
		t.Fatalf("unexpected findings:\n%s", strings.Join(got, "\n"))
	}
}
