package check

import (
	"strings"
	"testing"
)

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%+v): %v", cfg, err)
	}
	return r
}

func TestCorrectTwoProcs(t *testing.T) {
	for _, b := range []int{1, 2, 3} {
		r := mustRun(t, Config{Procs: 2, Budget: b})
		if !r.OK() {
			t.Errorf("procs=2 budget=%d: %v (%s %s)", b, r, r.MutexWitness, r.DeadlockWitness)
		}
		if r.States < 50 {
			t.Errorf("suspiciously small state space: %v", r)
		}
	}
}

func TestCorrectThreeProcs(t *testing.T) {
	for _, b := range []int{1, 2} {
		r := mustRun(t, Config{Procs: 3, Budget: b})
		if !r.OK() {
			t.Errorf("procs=3 budget=%d: %v (%s %s)", b, r, r.MutexWitness, r.DeadlockWitness)
		}
	}
}

func TestCorrectFourProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := mustRun(t, Config{Procs: 4, Budget: 1})
	if !r.OK() {
		t.Errorf("procs=4 budget=1: %v (%s %s)", r, r.MutexWitness, r.DeadlockWitness)
	}
	t.Logf("procs=4 budget=1: %v", r)
}

// TestNoPetersonWaitViolatesMutex validates the checker's mutual-exclusion
// detection: removing Peterson's synchronization between cohort leaders
// must produce two processes in the critical section.
func TestNoPetersonWaitViolatesMutex(t *testing.T) {
	r := mustRun(t, Config{Procs: 2, Budget: 1, Variant: NoPetersonWait})
	if !r.MutexViolated {
		t.Fatalf("mutilated algorithm passed mutual exclusion: %v", r)
	}
	if !strings.Contains(r.MutexWitness, "pc=cs") {
		t.Errorf("witness should show two procs at cs: %s", r.MutexWitness)
	}
}

// TestNoVictimWriteViolatesMutex: skipping the victim write is the classic
// Peterson bug — an arriving cohort leader no longer publishes itself, so
// it can pass gwait while the opposite leader is already in the critical
// section (e.g. leader A exits gwait when cohort[B]==0, then leader B
// enqueues and exits gwait because victim never names B).
func TestNoVictimWriteViolatesMutex(t *testing.T) {
	r := mustRun(t, Config{Procs: 2, Budget: 1, Variant: NoVictimWrite})
	if !r.MutexViolated {
		t.Fatalf("victim-write mutation not detected: %v", r)
	}
}

// TestNoBudgetStarves validates the weak-fairness starvation detection:
// with the budget check removed, a cohort with a steady supply of waiters
// passes the lock internally forever and the opposite cohort's leader
// stays blocked — along a cycle that violates no weak-fairness obligation
// (the blocked leader is never enabled). This is exactly the unfairness
// Section 5's budget exists to prevent.
func TestNoBudgetStarves(t *testing.T) {
	r := mustRun(t, Config{Procs: 3, Budget: 1, Variant: NoBudgetReacquire})
	if r.MutexViolated {
		t.Fatalf("unexpected mutex violation: %s", r.MutexWitness)
	}
	if r.StarvedProc == 0 {
		t.Fatal("budget removal not detected as starvation")
	}
}

func TestCorrectHasNoFairStarvationCycle(t *testing.T) {
	// Redundant with TestCorrectTwoProcs but spelled out: the budget +
	// victim machinery is exactly what removes weakly-fair starvation.
	r := mustRun(t, Config{Procs: 2, Budget: 1})
	if r.StarvedProc != 0 {
		t.Fatalf("correct algorithm reported starvation: %v (%s)", r, r.DeadlockWitness)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Procs: 1, Budget: 1}); err == nil {
		t.Error("Procs=1 accepted")
	}
	if _, err := Run(Config{Procs: MaxProcs + 1, Budget: 1}); err == nil {
		t.Error("Procs too large accepted")
	}
	if _, err := Run(Config{Procs: 2, Budget: 0}); err == nil {
		t.Error("Budget=0 accepted")
	}
}

func TestStateSpaceCap(t *testing.T) {
	_, err := Run(Config{Procs: 3, Budget: 2, MaxStates: 10})
	if err == nil || !strings.Contains(err.Error(), "state space") {
		t.Fatalf("expected state-space cap error, got %v", err)
	}
}

func TestBothInitialVictims(t *testing.T) {
	// The TLA+ spec starts with victim ∈ {1,2}; both must be explored.
	// With 2 procs and budget 1, flipping the initial victim changes early
	// schedules; the checker must remain OK for the union.
	r := mustRun(t, Config{Procs: 2, Budget: 1})
	if !r.OK() {
		t.Fatalf("union of initial victims fails: %v", r)
	}
}

func BenchmarkCheck2Procs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Procs: 2, Budget: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheck3Procs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Procs: 3, Budget: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
