// Package check is an explicit-state model checker for the ALock algorithm
// as specified in the paper's Appendix A (the TLA+/PlusCal "alock" spec).
//
// The PlusCal algorithm is translated label-for-label into a transition
// system: NumProcesses processes loop through
//
//	ncs → AcquireCohort → (AcquireGlobal if not passed) → cs → ReleaseCohort
//
// with processes assigned to the two cohorts by parity (Us(pid) = pid%2),
// a shared victim word, the two cohort tail words (0 = NULL, else the
// pid of the enqueued process, standing in for its descriptor pointer),
// and per-process descriptors carrying {budget, next}.
//
// Exhaustive breadth-first exploration over all interleavings checks:
//
//   - MutualExclusion: no two processes are simultaneously at label cs
//     (Appendix A, Safety).
//   - Deadlock-freedom: every reachable state has at least one enabled
//     transition (the processes loop forever, so quiescence = deadlock).
//   - Progress-possibility: from every reachable state, every process can
//     still reach its critical section on some schedule (computed by
//     backward reachability). This is the possibility core of the spec's
//     StarvationFree property; inevitability under weak fairness is
//     established separately by the budget run-length tests in
//     internal/core.
//
// A deliberately broken variant (skipping Peterson's wait, or the victim
// handshake) is also exposed so the tests can verify the checker actually
// catches violations.
package check

import (
	"fmt"
	"sort"
)

// Variant selects the algorithm to check: the faithful translation or a
// mutation used to validate the checker itself.
type Variant int

const (
	// Correct is the faithful Appendix A algorithm.
	Correct Variant = iota
	// NoPetersonWait makes AcquireGlobal return immediately — cohort
	// leaders never synchronize, so mutual exclusion must fail.
	NoPetersonWait
	// NoVictimWrite skips the victim assignment in AcquireGlobal — the
	// classic Peterson bug: an arriving leader no longer publishes itself
	// as the victim, so it can slide past gwait while the other cohort's
	// leader is already in the critical section.
	NoVictimWrite
	// NoBudgetReacquire ignores the budget-exhaustion check (c4 always
	// proceeds as if budget remained): the cohort lock stays correct, but
	// a cohort with a steady supply of waiters passes the lock internally
	// forever and the other cohort's leader starves — precisely the
	// unfairness the budget exists to prevent (Section 5, "Adding
	// Fairness").
	NoBudgetReacquire
)

// Program-counter labels, one per PlusCal label.
type label uint8

const (
	lNCS label = iota
	lEnter
	lC1
	lSwap
	lCWait
	lC2
	lC3
	lC4
	lC5 // call AcquireGlobal (from cohort reacquire)
	lC6
	lC7
	lC8
	lC9
	lC10
	lP2
	lG1
	lGWait
	lG4
	lCS
	lExitCas
	lR1
	lR2
	lR3
	numLabels
)

// labelNames for diagnostics.
var labelNames = [numLabels]string{
	"ncs", "enter", "c1", "swap", "cwait", "c2", "c3", "c4", "c5", "c6",
	"c7", "c8", "c9", "c10", "p2", "g1", "gwait", "g4", "cs", "cas", "r1",
	"r2", "r3",
}

// Return targets for AcquireGlobal (the only procedure called from two
// sites).
type gret uint8

const (
	retNone gret = iota
	retC6        // called from c5 (budget exhausted during a pass)
	retCS        // called from p2 (fresh cohort leader)
)

// MaxProcs bounds the checkable configuration size.
const MaxProcs = 5

// state is one global state of the transition system. Fixed-size and
// comparable, so it can key a map directly.
type state struct {
	victim int8           // 0 or 1 (cohort index)
	cohort [2]int8        // 0 = NULL, else pid (1-based)
	budget [MaxProcs]int8 // descriptor budgets
	next   [MaxProcs]int8 // descriptor next pointers (0 = NULL, else pid)
	passed [MaxProcs]bool
	pred   [MaxProcs]int8 // AcquireCohort's local pred variable
	ret    [MaxProcs]gret // AcquireGlobal return target
	pc     [MaxProcs]label
}

// Config parameterizes a check run.
type Config struct {
	Procs   int // NumProcesses (2..MaxProcs)
	Budget  int // InitialBudget (>= 1)
	Variant Variant
	// MaxStates aborts exploration beyond this many states (0 = 50M).
	MaxStates int
}

// Result reports what the exploration found.
type Result struct {
	States        int64
	Transitions   int64
	MutexViolated bool
	// MutexWitness describes the violating state, if any.
	MutexWitness string
	Deadlocked   bool
	// DeadlockWitness describes the stuck state, if any.
	DeadlockWitness string
	// StarvedProc is the first process (1-based) that cannot reach cs from
	// some reachable state, or 0.
	StarvedProc int
}

// OK reports whether every checked property held.
func (r Result) OK() bool {
	return !r.MutexViolated && !r.Deadlocked && r.StarvedProc == 0
}

func (r Result) String() string {
	return fmt.Sprintf("states=%d transitions=%d mutex=%v deadlock=%v starved=%d",
		r.States, r.Transitions, !r.MutexViolated, r.Deadlocked, r.StarvedProc)
}

// us returns the cohort index of pid (1-based pid, as in the TLA+ spec:
// Us(pid) = pid % 2 mapped onto {0,1}).
func us(pid int) int { return pid % 2 }

// Run explores the full state space of the configuration.
func Run(cfg Config) (Result, error) {
	if cfg.Procs < 2 || cfg.Procs > MaxProcs {
		return Result{}, fmt.Errorf("check: Procs must be in 2..%d", MaxProcs)
	}
	if cfg.Budget < 1 || cfg.Budget > 120 {
		return Result{}, fmt.Errorf("check: Budget must be in 1..120")
	}
	maxStates := cfg.MaxStates
	if maxStates == 0 {
		maxStates = 50_000_000
	}

	// Initial states: victim starts in either cohort (TLA+: victim ∈ {1,2}).
	var inits []state
	for _, v := range []int8{0, 1} {
		var s state
		s.victim = v
		for p := 0; p < cfg.Procs; p++ {
			s.budget[p] = -1
			s.pc[p] = lNCS
		}
		inits = append(inits, s)
	}

	res := Result{}
	seen := make(map[state]int64) // state -> dense id
	var states []state            // id -> state
	var succs [][]sccEdge         // forward edges, labeled with the acting process
	queue := make([]int32, 0, 1024)

	add := func(s state) (int32, bool) {
		if id, ok := seen[s]; ok {
			return int32(id), false
		}
		id := int64(len(states))
		seen[s] = id
		states = append(states, s)
		succs = append(succs, nil)
		return int32(id), true
	}

	for _, s := range inits {
		id, fresh := add(s)
		if fresh {
			queue = append(queue, id)
		}
	}

	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		s := states[id]

		// Safety: mutual exclusion.
		inCS := 0
		for p := 0; p < cfg.Procs; p++ {
			if s.pc[p] == lCS {
				inCS++
			}
		}
		if inCS > 1 && !res.MutexViolated {
			res.MutexViolated = true
			res.MutexWitness = describe(&s, cfg.Procs)
		}

		anyEnabled := false
		for p := 1; p <= cfg.Procs; p++ {
			succ, enabled := step(&s, p, cfg)
			if !enabled {
				continue
			}
			anyEnabled = true
			res.Transitions++
			sid, fresh := add(succ)
			succs[id] = append(succs[id], sccEdge{to: sid, actor: uint8(p - 1)})
			if fresh {
				queue = append(queue, sid)
				if len(states) > maxStates {
					return res, fmt.Errorf("check: state space exceeds %d states", maxStates)
				}
			}
		}
		if !anyEnabled && !res.Deadlocked {
			res.Deadlocked = true
			res.DeadlockWitness = describe(&s, cfg.Procs)
		}
	}
	res.States = int64(len(states))
	if res.MutexViolated || res.Deadlocked {
		return res, nil
	}

	// Progress-possibility: every process must be able to reach cs from
	// every reachable state (backward BFS from {pc[p] == cs}).
	preds := make([][]int32, len(states))
	for u := range succs {
		for _, e := range succs[u] {
			preds[e.to] = append(preds[e.to], int32(u))
		}
	}
	for p := 0; p < cfg.Procs; p++ {
		reached := make([]bool, len(states))
		var bq []int32
		for i, st := range states {
			if st.pc[p] == lCS {
				reached[i] = true
				bq = append(bq, int32(i))
			}
		}
		for len(bq) > 0 {
			v := bq[0]
			bq = bq[1:]
			for _, u := range preds[v] {
				if !reached[u] {
					reached[u] = true
					bq = append(bq, u)
				}
			}
		}
		for i := range states {
			if !reached[i] {
				res.StarvedProc = p + 1
				return res, nil
			}
		}
	}

	// Starvation under weak fairness: look for a cycle along which process
	// p stays blocked while every other process is either taking steps or
	// disabled at some point of the cycle (so the run violates no weak
	// fairness assumption). Such a cycle is an admissible infinite run
	// that starves p — the negation of the spec's StarvationFree property.
	//
	// Implementation: for each p, restrict the graph to states where p is
	// disabled, compute SCCs, and test each nontrivial SCC for the weak
	// fairness condition above.
	enabledIn := func(id int32, p int) bool {
		_, en := step(&states[id], p+1, cfg)
		return en
	}
	for p := 0; p < cfg.Procs; p++ {
		inSub := make([]bool, len(states))
		for i := range states {
			if !enabledIn(int32(i), p) {
				inSub[i] = true
			}
		}
		comp := sccs(len(states), func(u int) []sccEdge {
			if !inSub[u] {
				return nil
			}
			var out []sccEdge
			for _, e := range succs[u] {
				if inSub[e.to] {
					out = append(out, e)
				}
			}
			return out
		})
		// Group states by component and analyze each nontrivial one.
		bySCC := map[int32][]int32{}
		for i, c := range comp {
			if inSub[i] {
				bySCC[c] = append(bySCC[c], int32(i))
			}
		}
		// Visit components in sorted-id order, not map order: when more
		// than one starvation cycle exists, the reported witness must not
		// depend on map iteration order.
		ids := make([]int32, 0, len(bySCC))
		for c := range bySCC {
			ids = append(ids, c)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, c := range ids {
			members := bySCC[c]
			if !sccNontrivial(members, comp, succs, inSub) {
				continue
			}
			if fairCycle(members, comp, succs, inSub, cfg.Procs, p, enabledIn) {
				res.StarvedProc = p + 1
				res.DeadlockWitness = "weakly-fair starvation cycle through " +
					describe(&states[members[0]], cfg.Procs)
				return res, nil
			}
		}
	}
	return res, nil
}

// sccEdge is one labeled transition: target state and acting process.
type sccEdge struct {
	to    int32
	actor uint8 // 0-based proc index
}

// sccs computes strongly connected components (Tarjan, iterative) over the
// subgraph induced by the out function. Returns component IDs per node.
func sccs(n int, out func(int) []sccEdge) []int32 {
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int32, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int32
	var next, nComp int32

	type frame struct {
		v  int32
		ei int
	}
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		callStack := []frame{{v: int32(start)}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, int32(start))
		onStack[start] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			edges := out(int(f.v))
			if f.ei < len(edges) {
				w := edges[f.ei].to
				f.ei++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] && low[f.v] > index[w] {
					low[f.v] = index[w]
				}
				continue
			}
			// Done with v.
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].v
				if low[parent] > low[v] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp
}

// sccNontrivial reports whether the component has at least one internal
// transition (a real cycle, not an isolated state).
func sccNontrivial(members []int32, comp []int32, succs [][]sccEdge, inSub []bool) bool {
	if len(members) > 1 {
		return true
	}
	u := members[0]
	for _, e := range succs[u] {
		if e.to == u && inSub[u] {
			return true
		}
	}
	return false
}

// fairCycle decides whether the SCC admits a weakly fair infinite run: for
// every process j != starved, either j takes a step on some internal edge,
// or j is disabled in at least one member state (so a run looping through
// that state does not owe j a step under weak fairness).
func fairCycle(members []int32, comp []int32, succs [][]sccEdge, inSub []bool,
	procs, starved int, enabledIn func(int32, int) bool) bool {

	cid := comp[members[0]]
	steps := make([]bool, procs)
	for _, u := range members {
		for _, e := range succs[u] {
			if inSub[e.to] && comp[e.to] == cid {
				steps[e.actor] = true
			}
		}
	}
	for j := 0; j < procs; j++ {
		if j == starved || steps[j] {
			continue
		}
		disabledSomewhere := false
		for _, u := range members {
			if !enabledIn(u, j) {
				disabledSomewhere = true
				break
			}
		}
		if !disabledSomewhere {
			return false // j continuously enabled but never steps: unfair run
		}
	}
	return true
}

// step executes process pid's (1-based) next atomic label from s, returning
// the successor and whether the process was enabled.
func step(s *state, pid int, cfg Config) (state, bool) {
	p := pid - 1
	n := *s
	myCohort := us(pid)
	other := 1 - myCohort
	B := int8(cfg.Budget)

	switch s.pc[p] {
	case lNCS:
		n.pc[p] = lEnter
	case lEnter:
		n.pc[p] = lC1
	case lC1:
		n.budget[p] = -1
		n.next[p] = 0
		n.pc[p] = lSwap
	case lSwap:
		n.pred[p] = s.cohort[myCohort]
		n.cohort[myCohort] = int8(pid)
		n.pc[p] = lCWait
	case lCWait:
		if s.pred[p] != 0 {
			n.pc[p] = lC2
		} else {
			n.pc[p] = lC8
		}
	case lC2:
		n.next[s.pred[p]-1] = int8(pid)
		n.pc[p] = lC3
	case lC3:
		if s.budget[p] < 0 {
			return n, false // await Budget(self) >= 0
		}
		n.pc[p] = lC4
	case lC4:
		if s.budget[p] == 0 && cfg.Variant != NoBudgetReacquire {
			n.pc[p] = lC5
		} else {
			n.pc[p] = lC7
		}
	case lC5:
		n.ret[p] = retC6
		n.pc[p] = gEntry(cfg.Variant)
	case lC6:
		n.budget[p] = B
		n.pc[p] = lC7
	case lC7:
		n.passed[p] = true
		n.pc[p] = lP2 // return from AcquireCohort
	case lC8:
		n.budget[p] = B
		n.pc[p] = lC9
	case lC9:
		n.passed[p] = false
		n.pc[p] = lP2
	case lC10:
		n.pc[p] = lP2
	case lP2:
		if !s.passed[p] {
			n.ret[p] = retCS
			n.pc[p] = gEntry(cfg.Variant)
		} else {
			n.pc[p] = lCS
		}
	case lG1:
		if cfg.Variant != NoVictimWrite {
			n.victim = int8(myCohort)
		}
		n.pc[p] = lGWait
	case lGWait:
		// g2: if cohort[Them] = 0 goto g4; g3: if victim != us goto g4.
		if s.cohort[other] == 0 || int(s.victim) != myCohort {
			n.pc[p] = lG4
		} else {
			return n, false // keep waiting (modeled as blocked-until-change)
		}
	case lG4:
		// Return from AcquireGlobal.
		switch s.ret[p] {
		case retC6:
			n.pc[p] = lC6
		case retCS:
			n.pc[p] = lCS
		default:
			panic("check: g4 without return target")
		}
		n.ret[p] = retNone
	case lCS:
		n.pc[p] = lExitCas
	case lExitCas:
		if s.cohort[myCohort] == int8(pid) {
			n.cohort[myCohort] = 0
			n.pc[p] = lR3
		} else {
			n.pc[p] = lR1
		}
	case lR1:
		if s.next[p] == 0 {
			return n, false // await next != 0
		}
		n.pc[p] = lR2
	case lR2:
		passedBudget := s.budget[p] - 1
		if cfg.Variant == NoBudgetReacquire && passedBudget < 1 {
			// Keep the mutated variant passing forever (budgets would
			// otherwise underflow into the waiting sentinel and change
			// the failure mode from starvation to a stuck successor).
			passedBudget = 1
		}
		n.budget[s.next[p]-1] = passedBudget
		n.pc[p] = lR3
	case lR3:
		n.pc[p] = lNCS // return; loop
	default:
		panic("check: bad pc")
	}
	return n, true
}

// gEntry returns the entry label of AcquireGlobal for the variant.
func gEntry(v Variant) label {
	if v == NoPetersonWait {
		return lG4
	}
	return lG1
}

// describe renders a state for violation messages.
func describe(s *state, procs int) string {
	out := fmt.Sprintf("victim=%d cohort=[%d,%d]", s.victim, s.cohort[0], s.cohort[1])
	for p := 0; p < procs; p++ {
		out += fmt.Sprintf(" p%d{pc=%s budget=%d next=%d passed=%v}",
			p+1, labelNames[s.pc[p]], s.budget[p], s.next[p], s.passed[p])
	}
	return out
}
