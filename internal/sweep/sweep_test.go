package sweep

import (
	"reflect"
	"testing"

	"alock/internal/harness"
	"alock/internal/slots"
)

// testConfigs is a small multi-config sweep covering several algorithms and
// cluster shapes.
func testConfigs() []harness.Config {
	base := harness.Config{
		Locks:       30,
		LocalityPct: 90,
		WarmupNS:    50_000,
		MeasureNS:   400_000,
		TargetOps:   3_000,
		Seed:        1,
	}
	var cfgs []harness.Config
	for _, algo := range []string{"alock", "spinlock", "mcs"} {
		for _, nodes := range []int{2, 3} {
			c := base
			c.Algorithm = algo
			c.Nodes = nodes
			c.ThreadsPerNode = 3
			cfgs = append(cfgs, c)
		}
	}
	return cfgs
}

// stripEvents zeroes fields not part of the per-run statistics contract
// (none currently — kept for future use) and returns a comparable view.
func summarize(r harness.Result) map[string]any {
	return map[string]any{
		"ops":     r.Ops,
		"span":    r.SpanNS,
		"tput":    r.Throughput,
		"latency": r.Latency,
		"nic":     r.NIC,
		"lock":    r.Lock,
		"events":  r.Events,
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	cfgs := testConfigs()
	serial, err := Runner{Parallel: 1}.Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runner{Parallel: 8}.Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(cfgs) || len(parallel) != len(cfgs) {
		t.Fatalf("result lengths: serial=%d parallel=%d want %d",
			len(serial), len(parallel), len(cfgs))
	}
	for i := range cfgs {
		a, b := summarize(serial[i]), summarize(parallel[i])
		if !reflect.DeepEqual(a, b) {
			t.Errorf("config %d: parallel run diverged from serial:\nserial:   %+v\nparallel: %+v",
				i, a, b)
		}
	}
}

func TestRerunIsIdentical(t *testing.T) {
	cfgs := testConfigs()
	r := Runner{Parallel: 4}
	first, err := r.Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if !reflect.DeepEqual(summarize(first[i]), summarize(second[i])) {
			t.Errorf("config %d: same-seed re-run diverged", i)
		}
	}
}

func TestResultsInInputOrder(t *testing.T) {
	cfgs := testConfigs()
	results, err := Runner{Parallel: 8}.Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Config.Algorithm != cfgs[i].Algorithm || r.Config.Nodes != cfgs[i].Nodes {
			t.Fatalf("results[%d] holds config %+v, want %+v",
				i, r.Config, cfgs[i])
		}
	}
}

func TestProgressCallback(t *testing.T) {
	cfgs := testConfigs()
	var seen []int
	var lastDone int
	r := Runner{
		Parallel: 4,
		OnResult: func(p Progress) {
			seen = append(seen, p.Index)
			if p.Done <= lastDone || p.Done > p.Total {
				t.Errorf("non-monotonic Done: %d after %d (total %d)", p.Done, lastDone, p.Total)
			}
			lastDone = p.Done
			if p.Err != nil || p.Result == nil {
				t.Errorf("run %d: err=%v result=%v", p.Index, p.Err, p.Result)
			}
		},
	}
	if _, err := r.Run(cfgs); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(cfgs) {
		t.Fatalf("callback fired %d times, want %d", len(seen), len(cfgs))
	}
}

func TestEarlyStop(t *testing.T) {
	cfgs := testConfigs()
	stopAfter := 2
	r := Runner{
		Parallel: 1, // serial so the stop point is deterministic
		Stop:     func(p Progress) bool { return p.Done >= stopAfter },
	}
	results, err := r.Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	var completed int
	for _, res := range results {
		if res.Ops > 0 {
			completed++
		}
	}
	if completed != stopAfter {
		t.Fatalf("completed %d runs, want %d (early stop)", completed, stopAfter)
	}
}

func TestBadConfigSurfacesError(t *testing.T) {
	cfgs := testConfigs()
	cfgs[1].Nodes = 99 // invalid: 4-bit node IDs
	results, err := Runner{Parallel: 4}.Run(cfgs)
	if err == nil {
		t.Fatal("invalid config did not surface an error")
	}
	// The other runs must still have executed.
	for i, r := range results {
		if i == 1 {
			continue
		}
		if r.Ops == 0 {
			t.Errorf("run %d skipped despite unrelated failure", i)
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	results, err := Runner{}.Run(nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: results=%v err=%v", results, err)
	}
}

// TestSlotBudgetComposition: a parallel sweep of configs that themselves
// run multi-worker sharded engines must not multiply goroutines past the
// process slot budget. With capacity C, the extra slots outstanding at any
// instant — sweep workers beyond the caller plus engine helpers beyond each
// engine's driver — may never exceed C-1, so total running goroutines stay
// at most C.
func TestSlotBudgetComposition(t *testing.T) {
	const capacity = 3
	restore := slots.SetCapacity(capacity)
	defer restore()

	cfgs := testConfigs()
	for i := range cfgs {
		// TargetOps forces sharded-serial; drop it so the windowed
		// executor actually requests helper slots.
		cfgs[i].TargetOps = 0
		cfgs[i].MeasureNS = 150_000
		cfgs[i].EngineShards = 4
	}
	if _, err := (Runner{Parallel: 4}).Run(cfgs); err != nil {
		t.Fatal(err)
	}
	if p := slots.Peak(); p > capacity-1 {
		t.Fatalf("slot budget violated: peak %d extra slots with capacity %d", p, capacity)
	}
	if u := slots.InUse(); u != 0 {
		t.Fatalf("%d slots leaked", u)
	}

	// The same sweep with all slots taken still completes (fully serial).
	taken := slots.TryAcquire(capacity - 1)
	res, err := (Runner{Parallel: 4}).Run(cfgs[:2])
	slots.Release(taken)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Ops == 0 {
		t.Fatal("slot-starved sweep produced no work")
	}
}

// TestSweepResultsUnaffectedBySlotStarvation: the slot budget changes only
// concurrency, never results.
func TestSweepResultsUnaffectedBySlotStarvation(t *testing.T) {
	cfgs := testConfigs()[:3]
	want, err := (Runner{Parallel: 1}).Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	restore := slots.SetCapacity(1) // nothing to win: everything degrades serial
	defer restore()
	got, err := (Runner{Parallel: 4}).Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("slot starvation changed sweep results")
	}
}
