// Package sweep fans a batch of experiment configurations out across the
// host's cores. Each configuration is one fully independent single-threaded
// simulation (internal/sim serializes its simulated threads internally), so
// a multi-config sweep — a paper figure, a scenario expansion, a parameter
// study — is embarrassingly parallel: N workers each pull the next config,
// run it to completion, and deposit the result at the config's input index.
//
// Determinism: a run's outcome depends only on its Config (the simulator is
// seeded, never on wall time), so the result slice is bit-identical no
// matter how many workers execute it or how the scheduler interleaves them.
// Only wall-clock time changes with Parallel.
//
// Concurrency composes through the process-wide execution-slot budget
// (internal/slots): each worker beyond the first needs an extra slot, so a
// parallel sweep of configs that themselves run sharded engines
// (Config.EngineShards > 1) multiplies to at most GOMAXPROCS running
// goroutines — the sweep layer and the engines draw from one pool.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"alock/internal/harness"
	"alock/internal/slots"
)

// Progress describes one completed run, delivered to OnResult.
type Progress struct {
	// Index is the run's position in the input slice.
	Index int
	// Done and Total count completed vs submitted runs at callback time.
	Done, Total int
	// Result is the completed run's outcome (nil when the run failed).
	Result *harness.Result
	// Err is the run's error, if any.
	Err error
}

// Runner executes batches of harness configurations in parallel.
// The zero value runs on every core with no callbacks.
type Runner struct {
	// Parallel is the worker count; <= 0 means GOMAXPROCS.
	Parallel int
	// OnResult, when non-nil, is invoked once per completed run, serialized
	// under an internal lock (callbacks never race). Completion order is
	// nondeterministic; use Progress.Index to correlate.
	OnResult func(Progress)
	// Stop, when non-nil, is consulted after each completed run (under the
	// same lock as OnResult); returning true prevents any not-yet-started
	// run from being dispatched. Already-running configs finish normally.
	// Skipped entries keep zero Results.
	Stop func(Progress) bool
}

// workers resolves the effective worker count for n jobs.
func (r Runner) workers(n int) int {
	w := r.Parallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every config and returns results in input order (results[i]
// belongs to cfgs[i], regardless of completion order). The error is the
// lowest-index run failure, or nil; runs after a failure still execute
// (their results are valid), mirroring how a sweep with one bad cell should
// not discard the rest of the grid.
func (r Runner) Run(cfgs []harness.Config) ([]harness.Result, error) {
	results := make([]harness.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	if len(cfgs) == 0 {
		return results, nil
	}

	var (
		next    atomic.Int64 // next job index to claim
		stopped atomic.Bool
		done    int
		cbMu    sync.Mutex // serializes OnResult/Stop and `done`
		wg      sync.WaitGroup
	)

	worker := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1) - 1)
			if i >= len(cfgs) || stopped.Load() {
				return
			}
			res, err := harness.Run(cfgs[i])
			results[i], errs[i] = res, err

			cbMu.Lock()
			done++
			p := Progress{Index: i, Done: done, Total: len(cfgs), Err: err}
			if err == nil {
				p.Result = &results[i]
			}
			if r.OnResult != nil {
				r.OnResult(p)
			}
			if r.Stop != nil && r.Stop(p) {
				stopped.Store(true)
			}
			cbMu.Unlock()
		}
	}

	// The Run caller's goroutine is one implicit execution slot; every
	// additional worker must win an extra slot so nested parallel layers
	// (sweep workers x engine shards) never oversubscribe the host. Winning
	// zero extras degrades to a serial sweep on this goroutine — results
	// are identical either way.
	want := r.workers(len(cfgs))
	extra := slots.TryAcquire(want - 1)
	defer slots.Release(extra)
	wg.Add(extra)
	for i := 0; i < extra; i++ {
		go worker()
	}
	wg.Add(1)
	worker() // the caller works too, slot-free
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("sweep: config %d: %w", i, err)
		}
	}
	return results, nil
}

// MustRun is Run that panics on error, for sweeps whose configs are
// statically known to be valid (the figure drivers).
func (r Runner) MustRun(cfgs []harness.Config) []harness.Result {
	results, err := r.Run(cfgs)
	if err != nil {
		panic(err)
	}
	return results
}

// RunMany adapts the runner to the harness.RunMany callback the figure
// drivers consume.
func (r Runner) RunMany() harness.RunMany {
	return func(cfgs []harness.Config) []harness.Result { return r.MustRun(cfgs) }
}
