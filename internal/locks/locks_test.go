package locks_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"alock/internal/api"
	"alock/internal/locks"
	"alock/internal/locktest"
	"alock/internal/model"
	"alock/internal/ptr"
	"alock/internal/sim"
)

func TestSpinlockMutualExclusion(t *testing.T) {
	locktest.CheckMutualExclusion(t, locks.SpinProvider{}, locktest.DefaultMutexConfig())
}

func TestSpinlockHighContention(t *testing.T) {
	cfg := locktest.DefaultMutexConfig()
	cfg.Locks = 1
	cfg.Iters = 60
	locktest.CheckMutualExclusion(t, locks.SpinProvider{}, cfg)
}

func TestMCSMutualExclusion(t *testing.T) {
	locktest.CheckMutualExclusion(t, locks.MCSProvider{}, locktest.DefaultMutexConfig())
}

func TestMCSHighContention(t *testing.T) {
	cfg := locktest.DefaultMutexConfig()
	cfg.Locks = 1
	cfg.Iters = 60
	locktest.CheckMutualExclusion(t, locks.MCSProvider{}, cfg)
}

func TestMCSFIFOUnderSingleQueue(t *testing.T) {
	// MCS is FIFO: with one lock and threads re-entering, no thread can
	// be overtaken twice in a row by the same competitor... the cheap
	// checkable property is progress balance: every thread completes its
	// full quota (the harness already asserts this via TotalOps).
	cfg := locktest.DefaultMutexConfig()
	cfg.Locks = 1
	cfg.ThreadsPerNode = 2
	cfg.Iters = 100
	locktest.CheckMutualExclusion(t, locks.MCSProvider{}, cfg)
}

func TestFilterMutualExclusion(t *testing.T) {
	cfg := locktest.DefaultMutexConfig()
	cfg.Nodes = 2
	cfg.ThreadsPerNode = 2
	cfg.Locks = 1
	cfg.Iters = 25 // O(n) remote ops per acquire: keep it small
	prov := locks.NewFilterProvider(cfg.Nodes * cfg.ThreadsPerNode)
	locktest.CheckMutualExclusion(t, prov, cfg)
}

func TestBakeryMutualExclusion(t *testing.T) {
	cfg := locktest.DefaultMutexConfig()
	cfg.Nodes = 2
	cfg.ThreadsPerNode = 2
	cfg.Locks = 1
	cfg.Iters = 25
	prov := locks.NewBakeryProvider(cfg.Nodes * cfg.ThreadsPerNode)
	locktest.CheckMutualExclusion(t, prov, cfg)
}

// TestNaiveMixedLockViolatesTable1 is the negative control: a lock that
// mixes local CAS and remote rCAS on one word MUST break once remote RMW
// tearing is modeled. If this test ever "fails" (the naive lock staying
// correct), the engine has stopped modeling Table 1 and every other
// correctness result is suspect.
func TestNaiveMixedLockViolatesTable1(t *testing.T) {
	cfg := locktest.DefaultMutexConfig()
	cfg.Locks = 1
	cfg.Nodes = 2
	cfg.ThreadsPerNode = 3
	cfg.Iters = 400
	cfg.Model.TornGapNS = 300 // generous window
	res := locktest.RunMutex(locks.NaiveMixedProvider{}, cfg)
	violated := res.CounterSum != res.TotalOps || res.OwnerTramples > 0
	if !violated {
		t.Fatal("naive mixed-RMW lock did not violate mutual exclusion under torn rCAS; " +
			"the Table 1 model is not being exercised")
	}
}

// TestNaiveMixedLockFineWithoutTearing sanity-checks the control's
// control: with tearing off (atomic rCAS — NOT real RDMA), the naive lock
// is a perfectly good spinlock.
func TestNaiveMixedLockFineWithoutTearing(t *testing.T) {
	cfg := locktest.DefaultMutexConfig()
	cfg.Model.TornRCAS = false
	cfg.Model.TornGapNS = 0
	locktest.CheckMutualExclusion(t, locks.NaiveMixedProvider{}, cfg)
}

// TestALockImmuneToTearing is the headline correctness claim: ALock never
// mixes RMW classes on one word, so tearing cannot hurt it. (Also covered
// in internal/core's tests; repeated here next to the negative control.)
func TestALockImmuneToTearing(t *testing.T) {
	cfg := locktest.DefaultMutexConfig()
	cfg.Locks = 1
	cfg.Nodes = 2
	cfg.ThreadsPerNode = 3
	cfg.Iters = 400
	cfg.Model.TornGapNS = 300
	locktest.CheckMutualExclusion(t, locks.NewALockProvider(), cfg)
}

func TestRegistryNames(t *testing.T) {
	names := locks.Names()
	if len(names) != 10 {
		t.Fatalf("Names() = %v", names)
	}
	for _, name := range names {
		opts := locks.Options{Threads: 4}
		p, err := locks.ByName(name, opts)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	_, err := locks.ByName("ticket", locks.Options{})
	if err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("err = %v", err)
	}
}

func TestRegistryFilterNeedsThreads(t *testing.T) {
	if _, err := locks.ByName("filter", locks.Options{}); err == nil {
		t.Fatal("filter without thread count should error")
	}
	if _, err := locks.ByName("bakery", locks.Options{}); err == nil {
		t.Fatal("bakery without thread count should error")
	}
}

// --- Reader/writer locks ---

// rwStats is what runRW observes. The Go-side counters are safe without
// atomics: the simulator runs exactly one thread at a time and only
// switches at blocking operations.
type rwStats struct {
	ReadOps, WriteOps int64
	MaxReaders        int
	Violations        int64 // writer overlapping anyone, or reader overlapping a writer
}

// runRW drives readers and writers against one RW lock on node 0 and
// checks the shared/exclusive invariants from inside the critical sections.
func runRW(t *testing.T, prov locks.Provider, readers, writers int, csNS int64, horizon int64) rwStats {
	t.Helper()
	rwp, ok := prov.(locks.RWProvider)
	if !ok {
		t.Fatalf("%s does not implement RWProvider", prov.Name())
	}
	m := model.Uniform(7)
	m.TornRCAS = true
	m.TornGapNS = 90
	e := sim.New(2, 1<<18, m, 1)
	l := e.Space().AllocLine(0)
	prov.Prepare(e.Space(), []ptr.Ptr{l})

	var st rwStats
	var readersIn, writersIn int
	for i := 0; i < readers; i++ {
		node := i % 2
		e.Spawn(node, func(ctx api.Ctx) {
			h := rwp.NewRWHandle(ctx)
			for !ctx.Stopped() {
				h.RLock(l)
				readersIn++
				if writersIn > 0 {
					st.Violations++
				}
				if readersIn > st.MaxReaders {
					st.MaxReaders = readersIn
				}
				ctx.Work(time.Duration(csNS))
				readersIn--
				h.RUnlock(l)
				st.ReadOps++
			}
		})
	}
	for i := 0; i < writers; i++ {
		node := i % 2
		e.Spawn(node, func(ctx api.Ctx) {
			h := rwp.NewRWHandle(ctx)
			for !ctx.Stopped() {
				h.Lock(l)
				writersIn++
				if writersIn > 1 || readersIn > 0 {
					st.Violations++
				}
				ctx.Work(time.Duration(csNS))
				writersIn--
				h.Unlock(l)
				st.WriteOps++
			}
		})
	}
	e.Run(horizon)
	return st
}

func TestRWLocksSharedExclusiveInvariants(t *testing.T) {
	for _, name := range []string{"rw-budget", "rw-wpref", "rw-queue"} {
		name := name
		t.Run(name, func(t *testing.T) {
			prov, err := locks.ByName(name, locks.Options{})
			if err != nil {
				t.Fatal(err)
			}
			st := runRW(t, prov, 6, 2, 800, 600_000)
			if st.Violations != 0 {
				t.Fatalf("%d shared/exclusive violations", st.Violations)
			}
			if st.ReadOps == 0 || st.WriteOps == 0 {
				t.Fatalf("a class starved outright: reads=%d writes=%d", st.ReadOps, st.WriteOps)
			}
			if st.MaxReaders < 2 {
				t.Fatalf("readers never overlapped (max concurrency %d) — RLock degraded to exclusive", st.MaxReaders)
			}
		})
	}
}

func TestRWBudgetAdmitsReadersUnderWriterStream(t *testing.T) {
	// Under a steady writer stream, writer preference throttles readers
	// hard; the budgeted lock must keep yielding the phase back to them.
	budget, err := locks.ByName("rw-budget", locks.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wpref, err := locks.ByName("rw-wpref", locks.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := runRW(t, budget, 4, 4, 1200, 900_000)
	w := runRW(t, wpref, 4, 4, 1200, 900_000)
	if b.Violations != 0 || w.Violations != 0 {
		t.Fatalf("violations: budget=%d wpref=%d", b.Violations, w.Violations)
	}
	if b.ReadOps <= w.ReadOps {
		t.Errorf("budgeted lock did not favor readers over writer preference: %d vs %d reads",
			b.ReadOps, w.ReadOps)
	}
}

func TestRWUncontendedWriteSingleCAS(t *testing.T) {
	// An exclusive acquire on an idle RW lock must cost one rCAS, not a
	// register-then-enter pair: 2 NIC submissions for Lock (TX+RX of one
	// verb) plus 2 for Unlock.
	for _, name := range []string{"rw-budget", "rw-wpref", "rw-queue"} {
		name := name
		t.Run(name, func(t *testing.T) {
			prov, err := locks.ByName(name, locks.Options{})
			if err != nil {
				t.Fatal(err)
			}
			rwp := prov.(locks.RWProvider)
			e := sim.New(2, 1<<18, model.Uniform(7), 1)
			l := e.Space().AllocLine(0)
			prov.Prepare(e.Space(), []ptr.Ptr{l})
			e.Spawn(1, func(ctx api.Ctx) { // remote thread, idle lock
				h := rwp.NewRWHandle(ctx)
				h.Lock(l)
				h.Unlock(l)
			})
			e.Run(1 << 40)
			var verbs int64
			for n := 0; n < 2; n++ {
				verbs += e.NIC(n).Stats().Verbs
			}
			if verbs != 4 {
				t.Fatalf("uncontended write lock/unlock cost %d NIC submissions, want 4", verbs)
			}
		})
	}
}

// TestRWQueueStormInvariants is the locktest-style check for the queued
// lock under a heavier storm than the shared invariant test: many readers
// and writers on one lock, checking from inside the critical sections that
// a writer is never concurrent with any reader (or another writer), that
// readers really overlap, and that neither class starves.
func TestRWQueueStormInvariants(t *testing.T) {
	prov, err := locks.ByName("rw-queue", locks.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := runRW(t, prov, 10, 4, 600, 1_500_000)
	if st.Violations != 0 {
		t.Fatalf("%d shared/exclusive violations (writer admitted alongside a reader)", st.Violations)
	}
	if st.MaxReaders < 2 {
		t.Fatalf("readers never overlapped (max concurrency %d)", st.MaxReaders)
	}
	if st.ReadOps == 0 || st.WriteOps == 0 {
		t.Fatalf("a class starved outright: reads=%d writes=%d", st.ReadOps, st.WriteOps)
	}
}

// TestRWQueueTinyBudgetStillAdmitsReaders pins the budget at its minimum:
// barging is all but disabled, every reader detours through the queue, and
// the invariants must still hold.
func TestRWQueueTinyBudgetStillAdmitsReaders(t *testing.T) {
	prov, err := locks.ByName("rw-queue", locks.Options{
		RW: locks.RWConfig{ReadBudget: 1, WriteBudget: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := runRW(t, prov, 6, 2, 800, 900_000)
	if st.Violations != 0 {
		t.Fatalf("%d violations under budget 1", st.Violations)
	}
	if st.ReadOps == 0 || st.WriteOps == 0 {
		t.Fatalf("a class starved: reads=%d writes=%d", st.ReadOps, st.WriteOps)
	}
}

func TestRWExclusiveDegradationAdapter(t *testing.T) {
	// Algorithms without native shared mode run RW workloads through the
	// ExclusiveRW adapter: still mutually exclusive, readers never overlap.
	prov, err := locks.ByName("mcs", locks.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := prov.(locks.RWProvider); ok {
		t.Fatal("mcs unexpectedly native-RW; test needs a degrading algorithm")
	}
	m := model.Uniform(7)
	e := sim.New(2, 1<<18, m, 1)
	l := e.Space().AllocLine(0)
	prov.Prepare(e.Space(), []ptr.Ptr{l})
	var readersIn, maxReaders int
	var ops int64
	for i := 0; i < 4; i++ {
		node := i % 2
		e.Spawn(node, func(ctx api.Ctx) {
			h := locks.RWHandleFor(prov, ctx)
			for !ctx.Stopped() {
				h.RLock(l)
				readersIn++
				if readersIn > maxReaders {
					maxReaders = readersIn
				}
				ctx.Work(500 * time.Nanosecond)
				readersIn--
				h.RUnlock(l)
				ops++
			}
		})
	}
	e.Run(300_000)
	if ops == 0 {
		t.Fatal("no operations completed")
	}
	if maxReaders != 1 {
		t.Fatalf("exclusive degradation let %d readers overlap", maxReaders)
	}
}

func TestAllCorrectAlgorithmsUnderOneConfig(t *testing.T) {
	// Every non-broken algorithm passes the same mid-contention check.
	cfg := locktest.DefaultMutexConfig()
	cfg.Iters = 40
	threads := cfg.Nodes * cfg.ThreadsPerNode
	for _, name := range locks.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			if name == "filter" || name == "bakery" {
				// O(n) algorithms get a smaller dose elsewhere.
				t.Skip("covered by dedicated smaller tests")
			}
			prov, err := locks.ByName(name, locks.Options{Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			locktest.CheckMutualExclusion(t, prov, cfg)
		})
	}
}

// TestZombieDrainRecycles pins the zombie-descriptor leak fix: a thread
// that stops acquiring must still recycle its abandoned descriptors on its
// next release, once the granter's skip marks have landed.
func TestZombieDrainRecycles(t *testing.T) {
	for _, name := range []string{"alock", "mcs", "rw-queue"} {
		t.Run(name, func(t *testing.T) {
			prov, err := locks.ByName(name, locks.Options{Threads: 3, Timed: true})
			if err != nil {
				t.Fatal(err)
			}
			locktest.CheckZombieDrain(t, prov)
		})
	}
}

// TestBestEffortDeadlineReportsLateAcquire pins the overshoot-honesty fix:
// an algorithm without a native timed path (filter) blocks straight
// through a deadline — the grant must be reported as AcquiredLate, not
// Acquired, while an in-deadline grant stays Acquired and the guard is
// live either way.
func TestBestEffortDeadlineReportsLateAcquire(t *testing.T) {
	prov, err := locks.ByName("filter", locks.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	e := sim.New(1, 1<<18, model.Uniform(10), 1)
	l := e.Space().AllocLine(0)
	prov.Prepare(e.Space(), []ptr.Ptr{l})
	ft := locks.NewFenceTable()

	var inTime, late api.Outcome
	var lateRelease api.ReleaseOutcome
	e.Spawn(0, func(ctx api.Ctx) { // holder: wedges the lock well past the waiter's deadline
		h := locks.TokenHandleFor(prov, ctx, ft)
		var g api.Guard
		g, inTime = h.Acquire(l, api.Exclusive, api.AcquireOpts{DeadlineNS: ctx.Now() + 50_000})
		ctx.Work(40 * time.Microsecond)
		h.Release(g)
	})
	e.Spawn(0, func(ctx api.Ctx) { // waiter: 10us deadline against a 40us hold
		h := locks.TokenHandleFor(prov, ctx, ft)
		ctx.Work(2 * time.Microsecond)
		var g api.Guard
		g, late = h.Acquire(l, api.Exclusive, api.AcquireOpts{DeadlineNS: ctx.Now() + 10_000})
		lateRelease = h.Release(g)
	})
	e.Run(1 << 40)

	if inTime != api.Acquired {
		t.Errorf("uncontended in-deadline acquire = %v, want Acquired", inTime)
	}
	if late != api.AcquiredLate {
		t.Errorf("blocked-through-deadline acquire = %v, want AcquiredLate", late)
	}
	if !late.Granted() || !inTime.Granted() {
		t.Error("granted outcomes must report Granted()")
	}
	if lateRelease != api.Released {
		t.Errorf("late-acquired guard release = %v, want Released (the guard is live)", lateRelease)
	}
}

// TestShardedEngineInvariants runs the full mutual-exclusion invariant
// suite on the sharded engines — the serial merge scheduler (shards=1) and
// the conservative windowed parallel executor (shards=4) — and pins every
// observation (ops, counter sum, tramples, per-lock entry order) to the
// serial engine's, bit for bit.
func TestShardedEngineInvariants(t *testing.T) {
	for _, name := range []string{"spinlock", "mcs", "alock", "rw-queue"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := locktest.DefaultMutexConfig()
			cfg.Iters = 40
			threads := cfg.Nodes * cfg.ThreadsPerNode
			prov, err := locks.ByName(name, locks.Options{Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			serial := locktest.RunMutex(prov, cfg)
			for _, shards := range []int{1, 4} {
				scfg := cfg
				scfg.EngineShards = shards
				locktest.CheckMutualExclusion(t, prov, scfg)
				got := locktest.RunMutex(prov, scfg)
				if !reflect.DeepEqual(serial, got) {
					t.Errorf("%s: observations diverged between serial and shards=%d engines:\nserial:  %+v\nsharded: %+v",
						name, shards, serial, got)
				}
			}
		})
	}
}

// TestShardedEngineOverlappingHolds repeats the two-locks-held token-API
// check on both sharded engines.
func TestShardedEngineOverlappingHolds(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cfg := locktest.DefaultOverlapConfig()
		cfg.Iters = 30
		cfg.EngineShards = shards
		prov, err := locks.ByName("mcs", locks.Options{Threads: cfg.Nodes * cfg.ThreadsPerNode})
		if err != nil {
			t.Fatal(err)
		}
		locktest.CheckOverlappingHolds(t, prov, cfg)
	}
}
