package locks_test

import (
	"strings"
	"testing"

	"alock/internal/locks"
	"alock/internal/locktest"
)

func TestSpinlockMutualExclusion(t *testing.T) {
	locktest.CheckMutualExclusion(t, locks.SpinProvider{}, locktest.DefaultMutexConfig())
}

func TestSpinlockHighContention(t *testing.T) {
	cfg := locktest.DefaultMutexConfig()
	cfg.Locks = 1
	cfg.Iters = 60
	locktest.CheckMutualExclusion(t, locks.SpinProvider{}, cfg)
}

func TestMCSMutualExclusion(t *testing.T) {
	locktest.CheckMutualExclusion(t, locks.MCSProvider{}, locktest.DefaultMutexConfig())
}

func TestMCSHighContention(t *testing.T) {
	cfg := locktest.DefaultMutexConfig()
	cfg.Locks = 1
	cfg.Iters = 60
	locktest.CheckMutualExclusion(t, locks.MCSProvider{}, cfg)
}

func TestMCSFIFOUnderSingleQueue(t *testing.T) {
	// MCS is FIFO: with one lock and threads re-entering, no thread can
	// be overtaken twice in a row by the same competitor... the cheap
	// checkable property is progress balance: every thread completes its
	// full quota (the harness already asserts this via TotalOps).
	cfg := locktest.DefaultMutexConfig()
	cfg.Locks = 1
	cfg.ThreadsPerNode = 2
	cfg.Iters = 100
	locktest.CheckMutualExclusion(t, locks.MCSProvider{}, cfg)
}

func TestFilterMutualExclusion(t *testing.T) {
	cfg := locktest.DefaultMutexConfig()
	cfg.Nodes = 2
	cfg.ThreadsPerNode = 2
	cfg.Locks = 1
	cfg.Iters = 25 // O(n) remote ops per acquire: keep it small
	prov := locks.NewFilterProvider(cfg.Nodes * cfg.ThreadsPerNode)
	locktest.CheckMutualExclusion(t, prov, cfg)
}

func TestBakeryMutualExclusion(t *testing.T) {
	cfg := locktest.DefaultMutexConfig()
	cfg.Nodes = 2
	cfg.ThreadsPerNode = 2
	cfg.Locks = 1
	cfg.Iters = 25
	prov := locks.NewBakeryProvider(cfg.Nodes * cfg.ThreadsPerNode)
	locktest.CheckMutualExclusion(t, prov, cfg)
}

// TestNaiveMixedLockViolatesTable1 is the negative control: a lock that
// mixes local CAS and remote rCAS on one word MUST break once remote RMW
// tearing is modeled. If this test ever "fails" (the naive lock staying
// correct), the engine has stopped modeling Table 1 and every other
// correctness result is suspect.
func TestNaiveMixedLockViolatesTable1(t *testing.T) {
	cfg := locktest.DefaultMutexConfig()
	cfg.Locks = 1
	cfg.Nodes = 2
	cfg.ThreadsPerNode = 3
	cfg.Iters = 400
	cfg.Model.TornGapNS = 300 // generous window
	res := locktest.RunMutex(locks.NaiveMixedProvider{}, cfg)
	violated := res.CounterSum != res.TotalOps || res.OwnerTramples > 0
	if !violated {
		t.Fatal("naive mixed-RMW lock did not violate mutual exclusion under torn rCAS; " +
			"the Table 1 model is not being exercised")
	}
}

// TestNaiveMixedLockFineWithoutTearing sanity-checks the control's
// control: with tearing off (atomic rCAS — NOT real RDMA), the naive lock
// is a perfectly good spinlock.
func TestNaiveMixedLockFineWithoutTearing(t *testing.T) {
	cfg := locktest.DefaultMutexConfig()
	cfg.Model.TornRCAS = false
	cfg.Model.TornGapNS = 0
	locktest.CheckMutualExclusion(t, locks.NaiveMixedProvider{}, cfg)
}

// TestALockImmuneToTearing is the headline correctness claim: ALock never
// mixes RMW classes on one word, so tearing cannot hurt it. (Also covered
// in internal/core's tests; repeated here next to the negative control.)
func TestALockImmuneToTearing(t *testing.T) {
	cfg := locktest.DefaultMutexConfig()
	cfg.Locks = 1
	cfg.Nodes = 2
	cfg.ThreadsPerNode = 3
	cfg.Iters = 400
	cfg.Model.TornGapNS = 300
	locktest.CheckMutualExclusion(t, locks.NewALockProvider(), cfg)
}

func TestRegistryNames(t *testing.T) {
	names := locks.Names()
	if len(names) != 7 {
		t.Fatalf("Names() = %v", names)
	}
	for _, name := range names {
		opts := locks.Options{Threads: 4}
		p, err := locks.ByName(name, opts)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	_, err := locks.ByName("ticket", locks.Options{})
	if err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("err = %v", err)
	}
}

func TestRegistryFilterNeedsThreads(t *testing.T) {
	if _, err := locks.ByName("filter", locks.Options{}); err == nil {
		t.Fatal("filter without thread count should error")
	}
	if _, err := locks.ByName("bakery", locks.Options{}); err == nil {
		t.Fatal("bakery without thread count should error")
	}
}

func TestAllCorrectAlgorithmsUnderOneConfig(t *testing.T) {
	// Every non-broken algorithm passes the same mid-contention check.
	cfg := locktest.DefaultMutexConfig()
	cfg.Iters = 40
	threads := cfg.Nodes * cfg.ThreadsPerNode
	for _, name := range locks.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			if name == "filter" || name == "bakery" {
				// O(n) algorithms get a smaller dose elsewhere.
				t.Skip("covered by dedicated smaller tests")
			}
			prov, err := locks.ByName(name, locks.Options{Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			locktest.CheckMutualExclusion(t, prov, cfg)
		})
	}
}
