// Package locks implements the competitor lock algorithms of the paper's
// evaluation (Section 6) plus the related-work baselines of Section 7 and
// the ablations called out in DESIGN.md.
//
// The two competitors — the RDMA spinlock and the RDMA MCS queue lock —
// deliberately use RDMA operations for ALL of their accesses, regardless of
// locality: "while ALock only performs RDMA operations on remote memory,
// the competitors use the local RDMA loopback card to perform RDMA
// operations on local memory" (Section 6). That is both the historically
// accurate design (it is the only way to keep RMWs on the lock word
// mutually atomic without ALock's cohort discipline, Table 1) and the
// source of the loopback congestion ALock eliminates.
package locks

import (
	"alock/internal/api"
	"alock/internal/ptr"
)

// SpinLockWords is the allocation size of a spinlock: one cache line
// (only word 0 is used; the padding prevents false sharing, Section 6).
const SpinLockWords = 8

// SpinHandle is the paper's first competitor: a lock acquired by repeating
// RDMA rCAS until it succeeds (Section 6). Every operation is a verb, so a
// contended spinlock remote-spins straight into the RNIC — the congestion
// shown in Figures 1 and 5.
type SpinHandle struct {
	ctx api.Ctx
	tag uint64 // this thread's non-zero owner tag
}

var _ api.Locker = (*SpinHandle)(nil)

// NewSpinHandle returns a per-thread spinlock handle.
func NewSpinHandle(ctx api.Ctx) *SpinHandle {
	return &SpinHandle{ctx: ctx, tag: uint64(ctx.ThreadID()) + 1}
}

// Lock repeats rCAS(word, 0, tag) until it succeeds. There is no back-off:
// the paper's spinlock "simply repeats RDMA rCAS until it succeeds", with
// each retry paced only by the verb's own round-trip time.
func (h *SpinHandle) Lock(l ptr.Ptr) {
	h.AcquireTimedWord(l, 0)
}

// AcquireTimedWord is Lock with a deadline (0 = block): the poll is bounded
// by engine time, and a failed rCAS holds nothing, so giving up needs no
// retraction — the single-word lock's trivial timeout path.
func (h *SpinHandle) AcquireTimedWord(l ptr.Ptr, deadlineNS int64) bool {
	for h.ctx.RCAS(l, 0, h.tag) != 0 {
		if deadlineNS > 0 && h.ctx.Now() >= deadlineNS {
			return false
		}
	}
	h.ctx.Fence()
	return true
}

// Unlock releases with a single rWrite of zero.
func (h *SpinHandle) Unlock(l ptr.Ptr) {
	h.ctx.Fence()
	h.ctx.RWrite(l, 0)
}
