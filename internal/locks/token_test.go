package locks_test

import (
	"testing"
	"time"

	"alock/internal/api"
	"alock/internal/locks"
	"alock/internal/locktest"
	"alock/internal/model"
	"alock/internal/ptr"
	"alock/internal/sim"
)

// providerFor builds a registered algorithm with the given protocol mode.
func providerFor(t *testing.T, name string, timed bool, threads int) locks.Provider {
	t.Helper()
	p, err := locks.ByName(name, locks.Options{Threads: threads, Timed: timed})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// timedAlgos have a native timed acquire path.
var timedAlgos = []string{"spinlock", "mcs", "alock", "rw-budget", "rw-wpref", "rw-queue"}

// queuedAlgos park waiters on queue descriptors (abandonment + patching).
var queuedAlgos = []string{"mcs", "alock", "rw-queue"}

// overlapConfigFor shrinks the overlap check for the O(threads)-per-op
// related-work baselines.
func overlapConfigFor(name string) locktest.OverlapConfig {
	cfg := locktest.DefaultOverlapConfig()
	if name == "filter" || name == "bakery" {
		cfg.Nodes = 2
		cfg.ThreadsPerNode = 2
		cfg.Iters = 10
	}
	return cfg
}

// TestOverlappingHoldsAllAlgorithms proves descriptor-per-acquisition
// correctness for every registered algorithm: hold two locks at once,
// release in both orders, under contention with Table 1 tearing on.
func TestOverlappingHoldsAllAlgorithms(t *testing.T) {
	for _, name := range locks.Names() {
		t.Run(name, func(t *testing.T) {
			cfg := overlapConfigFor(name)
			prov := providerFor(t, name, false, cfg.Nodes*cfg.ThreadsPerNode)
			locktest.CheckOverlappingHolds(t, prov, cfg)
		})
	}
}

// TestOverlappingHoldsTimedProtocol repeats the overlap check with the
// queued algorithms speaking the timed (claim/abandon) handoff protocol.
func TestOverlappingHoldsTimedProtocol(t *testing.T) {
	for _, name := range queuedAlgos {
		t.Run(name, func(t *testing.T) {
			cfg := overlapConfigFor(name)
			prov := providerFor(t, name, true, cfg.Nodes*cfg.ThreadsPerNode)
			locktest.CheckOverlappingHolds(t, prov, cfg)
		})
	}
}

// TestMutualExclusionUnderTokenAPI runs the classic serialization check
// for every registered algorithm with all acquisitions routed through the
// acquisition-token layer.
func TestMutualExclusionUnderTokenAPI(t *testing.T) {
	for _, name := range locks.Names() {
		t.Run(name, func(t *testing.T) {
			cfg := locktest.DefaultMutexConfig()
			cfg.TokenAPI = true
			if name == "filter" || name == "bakery" {
				cfg.Nodes = 2
				cfg.ThreadsPerNode = 2
				cfg.Locks = 1
				cfg.Iters = 25
			}
			prov := providerFor(t, name, false, cfg.Nodes*cfg.ThreadsPerNode)
			locktest.CheckMutualExclusion(t, prov, cfg)
		})
	}
}

// TestMutualExclusionTimedProtocol repeats the serialization check with
// the timed handoff protocol active (no deadlines in play: the protocol
// itself must not cost correctness).
func TestMutualExclusionTimedProtocol(t *testing.T) {
	for _, name := range queuedAlgos {
		t.Run(name, func(t *testing.T) {
			cfg := locktest.DefaultMutexConfig()
			cfg.TokenAPI = true
			prov := providerFor(t, name, true, cfg.Nodes*cfg.ThreadsPerNode)
			locktest.CheckMutualExclusion(t, prov, cfg)
		})
	}
}

// TestTimeoutOutcomeAndDeadGuard: a waiter behind a long hold gives up at
// its deadline with the distinct TimedOut outcome, its dead guard's
// release is fenced, and the lock still works afterwards. The holder and
// waiter share a node so even ALock's cohort queue has a real (non-leader)
// waiter that can abandon.
func TestTimeoutOutcomeAndDeadGuard(t *testing.T) {
	for _, name := range timedAlgos {
		t.Run(name, func(t *testing.T) {
			e := sim.New(2, 1<<18, model.Uniform(10), 1)
			l := e.Space().AllocLine(0)
			prov := providerFor(t, name, true, 2)
			prov.Prepare(e.Space(), []ptr.Ptr{l})
			ft := locks.NewFenceTable()

			var waiterOut api.Outcome
			var deadRelease api.ReleaseOutcome
			var reacquired bool
			e.Spawn(1, func(ctx api.Ctx) { // holder
				h := locks.TokenHandleFor(prov, ctx, ft)
				g, _ := h.Acquire(l, api.Exclusive, api.AcquireOpts{})
				ctx.Work(80 * time.Microsecond)
				if h.Release(g) != api.Released {
					t.Error("holder's own release fenced")
				}
			})
			e.Spawn(1, func(ctx api.Ctx) { // waiter
				h := locks.TokenHandleFor(prov, ctx, ft)
				ctx.Work(5 * time.Microsecond) // let the holder in first
				g, out := h.Acquire(l, api.Exclusive,
					api.AcquireOpts{DeadlineNS: ctx.Now() + 20_000})
				waiterOut = out
				deadRelease = h.Release(g) // dead guard: must bounce
				g2, out2 := h.Acquire(l, api.Exclusive, api.AcquireOpts{})
				if out2 == api.Acquired {
					reacquired = true
					h.Release(g2)
				}
			})
			e.Run(1 << 40)

			if waiterOut != api.TimedOut {
				t.Errorf("waiter outcome = %v, want TimedOut", waiterOut)
			}
			if deadRelease != api.Fenced {
				t.Errorf("dead guard release = %v, want Fenced", deadRelease)
			}
			if !reacquired {
				t.Error("lock unusable after a timeout")
			}
		})
	}
}

// TestAbandonRecoveryAndFencedLateRelease: an abandoned hold wedges the
// lock only until recovery reclaims it — a blocked waiter then acquires —
// and the crashed holder's late release is rejected by its stale token.
func TestAbandonRecoveryAndFencedLateRelease(t *testing.T) {
	for _, name := range timedAlgos {
		t.Run(name, func(t *testing.T) {
			e := sim.New(2, 1<<18, model.Uniform(10), 1)
			l := e.Space().AllocLine(0)
			prov := providerFor(t, name, true, 2)
			prov.Prepare(e.Space(), []ptr.Ptr{l})
			ft := locks.NewFenceTable()

			const wedge = 30 * time.Microsecond
			var lateRelease api.ReleaseOutcome
			var waiterAt int64
			e.Spawn(1, func(ctx api.Ctx) { // the crasher
				h := locks.TokenHandleFor(prov, ctx, ft)
				g, _ := h.Acquire(l, api.Exclusive, api.AcquireOpts{})
				ctx.Work(wedge)
				h.Abandon(g) // recovery reclaims the lock here
				ctx.Work(10 * time.Microsecond)
				lateRelease = h.Release(g)
			})
			e.Spawn(1, func(ctx api.Ctx) { // a survivor, waiting blocked
				h := locks.TokenHandleFor(prov, ctx, ft)
				ctx.Work(2 * time.Microsecond)
				g, out := h.Acquire(l, api.Exclusive, api.AcquireOpts{})
				if out != api.Acquired {
					t.Error("blocking acquire failed")
					return
				}
				waiterAt = ctx.Now()
				h.Release(g)
			})
			e.Run(1 << 40)

			if lateRelease != api.Fenced {
				t.Errorf("late release after recovery = %v, want Fenced", lateRelease)
			}
			if waiterAt < wedge.Nanoseconds() {
				t.Errorf("waiter acquired at %dns, inside the wedge (< %dns)",
					waiterAt, wedge.Nanoseconds())
			}
		})
	}
}

// TestSuccessorPatchingSkipsAbandonedWaiter: with A holding, B queued with
// a deadline and C queued blocking behind B, B's timeout must not strand
// C — the release path patches the queue around B's abandoned descriptor
// and hands the lock to C. (A stranded C deadlocks the simulation, which
// panics, so completing at all is the assertion; the checks below pin the
// ordering.) Afterwards B reuses its abandoned descriptor for a fresh
// acquisition, exercising the skip-mark reclaim path.
func TestSuccessorPatchingSkipsAbandonedWaiter(t *testing.T) {
	for _, name := range queuedAlgos {
		t.Run(name, func(t *testing.T) {
			e := sim.New(2, 1<<18, model.Uniform(10), 1)
			l := e.Space().AllocLine(0)
			prov := providerFor(t, name, true, 3)
			prov.Prepare(e.Space(), []ptr.Ptr{l})
			ft := locks.NewFenceTable()

			var bOut api.Outcome
			var bReused, cAcquired bool
			var cAt, releaseAt int64
			e.Spawn(1, func(ctx api.Ctx) { // A: holds 40us
				h := locks.TokenHandleFor(prov, ctx, ft)
				g, _ := h.Acquire(l, api.Exclusive, api.AcquireOpts{})
				ctx.Work(40 * time.Microsecond)
				releaseAt = ctx.Now()
				h.Release(g)
			})
			e.Spawn(1, func(ctx api.Ctx) { // B: queues behind A, gives up
				h := locks.TokenHandleFor(prov, ctx, ft)
				ctx.Work(3 * time.Microsecond)
				_, out := h.Acquire(l, api.Exclusive,
					api.AcquireOpts{DeadlineNS: ctx.Now() + 10_000})
				bOut = out
				// Long after the skip mark lands, acquire again: the
				// zombie descriptor must be recycled cleanly.
				ctx.Work(80 * time.Microsecond)
				g2, out2 := h.Acquire(l, api.Exclusive, api.AcquireOpts{})
				if out2 == api.Acquired {
					bReused = true
					h.Release(g2)
				}
			})
			e.Spawn(1, func(ctx api.Ctx) { // C: queues behind B, blocking
				h := locks.TokenHandleFor(prov, ctx, ft)
				ctx.Work(6 * time.Microsecond)
				g, out := h.Acquire(l, api.Exclusive, api.AcquireOpts{})
				if out == api.Acquired {
					cAcquired = true
					cAt = ctx.Now()
					ctx.Work(2 * time.Microsecond)
					h.Release(g)
				}
			})
			e.Run(1 << 40)

			if bOut != api.TimedOut {
				t.Errorf("B outcome = %v, want TimedOut", bOut)
			}
			if !cAcquired {
				t.Error("C never acquired")
			}
			if cAt < releaseAt {
				t.Errorf("C acquired at %dns before A released at %dns", cAt, releaseAt)
			}
			if !bReused {
				t.Error("B could not reuse its abandoned descriptor")
			}
		})
	}
}

// TestFencingTokensMonotonic pins the fencing-token contract: of any two
// grants, the later one carries the strictly larger token.
func TestFencingTokensMonotonic(t *testing.T) {
	e := sim.New(1, 1<<18, model.Uniform(10), 1)
	l := e.Space().AllocLine(0)
	prov := providerFor(t, "spinlock", true, 1)
	prov.Prepare(e.Space(), []ptr.Ptr{l})
	ft := locks.NewFenceTable()
	e.Spawn(0, func(ctx api.Ctx) {
		h := locks.TokenHandleFor(prov, ctx, ft)
		var last uint64
		for i := 0; i < 10; i++ {
			g, _ := h.Acquire(l, api.Exclusive, api.AcquireOpts{})
			if g.Token <= last {
				t.Errorf("grant %d token %d not above predecessor %d", i, g.Token, last)
			}
			last = g.Token
			h.Release(g)
		}
		// Double release: the second must fence.
		g, _ := h.Acquire(l, api.Exclusive, api.AcquireOpts{})
		if h.Release(g) != api.Released || h.Release(g) != api.Fenced {
			t.Error("double release not fenced")
		}
	})
	e.Run(1 << 40)
}

// TestSharedTimeoutOnRWLocks exercises the shared-mode timed path: readers
// blocked out by a writer give up at their deadline and retract their
// registration (the lock stays healthy for later acquires).
func TestSharedTimeoutOnRWLocks(t *testing.T) {
	for _, name := range []string{"rw-budget", "rw-wpref", "rw-queue"} {
		t.Run(name, func(t *testing.T) {
			e := sim.New(2, 1<<18, model.Uniform(10), 1)
			l := e.Space().AllocLine(0)
			prov := providerFor(t, name, true, 2)
			prov.Prepare(e.Space(), []ptr.Ptr{l})
			ft := locks.NewFenceTable()

			var out api.Outcome
			var readersAfter bool
			e.Spawn(1, func(ctx api.Ctx) { // writer holds 60us
				h := locks.TokenHandleFor(prov, ctx, ft)
				g, _ := h.Acquire(l, api.Exclusive, api.AcquireOpts{})
				ctx.Work(60 * time.Microsecond)
				h.Release(g)
			})
			e.Spawn(1, func(ctx api.Ctx) { // reader times out, then re-reads
				h := locks.TokenHandleFor(prov, ctx, ft)
				ctx.Work(5 * time.Microsecond)
				_, o := h.Acquire(l, api.Shared, api.AcquireOpts{DeadlineNS: ctx.Now() + 15_000})
				out = o
				g, o2 := h.Acquire(l, api.Shared, api.AcquireOpts{})
				if o2 == api.Acquired {
					readersAfter = true
					h.Release(g)
				}
			})
			e.Run(1 << 40)
			if out != api.TimedOut {
				t.Errorf("reader outcome = %v, want TimedOut", out)
			}
			if !readersAfter {
				t.Error("shared mode dead after a reader timeout")
			}
		})
	}
}
