// token.go is the acquisition-token layer: it turns the per-algorithm
// timed acquire/release primitives into the api.TokenLocker contract —
// explicit outcomes, per-acquisition descriptors threaded through Guards,
// and fencing tokens minted at grant time and validated at release.
//
// The fencing authority (FenceTable) is deliberately *outside* simulated
// memory: it models the lock service's grant log, the thing a real system
// keeps in its lease manager or its storage heads, not in the lock word.
// It costs no simulated operations, so routing a workload through the
// token layer leaves feature-off schedules bit-identical to the blocking
// Lock/Unlock paths.
package locks

import (
	"sync"

	"alock/internal/api"
	"alock/internal/core"
	"alock/internal/ptr"
)

// FenceTable mints and validates fencing tokens for one experiment run.
// Tokens are monotonically increasing across the whole cluster: of any two
// grants, the later one carries the larger token, so downstream systems
// can reject writes guarded by a superseded grant — the classic
// fencing-token contract. A token is live from grant until its first
// retire; a second retire (double release, a timed-out guard, the late
// release of an abandoned hold) reports false and must not touch the lock.
//
// Safe for concurrent use (the real-goroutine engine shares one table);
// under the deterministic simulator the mutex is uncontended and the grant
// order — hence every token value — is part of the reproducible schedule.
type FenceTable struct {
	mu   sync.Mutex
	next uint64
	live map[uint64]map[uint64]struct{} // lock word -> live token set
}

// NewFenceTable returns an empty fencing authority.
func NewFenceTable() *FenceTable {
	return &FenceTable{live: make(map[uint64]map[uint64]struct{})}
}

// Grant mints the next fencing token for a grant on l.
func (t *FenceTable) Grant(l ptr.Ptr) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	set := t.live[l.Word()]
	if set == nil {
		set = make(map[uint64]struct{})
		t.live[l.Word()] = set
	}
	set[t.next] = struct{}{}
	return t.next
}

// Retire ends the token's life. It reports whether the token was live —
// false means the release it guards must be fenced off.
func (t *FenceTable) Retire(l ptr.Ptr, token uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	set := t.live[l.Word()]
	if _, ok := set[token]; !ok {
		return false
	}
	delete(set, token)
	return true
}

// TimedHandle is the per-thread algorithm contract the token layer builds
// on: a mode-aware acquire bounded by an engine-time deadline (0 = block)
// returning opaque per-acquisition state, and the matching release.
// Algorithms without native shared mode treat Shared as Exclusive;
// algorithms without a native timed path may overshoot the deadline and
// still acquire.
type TimedHandle interface {
	AcquireTimed(l ptr.Ptr, mode api.Mode, deadlineNS int64) (state any, acquired bool)
	ReleaseAcq(l ptr.Ptr, mode api.Mode, state any)
}

// TimedProvider is implemented by providers whose algorithm has a native
// timed acquire path (bounded poll + CAS retraction for the single-word
// locks, descriptor abandonment + successor patching for the queued ones).
type TimedProvider interface {
	Provider
	NewTimedHandle(ctx api.Ctx) TimedHandle
}

// AbortableTimedProvider marks TimedProviders whose exclusive-mode timed
// acquires can ALWAYS abandon before grant: no waiter state is committed
// while the grant still depends on another holder's release. This is the
// capability the unordered transaction policies (timeout-backoff,
// wait-die) require — inside a deadlock cycle every participant must be
// able to time out, or the cycle never breaks. The spinlock and the
// single-word RW locks qualify (bounded poll + CAS retraction of the wait
// registration), as do mcs and rw-queue (the abandon CAS loses only to a
// grant already in flight from a releasing holder). ALock does NOT: a
// cohort leader is committed while the lock's current holder still holds,
// so two leaders in an AB-BA cycle overshoot their deadlines forever.
type AbortableTimedProvider interface {
	TimedProvider
	// AbortableTimed is a marker method; implementations are empty.
	AbortableTimed()
}

// ZombieCounter is implemented by handles (and their TimedHandle adapters)
// whose algorithm parks abandoned descriptors on a zombie list until the
// granter's skip mark lands. Zombies reports how many are still parked —
// after a drain (every skip mark landed, then one release-side sweep) it
// must be zero, or the pool leaks descriptors from threads that stop
// acquiring.
type ZombieCounter interface {
	Zombies() int
}

// tokenHandle implements api.TokenLocker over a TimedHandle and the run's
// fencing authority.
type tokenHandle struct {
	ft  *FenceTable
	ctx api.Ctx
	alg TimedHandle
}

var _ api.TokenLocker = (*tokenHandle)(nil)

func (h *tokenHandle) Acquire(l ptr.Ptr, mode api.Mode, opt api.AcquireOpts) (api.Guard, api.Outcome) {
	st, ok := h.alg.AcquireTimed(l, mode, opt.DeadlineNS)
	if !ok {
		return api.Guard{}, api.TimedOut
	}
	out := api.Acquired
	if opt.DeadlineNS > 0 && h.ctx.Now() > opt.DeadlineNS {
		// The grant landed past the deadline: the blocking fallback
		// (filter, bakery) blocked straight through it, or a committed
		// waiter's grant won the timeout race late. Report the overshoot
		// instead of pretending the deadline was honored.
		out = api.AcquiredLate
	}
	return api.Guard{Lock: l, Mode: mode, Token: h.ft.Grant(l), State: st}, out
}

func (h *tokenHandle) Release(g api.Guard) api.ReleaseOutcome {
	if !h.ft.Retire(g.Lock, g.Token) {
		return api.Fenced // stale guard: leave the lock alone
	}
	h.alg.ReleaseAcq(g.Lock, g.Mode, g.State)
	return api.Released
}

func (h *tokenHandle) Abandon(g api.Guard) {
	if h.ft.Retire(g.Lock, g.Token) {
		// Recovery physically reclaims the crashed holder's lock; the
		// retired token fences the holder's own late Release off.
		h.alg.ReleaseAcq(g.Lock, g.Mode, g.State)
	}
}

// TokenHandleFor returns a token-API handle for any provider: the native
// timed handle when the algorithm has one, otherwise the blocking fallback
// (deadlines overshoot — the acquire blocks until granted and reports
// AcquiredLate — but fencing-token semantics hold in full).
func TokenHandleFor(p Provider, ctx api.Ctx, ft *FenceTable) api.TokenLocker {
	if tp, ok := p.(TimedProvider); ok {
		return &tokenHandle{ft: ft, ctx: ctx, alg: tp.NewTimedHandle(ctx)}
	}
	return &tokenHandle{ft: ft, ctx: ctx, alg: blockingTimed{rw: RWHandleFor(p, ctx)}}
}

// --- TimedHandle adapters, one per algorithm family ---

// spinTimed: the RDMA spinlock — bounded poll, no retraction needed.
type spinTimed struct{ h *SpinHandle }

func (a spinTimed) AcquireTimed(l ptr.Ptr, _ api.Mode, deadlineNS int64) (any, bool) {
	return nil, a.h.AcquireTimedWord(l, deadlineNS) // shared degrades to exclusive
}

func (a spinTimed) ReleaseAcq(l ptr.Ptr, _ api.Mode, _ any) { a.h.Unlock(l) }

// mcsTimed: the RDMA MCS lock — per-acquisition descriptor as state.
type mcsTimed struct{ h *MCSHandle }

func (a mcsTimed) AcquireTimed(l ptr.Ptr, _ api.Mode, deadlineNS int64) (any, bool) {
	d, ok := a.h.AcquireTimedDesc(l, deadlineNS)
	if !ok {
		return nil, false
	}
	return d, true
}

func (a mcsTimed) ReleaseAcq(l ptr.Ptr, _ api.Mode, st any) {
	a.h.ReleaseDesc(l, st.(ptr.Ptr))
}

// Zombies implements ZombieCounter.
func (a mcsTimed) Zombies() int { return a.h.Zombies() }

// alockTimed: the paper's ALock — per-acquisition cohort descriptor.
type alockTimed struct{ h *core.Handle }

func (a alockTimed) AcquireTimed(l ptr.Ptr, _ api.Mode, deadlineNS int64) (any, bool) {
	d, ok := a.h.AcquireTimed(l, deadlineNS)
	if !ok {
		return nil, false
	}
	return d, true
}

func (a alockTimed) ReleaseAcq(l ptr.Ptr, _ api.Mode, st any) {
	a.h.ReleaseDesc(l, st.(ptr.Ptr))
}

// Zombies implements ZombieCounter.
func (a alockTimed) Zombies() int { return a.h.Zombies() }

// rwTimed: the single-word reader/writer locks — the exclusive side's
// installed state word as state, nothing for the shared side.
type rwTimed struct{ h *RWHandle }

func (a rwTimed) AcquireTimed(l ptr.Ptr, mode api.Mode, deadlineNS int64) (any, bool) {
	if mode == api.Shared {
		return nil, a.h.AcquireSharedTimed(l, deadlineNS)
	}
	held, ok := a.h.AcquireExclTimed(l, deadlineNS)
	if !ok {
		return nil, false
	}
	return held, true
}

func (a rwTimed) ReleaseAcq(l ptr.Ptr, mode api.Mode, st any) {
	if mode == api.Shared {
		a.h.RUnlock(l)
		return
	}
	a.h.ReleaseExcl(l, st.(uint64))
}

// rwqTimed: the queued reader/writer lock — the full acquisition record.
type rwqTimed struct{ h *RWQueueHandle }

func (a rwqTimed) AcquireTimed(l ptr.Ptr, mode api.Mode, deadlineNS int64) (any, bool) {
	var acq *rwqAcq
	var ok bool
	if mode == api.Shared {
		acq, ok = a.h.acquireShared(l, deadlineNS)
	} else {
		acq, ok = a.h.acquireExcl(l, deadlineNS)
	}
	if !ok {
		return nil, false
	}
	return acq, true
}

func (a rwqTimed) ReleaseAcq(l ptr.Ptr, mode api.Mode, st any) {
	if mode == api.Shared {
		a.h.releaseShared(l, st.(*rwqAcq))
		return
	}
	a.h.releaseExcl(l, st.(*rwqAcq))
}

// Zombies implements ZombieCounter.
func (a rwqTimed) Zombies() int { return a.h.Zombies() }

// blockingTimed is the fallback for algorithms without a native timed path
// (filter, bakery): acquires block past any deadline and always succeed.
type blockingTimed struct{ rw api.RWLocker }

func (a blockingTimed) AcquireTimed(l ptr.Ptr, mode api.Mode, _ int64) (any, bool) {
	if mode == api.Shared {
		a.rw.RLock(l)
	} else {
		a.rw.Lock(l)
	}
	return nil, true
}

func (a blockingTimed) ReleaseAcq(l ptr.Ptr, mode api.Mode, _ any) {
	if mode == api.Shared {
		a.rw.RUnlock(l)
		return
	}
	a.rw.Unlock(l)
}
