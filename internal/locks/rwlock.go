// rwlock.go implements the repository's two reader/writer locks — the
// shared/exclusive operation axis the RW workloads sweep (extension beyond
// the paper, whose evaluation is exclusive-only).
//
// Both locks keep their entire state in one 8-byte word of the lock's
// cache line and mutate it exclusively with RDMA rCAS, from every node:
// remote RMWs serialize at the responder NIC, so the state word never
// mixes RMW classes (the Table 1 discipline that makes ALock subtle does
// not arise). The ALock-inspired asymmetry survives in the polling path:
// cross-class 8-byte reads are atomic with everything, so threads on the
// lock's home node spin with shared-memory reads — the expensive part of
// waiting costs them nothing — while remote threads poll through verbs.
//
//   - rw-budget adapts ALock's budget scheme to reader/writer cohorts:
//     while the opposite class is waiting, at most ReadBudget consecutive
//     readers (resp. WriteBudget writers) are admitted before the lock
//     flips phase and yields, the same bounded-passing idea that makes
//     ALock fair across its local/remote cohorts (Section 6.1).
//   - rw-wpref is the classic writer-preference baseline: any registered
//     writer blocks new readers outright, so a steady writer stream can
//     starve readers — the behavior the budget variant is measured against.
package locks

import (
	"fmt"

	"alock/internal/api"
	"alock/internal/mem"
	"alock/internal/ptr"
)

// RWLockWords is the allocation size of a reader/writer lock: one cache
// line (only word 0 is used; padding prevents false sharing).
const RWLockWords = 8

// State-word layout. All fields are mutated together under one rCAS.
const (
	rwRdActiveShift = 0  // bits 0..15: readers inside the lock
	rwWrActiveBit   = 16 // bit 16: a writer inside the lock
	rwWrWaitShift   = 17 // bits 17..32: registered waiting writers
	rwRdWaitShift   = 33 // bits 33..48: registered waiting readers
	rwGrantsShift   = 49 // bits 49..56: same-class grants this phase
	rwPhaseBit      = 57 // bit 57: 0 = reader phase, 1 = writer phase

	rwFieldMask  = 0xffff
	rwGrantsMask = 0xff
)

func rwRdActive(s uint64) uint64 { return (s >> rwRdActiveShift) & rwFieldMask }
func rwWrActive(s uint64) bool   { return s&(1<<rwWrActiveBit) != 0 }
func rwWrWait(s uint64) uint64   { return (s >> rwWrWaitShift) & rwFieldMask }
func rwRdWait(s uint64) uint64   { return (s >> rwRdWaitShift) & rwFieldMask }
func rwGrants(s uint64) uint64   { return (s >> rwGrantsShift) & rwGrantsMask }
func rwWritePhase(s uint64) bool { return s&(1<<rwPhaseBit) != 0 }

// RWConfig selects the per-phase budgets of the rw-budget lock.
type RWConfig struct {
	// ReadBudget bounds consecutive reader admissions while a writer waits.
	ReadBudget int64
	// WriteBudget bounds consecutive writer admissions while a reader
	// waits. Kept lower than ReadBudget because a write phase serializes
	// the whole lock while a read phase still admits concurrency.
	WriteBudget int64
}

// DefaultRWConfig mirrors the spirit of ALock's asymmetric 5/20 budgets:
// generous to the concurrency-preserving class, tight on the serializing
// one.
func DefaultRWConfig() RWConfig { return RWConfig{ReadBudget: 16, WriteBudget: 4} }

// Validate rejects budgets the grants field cannot count.
func (c RWConfig) Validate() error {
	if c.ReadBudget <= 0 || c.WriteBudget <= 0 {
		return fmt.Errorf("locks: RW budgets must be positive (got read=%d write=%d)",
			c.ReadBudget, c.WriteBudget)
	}
	if c.ReadBudget > rwGrantsMask || c.WriteBudget > rwGrantsMask {
		return fmt.Errorf("locks: RW budgets must fit in %d (got read=%d write=%d)",
			rwGrantsMask, c.ReadBudget, c.WriteBudget)
	}
	return nil
}

// RWHandle is one thread's handle onto either reader/writer lock; budgeted
// selects the rw-budget policy, otherwise writer preference.
type RWHandle struct {
	ctx      api.Ctx
	budgeted bool
	cfg      RWConfig
	// held is the state word this handle installed by its last exclusive
	// acquire — the optimistic expected value for Unlock's first rCAS. A
	// stale value only costs one failed CAS (the retry loop reseeds from
	// the returned previous value), never correctness.
	held uint64
}

var _ api.RWLocker = (*RWHandle)(nil)

// NewRWBudgetHandle returns a per-thread handle of the budgeted
// phase-fair lock.
func NewRWBudgetHandle(ctx api.Ctx, cfg RWConfig) *RWHandle {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &RWHandle{ctx: ctx, budgeted: true, cfg: cfg}
}

// NewRWPrefHandle returns a per-thread handle of the writer-preference
// baseline.
func NewRWPrefHandle(ctx api.Ctx) *RWHandle {
	return &RWHandle{ctx: ctx}
}

// poll reads the state word with the cheapest atomic class available:
// shared-memory on the lock's home node, a verb elsewhere (Table 1 makes
// the cross-class read safe against concurrent rCAS mutators).
func (h *RWHandle) poll(l ptr.Ptr) uint64 {
	if l.NodeID() == h.ctx.NodeID() {
		return h.ctx.Read(l)
	}
	return h.ctx.RRead(l)
}

// readerEligible reports whether a reader may enter under state s.
func (h *RWHandle) readerEligible(s uint64) bool {
	if rwWrActive(s) {
		return false
	}
	if rwWrWait(s) == 0 {
		return true
	}
	// Writers are waiting: writer preference blocks outright; the budget
	// policy admits readers only during the reader phase.
	return h.budgeted && !rwWritePhase(s)
}

// readerEnter computes the successor state of a reader admission.
func (h *RWHandle) readerEnter(s uint64, registered bool) uint64 {
	ns := s + (1 << rwRdActiveShift)
	if registered {
		ns -= 1 << rwRdWaitShift
	}
	if !h.budgeted {
		return ns
	}
	if rwWrWait(s) > 0 {
		// A writer is waiting: this admission consumes reader budget
		// (ALock's pass counting, adapted to the reader cohort).
		g := rwGrants(s) + 1
		ns &^= uint64(rwGrantsMask) << rwGrantsShift
		if g >= uint64(h.cfg.ReadBudget) {
			ns |= 1 << rwPhaseBit // budget spent: yield the phase to writers
		} else {
			ns |= g << rwGrantsShift
		}
	} else {
		// Uncontended admission: the contention episode is over, so the
		// count must not carry into the next one (a stale count would
		// flip the next phase after far fewer admissions than budgeted).
		ns &^= uint64(rwGrantsMask) << rwGrantsShift
	}
	return ns
}

// writerEligible reports whether a writer may enter under state s.
func (h *RWHandle) writerEligible(s uint64) bool {
	if rwRdActive(s) != 0 || rwWrActive(s) {
		return false
	}
	if !h.budgeted {
		return true // writer preference: waiting readers never bar a writer
	}
	return rwRdWait(s) == 0 || rwWritePhase(s)
}

// writerEnter computes the successor state of a writer admission (the
// writer is always registered in wrWait at this point).
func (h *RWHandle) writerEnter(s uint64) uint64 {
	ns := (s - (1 << rwWrWaitShift)) | 1<<rwWrActiveBit
	if !h.budgeted {
		return ns
	}
	if rwRdWait(s) > 0 {
		g := rwGrants(s) + 1
		ns &^= uint64(rwGrantsMask) << rwGrantsShift
		if g >= uint64(h.cfg.WriteBudget) {
			ns &^= uint64(1) << rwPhaseBit // yield the phase back to readers
		} else {
			ns |= g << rwGrantsShift
		}
	} else {
		ns &^= uint64(rwGrantsMask) << rwGrantsShift // end of episode: no carryover
	}
	return ns
}

// The acquire/release paths are verb-frugal: every failed rCAS returns
// the word's current value, which seeds the next attempt, so the common
// paths never pay a separate read round trip — an uncontended acquire or
// release is exactly one verb. Fresh polls (cheap shared-memory reads on
// the home node) happen only between Pause back-offs while waiting.

// RLock implements api.RWLocker: shared acquire.
func (h *RWHandle) RLock(l ptr.Ptr) { h.AcquireSharedTimed(l, 0) }

// AcquireSharedTimed is RLock with a deadline (0 = block). The single-word
// timeout path is a bounded poll followed by a CAS retraction: a waiter
// that registered in rdWait takes itself back out before giving up, so
// writer admissions stop consuming budget on behalf of a goner.
func (h *RWHandle) AcquireSharedTimed(l ptr.Ptr, deadlineNS int64) bool {
	// Optimistic: a pristine idle lock is entered with a single rCAS.
	s := h.ctx.RCAS(l, 0, h.readerEnter(0, false))
	if s == 0 {
		h.ctx.Fence()
		return true
	}
	registered := false
	iter := 0
	for {
		if h.readerEligible(s) {
			prev := h.ctx.RCAS(l, s, h.readerEnter(s, registered))
			if prev == s {
				h.ctx.Fence()
				return true
			}
			s = prev
			continue
		}
		if deadlineNS > 0 && h.ctx.Now() >= deadlineNS {
			for registered {
				prev := h.ctx.RCAS(l, s, s-(1<<rwRdWaitShift))
				if prev == s {
					registered = false
				} else {
					s = prev
				}
			}
			return false
		}
		if h.budgeted && !registered {
			// Register as a waiting reader so writer admissions consume
			// write budget on our behalf.
			prev := h.ctx.RCAS(l, s, s+(1<<rwRdWaitShift))
			if prev == s {
				registered = true
				s += 1 << rwRdWaitShift
			} else {
				s = prev
			}
			continue
		}
		h.ctx.Pause(iter)
		iter++
		s = h.poll(l)
	}
}

// RUnlock implements api.RWLocker: shared release.
func (h *RWHandle) RUnlock(l ptr.Ptr) {
	h.ctx.Fence()
	s := h.poll(l)
	for {
		prev := h.ctx.RCAS(l, s, s-(1<<rwRdActiveShift))
		if prev == s {
			return
		}
		s = prev
	}
}

// Lock implements api.Locker: exclusive (write) acquire.
func (h *RWHandle) Lock(l ptr.Ptr) { h.AcquireExclTimed(l, 0) }

// AcquireExclTimed is Lock with a deadline (0 = block). On success the
// returned word is the state the acquire installed — the optimistic seed
// its matching release should use. On timeout the registration in wrWait
// is retracted by CAS and nothing is held.
func (h *RWHandle) AcquireExclTimed(l ptr.Ptr, deadlineNS int64) (uint64, bool) {
	// Optimistic: a pristine idle lock is claimed with a single rCAS,
	// skipping the registration round trip the slow path pays.
	s := h.ctx.RCAS(l, 0, uint64(1)<<rwWrActiveBit)
	if s == 0 {
		h.held = 1 << rwWrActiveBit
		h.ctx.Fence()
		return h.held, true
	}
	// Idle but with residual phase/grants bits: still a single-CAS claim.
	if rwRdActive(s) == 0 && !rwWrActive(s) && rwWrWait(s) == 0 && rwRdWait(s) == 0 {
		ns := s | 1<<rwWrActiveBit
		if h.budgeted {
			ns &^= uint64(rwGrantsMask) << rwGrantsShift // end of episode
		}
		if prev := h.ctx.RCAS(l, s, ns); prev == s {
			h.held = ns
			h.ctx.Fence()
			return h.held, true
		}
	}
	// Register first — registration doubles as the "writer interested"
	// flag readers consult, like a Peterson flag. s already holds the
	// last observed word from the optimistic attempts above.
	for {
		prev := h.ctx.RCAS(l, s, s+(1<<rwWrWaitShift))
		if prev == s {
			s += 1 << rwWrWaitShift
			break
		}
		s = prev
	}
	iter := 0
	for {
		if h.writerEligible(s) {
			ns := h.writerEnter(s)
			prev := h.ctx.RCAS(l, s, ns)
			if prev == s {
				h.held = ns
				h.ctx.Fence()
				return h.held, true
			}
			s = prev
			continue
		}
		if deadlineNS > 0 && h.ctx.Now() >= deadlineNS {
			for {
				prev := h.ctx.RCAS(l, s, s-(1<<rwWrWaitShift))
				if prev == s {
					return 0, false
				}
				s = prev
			}
		}
		h.ctx.Pause(iter)
		iter++
		s = h.poll(l)
	}
}

// Unlock implements api.Locker: exclusive release.
func (h *RWHandle) Unlock(l ptr.Ptr) { h.ReleaseExcl(l, h.held) }

// ReleaseExcl releases an exclusive acquisition, seeded with the state
// word that acquisition installed (per-acquisition state, so overlapping
// exclusive holds of different locks release correctly).
func (h *RWHandle) ReleaseExcl(l ptr.Ptr, held uint64) {
	h.ctx.Fence()
	s := held // expected state from the acquire: usually still exact
	for {
		prev := h.ctx.RCAS(l, s, s&^(uint64(1)<<rwWrActiveBit))
		if prev == s {
			return
		}
		s = prev
	}
}

// RWBudgetProvider supplies the budgeted phase-fair reader/writer lock.
type RWBudgetProvider struct {
	Cfg RWConfig
}

// NewRWBudgetProvider returns a provider with the default budgets.
func NewRWBudgetProvider() *RWBudgetProvider {
	return &RWBudgetProvider{Cfg: DefaultRWConfig()}
}

// Name implements Provider.
func (*RWBudgetProvider) Name() string { return "rw-budget" }

// Prepare implements Provider (state is fully contained in the lock line).
func (*RWBudgetProvider) Prepare(*mem.Space, []ptr.Ptr) {}

// NewHandle implements Provider.
func (p *RWBudgetProvider) NewHandle(ctx api.Ctx) api.Locker {
	return p.NewRWHandle(ctx)
}

// NewRWHandle implements RWProvider.
func (p *RWBudgetProvider) NewRWHandle(ctx api.Ctx) api.RWLocker {
	return NewRWBudgetHandle(ctx, p.Cfg)
}

// NewTimedHandle implements TimedProvider.
func (p *RWBudgetProvider) NewTimedHandle(ctx api.Ctx) TimedHandle {
	return rwTimed{h: NewRWBudgetHandle(ctx, p.Cfg)}
}

// AbortableTimed implements AbortableTimedProvider: single-word waiters
// retract their wait registration with one CAS on timeout.
func (*RWBudgetProvider) AbortableTimed() {}

// RWPrefProvider supplies the writer-preference baseline.
type RWPrefProvider struct{}

// Name implements Provider.
func (RWPrefProvider) Name() string { return "rw-wpref" }

// Prepare implements Provider.
func (RWPrefProvider) Prepare(*mem.Space, []ptr.Ptr) {}

// NewHandle implements Provider.
func (p RWPrefProvider) NewHandle(ctx api.Ctx) api.Locker { return p.NewRWHandle(ctx) }

// NewRWHandle implements RWProvider.
func (RWPrefProvider) NewRWHandle(ctx api.Ctx) api.RWLocker { return NewRWPrefHandle(ctx) }

// NewTimedHandle implements TimedProvider.
func (RWPrefProvider) NewTimedHandle(ctx api.Ctx) TimedHandle {
	return rwTimed{h: NewRWPrefHandle(ctx)}
}

// AbortableTimed implements AbortableTimedProvider: single-word waiters
// retract their wait registration with one CAS on timeout.
func (RWPrefProvider) AbortableTimed() {}
