package locks

import (
	"fmt"
	"sync"

	"alock/internal/api"
	"alock/internal/mem"
	"alock/internal/ptr"
)

// FilterProvider implements the filter lock — Peterson's n-thread
// generalization — over RDMA, as the related-work baseline of Section 7:
// "this would require both remote spinning and a number of remote
// operations proportional to the number of threads that might contend for
// the lock, even if a thread executes in isolation." It exists to
// demonstrate that claim, not to win anything.
//
// Per lock, the filter needs level[n] and victim[n] words, allocated on the
// lock's home node at Prepare time. All accesses are RDMA verbs.
type FilterProvider struct {
	nThreads int

	mu    sync.Mutex
	state map[ptr.Ptr]filterState
}

type filterState struct {
	level  ptr.Ptr // n contiguous words
	victim ptr.Ptr // n contiguous words (index 0 unused)
}

// NewFilterProvider creates a provider for a cluster with nThreads total
// threads (thread IDs must be dense in [0, nThreads)).
func NewFilterProvider(nThreads int) *FilterProvider {
	if nThreads < 1 {
		panic("locks: filter lock needs at least one thread")
	}
	return &FilterProvider{nThreads: nThreads, state: make(map[ptr.Ptr]filterState)}
}

// Name implements Provider.
func (p *FilterProvider) Name() string { return "filter" }

// Prepare allocates each lock's level/victim arrays on the lock's home node.
func (p *FilterProvider) Prepare(space *mem.Space, locks []ptr.Ptr) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, l := range locks {
		if _, ok := p.state[l]; ok {
			continue
		}
		node := l.NodeID()
		p.state[l] = filterState{
			level:  space.Alloc(node, p.nThreads, mem.WordsPerCacheLine),
			victim: space.Alloc(node, p.nThreads, mem.WordsPerCacheLine),
		}
	}
}

// NewHandle implements Provider.
func (p *FilterProvider) NewHandle(ctx api.Ctx) api.Locker {
	if ctx.ThreadID() >= p.nThreads {
		panic(fmt.Sprintf("locks: thread %d >= filter capacity %d", ctx.ThreadID(), p.nThreads))
	}
	return &filterHandle{p: p, ctx: ctx}
}

func (p *FilterProvider) lookup(l ptr.Ptr) filterState {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[l]
	if !ok {
		panic(fmt.Sprintf("locks: filter lock %v was not Prepared", l))
	}
	return st
}

type filterHandle struct {
	p   *FilterProvider
	ctx api.Ctx
}

var _ api.Locker = (*filterHandle)(nil)

func (h *filterHandle) Lock(l ptr.Ptr) {
	st := h.p.lookup(l)
	ctx := h.ctx
	me := uint64(ctx.ThreadID())
	n := h.p.nThreads

	for lvl := 1; lvl < n; lvl++ {
		ctx.RWrite(st.level.Add(me), uint64(lvl))
		ctx.RWrite(st.victim.Add(uint64(lvl)), me)
		// Wait while some other thread is at an equal-or-higher level and
		// we are the victim of this level. Every re-check is a sweep of
		// remote reads — the O(n) remote spinning of Section 7.
		for {
			conflict := false
			for k := 0; k < n; k++ {
				if uint64(k) == me {
					continue
				}
				if ctx.RRead(st.level.Add(uint64(k))) >= uint64(lvl) {
					conflict = true
					break
				}
			}
			if !conflict || ctx.RRead(st.victim.Add(uint64(lvl))) != me {
				break
			}
		}
	}
	ctx.Fence()
}

func (h *filterHandle) Unlock(l ptr.Ptr) {
	st := h.p.lookup(l)
	h.ctx.Fence()
	h.ctx.RWrite(st.level.Add(uint64(h.ctx.ThreadID())), 0)
}
