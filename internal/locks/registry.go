package locks

import (
	"fmt"
	"sort"
	"sync"

	"alock/internal/api"
	"alock/internal/core"
	"alock/internal/mem"
	"alock/internal/ptr"
)

// Provider constructs per-thread lock handles for one algorithm. A single
// Provider instance is shared by all threads of one experiment.
//
// Prepare runs once, before any thread starts, and may allocate per-lock
// side state (the filter and bakery baselines need O(threads) words per
// lock). NewHandle runs inside each thread and may allocate per-thread
// descriptors via the thread's own Ctx.
type Provider interface {
	Name() string
	Prepare(space *mem.Space, locks []ptr.Ptr)
	NewHandle(ctx api.Ctx) api.Locker
}

// ALockProvider supplies the paper's ALock under a given budget
// configuration.
type ALockProvider struct {
	Cfg core.Config
}

// NewALockProvider returns a provider with the paper's default budgets
// (local 5, remote 20; Section 6.1).
func NewALockProvider() *ALockProvider { return &ALockProvider{Cfg: core.DefaultConfig()} }

// Name implements Provider.
func (p *ALockProvider) Name() string {
	if p.Cfg.ForceRemote {
		return "alock-symmetric"
	}
	return "alock"
}

// Prepare implements Provider (no shared per-lock state: an ALock is fully
// contained in its 64-byte line).
func (p *ALockProvider) Prepare(*mem.Space, []ptr.Ptr) {}

// NewHandle implements Provider.
func (p *ALockProvider) NewHandle(ctx api.Ctx) api.Locker {
	return core.NewHandle(ctx, p.Cfg)
}

// NewTimedHandle implements TimedProvider.
func (p *ALockProvider) NewTimedHandle(ctx api.Ctx) TimedHandle {
	return alockTimed{h: core.NewHandle(ctx, p.Cfg)}
}

// SpinProvider supplies the RDMA spinlock competitor.
type SpinProvider struct{}

// Name implements Provider.
func (SpinProvider) Name() string { return "spinlock" }

// Prepare implements Provider.
func (SpinProvider) Prepare(*mem.Space, []ptr.Ptr) {}

// NewHandle implements Provider.
func (SpinProvider) NewHandle(ctx api.Ctx) api.Locker { return NewSpinHandle(ctx) }

// NewTimedHandle implements TimedProvider.
func (SpinProvider) NewTimedHandle(ctx api.Ctx) TimedHandle {
	return spinTimed{h: NewSpinHandle(ctx)}
}

// AbortableTimed implements AbortableTimedProvider: the spinlock's timed
// acquire is a bounded poll that holds no waiter state at all.
func (SpinProvider) AbortableTimed() {}

// MCSProvider supplies the RDMA MCS queue lock competitor. Timed selects
// the abandonment-tolerant handoff protocol (run-wide mode).
type MCSProvider struct{ Timed bool }

// Name implements Provider.
func (MCSProvider) Name() string { return "mcs" }

// Prepare implements Provider.
func (MCSProvider) Prepare(*mem.Space, []ptr.Ptr) {}

// NewHandle implements Provider.
func (p MCSProvider) NewHandle(ctx api.Ctx) api.Locker { return p.newHandle(ctx) }

// NewTimedHandle implements TimedProvider.
func (p MCSProvider) NewTimedHandle(ctx api.Ctx) TimedHandle {
	return mcsTimed{h: p.newHandle(ctx)}
}

// AbortableTimed implements AbortableTimedProvider: an MCS waiter's
// abandon CAS loses only to a grant already in flight from a releasing
// holder, never to one gated on a third party.
func (MCSProvider) AbortableTimed() {}

func (p MCSProvider) newHandle(ctx api.Ctx) *MCSHandle {
	if p.Timed {
		return NewTimedMCSHandle(ctx)
	}
	return NewMCSHandle(ctx)
}

// trackedProvider wraps ALockProvider to retain handles for stats
// harvesting after a run.
type trackedALockProvider struct {
	*ALockProvider
	mu      sync.Mutex
	handles []*core.Handle
}

func (p *trackedALockProvider) NewHandle(ctx api.Ctx) api.Locker {
	return p.newTracked(ctx)
}

// NewTimedHandle implements TimedProvider (the tracked handle keeps
// feeding AggregateStats).
func (p *trackedALockProvider) NewTimedHandle(ctx api.Ctx) TimedHandle {
	return alockTimed{h: p.newTracked(ctx)}
}

func (p *trackedALockProvider) newTracked(ctx api.Ctx) *core.Handle {
	h := core.NewHandle(ctx, p.Cfg)
	p.mu.Lock()
	p.handles = append(p.handles, h)
	p.mu.Unlock()
	return h
}

// AggregateStats sums the core stats over all handles created so far.
func (p *trackedALockProvider) AggregateStats() core.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var s core.Stats
	for _, h := range p.handles {
		hs := h.Stats()
		s.Acquires += hs.Acquires
		s.Passes += hs.Passes
		s.Reacquires += hs.Reacquires
		s.LocalOps += hs.LocalOps
		s.RemoteOps += hs.RemoteOps
	}
	return s
}

// StatsAggregator is implemented by providers that can report algorithm-
// internal counters after a run.
type StatsAggregator interface {
	AggregateStats() core.Stats
}

// RWProvider is implemented by providers whose algorithm supports shared
// (read) acquisitions natively. Providers without it still run reader/
// writer workloads through RWHandleFor's exclusive degradation.
type RWProvider interface {
	Provider
	NewRWHandle(ctx api.Ctx) api.RWLocker
}

// RWHandleFor returns a reader/writer handle for any provider: the native
// one when the algorithm supports shared mode, otherwise the exclusive
// degradation (RLock behaves as Lock — correct, but readers serialize).
func RWHandleFor(p Provider, ctx api.Ctx) api.RWLocker {
	if rw, ok := p.(RWProvider); ok {
		return rw.NewRWHandle(ctx)
	}
	return api.ExclusiveRW{L: p.NewHandle(ctx)}
}

// NewTrackedALockProvider returns an ALock provider that also satisfies
// StatsAggregator.
func NewTrackedALockProvider(cfg core.Config) Provider {
	return &trackedALockProvider{ALockProvider: &ALockProvider{Cfg: cfg}}
}

// Options parameterizes ByName.
type Options struct {
	// ALockConfig is used by the alock variants. Zero value means the
	// paper's defaults.
	ALockConfig core.Config
	// RW configures the reader/writer phase budgets of rw-budget and
	// rw-queue. Zero value means DefaultRWConfig(); a partially-set
	// config is rejected by RWConfig.Validate.
	RW RWConfig
	// Threads is the total thread count, required by the filter and
	// bakery baselines.
	Threads int
	// Timed puts the queued algorithms (alock, mcs, rw-queue) into the
	// abandonment-tolerant handoff protocol required for token-API
	// deadlines. It is a run-wide mode: granters and waiters must speak
	// the same protocol. Off, every algorithm runs its paper-exact paths,
	// keeping feature-off schedules bit-identical.
	Timed bool
}

// Names lists every constructible algorithm, sorted.
func Names() []string {
	names := []string{
		"alock", "alock-nobudget", "alock-symmetric",
		"spinlock", "mcs", "filter", "bakery",
		"rw-budget", "rw-wpref", "rw-queue",
	}
	sort.Strings(names)
	return names
}

// ByName constructs the named algorithm's provider.
//
//	alock           — the paper's ALock (budgets from opts, default 5/20)
//	alock-nobudget  — ablation: effectively unbounded budgets
//	alock-symmetric — ablation: every access forced into the remote cohort
//	spinlock        — competitor: repeat rCAS (all RDMA, loopback included)
//	mcs             — competitor: RDMA MCS queue lock (all RDMA)
//	filter          — related work: n-thread Peterson filter over RDMA
//	bakery          — related work: Lamport's bakery over RDMA
//	rw-budget       — reader/writer lock with ALock-style phase budgets
//	rw-wpref        — reader/writer lock, writer-preference baseline
//	rw-queue        — MCS-style queued reader/writer lock (per-thread
//	                  descriptors, reader groups, budget-bounded barging)
func ByName(name string, opts Options) (Provider, error) {
	cfg := opts.ALockConfig
	if cfg.LocalBudget == 0 && cfg.RemoteBudget == 0 {
		def := core.DefaultConfig()
		def.ForceRemote = cfg.ForceRemote
		cfg = def
	}
	rwCfg := opts.RW
	if rwCfg == (RWConfig{}) {
		rwCfg = DefaultRWConfig()
	} else if err := rwCfg.Validate(); err != nil {
		// Validated for every algorithm, not just the two that consume the
		// budgets: a half-set pair is a mistake wherever it appears, and
		// accepting it for rw-wpref while rejecting it for rw-budget would
		// make the same flags behave differently across -algo values.
		return nil, err
	}
	cfg.Timed = opts.Timed
	switch name {
	case "alock":
		return NewTrackedALockProvider(cfg), nil
	case "alock-nobudget":
		nb := cfg
		// Budgets so large they never reach zero within any experiment:
		// passing continues indefinitely, removing the fairness mechanism.
		nb.LocalBudget = 1 << 40
		nb.RemoteBudget = 1 << 40
		return &nobudgetProvider{NewTrackedALockProvider(nb).(*trackedALockProvider)}, nil
	case "alock-symmetric":
		sym := cfg
		sym.ForceRemote = true
		return &symmetricProvider{NewTrackedALockProvider(sym).(*trackedALockProvider)}, nil
	case "spinlock":
		return SpinProvider{}, nil
	case "mcs":
		return MCSProvider{Timed: opts.Timed}, nil
	case "rw-budget":
		return &RWBudgetProvider{Cfg: rwCfg}, nil
	case "rw-wpref":
		return RWPrefProvider{}, nil
	case "rw-queue":
		return &RWQueueProvider{Cfg: rwCfg, Timed: opts.Timed}, nil
	case "filter":
		if opts.Threads < 1 {
			return nil, fmt.Errorf("locks: %q requires Options.Threads", name)
		}
		return NewFilterProvider(opts.Threads), nil
	case "bakery":
		if opts.Threads < 1 {
			return nil, fmt.Errorf("locks: %q requires Options.Threads", name)
		}
		return NewBakeryProvider(opts.Threads), nil
	default:
		return nil, fmt.Errorf("locks: unknown algorithm %q (have %v)", name, Names())
	}
}

// nobudgetProvider / symmetricProvider rename wrapped ALock providers
// (the concrete embed keeps the TimedProvider and StatsAggregator methods
// promoted).
type nobudgetProvider struct{ *trackedALockProvider }

func (nobudgetProvider) Name() string { return "alock-nobudget" }

type symmetricProvider struct{ *trackedALockProvider }

func (symmetricProvider) Name() string { return "alock-symmetric" }
