package locks

import (
	"alock/internal/api"
	"alock/internal/mem"
	"alock/internal/ptr"
)

// NaiveMixedProvider is a deliberately broken lock that exists to
// demonstrate Table 1 of the paper: it is a plain test-and-set spinlock in
// which threads on the lock's home node use local CAS while threads
// elsewhere use RDMA rCAS — i.e., it mixes RMW classes on a single word,
// exactly what the paper proves you must not do.
//
// Under an engine that models remote-RMW tearing (the physical reality of
// §1/§4: "from the perspective of local memory, a remote RMW is nothing
// more than a read followed by a write"), this lock admits two owners: a
// local CAS can take the lock inside the window between the remote CAS's
// read and write halves, after which the remote write blindly "acquires"
// an already-held lock.
//
// It must never be used for anything except the Table 1 experiments; its
// existence is the motivation for ALock.
type NaiveMixedProvider struct{}

// Name implements Provider.
func (NaiveMixedProvider) Name() string { return "naive-mixed" }

// Prepare implements Provider.
func (NaiveMixedProvider) Prepare(*mem.Space, []ptr.Ptr) {}

// NewHandle implements Provider.
func (NaiveMixedProvider) NewHandle(ctx api.Ctx) api.Locker {
	return &naiveHandle{ctx: ctx, tag: uint64(ctx.ThreadID()) + 1}
}

type naiveHandle struct {
	ctx api.Ctx
	tag uint64
}

var _ api.Locker = (*naiveHandle)(nil)

func (h *naiveHandle) Lock(l ptr.Ptr) {
	if api.Classify(h.ctx.NodeID(), l) == api.CohortLocal {
		i := 0
		for h.ctx.CAS(l, 0, h.tag) != 0 {
			h.ctx.Pause(i)
			i++
		}
	} else {
		for h.ctx.RCAS(l, 0, h.tag) != 0 {
		}
	}
	h.ctx.Fence()
}

func (h *naiveHandle) Unlock(l ptr.Ptr) {
	h.ctx.Fence()
	if api.Classify(h.ctx.NodeID(), l) == api.CohortLocal {
		h.ctx.Write(l, 0)
	} else {
		h.ctx.RWrite(l, 0)
	}
}
