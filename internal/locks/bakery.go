package locks

import (
	"fmt"
	"sync"

	"alock/internal/api"
	"alock/internal/mem"
	"alock/internal/ptr"
)

// BakeryProvider implements Lamport's Bakery algorithm over RDMA, the
// second related-work baseline of Section 7 ("Lamport's Bakery algorithm
// also demonstrates the same undesirable behavior for remote threads"):
// only reads and writes — so it works despite Table 1's missing RMW
// atomicity — but it costs O(n) remote operations per acquisition plus
// remote spinning.
//
// Per lock, the bakery needs choosing[n] and number[n] words on the lock's
// home node.
type BakeryProvider struct {
	nThreads int

	mu    sync.Mutex
	state map[ptr.Ptr]bakeryState
}

type bakeryState struct {
	choosing ptr.Ptr
	number   ptr.Ptr
}

// NewBakeryProvider creates a provider for nThreads total threads.
func NewBakeryProvider(nThreads int) *BakeryProvider {
	if nThreads < 1 {
		panic("locks: bakery lock needs at least one thread")
	}
	return &BakeryProvider{nThreads: nThreads, state: make(map[ptr.Ptr]bakeryState)}
}

// Name implements Provider.
func (p *BakeryProvider) Name() string { return "bakery" }

// Prepare allocates each lock's arrays on the lock's home node.
func (p *BakeryProvider) Prepare(space *mem.Space, locks []ptr.Ptr) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, l := range locks {
		if _, ok := p.state[l]; ok {
			continue
		}
		node := l.NodeID()
		p.state[l] = bakeryState{
			choosing: space.Alloc(node, p.nThreads, mem.WordsPerCacheLine),
			number:   space.Alloc(node, p.nThreads, mem.WordsPerCacheLine),
		}
	}
}

// NewHandle implements Provider.
func (p *BakeryProvider) NewHandle(ctx api.Ctx) api.Locker {
	if ctx.ThreadID() >= p.nThreads {
		panic(fmt.Sprintf("locks: thread %d >= bakery capacity %d", ctx.ThreadID(), p.nThreads))
	}
	return &bakeryHandle{p: p, ctx: ctx}
}

func (p *BakeryProvider) lookup(l ptr.Ptr) bakeryState {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[l]
	if !ok {
		panic(fmt.Sprintf("locks: bakery lock %v was not Prepared", l))
	}
	return st
}

type bakeryHandle struct {
	p   *BakeryProvider
	ctx api.Ctx
}

var _ api.Locker = (*bakeryHandle)(nil)

func (h *bakeryHandle) Lock(l ptr.Ptr) {
	st := h.p.lookup(l)
	ctx := h.ctx
	me := uint64(ctx.ThreadID())
	n := h.p.nThreads

	// Doorway: pick a ticket one greater than every visible ticket.
	ctx.RWrite(st.choosing.Add(me), 1)
	var max uint64
	for k := 0; k < n; k++ {
		if v := ctx.RRead(st.number.Add(uint64(k))); v > max {
			max = v
		}
	}
	myTicket := max + 1
	ctx.RWrite(st.number.Add(me), myTicket)
	ctx.RWrite(st.choosing.Add(me), 0)

	// Wait for every thread with a smaller (ticket, id) pair.
	for k := 0; k < n; k++ {
		if uint64(k) == me {
			continue
		}
		for ctx.RRead(st.choosing.Add(uint64(k))) == 1 {
		}
		for {
			tk := ctx.RRead(st.number.Add(uint64(k)))
			if tk == 0 || tk > myTicket || (tk == myTicket && uint64(k) > me) {
				break
			}
		}
	}
	ctx.Fence()
}

func (h *bakeryHandle) Unlock(l ptr.Ptr) {
	st := h.p.lookup(l)
	h.ctx.Fence()
	h.ctx.RWrite(st.number.Add(uint64(h.ctx.ThreadID())), 0)
}
