// rwqueue.go implements rw-queue, a distributed MCS-style queued
// reader/writer lock. The single-word RW locks in rwlock.go keep all state
// in one word of the lock's cache line, so at high contention every waiter
// hammers that word with rCAS retries and the home NIC serializes the
// storm — the same scalability failure the paper's ALock avoids with its
// queue-per-cohort discipline. rw-queue distributes the waiting instead:
//
//   - Every waiter that cannot enter immediately enqueues a per-thread
//     descriptor (allocated on its own node, like the exclusive MCS lock in
//     mcs.go) and spins on the descriptor's own word with shared-memory
//     reads — waiting costs the fabric nothing.
//   - Readers batch into reader groups: a granted reader admits a reader
//     successor immediately (chain admission), so queued readers still
//     overlap inside the critical section.
//   - The ALock budget idea bounds same-class admission runs: arriving
//     readers may barge into the open group through a one-rCAS fast path,
//     but only until the group has admitted ReadBudget readers; after that
//     they enqueue behind any waiting writer, so a queued writer's wait is
//     bounded by the budget plus the queue prefix ahead of it. Handoff
//     among queued waiters is strictly FIFO; writers have no group to
//     barge into, so rw-queue consumes only ReadBudget (WriteBudget
//     applies to rw-budget). The one writer-side shortcut is the
//     optimistic idle claim below, which can win an idle lock against a
//     queue-head waiter's next poll — the same claim race the single-word
//     locks run, with the window capped by the poll back-off bound rather
//     than by a budget.
//   - Lock handoff is one rCAS on the tail (or group word) plus a single
//     write to the successor's descriptor — no shared-word polling storm.
//
// Class discipline (Table 1): the lock line's tail and group words are
// mutated exclusively with rCAS from every node; the wake word and the
// descriptors see only reads and writes (either class), which are atomic
// with everything. Threads poll the group word and spin on their own
// descriptors with shared-memory reads when the memory is node-local.
package locks

import (
	"alock/internal/api"
	"alock/internal/mem"
	"alock/internal/ptr"
)

// RWQueueLockWords is the allocation size of an rw-queue lock: one cache
// line (words 0..2 used; padding prevents false sharing).
const RWQueueLockWords = 8

// Lock-line layout.
const (
	rwqTail  = 0 // queue tail: tagged descriptor pointer, rCAS only
	rwqGroup = 1 // reader-group state word, rCAS only
	rwqWake  = 2 // descriptor to wake on group drain (plain writes/reads)
)

// Descriptor layout: word 0 is the spin flag, word 1 the tagged successor
// pointer. Padded to a cache line; each thread's descriptor lives on its
// own node so the spin is a shared-memory read.
const (
	rwqSpin = 0
	rwqNext = 1

	// RWQDescWords is the per-thread descriptor allocation size.
	RWQDescWords = 8

	rwqSpinWait = 1 // still waiting; the granter writes 0
)

// Descriptors are 8-word aligned, so a descriptor pointer's low bits are
// free: bit 0 of a queued pointer tags the waiter's class. Null (0) stays
// unambiguous because no allocation has offset 0.
const rwqWriterTag = 1

// Group-word layout. The word is mutated only by rCAS; all fields move
// together under one CAS.
const (
	rwqRdActiveShift = 0  // bits 0..15: readers inside the lock
	rwqWrActiveBit   = 16 // bit 16: a writer inside the lock
	rwqWrWaitBit     = 17 // bit 17: the queue-head writer awaits the drain wake
	rwqGrantsShift   = 18 // bits 18..25: readers admitted into this group

	rwqFieldMask  = 0xffff
	rwqGrantsMask = 0xff
)

func rwqRdActive(s uint64) uint64 { return (s >> rwqRdActiveShift) & rwqFieldMask }
func rwqWrActive(s uint64) bool   { return s&(1<<rwqWrActiveBit) != 0 }
func rwqWrWaiting(s uint64) bool  { return s&(1<<rwqWrWaitBit) != 0 }
func rwqGrants(s uint64) uint64   { return (s >> rwqGrantsShift) & rwqGrantsMask }

// RWQueueHandle is one thread's handle onto the queued reader/writer lock.
// Like the exclusive MCS lock it owns a single queue descriptor, so a
// thread must release a queued acquisition before starting the next one
// (the workloads hold one lock at a time).
type RWQueueHandle struct {
	ctx  api.Ctx
	cfg  RWConfig
	desc ptr.Ptr
	// Per-acquisition state, set by the acquire path and consumed by the
	// matching release.
	queuedRead bool // the last RLock went through the queue (not fast path)
	succDone   bool // our queue successor was already admitted/registered
	// seen is the last group word this handle observed or installed — the
	// optimistic expected value for the release path's first rCAS. A stale
	// value only costs one failed CAS (the retry loop reseeds from the
	// returned previous value), never correctness.
	seen uint64
}

var _ api.RWLocker = (*RWQueueHandle)(nil)

// NewRWQueueHandle allocates the thread's queue descriptor on its own node.
func NewRWQueueHandle(ctx api.Ctx, cfg RWConfig) *RWQueueHandle {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := ctx.Alloc(RWQDescWords, RWQDescWords)
	return &RWQueueHandle{ctx: ctx, cfg: cfg, desc: d}
}

// poll reads a lock-line word with the cheapest atomic class available:
// shared-memory on the lock's home node, a verb elsewhere.
func (h *RWQueueHandle) poll(p ptr.Ptr) uint64 {
	if p.NodeID() == h.ctx.NodeID() {
		return h.ctx.Read(p)
	}
	return h.ctx.RRead(p)
}

// write stores through the thread's own access class (both classes of
// 8-byte write are atomic with everything, Table 1).
func (h *RWQueueHandle) write(p ptr.Ptr, v uint64) {
	if p.NodeID() == h.ctx.NodeID() {
		h.ctx.Write(p, v)
		return
	}
	h.ctx.RWrite(p, v)
}

// spinDesc waits on the thread's own descriptor until a granter clears the
// spin flag — a shared-memory spin, the MCS property that keeps waiting off
// the fabric entirely.
func (h *RWQueueHandle) spinDesc() {
	d := h.desc.Add(rwqSpin)
	iter := 0
	for h.ctx.Read(d) == rwqSpinWait {
		h.ctx.Pause(iter)
		iter++
	}
}

// resetDesc prepares the descriptor for an enqueue with shared-memory
// writes: it is the thread's own scratch and not yet linked into any queue.
func (h *RWQueueHandle) resetDesc() {
	h.ctx.Write(h.desc.Add(rwqSpin), rwqSpinWait)
	h.ctx.Write(h.desc.Add(rwqNext), ptr.Null.Word())
}

// swapTail swaps the tagged descriptor word onto the queue tail (CAS-retry
// loop: RDMA has no unconditional swap) and returns the predecessor word.
func (h *RWQueueHandle) swapTail(l ptr.Ptr, tagged uint64) uint64 {
	tail := l.Add(rwqTail)
	expected := ptr.Null.Word()
	for {
		prev := h.ctx.RCAS(tail, expected, tagged)
		if prev == expected {
			return expected
		}
		expected = prev
	}
}

// --- Reader side ---

// readerFastEligible reports whether an arriving reader may barge into the
// group through the fast path under state s: never past a writer (active or
// registered for the wake), and never past the group's ReadBudget — the
// bounded same-class admission run that keeps a queued writer's wait
// finite, ALock's budget idea applied to the reader cohort.
func (h *RWQueueHandle) readerFastEligible(s uint64) bool {
	if rwqWrActive(s) || rwqWrWaiting(s) {
		return false
	}
	if rwqRdActive(s) == 0 {
		// Fresh group: stale grants from the previous episode are reset by
		// readerFastEnter, so they must not close the fast path.
		return true
	}
	return rwqGrants(s) < uint64(h.cfg.ReadBudget)
}

// readerFastEnter computes the successor state of a fast-path admission.
func (h *RWQueueHandle) readerFastEnter(s uint64) uint64 {
	if rwqRdActive(s) == 0 {
		// A fresh group: reset the admission count so a stale count from
		// the previous episode cannot close the fast path early.
		ns := s &^ (uint64(rwqGrantsMask) << rwqGrantsShift)
		return ns + 1<<rwqRdActiveShift + 1<<rwqGrantsShift
	}
	return rwqGroupJoin(s)
}

// rwqGroupJoin admits one more reader into the open group, saturating the
// admission count at its field width (queued FIFO readers are admitted
// past the budget — they already waited their turn — so the count only
// gates the fast path).
func rwqGroupJoin(s uint64) uint64 {
	ns := s + 1<<rwqRdActiveShift
	if rwqGrants(s) < rwqGrantsMask {
		ns += 1 << rwqGrantsShift
	}
	return ns
}

// RLock implements api.RWLocker: shared acquire. Like the single-word
// locks, the acquire is verb-frugal: the first rCAS is seeded optimistically
// (a pristine idle lock costs exactly one verb) and every failed rCAS
// returns the current word, which seeds the next attempt — the fast path
// never pays a separate read round trip.
func (h *RWQueueHandle) RLock(l ptr.Ptr) {
	group := l.Add(rwqGroup)
	// Fast path: join the open reader group with a single rCAS.
	s := uint64(0)
	for h.readerFastEligible(s) {
		ns := h.readerFastEnter(s)
		prev := h.ctx.RCAS(group, s, ns)
		if prev == s {
			h.queuedRead = false
			h.seen = ns
			h.ctx.Fence()
			return
		}
		s = prev
	}
	h.rlockQueued(l)
}

// rlockQueued is the reader slow path: enqueue, wait for admission, then
// chain-admit a reader successor (or register a writer successor for the
// drain wake) so the group keeps its concurrency.
func (h *RWQueueHandle) rlockQueued(l ptr.Ptr) {
	h.resetDesc()
	tagged := h.desc.Word() // reader class: tag bit clear

	pred := h.swapTail(l, tagged)
	if pred == ptr.Null.Word() {
		// Queue head: admit ourselves as soon as no writer holds the lock
		// or awaits the drain. (wrWaiting implies its writer is still
		// queued, so a queue-head reader only ever sees the narrow window
		// where a departing writer has dequeued but not yet cleared
		// wrActive.)
		group := l.Add(rwqGroup)
		s := h.poll(group)
		iter := 0
		for {
			if !rwqWrActive(s) && !rwqWrWaiting(s) {
				var ns uint64
				if rwqRdActive(s) == 0 {
					ns = h.readerFastEnter(s) // fresh group, grants reset
				} else {
					ns = rwqGroupJoin(s) // FIFO-entitled: budget does not gate
				}
				prev := h.ctx.RCAS(group, s, ns)
				if prev == s {
					h.seen = ns
					break
				}
				s = prev
				continue
			}
			h.ctx.Pause(iter)
			iter++
			s = h.poll(group)
		}
	} else {
		// Link behind the predecessor and spin on our own descriptor; the
		// granter has already counted us into the group when it clears the
		// flag. We did not observe the group word, so guess the smallest
		// consistent state for the release path's optimistic rCAS.
		p := ptr.FromWord(pred &^ rwqWriterTag)
		h.write(p.Add(rwqNext), tagged)
		h.spinDesc()
		h.seen = 1<<rwqRdActiveShift + 1<<rwqGrantsShift
	}

	h.queuedRead = true
	h.succDone = h.handleSuccessor(l, h.ctx.Read(h.desc.Add(rwqNext)))
	h.ctx.Fence()
}

// handleSuccessor performs a granted reader's queue duty for the given
// tagged successor word: admit a reader successor into the group and wake
// it, or register a writer successor for the drain wake (wake pointer
// first, then the flag, so the draining reader always finds the pointer).
// It reports whether a successor was handled.
func (h *RWQueueHandle) handleSuccessor(l ptr.Ptr, next uint64) bool {
	if next == ptr.Null.Word() {
		return false
	}
	group := l.Add(rwqGroup)
	succ := ptr.FromWord(next &^ rwqWriterTag)
	if next&rwqWriterTag != 0 {
		// Writer successor: it is woken by whichever reader drains the
		// group last, via the wake pointer.
		h.write(l.Add(rwqWake), succ.Word())
		s := h.seen
		for {
			prev := h.ctx.RCAS(group, s, s|1<<rwqWrWaitBit)
			if prev == s {
				h.seen = s | 1<<rwqWrWaitBit
				return true
			}
			s = prev
		}
	}
	// Reader successor: chain admission — count it into the group, then
	// one write to its descriptor. It will chain its own successor.
	s := h.seen
	for {
		ns := rwqGroupJoin(s)
		prev := h.ctx.RCAS(group, s, ns)
		if prev == s {
			h.seen = ns
			break
		}
		s = prev
	}
	h.write(succ.Add(rwqSpin), 0)
	return true
}

// RUnlock implements api.RWLocker: shared release.
func (h *RWQueueHandle) RUnlock(l ptr.Ptr) {
	h.ctx.Fence()
	if h.queuedRead && !h.succDone {
		h.readerDequeue(l)
	}
	h.drainExit(l)
}

// readerDequeue removes a queued reader whose successor was not handled at
// grant time: either the queue still ends at us (CAS the tail back to
// NULL), or a successor is linking right now — wait for the link and do the
// grant-time duty late.
func (h *RWQueueHandle) readerDequeue(l ptr.Ptr) {
	d := h.desc
	next := h.ctx.Read(d.Add(rwqNext))
	if next == ptr.Null.Word() {
		if h.ctx.RCAS(l.Add(rwqTail), d.Word(), ptr.Null.Word()) == d.Word() {
			return
		}
		iter := 0
		for next == ptr.Null.Word() {
			h.ctx.Pause(iter)
			iter++
			next = h.ctx.Read(d.Add(rwqNext))
		}
	}
	h.handleSuccessor(l, next)
}

// drainExit decrements the active-reader count; the reader that drains the
// group with a writer registered transfers the lock in the same rCAS and
// wakes the writer with one descriptor write.
func (h *RWQueueHandle) drainExit(l ptr.Ptr) {
	group := l.Add(rwqGroup)
	s := h.seen
	for {
		transfer := rwqRdActive(s) == 1 && rwqWrWaiting(s)
		var ns uint64
		if transfer {
			ns = 1 << rwqWrActiveBit // group closed: the waked writer owns the lock
		} else {
			ns = s - 1<<rwqRdActiveShift
		}
		prev := h.ctx.RCAS(group, s, ns)
		if prev == s {
			if transfer {
				w := ptr.FromWord(h.poll(l.Add(rwqWake)))
				h.write(w.Add(rwqSpin), 0)
			}
			return
		}
		s = prev
	}
}

// --- Writer side ---

// Lock implements api.Locker: exclusive acquire.
func (h *RWQueueHandle) Lock(l ptr.Ptr) {
	group := l.Add(rwqGroup)

	// Optimistic: an idle lock (possibly with a stale admission count) is
	// claimed with a single rCAS, skipping the enqueue round trip. The
	// first attempt assumes a pristine word; failures seed the next.
	s := uint64(0)
	for rwqRdActive(s) == 0 && !rwqWrActive(s) && !rwqWrWaiting(s) {
		prev := h.ctx.RCAS(group, s, 1<<rwqWrActiveBit)
		if prev == s {
			h.succDone = true // not enqueued: release has no queue duty
			h.ctx.Fence()
			return
		}
		s = prev
	}

	h.resetDesc()
	tagged := h.desc.Word() | rwqWriterTag
	pred := h.swapTail(l, tagged)
	if pred != ptr.Null.Word() {
		// Link behind the predecessor and spin on our own descriptor. The
		// handoff that wakes us leaves wrActive set for us.
		p := ptr.FromWord(pred &^ rwqWriterTag)
		h.write(p.Add(rwqNext), tagged)
		h.spinDesc()
		h.succDone = false
		h.ctx.Fence()
		return
	}

	// Queue head: claim directly once idle, or register for the drain wake
	// (wake pointer first, then the flag) and spin on our own descriptor.
	s = h.poll(group)
	iter := 0
	for {
		if !rwqWrActive(s) {
			if rwqRdActive(s) == 0 && !rwqWrWaiting(s) {
				prev := h.ctx.RCAS(group, s, 1<<rwqWrActiveBit)
				if prev == s {
					break
				}
				s = prev
				continue
			}
			if rwqRdActive(s) > 0 && !rwqWrWaiting(s) {
				h.write(l.Add(rwqWake), h.desc.Word())
				prev := h.ctx.RCAS(group, s, s|1<<rwqWrWaitBit)
				if prev == s {
					h.spinDesc()
					break
				}
				s = prev
				continue
			}
		}
		// A departing writer is between its dequeue and clearing wrActive
		// (narrow race window): back off and re-poll.
		h.ctx.Pause(iter)
		iter++
		s = h.poll(group)
	}
	h.succDone = false
	h.ctx.Fence()
}

// releaseIdle is the writer's release-to-idle transition: one rCAS
// clearing the writer bit. While a writer holds, the group word is exactly
// the writer bit (every claim path clears the rest), so the first attempt
// needs no poll and the loop runs once; the retry preserves any other bits
// it finds (a fresh group resets the admission count on entry).
func (h *RWQueueHandle) releaseIdle(group ptr.Ptr) {
	s := uint64(1) << rwqWrActiveBit
	for {
		prev := h.ctx.RCAS(group, s, s&^(uint64(1)<<rwqWrActiveBit))
		if prev == s {
			return
		}
		s = prev
	}
}

// Unlock implements api.Locker: exclusive release.
func (h *RWQueueHandle) Unlock(l ptr.Ptr) {
	h.ctx.Fence()
	group := l.Add(rwqGroup)

	if h.succDone {
		// Optimistic acquire: not in the queue, so release is just the
		// idle transition.
		h.releaseIdle(group)
		return
	}

	d := h.desc
	next := h.ctx.Read(d.Add(rwqNext))
	if next == ptr.Null.Word() {
		if h.ctx.RCAS(l.Add(rwqTail), d.Word()|rwqWriterTag, ptr.Null.Word()) ==
			d.Word()|rwqWriterTag {
			h.releaseIdle(group) // queue empty: no successor to hand to
			return
		}
		iter := 0
		for next == ptr.Null.Word() {
			h.ctx.Pause(iter)
			iter++
			next = h.ctx.Read(d.Add(rwqNext))
		}
	}

	succ := ptr.FromWord(next &^ rwqWriterTag)
	if next&rwqWriterTag != 0 {
		// Writer-to-writer handoff: wrActive simply stays set for the
		// successor — the entire handoff is one descriptor write.
		h.write(succ.Add(rwqSpin), 0)
		return
	}
	// Writer-to-reader handoff: open a fresh group containing the
	// successor (one rCAS), then wake it (one descriptor write). The
	// successor chain-admits any reader queued behind it.
	s := uint64(1) << rwqWrActiveBit // exact while a writer holds
	for {
		ns := uint64(1)<<rwqRdActiveShift | uint64(1)<<rwqGrantsShift
		prev := h.ctx.RCAS(group, s, ns)
		if prev == s {
			break
		}
		s = prev
	}
	h.write(succ.Add(rwqSpin), 0)
}

// RWQueueProvider supplies the queued reader/writer lock.
type RWQueueProvider struct {
	Cfg RWConfig
}

// NewRWQueueProvider returns a provider with the default budgets.
func NewRWQueueProvider() *RWQueueProvider {
	return &RWQueueProvider{Cfg: DefaultRWConfig()}
}

// Name implements Provider.
func (*RWQueueProvider) Name() string { return "rw-queue" }

// Prepare implements Provider (lock state fits the lock line; descriptors
// are per-thread and allocated by NewRWHandle on each thread's own node).
func (*RWQueueProvider) Prepare(*mem.Space, []ptr.Ptr) {}

// NewHandle implements Provider.
func (p *RWQueueProvider) NewHandle(ctx api.Ctx) api.Locker {
	return p.NewRWHandle(ctx)
}

// NewRWHandle implements RWProvider.
func (p *RWQueueProvider) NewRWHandle(ctx api.Ctx) api.RWLocker {
	return NewRWQueueHandle(ctx, p.Cfg)
}
