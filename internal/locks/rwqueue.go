// rwqueue.go implements rw-queue, a distributed MCS-style queued
// reader/writer lock. The single-word RW locks in rwlock.go keep all state
// in one word of the lock's cache line, so at high contention every waiter
// hammers that word with rCAS retries and the home NIC serializes the
// storm — the same scalability failure the paper's ALock avoids with its
// queue-per-cohort discipline. rw-queue distributes the waiting instead:
//
//   - Every waiter that cannot enter immediately enqueues a descriptor
//     (allocated per acquisition from the thread's free list, on its own
//     node like the exclusive MCS lock in mcs.go) and spins on the
//     descriptor's own word with shared-memory reads — waiting costs the
//     fabric nothing. Per-acquisition descriptors let one thread hold
//     several locks at once.
//   - Readers batch into reader groups: a granted reader admits a reader
//     successor immediately (chain admission), so queued readers still
//     overlap inside the critical section.
//   - The ALock budget idea bounds same-class admission runs in both
//     directions. Arriving readers may barge into the open group through a
//     one-rCAS fast path, but only ReadBudget consecutive times: the
//     admission count rides the group word across drains (an alternating
//     stream of lone readers spends the same budget as one sustained
//     group) and resets only when a grant goes through the queue. Writers
//     symmetrically may claim an idle lock through a one-rCAS fast path —
//     the window that opens right after a group drains — but only
//     WriteBudget consecutive times: the state word counts optimistic
//     writer claims, the count survives release-to-idle, and it resets
//     whenever the lock is granted through the queue, so queue-head
//     waiters are overtaken at most WriteBudget times per episode.
//   - Lock handoff is one rCAS on the tail (or group word) plus a single
//     write to the successor's descriptor — no shared-word polling storm.
//
// Under the timed protocol (token API deadlines) every transition out of a
// descriptor's waiting state is an rCAS, so a waiter whose deadline passes
// can abandon its descriptor in place (CAS waiting -> abandoned) and the
// granter patches the queue around it; a granter instead claims a live
// successor (CAS waiting -> claimed) before doing its group bookkeeping,
// which commits the successor — its own timeout CAS can no longer win. A
// queue-head waiter that times out hands its head position to the next
// live waiter with a distinct head wake value.
//
// Class discipline (Table 1): the lock line's tail and group words are
// mutated exclusively with rCAS from every node; descriptor spin words are
// mutated by rCAS only (timed protocol) or by plain writes with read-only
// polling (paper protocol), and the wake word and descriptor next words
// see only reads and writes (either class), which are atomic with
// everything. Threads poll the group word and spin on their own
// descriptors with shared-memory reads when the memory is node-local.
package locks

import (
	"alock/internal/api"
	"alock/internal/mem"
	"alock/internal/ptr"
)

// RWQueueLockWords is the allocation size of an rw-queue lock: one cache
// line (words 0..2 used; padding prevents false sharing).
const RWQueueLockWords = 8

// Lock-line layout.
const (
	rwqTail  = 0 // queue tail: tagged descriptor pointer, rCAS only
	rwqGroup = 1 // reader-group state word, rCAS only
	rwqWake  = 2 // descriptor to wake on group drain (plain writes/reads)
)

// Descriptor layout: word 0 is the spin word, word 1 the tagged successor
// pointer. Padded to a cache line; descriptors live on their owner's node
// so the spin is a shared-memory read.
const (
	rwqSpin = 0
	rwqNext = 1

	// RWQDescWords is the descriptor allocation size.
	RWQDescWords = 8
)

// Spin-word protocol. The paper-style protocol uses only wait/granted
// (granter: one plain write). The timed protocol adds: abandoned (waiter
// timed out; granter must patch around the descriptor), skipped (granter
// finished patching; the owner may recycle the descriptor), claimed
// (granter reserved the waiter before its bookkeeping; the waiter is
// committed and spins on), and head (the waiter inherited the queue head
// position and must poll the group word itself rather than enter).
const (
	rwqSpinGranted = 0
	rwqSpinWait    = 1
	rwqSpinAband   = 2
	rwqSpinSkip    = 3
	rwqSpinClaim   = 4
	rwqSpinHead    = 5
)

// Descriptors are 8-word aligned, so a descriptor pointer's low bits are
// free: bit 0 of a queued pointer tags the waiter's class. Null (0) stays
// unambiguous because no allocation has offset 0.
const rwqWriterTag = 1

// Group-word layout. The word is mutated only by rCAS; all fields move
// together under one CAS.
const (
	rwqRdActiveShift = 0  // bits 0..15: readers inside the lock
	rwqWrActiveBit   = 16 // bit 16: a writer inside the lock
	rwqWrWaitBit     = 17 // bit 17: the queue-head writer awaits the drain wake
	rwqGrantsShift   = 18 // bits 18..25: readers admitted into this group
	rwqWClaimShift   = 26 // bits 26..33: consecutive optimistic writer claims

	rwqFieldMask  = 0xffff
	rwqGrantsMask = 0xff
)

func rwqRdActive(s uint64) uint64 { return (s >> rwqRdActiveShift) & rwqFieldMask }
func rwqWrActive(s uint64) bool   { return s&(1<<rwqWrActiveBit) != 0 }
func rwqWrWaiting(s uint64) bool  { return s&(1<<rwqWrWaitBit) != 0 }
func rwqGrants(s uint64) uint64   { return (s >> rwqGrantsShift) & rwqGrantsMask }
func rwqWClaims(s uint64) uint64  { return (s >> rwqWClaimShift) & rwqGrantsMask }

// rwqAcq is one acquisition's state, created by the acquire path and
// consumed by the matching release (the token API threads it through the
// Guard; the blocking facade parks it on a held list).
type rwqAcq struct {
	desc   ptr.Ptr // queue descriptor; Null for fast-path acquisitions
	tagged uint64  // desc.Word() | class tag (0 when desc is Null)
	// queuedRead marks a shared acquisition that went through the queue
	// (not the fast path); succDone marks that its queue successor was
	// already admitted/registered at grant time.
	queuedRead bool
	succDone   bool
	// seen is the last group word this acquisition observed or installed —
	// the optimistic expected value for the release path's first rCAS. A
	// stale value only costs one failed CAS (the retry loop reseeds from
	// the returned previous value), never correctness.
	seen uint64
}

// spinDescTimed outcomes.
const (
	rwqSpinOutGranted = iota
	rwqSpinOutHead
	rwqSpinOutTimeout
)

// RWQueueHandle is one thread's handle onto the queued reader/writer lock.
// Descriptors come from a per-thread free list, one per outstanding
// acquisition, so a thread may hold several rw-queue locks concurrently.
type RWQueueHandle struct {
	ctx api.Ctx
	cfg RWConfig
	// timed selects the CAS-based descriptor protocol that tolerates
	// abandonment on deadline; it is a run-wide mode (granters and waiters
	// must agree). Off, handoff is the plain-write protocol.
	timed bool
	pool  descPool
	held  []rwqHeld // outstanding Lock/Unlock-facade acquisitions
}

type rwqHeld struct {
	lock ptr.Ptr
	mode api.Mode
	a    *rwqAcq
}

var _ api.RWLocker = (*RWQueueHandle)(nil)

// NewRWQueueHandle allocates the thread's first queue descriptor on its
// own node; more are allocated only for overlapping holds.
func NewRWQueueHandle(ctx api.Ctx, cfg RWConfig) *RWQueueHandle {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &RWQueueHandle{ctx: ctx, cfg: cfg, pool: descPool{
		ctx: ctx, words: RWQDescWords, spin: rwqSpin, skip: rwqSpinSkip,
	}}
	h.pool.put(ctx.Alloc(RWQDescWords, RWQDescWords))
	return h
}

// NewTimedRWQueueHandle returns a handle speaking the timed protocol.
func NewTimedRWQueueHandle(ctx api.Ctx, cfg RWConfig) *RWQueueHandle {
	h := NewRWQueueHandle(ctx, cfg)
	h.timed = true
	return h
}

// Zombies reports abandoned descriptors still awaiting their skip mark.
func (h *RWQueueHandle) Zombies() int { return h.pool.zombies() }

// poll reads a lock-line word with the cheapest atomic class available:
// shared-memory on the lock's home node, a verb elsewhere.
func (h *RWQueueHandle) poll(p ptr.Ptr) uint64 {
	if p.NodeID() == h.ctx.NodeID() {
		return h.ctx.Read(p)
	}
	return h.ctx.RRead(p)
}

// write stores through the thread's own access class (both classes of
// 8-byte write are atomic with everything, Table 1).
func (h *RWQueueHandle) write(p ptr.Ptr, v uint64) {
	if p.NodeID() == h.ctx.NodeID() {
		h.ctx.Write(p, v)
		return
	}
	h.ctx.RWrite(p, v)
}

// spinDescTimed waits on the acquisition's own descriptor — a shared-memory
// spin, the MCS property that keeps waiting off the fabric entirely — until
// a granter resolves it: granted, promoted to queue head, or (past the
// deadline) successfully abandoned. A descriptor in the claimed state is
// committed: the grant is already in flight, so the deadline no longer
// applies and the only exits are granted or head.
func (h *RWQueueHandle) spinDescTimed(d ptr.Ptr, deadlineNS int64) int {
	spin := d.Add(rwqSpin)
	iter := 0
	for {
		switch h.ctx.Read(spin) {
		case rwqSpinGranted:
			return rwqSpinOutGranted
		case rwqSpinHead:
			return rwqSpinOutHead
		case rwqSpinWait:
			if deadlineNS > 0 && h.ctx.Now() >= deadlineNS {
				// The abandon CAS and the granter's claim/grant CAS share
				// the remote RMW class, so exactly one wins.
				if h.ctx.RCAS(spin, rwqSpinWait, rwqSpinAband) == rwqSpinWait {
					return rwqSpinOutTimeout
				}
				continue // a grant raced the timeout and won: re-read
			}
		}
		h.ctx.Pause(iter)
		iter++
	}
}

// resetDesc prepares a descriptor for an enqueue with shared-memory
// writes: it is the thread's own scratch and not yet linked into any queue.
func (h *RWQueueHandle) resetDesc(d ptr.Ptr) {
	h.ctx.Write(d.Add(rwqSpin), rwqSpinWait)
	h.ctx.Write(d.Add(rwqNext), ptr.Null.Word())
}

// swapTail swaps the tagged descriptor word onto the queue tail (CAS-retry
// loop: RDMA has no unconditional swap) and returns the predecessor word.
func (h *RWQueueHandle) swapTail(l ptr.Ptr, tagged uint64) uint64 {
	tail := l.Add(rwqTail)
	expected := ptr.Null.Word()
	for {
		prev := h.ctx.RCAS(tail, expected, tagged)
		if prev == expected {
			return expected
		}
		expected = prev
	}
}

// claimNext walks the queue from the tagged successor word `next`,
// bypassing abandoned descriptors, until it claims a live successor (spin
// word CAS wait -> claimed) or finds the queue drained (the last
// descriptor was abandoned and the tail CASes back to NULL). Bypassed
// descriptors are marked skipped once their next word is no longer needed,
// releasing them to their owners. Returns the claimed successor's tagged
// word; ok is false when the queue drained. Timed protocol only.
func (h *RWQueueHandle) claimNext(l ptr.Ptr, next uint64) (uint64, bool) {
	for {
		succ := ptr.FromWord(next &^ rwqWriterTag)
		if h.ctx.RCAS(succ.Add(rwqSpin), rwqSpinWait, rwqSpinClaim) == rwqSpinWait {
			return next, true
		}
		// Abandoned: read its successor, patching the tail if it was last.
		next2 := h.poll(succ.Add(rwqNext))
		if next2 == ptr.Null.Word() {
			if h.ctx.RCAS(l.Add(rwqTail), next, ptr.Null.Word()) == next {
				h.write(succ.Add(rwqSpin), rwqSpinSkip)
				return 0, false
			}
			iter := 0
			for next2 == ptr.Null.Word() {
				h.ctx.Pause(iter)
				iter++
				next2 = h.poll(succ.Add(rwqNext))
			}
		}
		h.write(succ.Add(rwqSpin), rwqSpinSkip)
		next = next2
	}
}

// abandonHead dequeues a queue-head waiter that timed out while polling
// the group word: either the queue ends at it (tail CAS back to NULL) or
// the next live waiter inherits the head position through the head wake
// value. The descriptor was never granted, so it is immediately reusable.
func (h *RWQueueHandle) abandonHead(l ptr.Ptr, a *rwqAcq) {
	d := a.desc
	next := h.ctx.Read(d.Add(rwqNext))
	if next == ptr.Null.Word() {
		if h.ctx.RCAS(l.Add(rwqTail), a.tagged, ptr.Null.Word()) == a.tagged {
			h.pool.put(d)
			return
		}
		iter := 0
		for next == ptr.Null.Word() {
			h.ctx.Pause(iter)
			iter++
			next = h.ctx.Read(d.Add(rwqNext))
		}
	}
	if tagged, ok := h.claimNext(l, next); ok {
		succ := ptr.FromWord(tagged &^ rwqWriterTag)
		h.write(succ.Add(rwqSpin), rwqSpinHead)
	}
	h.pool.put(d)
}

// --- Reader side ---

// readerFastEligible reports whether an arriving reader may barge into the
// group through the fast path under state s: never past a writer (active or
// registered for the wake), and never past ReadBudget admissions — the
// bounded same-class admission run that keeps a queued writer's wait
// finite, ALock's budget idea applied to the reader cohort. The admission
// count rides the group word across a drain (drainExit only decrements the
// active count), so an alternating stream of lone readers — each forming a
// "fresh" group of one — consumes the same budget as one sustained group;
// only a queue-mediated grant reopens the window, exactly like the writer
// claim count riding the idle word.
func (h *RWQueueHandle) readerFastEligible(s uint64) bool {
	return !rwqWrActive(s) && !rwqWrWaiting(s) &&
		rwqGrants(s) < uint64(h.cfg.ReadBudget)
}

// readerFastEnter computes the successor state of a fast-path admission.
func (h *RWQueueHandle) readerFastEnter(s uint64) uint64 {
	if rwqRdActive(s) == 0 {
		// Entering a reader episode restarts the writer's post-drain claim
		// window. The reader admission count deliberately carries over: a
		// fast-path "fresh" group continues the previous episode's budget
		// rather than opening a new one.
		s &^= uint64(rwqGrantsMask) << rwqWClaimShift
	}
	return rwqGroupJoin(s)
}

// rwqGroupOpen computes the state of a brand-new reader group opened by a
// queue-mediated grant: both budget counts reset — the queue-head reader
// waited its turn, so the fast-path window reopens behind it — and the
// head itself is the group's first admission.
func rwqGroupOpen(s uint64) uint64 {
	ns := s &^ (uint64(rwqGrantsMask) << rwqGrantsShift)
	ns &^= uint64(rwqGrantsMask) << rwqWClaimShift
	return ns + 1<<rwqRdActiveShift + 1<<rwqGrantsShift
}

// rwqGroupJoin admits one more reader into the open group, saturating the
// admission count at its field width (queued FIFO readers are admitted
// past the budget — they already waited their turn — so the count only
// gates the fast path).
func rwqGroupJoin(s uint64) uint64 {
	ns := s + 1<<rwqRdActiveShift
	if rwqGrants(s) < rwqGrantsMask {
		ns += 1 << rwqGrantsShift
	}
	return ns
}

// RLock implements api.RWLocker: shared acquire (blocking facade).
func (h *RWQueueHandle) RLock(l ptr.Ptr) {
	a, _ := h.acquireShared(l, 0)
	h.held = append(h.held, rwqHeld{lock: l, mode: api.Shared, a: a})
}

// RUnlock implements api.RWLocker: shared release (blocking facade).
func (h *RWQueueHandle) RUnlock(l ptr.Ptr) { h.releaseShared(l, h.popHeld(l, api.Shared)) }

// Lock implements api.Locker: exclusive acquire (blocking facade).
func (h *RWQueueHandle) Lock(l ptr.Ptr) {
	a, _ := h.acquireExcl(l, 0)
	h.held = append(h.held, rwqHeld{lock: l, mode: api.Exclusive, a: a})
}

// Unlock implements api.Locker: exclusive release (blocking facade).
func (h *RWQueueHandle) Unlock(l ptr.Ptr) { h.releaseExcl(l, h.popHeld(l, api.Exclusive)) }

func (h *RWQueueHandle) popHeld(l ptr.Ptr, mode api.Mode) *rwqAcq {
	for i := len(h.held) - 1; i >= 0; i-- {
		if h.held[i].lock == l && h.held[i].mode == mode {
			a := h.held[i].a
			h.held = append(h.held[:i], h.held[i+1:]...)
			return a
		}
	}
	panic("locks: rw-queue release without matching acquire")
}

// acquireShared acquires in shared mode, giving up at deadlineNS (0 =
// block; deadlines require the timed protocol). Like the single-word
// locks, the acquire is verb-frugal: the first rCAS is seeded
// optimistically (a pristine idle lock costs exactly one verb) and every
// failed rCAS returns the current word, which seeds the next attempt.
func (h *RWQueueHandle) acquireShared(l ptr.Ptr, deadlineNS int64) (*rwqAcq, bool) {
	if !h.timed {
		deadlineNS = 0
	}
	group := l.Add(rwqGroup)
	// Fast path: join the open reader group with a single rCAS.
	s := uint64(0)
	for h.readerFastEligible(s) {
		if deadlineNS > 0 && h.ctx.Now() >= deadlineNS {
			return nil, false // gave up holding nothing
		}
		ns := h.readerFastEnter(s)
		prev := h.ctx.RCAS(group, s, ns)
		if prev == s {
			h.ctx.Fence()
			return &rwqAcq{seen: ns}, true
		}
		s = prev
	}
	return h.rlockQueued(l, deadlineNS)
}

// rlockQueued is the reader slow path: enqueue, wait for admission, then
// chain-admit a reader successor (or register a writer successor for the
// drain wake) so the group keeps its concurrency.
func (h *RWQueueHandle) rlockQueued(l ptr.Ptr, deadlineNS int64) (*rwqAcq, bool) {
	d := h.pool.get()
	if deadlineNS > 0 && h.ctx.Now() >= deadlineNS {
		h.pool.put(d)
		return nil, false
	}
	h.resetDesc(d)
	a := &rwqAcq{desc: d, tagged: d.Word()} // reader class: tag bit clear

	pred := h.swapTail(l, a.tagged)
	if pred == ptr.Null.Word() {
		if !h.readerHeadLoop(l, a, deadlineNS) {
			return nil, false
		}
	} else {
		// Link behind the predecessor and spin on our own descriptor; the
		// granter has already counted us into the group when it clears the
		// flag. We did not observe the group word, so guess the smallest
		// consistent state for the release path's optimistic rCAS.
		p := ptr.FromWord(pred &^ rwqWriterTag)
		h.write(p.Add(rwqNext), a.tagged)
		switch h.spinDescTimed(d, deadlineNS) {
		case rwqSpinOutTimeout:
			h.pool.zombie(d)
			return nil, false
		case rwqSpinOutHead:
			if !h.readerHeadLoop(l, a, deadlineNS) {
				return nil, false
			}
		default:
			a.seen = 1<<rwqRdActiveShift + 1<<rwqGrantsShift
		}
	}

	a.queuedRead = true
	a.succDone = h.handleSuccessor(l, a, h.ctx.Read(d.Add(rwqNext)))
	h.ctx.Fence()
	return a, true
}

// readerHeadLoop is the queue-head reader's wait: admit ourselves as soon
// as no writer holds the lock or awaits the drain. (wrWaiting implies its
// writer is still queued, so a queue-head reader only ever sees the narrow
// window where a departing writer has dequeued but not yet cleared
// wrActive.) On deadline the head position is passed on via abandonHead.
func (h *RWQueueHandle) readerHeadLoop(l ptr.Ptr, a *rwqAcq, deadlineNS int64) bool {
	group := l.Add(rwqGroup)
	s := h.poll(group)
	iter := 0
	for {
		if !rwqWrActive(s) && !rwqWrWaiting(s) {
			var ns uint64
			if rwqRdActive(s) == 0 {
				ns = rwqGroupOpen(s) // queue-mediated fresh group: counts reset
			} else {
				ns = rwqGroupJoin(s) // FIFO-entitled: budget does not gate
			}
			prev := h.ctx.RCAS(group, s, ns)
			if prev == s {
				a.seen = ns
				return true
			}
			s = prev
			continue
		}
		if deadlineNS > 0 && h.ctx.Now() >= deadlineNS {
			h.abandonHead(l, a)
			return false
		}
		h.ctx.Pause(iter)
		iter++
		s = h.poll(group)
	}
}

// handleSuccessor performs a granted reader's queue duty for the given
// tagged successor word: admit a reader successor into the group and wake
// it, or register a writer successor for the drain wake (wake pointer
// first, then the flag, so the draining reader always finds the pointer).
// Under the timed protocol the successor is claimed first — bypassing any
// abandoned descriptors — so the bookkeeping below always lands on a live
// waiter (a claimed writer stays claimed until the drain wake grants it).
// It reports whether the duty is done (a successor was handled, or the
// queue drained while bypassing the dead tail).
func (h *RWQueueHandle) handleSuccessor(l ptr.Ptr, a *rwqAcq, next uint64) bool {
	if next == ptr.Null.Word() {
		return false
	}
	if h.timed {
		var ok bool
		next, ok = h.claimNext(l, next)
		if !ok {
			return true // queue drained: no duty left
		}
	}
	group := l.Add(rwqGroup)
	succ := ptr.FromWord(next &^ rwqWriterTag)
	if next&rwqWriterTag != 0 {
		// Writer successor: it is woken by whichever reader drains the
		// group last, via the wake pointer.
		h.write(l.Add(rwqWake), succ.Word())
		s := a.seen
		for {
			prev := h.ctx.RCAS(group, s, s|1<<rwqWrWaitBit)
			if prev == s {
				a.seen = s | 1<<rwqWrWaitBit
				return true
			}
			s = prev
		}
	}
	// Reader successor: chain admission — count it into the group, then
	// one write to its descriptor. It will chain its own successor.
	s := a.seen
	for {
		ns := rwqGroupJoin(s)
		prev := h.ctx.RCAS(group, s, ns)
		if prev == s {
			a.seen = ns
			break
		}
		s = prev
	}
	h.write(succ.Add(rwqSpin), rwqSpinGranted)
	return true
}

// releaseShared releases a shared acquisition.
func (h *RWQueueHandle) releaseShared(l ptr.Ptr, a *rwqAcq) {
	h.ctx.Fence()
	if a.queuedRead && !a.succDone {
		h.readerDequeue(l, a)
	}
	h.drainExit(l, a)
	h.pool.put(a.desc)
}

// readerDequeue removes a queued reader whose successor was not handled at
// grant time: either the queue still ends at us (CAS the tail back to
// NULL), or a successor is linking right now — wait for the link and do the
// grant-time duty late.
func (h *RWQueueHandle) readerDequeue(l ptr.Ptr, a *rwqAcq) {
	d := a.desc
	next := h.ctx.Read(d.Add(rwqNext))
	if next == ptr.Null.Word() {
		if h.ctx.RCAS(l.Add(rwqTail), a.tagged, ptr.Null.Word()) == a.tagged {
			return
		}
		iter := 0
		for next == ptr.Null.Word() {
			h.ctx.Pause(iter)
			iter++
			next = h.ctx.Read(d.Add(rwqNext))
		}
	}
	h.handleSuccessor(l, a, next)
}

// drainExit decrements the active-reader count; the reader that drains the
// group with a writer registered transfers the lock in the same rCAS and
// wakes the writer with one descriptor write.
func (h *RWQueueHandle) drainExit(l ptr.Ptr, a *rwqAcq) {
	group := l.Add(rwqGroup)
	s := a.seen
	for {
		transfer := rwqRdActive(s) == 1 && rwqWrWaiting(s)
		var ns uint64
		if transfer {
			ns = 1 << rwqWrActiveBit // group closed: the waked writer owns the lock
		} else {
			ns = s - 1<<rwqRdActiveShift
		}
		prev := h.ctx.RCAS(group, s, ns)
		if prev == s {
			if transfer {
				w := ptr.FromWord(h.poll(l.Add(rwqWake)))
				h.write(w.Add(rwqSpin), rwqSpinGranted)
			}
			return
		}
		s = prev
	}
}

// --- Writer side ---

// writerFastEligible reports whether a writer may claim the lock through
// the optimistic fast path under state s: the lock must look idle, and the
// consecutive-claim count must be under WriteBudget — the post-drain
// fast-claim window, bounded so queue-head waiters lose the claim race at
// most WriteBudget times before a queue-mediated grant resets the count
// (the reader budget's symmetric twin).
func (h *RWQueueHandle) writerFastEligible(s uint64) bool {
	return rwqRdActive(s) == 0 && !rwqWrActive(s) && !rwqWrWaiting(s) &&
		rwqWClaims(s) < uint64(h.cfg.WriteBudget)
}

// writerFastEnter computes the successor state of an optimistic claim: the
// writer bit plus the bumped claim count (stale reader grants cleared).
func writerFastEnter(s uint64) uint64 {
	c := rwqWClaims(s)
	if c < rwqGrantsMask {
		c++
	}
	return 1<<rwqWrActiveBit | c<<rwqWClaimShift
}

// acquireExcl acquires in exclusive mode, giving up at deadlineNS (0 =
// block; deadlines require the timed protocol).
func (h *RWQueueHandle) acquireExcl(l ptr.Ptr, deadlineNS int64) (*rwqAcq, bool) {
	if !h.timed {
		deadlineNS = 0
	}
	group := l.Add(rwqGroup)

	// Optimistic: an idle lock is claimed with a single rCAS, skipping the
	// enqueue round trip, for at most WriteBudget consecutive claims. The
	// first attempt assumes a pristine word; failures seed the next.
	s := uint64(0)
	for h.writerFastEligible(s) {
		if deadlineNS > 0 && h.ctx.Now() >= deadlineNS {
			return nil, false
		}
		ns := writerFastEnter(s)
		prev := h.ctx.RCAS(group, s, ns)
		if prev == s {
			h.ctx.Fence()
			return &rwqAcq{seen: ns}, true // not enqueued: release has no queue duty
		}
		s = prev
	}

	d := h.pool.get()
	if deadlineNS > 0 && h.ctx.Now() >= deadlineNS {
		h.pool.put(d)
		return nil, false
	}
	h.resetDesc(d)
	a := &rwqAcq{desc: d, tagged: d.Word() | rwqWriterTag}
	pred := h.swapTail(l, a.tagged)
	if pred != ptr.Null.Word() {
		// Link behind the predecessor and spin on our own descriptor. The
		// handoff that wakes us leaves wrActive set for us.
		p := ptr.FromWord(pred &^ rwqWriterTag)
		h.write(p.Add(rwqNext), a.tagged)
		switch h.spinDescTimed(d, deadlineNS) {
		case rwqSpinOutTimeout:
			h.pool.zombie(d)
			return nil, false
		case rwqSpinOutGranted:
			a.seen = 1 << rwqWrActiveBit // exact after every queue-mediated grant
			h.ctx.Fence()
			return a, true
		}
		// Inherited the queue head: fall through to the head loop.
	}
	if !h.writerHeadLoop(l, a, deadlineNS) {
		return nil, false
	}
	h.ctx.Fence()
	return a, true
}

// writerHeadLoop is the queue-head writer's wait: claim directly once
// idle, or register for the drain wake (wake pointer first, then the
// flag) and spin on our own descriptor. Registration commits the writer —
// under the timed protocol its spin word moves to claimed first, so its
// own deadline CAS can no longer win and the drain wake always lands.
func (h *RWQueueHandle) writerHeadLoop(l ptr.Ptr, a *rwqAcq, deadlineNS int64) bool {
	group := l.Add(rwqGroup)
	d := a.desc
	s := h.poll(group)
	iter := 0
	for {
		if !rwqWrActive(s) {
			if rwqRdActive(s) == 0 && !rwqWrWaiting(s) {
				// Queue-mediated claim: the word resets to exactly the
				// writer bit, restarting the optimistic-claim window.
				prev := h.ctx.RCAS(group, s, 1<<rwqWrActiveBit)
				if prev == s {
					a.seen = 1 << rwqWrActiveBit
					return true
				}
				s = prev
				continue
			}
			if rwqRdActive(s) > 0 && !rwqWrWaiting(s) {
				if h.timed {
					h.ctx.Write(d.Add(rwqSpin), rwqSpinClaim) // commit: no abandon past here
				}
				h.write(l.Add(rwqWake), d.Word())
				prev := h.ctx.RCAS(group, s, s|1<<rwqWrWaitBit)
				if prev == s {
					h.spinDescWait(d)
					a.seen = 1 << rwqWrActiveBit // the drain transfer installs this
					return true
				}
				s = prev
				continue
			}
		}
		if deadlineNS > 0 && h.ctx.Now() >= deadlineNS {
			h.abandonHead(l, a)
			return false
		}
		// A departing writer is between its dequeue and clearing wrActive
		// (narrow race window): back off and re-poll.
		h.ctx.Pause(iter)
		iter++
		s = h.poll(group)
	}
}

// spinDescWait waits for the granted value on a committed descriptor (the
// registered drain-wake target: no timeout can apply).
func (h *RWQueueHandle) spinDescWait(d ptr.Ptr) {
	spin := d.Add(rwqSpin)
	iter := 0
	for h.ctx.Read(spin) != rwqSpinGranted {
		h.ctx.Pause(iter)
		iter++
	}
}

// releaseIdle is the writer's release-to-idle transition: one rCAS
// clearing the writer bit, seeded with the state word the acquire
// installed. The optimistic-claim count is preserved across the release,
// so consecutive fast claims stay counted; the retry preserves any other
// bits it finds (a fresh group resets the counts on entry).
func (h *RWQueueHandle) releaseIdle(group ptr.Ptr, seed uint64) {
	s := seed
	for {
		prev := h.ctx.RCAS(group, s, s&^(uint64(1)<<rwqWrActiveBit))
		if prev == s {
			return
		}
		s = prev
	}
}

// releaseExcl releases an exclusive acquisition.
func (h *RWQueueHandle) releaseExcl(l ptr.Ptr, a *rwqAcq) {
	h.ctx.Fence()
	group := l.Add(rwqGroup)

	if a.desc == ptr.Null {
		// Optimistic claim: not in the queue, so release is just the idle
		// transition (plus the release-side zombie sweep every release
		// performs — a thread that stops acquiring must still recycle its
		// abandoned descriptors once their skip marks land).
		h.releaseIdle(group, a.seen)
		h.pool.sweep()
		return
	}

	d := a.desc
	next := h.ctx.Read(d.Add(rwqNext))
	if next == ptr.Null.Word() {
		if h.ctx.RCAS(l.Add(rwqTail), a.tagged, ptr.Null.Word()) == a.tagged {
			h.releaseIdle(group, a.seen) // queue empty: no successor to hand to
			h.pool.put(d)
			return
		}
		iter := 0
		for next == ptr.Null.Word() {
			h.ctx.Pause(iter)
			iter++
			next = h.ctx.Read(d.Add(rwqNext))
		}
	}

	if h.timed {
		var ok bool
		next, ok = h.claimNext(l, next)
		if !ok {
			h.releaseIdle(group, a.seen) // queue drained while bypassing
			h.pool.put(d)
			return
		}
	}
	succ := ptr.FromWord(next &^ rwqWriterTag)
	if next&rwqWriterTag != 0 {
		// Writer-to-writer handoff: wrActive simply stays set for the
		// successor — the entire handoff is one descriptor write. The
		// handoff is a queue-mediated grant, so it must reset the
		// optimistic-claim window: a claim count left in the group word
		// would ride the whole writer chain untouched (the successor's
		// release retry preserves bits it finds) and land in the idle
		// word, mis-counting the next episode's fast-claim budget. Grant
		// paths that already installed a bare writer bit leave the count
		// zero, so the common chain link still costs one descriptor write.
		for s := a.seen; rwqWClaims(s) != 0; {
			prev := h.ctx.RCAS(group, s, s&^(uint64(rwqGrantsMask)<<rwqWClaimShift))
			if prev == s {
				break
			}
			s = prev
		}
		h.write(succ.Add(rwqSpin), rwqSpinGranted)
		h.pool.put(d)
		return
	}
	// Writer-to-reader handoff: open a fresh group containing the
	// successor (one rCAS), then wake it (one descriptor write). The
	// successor chain-admits any reader queued behind it.
	s := a.seen
	for {
		ns := uint64(1)<<rwqRdActiveShift | uint64(1)<<rwqGrantsShift
		prev := h.ctx.RCAS(group, s, ns)
		if prev == s {
			break
		}
		s = prev
	}
	h.write(succ.Add(rwqSpin), rwqSpinGranted)
	h.pool.put(d)
}

// RWQueueProvider supplies the queued reader/writer lock.
type RWQueueProvider struct {
	Cfg RWConfig
	// Timed makes every handle speak the timed descriptor protocol
	// (required for token-API deadlines; a run-wide mode).
	Timed bool
}

// NewRWQueueProvider returns a provider with the default budgets.
func NewRWQueueProvider() *RWQueueProvider {
	return &RWQueueProvider{Cfg: DefaultRWConfig()}
}

// Name implements Provider.
func (*RWQueueProvider) Name() string { return "rw-queue" }

// Prepare implements Provider (lock state fits the lock line; descriptors
// are per-thread and allocated by NewRWHandle on each thread's own node).
func (*RWQueueProvider) Prepare(*mem.Space, []ptr.Ptr) {}

// NewHandle implements Provider.
func (p *RWQueueProvider) NewHandle(ctx api.Ctx) api.Locker {
	return p.newHandle(ctx)
}

// NewRWHandle implements RWProvider.
func (p *RWQueueProvider) NewRWHandle(ctx api.Ctx) api.RWLocker {
	return p.newHandle(ctx)
}

// NewTimedHandle implements TimedProvider.
func (p *RWQueueProvider) NewTimedHandle(ctx api.Ctx) TimedHandle {
	return rwqTimed{h: p.newHandle(ctx)}
}

// AbortableTimed implements AbortableTimedProvider for exclusive-mode
// workloads: queued writers abandon by CAS and queue-head writers pass
// headship on timeout; the committed drain-wake registration only arises
// against an active reader group, which exclusive-only transaction runs
// never form.
func (*RWQueueProvider) AbortableTimed() {}

func (p *RWQueueProvider) newHandle(ctx api.Ctx) *RWQueueHandle {
	if p.Timed {
		return NewTimedRWQueueHandle(ctx, p.Cfg)
	}
	return NewRWQueueHandle(ctx, p.Cfg)
}
