package locks

import (
	"alock/internal/api"
	"alock/internal/ptr"
)

// MCSLockWords is the allocation size of an RDMA MCS lock: one cache line
// (word 0 holds the queue tail).
const MCSLockWords = 8

// Descriptor layout for the RDMA MCS lock: word 0 is the spin flag, word 1
// is the next pointer. Padded to a cache line.
//
// Spin-flag protocol: the flag starts at mcsWaiting; in the paper's
// protocol the granter simply writes mcsGranted. Under the timed protocol
// every transition out of mcsWaiting is an rCAS (the lock is all-RDMA, so
// waiter and granter share the remote RMW class and the CASes are mutually
// atomic): a waiter whose deadline passes CASes to mcsAbandoned and leaves,
// and the granter that later bypasses the dead descriptor marks it
// mcsSkipped so the owning thread can recycle it.
const (
	mcsLocked = 0
	mcsNext   = 1

	// MCSDescWords is the descriptor allocation size.
	MCSDescWords = 8

	mcsGranted   = 0
	mcsWaiting   = 1
	mcsAbandoned = 2
	mcsSkipped   = 3
)

// MCSHandle is the paper's second competitor: the classic Mellor-Crummey &
// Scott queue lock ported to RDMA with an RDMA-aware queue (Section 6).
// Like the spinlock competitor it performs every access — enqueue,
// linking, passing, and even the spin on its own descriptor — through RDMA
// verbs, using the loopback path for memory on its own node.
//
// Descriptors queue in distributed memory: each waiter's descriptor lives
// on the waiter's own node, so the spin generates loopback traffic on the
// waiter's own RNIC rather than network traffic to the lock's home node —
// which is why MCS tolerates high contention far better than the spinlock
// (Section 6.2) while still paying verb latency for everything.
type MCSHandle struct {
	ctx api.Ctx
	// timed selects the CAS-based handoff protocol that tolerates waiters
	// abandoning descriptors on deadline; it is a run-wide mode (granters
	// and waiters must agree). Off, the lock is the paper's byte-for-byte.
	timed bool
	pool  descPool
	held  []mcsHeld // outstanding Lock/Unlock-facade acquisitions
}

type mcsHeld struct {
	lock ptr.Ptr
	desc ptr.Ptr
}

var _ api.Locker = (*MCSHandle)(nil)

// NewMCSHandle allocates the thread's first queue descriptor on its own
// node; further descriptors are allocated only for overlapping holds.
func NewMCSHandle(ctx api.Ctx) *MCSHandle {
	h := &MCSHandle{ctx: ctx, pool: descPool{
		ctx: ctx, words: MCSDescWords, spin: mcsLocked, skip: mcsSkipped,
	}}
	h.pool.put(ctx.Alloc(MCSDescWords, MCSDescWords))
	return h
}

// NewTimedMCSHandle returns a handle speaking the timed handoff protocol.
func NewTimedMCSHandle(ctx api.Ctx) *MCSHandle {
	h := NewMCSHandle(ctx)
	h.timed = true
	return h
}

// Zombies reports abandoned descriptors still awaiting their skip mark.
func (h *MCSHandle) Zombies() int { return h.pool.zombies() }

// Lock enqueues onto the lock's tail word and waits to reach the head.
func (h *MCSHandle) Lock(l ptr.Ptr) {
	d, _ := h.AcquireTimedDesc(l, 0)
	h.held = append(h.held, mcsHeld{lock: l, desc: d})
}

// Unlock dequeues: if no successor is queued the tail is CASed back to
// NULL; otherwise we wait for the successor's link and pass the lock by
// clearing its spin flag.
func (h *MCSHandle) Unlock(l ptr.Ptr) {
	for i := len(h.held) - 1; i >= 0; i-- {
		if h.held[i].lock == l {
			d := h.held[i].desc
			h.held = append(h.held[:i], h.held[i+1:]...)
			h.ReleaseDesc(l, d)
			return
		}
	}
	panic("locks: MCS Unlock without matching Lock")
}

// AcquireTimedDesc enqueues onto the lock's tail and waits to reach the
// head, giving up once engine time reaches deadlineNS (0 = block; deadlines
// require the timed protocol). On success it returns the acquisition's
// descriptor for ReleaseDesc; on timeout the descriptor has been CAS-marked
// abandoned in place — the granter patches the queue around it — and
// nothing is held.
func (h *MCSHandle) AcquireTimedDesc(l ptr.Ptr, deadlineNS int64) (ptr.Ptr, bool) {
	ctx := h.ctx
	if !h.timed {
		deadlineNS = 0
	}
	d := h.pool.get()
	if deadlineNS > 0 && ctx.Now() >= deadlineNS {
		h.pool.put(d)
		return ptr.Null, false
	}

	// Reset the descriptor with shared-memory writes: the descriptor is
	// the thread's own scratch (on its own node) and is not yet linked
	// into any queue; cross-class 8-byte writes are atomic anyway
	// (Table 1), so this is safe and is how an optimized port prepares
	// its metadata. All *shared* queue state below goes through verbs.
	ctx.Write(d.Add(mcsNext), ptr.Null.Word())
	ctx.Write(d.Add(mcsLocked), mcsWaiting)

	// Swap onto the tail (CAS-retry loop: RDMA has no unconditional swap).
	expected := ptr.Null.Word()
	for {
		prev := ctx.RCAS(l, expected, d.Word())
		if prev == expected {
			break
		}
		expected = prev
	}
	if expected == ptr.Null.Word() {
		ctx.Fence()
		return d, true // queue was empty: lock acquired
	}

	// Link behind the predecessor, then spin on our own descriptor via
	// loopback reads until the predecessor passes the lock.
	prev := ptr.FromWord(expected)
	ctx.RWrite(prev.Add(mcsNext), d.Word())
	for ctx.RRead(d.Add(mcsLocked)) == mcsWaiting {
		// Each poll is a full loopback verb; no extra pacing needed.
		if deadlineNS > 0 && ctx.Now() >= deadlineNS {
			// Deadline passed: abandon the descriptor unless the grant
			// races the timeout and wins (both transitions are rCAS, so
			// exactly one wins).
			if ctx.RCAS(d.Add(mcsLocked), mcsWaiting, mcsAbandoned) == mcsWaiting {
				h.pool.zombie(d)
				return ptr.Null, false
			}
			break // granted just in time
		}
	}
	ctx.Fence()
	return d, true
}

// ReleaseDesc releases an acquisition made by AcquireTimedDesc.
func (h *MCSHandle) ReleaseDesc(l ptr.Ptr, d ptr.Ptr) {
	ctx := h.ctx
	ctx.Fence()

	if ctx.RCAS(l, d.Word(), ptr.Null.Word()) == d.Word() {
		h.pool.put(d)
		return
	}
	for ctx.RRead(d.Add(mcsNext)) == ptr.Null.Word() {
	}
	succ := ptr.FromWord(ctx.RRead(d.Add(mcsNext)))
	if !h.timed {
		ctx.RWrite(succ.Add(mcsLocked), mcsGranted)
		h.pool.put(d)
		return
	}
	for {
		if ctx.RCAS(succ.Add(mcsLocked), mcsWaiting, mcsGranted) == mcsWaiting {
			break // handed off
		}
		// Abandoned successor: patch the queue around its descriptor —
		// either the queue ends there (tail CAS back to NULL releases the
		// lock) or we move on to its own successor, marking the dead
		// descriptor skipped once its next word is no longer needed.
		next := ctx.RRead(succ.Add(mcsNext))
		if next == ptr.Null.Word() {
			if ctx.RCAS(l, succ.Word(), ptr.Null.Word()) == succ.Word() {
				ctx.RWrite(succ.Add(mcsLocked), mcsSkipped)
				h.pool.put(d)
				return // queue drained; lock released
			}
			for next == ptr.Null.Word() {
				next = ctx.RRead(succ.Add(mcsNext))
			}
		}
		ctx.RWrite(succ.Add(mcsLocked), mcsSkipped)
		succ = ptr.FromWord(next)
	}
	h.pool.put(d)
}
