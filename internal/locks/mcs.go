package locks

import (
	"alock/internal/api"
	"alock/internal/ptr"
)

// MCSLockWords is the allocation size of an RDMA MCS lock: one cache line
// (word 0 holds the queue tail).
const MCSLockWords = 8

// Descriptor layout for the RDMA MCS lock: word 0 is the spin flag
// (1 = waiting, 0 = lock passed), word 1 is the next pointer. Padded to a
// cache line.
const (
	mcsLocked = 0
	mcsNext   = 1

	// MCSDescWords is the descriptor allocation size.
	MCSDescWords = 8
)

// MCSHandle is the paper's second competitor: the classic Mellor-Crummey &
// Scott queue lock ported to RDMA with an RDMA-aware queue (Section 6).
// Like the spinlock competitor it performs every access — enqueue,
// linking, passing, and even the spin on its own descriptor — through RDMA
// verbs, using the loopback path for memory on its own node.
//
// Descriptors queue in distributed memory: each waiter's descriptor lives
// on the waiter's own node, so the spin generates loopback traffic on the
// waiter's own RNIC rather than network traffic to the lock's home node —
// which is why MCS tolerates high contention far better than the spinlock
// (Section 6.2) while still paying verb latency for everything.
type MCSHandle struct {
	ctx  api.Ctx
	desc ptr.Ptr
}

var _ api.Locker = (*MCSHandle)(nil)

// NewMCSHandle allocates the thread's queue descriptor on its own node.
func NewMCSHandle(ctx api.Ctx) *MCSHandle {
	d := ctx.Alloc(MCSDescWords, MCSDescWords)
	return &MCSHandle{ctx: ctx, desc: d}
}

// Lock enqueues onto the lock's tail word and waits to reach the head.
func (h *MCSHandle) Lock(l ptr.Ptr) {
	ctx := h.ctx
	d := h.desc

	// Reset the descriptor with shared-memory writes: the descriptor is
	// the thread's own scratch (on its own node) and is not yet linked
	// into any queue; cross-class 8-byte writes are atomic anyway
	// (Table 1), so this is safe and is how an optimized port prepares
	// its metadata. All *shared* queue state below goes through verbs.
	ctx.Write(d.Add(mcsNext), ptr.Null.Word())
	ctx.Write(d.Add(mcsLocked), 1)

	// Swap onto the tail (CAS-retry loop: RDMA has no unconditional swap).
	expected := ptr.Null.Word()
	for {
		prev := ctx.RCAS(l, expected, d.Word())
		if prev == expected {
			break
		}
		expected = prev
	}
	if expected == ptr.Null.Word() {
		ctx.Fence()
		return // queue was empty: lock acquired
	}

	// Link behind the predecessor, then spin on our own descriptor via
	// loopback reads until the predecessor passes the lock.
	prev := ptr.FromWord(expected)
	ctx.RWrite(prev.Add(mcsNext), d.Word())
	for ctx.RRead(d.Add(mcsLocked)) == 1 {
		// Each poll is a full loopback verb; no extra pacing needed.
	}
	ctx.Fence()
}

// Unlock dequeues: if no successor is queued the tail is CASed back to
// NULL; otherwise we wait for the successor's link and pass the lock by
// clearing its spin flag.
func (h *MCSHandle) Unlock(l ptr.Ptr) {
	ctx := h.ctx
	d := h.desc
	ctx.Fence()

	if ctx.RCAS(l, d.Word(), ptr.Null.Word()) == d.Word() {
		return
	}
	for ctx.RRead(d.Add(mcsNext)) == ptr.Null.Word() {
	}
	succ := ptr.FromWord(ctx.RRead(d.Add(mcsNext)))
	ctx.RWrite(succ.Add(mcsLocked), 0)
}
