package locks

import "testing"

// mkState assembles a state word from fields (active readers, writer bit,
// waiting writers/readers, grants, phase).
func mkState(rdActive, wrWait, rdWait, grants uint64, wrActive, writePhase bool) uint64 {
	s := rdActive<<rwRdActiveShift | wrWait<<rwWrWaitShift |
		rdWait<<rwRdWaitShift | grants<<rwGrantsShift
	if wrActive {
		s |= 1 << rwWrActiveBit
	}
	if writePhase {
		s |= 1 << rwPhaseBit
	}
	return s
}

func TestReaderEnterBudgetAccounting(t *testing.T) {
	h := &RWHandle{budgeted: true, cfg: RWConfig{ReadBudget: 4, WriteBudget: 2}}

	// With a writer waiting, each admission counts; the budget-exhausting
	// one flips the phase and zeroes the count.
	s := mkState(0, 1, 0, 2, false, false)
	ns := h.readerEnter(s, false)
	if rwRdActive(ns) != 1 || rwGrants(ns) != 3 || rwWritePhase(ns) {
		t.Fatalf("accounting admission wrong: rd=%d grants=%d write=%v",
			rwRdActive(ns), rwGrants(ns), rwWritePhase(ns))
	}
	s = mkState(0, 1, 0, 3, false, false)
	ns = h.readerEnter(s, false)
	if rwGrants(ns) != 0 || !rwWritePhase(ns) {
		t.Fatalf("budget exhaustion did not flip phase: grants=%d write=%v",
			rwGrants(ns), rwWritePhase(ns))
	}
}

// Regression: an uncontended admission must clear the grants field, or a
// stale count from the previous contention episode makes the next phase
// flip after far fewer admissions than the configured budget.
func TestEnterClearsStaleGrants(t *testing.T) {
	h := &RWHandle{budgeted: true, cfg: RWConfig{ReadBudget: 4, WriteBudget: 2}}

	s := mkState(0, 0, 0, 3, false, false) // grants carried over, no writer waiting
	ns := h.readerEnter(s, false)
	if rwGrants(ns) != 0 {
		t.Fatalf("reader admission carried %d stale grants into the next episode", rwGrants(ns))
	}

	s = mkState(0, 1, 0, 1, false, true) // writer entering, no readers waiting
	ns = h.writerEnter(s)
	if rwGrants(ns) != 0 {
		t.Fatalf("writer admission carried %d stale grants into the next episode", rwGrants(ns))
	}
	if !rwWrActive(ns) || rwWrWait(ns) != 0 {
		t.Fatalf("writer admission malformed: active=%v wait=%d", rwWrActive(ns), rwWrWait(ns))
	}
}

func TestWriterEnterBudgetYieldsPhase(t *testing.T) {
	h := &RWHandle{budgeted: true, cfg: RWConfig{ReadBudget: 4, WriteBudget: 2}}

	// Readers waiting, one writer grant already spent: this admission
	// exhausts WriteBudget=2 and yields the phase back to readers.
	s := mkState(0, 1, 3, 1, false, true)
	ns := h.writerEnter(s)
	if rwWritePhase(ns) || rwGrants(ns) != 0 {
		t.Fatalf("write budget exhaustion did not yield: write=%v grants=%d",
			rwWritePhase(ns), rwGrants(ns))
	}
	if rwRdWait(ns) != 3 {
		t.Fatalf("waiting readers corrupted: %d", rwRdWait(ns))
	}
}
