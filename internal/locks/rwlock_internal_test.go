package locks

import (
	"testing"

	"alock/internal/api"
	"alock/internal/model"
	"alock/internal/sim"
)

// mkState assembles a state word from fields (active readers, writer bit,
// waiting writers/readers, grants, phase).
func mkState(rdActive, wrWait, rdWait, grants uint64, wrActive, writePhase bool) uint64 {
	s := rdActive<<rwRdActiveShift | wrWait<<rwWrWaitShift |
		rdWait<<rwRdWaitShift | grants<<rwGrantsShift
	if wrActive {
		s |= 1 << rwWrActiveBit
	}
	if writePhase {
		s |= 1 << rwPhaseBit
	}
	return s
}

func TestReaderEnterBudgetAccounting(t *testing.T) {
	h := &RWHandle{budgeted: true, cfg: RWConfig{ReadBudget: 4, WriteBudget: 2}}

	// With a writer waiting, each admission counts; the budget-exhausting
	// one flips the phase and zeroes the count.
	s := mkState(0, 1, 0, 2, false, false)
	ns := h.readerEnter(s, false)
	if rwRdActive(ns) != 1 || rwGrants(ns) != 3 || rwWritePhase(ns) {
		t.Fatalf("accounting admission wrong: rd=%d grants=%d write=%v",
			rwRdActive(ns), rwGrants(ns), rwWritePhase(ns))
	}
	s = mkState(0, 1, 0, 3, false, false)
	ns = h.readerEnter(s, false)
	if rwGrants(ns) != 0 || !rwWritePhase(ns) {
		t.Fatalf("budget exhaustion did not flip phase: grants=%d write=%v",
			rwGrants(ns), rwWritePhase(ns))
	}
}

// Regression: an uncontended admission must clear the grants field, or a
// stale count from the previous contention episode makes the next phase
// flip after far fewer admissions than the configured budget.
func TestEnterClearsStaleGrants(t *testing.T) {
	h := &RWHandle{budgeted: true, cfg: RWConfig{ReadBudget: 4, WriteBudget: 2}}

	s := mkState(0, 0, 0, 3, false, false) // grants carried over, no writer waiting
	ns := h.readerEnter(s, false)
	if rwGrants(ns) != 0 {
		t.Fatalf("reader admission carried %d stale grants into the next episode", rwGrants(ns))
	}

	s = mkState(0, 1, 0, 1, false, true) // writer entering, no readers waiting
	ns = h.writerEnter(s)
	if rwGrants(ns) != 0 {
		t.Fatalf("writer admission carried %d stale grants into the next episode", rwGrants(ns))
	}
	if !rwWrActive(ns) || rwWrWait(ns) != 0 {
		t.Fatalf("writer admission malformed: active=%v wait=%d", rwWrActive(ns), rwWrWait(ns))
	}
}

// A handle that acquires lock A, then lock B, then unlocks A carries B's
// installed state in held when Unlock(A) runs: the optimistic first rCAS
// uses a stale expected value, fails, and must recover through the retry
// path (rwlock.go's Unlock loop) without corrupting either lock.
func TestUnlockStaleHeldRetries(t *testing.T) {
	// Observations are collected inside the simulated thread and asserted
	// after e.Run: a t.Fatalf inside a spawned thread would skip the
	// engine's scheduler handoff and deadlock the test binary.
	var heldA, heldB, aAfterUnlockA, bAfterUnlockA, bAfterUnlockB uint64
	e := sim.New(1, 1<<16, model.Uniform(5), 1)
	e.Spawn(0, func(ctx api.Ctx) {
		h := NewRWBudgetHandle(ctx, DefaultRWConfig())
		a := ctx.Alloc(RWLockWords, RWLockWords)
		b := ctx.Alloc(RWLockWords, RWLockWords)
		// Seed B with a residual phase bit (as a drained write phase leaves
		// behind) so B's acquire installs a state word different from A's.
		ctx.RCAS(b, 0, 1<<rwPhaseBit)

		h.Lock(a)
		heldA = h.held
		h.Lock(b)
		heldB = h.held

		h.Unlock(a) // first rCAS expects B's state: stale, must retry
		aAfterUnlockA = ctx.Read(a)
		bAfterUnlockA = ctx.Read(b)
		h.Unlock(b)
		bAfterUnlockB = ctx.Read(b)
	})
	e.Run(1 << 40)

	if heldB == heldA {
		t.Fatalf("test is vacuous: B's acquire installed A's state %#x", heldB)
	}
	if rwWrActive(aAfterUnlockA) {
		t.Errorf("A still writer-locked after stale-held unlock: %#x", aAfterUnlockA)
	}
	if !rwWrActive(bAfterUnlockA) {
		t.Errorf("B lost its writer while A was unlocked: %#x", bAfterUnlockA)
	}
	if rwWrActive(bAfterUnlockB) {
		t.Errorf("B still writer-locked after unlock: %#x", bAfterUnlockB)
	}
}

func TestWriterEnterBudgetYieldsPhase(t *testing.T) {
	h := &RWHandle{budgeted: true, cfg: RWConfig{ReadBudget: 4, WriteBudget: 2}}

	// Readers waiting, one writer grant already spent: this admission
	// exhausts WriteBudget=2 and yields the phase back to readers.
	s := mkState(0, 1, 3, 1, false, true)
	ns := h.writerEnter(s)
	if rwWritePhase(ns) || rwGrants(ns) != 0 {
		t.Fatalf("write budget exhaustion did not yield: write=%v grants=%d",
			rwWritePhase(ns), rwGrants(ns))
	}
	if rwRdWait(ns) != 3 {
		t.Fatalf("waiting readers corrupted: %d", rwRdWait(ns))
	}
}
