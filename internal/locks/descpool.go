// descpool.go: the per-thread queue-descriptor pool shared by the queued
// locks. Descriptors are allocated per acquisition (so one thread can hold
// several locks), recycled through a free list, and — under the timed
// protocol — parked on a zombie list when abandoned on deadline until the
// granter that patched the queue around them writes the skip mark into
// their spin word, at which point the owner may reuse them.
package locks

import (
	"alock/internal/api"
	"alock/internal/ptr"
)

// descPool manages one thread's descriptors for one queued lock algorithm.
type descPool struct {
	ctx   api.Ctx
	words int    // allocation size and alignment, in words
	spin  uint64 // offset of the word the granter writes the skip mark to
	skip  uint64 // the skip-mark value releasing a zombie to its owner
	free  []ptr.Ptr
	zombs []ptr.Ptr
}

// sweep recycles zombies whose granter has marked them skipped. It runs on
// both acquire and release: sweeping only on acquire would let a thread
// that stops acquiring keep its skipped descriptors parked forever.
func (p *descPool) sweep() {
	if len(p.zombs) == 0 {
		return
	}
	kept := p.zombs[:0]
	for _, z := range p.zombs {
		// Our own descriptor on our own node: a shared-memory read is
		// atomic with the granter's skip mark in either class.
		if p.ctx.Read(z.Add(p.spin)) == p.skip {
			p.free = append(p.free, z)
		} else {
			kept = append(kept, z)
		}
	}
	p.zombs = kept
}

// get pops a free descriptor, first recycling zombies whose granter has
// marked them skipped, allocating fresh memory only when every descriptor
// is in use or still awaiting its skip mark.
func (p *descPool) get() ptr.Ptr {
	p.sweep()
	if n := len(p.free); n > 0 {
		d := p.free[n-1]
		p.free = p.free[:n-1]
		return d
	}
	return p.ctx.Alloc(p.words, p.words)
}

// put returns a released descriptor to the free list (Null is a no-op, for
// fast-path acquisitions that never took a descriptor) and sweeps the
// zombie list: a release is the last pool interaction a winding-down
// thread performs, so any descriptor whose skip mark has landed by then is
// recycled even if the thread never acquires again.
func (p *descPool) put(d ptr.Ptr) {
	if d != ptr.Null {
		p.free = append(p.free, d)
	}
	p.sweep()
}

// zombies reports how many descriptors are still parked awaiting their
// skip mark (the drain-recycle assertions in locktest read it through the
// handles' Zombies methods).
func (p *descPool) zombies() int { return len(p.zombs) }

// zombie parks an abandoned descriptor until its skip mark lands.
func (p *descPool) zombie(d ptr.Ptr) {
	p.zombs = append(p.zombs, d)
}
