package locks

import (
	"testing"
	"time"

	"alock/internal/api"
	"alock/internal/model"
	"alock/internal/ptr"
	"alock/internal/sim"
)

// mkGroup assembles an rw-queue group word from fields.
func mkGroup(rdActive, grants uint64, wrActive, wrWaiting bool) uint64 {
	s := rdActive<<rwqRdActiveShift | grants<<rwqGrantsShift
	if wrActive {
		s |= 1 << rwqWrActiveBit
	}
	if wrWaiting {
		s |= 1 << rwqWrWaitBit
	}
	return s
}

func TestReaderFastPathBudgetGate(t *testing.T) {
	h := &RWQueueHandle{cfg: RWConfig{ReadBudget: 4, WriteBudget: 2}}

	// An open group under budget admits through the fast path.
	if !h.readerFastEligible(mkGroup(2, 2, false, false)) {
		t.Error("open group under budget rejected")
	}
	// The budget closes the fast path: bounded same-class admission runs
	// keep a queued writer's wait finite.
	if h.readerFastEligible(mkGroup(4, 4, false, false)) {
		t.Error("fast path open past ReadBudget")
	}
	// A writer — active or registered for the drain wake — bars barging.
	if h.readerFastEligible(mkGroup(0, 0, true, false)) {
		t.Error("fast path open past an active writer")
	}
	if h.readerFastEligible(mkGroup(2, 1, false, true)) {
		t.Error("fast path open past a registered writer")
	}
	// The admission count gates the fast path even on an idle word: a
	// drained group's budget carries to the next fast-path episode.
	if h.readerFastEligible(mkGroup(0, 4, false, false)) {
		t.Error("fast path open on an idle word with the budget spent")
	}

	// Joining an open group counts the admission.
	ns := h.readerFastEnter(mkGroup(2, 2, false, false))
	if rwqRdActive(ns) != 3 || rwqGrants(ns) != 3 {
		t.Fatalf("group join malformed: rd=%d grants=%d", rwqRdActive(ns), rwqGrants(ns))
	}
}

// TestReaderBudgetRidesAcrossDrain pins the ReadBudget asymmetry fix with
// the pattern that exposed it: an alternating stream of lone readers, each
// entering an idle lock, draining, and re-entering. Before the fix a fresh
// group reset the admission count, so the stream barged through the fast
// path forever and a queued writer's ReadBudget bound held only within one
// sustained group. Now the count rides the drained word — the writer claim
// count's symmetric twin — so the stream spends exactly ReadBudget fast
// admissions before it must queue, and only a queue-mediated group open
// restarts the window.
func TestReaderBudgetRidesAcrossDrain(t *testing.T) {
	h := &RWQueueHandle{cfg: RWConfig{ReadBudget: 4, WriteBudget: 2}}

	s := uint64(0)
	entries := 0
	for h.readerFastEligible(s) {
		s = h.readerFastEnter(s)
		if rwqRdActive(s) != 1 {
			t.Fatalf("entry %d malformed: rd=%d (s=%#x)", entries+1, rwqRdActive(s), s)
		}
		entries++
		if entries > 4 {
			t.Fatal("alternating reader stream barged past ReadBudget")
		}
		s -= 1 << rwqRdActiveShift // drainExit, no writer waiting: count rides
	}
	if entries != 4 {
		t.Fatalf("fast path closed after %d admissions, want ReadBudget=4", entries)
	}

	// A queue-mediated group open resets both budget counts: the head is
	// the first admission and the fast-path window reopens behind it.
	ns := rwqGroupOpen(s | 2<<rwqWClaimShift)
	if rwqRdActive(ns) != 1 || rwqGrants(ns) != 1 || rwqWClaims(ns) != 0 {
		t.Fatalf("queue-mediated open malformed: rd=%d grants=%d claims=%d",
			rwqRdActive(ns), rwqGrants(ns), rwqWClaims(ns))
	}
	if !h.readerFastEligible(ns) {
		t.Error("fast path still closed after a queue-mediated group open")
	}
}

// TestWriterFastClaimBudgetGate pins the writer-side symmetry: the
// post-drain fast-claim window admits optimistic writer claims only while
// the consecutive-claim count is under WriteBudget, the count rides the
// state word across claim/release cycles, and every queue-mediated grant
// resets it.
func TestWriterFastClaimBudgetGate(t *testing.T) {
	h := &RWQueueHandle{cfg: RWConfig{ReadBudget: 4, WriteBudget: 2}}

	// Claims accumulate: claim -> release-to-idle -> claim, WriteBudget
	// times, then the window closes and the writer must queue.
	s := uint64(0)
	for i := 0; i < 2; i++ {
		if !h.writerFastEligible(s) {
			t.Fatalf("claim %d rejected under budget (s=%#x)", i+1, s)
		}
		s = writerFastEnter(s)
		if !rwqWrActive(s) || rwqWClaims(s) != uint64(i+1) {
			t.Fatalf("claim %d malformed: s=%#x", i+1, s)
		}
		if h.writerFastEligible(s) {
			t.Fatal("fast path open while a writer holds")
		}
		s &^= uint64(1) << rwqWrActiveBit // release-to-idle preserves the count
	}
	if h.writerFastEligible(s) {
		t.Fatalf("fast path open past WriteBudget (s=%#x)", s)
	}

	// A queue-mediated writer grant installs exactly the writer bit,
	// restarting the window.
	if got := uint64(1) << rwqWrActiveBit; rwqWClaims(got) != 0 || !h.writerFastEligible(got&^(1<<rwqWrActiveBit)) {
		t.Fatal("queue-mediated grant did not reset the claim window")
	}

	// A fresh reader group resets the count too: reader episodes end the
	// consecutive-claim run.
	ns := h.readerFastEnter(s)
	if rwqWClaims(ns) != 0 {
		t.Fatalf("fresh reader group kept writer claims: s=%#x", ns)
	}

	// Stale reader grants on the idle word do not gate writer claims.
	stale := mkGroup(0, 4, false, false)
	if !h.writerFastEligible(stale) {
		t.Fatal("stale reader grants closed the writer fast path")
	}
	if ns := writerFastEnter(stale); rwqGrants(ns) != 0 {
		t.Fatalf("writer claim kept stale reader grants: %#x", ns)
	}
}

func TestWriterFastClaimSaturates(t *testing.T) {
	s := uint64(rwqGrantsMask) << rwqWClaimShift // count at field width
	ns := writerFastEnter(s)
	if rwqWClaims(ns) != rwqGrantsMask {
		t.Fatalf("claim count overflowed: %#x", ns)
	}
	if rwqRdActive(ns) != 0 || !rwqWrActive(ns) {
		t.Fatalf("saturated claim corrupted the word: %#x", ns)
	}
}

func TestGroupJoinSaturatesGrants(t *testing.T) {
	// Queued FIFO readers are admitted past the budget (they waited their
	// turn), so the count must saturate at its field width instead of
	// overflowing into the writer bits.
	ns := rwqGroupJoin(mkGroup(300, rwqGrantsMask, false, false))
	if rwqRdActive(ns) != 301 {
		t.Fatalf("rdActive = %d", rwqRdActive(ns))
	}
	if rwqGrants(ns) != rwqGrantsMask {
		t.Fatalf("grants overflowed: %d", rwqGrants(ns))
	}
	if rwqWrActive(ns) || rwqWrWaiting(ns) {
		t.Fatal("grants overflow corrupted the writer bits")
	}
}

// TestWriterChainResetsClaimCount pins the WriteBudget exactness fix: a
// writer→writer handoff is a queue-mediated grant, so it must reset the
// optimistic-claim count (group-word bits 26..33). Before the fix the
// handoff never touched the group word and releaseIdle's retry loop
// preserves any bits it finds, so a claim count present when a writer
// chain formed rode every handoff untouched and landed in the idle word —
// the fast-claim window of the next episode started mis-counted and the
// WriteBudget bound held only per-episode, not exactly. The test plants a
// claim count at the head of a two-writer chain (modeling a grant path
// that leaves the count behind) and asserts the chain cannot carry it out.
func TestWriterChainResetsClaimCount(t *testing.T) {
	e := sim.New(1, 1<<18, model.Uniform(5), 1)
	l := e.Space().AllocLine(0)
	group := l.Add(rwqGroup)
	cfg := RWConfig{ReadBudget: 16, WriteBudget: 2}
	planted := uint64(1)<<rwqWrActiveBit | uint64(cfg.WriteBudget)<<rwqWClaimShift

	var afterChain uint64
	var fastDesc ptr.Ptr = ptr.FromWord(^uint64(0))

	// W0 fast-claims and holds long enough for a two-writer queue to form.
	e.Spawn(0, func(ctx api.Ctx) {
		h := NewRWQueueHandle(ctx, cfg)
		a, _ := h.acquireExcl(l, 0)
		ctx.Work(30 * time.Microsecond)
		h.releaseExcl(l, a)
	})
	// W1 queues (head). Once granted, the test plants a claim count at the
	// chain head — word and seen both, as a grant path that failed to reset
	// the count would leave them — then hands off to W2 (w→w).
	e.Spawn(0, func(ctx api.Ctx) {
		ctx.Work(5 * time.Microsecond)
		h := NewRWQueueHandle(ctx, cfg)
		a, _ := h.acquireExcl(l, 0)
		if a.desc == ptr.Null {
			t.Error("W1 took the fast path; the schedule needs it queued")
		}
		ctx.Write(group, planted)
		a.seen = planted
		ctx.Work(5 * time.Microsecond)
		h.releaseExcl(l, a)
	})
	// W2 queues behind W1 and is granted by the w→w handoff; its release
	// drains the queue to idle.
	e.Spawn(0, func(ctx api.Ctx) {
		ctx.Work(10 * time.Microsecond)
		h := NewRWQueueHandle(ctx, cfg)
		a, _ := h.acquireExcl(l, 0)
		if a.desc == ptr.Null {
			t.Error("W2 took the fast path; the schedule needs it queued")
		}
		ctx.Work(2 * time.Microsecond)
		h.releaseExcl(l, a)
	})
	// After the chain drains, the planted count must be gone: the idle word
	// is claim-free and a fresh writer claims through the fast path.
	e.Spawn(0, func(ctx api.Ctx) {
		ctx.Work(100 * time.Microsecond)
		afterChain = ctx.Read(group)
		h := NewRWQueueHandle(ctx, cfg)
		a, _ := h.acquireExcl(l, 0)
		fastDesc = a.desc
		h.releaseExcl(l, a)
	})
	e.Run(1 << 40)

	if got := rwqWClaims(afterChain); got != 0 {
		t.Errorf("claim count %d survived the writer chain into the idle word (group=%#x)",
			got, afterChain)
	}
	if fastDesc != ptr.Null {
		t.Error("fresh writer was denied the fast-claim window after the chain")
	}
}
