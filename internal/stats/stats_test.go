package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyHist(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty hist not all-zero")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile != 0")
	}
	if h.CDF() != nil {
		t.Fatal("empty CDF not nil")
	}
}

func TestSingleSample(t *testing.T) {
	var h Hist
	h.Add(1234)
	if h.Count() != 1 || h.Min() != 1234 || h.Max() != 1234 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	if h.Mean() != 1234 {
		t.Fatalf("mean = %f", h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 1234 {
			t.Fatalf("Quantile(%f) = %d", q, got)
		}
	}
}

func TestSmallExactValues(t *testing.T) {
	// Values below 16 are bucketed exactly.
	var h Hist
	for v := int64(0); v < 16; v++ {
		h.Add(v)
	}
	if h.Quantile(0.001) != 0 || h.Max() != 15 {
		t.Fatal("small-value bucketing broken")
	}
}

func TestQuantileAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var h Hist
	var vals []int64
	for i := 0; i < 100000; i++ {
		// Log-uniform over 1ns..100ms, like a latency mixture.
		v := int64(halfToOne()*float64(uint64(1)<<r.Intn(27))) + 1
		h.Add(v)
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999} {
		exact := QuantileOfSorted(vals, q)
		approx := h.Quantile(q)
		relErr := absF(float64(approx-exact)) / float64(exact)
		if relErr > 0.10 {
			t.Errorf("q=%v exact=%d approx=%d relErr=%.3f", q, exact, approx, relErr)
		}
	}
}

// halfToOne returns a pseudo-random float in [0.5, 1) from a package-level
// rng — small helper to keep the accuracy test log-uniform.
var mathRng = rand.New(rand.NewSource(7))

func halfToOne() float64 { return 0.5 + mathRng.Float64()/2 }

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestMerge(t *testing.T) {
	var a, b Hist
	for i := int64(1); i <= 100; i++ {
		a.Add(i * 10)
	}
	for i := int64(1); i <= 100; i++ {
		b.Add(i * 1000)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 10 || a.Max() != 100000 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	wantMean := float64(10*5050+1000*5050) / 200
	if absF(a.Mean()-wantMean) > 1e-6 {
		t.Fatalf("merged mean = %f, want %f", a.Mean(), wantMean)
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	var a, b Hist
	b.Add(5)
	b.Add(7)
	a.Merge(&b)
	if a.Count() != 2 || a.Min() != 5 || a.Max() != 7 {
		t.Fatal("merge into empty broken")
	}
	var c Hist
	a.Merge(&c) // merging empty is a no-op
	if a.Count() != 2 {
		t.Fatal("merging empty changed count")
	}
}

func TestCDFMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var h Hist
	for i := 0; i < 10000; i++ {
		h.Add(int64(r.Intn(1_000_000)))
	}
	pts := h.CDF()
	if len(pts) == 0 {
		t.Fatal("no CDF points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].ValueNS < pts[i-1].ValueNS {
			t.Fatal("CDF values not sorted")
		}
		if pts[i].F < pts[i-1].F {
			t.Fatal("CDF fractions not monotone")
		}
	}
	if pts[len(pts)-1].F != 1.0 {
		t.Fatalf("final CDF fraction = %f", pts[len(pts)-1].F)
	}
	if pts[len(pts)-1].ValueNS != h.Max() {
		t.Fatal("final CDF point not pinned to max")
	}
}

func TestSummary(t *testing.T) {
	var h Hist
	for i := int64(1); i <= 1000; i++ {
		h.Add(i)
	}
	s := h.Summarize()
	if s.Count != 1000 || s.MinNS != 1 || s.MaxNS != 1000 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50NS < 450 || s.P50NS > 550 {
		t.Fatalf("p50 = %d", s.P50NS)
	}
	if s.P99NS < 900 || s.P99NS > 1000 {
		t.Fatalf("p99 = %d", s.P99NS)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestNegativeClamped(t *testing.T) {
	var h Hist
	h.Add(-5)
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatal("negative sample not clamped to 0")
	}
}

// Property: for any sample set, histogram quantiles are within one bucket
// width (~6%) of exact quantiles, and min/max/count/mean are exact.
func TestQuickHistVsExact(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Hist
		vals := make([]int64, len(raw))
		var sum int64
		for i, r := range raw {
			v := int64(r)
			vals[i] = v
			sum += v
			h.Add(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		if h.Count() != int64(len(vals)) || h.Min() != vals[0] || h.Max() != vals[len(vals)-1] {
			return false
		}
		if absF(h.Mean()-float64(sum)/float64(len(vals))) > 1e-6 {
			return false
		}
		for _, q := range []float64{0.25, 0.5, 0.75, 0.95} {
			exact := QuantileOfSorted(vals, q)
			approx := h.Quantile(q)
			if exact == 0 {
				if approx > 16 {
					return false
				}
				continue
			}
			relErr := absF(float64(approx-exact)) / float64(exact)
			if relErr > 0.0701 { // one sub-bucket of slack (1/16) plus rounding
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: bucketOf/bucketLow are consistent: bucketLow(bucketOf(v)) <= v
// and bucketing is monotone.
func TestQuickBucketMonotone(t *testing.T) {
	f := func(a, b uint64) bool {
		va, vb := int64(a>>16), int64(b>>16)
		ba, bb := bucketOf(va), bucketOf(vb)
		if bucketLow(ba) > va || bucketLow(bb) > vb {
			return false
		}
		if va <= vb && ba > bb {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Regression for the dead-gap bug: bucketOf used to send values 16..31 to
// index 64+, leaving buckets 16..63 unreachable and feeding bucketLow a
// negative-going shift count. The mapping must now be contiguous (no value
// skips more than one bucket going up by 1) and bucketLow must be the exact
// inverse of bucketOf on bucket lows.
func TestBucketMappingContiguousAndInverse(t *testing.T) {
	prev := bucketOf(0)
	if prev != 0 {
		t.Fatalf("bucketOf(0) = %d", prev)
	}
	for v := int64(1); v < 1<<12; v++ {
		b := bucketOf(v)
		if b != prev && b != prev+1 {
			t.Fatalf("bucket index jumped: bucketOf(%d)=%d after bucketOf(%d)=%d",
				v, b, v-1, prev)
		}
		if low := bucketLow(b); low > v {
			t.Fatalf("bucketLow(bucketOf(%d)) = %d > value", v, low)
		}
		prev = b
	}
	// Every bucket low must map back to its own bucket — the two functions
	// are inverse on representative values, so no bucket is unreachable.
	for i := 0; i < numBuckets-1; i++ {
		low := bucketLow(i)
		if got := bucketOf(low); got != i {
			t.Fatalf("bucketOf(bucketLow(%d)) = %d (low=%d)", i, got, low)
		}
		if next := bucketLow(i + 1); next <= low {
			t.Fatalf("bucket lows not increasing: low(%d)=%d low(%d)=%d", i, low, i+1, next)
		}
	}
}

// Property: Hist quantiles track Exact quantiles within one sub-bucket of
// relative error on ranges straddling the 2^subBits boundary, where the old
// mapping had its dead gap.
func TestQuickHistVsExactAcrossBoundary(t *testing.T) {
	f := func(raw []uint16, span uint8) bool {
		if len(raw) == 0 {
			return true
		}
		// Values in [0, 8..263]: tight ranges that straddle 16 = 2^subBits.
		limit := int64(span)%256 + 8
		var h Hist
		var ex Exact
		for _, r := range raw {
			v := int64(r) % limit
			h.Add(v)
			ex.Add(v)
		}
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			exact := ex.Quantile(q)
			approx := h.Quantile(q)
			if exact < subBuckets {
				// Exact buckets below 2^subBits: must match exactly.
				if approx != exact {
					return false
				}
				continue
			}
			relErr := absF(float64(approx-exact)) / float64(exact)
			if relErr > 0.0701 { // one sub-bucket (1/16) plus rounding
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExactAccumulator(t *testing.T) {
	var e Exact
	for _, v := range []int64{5, 1, 9, 3, 7} {
		e.Add(v)
	}
	if e.Count() != 5 {
		t.Fatalf("count = %d", e.Count())
	}
	if got := e.Quantile(0.5); got != 5 {
		t.Fatalf("median = %d", got)
	}
	if got := e.Quantile(0); got != 1 {
		t.Fatalf("q0 = %d", got)
	}
	if got := e.Quantile(1); got != 9 {
		t.Fatalf("q1 = %d", got)
	}
}
