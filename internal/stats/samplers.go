// samplers.go provides the deterministic distribution samplers the
// open-loop lock-service layer (internal/cluster) draws its traffic from:
// exponential interarrival gaps for Poisson arrival processes, and Zipf
// popularity weights with a cumulative-weight picker for skewed key
// choice. Every sampler draws exclusively from a caller-supplied
// *rand.Rand, so the streams stay partitioned by sim.PartitionedRNG keys
// and runs replay bit-identically.
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// ExpGapNS draws one exponential interarrival gap with the given mean, in
// nanoseconds. Successive draws from one stream form a Poisson process of
// rate 1e9/meanNS events per second. Gaps are clamped to >= 1 ns so an
// arrival always advances the virtual clock. A non-positive mean returns 1.
func ExpGapNS(rng *rand.Rand, meanNS float64) int64 {
	if meanNS <= 0 {
		return 1
	}
	// Inversion: -mean * ln(U) with U in (0, 1]. rand.Float64 returns
	// [0, 1), so flip it to (0, 1] to keep the log finite.
	gap := -meanNS * math.Log(1-rng.Float64())
	if gap < 1 {
		return 1
	}
	if gap > math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(gap)
}

// ZipfWeights returns the normalized Zipf(s) popularity vector over n
// ranks: weight of rank r is proportional to 1/(r+1)^s, matching the rank
// convention of locktable.Skew (rank 0 is hottest). s == 0 returns the
// uniform vector; n <= 0 returns nil. s must otherwise be > 1, the same
// constraint the stdlib Zipf sampler enforces.
func ZipfWeights(n int, s float64) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	if s == 0 {
		for i := range w {
			w[i] = 1 / float64(n)
		}
		return w
	}
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Weighted picks indices with probability proportional to a fixed weight
// vector, by inverting the cumulative distribution with one Float64 draw
// per pick — the per-shard key sampler of the cluster layer (each shard
// holds the conditional distribution over its own keys).
type Weighted struct {
	cum []float64 // cum[i] = sum of weights 0..i, normalized to cum[n-1] == 1
}

// NewWeighted builds a picker over the given non-negative weights; weights
// need not be normalized. Returns nil if no weight is positive.
func NewWeighted(weights []float64) *Weighted {
	cum := make([]float64, len(weights))
	var sum float64
	for i, w := range weights {
		if w > 0 {
			sum += w
		}
		cum[i] = sum
	}
	if sum <= 0 {
		return nil
	}
	for i := range cum {
		cum[i] /= sum
	}
	return &Weighted{cum: cum}
}

// Pick draws one index from the weight distribution.
func (w *Weighted) Pick(rng *rand.Rand) int {
	u := rng.Float64()
	// Index i owns the half-open interval [cum[i-1], cum[i]), so a
	// zero-weight index (an empty interval) is never picked and u == 0
	// lands on the first positive-weight index. Float round-off on the
	// final cumulative sum could leave u >= cum[last]; clamp.
	i := sort.Search(len(w.cum), func(i int) bool { return w.cum[i] > u })
	if i >= len(w.cum) {
		i = len(w.cum) - 1
	}
	return i
}

// Len returns the number of weighted indices.
func (w *Weighted) Len() int { return len(w.cum) }
