// Package stats provides the streaming latency statistics used by the
// evaluation harness: log-scaled histograms with quantile extraction and
// CDF export, matching what the paper reports (throughput tables for
// Figure 5, latency CDFs for Figure 6).
//
// The histogram is HDR-style: power-of-two major buckets each split into
// 16 linear sub-buckets, giving a worst-case quantile error of ~6% across
// a dynamic range from 1 ns to ~146 µs-per-bucket scales — more than
// enough resolution to distinguish a 60 ns local acquisition from a 2 µs
// verb or a 400 µs congested tail.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

const (
	subBits    = 4 // 16 linear sub-buckets per power of two
	subBuckets = 1 << subBits
	maxExp     = 48 // values up to 2^(maxExp+1) ns (~6.5 days) are representable
	// Buckets 0..subBuckets-1 hold the exact tiny values; every power-of-two
	// range [2^e, 2^(e+1)) for e in subBits..maxExp then contributes
	// subBuckets linear sub-buckets, contiguously. Larger values clamp into
	// the top bucket.
	numBuckets = (maxExp - subBits + 2) * subBuckets
)

// Hist is a streaming histogram of non-negative int64 samples (typically
// latencies in nanoseconds). The zero value is ready to use.
type Hist struct {
	counts [numBuckets]int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

// bucketOf maps a sample to its bucket index. The mapping is contiguous:
// values below subBuckets land in their own exact buckets 0..subBuckets-1,
// and the range [2^exp, 2^(exp+1)) for exp >= subBits lands in the
// subBuckets indices starting at (exp-subBits+1)*subBuckets — so bucket
// subBuckets (the first inexact one) is exactly value 2^subBits, with no
// dead gap in between. bucketLow is its exact inverse on bucket lows.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v) // exact for tiny values
	}
	exp := 63 - bits.LeadingZeros64(uint64(v))
	// Position within the power-of-two range [2^exp, 2^(exp+1)).
	frac := (v - (1 << uint(exp))) >> uint(exp-subBits)
	idx := (exp-subBits+1)*subBuckets + int(frac)
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// bucketLow returns the smallest value mapping to bucket i (used as the
// representative value for quantiles; midpoint would also work, lows keep
// quantiles conservative).
func bucketLow(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	exp := i/subBuckets + subBits - 1
	frac := int64(i % subBuckets)
	return (int64(1) << uint(exp)) + frac<<uint(exp-subBits)
}

// Add records one sample.
func (h *Hist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Merge adds all of o's samples into h.
func (h *Hist) Merge(o *Hist) {
	if o.n == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// Count returns the number of samples.
func (h *Hist) Count() int64 { return h.n }

// Mean returns the exact sample mean (tracked outside the buckets).
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest recorded sample (0 if empty).
func (h *Hist) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 if empty).
func (h *Hist) Max() int64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the approximate q-quantile (0 <= q <= 1).
func (h *Hist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketLow(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Point is one point of an empirical CDF: fraction F of samples were
// <= ValueNS.
type Point struct {
	ValueNS int64
	F       float64
}

// CDF exports the empirical distribution as one point per non-empty
// bucket, suitable for plotting Figure 6-style curves.
func (h *Hist) CDF() []Point {
	if h.n == 0 {
		return nil
	}
	var pts []Point
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		pts = append(pts, Point{ValueNS: bucketLow(i), F: float64(cum) / float64(h.n)})
	}
	// Pin the last point to the true max.
	if len(pts) > 0 {
		pts[len(pts)-1].ValueNS = h.max
	}
	return pts
}

// Summary is the compact latency digest reported per experiment.
type Summary struct {
	Count  int64
	MeanNS float64
	MinNS  int64
	P50NS  int64
	P90NS  int64
	P99NS  int64
	P999NS int64
	MaxNS  int64
}

// Summarize extracts a Summary from the histogram.
func (h *Hist) Summarize() Summary {
	return Summary{
		Count:  h.n,
		MeanNS: h.Mean(),
		MinNS:  h.Min(),
		P50NS:  h.Quantile(0.50),
		P90NS:  h.Quantile(0.90),
		P99NS:  h.Quantile(0.99),
		P999NS: h.Quantile(0.999),
		MaxNS:  h.Max(),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.0fns p50=%dns p99=%dns max=%dns",
		s.Count, s.MeanNS, s.P50NS, s.P99NS, s.MaxNS)
}

// QuantileOfSorted computes an exact quantile from a sorted slice — the
// reference implementation the histogram is tested against.
func QuantileOfSorted(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Exact is a simple exact-quantile accumulator for tests and small runs.
type Exact struct {
	vals   []int64
	sorted bool
}

// Add records a sample.
func (e *Exact) Add(v int64) {
	e.vals = append(e.vals, v)
	e.sorted = false
}

// Quantile returns the exact q-quantile.
func (e *Exact) Quantile(q float64) int64 {
	if !e.sorted {
		sort.Slice(e.vals, func(i, j int) bool { return e.vals[i] < e.vals[j] })
		e.sorted = true
	}
	return QuantileOfSorted(e.vals, q)
}

// Count returns the number of samples.
func (e *Exact) Count() int { return len(e.vals) }
