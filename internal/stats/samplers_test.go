package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestExpGapMeanRate is the fixed-seed mean-rate sanity check: a long run
// of exponential gaps must average to the requested mean within a few
// percent, i.e. the generated process offers the requested rate.
func TestExpGapMeanRate(t *testing.T) {
	for _, meanNS := range []float64{500, 5_000, 250_000} {
		rng := rand.New(rand.NewSource(42))
		const n = 200_000
		var sum int64
		for i := 0; i < n; i++ {
			sum += ExpGapNS(rng, meanNS)
		}
		got := float64(sum) / n
		if rel := math.Abs(got-meanNS) / meanNS; rel > 0.02 {
			t.Errorf("mean %.0f: observed %.1f (%.1f%% off)", meanNS, got, rel*100)
		}
	}
}

// TestExpGapDeterministic proves two streams with the same seed draw the
// same gap sequence — the property every replay guarantee rests on.
func TestExpGapDeterministic(t *testing.T) {
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		if ga, gb := ExpGapNS(a, 1234), ExpGapNS(b, 1234); ga != gb {
			t.Fatalf("draw %d diverged: %d vs %d", i, ga, gb)
		}
	}
}

func TestExpGapClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if g := ExpGapNS(rng, 0); g != 1 {
		t.Errorf("zero mean: got %d, want 1", g)
	}
	if g := ExpGapNS(rng, -5); g != 1 {
		t.Errorf("negative mean: got %d, want 1", g)
	}
	for i := 0; i < 10_000; i++ {
		if g := ExpGapNS(rng, 0.001); g < 1 {
			t.Fatalf("tiny mean produced gap %d < 1", g)
		}
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(100, 1.5)
	var sum float64
	for i, wi := range w {
		sum += wi
		if i > 0 && wi > w[i-1] {
			t.Fatalf("weights not monotone at rank %d: %g > %g", i, wi, w[i-1])
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %g, want 1", sum)
	}
	if w[0] < 10*w[99] {
		t.Errorf("Zipf(1.5) head/tail ratio too flat: %g vs %g", w[0], w[99])
	}

	u := ZipfWeights(4, 0)
	for i, wi := range u {
		if wi != 0.25 {
			t.Errorf("uniform weight %d = %g, want 0.25", i, wi)
		}
	}
	if ZipfWeights(0, 1.5) != nil {
		t.Error("n=0 should return nil")
	}
}

// TestWeightedPickFrequencies checks the cumulative-inversion picker
// reproduces its weight vector empirically under a fixed seed.
func TestWeightedPickFrequencies(t *testing.T) {
	weights := []float64{1, 0, 3, 6}
	w := NewWeighted(weights)
	if w == nil || w.Len() != 4 {
		t.Fatal("picker not built")
	}
	rng := rand.New(rand.NewSource(99))
	counts := make([]int, 4)
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[w.Pick(rng)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index picked %d times", counts[1])
	}
	for i, want := range []float64{0.1, 0, 0.3, 0.6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d frequency %.3f, want %.3f", i, got, want)
		}
	}
}

func TestWeightedDegenerate(t *testing.T) {
	if NewWeighted(nil) != nil {
		t.Error("empty weights should return nil")
	}
	if NewWeighted([]float64{0, 0}) != nil {
		t.Error("all-zero weights should return nil")
	}
	one := NewWeighted([]float64{0, 5, 0})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		if got := one.Pick(rng); got != 1 {
			t.Fatalf("single-weight picker returned %d", got)
		}
	}
}
