// Package report renders harness results as the rows and series the paper
// reports: aligned text tables for the terminal and CSV for replotting.
// One renderer exists per table/figure of the evaluation.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"unicode/utf8"

	"alock/internal/harness"
	"alock/internal/stats"
)

// writeTable renders rows as an aligned text table with a header. Column
// widths are measured in runes, not bytes, so multi-byte cells (µs units,
// algorithm names beyond ASCII) keep the columns aligned.
func writeTable(w io.Writer, title string, header []string, rows [][]string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if n := utf8.RuneCountInString(c); i < len(widths) && n > widths[i] {
				widths[i] = n
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(c)))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// ops formats a throughput in ops/sec with engineering units.
func ops(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// ns formats a duration in nanoseconds with engineering units.
func ns(v int64) string {
	switch {
	case v >= 1_000_000:
		return fmt.Sprintf("%.2fms", float64(v)/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.2fus", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dns", v)
	}
}

// Figure1 renders the loopback-congestion experiment.
func Figure1(w io.Writer, pts []harness.Fig1Point) {
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Threads),
			ops(p.Throughput),
			ns(p.MaxBacklog),
		})
	}
	writeTable(w, "Figure 1: RDMA spinlock, 1k locks, 1 node (loopback congestion)",
		[]string{"threads", "throughput(ops/s)", "max NIC backlog"}, rows)
}

// Figure1CSV emits threads,throughput rows.
func Figure1CSV(w io.Writer, pts []harness.Fig1Point) {
	fmt.Fprintln(w, "figure,threads,throughput_ops,max_backlog_ns")
	for _, p := range pts {
		fmt.Fprintf(w, "fig1,%d,%.1f,%d\n", p.Threads, p.Throughput, p.MaxBacklog)
	}
}

// Figure4 renders the budget study.
func Figure4(w io.Writer, rows4 []harness.Fig4Row) {
	var rows [][]string
	for _, r := range rows4 {
		var locs []int
		for l := range r.PerLocality {
			locs = append(locs, l)
		}
		sort.Ints(locs)
		var per []string
		for _, l := range locs {
			per = append(per, fmt.Sprintf("%d%%:%.3f", l, r.PerLocality[l]))
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Locks),
			fmt.Sprintf("%d", r.RemoteBudget),
			fmt.Sprintf("%d", r.LocalBudget),
			strings.Join(per, " "),
			fmt.Sprintf("%.3fx", r.AvgSpeedup),
		})
	}
	writeTable(w, "Figure 4: speedup vs baseline remote budget 5 (local budget 5)",
		[]string{"locks", "remote budget", "local budget", "per-locality speedup", "avg speedup"}, rows)
}

// Figure5 renders the throughput grid.
func Figure5(w io.Writer, panels []harness.Fig5Panel) {
	for _, p := range panels {
		title := fmt.Sprintf("Figure 5(%s): %d nodes, %d locks, %d%% locality",
			p.ID, p.Nodes, p.Locks, p.LocalityPct)
		header := []string{"threads/node"}
		for _, s := range p.Series {
			header = append(header, s.Algorithm+"(ops/s)")
		}
		if len(p.Series) == 0 {
			continue
		}
		var rows [][]string
		for i, th := range p.Series[0].Threads {
			row := []string{fmt.Sprintf("%d", th)}
			for _, s := range p.Series {
				row = append(row, ops(s.Throughput[i]))
			}
			rows = append(rows, row)
		}
		writeTable(w, title, header, rows)
	}
}

// Figure5CSV emits one row per (panel, algorithm, threads).
func Figure5CSV(w io.Writer, panels []harness.Fig5Panel) {
	fmt.Fprintln(w, "figure,panel,nodes,locks,locality_pct,algorithm,threads_per_node,throughput_ops")
	for _, p := range panels {
		for _, s := range p.Series {
			for i, th := range s.Threads {
				fmt.Fprintf(w, "fig5,%s,%d,%d,%d,%s,%d,%.1f\n",
					p.ID, p.Nodes, p.Locks, p.LocalityPct, s.Algorithm, th, s.Throughput[i])
			}
		}
	}
}

// Figure5Locality renders the ALock locality sweep.
func Figure5Locality(w io.Writer, pts []harness.Fig5LocalityPoint) {
	var rows [][]string
	for i, p := range pts {
		delta := "-"
		if i > 0 && pts[i-1].Throughput > 0 {
			delta = fmt.Sprintf("%+.0f%%", (p.Throughput/pts[i-1].Throughput-1)*100)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d%%", p.LocalityPct), ops(p.Throughput), delta,
		})
	}
	writeTable(w, "Figure 5 supplement: ALock locality sweep (5 nodes, 1000 locks, 8 thr/node)",
		[]string{"locality", "throughput(ops/s)", "delta vs previous"}, rows)
}

// Figure6 renders the latency grid (summaries plus optional CDH dump).
func Figure6(w io.Writer, panels []harness.Fig6Panel) {
	for _, p := range panels {
		title := fmt.Sprintf("Figure 6(%s): 10 nodes, 8 thr/node, %d locks, %d%% locality",
			p.ID, p.Locks, p.LocalityPct)
		var rows [][]string
		for _, s := range p.Series {
			rows = append(rows, []string{
				s.Algorithm,
				ns(int64(s.Summary.MeanNS)),
				ns(s.Summary.P50NS),
				ns(s.Summary.P90NS),
				ns(s.Summary.P99NS),
				ns(s.Summary.P999NS),
				ns(s.Summary.MaxNS),
			})
		}
		writeTable(w, title,
			[]string{"algorithm", "mean", "p50", "p90", "p99", "p99.9", "max"}, rows)
	}
}

// Figure6CSV dumps the full CDFs, one row per (panel, algorithm, point).
func Figure6CSV(w io.Writer, panels []harness.Fig6Panel) {
	fmt.Fprintln(w, "figure,panel,locks,locality_pct,algorithm,latency_ns,cdf")
	for _, p := range panels {
		for _, s := range p.Series {
			for _, pt := range s.CDF {
				fmt.Fprintf(w, "fig6,%s,%d,%d,%s,%d,%.6f\n",
					p.ID, p.Locks, p.LocalityPct, s.Algorithm, pt.ValueNS, pt.F)
			}
		}
	}
}

// Table1 renders the measured atomicity matrix next to the paper's.
func Table1(w io.Writer, cells []harness.Table1Cell) {
	expected := map[string]bool{
		"Read/Read": true, "Read/Write": true, "Read/CAS": true,
		"Write/Read": true, "Write/Write": true, "Write/CAS": false,
		"RMW/Read": true, "RMW/Write": true, "RMW/CAS": false,
	}
	var rows [][]string
	for _, c := range cells {
		key := c.LocalClass + "/" + c.RemoteOp
		verdict := "MATCH"
		if expected[key] != c.Atomic {
			verdict = "MISMATCH"
		}
		rows = append(rows, []string{
			c.LocalClass, c.RemoteOp,
			yesNo(c.Atomic), yesNo(expected[key]), verdict,
		})
	}
	writeTable(w, "Table 1: atomicity between 8-byte local and remote accesses",
		[]string{"local access", "remote op", "measured", "paper", "verdict"}, rows)
}

func yesNo(b bool) string {
	if b {
		return "Yes"
	}
	return "No"
}

// Ablations renders the design-choice ablation table.
func Ablations(w io.Writer, rows0 []harness.AblationRow) {
	base := 0.0
	for _, r := range rows0 {
		if r.Algorithm == "alock" {
			base = r.Throughput
		}
	}
	var rows [][]string
	for _, r := range rows0 {
		rel := "-"
		if base > 0 {
			rel = fmt.Sprintf("%.2fx", r.Throughput/base)
		}
		rows = append(rows, []string{r.Algorithm, ops(r.Throughput), rel, ns(r.P99NS)})
	}
	writeTable(w, "Ablations: 8 nodes, 8 thr/node, 100 locks, 90% locality",
		[]string{"algorithm", "throughput(ops/s)", "vs alock", "p99 latency"}, rows)
}

// Headlines renders the paper-vs-measured headline ratios.
func Headlines(w io.Writer, h harness.HeadlineRatios) {
	rows := [][]string{
		{"high contention, ALock vs MCS", "up to 29x", fmt.Sprintf("%.1fx", h.HighContentionVsMCS)},
		{"high contention, ALock vs spinlock", "up to 24x", fmt.Sprintf("%.1fx", h.HighContentionVsSpin)},
		{"100% locality, ALock vs MCS", "up to 24x", fmt.Sprintf("%.1fx", h.FullLocalityVsMCS)},
		{"100% locality, ALock vs spinlock", "up to 22x", fmt.Sprintf("%.1fx", h.FullLocalityVsSpin)},
		{"low contention, ALock vs MCS", "up to 3.8x", fmt.Sprintf("%.1fx", h.LowContentionVsMCS)},
		{"low contention, ALock vs spinlock", "up to 3.3x", fmt.Sprintf("%.1fx", h.LowContentionVsSpin)},
	}
	writeTable(w, "Headline ratios: paper vs this reproduction",
		[]string{"claim", "paper", "measured"}, rows)
}

// Summary pretty-prints a one-off harness result (cmd/alockbench).
func Summary(w io.Writer, r harness.Result) {
	fmt.Fprintf(w, "algorithm      : %s\n", r.Config.Algorithm)
	fmt.Fprintf(w, "cluster        : %d nodes x %d threads\n", r.Config.Nodes, r.Config.ThreadsPerNode)
	fmt.Fprintf(w, "locks          : %d (%d%% locality)\n", r.Config.Locks, r.Config.LocalityPct)
	if c := r.Config; c.ReadPct > 0 || c.LeaseProb > 0 {
		fmt.Fprintf(w, "workload       : %d%% reads", c.ReadPct)
		if c.LeaseProb > 0 {
			fmt.Fprintf(w, ", %.1f%% leases of %v", c.LeaseProb*100, c.LeaseHold)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "ops recorded   : %d over %s\n", r.Ops, ns(r.SpanNS))
	fmt.Fprintf(w, "throughput     : %s ops/s\n", ops(r.Throughput))
	if s := r.Svc; s != nil {
		fmt.Fprintf(w, "service        : %d shards (%s placement, %s, queue cap %d), %d clients\n",
			s.Shards, s.Placement, s.Policy, s.QueueCap, s.Clients)
		shedPct := 0.0
		if s.Offered > 0 {
			shedPct = float64(s.Shed) / float64(s.Offered) * 100
		}
		fmt.Fprintf(w, "offered load   : %s ops/s offered, %s ops/s goodput; %d of %d shed (%.1f%%, %d at deadline)\n",
			ops(s.OfferedOPS), ops(s.GoodputOPS), s.Shed, s.Offered, shedPct, s.Timeouts)
		fmt.Fprintf(w, "queue wait     : p50=%s p99=%s p99.9=%s max=%s (deepest queue %d)\n",
			ns(s.QueueWait.P50NS), ns(s.QueueWait.P99NS), ns(s.QueueWait.P999NS),
			ns(s.QueueWait.MaxNS), s.MaxQueueLen)
		fmt.Fprintf(w, "acquire wait   : p50=%s p99=%s p99.9=%s max=%s\n",
			ns(s.AcquireWait.P50NS), ns(s.AcquireWait.P99NS), ns(s.AcquireWait.P999NS),
			ns(s.AcquireWait.MaxNS))
		fmt.Fprintf(w, "hold time      : p50=%s p99=%s p99.9=%s max=%s\n",
			ns(s.HoldTime.P50NS), ns(s.HoldTime.P99NS), ns(s.HoldTime.P999NS),
			ns(s.HoldTime.MaxNS))
		fmt.Fprintf(w, "shard balance  : served %s\n", shardServed(s.ShardServed))
	}
	if r.Timeouts > 0 || r.Abandons > 0 || r.FencedReleases > 0 {
		fmt.Fprintf(w, "outcomes       : %d timeouts (p50 give-up %s), %d abandons, %d fenced releases\n",
			r.Timeouts, ns(r.TimeoutLatency.P50NS), r.Abandons, r.FencedReleases)
	}
	if r.LateAcquires > 0 {
		fmt.Fprintf(w, "late acquires  : %d grants landed past their deadline (best-effort timed path)\n",
			r.LateAcquires)
	}
	if r.PairOps > 0 {
		fmt.Fprintf(w, "two-lock ops   : %d of %d recorded ops\n", r.PairOps, r.Ops)
	}
	if c := r.Config; c.TxnLocks >= 2 {
		fmt.Fprintf(w, "transactions   : %d commits, %d aborts, %d retries (%s, %d locks)\n",
			r.TxnCommits, r.TxnAborts, r.TxnRetries, txnPolicyName(c), c.TxnLocks)
		if r.TxnCommits > 0 {
			fmt.Fprintf(w, "commit latency : p50=%s p99=%s; retries p99=%d max=%d\n",
				ns(r.CommitLatency.P50NS), ns(r.CommitLatency.P99NS),
				r.TxnRetryHist.P99NS, r.TxnRetryHist.MaxNS)
		}
	}
	fmt.Fprintf(w, "latency        : mean=%s p50=%s p99=%s p99.9=%s max=%s\n",
		ns(int64(r.Latency.MeanNS)), ns(r.Latency.P50NS), ns(r.Latency.P99NS),
		ns(r.Latency.P999NS), ns(r.Latency.MaxNS))
	if r.ReadOps > 0 {
		fmt.Fprintf(w, "read latency   : n=%d mean=%s p50=%s p99=%s max=%s\n",
			r.ReadOps, ns(int64(r.ReadLatency.MeanNS)), ns(r.ReadLatency.P50NS),
			ns(r.ReadLatency.P99NS), ns(r.ReadLatency.MaxNS))
	}
	if r.ReadOps > 0 && r.WriteOps > 0 {
		fmt.Fprintf(w, "write latency  : n=%d mean=%s p50=%s p99=%s max=%s\n",
			r.WriteOps, ns(int64(r.WriteLatency.MeanNS)), ns(r.WriteLatency.P50NS),
			ns(r.WriteLatency.P99NS), ns(r.WriteLatency.MaxNS))
	}
	fmt.Fprintf(w, "fabric         : %d verbs, %d QPC misses, %d slowdowns, max backlog %s\n",
		r.NIC.Verbs, r.NIC.QPCMisses, r.NIC.Slowdowns, ns(r.NIC.MaxBacklogNS))
	if r.Lock.Acquires > 0 {
		fmt.Fprintf(w, "alock internals: %d acquires (%d local / %d remote), %d passes, %d reacquires\n",
			r.Lock.Acquires, r.Lock.LocalOps, r.Lock.RemoteOps, r.Lock.Passes, r.Lock.Reacquires)
	}
	fmt.Fprintf(w, "events         : %d simulator events\n", r.Events)
}

// shardServed renders a per-shard served-count vector compactly.
func shardServed(counts []int64) string {
	var b strings.Builder
	for i, c := range counts {
		if i > 0 {
			b.WriteString("/")
		}
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

// CDFSparkline renders a tiny ASCII CDF for terminal output.
func CDFSparkline(pts []stats.Point, width int) string {
	if len(pts) == 0 || width <= 0 {
		return ""
	}
	marks := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for i := 0; i < width; i++ {
		q := float64(i+1) / float64(width)
		// Find first point with F >= q.
		v := pts[len(pts)-1].F
		for _, p := range pts {
			if p.F >= q {
				v = p.F
				break
			}
		}
		idx := int(v*float64(len(marks)-1) + 0.5)
		if idx >= len(marks) {
			idx = len(marks) - 1
		}
		b.WriteRune(marks[idx])
	}
	return b.String()
}

// Sweep renders an arbitrary batch of results — a scenario expansion — as
// one row per run, with the config knobs that differ between runs spelled
// out alongside throughput and tail latency.
func Sweep(w io.Writer, title string, results []harness.Result) {
	// Per-class latency columns appear only when some run recorded reads;
	// outcome columns only when some run recorded non-happy-path outcomes;
	// transaction columns only when some run ran the transaction layer.
	hasReads, hasOutcomes, hasTxn, hasSvc := false, false, false, false
	for _, r := range results {
		if r.ReadOps > 0 {
			hasReads = true
		}
		if r.Timeouts > 0 || r.Abandons > 0 || r.FencedReleases > 0 || r.LateAcquires > 0 {
			hasOutcomes = true
		}
		if r.Config.TxnLocks >= 2 {
			hasTxn = true
		}
		if r.Svc != nil {
			hasSvc = true
		}
	}
	var rows [][]string
	for _, r := range results {
		c := r.Config
		row := []string{
			c.Algorithm,
			fmt.Sprintf("%dx%d", c.Nodes, c.ThreadsPerNode),
			fmt.Sprintf("%d", c.Locks),
			fmt.Sprintf("%d%%", c.LocalityPct),
			workloadExtras(c),
			ops(r.Throughput),
			ns(r.Latency.P50NS),
			ns(r.Latency.P99NS),
		}
		if hasReads {
			rp99, wp99 := "-", "-"
			if r.ReadOps > 0 {
				rp99 = ns(r.ReadLatency.P99NS)
			}
			if r.WriteOps > 0 {
				wp99 = ns(r.WriteLatency.P99NS)
			}
			row = append(row, rp99, wp99)
		}
		if hasOutcomes {
			row = append(row,
				fmt.Sprintf("%d", r.Timeouts),
				fmt.Sprintf("%d", r.Abandons),
				fmt.Sprintf("%d", r.FencedReleases),
				fmt.Sprintf("%d", r.LateAcquires))
		}
		if hasTxn {
			row = append(row, txnCells(r)...)
		}
		if hasSvc {
			row = append(row, svcCells(r)...)
		}
		rows = append(rows, row)
	}
	header := []string{"algorithm", "cluster", "locks", "locality", "workload", "throughput(ops/s)", "p50", "p99"}
	if hasReads {
		header = append(header, "read p99", "write p99")
	}
	if hasOutcomes {
		header = append(header, "timeouts", "abandons", "fenced", "late")
	}
	if hasTxn {
		header = append(header, txnHeader...)
	}
	if hasSvc {
		header = append(header, svcHeader...)
	}
	writeTable(w, title, header, rows)
}

// svcHeader / svcCells are the lock-service columns shared by the sweep
// and Figure RW tables: offered load vs goodput, shed count, and the
// queue-wait vs hold-time decomposition tails.
var svcHeader = []string{"offered(ops/s)", "shed", "qwait p99", "hold p99"}

func svcCells(r harness.Result) []string {
	s := r.Svc
	if s == nil {
		return []string{"-", "-", "-", "-"}
	}
	return []string{
		ops(s.OfferedOPS),
		fmt.Sprintf("%d", s.Shed),
		ns(s.QueueWait.P99NS),
		ns(s.HoldTime.P99NS),
	}
}

// txnHeader / txnCells are the transaction-layer columns shared by the
// sweep and Figure RW tables.
var txnHeader = []string{"commits", "txn aborts", "retries", "retry p99", "commit p99"}

func txnCells(r harness.Result) []string {
	if r.Config.TxnLocks < 2 {
		return []string{"-", "-", "-", "-", "-"}
	}
	return []string{
		fmt.Sprintf("%d", r.TxnCommits),
		fmt.Sprintf("%d", r.TxnAborts),
		fmt.Sprintf("%d", r.TxnRetries),
		fmt.Sprintf("%d", r.TxnRetryHist.P99NS),
		ns(r.CommitLatency.P99NS),
	}
}

// workloadExtras summarizes the config knobs beyond the base grid — read
// mix, leases, jitter, skew, bursts, think time — for sweep-style tables.
func workloadExtras(c harness.Config) string {
	extras := ""
	if c.ReadPct > 0 {
		extras += fmt.Sprintf(" read=%d%%", c.ReadPct)
	}
	if c.LeaseProb > 0 {
		extras += fmt.Sprintf(" lease=%.1f%%/%v", c.LeaseProb*100, c.LeaseHold)
	}
	if c.Model.JitterProb > 0 {
		extras += fmt.Sprintf(" jitter=%.1f%%/%s", c.Model.JitterProb*100, ns(c.Model.JitterNS))
	}
	if c.ZipfS > 0 {
		extras += fmt.Sprintf(" zipf=%.1f", c.ZipfS)
	}
	if c.BurstOn > 0 {
		extras += fmt.Sprintf(" burst=%v/%v", c.BurstOn, c.BurstOff)
	}
	if c.HomeSkewPct > 0 {
		extras += fmt.Sprintf(" homeskew=%d%%", c.HomeSkewPct)
	}
	if c.AcquireTimeout > 0 {
		extras += fmt.Sprintf(" timeout=%v", c.AcquireTimeout)
	}
	if c.AbandonProb > 0 {
		extras += fmt.Sprintf(" abandon=%.1f%%/%v", c.AbandonProb*100, c.AbandonHold)
	}
	if c.PairProb > 0 {
		extras += fmt.Sprintf(" pair=%.0f%%", c.PairProb*100)
	}
	if c.TxnLocks >= 2 {
		extras += fmt.Sprintf(" txn=%dx/%s", c.TxnLocks, txnPolicyName(c))
		if c.TxnRing {
			extras += "/ring"
		}
	}
	if c.CSWork > 0 || c.Think > 0 {
		extras += fmt.Sprintf(" cs=%v think=%v", c.CSWork, c.Think)
	}
	if c.OpenLoop() {
		place := c.SvcPlacement
		if place == "" {
			place = "hash"
		}
		adm := c.SvcAdmission
		if adm == "" {
			adm = "drop-tail"
		}
		extras += fmt.Sprintf(" rate=%s/s shards=%d %s cap=%d %s",
			ops(c.ArrivalRate), c.SvcShards, place, c.SvcQueueCap, adm)
		if c.SvcRebalance {
			extras += " rebalance"
		}
	}
	return strings.TrimSpace(extras)
}

// txnPolicyName spells the effective transaction policy (empty = ordered).
func txnPolicyName(c harness.Config) string {
	if c.TxnPolicy == "" {
		return "ordered"
	}
	return c.TxnPolicy
}

// FigureRW renders the reader/writer and failure figure: one table per
// scenario family, one row per run, with per-class (read vs write) tail
// latencies next to throughput — the storm's cost shows up in the write
// tail long before it shows in aggregate throughput. Families whose runs
// produce acquisition outcomes beyond the happy path (timeouts, abandons,
// fenced releases) grow the outcome columns.
func FigureRW(w io.Writer, groups []harness.FigRWGroup) {
	for _, g := range groups {
		hasOutcomes, hasTxn, hasSvc := false, false, false
		for _, r := range g.Results {
			if r.Timeouts > 0 || r.Abandons > 0 || r.FencedReleases > 0 || r.LateAcquires > 0 {
				hasOutcomes = true
			}
			if r.Config.TxnLocks >= 2 {
				hasTxn = true
			}
			if r.Svc != nil {
				hasSvc = true
			}
		}
		var rows [][]string
		for _, r := range g.Results {
			c := r.Config
			rp50, rp99 := "-", "-"
			if r.ReadOps > 0 {
				rp50, rp99 = ns(r.ReadLatency.P50NS), ns(r.ReadLatency.P99NS)
			}
			wp50, wp99 := "-", "-"
			if r.WriteOps > 0 {
				wp50, wp99 = ns(r.WriteLatency.P50NS), ns(r.WriteLatency.P99NS)
			}
			row := []string{
				c.Algorithm,
				fmt.Sprintf("%dx%d", c.Nodes, c.ThreadsPerNode),
				fmt.Sprintf("%d", c.Locks),
				workloadExtras(c),
				ops(r.Throughput),
				rp50, rp99, wp50, wp99,
			}
			if hasOutcomes {
				giveUp := "-"
				if r.Timeouts > 0 {
					giveUp = ns(r.TimeoutLatency.P99NS)
				}
				row = append(row,
					fmt.Sprintf("%d", r.Timeouts), giveUp,
					fmt.Sprintf("%d", r.Abandons),
					fmt.Sprintf("%d", r.FencedReleases),
					fmt.Sprintf("%d", r.LateAcquires))
			}
			if hasTxn {
				row = append(row, txnCells(r)...)
			}
			if hasSvc {
				row = append(row, svcCells(r)...)
			}
			rows = append(rows, row)
		}
		header := []string{"algorithm", "cluster", "locks", "workload",
			"throughput(ops/s)", "read p50", "read p99", "write p50", "write p99"}
		if hasOutcomes {
			header = append(header, "timeouts", "give-up p99", "abandons", "fenced", "late")
		}
		if hasTxn {
			header = append(header, txnHeader...)
		}
		if hasSvc {
			header = append(header, svcHeader...)
		}
		writeTable(w, "Figure RW: "+g.Name, header, rows)
	}
}

// FigureRWCSV emits one CSV row per run of the reader/writer figure, with
// per-algorithm read and write percentile columns for replotting.
func FigureRWCSV(w io.Writer, groups []harness.FigRWGroup) {
	fmt.Fprintln(w, "figure,scenario,algorithm,nodes,threads_per_node,locks,locality_pct,read_pct,lease_prob,lease_hold_ns,jitter_prob,jitter_ns,acquire_timeout_ns,abandon_prob,pair_prob,txn_locks,txn_order,txn_policy,txn_backoff_ns,throughput_ops,read_p50_ns,read_p99_ns,write_p50_ns,write_p99_ns,ops,read_ops,write_ops,timeouts,giveup_p50_ns,giveup_p99_ns,abandons,fenced_releases,late_acquires,pair_ops,txn_commits,txn_aborts,txn_retries,retry_p99,commit_p50_ns,commit_p99_ns,"+svcCSVHeader)
	for _, g := range groups {
		for _, r := range g.Results {
			c := r.Config
			fmt.Fprintf(w, "figrw,%s,%s,%d,%d,%d,%d,%d,%.4f,%d,%.4f,%d,%d,%.4f,%.4f,%d,%s,%s,%d,%.1f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s\n",
				g.Name, c.Algorithm, c.Nodes, c.ThreadsPerNode, c.Locks, c.LocalityPct,
				c.ReadPct, c.LeaseProb, c.LeaseHold.Nanoseconds(),
				c.Model.JitterProb, c.Model.JitterNS,
				c.AcquireTimeout.Nanoseconds(), c.AbandonProb, c.PairProb,
				c.TxnLocks, c.TxnOrder, c.TxnPolicy, c.TxnBackoff.Nanoseconds(),
				r.Throughput,
				r.ReadLatency.P50NS, r.ReadLatency.P99NS,
				r.WriteLatency.P50NS, r.WriteLatency.P99NS,
				r.Ops, r.ReadOps, r.WriteOps,
				r.Timeouts, r.TimeoutLatency.P50NS, r.TimeoutLatency.P99NS,
				r.Abandons, r.FencedReleases, r.LateAcquires, r.PairOps,
				r.TxnCommits, r.TxnAborts, r.TxnRetries,
				r.TxnRetryHist.P99NS, r.CommitLatency.P50NS, r.CommitLatency.P99NS,
				svcCSVCells(r))
		}
	}
}

// svcCSVHeader / svcCSVCells are the lock-service columns appended to the
// sweep and Figure RW CSVs; closed-loop rows carry zeros.
const svcCSVHeader = "arrival_rate_ops,clients,svc_shards,svc_placement,svc_queue_cap,svc_admission,svc_rebalance,offered_ops,goodput_ops,svc_shed,svc_timeouts,max_queue_len,qwait_p50_ns,qwait_p99_ns,qwait_p999_ns,acqwait_p50_ns,acqwait_p99_ns,hold_p50_ns,hold_p99_ns"

func svcCSVCells(r harness.Result) string {
	s := r.Svc
	if s == nil {
		return "0,0,0,,0,,0,0,0,0,0,0,0,0,0,0,0,0,0"
	}
	reb := 0
	if r.Config.SvcRebalance {
		reb = 1
	}
	return fmt.Sprintf("%.1f,%d,%d,%s,%d,%s,%d,%.1f,%.1f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d",
		r.Config.ArrivalRate, s.Clients, s.Shards, s.Placement, s.QueueCap, s.Policy, reb,
		s.OfferedOPS, s.GoodputOPS, s.Shed, s.Timeouts, s.MaxQueueLen,
		s.QueueWait.P50NS, s.QueueWait.P99NS, s.QueueWait.P999NS,
		s.AcquireWait.P50NS, s.AcquireWait.P99NS,
		s.HoldTime.P50NS, s.HoldTime.P99NS)
}

// SweepCSV emits one CSV row per run of a scenario sweep.
func SweepCSV(w io.Writer, name string, results []harness.Result) {
	fmt.Fprintln(w, "scenario,algorithm,nodes,threads_per_node,locks,locality_pct,zipf_s,burst_on_ns,burst_off_ns,home_skew_pct,read_pct,lease_prob,lease_hold_ns,jitter_prob,jitter_ns,acquire_timeout_ns,abandon_prob,pair_prob,txn_locks,txn_order,txn_policy,txn_backoff_ns,throughput_ops,p50_ns,p99_ns,read_p99_ns,write_p99_ns,ops,read_ops,write_ops,timeouts,abandons,fenced_releases,late_acquires,pair_ops,txn_commits,txn_aborts,txn_retries,retry_p99,commit_p50_ns,commit_p99_ns,"+svcCSVHeader)
	for _, r := range results {
		c := r.Config
		fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d,%.2f,%d,%d,%d,%d,%.4f,%d,%.4f,%d,%d,%.4f,%.4f,%d,%s,%s,%d,%.1f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s\n",
			name, c.Algorithm, c.Nodes, c.ThreadsPerNode, c.Locks, c.LocalityPct,
			c.ZipfS, c.BurstOn.Nanoseconds(), c.BurstOff.Nanoseconds(), c.HomeSkewPct,
			c.ReadPct, c.LeaseProb, c.LeaseHold.Nanoseconds(),
			c.Model.JitterProb, c.Model.JitterNS,
			c.AcquireTimeout.Nanoseconds(), c.AbandonProb, c.PairProb,
			c.TxnLocks, c.TxnOrder, c.TxnPolicy, c.TxnBackoff.Nanoseconds(),
			r.Throughput, r.Latency.P50NS, r.Latency.P99NS,
			r.ReadLatency.P99NS, r.WriteLatency.P99NS,
			r.Ops, r.ReadOps, r.WriteOps,
			r.Timeouts, r.Abandons, r.FencedReleases, r.LateAcquires, r.PairOps,
			r.TxnCommits, r.TxnAborts, r.TxnRetries,
			r.TxnRetryHist.P99NS, r.CommitLatency.P50NS, r.CommitLatency.P99NS,
			svcCSVCells(r))
	}
}

// QPThrashing renders the QP context-cache sweep (Section 2 extension).
func QPThrashing(w io.Writer, rows0 []harness.QPThrashRow) {
	var rows [][]string
	for _, r := range rows0 {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.CacheCap),
			r.Algorithm,
			ops(r.Throughput),
			fmt.Sprintf("%.1f%%", r.MissRate*100),
			fmt.Sprintf("%d", r.DistinctQPs),
		})
	}
	writeTable(w, "QP thrashing: QPC cache capacity sweep (16 nodes, 1000 locks, 90% locality)",
		[]string{"QPC cache", "algorithm", "throughput(ops/s)", "QPC miss rate", "distinct QPs"}, rows)
}
