package report

import (
	"strings"
	"testing"

	"alock/internal/harness"
	"alock/internal/stats"
)

func TestFigure1Render(t *testing.T) {
	var b strings.Builder
	Figure1(&b, []harness.Fig1Point{
		{Threads: 1, Throughput: 500_000, MaxBacklog: 0},
		{Threads: 8, Throughput: 1_200_000, MaxBacklog: 12_000},
	})
	out := b.String()
	for _, frag := range []string{"Figure 1", "threads", "500.0k", "1.20M", "12.00us"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
}

func TestFigure1CSV(t *testing.T) {
	var b strings.Builder
	Figure1CSV(&b, []harness.Fig1Point{{Threads: 2, Throughput: 10, MaxBacklog: 3}})
	if !strings.Contains(b.String(), "fig1,2,10.0,3") {
		t.Errorf("csv = %q", b.String())
	}
	if !strings.HasPrefix(b.String(), "figure,threads") {
		t.Error("missing header")
	}
}

func TestFigure4Render(t *testing.T) {
	var b strings.Builder
	Figure4(&b, []harness.Fig4Row{
		{RemoteBudget: 5, LocalBudget: 5, Locks: 100,
			PerLocality: map[int]float64{85: 1, 90: 1, 95: 1}, AvgSpeedup: 1},
		{RemoteBudget: 20, LocalBudget: 5, Locks: 100,
			PerLocality: map[int]float64{85: 1.1, 90: 1.2, 95: 1.3}, AvgSpeedup: 1.2},
	})
	out := b.String()
	for _, frag := range []string{"Figure 4", "1.200x", "85%:1.100"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
}

func TestFigure5RenderAndCSV(t *testing.T) {
	panels := []harness.Fig5Panel{{
		ID: "a", Nodes: 5, Locks: 20, LocalityPct: 90,
		Series: []harness.Fig5Series{
			{Algorithm: "alock", Threads: []int{1, 2}, Throughput: []float64{1e6, 2e6}},
			{Algorithm: "mcs", Threads: []int{1, 2}, Throughput: []float64{5e5, 4e5}},
		},
	}}
	var b strings.Builder
	Figure5(&b, panels)
	out := b.String()
	for _, frag := range []string{"Figure 5(a)", "alock(ops/s)", "2.00M", "400.0k"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
	b.Reset()
	Figure5CSV(&b, panels)
	if !strings.Contains(b.String(), "fig5,a,5,20,90,mcs,2,400000.0") {
		t.Errorf("csv = %q", b.String())
	}
}

// Regression: writeTable measured column widths in bytes, so any
// multi-byte cell (µs units, non-ASCII algorithm names) threw off the
// padding of every following column in its row.
func TestWriteTableRunePadding(t *testing.T) {
	var b strings.Builder
	writeTable(&b, "t",
		[]string{"latency", "mark"},
		[][]string{
			{"5µs", "x"},
			{"500ns", "y"},
		})
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), b.String())
	}
	colOf := func(line, mark string) int {
		return len([]rune(line[:strings.Index(line, mark)]))
	}
	xCol := colOf(lines[3], "x")
	yCol := colOf(lines[4], "y")
	if xCol != yCol {
		t.Errorf("second column misaligned: %q at rune %d vs %q at rune %d\n%s",
			"x", xCol, "y", yCol, b.String())
	}
}

func TestFigureRWRenderAndCSV(t *testing.T) {
	groups := []harness.FigRWGroup{{
		Name: "rw/storm-tails",
		Results: []harness.Result{{
			Config: harness.Config{Algorithm: "rw-queue", Nodes: 16, ThreadsPerNode: 8,
				Locks: 20, LocalityPct: 90, ReadPct: 70},
			Ops: 100, ReadOps: 70, WriteOps: 30, Throughput: 1.5e6,
			ReadLatency:  stats.Summary{Count: 70, P50NS: 40_000, P99NS: 250_000},
			WriteLatency: stats.Summary{Count: 30, P50NS: 45_000, P99NS: 220_000},
		}},
	}}
	var b strings.Builder
	FigureRW(&b, groups)
	out := b.String()
	for _, frag := range []string{"Figure RW: rw/storm-tails", "read p99", "write p99",
		"rw-queue", "250.00us", "220.00us", "1.50M", "read=70%"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}

	var csv strings.Builder
	FigureRWCSV(&csv, groups)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	for _, col := range []string{"read_p99_ns", "write_p99_ns", "read_p50_ns", "write_p50_ns", "scenario"} {
		if !strings.Contains(lines[0], col) {
			t.Errorf("csv header missing %q: %s", col, lines[0])
		}
	}
	if !strings.Contains(lines[1], "figrw,rw/storm-tails,rw-queue,16,8,20,90,70") ||
		!strings.Contains(lines[1], "250000") || !strings.Contains(lines[1], "220000") {
		t.Errorf("csv row = %s", lines[1])
	}
}

func TestFigure6Render(t *testing.T) {
	panels := []harness.Fig6Panel{{
		ID: "a", Locks: 20, LocalityPct: 100,
		Series: []harness.Fig6Series{{
			Algorithm: "alock",
			Summary:   stats.Summary{Count: 10, MeanNS: 150, P50NS: 100, P90NS: 300, P99NS: 900, P999NS: 1500, MaxNS: 2000},
			CDF:       []stats.Point{{ValueNS: 100, F: 0.5}, {ValueNS: 2000, F: 1}},
		}},
	}}
	var b strings.Builder
	Figure6(&b, panels)
	out := b.String()
	for _, frag := range []string{"Figure 6(a)", "p99.9", "1.50us", "2.00us"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
	b.Reset()
	Figure6CSV(&b, panels)
	if !strings.Contains(b.String(), "fig6,a,20,100,alock,100,0.500000") {
		t.Errorf("csv = %q", b.String())
	}
}

func TestTable1RenderVerdicts(t *testing.T) {
	var b strings.Builder
	Table1(&b, []harness.Table1Cell{
		{LocalClass: "Write", RemoteOp: "CAS", Atomic: false}, // paper: No -> MATCH
		{LocalClass: "Read", RemoteOp: "Read", Atomic: false}, // paper: Yes -> MISMATCH
	})
	out := b.String()
	if !strings.Contains(out, "MATCH") || !strings.Contains(out, "MISMATCH") {
		t.Errorf("verdicts missing:\n%s", out)
	}
}

func TestAblationsRender(t *testing.T) {
	var b strings.Builder
	Ablations(&b, []harness.AblationRow{
		{Algorithm: "alock", Throughput: 2e6, P99NS: 1000},
		{Algorithm: "mcs", Throughput: 1e6, P99NS: 9000},
	})
	out := b.String()
	if !strings.Contains(out, "0.50x") {
		t.Errorf("relative column missing:\n%s", out)
	}
}

func TestHeadlinesRender(t *testing.T) {
	var b strings.Builder
	Headlines(&b, harness.HeadlineRatios{HighContentionVsMCS: 12.5})
	out := b.String()
	if !strings.Contains(out, "up to 29x") || !strings.Contains(out, "12.5x") {
		t.Errorf("headline table wrong:\n%s", out)
	}
}

func TestSummaryRender(t *testing.T) {
	var b strings.Builder
	Summary(&b, harness.Result{
		Config: harness.Config{Algorithm: "alock", Nodes: 2, ThreadsPerNode: 3,
			Locks: 10, LocalityPct: 80},
		Ops: 100, SpanNS: 1_000_000, Throughput: 100_000,
		Latency: stats.Summary{Count: 100, MeanNS: 500, P50NS: 400, P99NS: 2000, P999NS: 3000, MaxNS: 4000},
	})
	out := b.String()
	for _, frag := range []string{"alock", "2 nodes x 3 threads", "100.0k ops/s"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
}

func TestSummaryRenderReadWrite(t *testing.T) {
	var b strings.Builder
	Summary(&b, harness.Result{
		Config: harness.Config{Algorithm: "rw-budget", Nodes: 2, ThreadsPerNode: 3,
			Locks: 10, LocalityPct: 80, ReadPct: 95},
		Ops: 100, ReadOps: 95, WriteOps: 5, SpanNS: 1_000_000, Throughput: 100_000,
		Latency:      stats.Summary{Count: 100, MeanNS: 500, P50NS: 400, P99NS: 2000, MaxNS: 4000},
		ReadLatency:  stats.Summary{Count: 95, MeanNS: 300, P50NS: 250, P99NS: 900, MaxNS: 1500},
		WriteLatency: stats.Summary{Count: 5, MeanNS: 4000, P50NS: 3500, P99NS: 9000, MaxNS: 9500},
	})
	out := b.String()
	for _, frag := range []string{"95% reads", "read latency", "write latency", "n=95", "n=5"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
}

func TestSweepRenderAndCSVReadWrite(t *testing.T) {
	results := []harness.Result{
		{
			Config: harness.Config{Algorithm: "rw-budget", Nodes: 3, ThreadsPerNode: 4,
				Locks: 100, LocalityPct: 90, ReadPct: 70},
			Ops: 70, ReadOps: 50, WriteOps: 20, Throughput: 1000,
			Latency:      stats.Summary{P50NS: 100, P99NS: 1000},
			ReadLatency:  stats.Summary{P99NS: 700},
			WriteLatency: stats.Summary{P99NS: 2000},
		},
	}
	var b strings.Builder
	Sweep(&b, "t", results)
	out := b.String()
	for _, frag := range []string{"read=70%", "read p99", "write p99", "700ns", "2.00us"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
	// Exclusive-only sweeps keep the original column set.
	var b2 strings.Builder
	Sweep(&b2, "t", []harness.Result{{Config: harness.Config{Algorithm: "alock"}}})
	if strings.Contains(b2.String(), "read p99") {
		t.Error("exclusive sweep grew read/write columns")
	}

	var csv strings.Builder
	SweepCSV(&csv, "rw/mixed", results)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "read_pct") || !strings.Contains(lines[0], "write_p99_ns") {
		t.Errorf("csv header missing RW columns: %s", lines[0])
	}
	if !strings.Contains(lines[1], "rw/mixed,rw-budget") {
		t.Errorf("csv row wrong: %s", lines[1])
	}
	if hdr, row := len(strings.Split(lines[0], ",")), len(strings.Split(lines[1], ",")); hdr != row {
		t.Errorf("csv header has %d fields, row has %d", hdr, row)
	}
}

func TestUnitFormatting(t *testing.T) {
	if got := ops(999); got != "999" {
		t.Errorf("ops(999) = %q", got)
	}
	if got := ops(1500); got != "1.5k" {
		t.Errorf("ops(1500) = %q", got)
	}
	if got := ns(999); got != "999ns" {
		t.Errorf("ns(999) = %q", got)
	}
	if got := ns(1_500_000); got != "1.50ms" {
		t.Errorf("ns(1.5ms) = %q", got)
	}
}

func TestCDFSparkline(t *testing.T) {
	pts := []stats.Point{{ValueNS: 1, F: 0.2}, {ValueNS: 2, F: 0.6}, {ValueNS: 3, F: 1.0}}
	s := CDFSparkline(pts, 8)
	if len([]rune(s)) != 8 {
		t.Fatalf("sparkline width = %d", len([]rune(s)))
	}
	if CDFSparkline(nil, 8) != "" {
		t.Fatal("nil points should render empty")
	}
}
