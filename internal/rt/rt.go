// Package rt is the real-time execution engine: simulated threads are real
// goroutines running in parallel, and the six memory operations of api.Ctx
// map onto sync/atomic accesses to the shared backing words.
//
// It exists for two purposes:
//
//  1. Correctness. The discrete-event engine (internal/sim) interleaves at
//     event granularity; rt exposes the lock algorithms to genuine
//     parallelism, preemption, and the Go race detector. Every algorithm's
//     mutual-exclusion tests run here.
//
//  2. Usability. The examples run the public API on this engine, so a
//     downstream user gets a real working lock library, not only a
//     simulator.
//
// The engine can optionally emulate the paper's Table 1 non-atomicity: with
// tearing enabled, a remote CAS becomes load + window + store under a
// per-word remote-side mutex, so remote RMWs stay atomic with each other
// while local operations interleave freely with the torn window.
package rt

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"alock/internal/api"
	"alock/internal/mem"
	"alock/internal/ptr"
)

// Config controls optional fidelity features of the real-time engine.
type Config struct {
	// TornRCAS makes RCAS non-atomic with local operations (Table 1):
	// it executes as load, TornGap, store-if-match under a per-word
	// remote-RMW mutex.
	TornRCAS bool
	// TornGap is the window between the read and write halves.
	TornGap time.Duration
	// RemoteDelay, if nonzero, spin-delays every remote verb to roughly
	// this duration, for coarse wall-clock realism in demos.
	RemoteDelay time.Duration
}

// Engine is a real-time cluster: a memory space plus a set of goroutine
// threads.
type Engine struct {
	space *mem.Space
	cfg   Config
	start time.Time

	stopped atomic.Bool
	wg      sync.WaitGroup
	nextID  atomic.Int64
	seed    int64

	// wordLocks serializes remote RMWs per word in torn mode. Sharded to
	// keep contention realistic.
	wordLocks [64]sync.Mutex
}

// threadSeedMix decorrelates per-thread RNG streams (golden-ratio mix,
// truncated to a positive int64).
const threadSeedMix int64 = 0x1e3779b97f4a7c15

// New creates a real-time engine with `nodes` nodes of wordsPerNode words.
func New(nodes, wordsPerNode int, cfg Config, seed int64) *Engine {
	if cfg.TornRCAS && cfg.TornGap <= 0 {
		cfg.TornGap = 200 * time.Nanosecond
	}
	return &Engine{
		space: mem.NewSpace(nodes, wordsPerNode),
		cfg:   cfg,
		start: time.Now(),
		seed:  seed,
	}
}

// Space exposes the cluster memory for setup code.
func (e *Engine) Space() *mem.Space { return e.space }

// Stop asks all threads to wind down; workload loops observe it through
// ctx.Stopped().
func (e *Engine) Stop() { e.stopped.Store(true) }

// Wait blocks until every spawned thread has returned.
func (e *Engine) Wait() { e.wg.Wait() }

// Spawn starts a real goroutine as a thread on `node`.
func (e *Engine) Spawn(node int, fn func(api.Ctx)) {
	if node < 0 || node >= e.space.Nodes() {
		panic(fmt.Sprintf("rt: Spawn on node %d of %d", node, e.space.Nodes()))
	}
	id := int(e.nextID.Add(1) - 1)
	t := &thread{
		e:    e,
		id:   id,
		node: node,
		rng:  rand.New(rand.NewSource(e.seed ^ (int64(id)+1)*threadSeedMix)),
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		fn(t)
	}()
}

// lockFor returns the remote-RMW serialization mutex for word p.
func (e *Engine) lockFor(p ptr.Ptr) *sync.Mutex {
	h := uint64(p) * 0x9e3779b97f4a7c15
	return &e.wordLocks[h>>58]
}

type thread struct {
	e    *Engine
	id   int
	node int
	rng  *rand.Rand
}

var _ api.Ctx = (*thread)(nil)

func (t *thread) NodeID() int      { return t.node }
func (t *thread) ThreadID() int    { return t.id }
func (t *thread) Now() int64       { return time.Since(t.e.start).Nanoseconds() }
func (t *thread) Stopped() bool    { return t.e.stopped.Load() }
func (t *thread) Rand() *rand.Rand { return t.rng }

func (t *thread) Alloc(words, align int) ptr.Ptr {
	return t.e.space.Alloc(t.node, words, align)
}

func (t *thread) Free(p ptr.Ptr) { t.e.space.Free(p) }

func (t *thread) addr(p ptr.Ptr) *uint64 { return t.e.space.WordAddr(p) }

// casWord is a CAS that reports the previous value, as both the local CAS
// and RDMA CAS APIs do in the paper's pseudocode.
func casWord(addr *uint64, old, new uint64) uint64 {
	for {
		if atomic.CompareAndSwapUint64(addr, old, new) {
			return old
		}
		prev := atomic.LoadUint64(addr)
		if prev != old {
			return prev
		}
		// The word held old by the time we loaded it but the CAS lost a
		// race in between; try again.
	}
}

// --- Local class ---

func (t *thread) Read(p ptr.Ptr) uint64     { return atomic.LoadUint64(t.addr(p)) }
func (t *thread) Write(p ptr.Ptr, v uint64) { atomic.StoreUint64(t.addr(p), v) }
func (t *thread) CAS(p ptr.Ptr, old, new uint64) uint64 {
	return casWord(t.addr(p), old, new)
}

// Fence is a no-op for memory ordering because every access above is
// already sequentially consistent via sync/atomic; it is kept so algorithm
// code matches the paper.
func (t *thread) Fence() {}

// Pause implements spin back-off: brief busy spinning, then yielding to the
// Go scheduler so heavily oversubscribed tests cannot livelock.
func (t *thread) Pause(iter int) {
	switch {
	case iter < 4:
		// brief busy wait
		for i := 0; i < 16<<iter; i++ {
			_ = i
		}
	case iter < 64:
		runtime.Gosched()
	default:
		time.Sleep(time.Microsecond)
	}
}

func (t *thread) Work(d time.Duration) {
	if d <= 0 {
		return
	}
	if d < 20*time.Microsecond {
		spinFor(d)
		return
	}
	time.Sleep(d)
}

// spinFor busy-waits for approximately d without yielding the P, which is
// the right model for a short critical-section body.
func spinFor(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// --- Remote class ---

func (t *thread) remoteDelay() {
	if t.e.cfg.RemoteDelay > 0 {
		spinFor(t.e.cfg.RemoteDelay)
	}
}

func (t *thread) RRead(p ptr.Ptr) uint64 {
	t.remoteDelay()
	return atomic.LoadUint64(t.addr(p))
}

func (t *thread) RWrite(p ptr.Ptr, v uint64) {
	t.remoteDelay()
	atomic.StoreUint64(t.addr(p), v)
}

func (t *thread) RCAS(p ptr.Ptr, old, new uint64) uint64 {
	t.remoteDelay()
	if !t.e.cfg.TornRCAS {
		return casWord(t.addr(p), old, new)
	}
	// Torn mode: remote RMWs on one word serialize against each other via
	// the per-word mutex, but the window between load and store is open to
	// local operations — exactly Table 1's missing atomicity.
	mu := t.e.lockFor(p)
	mu.Lock()
	defer mu.Unlock()
	addr := t.addr(p)
	prev := atomic.LoadUint64(addr)
	spinFor(t.e.cfg.TornGap)
	if prev == old {
		atomic.StoreUint64(addr, new)
	}
	return prev
}
