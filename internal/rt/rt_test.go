package rt_test

import (
	"sync/atomic"
	"testing"
	"time"

	"alock/internal/api"
	"alock/internal/core"
	"alock/internal/locks"
	"alock/internal/ptr"
	"alock/internal/rt"
)

func TestBasicOps(t *testing.T) {
	e := rt.New(2, 1<<12, rt.Config{}, 1)
	done := make(chan struct{})
	e.Spawn(0, func(ctx api.Ctx) {
		defer close(done)
		w := ctx.Alloc(8, 8)
		ctx.Write(w, 5)
		if ctx.Read(w) != 5 {
			t.Error("Read after Write")
		}
		if prev := ctx.CAS(w, 5, 6); prev != 5 {
			t.Errorf("CAS prev = %d", prev)
		}
		if prev := ctx.CAS(w, 5, 7); prev != 6 {
			t.Errorf("failed CAS prev = %d", prev)
		}
		ctx.RWrite(w, 9)
		if ctx.RRead(w) != 9 {
			t.Error("RRead after RWrite")
		}
		if prev := ctx.RCAS(w, 9, 10); prev != 9 {
			t.Errorf("RCAS prev = %d", prev)
		}
		ctx.Free(w)
	})
	e.Wait()
	<-done
}

func TestConcurrentCASIncrement(t *testing.T) {
	e := rt.New(1, 1<<12, rt.Config{}, 1)
	w := e.Space().AllocLine(0)
	const workers, per = 8, 2000
	for i := 0; i < workers; i++ {
		e.Spawn(0, func(ctx api.Ctx) {
			for k := 0; k < per; k++ {
				for it := 0; ; it++ {
					old := ctx.Read(w)
					if ctx.CAS(w, old, old+1) == old {
						break
					}
					ctx.Pause(it)
				}
			}
		})
	}
	e.Wait()
	if got := atomic.LoadUint64(e.Space().WordAddr(w)); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestThreadIdentity(t *testing.T) {
	e := rt.New(3, 1<<10, rt.Config{}, 1)
	ids := make(chan int, 6)
	for n := 0; n < 3; n++ {
		n := n
		for k := 0; k < 2; k++ {
			e.Spawn(n, func(ctx api.Ctx) {
				if ctx.NodeID() != n {
					t.Errorf("NodeID = %d, want %d", ctx.NodeID(), n)
				}
				ids <- ctx.ThreadID()
			})
		}
	}
	e.Wait()
	close(ids)
	seen := map[int]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate thread id %d", id)
		}
		seen[id] = true
	}
	if len(seen) != 6 {
		t.Fatalf("saw %d ids, want 6", len(seen))
	}
}

func TestStopFlag(t *testing.T) {
	e := rt.New(1, 1<<10, rt.Config{}, 1)
	var loops atomic.Int64
	e.Spawn(0, func(ctx api.Ctx) {
		for !ctx.Stopped() {
			loops.Add(1)
			ctx.Pause(100)
		}
	})
	time.Sleep(10 * time.Millisecond)
	e.Stop()
	e.Wait()
	if loops.Load() == 0 {
		t.Fatal("thread never ran")
	}
}

// TestTornRCASWindow shows the Table 1 hazard deterministically on the
// real-time engine: a remote CAS with a long torn window is clobbered by a
// local write that lands inside it.
func TestTornRCASWindow(t *testing.T) {
	e := rt.New(2, 1<<10, rt.Config{TornRCAS: true, TornGap: 80 * time.Millisecond}, 1)
	w := e.Space().AllocLine(0)
	inWindow := make(chan struct{})
	e.Spawn(1, func(ctx api.Ctx) { // remote thread
		close(inWindow) // the RCAS below reads ~immediately, then waits the gap
		prev := ctx.RCAS(w, 0, 500)
		if prev != 0 {
			t.Errorf("RCAS read %d, expected stale 0", prev)
		}
	})
	e.Spawn(0, func(ctx api.Ctx) { // local thread on w's node
		<-inWindow
		time.Sleep(20 * time.Millisecond) // safely inside the 80ms window
		ctx.Write(w, 7)
	})
	e.Wait()
	final := atomic.LoadUint64(e.Space().WordAddr(w))
	if final != 500 {
		t.Fatalf("final = %d; torn RCAS should have clobbered the local write with 500", final)
	}
}

// TestTornRemoteRemoteAtomic: remote RMWs stay atomic with each other even
// in torn mode (the responder serializes them).
func TestTornRemoteRemoteAtomic(t *testing.T) {
	e := rt.New(2, 1<<10, rt.Config{TornRCAS: true, TornGap: 50 * time.Microsecond}, 1)
	w := e.Space().AllocLine(0)
	const workers, per = 4, 200
	for i := 0; i < workers; i++ {
		e.Spawn(1, func(ctx api.Ctx) {
			for k := 0; k < per; k++ {
				for it := 0; ; it++ {
					old := ctx.RRead(w)
					if ctx.RCAS(w, old, old+1) == old {
						break
					}
					ctx.Pause(it)
				}
			}
		})
	}
	e.Wait()
	if got := atomic.LoadUint64(e.Space().WordAddr(w)); got != workers*per {
		t.Fatalf("counter = %d, want %d (remote-remote atomicity lost)", got, workers*per)
	}
}

// mutexRun exercises a lock provider on the rt engine with real
// parallelism; the plain (non-atomic) counter relies on the lock for both
// mutual exclusion and the happens-before edges the race detector checks.
func mutexRun(t *testing.T, prov locks.Provider, nodes, threadsPerNode, iters int) {
	t.Helper()
	e := rt.New(nodes, 1<<18, rt.Config{}, 7)
	lockP := e.Space().AllocLine(0)
	prov.Prepare(e.Space(), []ptr.Ptr{lockP})
	counter := 0 // deliberately unsynchronized: protected only by the lock
	for n := 0; n < nodes; n++ {
		for k := 0; k < threadsPerNode; k++ {
			e.Spawn(n, func(ctx api.Ctx) {
				h := prov.NewHandle(ctx)
				for i := 0; i < iters; i++ {
					h.Lock(lockP)
					counter++
					h.Unlock(lockP)
				}
			})
		}
	}
	e.Wait()
	if want := nodes * threadsPerNode * iters; counter != want {
		t.Fatalf("%s: counter = %d, want %d", prov.Name(), counter, want)
	}
}

func TestALockRealParallelism(t *testing.T) {
	mutexRun(t, locks.NewALockProvider(), 2, 4, 800)
}

func TestALockRealParallelismSingleNode(t *testing.T) {
	mutexRun(t, locks.NewALockProvider(), 1, 8, 800)
}

func TestALockRealParallelismTinyBudgets(t *testing.T) {
	prov := locks.NewTrackedALockProvider(core.Config{LocalBudget: 1, RemoteBudget: 1})
	mutexRun(t, prov, 2, 3, 500)
}

func TestMCSRealParallelism(t *testing.T) {
	mutexRun(t, locks.MCSProvider{}, 2, 4, 800)
}

func TestSpinlockRealParallelism(t *testing.T) {
	mutexRun(t, locks.SpinProvider{}, 2, 4, 500)
}

// tokenMutexRun is mutexRun through the acquisition-token API: the shared
// FenceTable and the per-acquisition descriptor paths run under real
// goroutines, so the race detector checks the whole token layer.
func tokenMutexRun(t *testing.T, prov locks.Provider, nodes, threadsPerNode, iters int) {
	t.Helper()
	e := rt.New(nodes, 1<<18, rt.Config{}, 7)
	lockP := e.Space().AllocLine(0)
	prov.Prepare(e.Space(), []ptr.Ptr{lockP})
	ft := locks.NewFenceTable()
	counter := 0 // deliberately unsynchronized: protected only by the lock
	fenced := uint64(0)
	for n := 0; n < nodes; n++ {
		for k := 0; k < threadsPerNode; k++ {
			e.Spawn(n, func(ctx api.Ctx) {
				h := locks.TokenHandleFor(prov, ctx, ft)
				for i := 0; i < iters; i++ {
					g, _ := h.Acquire(lockP, api.Exclusive, api.AcquireOpts{})
					counter++
					if h.Release(g) != api.Released {
						atomic.AddUint64(&fenced, 1)
					}
				}
			})
		}
	}
	e.Wait()
	if want := nodes * threadsPerNode * iters; counter != want {
		t.Fatalf("%s: counter = %d, want %d", prov.Name(), counter, want)
	}
	if fenced != 0 {
		t.Fatalf("%s: %d live releases fenced", prov.Name(), fenced)
	}
}

func TestTokenAPIRealParallelism(t *testing.T) {
	tokenMutexRun(t, locks.NewALockProvider(), 2, 4, 600)
}

func TestTokenAPIRealParallelismTimedMCS(t *testing.T) {
	tokenMutexRun(t, locks.MCSProvider{Timed: true}, 2, 4, 600)
}

// TestTokenOverlapRealParallelism: overlapping holds of two locks under
// real goroutines — per-acquisition descriptors with the race detector
// watching the protected counters.
func TestTokenOverlapRealParallelism(t *testing.T) {
	e := rt.New(2, 1<<18, rt.Config{}, 11)
	la := e.Space().AllocLine(0)
	lb := e.Space().AllocLine(1)
	prov := locks.NewALockProvider()
	prov.Prepare(e.Space(), []ptr.Ptr{la, lb})
	ft := locks.NewFenceTable()
	ca, cb := 0, 0
	const threads, iters = 6, 400
	for i := 0; i < threads; i++ {
		e.Spawn(i%2, func(ctx api.Ctx) {
			h := locks.TokenHandleFor(prov, ctx, ft)
			for k := 0; k < iters; k++ {
				ga, _ := h.Acquire(la, api.Exclusive, api.AcquireOpts{})
				gb, _ := h.Acquire(lb, api.Exclusive, api.AcquireOpts{})
				ca++
				cb++
				if k%2 == 0 {
					h.Release(gb)
					h.Release(ga)
				} else {
					h.Release(ga)
					h.Release(gb)
				}
			}
		})
	}
	e.Wait()
	if want := threads * iters; ca != want || cb != want {
		t.Fatalf("counters = %d/%d, want %d", ca, cb, want)
	}
}

func TestALockManyLocksRealParallelism(t *testing.T) {
	e := rt.New(2, 1<<18, rt.Config{}, 9)
	const nLocks = 16
	lockPs := make([]ptr.Ptr, nLocks)
	counters := make([]int, nLocks)
	for i := range lockPs {
		lockPs[i] = e.Space().AllocLine(i % 2)
	}
	prov := locks.NewALockProvider()
	const threads, iters = 8, 600
	for i := 0; i < threads; i++ {
		e.Spawn(i%2, func(ctx api.Ctx) {
			h := prov.NewHandle(ctx)
			for k := 0; k < iters; k++ {
				li := ctx.Rand().Intn(nLocks)
				h.Lock(lockPs[li])
				counters[li]++
				h.Unlock(lockPs[li])
			}
		})
	}
	e.Wait()
	total := 0
	for _, c := range counters {
		total += c
	}
	if total != threads*iters {
		t.Fatalf("total = %d, want %d", total, threads*iters)
	}
}

func TestWorkDurations(t *testing.T) {
	e := rt.New(1, 1<<10, rt.Config{}, 1)
	done := make(chan struct{})
	e.Spawn(0, func(ctx api.Ctx) {
		defer close(done)
		t0 := time.Now()
		ctx.Work(100 * time.Microsecond) // short: spin path
		if time.Since(t0) < 90*time.Microsecond {
			t.Error("short Work returned early")
		}
		t1 := time.Now()
		ctx.Work(25 * time.Millisecond) // long: sleep path
		if time.Since(t1) < 20*time.Millisecond {
			t.Error("long Work returned early")
		}
		ctx.Work(0)  // no-op
		ctx.Work(-1) // no-op
	})
	e.Wait()
	<-done
}

func TestPauseAllTiers(t *testing.T) {
	e := rt.New(1, 1<<10, rt.Config{}, 1)
	e.Spawn(0, func(ctx api.Ctx) {
		for _, iter := range []int{0, 2, 10, 100, 1000} {
			ctx.Pause(iter) // busy / Gosched / sleep tiers must all return
		}
	})
	e.Wait()
}

func TestNowMonotonic(t *testing.T) {
	e := rt.New(1, 1<<10, rt.Config{}, 1)
	e.Spawn(0, func(ctx api.Ctx) {
		a := ctx.Now()
		ctx.Work(time.Millisecond)
		b := ctx.Now()
		if b <= a {
			t.Errorf("Now not monotonic: %d then %d", a, b)
		}
	})
	e.Wait()
}

func TestRemoteDelayInjection(t *testing.T) {
	e := rt.New(1, 1<<10, rt.Config{RemoteDelay: 200 * time.Microsecond}, 1)
	w := e.Space().AllocLine(0)
	e.Spawn(0, func(ctx api.Ctx) {
		t0 := time.Now()
		for i := 0; i < 5; i++ {
			ctx.RRead(w)
		}
		if elapsed := time.Since(t0); elapsed < 900*time.Microsecond {
			t.Errorf("5 delayed verbs took only %v", elapsed)
		}
	})
	e.Wait()
}

func TestSpawnBadNodePanics(t *testing.T) {
	e := rt.New(2, 1<<10, rt.Config{}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn(9) did not panic")
		}
	}()
	e.Spawn(9, func(api.Ctx) {})
}

func TestRandStreamsDiffer(t *testing.T) {
	e := rt.New(1, 1<<10, rt.Config{}, 1)
	vals := make(chan int64, 2)
	for i := 0; i < 2; i++ {
		e.Spawn(0, func(ctx api.Ctx) { vals <- ctx.Rand().Int63() })
	}
	e.Wait()
	close(vals)
	var got []int64
	for v := range vals {
		got = append(got, v)
	}
	if got[0] == got[1] {
		t.Fatal("two threads share an identical random stream")
	}
}
