package nic

import (
	"testing"
	"testing/quick"

	"alock/internal/model"
)

func uncongested() model.Params {
	p := model.CX3()
	p.LoopbackRXThreshold = 1 << 30 // never congest
	p.RemoteRXThreshold = 1 << 30
	p.QPCCacheCap = 1 << 20 // never miss after first touch
	return p
}

func TestIdleServiceTime(t *testing.T) {
	p := uncongested()
	n := New(0, p)
	qp := QP{0, 1, 2}
	warm := n.Submit(0, qp, false, 0) // warm the QPC
	arrival := warm + 1000            // NIC idle again by then
	done := n.Submit(arrival, qp, false, 0)
	if want := arrival + p.NICServiceNS; done != want {
		t.Fatalf("idle verb done = %d, want %d", done, want)
	}
}

func TestFIFOQueueing(t *testing.T) {
	p := uncongested()
	n := New(0, p)
	qp := QP{0, 1, 2}
	d1 := n.Submit(0, qp, false, 0)
	d2 := n.Submit(0, qp, false, 0)
	d3 := n.Submit(0, qp, false, 0)
	if !(d1 < d2 && d2 < d3) {
		t.Fatalf("completions not strictly ordered: %d %d %d", d1, d2, d3)
	}
	if d3-d2 != p.NICServiceNS {
		t.Fatalf("queued spacing = %d, want service time %d", d3-d2, p.NICServiceNS)
	}
}

func TestQPCMissPenalty(t *testing.T) {
	p := uncongested()
	n := New(0, p)
	first := n.Submit(0, QP{0, 1, 2}, false, 0) // cold: miss
	if first != p.NICServiceNS+p.QPCMissPenaltyNS {
		t.Fatalf("cold verb done = %d, want %d", first, p.NICServiceNS+p.QPCMissPenaltyNS)
	}
	st := n.Stats()
	if st.QPCMisses != 1 || st.QPCHits != 0 {
		t.Fatalf("stats after cold verb: %+v", st)
	}
	n.Submit(first+1, QP{0, 1, 2}, false, 0) // warm: hit
	if got := n.Stats().QPCHits; got != 1 {
		t.Fatalf("QPCHits = %d, want 1", got)
	}
}

func TestQPThrashing(t *testing.T) {
	// With more live connections than cache capacity, round-robin access
	// must miss every time (LRU worst case) — the QP-thrashing regime.
	p := uncongested()
	p.QPCCacheCap = 8
	n := New(0, p)
	qps := make([]QP, 12)
	for i := range qps {
		qps[i] = QP{0, i, 1}
	}
	now := int64(0)
	for round := 0; round < 5; round++ {
		for _, qp := range qps {
			now = n.Submit(now, qp, false, 0) + 1
		}
	}
	st := n.Stats()
	if st.QPCHits != 0 {
		t.Fatalf("expected pure thrashing, got %d hits", st.QPCHits)
	}
	if n.QPCOccupancy() != 8 {
		t.Fatalf("cache occupancy %d, want capacity 8", n.QPCOccupancy())
	}
}

func TestWorkingSetWithinCapacityAllHits(t *testing.T) {
	p := uncongested()
	p.QPCCacheCap = 16
	n := New(0, p)
	qps := make([]QP, 8)
	for i := range qps {
		qps[i] = QP{0, i, 1}
	}
	now := int64(0)
	for _, qp := range qps { // cold pass
		now = n.Submit(now, qp, false, 0) + 1
	}
	n.ResetStats()
	for round := 0; round < 10; round++ {
		for _, qp := range qps {
			now = n.Submit(now, qp, false, 0) + 1
		}
	}
	st := n.Stats()
	if st.QPCMisses != 0 {
		t.Fatalf("working set fits but saw %d misses", st.QPCMisses)
	}
	if st.QPCHits != 80 {
		t.Fatalf("QPCHits = %d, want 80", st.QPCHits)
	}
}

func TestCongestionInflatesService(t *testing.T) {
	p := uncongested()
	p.RemoteRXThreshold = 4
	p.RemoteAlpha = 0.5
	p.RemoteCap = 10
	n := New(0, p)
	qp := QP{0, 1, 2}
	n.Submit(0, qp, false, 0) // cold miss first
	// Below threshold: base service.
	d1 := n.Submit(0, qp, false, 4)
	d2 := n.Submit(0, qp, false, 4)
	if d2-d1 != p.NICServiceNS {
		t.Fatalf("uncongested gap %d, want %d", d2-d1, p.NICServiceNS)
	}
	// Above threshold: inflated service, linear in the excess.
	d3 := n.Submit(0, qp, false, 6) // excess 2: factor 2
	if d3-d2 != 2*p.NICServiceNS {
		t.Fatalf("congested gap %d, want %d", d3-d2, 2*p.NICServiceNS)
	}
	if n.Stats().Slowdowns != 1 {
		t.Fatalf("slowdowns = %d, want 1", n.Stats().Slowdowns)
	}
}

func TestLoopbackThresholdLowerThanRemote(t *testing.T) {
	p := model.CX3()
	if p.LoopbackRXThreshold >= p.RemoteRXThreshold {
		t.Fatal("loopback congestion must trigger at shallower load than remote")
	}
	n := New(0, p)
	qp := QP{0, 1, 0}
	n.Submit(0, qp, true, 0)          // warm
	load := p.LoopbackRXThreshold + 4 // congests loopback, not remote
	a := n.Submit(0, qp, true, load)
	b := n.Submit(0, qp, true, load)
	loopGap := b - a
	c := n.Submit(0, qp, false, load)
	remoteGap := c - b
	if loopGap <= remoteGap {
		t.Fatalf("loopback verb (%d) should be slower than remote verb (%d) at load %d",
			loopGap, remoteGap, load)
	}
}

func TestCongestionCapBounds(t *testing.T) {
	p := uncongested()
	p.RemoteRXThreshold = 0
	p.RemoteAlpha = 100
	p.RemoteCap = 3
	n := New(0, p)
	qp := QP{0, 1, 2}
	n.Submit(0, qp, false, 0)
	a := n.Submit(0, qp, false, 1000)
	b := n.Submit(0, qp, false, 1000)
	if gap := b - a; gap > int64(float64(p.NICServiceNS)*3)+1 {
		t.Fatalf("service gap %d exceeds capped maximum %d", gap, int64(float64(p.NICServiceNS)*3))
	}
}

func TestBacklogDrains(t *testing.T) {
	p := uncongested()
	n := New(0, p)
	qp := QP{0, 1, 2}
	done := n.Submit(0, qp, false, 0)
	if n.BacklogNS(0) == 0 {
		t.Fatal("expected nonzero backlog right after submit")
	}
	if n.BacklogNS(done) != 0 {
		t.Fatal("backlog did not drain by completion time")
	}
}

func TestResetStatsKeepsQueueState(t *testing.T) {
	p := uncongested()
	n := New(0, p)
	done := n.Submit(0, QP{0, 1, 2}, false, 0)
	n.ResetStats()
	if n.Stats().Verbs != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
	if n.BacklogNS(0) == 0 {
		t.Fatal("ResetStats must not clear the verb queue")
	}
	_ = done
}

// Property: completion times are monotone in arrival time and never precede
// arrival + base service.
func TestQuickSubmitMonotone(t *testing.T) {
	p := uncongested()
	f := func(arrivalDeltas []uint16) bool {
		n := New(0, p)
		now, lastDone := int64(0), int64(0)
		for i, d := range arrivalDeltas {
			now += int64(d)
			done := n.Submit(now, QP{0, i % 4, 1}, false, 0)
			if done < now+p.NICServiceNS {
				return false
			}
			if done < lastDone {
				return false // FIFO: later submits never finish earlier
			}
			lastDone = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: LRU never exceeds capacity and access(k) immediately after
// access(k) always hits.
func TestQuickLRU(t *testing.T) {
	f := func(keys []uint8, rawCap uint8) bool {
		capacity := int(rawCap%16) + 1
		c := newLRU(capacity)
		for _, k := range keys {
			qp := QP{0, int(k % 32), 1}
			c.access(qp)
			if c.len() > capacity {
				return false
			}
			if !c.access(qp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Regression: the QPC miss path used to allocate a node per miss. With
// the free-list pool, cycling a working set larger than capacity must
// allocate nothing once the pool is warm — QPC checks sit on the verb
// hot path and the allocfree analyzer assumes this.
func TestLRUSteadyStateMissesAllocationFree(t *testing.T) {
	c := newLRU(8)
	keys := make([]QP, 16) // working set 2x capacity: every access misses
	for i := range keys {
		keys[i] = QP{0, i, 1}
	}
	for _, k := range keys { // warm the pool to full occupancy
		c.access(k)
	}
	avg := testing.AllocsPerRun(100, func() {
		for _, k := range keys {
			c.access(k)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state LRU cycle allocated %v times, want 0", avg)
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := newLRU(2)
	a, b, d := QP{0, 1, 0}, QP{0, 2, 0}, QP{0, 3, 0}
	c.access(a)
	c.access(b)
	c.access(a) // a most recent
	c.access(d) // evicts b
	if !c.access(a) {
		t.Error("a should still be cached")
	}
	if c.access(b) {
		t.Error("b should have been evicted")
	}
}
