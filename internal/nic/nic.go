// Package nic models the RDMA network interface controller (RNIC) of one
// node, reproducing the two scalability pitfalls the paper documents in
// Section 2:
//
//  1. Loopback / PCIe congestion: each verb occupies the NIC for a service
//     interval; once the backlog of queued verbs exceeds the RX-buffer
//     threshold, per-verb service inflates (PCIe bandwidth is being drained
//     and the RX buffer accumulates), so throughput *declines* past its
//     peak — the Figure 1 effect. Loopback traffic is doubly punishing
//     because both the TX and RX side of a verb land on the same NIC.
//
//  2. QP thrashing: the NIC caches QP contexts (QPCs) in a small on-chip
//     cache (capacity ~450 connections per Wang et al. [31]); a verb whose
//     QPC misses pays a host-memory fetch over PCIe.
//
// The NIC is driven single-threaded by the discrete-event engine; it is not
// safe for concurrent use and does not need to be.
package nic

import (
	"fmt"

	"alock/internal/model"
)

// QP identifies one queue-pair connection: a (source node, source thread,
// destination node) triple. Both the requester and the responder NIC must
// hold the connection's context to process its verbs, so both cache QPs.
type QP struct {
	SrcNode   int
	SrcThread int
	DstNode   int
}

// Stats aggregates per-NIC counters for reporting and tests.
type Stats struct {
	Verbs        int64 // verbs serviced (TX and RX sides both count)
	QPCHits      int64
	QPCMisses    int64
	BusyNS       int64 // total service time accumulated
	MaxBacklogNS int64 // worst queueing delay observed by any verb
	Slowdowns    int64 // verbs serviced at an inflated rate
	DistinctQPs  int64 // connections this NIC has ever serviced
}

// NIC is the model of one node's RNIC.
type NIC struct {
	node   int
	p      model.Params
	freeAt int64 // virtual time at which the verb server becomes idle
	qpc    *lru
	seen   map[QP]struct{} // every connection ever serviced
	stats  Stats
}

// New creates the NIC for node `node` under cost model p.
func New(node int, p model.Params) *NIC {
	return &NIC{node: node, p: p, qpc: newLRU(p.QPCCacheCap), seen: make(map[QP]struct{})}
}

// Node returns the node this NIC belongs to.
func (n *NIC) Node() int { return n.node }

// Stats returns a copy of the NIC's counters.
func (n *NIC) Stats() Stats { return n.stats }

// ResetStats zeroes the counters (e.g. at the end of a warmup window)
// without disturbing the queue or cache state.
func (n *NIC) ResetStats() { n.stats = Stats{} }

// Submit schedules one verb (one direction: TX or RX) on this NIC, arriving
// at virtual time now, over connection qp. loopback marks verbs traversing
// the host's own PCIe loopback path; inFlight is the number of operations
// of that class concurrently touching this NIC (maintained by the engine).
// It returns the time at which the NIC finishes processing the verb.
//
// Service discipline is FIFO: the verb starts at max(now, freeAt).
// Congestion is load-dependent service inflation: every in-flight
// operation is a concurrent DMA stream sharing the host PCIe link, so once
// inFlight exceeds the class threshold, per-verb service inflates
// (Section 2: loopback traffic drains PCIe bandwidth and the RX buffer
// accumulates — hence the far lower loopback threshold). A QPC cache miss
// adds the host-memory fetch penalty.
func (n *NIC) Submit(now int64, qp QP, loopback bool, inFlight int) int64 {
	start := now
	if n.freeAt > start {
		start = n.freeAt
	}
	wait := start - now
	if wait > n.stats.MaxBacklogNS {
		n.stats.MaxBacklogNS = wait
	}

	service := n.p.NICServiceNS

	threshold, alpha, capF := n.p.RemoteRXThreshold, n.p.RemoteAlpha, n.p.RemoteCap
	if loopback {
		threshold, alpha, capF = n.p.LoopbackRXThreshold, n.p.LoopbackAlpha, n.p.LoopbackCap
	}
	if excess := inFlight - threshold; excess > 0 {
		factor := 1 + alpha*float64(excess)
		if factor > capF {
			factor = capF
		}
		service = int64(float64(service) * factor)
		n.stats.Slowdowns++
	}

	// QP context lookup: a miss stalls the verb for a PCIe fetch.
	if n.qpc.access(qp) {
		n.stats.QPCHits++
	} else {
		n.stats.QPCMisses++
		service += n.p.QPCMissPenaltyNS
	}

	if _, ok := n.seen[qp]; !ok {
		n.seen[qp] = struct{}{}
		n.stats.DistinctQPs++
	}
	n.freeAt = start + service
	n.stats.Verbs++
	n.stats.BusyNS += service
	return n.freeAt
}

// BacklogNS reports the current queueing delay a verb arriving at `now`
// would experience, for tests and instrumentation.
func (n *NIC) BacklogNS(now int64) int64 {
	if n.freeAt <= now {
		return 0
	}
	return n.freeAt - now
}

// QPCOccupancy returns the number of QP contexts currently cached.
func (n *NIC) QPCOccupancy() int { return n.qpc.len() }

func (n *NIC) String() string {
	return fmt.Sprintf("nic%d{verbs=%d qpc=%d/%d miss=%d}",
		n.node, n.stats.Verbs, n.qpc.len(), n.p.QPCCacheCap, n.stats.QPCMisses)
}

// --- LRU cache of QP contexts ---

type lruNode struct {
	key        QP
	prev, next *lruNode
}

// lru is a fixed-capacity least-recently-used set of QPs. Implemented with
// an intrusive doubly-linked list plus a map, both O(1) per access. Nodes
// come from a free list grown in doubling slabs (the frictionless model's
// cap of 1<<20 makes eager full preallocation too expensive), so once the
// pool covers the working set the miss path recycles evicted nodes and
// allocates nothing — QPC checks sit on the verb hot path.
type lru struct {
	cap   int
	items map[QP]*lruNode
	head  *lruNode // most recently used
	tail  *lruNode // least recently used
	free  *lruNode // spare nodes, chained on next
	pool  int      // nodes allocated so far, never exceeds cap
}

func newLRU(capacity int) *lru {
	if capacity <= 0 {
		panic("nic: QPC cache capacity must be positive")
	}
	return &lru{cap: capacity, items: make(map[QP]*lruNode)}
}

// grow links a fresh slab of nodes into the free list, doubling the pool
// up to cap. At most O(log cap) slabs are ever allocated; after the pool
// covers the live working set every miss reuses an evicted node.
func (c *lru) grow() {
	k := c.pool
	if k == 0 {
		k = 16
	}
	if rem := c.cap - c.pool; k > rem {
		k = rem
	}
	nodes := make([]lruNode, k) //lint:allow allocfree amortized pool growth: O(log cap) slabs per run, steady-state misses recycle evicted nodes
	for i := range nodes {
		nodes[i].next = c.free
		c.free = &nodes[i]
	}
	c.pool += k
}

func (c *lru) len() int { return len(c.items) }

// access touches key, returning true on hit. On miss the key is inserted,
// evicting the least-recently-used entry if the cache is full.
func (c *lru) access(key QP) bool {
	if n, ok := c.items[key]; ok {
		c.moveToFront(n)
		return true
	}
	if len(c.items) >= c.cap {
		c.evict()
	}
	if c.free == nil {
		c.grow()
	}
	n := c.free
	c.free = n.next
	n.key = key
	c.items[key] = n
	c.pushFront(n)
	return false
}

func (c *lru) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *lru) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *lru) moveToFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *lru) evict() {
	lruEntry := c.tail
	if lruEntry == nil {
		return
	}
	c.unlink(lruEntry)
	delete(c.items, lruEntry.key)
	lruEntry.next = c.free
	c.free = lruEntry
}
