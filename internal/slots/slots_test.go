package slots

import (
	"sync"
	"testing"
)

func TestTryAcquireNeverExceedsBudget(t *testing.T) {
	restore := SetCapacity(4)
	defer restore()

	// Layer 1 wants 3 extras: all available (capacity-1).
	if got := TryAcquire(3); got != 3 {
		t.Fatalf("first TryAcquire(3) = %d, want 3", got)
	}
	// Budget exhausted: a nested layer gets nothing and runs sequentially.
	if got := TryAcquire(2); got != 0 {
		t.Fatalf("nested TryAcquire(2) = %d, want 0", got)
	}
	Release(3)
	if InUse() != 0 {
		t.Fatalf("InUse = %d after full release", InUse())
	}
}

func TestTryAcquirePartialGrant(t *testing.T) {
	restore := SetCapacity(4)
	defer restore()

	if got := TryAcquire(2); got != 2 {
		t.Fatalf("TryAcquire(2) = %d, want 2", got)
	}
	// Only 1 of 5 left.
	if got := TryAcquire(5); got != 1 {
		t.Fatalf("TryAcquire(5) = %d, want 1", got)
	}
	Release(1)
	Release(2)
}

func TestTryAcquireNonPositive(t *testing.T) {
	if got := TryAcquire(0); got != 0 {
		t.Fatalf("TryAcquire(0) = %d", got)
	}
	if got := TryAcquire(-3); got != 0 {
		t.Fatalf("TryAcquire(-3) = %d", got)
	}
	Release(0) // no-op, must not panic
}

func TestReleaseUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without acquire did not panic")
		}
	}()
	Release(1)
}

func TestPeakTracksHighWater(t *testing.T) {
	restore := SetCapacity(8)
	defer restore()

	a := TryAcquire(3)
	b := TryAcquire(2)
	Release(b)
	Release(a)
	if p := Peak(); p != 5 {
		t.Fatalf("Peak = %d, want 5", p)
	}
	// SetCapacity resets the tracker.
	restore2 := SetCapacity(8)
	defer restore2()
	if p := Peak(); p != 0 {
		t.Fatalf("Peak after reset = %d, want 0", p)
	}
}

// TestConcurrentAccountingInvariant: under concurrent acquire/release churn
// the outstanding count never exceeds capacity-1 — the property that makes
// nested parallel layers (sweep workers x engine shards) compose to at most
// GOMAXPROCS running goroutines.
func TestConcurrentAccountingInvariant(t *testing.T) {
	const cap = 6
	restore := SetCapacity(cap)
	defer restore()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(want int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				got := TryAcquire(want%3 + 1)
				if u := InUse(); u > cap-1 {
					t.Errorf("InUse %d exceeds budget %d", u, cap-1)
				}
				Release(got)
			}
		}(i)
	}
	wg.Wait()
	if InUse() != 0 {
		t.Fatalf("InUse = %d after churn", InUse())
	}
	if p := Peak(); p > cap-1 {
		t.Fatalf("Peak %d exceeds budget %d", p, cap-1)
	}
}
