// Package slots is the process-wide execution-slot budget shared by every
// layer that multiplies goroutines: the sweep runner's config-level workers
// and the simulator's intra-run shard executors both want "all the cores",
// and when nested (a parallel sweep of configs that each run a sharded
// engine) they would oversubscribe the host multiplicatively. This package
// makes the product compose: there are GOMAXPROCS slots in total, every
// parallel layer owns one slot implicitly (the goroutine that called it,
// which blocks while its children run), and each ADDITIONAL goroutine a
// layer wants to run concurrently must win one extra slot here. Acquisition
// is non-blocking — a layer that wins nothing simply runs its work on the
// calling goroutine, sequentially, which every layer must be able to do
// anyway (and which, by design, never changes results: worker counts are
// degrees of concurrency, not inputs to any schedule).
//
// The accounting: at most capacity-1 extra slots are ever outstanding, so
// concurrently-executing goroutines across all nested layers total at most
// 1 (the root caller) + (capacity-1) = GOMAXPROCS.
package slots

import (
	"runtime"
	"sync"
)

var (
	mu       sync.Mutex
	capacity = runtime.GOMAXPROCS(0)
	inUse    int
	peak     int
)

// TryAcquire claims up to n extra execution slots without blocking and
// returns how many were granted (possibly 0). The caller must Release
// exactly the granted count when its parallel section ends.
func TryAcquire(n int) int {
	if n <= 0 {
		return 0
	}
	mu.Lock()
	defer mu.Unlock()
	avail := capacity - 1 - inUse
	if avail <= 0 {
		return 0
	}
	if n > avail {
		n = avail
	}
	inUse += n
	if inUse > peak {
		peak = inUse
	}
	return n
}

// Release returns n previously granted slots to the budget.
func Release(n int) {
	if n <= 0 {
		return
	}
	mu.Lock()
	defer mu.Unlock()
	if n > inUse {
		panic("slots: Release without a matching TryAcquire")
	}
	inUse -= n
}

// InUse reports the extra slots currently outstanding (excludes the
// implicit one-per-layer caller slots).
func InUse() int {
	mu.Lock()
	defer mu.Unlock()
	return inUse
}

// Capacity reports the total slot budget (GOMAXPROCS at init).
func Capacity() int {
	mu.Lock()
	defer mu.Unlock()
	return capacity
}

// SetCapacity overrides the budget and resets the peak tracker, returning a
// restore function — a test hook for exercising contention on hosts whose
// GOMAXPROCS would hide it.
func SetCapacity(n int) (restore func()) {
	mu.Lock()
	defer mu.Unlock()
	prev := capacity
	capacity = n
	peak = inUse
	return func() {
		mu.Lock()
		defer mu.Unlock()
		capacity = prev
	}
}

// Peak reports the maximum extra slots outstanding since the last
// SetCapacity — with the implicit root slot, peak+1 bounds the process's
// concurrently-executing goroutines over that span.
func Peak() int {
	mu.Lock()
	defer mu.Unlock()
	return peak
}
