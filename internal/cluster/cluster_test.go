package cluster

import (
	"testing"

	"alock/internal/locktable"
	"alock/internal/mem"
)

func testTable(t *testing.T, nodes, locks int) *locktable.Table {
	t.Helper()
	return locktable.New(mem.NewSpace(nodes, 1<<16), locks)
}

// TestPlacementCoversAllKeys: every placement must send every key to a
// shard in range, and every shard of a reasonably sized deployment must
// own at least one key (no silent dead shards).
func TestPlacementCoversAllKeys(t *testing.T) {
	table := testTable(t, 4, 200)
	for _, name := range []string{"hash", "home"} {
		p, err := NewPlacement(name, 4, table)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Errorf("placement name %q, want %q", p.Name(), name)
		}
		owned := make([]int, 4)
		for k := 0; k < 200; k++ {
			s := p.Shard(k)
			if s < 0 || s >= 4 {
				t.Fatalf("%s: key %d -> shard %d", name, k, s)
			}
			owned[s]++
		}
		for s, n := range owned {
			if n == 0 {
				t.Errorf("%s: shard %d owns no keys", name, s)
			}
		}
	}
	if _, err := NewPlacement("bogus", 4, table); err == nil {
		t.Error("bogus placement name accepted")
	}
}

// TestPlacementDeterministic: the same key maps to the same shard across
// independently constructed placements.
func TestPlacementDeterministic(t *testing.T) {
	table := testTable(t, 4, 100)
	a, _ := NewPlacement("hash", 4, table)
	b, _ := NewPlacement("hash", 4, table)
	for k := 0; k < 100; k++ {
		if a.Shard(k) != b.Shard(k) {
			t.Fatalf("hash placement unstable at key %d: %d vs %d", k, a.Shard(k), b.Shard(k))
		}
	}
}

func maxShardLoad(p Placement, weights []float64, shards int) float64 {
	load := make([]float64, shards)
	for k, w := range weights {
		load[p.Shard(k)] += w
	}
	max := load[0]
	for _, l := range load[1:] {
		if l > max {
			max = l
		}
	}
	return max
}

// TestRebalanceReducesMaxLoad: under Zipf-skewed weights the greedy
// hot-key rebalance must not increase the most-loaded shard's share, and
// must strictly reduce it when the base placement stacks hot keys.
func TestRebalanceReducesMaxLoad(t *testing.T) {
	table := testTable(t, 4, 100)
	weights := KeyWeights(100, 1.5)
	for _, name := range []string{"hash", "home"} {
		base, _ := NewPlacement(name, 4, table)
		before := maxShardLoad(base, weights, 4)
		reb := RebalanceHotKeys(base, weights, 4)
		after := maxShardLoad(reb, weights, 4)
		if after > before+1e-12 {
			t.Errorf("%s: rebalance increased max load %.4f -> %.4f", name, before, after)
		}
	}
	// home placement on 4 shards stacks keys 0 and 4 (both hot under
	// Zipf 1.5) onto shard 0; rebalance must split them.
	base, _ := NewPlacement("home", 4, table)
	reb := RebalanceHotKeys(base, weights, 4)
	if reb == base {
		t.Fatal("rebalance returned the base placement despite stacked hot keys")
	}
	if before, after := maxShardLoad(base, weights, 4), maxShardLoad(reb, weights, 4); after >= before {
		t.Errorf("home: rebalance did not reduce max load (%.4f -> %.4f)", before, after)
	}
}

// TestRebalanceNoopCases: uniform weights or a single shard must return
// the base placement untouched.
func TestRebalanceNoopCases(t *testing.T) {
	table := testTable(t, 4, 100)
	base, _ := NewPlacement("hash", 4, table)
	if got := RebalanceHotKeys(base, KeyWeights(100, 0), 4); got != base {
		t.Error("uniform weights should be a no-op")
	}
	if got := RebalanceHotKeys(base, KeyWeights(100, 1.5), 1); got != base {
		t.Error("single shard should be a no-op")
	}
}

// TestShardQueueFIFO: push/pop preserves arrival order through slice
// compaction.
func TestShardQueueFIFO(t *testing.T) {
	sh := &shard{}
	for round := 0; round < 3; round++ {
		for i := int64(0); i < 10; i++ {
			sh.push(request{client: i})
		}
		for i := int64(0); i < 10; i++ {
			r, ok := sh.pop()
			if !ok || r.client != i {
				t.Fatalf("round %d: pop %d = (%v, %v)", round, i, r.client, ok)
			}
		}
		if _, ok := sh.pop(); ok {
			t.Fatal("pop from empty queue succeeded")
		}
	}
	if sh.maxQueueLen != 10 {
		t.Errorf("maxQueueLen = %d, want 10", sh.maxQueueLen)
	}
}

// TestAdmissionPolicies: drop-tail sheds the newcomer, drop-head sheds
// the oldest; both keep the queue at capacity and count every shed.
func TestAdmissionPolicies(t *testing.T) {
	mk := func(policy Policy) (*Cluster, *shard) {
		c := &Cluster{spec: Spec{QueueCap: 2, Policy: policy, WarmupNS: 0}}
		sh := &shard{}
		c.sh = []*shard{sh}
		return c, sh
	}

	c, sh := mk(DropTail)
	for i := int64(0); i < 4; i++ {
		c.admit(sh, request{client: i, arriveNS: i})
	}
	if sh.offered != 4 || sh.shed != 2 || sh.qlen() != 2 {
		t.Fatalf("drop-tail: offered=%d shed=%d qlen=%d", sh.offered, sh.shed, sh.qlen())
	}
	if r, _ := sh.pop(); r.client != 0 {
		t.Errorf("drop-tail kept %d at head, want oldest (0)", r.client)
	}

	c, sh = mk(DropHead)
	for i := int64(0); i < 4; i++ {
		c.admit(sh, request{client: i, arriveNS: i})
	}
	if sh.offered != 4 || sh.shed != 2 || sh.qlen() != 2 {
		t.Fatalf("drop-head: offered=%d shed=%d qlen=%d", sh.offered, sh.shed, sh.qlen())
	}
	if r, _ := sh.pop(); r.client != 2 {
		t.Errorf("drop-head kept %d at head, want freshest window start (2)", r.client)
	}
}

// TestFinalizeSweepsQueued: leftover queued requests become shed, making
// offered == served + shed exact.
func TestFinalizeSweepsQueued(t *testing.T) {
	c := &Cluster{spec: Spec{QueueCap: 8, WarmupNS: 100}}
	sh := &shard{}
	c.sh = []*shard{sh}
	for i := int64(0); i < 5; i++ {
		c.admit(sh, request{client: i, arriveNS: i * 50}) // arrivals 0,50,..200: two post-warmup
	}
	m := c.Metrics()
	if m.Offered != 5 || m.Served != 0 || m.Shed != 5 {
		t.Fatalf("after sweep: offered=%d served=%d shed=%d", m.Offered, m.Served, m.Shed)
	}
	if m.RecShed != 3 {
		t.Errorf("recorded shed = %d, want 3 (arrivals at 100,150,200)", m.RecShed)
	}
	c.Finalize() // idempotent
	if m2 := c.Metrics(); m2.Shed != 5 {
		t.Errorf("double finalize changed shed to %d", m2.Shed)
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Shards: 2, WorkersPerShard: 2, Clients: 10, RateOPS: 1000, QueueCap: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bad := []Spec{
		{Shards: 0, WorkersPerShard: 2, Clients: 10, RateOPS: 1000, QueueCap: 4},
		{Shards: 2, WorkersPerShard: 0, Clients: 10, RateOPS: 1000, QueueCap: 4},
		{Shards: 2, WorkersPerShard: 2, Clients: 0, RateOPS: 1000, QueueCap: 4},
		{Shards: 2, WorkersPerShard: 2, Clients: 10, RateOPS: 0, QueueCap: 4},
		{Shards: 2, WorkersPerShard: 2, Clients: 10, RateOPS: 1000, QueueCap: 0},
		{Shards: 2, WorkersPerShard: 2, Clients: 10, RateOPS: 1000, QueueCap: 4, ReadPct: 101},
		{Shards: 2, WorkersPerShard: 2, Clients: 10, RateOPS: 1000, QueueCap: 4, BurstOnNS: 5},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]Policy{"": DropTail, "drop-tail": DropTail, "drop-head": DropHead} {
		got, err := ParsePolicy(name)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParsePolicy("lifo"); err == nil {
		t.Error("unknown policy accepted")
	}
}
