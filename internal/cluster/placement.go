// placement.go maps lock-table keys to service shards. Placement is a
// pure, deterministic function fixed before the run starts — re-placement
// during a run would be cross-shard mutable state, exactly what the
// shard-local design forbids — so the rebalance hook is a pre-run
// transform: it reads the key popularity weights and returns a new
// placement with the hottest keys re-homed.
package cluster

import (
	"fmt"
	"sort"

	"alock/internal/locktable"
	"alock/internal/stats"
)

// Placement maps a lock index to the service shard that owns it.
type Placement interface {
	// Name identifies the placement for reports.
	Name() string
	// Shard returns the owning shard of key, in [0, shards).
	Shard(key int) int
}

// NewPlacement builds a placement by name: "hash" (consistent hashing,
// the default) or "home" (a key is served by the shard co-located with
// its lock's home node).
func NewPlacement(name string, shards int, table *locktable.Table) (Placement, error) {
	switch name {
	case "", "hash":
		return newHashPlacement(shards), nil
	case "home":
		return homePlacement{table: table, shards: shards}, nil
	}
	return nil, fmt.Errorf("cluster: unknown placement %q (want hash or home)", name)
}

// KeyWeights is the key-popularity vector placements and generators share:
// Zipf(s) over lock indices when s > 1 (rank 0 hottest, matching the
// closed-loop skew convention), uniform otherwise.
func KeyWeights(n int, zipfS float64) []float64 {
	if zipfS > 1 {
		return stats.ZipfWeights(n, zipfS)
	}
	return stats.ZipfWeights(n, 0)
}

// mix64 is the splitmix64 finalizer — the same full-avalanche mixer the
// engine's RNG partitioning uses, reimplemented locally because placement
// hashing is addressing, not randomness (nothing here draws from a
// stream).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashVnodes is the virtual-node count per shard on the consistent-hash
// ring; enough that shard loads even out within a few percent.
const hashVnodes = 64

type ringPoint struct {
	h     uint64
	shard int
}

// hashPlacement is classic consistent hashing: shards× vnodes points on a
// ring, a key belongs to the first point at or clockwise of its hash.
type hashPlacement struct {
	ring []ringPoint
}

func newHashPlacement(shards int) *hashPlacement {
	p := &hashPlacement{ring: make([]ringPoint, 0, shards*hashVnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < hashVnodes; v++ {
			h := mix64(uint64(s)<<32 | uint64(v))
			p.ring = append(p.ring, ringPoint{h: h, shard: s})
		}
	}
	sort.Slice(p.ring, func(i, j int) bool {
		if p.ring[i].h != p.ring[j].h {
			return p.ring[i].h < p.ring[j].h
		}
		// Hash collisions between vnodes resolve by shard ID so the ring
		// order is a pure function of (shards), never of sort internals.
		return p.ring[i].shard < p.ring[j].shard
	})
	return p
}

func (p *hashPlacement) Name() string { return "hash" }

func (p *hashPlacement) Shard(key int) int {
	h := mix64(uint64(key))
	i := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].h >= h })
	if i == len(p.ring) {
		i = 0 // wrap: past the last point means the first point owns it
	}
	return p.ring[i].shard
}

// homePlacement serves each key from the shard co-located with the key's
// lock home: shard = HomeNode(key) mod shards. Under a skewed-home table
// this concentrates service load exactly where the data already is —
// minimal fabric traffic, maximal imbalance — the foil the rebalance hook
// exists for.
type homePlacement struct {
	table  *locktable.Table
	shards int
}

func (p homePlacement) Name() string { return "home" }

func (p homePlacement) Shard(key int) int { return p.table.HomeNode(key) % p.shards }

// overridePlacement wraps a base placement with per-key overrides
// (override[key] >= 0 wins; -1 defers to the base).
type overridePlacement struct {
	base     Placement
	override []int
	moved    int
}

func (p *overridePlacement) Name() string {
	return fmt.Sprintf("%s+rebalance(%d)", p.base.Name(), p.moved)
}

func (p *overridePlacement) Shard(key int) int {
	if key < len(p.override) && p.override[key] >= 0 {
		return p.override[key]
	}
	return p.base.Shard(key)
}

// RebalanceHotKeys is the hot-shard rebalance hook: given the key
// popularity weights, it lifts the hottest keys out of the base placement
// and re-assigns each — in descending weight order — to the currently
// least-loaded shard (longest-processing-time greedy). Everything is
// deterministic: candidates are the top 2·shards keys by (weight, then
// lower index), and load ties resolve to the lower shard ID. Returns the
// base unchanged when there is nothing to move (uniform weights spread
// load already; a single shard has nowhere to move to).
func RebalanceHotKeys(base Placement, weights []float64, shards int) Placement {
	if shards < 2 || len(weights) == 0 {
		return base
	}
	load := make([]float64, shards)
	for k, w := range weights {
		if w > 0 {
			load[base.Shard(k)] += w
		}
	}

	// Hot candidates: any key whose weight exceeds its fair share of a
	// shard (weight > shardLoad_mean / keysPerShard is too fiddly; the
	// robust cut is weight > 1/len(weights) · hotFactor), capped at
	// 2·shards keys so rebalancing stays a spot fix, not a re-placement.
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return base
	}
	fair := total / float64(len(weights))
	type hotKey struct {
		k int
		w float64
	}
	var hot []hotKey
	for k, w := range weights {
		if w > 2*fair {
			hot = append(hot, hotKey{k: k, w: w})
		}
	}
	if len(hot) == 0 {
		return base
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].w != hot[j].w {
			return hot[i].w > hot[j].w
		}
		return hot[i].k < hot[j].k
	})
	if max := 2 * shards; len(hot) > max {
		hot = hot[:max]
	}

	// Lift the candidates out, then greedily re-pack heaviest-first onto
	// the least-loaded shard.
	for _, h := range hot {
		load[base.Shard(h.k)] -= h.w
	}
	override := make([]int, len(weights))
	for i := range override {
		override[i] = -1
	}
	moved := 0
	for _, h := range hot {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		override[h.k] = best
		load[best] += h.w
		if best != base.Shard(h.k) {
			moved++
		}
	}
	if moved == 0 {
		return base
	}
	return &overridePlacement{base: base, override: override, moved: moved}
}
