// Package cluster layers a sharded lock *service* over the deterministic
// engine: an open-loop client population offering Poisson traffic to a set
// of service shards, each shard a bounded admission queue drained by a
// fixed worker pool that executes operations against the shared lock table
// through the token API. It turns "N closed-loop threads on one table"
// into "millions of logical clients on a sharded service" — clients are
// arrival events carrying a client ID, so the population costs
// O(outstanding requests), never O(clients).
//
// Determinism under the windowed parallel executor rests on two choices:
//
//   - Poisson splitting. Instead of one global arrival process routed to
//     shards (a cross-shard sequence), each shard runs its own generator
//     thinned to rate λ·W_s, where W_s is the shard's share of the key
//     popularity weight. Superposing independent Poisson processes of
//     rates λ·W_s is statistically identical to routing one rate-λ process
//     by key popularity — but no shard's arrival sequence ever depends on
//     another shard's draws. Each generator owns a sim.SubsystemArrival
//     stream keyed by shard ID.
//
//   - Shard-local Go state. A shard's queue, counters and histograms are
//     touched only by its generator and workers, all spawned on the
//     shard's home node. One engine shard serializes the threads of one
//     node in every execution mode, so the service needs no locks and
//     replays bit-identically at any -parallel or -engine-shards width.
//
// Lock state itself lives in simulated memory, where cross-node access is
// the engine's job; workers reach locks homed anywhere through ordinary
// (costed) local or RDMA operations.
package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"alock/internal/api"
	"alock/internal/locks"
	"alock/internal/locktable"
	"alock/internal/sim"
	"alock/internal/stats"
)

// pollNS is the idle worker's re-check quantum. A constant (never drawn
// from randomness) so service order is a pure function of the schedule.
const pollNS = 500

// Policy selects what a full admission queue does with overflow.
type Policy uint8

const (
	// DropTail sheds the incoming request; the queue keeps its oldest
	// work (FIFO fairness, but queue-wait grows to the cap).
	DropTail Policy = iota
	// DropHead evicts the oldest queued request and admits the newcomer
	// (freshest-first under overload; bounded staleness).
	DropHead
)

// ParsePolicy maps a CLI/config name to a Policy. The empty string is
// DropTail, the default.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "", "drop-tail":
		return DropTail, nil
	case "drop-head":
		return DropHead, nil
	}
	return 0, fmt.Errorf("cluster: unknown admission policy %q (want drop-tail or drop-head)", name)
}

// String names the policy as ParsePolicy accepts it.
func (p Policy) String() string {
	if p == DropHead {
		return "drop-head"
	}
	return "drop-tail"
}

// Spec configures one lock-service deployment.
type Spec struct {
	// Shards is the number of service shards; shard s is homed on node
	// s % nodes, so shards beyond the node count stack round-robin.
	Shards int
	// WorkersPerShard is each shard's worker-pool size.
	WorkersPerShard int
	// Clients is the logical client population; every arrival carries a
	// client ID drawn uniformly from [0, Clients).
	Clients int64
	// RateOPS is the aggregate offered load in operations per second,
	// split across shards by key-popularity weight (Poisson splitting).
	RateOPS float64
	// QueueCap bounds each shard's admission queue.
	QueueCap int
	// Policy is the overflow policy of a full queue.
	Policy Policy
	// ReadPct is the percentage of arrivals requesting shared mode.
	ReadPct int
	// CSWorkNS is the critical-section body each served request executes.
	CSWorkNS int64
	// TimeoutNS, if positive, bounds each acquisition from dequeue; a
	// timed-out request counts as shed (service-level rejection) and in
	// the Timeouts counter.
	TimeoutNS int64
	// WarmupNS gates recording: only requests ARRIVING at or after the
	// warmup boundary enter the recorded counters and histograms. The
	// whole-run counters (Offered/Served/Shed) ignore it — they exist for
	// the conservation invariant.
	WarmupNS int64
	// BurstOnNS/BurstOffNS, when both positive, run each generator
	// through on/off phases with the same semantics as the closed-loop
	// workload's burst fields: arrivals flow during on-phases, pause
	// during off-phases, with the first phase boundary staggered per
	// shard from its arrival stream.
	BurstOnNS  int64
	BurstOffNS int64
}

// Validate rejects deployments the service cannot represent.
func (s Spec) Validate() error {
	if s.Shards < 1 {
		return fmt.Errorf("cluster: %d shards", s.Shards)
	}
	if s.WorkersPerShard < 1 {
		return fmt.Errorf("cluster: %d workers per shard", s.WorkersPerShard)
	}
	if s.Clients < 1 {
		return fmt.Errorf("cluster: client population %d", s.Clients)
	}
	if !(s.RateOPS > 0) {
		return fmt.Errorf("cluster: arrival rate %v ops/s", s.RateOPS)
	}
	if s.QueueCap < 1 {
		return fmt.Errorf("cluster: queue capacity %d", s.QueueCap)
	}
	if s.ReadPct < 0 || s.ReadPct > 100 {
		return fmt.Errorf("cluster: read share %d%%", s.ReadPct)
	}
	if s.CSWorkNS < 0 || s.TimeoutNS < 0 || s.WarmupNS < 0 {
		return fmt.Errorf("cluster: negative duration (cs=%d timeout=%d warmup=%d)",
			s.CSWorkNS, s.TimeoutNS, s.WarmupNS)
	}
	if s.BurstOnNS < 0 || s.BurstOffNS < 0 || (s.BurstOnNS > 0) != (s.BurstOffNS > 0) {
		return fmt.Errorf("cluster: burst phases need both on and off (on=%d off=%d)",
			s.BurstOnNS, s.BurstOffNS)
	}
	return nil
}

// request is one in-flight client operation — the entire footprint of one
// logical client.
type request struct {
	client   int64
	key      int32
	mode     api.Mode
	arriveNS int64
}

// shard is one service shard: its key partition, admission queue and
// metric state. Everything here is touched only by threads on sh.node.
type shard struct {
	id   int
	node int
	keys []int32         // lock indices this shard serves, ascending
	pick *stats.Weighted // conditional popularity over keys

	meanGapNS float64 // thinned interarrival mean (1e9 / (λ · W_s))

	queue []request
	head  int

	// Whole-run conservation counters: offered == served + shed always
	// holds after Finalize (timeouts are a subset of shed).
	offered, served, shed, timeouts int64
	// Recorded (arrival >= WarmupNS) counterparts and histograms.
	recOffered, recServed, recShed, recTimeouts int64
	recReads, recWrites                         int64
	firstRecNS, lastRecNS                       int64
	maxQueueLen                                 int
	queueWait, acquireWait, hold, e2e           stats.Hist
	readE2E, writeE2E                           stats.Hist
}

func (sh *shard) qlen() int { return len(sh.queue) - sh.head }

func (sh *shard) push(r request) {
	sh.queue = append(sh.queue, r)
	if sh.qlen() > sh.maxQueueLen {
		sh.maxQueueLen = sh.qlen()
	}
}

func (sh *shard) pop() (request, bool) {
	if sh.head == len(sh.queue) {
		return request{}, false
	}
	r := sh.queue[sh.head]
	sh.head++
	if sh.head == len(sh.queue) {
		sh.queue = sh.queue[:0]
		sh.head = 0
	}
	return r, true
}

// Cluster is one installed lock-service deployment.
type Cluster struct {
	spec  Spec
	table *locktable.Table
	sh    []*shard
	swept bool
}

// Install partitions the lock table's keys across spec.Shards by the given
// placement, weights each shard by its share of the key-popularity vector,
// and spawns every shard's generator and worker threads on the shard's
// home node. weights must have one non-negative entry per lock (see
// KeyWeights); a shard whose keys carry zero total weight receives no
// generator (its thinned rate is zero) but keeps its workers.
func Install(e *sim.Engine, table *locktable.Table, prov locks.Provider,
	ft *locks.FenceTable, place Placement, weights []float64, spec Spec) (*Cluster, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(weights) != table.Len() {
		return nil, fmt.Errorf("cluster: %d weights for %d locks", len(weights), table.Len())
	}

	perKeys := make([][]int32, spec.Shards)
	perW := make([][]float64, spec.Shards)
	shardW := make([]float64, spec.Shards)
	for k := 0; k < table.Len(); k++ {
		s := place.Shard(k)
		if s < 0 || s >= spec.Shards {
			return nil, fmt.Errorf("cluster: placement %s sent key %d to shard %d of %d",
				place.Name(), k, s, spec.Shards)
		}
		perKeys[s] = append(perKeys[s], int32(k))
		perW[s] = append(perW[s], weights[k])
		if weights[k] > 0 {
			shardW[s] += weights[k]
		}
	}

	nodes := table.Nodes()
	c := &Cluster{spec: spec, table: table, sh: make([]*shard, spec.Shards)}
	prng := e.RNG()
	for s := 0; s < spec.Shards; s++ {
		sh := &shard{id: s, node: s % nodes, keys: perKeys[s]}
		if shardW[s] > 0 {
			sh.pick = stats.NewWeighted(perW[s])
			sh.meanGapNS = 1e9 / (spec.RateOPS * shardW[s])
		}
		c.sh[s] = sh
		if sh.pick != nil {
			rng := prng.Stream(sim.SubsystemArrival, s)
			e.Spawn(sh.node, func(ctx api.Ctx) { c.generate(ctx, sh, rng) })
		}
		for w := 0; w < spec.WorkersPerShard; w++ {
			e.Spawn(sh.node, func(ctx api.Ctx) { c.serve(ctx, sh, prov, ft) })
		}
	}
	return c, nil
}

// generate is one shard's open-loop arrival process: exponential gaps at
// the shard's thinned rate, each arrival carrying a fresh client ID, a
// key from the shard's conditional popularity and an acquire mode. All
// randomness comes from the shard's own SubsystemArrival stream.
func (c *Cluster) generate(ctx api.Ctx, sh *shard, rng *rand.Rand) {
	spec := c.spec
	var phaseEnd int64
	if spec.BurstOnNS > 0 {
		// Stagger the first boundary so shards don't phase-lock, exactly
		// as the closed-loop workload staggers threads.
		phaseEnd = ctx.Now() + 1 + rng.Int63n(spec.BurstOnNS)
	}
	for !ctx.Stopped() {
		if spec.BurstOnNS > 0 && ctx.Now() >= phaseEnd {
			ctx.Work(time.Duration(spec.BurstOffNS))
			phaseEnd = ctx.Now() + spec.BurstOnNS
			continue
		}
		ctx.Work(time.Duration(stats.ExpGapNS(rng, sh.meanGapNS)))
		if ctx.Stopped() {
			return
		}
		r := request{
			client:   rng.Int63n(spec.Clients),
			key:      sh.keys[sh.pick.Pick(rng)],
			arriveNS: ctx.Now(),
		}
		if spec.ReadPct > 0 && rng.Intn(100) < spec.ReadPct {
			r.mode = api.Shared
		}
		c.admit(sh, r)
	}
}

// admit applies the shard's admission control to one arrival.
func (c *Cluster) admit(sh *shard, r request) {
	sh.offered++
	if r.arriveNS >= c.spec.WarmupNS {
		sh.recOffered++
	}
	if sh.qlen() >= c.spec.QueueCap {
		if c.spec.Policy == DropTail {
			c.shedOne(sh, r)
			return
		}
		if old, ok := sh.pop(); ok {
			c.shedOne(sh, old)
		}
	}
	sh.push(r)
}

func (c *Cluster) shedOne(sh *shard, r request) {
	sh.shed++
	if r.arriveNS >= c.spec.WarmupNS {
		sh.recShed++
	}
}

// serve is one worker: drain the shard queue FIFO, executing each request
// against the lock table through the token API. Workers draw no
// randomness — service order is a pure function of the schedule.
func (c *Cluster) serve(ctx api.Ctx, sh *shard, prov locks.Provider, ft *locks.FenceTable) {
	spec := c.spec
	h := locks.TokenHandleFor(prov, ctx, ft)
	cs := time.Duration(spec.CSWorkNS)
	for !ctx.Stopped() {
		r, ok := sh.pop()
		if !ok {
			ctx.Work(pollNS * time.Nanosecond)
			continue
		}
		deqNS := ctx.Now()
		var opt api.AcquireOpts
		if spec.TimeoutNS > 0 {
			opt.DeadlineNS = deqNS + spec.TimeoutNS
		}
		g, out := h.Acquire(c.table.Ptr(int(r.key)), r.mode, opt)
		if !out.Granted() {
			// A deadline miss is a service-level rejection: shed, so the
			// conservation invariant stays exact.
			sh.timeouts++
			sh.shed++
			if r.arriveNS >= spec.WarmupNS {
				sh.recTimeouts++
				sh.recShed++
			}
			continue
		}
		grantNS := ctx.Now()
		if cs > 0 {
			ctx.Work(cs)
		}
		h.Release(g)
		endNS := ctx.Now()
		sh.served++
		if r.arriveNS >= spec.WarmupNS {
			sh.recServed++
			if r.mode == api.Shared {
				sh.recReads++
				sh.readE2E.Add(endNS - r.arriveNS)
			} else {
				sh.recWrites++
				sh.writeE2E.Add(endNS - r.arriveNS)
			}
			sh.queueWait.Add(deqNS - r.arriveNS)
			sh.acquireWait.Add(grantNS - deqNS)
			sh.hold.Add(endNS - grantNS)
			sh.e2e.Add(endNS - r.arriveNS)
			if sh.firstRecNS == 0 || endNS < sh.firstRecNS {
				sh.firstRecNS = endNS
			}
			if endNS > sh.lastRecNS {
				sh.lastRecNS = endNS
			}
		}
	}
}

// Finalize sweeps every request still queued at shutdown into the shed
// counters — those arrivals were offered but never served, and counting
// them makes the conservation invariant exact: Offered == Served + Shed.
// Idempotent; Metrics calls it automatically.
func (c *Cluster) Finalize() {
	if c.swept {
		return
	}
	c.swept = true
	for _, sh := range c.sh {
		for {
			r, ok := sh.pop()
			if !ok {
				break
			}
			c.shedOne(sh, r)
		}
	}
}

// Metrics aggregates the service-level outcome of one run.
type Metrics struct {
	// Whole-run conservation counters: Offered == Served + Shed, with
	// Timeouts a subset of Shed.
	Offered, Served, Shed, Timeouts int64
	// Recorded (post-warmup-arrival) counters.
	RecOffered, RecServed, RecShed, RecTimeouts int64
	RecReads, RecWrites                         int64
	// FirstRecNS/LastRecNS bracket the recorded completions.
	FirstRecNS, LastRecNS int64
	// MaxQueueLen is the deepest any shard queue got (whole run).
	MaxQueueLen int
	// ShardServed is the recorded served count per shard — the balance
	// view the placement experiments read.
	ShardServed []int64
	// Latency decomposition over served recorded requests:
	// E2E = QueueWait + AcquireWait + Hold, per request.
	QueueWait, AcquireWait, Hold, E2E stats.Hist
	// ReadE2E/WriteE2E split E2E by acquire mode.
	ReadE2E, WriteE2E stats.Hist
}

// Metrics finalizes the cluster and merges every shard's state.
func (c *Cluster) Metrics() Metrics {
	c.Finalize()
	m := Metrics{ShardServed: make([]int64, len(c.sh))}
	for i, sh := range c.sh {
		m.Offered += sh.offered
		m.Served += sh.served
		m.Shed += sh.shed
		m.Timeouts += sh.timeouts
		m.RecOffered += sh.recOffered
		m.RecServed += sh.recServed
		m.RecShed += sh.recShed
		m.RecTimeouts += sh.recTimeouts
		m.RecReads += sh.recReads
		m.RecWrites += sh.recWrites
		m.ShardServed[i] = sh.recServed
		if sh.maxQueueLen > m.MaxQueueLen {
			m.MaxQueueLen = sh.maxQueueLen
		}
		if sh.recServed > 0 {
			if m.FirstRecNS == 0 || sh.firstRecNS < m.FirstRecNS {
				m.FirstRecNS = sh.firstRecNS
			}
			if sh.lastRecNS > m.LastRecNS {
				m.LastRecNS = sh.lastRecNS
			}
		}
		m.QueueWait.Merge(&sh.queueWait)
		m.AcquireWait.Merge(&sh.acquireWait)
		m.Hold.Merge(&sh.hold)
		m.E2E.Merge(&sh.e2e)
		m.ReadE2E.Merge(&sh.readE2E)
		m.WriteE2E.Merge(&sh.writeE2E)
	}
	return m
}
