// Package core implements the ALock, the paper's primary contribution: a
// fair, starvation-free mutual-exclusion primitive for RDMA systems that
// lets threads performing local accesses synchronize with threads
// performing remote accesses without loopback or RPCs.
//
// Structure (Section 5): an ALock is the composition of
//
//   - two budgeted MCS queue locks, one per cohort (local and remote), whose
//     tails double as the flag variables of Peterson's algorithm — a
//     non-NULL tail means that cohort is interested in or holds the lock;
//   - a modified Peterson's lock between the two cohort leaders, with a
//     victim word to arbitrate and a reacquire operation for fairness.
//
// The asymmetry discipline is the whole point: tail_l is only ever RMW'd
// with shared-memory CAS (by threads on the lock's home node), tail_r only
// with RDMA CAS (by threads elsewhere), and the victim word is only read
// and written, never RMW'd. Cross-class reads and writes of 8-byte words
// are atomic (Table 1), so the lock is correct even though local and remote
// RMW operations are not atomic with each other.
//
// Memory layout (Figure 3): one 64-byte cache line per lock —
//
//	byte 0x00: tail_r   (8B rdma_ptr)
//	byte 0x10: tail_l   (8B rdma_ptr)
//	byte 0x20: victim   (8B integer: 0 = LOCAL, 1 = REMOTE)
//	padded to 64 bytes
//
// and one 64-byte descriptor line per (thread, cohort) —
//
//	byte 0x00: budget   (8B signed integer; -1 = waiting)
//	byte 0x08: next     (8B rdma_ptr to successor's descriptor)
//	padded to 64 bytes.
package core

import (
	"fmt"

	"alock/internal/api"
	"alock/internal/ptr"
)

// Word offsets inside the 64-byte ALock line (Figure 3; byte offsets 0x00,
// 0x10 and 0x20 are words 0, 2 and 4).
const (
	WordTailR  = 0 // remote cohort's MCS tail (doubles as Peterson flag)
	WordTailL  = 2 // local cohort's MCS tail (doubles as Peterson flag)
	WordVictim = 4 // Peterson victim: which cohort yields

	// LockWords is the allocation size of one ALock: a full cache line.
	LockWords = 8
)

// Word offsets inside a 64-byte descriptor line.
const (
	descBudget = 0
	descNext   = 1

	// DescWords is the allocation size of one descriptor: a full cache
	// line, padded to prevent false sharing (Section 6).
	DescWords = 8
)

// Budget-word sentinels. Valid budgets are non-negative, so the top of the
// unsigned range is free for protocol states. waiting is the paper's own
// sentinel (the descriptors in Figure 2 are initialized to -1); abandoned
// and skipped extend it for the timed protocol: a waiter whose deadline
// passes CASes its budget word from waiting to abandoned and leaves, and
// the granter that later bypasses the dead descriptor marks it skipped so
// the owning thread can recycle it. Within one cohort the waiter's abandon
// CAS and the granter's handoff CAS use the same access class (local cohort
// -> CAS, remote cohort -> rCAS), so Table 1's cross-class RMW hazard never
// arises on the budget word.
const (
	waiting   = ^uint64(0) // int64(-1): enqueued, lock not yet passed
	abandoned = ^uint64(1) // int64(-2): waiter timed out and left the queue
	skipped   = ^uint64(2) // int64(-3): granter bypassed this descriptor
)

// Config selects the cohort budgets (Section 6.1). The budget bounds how
// many times a cohort may pass the lock internally before its leader must
// reacquire through Peterson's algorithm, yielding to the other cohort.
type Config struct {
	// LocalBudget is kInitBudget for the local cohort.
	LocalBudget int64
	// RemoteBudget is kInitBudget for the remote cohort. The paper keeps
	// this higher because a remote reacquire costs RDMA operations while a
	// local reacquire costs only shared-memory operations.
	RemoteBudget int64
	// ForceRemote is an ablation switch (not part of the paper's design):
	// when set, every access is classified remote, collapsing ALock into a
	// symmetric single-cohort lock. Comparing it against the real ALock
	// isolates the value of the asymmetric cohort split; comparing it
	// against the plain RDMA MCS lock isolates the overhead of the
	// embedded Peterson layer.
	ForceRemote bool
	// Timed switches the intra-cohort handoff from the paper's single
	// descriptor write to a CAS-based protocol that tolerates waiters
	// abandoning their descriptors on deadline (AcquireTimed). It is a
	// run-wide mode: every handle of a run must agree, because granters
	// and waiters speak the same handoff protocol. Left false, the lock is
	// bit-identical to the paper's algorithm.
	Timed bool
}

// DefaultConfig returns the budgets the paper selects after the Figure 4
// study: local budget 5, remote budget 20.
func DefaultConfig() Config { return Config{LocalBudget: 5, RemoteBudget: 20} }

// Validate rejects non-positive budgets: a budget of 0 would force a
// reacquire on every pass, and negative budgets collide with the waiting
// sentinel.
func (c Config) Validate() error {
	if c.LocalBudget <= 0 || c.RemoteBudget <= 0 {
		return fmt.Errorf("core: budgets must be positive (got local=%d remote=%d)",
			c.LocalBudget, c.RemoteBudget)
	}
	return nil
}

func (c Config) budget(co api.Cohort) int64 {
	if co == api.CohortLocal {
		return c.LocalBudget
	}
	return c.RemoteBudget
}

// Stats counts per-handle events, useful for tests and for the evaluation's
// analysis of lock passing (Section 6.2 attributes ALock's high-contention
// throughput to the pass mechanism).
type Stats struct {
	Acquires   int64 // successful Lock operations
	Passes     int64 // acquisitions in which the MCS lock was passed to us
	Reacquires int64 // Peterson pReacquire executions
	LocalOps   int64 // acquisitions classified local
	RemoteOps  int64 // acquisitions classified remote
}

// heldAcq records one outstanding acquisition for the blocking Lock/Unlock
// facade (the token API threads the descriptor through the Guard instead).
type heldAcq struct {
	lock ptr.Ptr
	desc ptr.Ptr
}

// Handle is one thread's capability to acquire ALocks. Descriptors are
// allocated per acquisition from a per-cohort free list (the paper's
// one-descriptor-per-thread layout is the free list's steady state when a
// thread holds one lock at a time), so a thread may hold several ALocks
// concurrently. Descriptors abandoned on timeout park on a zombie list
// until the granter that bypassed them marks them skipped, at which point
// they are recycled.
//
// A Handle is not safe for concurrent use — it belongs to exactly one
// thread, like the paper's per-thread metadata.
type Handle struct {
	ctx     api.Ctx
	cfg     Config
	seed    [2]ptr.Ptr   // first descriptor of each cohort (for tests)
	free    [2][]ptr.Ptr // recyclable descriptors, indexed by api.Cohort
	zombies [2][]ptr.Ptr // abandoned descriptors awaiting the skip mark
	held    []heldAcq    // outstanding Lock/Unlock-facade acquisitions
	stats   Stats
}

var _ api.Locker = (*Handle)(nil)

// NewHandle allocates the thread's initial per-cohort descriptors on ctx's
// node and returns a handle using the given budget configuration. Further
// descriptors are allocated only if the thread actually overlaps holds.
func NewHandle(ctx api.Ctx, cfg Config) *Handle {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Handle{ctx: ctx, cfg: cfg}
	for _, co := range []api.Cohort{api.CohortLocal, api.CohortRemote} {
		d := ctx.Alloc(DescWords, DescWords)
		ctx.Write(d.Add(descBudget), waiting)
		ctx.Write(d.Add(descNext), ptr.Null.Word())
		h.seed[co] = d
		h.free[co] = append(h.free[co], d)
	}
	return h
}

// Stats returns a copy of the handle's counters.
func (h *Handle) Stats() Stats { return h.stats }

// Descriptor exposes the cohort's seed descriptor pointer (for tests).
func (h *Handle) Descriptor(co api.Cohort) ptr.Ptr { return h.seed[co] }

// sweepZombies recycles the cohort's zombies whose granter has marked them
// skipped. It runs on both acquire and release: sweeping only on acquire
// would let a thread that stops acquiring keep its skipped descriptors
// parked forever.
func (h *Handle) sweepZombies(co api.Cohort) {
	zs := h.zombies[co]
	if len(zs) == 0 {
		return
	}
	kept := zs[:0]
	for _, z := range zs {
		// Our own descriptor on our own node: a shared-memory read is
		// atomic with the granter's skip mark in either class.
		if h.ctx.Read(z.Add(descBudget)) == skipped {
			h.free[co] = append(h.free[co], z)
		} else {
			kept = append(kept, z)
		}
	}
	h.zombies[co] = kept
}

// getDesc pops a free descriptor for the cohort, first recycling any
// zombies whose granter has marked them skipped, allocating fresh memory
// only when every descriptor is in use or still awaiting its skip mark.
func (h *Handle) getDesc(co api.Cohort) ptr.Ptr {
	h.sweepZombies(co)
	if n := len(h.free[co]); n > 0 {
		d := h.free[co][n-1]
		h.free[co] = h.free[co][:n-1]
		return d
	}
	return h.ctx.Alloc(DescWords, DescWords)
}

// putDesc returns a released descriptor and sweeps BOTH cohorts' zombies:
// a release is the last pool interaction a winding-down thread performs,
// and its final releases may all be on the other cohort than the zombie
// (a remote-lock timeout followed by local-only work), so sweeping only
// the released cohort would still leak the abandoned descriptor.
func (h *Handle) putDesc(co api.Cohort, d ptr.Ptr) {
	h.free[co] = append(h.free[co], d)
	h.sweepZombies(api.CohortLocal)
	h.sweepZombies(api.CohortRemote)
}

// Zombies reports how many abandoned descriptors are still parked awaiting
// their skip mark (drain-recycle assertions in locktest).
func (h *Handle) Zombies() int { return len(h.zombies[0]) + len(h.zombies[1]) }

// TailPtr returns the pointer to the given cohort's MCS tail word within
// the lock line at l.
func TailPtr(l ptr.Ptr, co api.Cohort) ptr.Ptr {
	if co == api.CohortLocal {
		return l.Add(WordTailL)
	}
	return l.Add(WordTailR)
}

// VictimPtr returns the pointer to the Peterson victim word of the lock at l.
func VictimPtr(l ptr.Ptr) ptr.Ptr { return l.Add(WordVictim) }

// view binds the six Ctx operations to one access class, so the cohort
// algorithms are written once. The local cohort's view uses shared-memory
// operations; the remote cohort's view uses RDMA operations — including for
// peer descriptors, exactly as Algorithm 3 prescribes (rWrite
// unconditionally), even when a peer happens to be co-located.
type view struct {
	ctx    api.Ctx
	remote bool
}

func (v view) read(p ptr.Ptr) uint64 {
	if v.remote {
		return v.ctx.RRead(p)
	}
	return v.ctx.Read(p)
}

func (v view) write(p ptr.Ptr, x uint64) {
	if v.remote {
		v.ctx.RWrite(p, x)
		return
	}
	v.ctx.Write(p, x)
}

func (v view) cas(p ptr.Ptr, old, new uint64) uint64 {
	if v.remote {
		return v.ctx.RCAS(p, old, new)
	}
	return v.ctx.CAS(p, old, new)
}

// Lock acquires the ALock at l (Algorithm 2). The access class is
// determined by the node ID embedded in the pointer: threads on the lock's
// home node take the local path with shared-memory operations only (no
// loopback), everyone else takes the remote path with RDMA verbs.
//
// Lock is the blocking facade over AcquireTimed; the descriptor is parked
// on an internal held list so the matching Unlock(l) finds it.
func (h *Handle) Lock(l ptr.Ptr) {
	d, _ := h.AcquireTimed(l, 0) // no deadline: always acquires
	h.held = append(h.held, heldAcq{lock: l, desc: d})
}

// Unlock releases the ALock at l (Algorithm 2 line 5-6).
func (h *Handle) Unlock(l ptr.Ptr) {
	for i := len(h.held) - 1; i >= 0; i-- {
		if h.held[i].lock == l {
			d := h.held[i].desc
			h.held = append(h.held[:i], h.held[i+1:]...)
			h.ReleaseDesc(l, d)
			return
		}
	}
	panic("core: Unlock without matching Lock")
}

// AcquireTimed acquires the ALock at l, giving up once engine time reaches
// deadlineNS (0 = block until granted; deadlines require Config.Timed).
// On success it returns the acquisition's descriptor, which the caller
// must hand back through ReleaseDesc. On timeout nothing is held.
//
// The timeout window covers the queue wait: a waiter whose deadline passes
// while spinning on its descriptor CASes the budget word from waiting to
// abandoned and leaves (the granter patches the queue around the dead
// descriptor). A thread that has become cohort leader is committed — the
// Peterson wait is bounded by the other cohort's budget, so it finishes
// the acquisition even past the deadline and reports it as acquired.
func (h *Handle) AcquireTimed(l ptr.Ptr, deadlineNS int64) (ptr.Ptr, bool) {
	co := h.classify(l)
	if !h.cfg.Timed {
		deadlineNS = 0 // granters don't speak the abandon protocol
	}
	d, passed, ok := h.qLock(l, co, deadlineNS)
	if !ok {
		return ptr.Null, false
	}
	// Cohort classification is counted per successful acquisition, with
	// Acquires — a timed-out attempt would otherwise break the
	// LocalOps+RemoteOps == Acquires invariant the reports divide by.
	if co == api.CohortLocal {
		h.stats.LocalOps++
	} else {
		h.stats.RemoteOps++
	}
	if !passed {
		// We swapped onto an empty cohort queue: we are the cohort leader
		// and must win Peterson's lock before entering the critical
		// section (Algorithm 2 line 3-4).
		h.pReacquire(l, co)
	}
	// Fence after locking (§5.2).
	h.ctx.Fence()
	h.stats.Acquires++
	return d, true
}

// ReleaseDesc releases an acquisition made by AcquireTimed.
func (h *Handle) ReleaseDesc(l ptr.Ptr, d ptr.Ptr) {
	co := h.classify(l)
	// Fence before unlocking (§5.2).
	h.ctx.Fence()
	h.qUnlock(l, co, d)
	h.putDesc(co, d)
}

// classify determines the cohort for an access to l, honoring the
// ForceRemote ablation.
func (h *Handle) classify(l ptr.Ptr) api.Cohort {
	if h.cfg.ForceRemote {
		return api.CohortRemote
	}
	return api.Classify(h.ctx.NodeID(), l)
}

// qLock is the modified (budgeted) MCS queue lock of Algorithm 3. On
// success it returns the acquisition's descriptor and whether the lock was
// passed to us by a predecessor (true — Peterson's lock is already held by
// our cohort) or we became cohort leader on an empty queue (false). ok is
// false iff the deadline expired while waiting, in which case the
// descriptor has been abandoned in place and nothing is held.
func (h *Handle) qLock(l ptr.Ptr, co api.Cohort, deadlineNS int64) (d ptr.Ptr, passed, ok bool) {
	v := view{ctx: h.ctx, remote: co == api.CohortRemote}
	d = h.getDesc(co)
	tail := TailPtr(l, co)

	if deadlineNS > 0 && h.ctx.Now() >= deadlineNS {
		h.putDesc(co, d) // gave up before touching shared state
		return ptr.Null, false, false
	}

	// Reset our descriptor (Algorithm 3 line 2; the descriptor's own words
	// live on our node, so these are always shared-memory writes).
	h.ctx.Write(d.Add(descNext), ptr.Null.Word())
	h.ctx.Write(d.Add(descBudget), waiting)

	// Swap our descriptor onto the cohort tail. RDMA offers CAS (not
	// unconditional swap), so the swap is a CAS-retry loop seeded with the
	// value learned from each failed attempt (Section 5, Lock Procedure).
	expected := ptr.Null.Word()
	for {
		prev := v.cas(tail, expected, d.Word())
		if prev == expected {
			break
		}
		expected = prev
	}

	if expected == ptr.Null.Word() {
		// Queue was empty: cohort lock acquired outright, not passed
		// (Algorithm 3 lines 4-6).
		h.ctx.Write(d.Add(descBudget), uint64(h.cfg.budget(co)))
		return d, false, true
	}

	// We have a predecessor: link ourselves behind it (Algorithm 3 line
	// 8), then spin on our own descriptor — a shared-memory spin, the MCS
	// property that keeps remote threads from remote spinning.
	prev := ptr.FromWord(expected)
	v.write(prev.Add(descNext), d.Word())

	iter := 0
	for h.ctx.Read(d.Add(descBudget)) == waiting {
		if deadlineNS > 0 && h.ctx.Now() >= deadlineNS {
			// Deadline passed: try to abandon the descriptor. The CAS and
			// the granter's handoff CAS share the cohort's access class,
			// so exactly one of them wins.
			if v.cas(d.Add(descBudget), waiting, abandoned) == waiting {
				h.zombies[co] = append(h.zombies[co], d)
				return ptr.Null, false, false
			}
			break // the grant raced the timeout and won: we hold the lock
		}
		h.ctx.Pause(iter)
		iter++
	}
	h.stats.Passes++

	if h.ctx.Read(d.Add(descBudget)) == 0 {
		// Our cohort's budget is exhausted: yield to the other cohort via
		// Peterson's reacquire, then reset the budget (Algorithm 3 lines
		// 10-12).
		h.pReacquire(l, co)
		h.ctx.Write(d.Add(descBudget), uint64(h.cfg.budget(co)))
	}
	return d, true, true
}

// qUnlock releases the cohort MCS lock (Algorithm 3 lines 14-18). If no
// successor is queued, CASing the tail back to NULL also lowers the
// cohort's Peterson flag, releasing the ALock entirely. Otherwise the lock
// is passed: the successor's budget word receives ours minus one — a
// single descriptor write in the paper's protocol, or a CAS against the
// waiting sentinel under Config.Timed, so a successor that abandoned its
// descriptor on deadline is detected and patched around instead of woken.
func (h *Handle) qUnlock(l ptr.Ptr, co api.Cohort, d ptr.Ptr) {
	v := view{ctx: h.ctx, remote: co == api.CohortRemote}
	tail := TailPtr(l, co)

	if v.cas(tail, d.Word(), ptr.Null.Word()) == d.Word() {
		return // no successor; ALock released
	}

	// A successor swapped in behind us; wait for it to link itself
	// (our own next word: shared-memory spin).
	iter := 0
	for h.ctx.Read(d.Add(descNext)) == ptr.Null.Word() {
		h.ctx.Pause(iter)
		iter++
	}
	succ := ptr.FromWord(h.ctx.Read(d.Add(descNext)))
	myBudget := int64(h.ctx.Read(d.Add(descBudget)))
	pass := uint64(myBudget - 1)

	if !h.cfg.Timed {
		// Pass the lock (Algorithm 3 line 18): the successor's spin ends
		// when its budget turns non-negative.
		v.write(succ.Add(descBudget), pass)
		return
	}
	for {
		prev := v.cas(succ.Add(descBudget), waiting, pass)
		if prev == waiting {
			return // passed
		}
		// prev == abandoned: the successor timed out. Patch the queue
		// around its descriptor: either the queue ends there (tail CAS
		// back to NULL releases the ALock) or we move on to its own
		// successor, marking the dead descriptor skipped once its next
		// word is no longer needed.
		next := v.read(succ.Add(descNext))
		if next == ptr.Null.Word() {
			if v.cas(tail, succ.Word(), ptr.Null.Word()) == succ.Word() {
				v.write(succ.Add(descBudget), skipped)
				return // queue drained; ALock released
			}
			iter := 0
			for next == ptr.Null.Word() {
				h.ctx.Pause(iter)
				iter++
				next = v.read(succ.Add(descNext))
			}
		}
		v.write(succ.Add(descBudget), skipped)
		succ = ptr.FromWord(next)
	}
}

// pReacquire is the modified Peterson's lock (Algorithm 4): yield to the
// other cohort by naming ourselves the victim, then wait until either the
// other cohort's MCS queue is unlocked (its tail — its Peterson flag — is
// NULL) or we are no longer the victim.
//
// Note on fidelity: Algorithm 4's prose writes the wait condition with an
// "or", but the paper's own TLA+ specification (Appendix A, labels g2/g3)
// and its worked example (Figure 2, frame 4) both wait while
// (other cohort locked AND victim == self), which is classic Peterson; we
// implement the TLA+ semantics.
func (h *Handle) pReacquire(l ptr.Ptr, co api.Cohort) {
	v := view{ctx: h.ctx, remote: co == api.CohortRemote}
	h.stats.Reacquires++

	otherTail := TailPtr(l, co.Other())
	victim := VictimPtr(l)

	v.write(victim, uint64(co))
	iter := 0
	for {
		if v.read(otherTail) == ptr.Null.Word() {
			return // other cohort not interested (Appendix A, g2)
		}
		if v.read(victim) != uint64(co) {
			return // other cohort yielded to us (Appendix A, g3)
		}
		// For the remote cohort this is remote spinning — the asymmetric
		// reacquire cost that motivates the larger remote budget (§6.1).
		h.ctx.Pause(iter)
		iter++
	}
}

// IsLocked reports whether the given cohort's queue is non-empty
// (Algorithm 3, qIsLocked), reading with the classifying thread's own
// access class.
func IsLocked(ctx api.Ctx, l ptr.Ptr, co api.Cohort) bool {
	v := view{ctx: ctx, remote: api.Classify(ctx.NodeID(), l) == api.CohortRemote}
	return v.read(TailPtr(l, co)) != ptr.Null.Word()
}
