package core_test

import (
	"testing"
	"testing/quick"

	"alock/internal/api"
	"alock/internal/core"
	"alock/internal/locks"
	"alock/internal/locktest"
	"alock/internal/model"
	"alock/internal/ptr"
	"alock/internal/sim"
)

// TestLayoutFigure3 pins the 64-byte lock layout to the paper's Figure 3:
// tail_r at byte 0x00, tail_l at 0x10, victim at 0x20, padded to 0x40.
func TestLayoutFigure3(t *testing.T) {
	if core.WordTailR*8 != 0x00 {
		t.Errorf("tail_r at byte %#x, want 0x00", core.WordTailR*8)
	}
	if core.WordTailL*8 != 0x10 {
		t.Errorf("tail_l at byte %#x, want 0x10", core.WordTailL*8)
	}
	if core.WordVictim*8 != 0x20 {
		t.Errorf("victim at byte %#x, want 0x20", core.WordVictim*8)
	}
	if core.LockWords*8 != 0x40 {
		t.Errorf("lock size %#x bytes, want 0x40", core.LockWords*8)
	}
	l := ptr.Pack(2, 512)
	if core.TailPtr(l, api.CohortRemote) != l {
		t.Error("TailPtr(remote) must be the first word")
	}
	if core.TailPtr(l, api.CohortLocal) != l.Add(2) {
		t.Error("TailPtr(local) must be word 2")
	}
	if core.VictimPtr(l) != l.Add(4) {
		t.Error("VictimPtr must be word 4")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := core.DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []core.Config{
		{LocalBudget: 0, RemoteBudget: 5},
		{LocalBudget: 5, RemoteBudget: 0},
		{LocalBudget: -1, RemoteBudget: 5},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", c)
		}
	}
}

func TestDefaultBudgetsMatchPaper(t *testing.T) {
	c := core.DefaultConfig()
	if c.LocalBudget != 5 || c.RemoteBudget != 20 {
		t.Fatalf("default budgets %d/%d, want 5/20 (Section 6.1)", c.LocalBudget, c.RemoteBudget)
	}
}

func TestUncontendedLocalAcquire(t *testing.T) {
	e := sim.New(2, 1<<16, model.Uniform(5), 1)
	l := e.Space().AllocLine(0)
	e.Spawn(0, func(ctx api.Ctx) {
		h := core.NewHandle(ctx, core.DefaultConfig())
		h.Lock(l)
		if !core.IsLocked(ctx, l, api.CohortLocal) {
			t.Error("local tail should be set while held")
		}
		if core.IsLocked(ctx, l, api.CohortRemote) {
			t.Error("remote tail should be clear")
		}
		h.Unlock(l)
		if core.IsLocked(ctx, l, api.CohortLocal) {
			t.Error("local tail should clear after unlock")
		}
		st := h.Stats()
		if st.Acquires != 1 || st.LocalOps != 1 || st.RemoteOps != 0 {
			t.Errorf("stats = %+v", st)
		}
		if st.Passes != 0 {
			t.Errorf("uncontended acquire must not be a pass: %+v", st)
		}
	})
	e.Run(1 << 62)
}

func TestUncontendedRemoteAcquire(t *testing.T) {
	e := sim.New(2, 1<<16, model.CX3(), 1)
	l := e.Space().AllocLine(0)
	e.Spawn(1, func(ctx api.Ctx) {
		h := core.NewHandle(ctx, core.DefaultConfig())
		h.Lock(l)
		h.Unlock(l)
		st := h.Stats()
		if st.RemoteOps != 1 || st.LocalOps != 0 {
			t.Errorf("stats = %+v", st)
		}
	})
	e.Run(1 << 62)
}

func TestMutualExclusionMixedCohorts(t *testing.T) {
	locktest.CheckMutualExclusion(t, locks.NewALockProvider(), locktest.DefaultMutexConfig())
}

func TestMutualExclusionHighContentionOneLock(t *testing.T) {
	cfg := locktest.DefaultMutexConfig()
	cfg.Locks = 1
	cfg.ThreadsPerNode = 4
	cfg.Iters = 80
	locktest.CheckMutualExclusion(t, locks.NewALockProvider(), cfg)
}

func TestMutualExclusionAllLocal(t *testing.T) {
	cfg := locktest.DefaultMutexConfig()
	cfg.Nodes = 1
	cfg.LocalityPct = 100
	cfg.ThreadsPerNode = 6
	locktest.CheckMutualExclusion(t, locks.NewALockProvider(), cfg)
}

func TestMutualExclusionAllRemoteCohort(t *testing.T) {
	// Locks all on node 0; threads all elsewhere: pure remote cohort.
	cfg := locktest.DefaultMutexConfig()
	cfg.Nodes = 3
	cfg.LocalityPct = 0
	locktest.CheckMutualExclusion(t, locks.NewALockProvider(), cfg)
}

func TestMutualExclusionSmallBudgets(t *testing.T) {
	// Budget 1 forces a Peterson reacquire on nearly every pass — the
	// fairness machinery is exercised constantly.
	cfg := locktest.DefaultMutexConfig()
	prov := locks.NewTrackedALockProvider(core.Config{LocalBudget: 1, RemoteBudget: 1})
	locktest.CheckMutualExclusion(t, prov, cfg)
	if agg := prov.(locks.StatsAggregator).AggregateStats(); agg.Reacquires == 0 {
		t.Error("budget-1 run should have reacquired at least once")
	}
}

func TestForceRemoteAblationStillMutex(t *testing.T) {
	prov, err := locks.ByName("alock-symmetric", locks.Options{})
	if err != nil {
		t.Fatal(err)
	}
	locktest.CheckMutualExclusion(t, prov, locktest.DefaultMutexConfig())
}

func TestNoBudgetAblationStillMutex(t *testing.T) {
	prov, err := locks.ByName("alock-nobudget", locks.Options{})
	if err != nil {
		t.Fatal(err)
	}
	locktest.CheckMutualExclusion(t, prov, locktest.DefaultMutexConfig())
}

// TestCohortRunLengthBounded checks the budget fairness bound: under
// continuous two-cohort contention on one lock, a cohort can take at most
// budget+1 consecutive critical sections (leader enters with a full
// budget, then passes budget-1 ... 0; the recipient of 0 must yield).
func TestCohortRunLengthBounded(t *testing.T) {
	const localBudget, remoteBudget = 3, 4
	prov := locks.NewTrackedALockProvider(core.Config{
		LocalBudget:  localBudget,
		RemoteBudget: remoteBudget,
	})
	cfg := locktest.DefaultMutexConfig()
	cfg.Nodes = 2
	cfg.ThreadsPerNode = 3
	cfg.Locks = 1 // on node 0: node 0's threads local, node 1's remote
	cfg.Iters = 150
	cfg.LocalityPct = 50 // irrelevant with one lock
	res := locktest.RunMutex(prov, cfg)

	classifyByCohort := func(tid int) int {
		// Thread IDs are assigned in spawn order: node 0 first.
		if tid < cfg.ThreadsPerNode {
			return int(api.CohortLocal)
		}
		return int(api.CohortRemote)
	}
	// Drop the uncontended tail (after one cohort finishes its quota, the
	// other legitimately runs alone).
	contended := locktest.TrimToContended(res.Entries[0], classifyByCohort)
	run := locktest.MaxRun(contended, classifyByCohort)
	// The bound holds strictly only while the other cohort is waiting;
	// allow one extra acquisition of slack for re-arrival gaps.
	bound := remoteBudget + 2
	if run > bound {
		t.Errorf("max same-cohort run = %d, want <= %d (budget fairness)", run, bound)
	}
	// Starvation-freedom: both cohorts made progress.
	var local, remote int
	for _, tid := range res.Entries[0] {
		if classifyByCohort(tid) == int(api.CohortLocal) {
			local++
		} else {
			remote++
		}
	}
	if local == 0 || remote == 0 {
		t.Errorf("a cohort starved: local=%d remote=%d", local, remote)
	}
}

// TestNoBudgetAblationUnfair demonstrates what the budget buys: without
// it, same-cohort runs are unbounded in practice.
func TestNoBudgetAblationUnfair(t *testing.T) {
	prov, err := locks.ByName("alock-nobudget", locks.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := locktest.DefaultMutexConfig()
	cfg.Nodes = 2
	cfg.ThreadsPerNode = 3
	cfg.Locks = 1
	cfg.Iters = 150
	res := locktest.RunMutex(prov, cfg)
	classify := func(tid int) int {
		if tid < cfg.ThreadsPerNode {
			return 0
		}
		return 1
	}
	run := locktest.MaxRun(locktest.TrimToContended(res.Entries[0], classify), classify)
	if run <= 8 {
		t.Errorf("expected long unfair runs without budget, max run = %d", run)
	}
}

func TestPassingDominatesUnderContention(t *testing.T) {
	// With many same-cohort threads on one lock, most acquisitions should
	// arrive via the MCS pass path (Section 6.2 credits ALock's
	// high-contention throughput to lock passing).
	prov := locks.NewTrackedALockProvider(core.DefaultConfig())
	cfg := locktest.DefaultMutexConfig()
	cfg.Nodes = 1
	cfg.ThreadsPerNode = 6
	cfg.Locks = 1
	cfg.LocalityPct = 100
	cfg.Iters = 200
	locktest.CheckMutualExclusion(t, prov, cfg)
	agg := prov.(locks.StatsAggregator).AggregateStats()
	if agg.Passes*2 < agg.Acquires {
		t.Errorf("passes=%d of acquires=%d; expected passing to dominate",
			agg.Passes, agg.Acquires)
	}
}

func TestHandleReuseAcrossLocks(t *testing.T) {
	e := sim.New(2, 1<<16, model.Uniform(5), 3)
	l0 := e.Space().AllocLine(0)
	l1 := e.Space().AllocLine(1)
	e.Spawn(0, func(ctx api.Ctx) {
		h := core.NewHandle(ctx, core.DefaultConfig())
		for i := 0; i < 10; i++ {
			h.Lock(l0) // local
			h.Unlock(l0)
			h.Lock(l1) // remote
			h.Unlock(l1)
		}
		st := h.Stats()
		if st.LocalOps != 10 || st.RemoteOps != 10 {
			t.Errorf("stats = %+v", st)
		}
	})
	e.Run(1 << 62)
}

func TestNewHandleBadConfigPanics(t *testing.T) {
	e := sim.New(1, 1<<12, model.Uniform(1), 1)
	e.Spawn(0, func(ctx api.Ctx) {
		defer func() {
			if recover() == nil {
				t.Error("NewHandle with zero budgets did not panic")
			}
		}()
		core.NewHandle(ctx, core.Config{})
	})
	e.Run(1 << 62)
}

// Property: mutual exclusion holds across random schedules, localities and
// small budget choices.
func TestQuickMutualExclusion(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64, rawLoc uint8, rawLB, rawRB uint8) bool {
		cfg := locktest.DefaultMutexConfig()
		cfg.Seed = seed
		cfg.LocalityPct = int(rawLoc % 101)
		cfg.Iters = 60
		prov := locks.NewTrackedALockProvider(core.Config{
			LocalBudget:  int64(rawLB%6) + 1,
			RemoteBudget: int64(rawRB%12) + 1,
		})
		res := locktest.RunMutex(prov, cfg)
		want := int64(cfg.Nodes * cfg.ThreadsPerNode * cfg.Iters)
		return res.TotalOps == want && res.CounterSum == want && res.OwnerTramples == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
