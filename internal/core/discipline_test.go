package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"alock/internal/api"
	"alock/internal/core"
	"alock/internal/model"
	"alock/internal/ptr"
	"alock/internal/sim"
)

// recordingCtx wraps a real Ctx and records, per word, which operation
// kinds touched it. It is the instrument for verifying the ALock's central
// discipline (Section 5): no word is ever RMW'd by both access classes,
// and the victim word is never RMW'd at all.
type recordingCtx struct {
	api.Ctx
	ops map[ptr.Ptr]map[string]bool
}

func newRecordingCtx(inner api.Ctx) *recordingCtx {
	return &recordingCtx{Ctx: inner, ops: make(map[ptr.Ptr]map[string]bool)}
}

func (r *recordingCtx) note(p ptr.Ptr, kind string) {
	m := r.ops[p]
	if m == nil {
		m = make(map[string]bool)
		r.ops[p] = m
	}
	m[kind] = true
}

func (r *recordingCtx) Read(p ptr.Ptr) uint64 {
	r.note(p, "read")
	return r.Ctx.Read(p)
}

func (r *recordingCtx) Write(p ptr.Ptr, v uint64) {
	r.note(p, "write")
	r.Ctx.Write(p, v)
}

func (r *recordingCtx) CAS(p ptr.Ptr, old, new uint64) uint64 {
	r.note(p, "cas")
	return r.Ctx.CAS(p, old, new)
}

func (r *recordingCtx) RRead(p ptr.Ptr) uint64 {
	r.note(p, "rread")
	return r.Ctx.RRead(p)
}

func (r *recordingCtx) RWrite(p ptr.Ptr, v uint64) {
	r.note(p, "rwrite")
	r.Ctx.RWrite(p, v)
}

func (r *recordingCtx) RCAS(p ptr.Ptr, old, new uint64) uint64 {
	r.note(p, "rcas")
	return r.Ctx.RCAS(p, old, new)
}

// TestOperationDisciplineInvariant runs a contended mixed-cohort workload
// with every thread's operations recorded, then checks the asymmetry
// discipline that makes ALock correct under Table 1:
//
//  1. the local tail word is RMW'd only with local CAS;
//  2. the remote tail word is RMW'd only with remote rCAS;
//  3. the victim word is read and written but NEVER RMW'd by anyone;
//  4. local threads never touch lock words with remote verbs, and remote
//     threads never touch them with shared-memory ops.
func TestOperationDisciplineInvariant(t *testing.T) {
	e := sim.New(3, 1<<18, model.CX3(), 5)
	nLocks := 4
	lockPtrs := make([]ptr.Ptr, nLocks)
	for i := range lockPtrs {
		lockPtrs[i] = e.Space().AllocLine(i % 3)
	}

	recs := make([]*recordingCtx, 0, 9)
	for n := 0; n < 3; n++ {
		node := n
		for k := 0; k < 3; k++ {
			e.Spawn(node, func(inner api.Ctx) {
				rec := newRecordingCtx(inner)
				recs = append(recs, rec)
				h := core.NewHandle(rec, core.Config{LocalBudget: 2, RemoteBudget: 3})
				rng := rand.New(rand.NewSource(int64(inner.ThreadID())))
				for i := 0; i < 60; i++ {
					l := lockPtrs[rng.Intn(nLocks)]
					h.Lock(l)
					inner.Work(50 * time.Nanosecond)
					h.Unlock(l)
				}
			})
		}
	}
	e.Run(1 << 62)

	type wordClass struct {
		name  string
		local bool // word may only be RMW'd locally
	}
	classify := func(p ptr.Ptr) (wordClass, bool) {
		for _, l := range lockPtrs {
			switch p {
			case core.TailPtr(l, api.CohortLocal):
				return wordClass{"tail_l", true}, true
			case core.TailPtr(l, api.CohortRemote):
				return wordClass{"tail_r", false}, true
			case core.VictimPtr(l):
				return wordClass{"victim", false}, true
			}
		}
		return wordClass{}, false
	}

	for _, rec := range recs {
		for p, kinds := range rec.ops {
			wc, isLockWord := classify(p)
			if !isLockWord {
				continue
			}
			switch wc.name {
			case "victim":
				if kinds["cas"] || kinds["rcas"] {
					t.Errorf("victim word %v was RMW'd: %v", p, keys(kinds))
				}
			case "tail_l":
				if kinds["rcas"] {
					t.Errorf("tail_l %v RMW'd remotely: %v", p, keys(kinds))
				}
			case "tail_r":
				if kinds["cas"] {
					t.Errorf("tail_r %v RMW'd locally: %v", p, keys(kinds))
				}
			}
		}
	}

	// Stronger cross-thread check: gather the union of RMW kinds per word
	// across ALL threads; no word may see both classes.
	union := map[ptr.Ptr]map[string]bool{}
	for _, rec := range recs {
		for p, kinds := range rec.ops {
			m := union[p]
			if m == nil {
				m = map[string]bool{}
				union[p] = m
			}
			for k := range kinds {
				m[k] = true
			}
		}
	}
	for p, kinds := range union {
		if kinds["cas"] && kinds["rcas"] {
			t.Errorf("word %v RMW'd by BOTH classes — the Table 1 hazard: %v", p, keys(kinds))
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestDescriptorAccessPattern verifies the MCS property that makes ALock
// RDMA-friendly: a thread spins on its own descriptor with local reads
// only (no remote verbs against its own budget word).
func TestDescriptorAccessPattern(t *testing.T) {
	e := sim.New(2, 1<<18, model.CX3(), 6)
	l := e.Space().AllocLine(0)
	var remoteRec *recordingCtx
	var remoteDesc ptr.Ptr
	// Two remote threads on node 1 contend so that one gets PASSED the
	// lock (the passed thread spins on its own descriptor).
	for k := 0; k < 2; k++ {
		slot := k
		e.Spawn(1, func(inner api.Ctx) {
			rec := newRecordingCtx(inner)
			h := core.NewHandle(rec, core.DefaultConfig())
			if slot == 1 {
				remoteRec = rec
				remoteDesc = h.Descriptor(api.CohortRemote)
			}
			for i := 0; i < 30; i++ {
				h.Lock(l)
				inner.Work(200 * time.Nanosecond)
				h.Unlock(l)
			}
		})
	}
	e.Run(1 << 62)

	budgetWord := remoteDesc // word 0 of the descriptor is the budget
	kinds := remoteRec.ops[budgetWord]
	if kinds == nil {
		t.Fatal("remote thread never touched its own budget word?")
	}
	if kinds["rread"] || kinds["rcas"] {
		t.Errorf("thread used remote verbs on its OWN descriptor (remote spinning!): %v",
			keys(kinds))
	}
	if !kinds["read"] {
		t.Error("expected local spin reads on own descriptor")
	}
}

var _ = fmt.Sprintf // keep fmt for debugging edits
