// Package locktable implements the distributed lock table of the paper's
// evaluation (Section 6): a fixed set of lock objects partitioned equally
// across the cluster's nodes, each lock occupying one 64-byte line of its
// home node's RDMA-accessible memory.
//
// Logical contention is controlled by the table size — the paper uses 20
// locks for high contention, 100 for medium and 1000 for low — and
// workload locality is expressed as the probability that a thread targets
// a lock homed on its own node.
package locktable

import (
	"fmt"
	"math/rand"

	"alock/internal/mem"
	"alock/internal/ptr"
)

// Contention levels from Section 6.
const (
	HighContentionLocks   = 20
	MediumContentionLocks = 100
	LowContentionLocks    = 1000
)

// Table is a distributed lock table.
type Table struct {
	nodes     int
	locks     []ptr.Ptr
	byNode    [][]int // byNode[n] = indices of locks homed on node n
	notByNode [][]int // notByNode[n] = indices of locks homed elsewhere
}

// HomeFunc maps a lock index to its home node given the table and cluster
// sizes; it lets layouts beyond the paper's equal partition (e.g. a
// skewed-home table) reuse all table machinery.
type HomeFunc func(i, n, nodes int) int

// RoundRobinHome is the paper's layout: lock i lives on node i % nodes (an
// equal partition up to ±1 per node).
func RoundRobinHome(i, n, nodes int) int { return i % nodes }

// SkewedHome returns a layout where hotPct percent of the locks (rounded
// down, exact for any table size) are homed on hotNode and the remainder
// round-robin over the other nodes — one node holds a disproportionate
// share of the table, modeling a primary shard or an unbalanced
// partitioner (extension beyond the paper's equal split). Threads on the
// hot node see far more local locks; everyone else's "remote" traffic
// funnels into the hot node's NIC.
func SkewedHome(hotNode, hotPct int) HomeFunc {
	return func(i, n, nodes int) int {
		if nodes == 1 {
			return 0
		}
		hot := hotNode % nodes
		hotCount := n * hotPct / 100
		if i < hotCount {
			return hot
		}
		other := (i - hotCount) % (nodes - 1)
		if other >= hot {
			other++
		}
		return other
	}
}

// New allocates n locks round-robin across the space's nodes (an equal
// partition up to ±1 per node, as in the paper).
func New(space *mem.Space, n int) *Table {
	return NewWithLayout(space, n, RoundRobinHome)
}

// NewWithLayout allocates n locks placed by the given home function.
func NewWithLayout(space *mem.Space, n int, home HomeFunc) *Table {
	if n <= 0 {
		panic(fmt.Sprintf("locktable: table size %d must be positive", n))
	}
	t := &Table{
		nodes:     space.Nodes(),
		locks:     make([]ptr.Ptr, n),
		byNode:    make([][]int, space.Nodes()),
		notByNode: make([][]int, space.Nodes()),
	}
	for i := 0; i < n; i++ {
		node := home(i, n, t.nodes)
		if node < 0 || node >= t.nodes {
			panic(fmt.Sprintf("locktable: layout homed lock %d on node %d of %d", i, node, t.nodes))
		}
		t.locks[i] = space.AllocLine(node)
		t.byNode[node] = append(t.byNode[node], i)
		for other := 0; other < t.nodes; other++ {
			if other != node {
				t.notByNode[other] = append(t.notByNode[other], i)
			}
		}
	}
	return t
}

// Len returns the number of locks.
func (t *Table) Len() int { return len(t.locks) }

// Nodes returns the number of nodes the table is partitioned over.
func (t *Table) Nodes() int { return t.nodes }

// Ptr returns the RDMA pointer of lock i.
func (t *Table) Ptr(i int) ptr.Ptr { return t.locks[i] }

// All returns the pointers of every lock (in index order). The returned
// slice is shared; callers must not modify it.
func (t *Table) All() []ptr.Ptr { return t.locks }

// HomeNode returns the node that stores lock i.
func (t *Table) HomeNode(i int) int { return t.locks[i].NodeID() }

// LocksOn returns the indices of locks homed on node n. The returned slice
// is shared; callers must not modify it.
func (t *Table) LocksOn(n int) []int { return t.byNode[n] }

// Pick selects a lock index for a thread on `node`: with probability
// localityPct/100 a uniformly random lock homed on that node, otherwise a
// uniformly random lock homed elsewhere. It degrades gracefully when a
// node owns no locks (falls back to remote) or owns all of them (falls
// back to local).
func (t *Table) Pick(rng *rand.Rand, node, localityPct int) int {
	local := t.byNode[node]
	wantLocal := rng.Intn(100) < localityPct
	if wantLocal && len(local) > 0 {
		return local[rng.Intn(len(local))]
	}
	remoteCount := len(t.locks) - len(local)
	if remoteCount == 0 {
		// Every lock is local to this node; locality is forced to 100%.
		return local[rng.Intn(len(local))]
	}
	// Draw uniformly among remote locks by rejection: works for any home
	// layout, and terminates because remoteCount > 0 here.
	for {
		i := rng.Intn(len(t.locks))
		if t.HomeNode(i) != node {
			return i
		}
	}
}

// Skew builds per-class Zipf rank generators for PickSkewed: rank r of a
// class is drawn with probability proportional to 1/(r+1)^s. s must be
// > 1 (the stdlib Zipf constraint); larger s is more skewed.
type Skew struct {
	localRank  *rand.Zipf
	remoteRank *rand.Zipf
}

// NewSkew creates the rank generators for a thread on `node`. Returns nil
// if s <= 1 (uniform behavior is Pick's job).
func (t *Table) NewSkew(rng *rand.Rand, node int, s float64) *Skew {
	if s <= 1 {
		return nil
	}
	sk := &Skew{}
	if n := len(t.byNode[node]); n > 0 {
		sk.localRank = rand.NewZipf(rng, s, 1, uint64(n-1))
	}
	if n := len(t.notByNode[node]); n > 0 {
		sk.remoteRank = rand.NewZipf(rng, s, 1, uint64(n-1))
	}
	return sk
}

// PickSkewed is Pick with Zipf-skewed popularity within each class: a few
// locks absorb most of the traffic, modeling hot keys in a store. The rank
// permutation is the index order, so lock byNode[node][0] is the node's
// hottest local lock. Extension beyond the paper (which uses uniform
// draws); used by the skew ablation.
func (t *Table) PickSkewed(rng *rand.Rand, node, localityPct int, sk *Skew) int {
	if sk == nil {
		return t.Pick(rng, node, localityPct)
	}
	local := t.byNode[node]
	remote := t.notByNode[node]
	wantLocal := rng.Intn(100) < localityPct
	if wantLocal && len(local) > 0 && sk.localRank != nil {
		return local[sk.localRank.Uint64()]
	}
	if len(remote) > 0 && sk.remoteRank != nil {
		return remote[sk.remoteRank.Uint64()]
	}
	return t.Pick(rng, node, localityPct)
}
