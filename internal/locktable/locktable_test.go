package locktable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"alock/internal/mem"
)

func TestPartitionEqual(t *testing.T) {
	space := mem.NewSpace(5, 1<<16)
	tab := New(space, 100)
	if tab.Len() != 100 || tab.Nodes() != 5 {
		t.Fatalf("len/nodes = %d/%d", tab.Len(), tab.Nodes())
	}
	for n := 0; n < 5; n++ {
		if got := len(tab.LocksOn(n)); got != 20 {
			t.Errorf("node %d owns %d locks, want 20", n, got)
		}
	}
}

func TestPartitionUnevenWithinOne(t *testing.T) {
	space := mem.NewSpace(3, 1<<16)
	tab := New(space, 20)
	min, max := tab.Len(), 0
	for n := 0; n < 3; n++ {
		c := len(tab.LocksOn(n))
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Fatalf("partition imbalance %d", max-min)
	}
}

func TestHomeNodeMatchesPointer(t *testing.T) {
	space := mem.NewSpace(4, 1<<16)
	tab := New(space, 40)
	for i := 0; i < tab.Len(); i++ {
		if tab.Ptr(i).NodeID() != tab.HomeNode(i) {
			t.Fatalf("lock %d: pointer node %d != home %d", i, tab.Ptr(i).NodeID(), tab.HomeNode(i))
		}
		if tab.HomeNode(i) != i%4 {
			t.Fatalf("lock %d homed on %d, want round-robin %d", i, tab.HomeNode(i), i%4)
		}
	}
}

func TestLocksDistinct(t *testing.T) {
	space := mem.NewSpace(2, 1<<18)
	tab := New(space, 200)
	seen := map[uint64]bool{}
	for i := 0; i < tab.Len(); i++ {
		w := tab.Ptr(i).Word()
		if seen[w] {
			t.Fatalf("duplicate lock pointer %v", tab.Ptr(i))
		}
		seen[w] = true
	}
}

func TestPickLocalityDistribution(t *testing.T) {
	space := mem.NewSpace(5, 1<<18)
	tab := New(space, 100)
	rng := rand.New(rand.NewSource(1))
	const trials = 50000
	for _, pct := range []int{0, 50, 85, 95, 100} {
		local := 0
		for i := 0; i < trials; i++ {
			idx := tab.Pick(rng, 2, pct)
			if tab.HomeNode(idx) == 2 {
				local++
			}
		}
		got := float64(local) / trials * 100
		if got < float64(pct)-2 || got > float64(pct)+2 {
			t.Errorf("locality %d%%: observed %.1f%%", pct, got)
		}
	}
}

func TestPickUniformAmongLocal(t *testing.T) {
	space := mem.NewSpace(2, 1<<18)
	tab := New(space, 10)
	rng := rand.New(rand.NewSource(2))
	counts := map[int]int{}
	for i := 0; i < 20000; i++ {
		idx := tab.Pick(rng, 0, 100)
		counts[idx]++
	}
	for idx, c := range counts {
		if tab.HomeNode(idx) != 0 {
			t.Fatalf("100%% locality picked remote lock %d", idx)
		}
		if c < 3200 || c > 4800 { // 5 local locks, expect ~4000 each
			t.Errorf("lock %d picked %d times (expect ~4000)", idx, c)
		}
	}
}

func TestPickSingleNodeAllLocal(t *testing.T) {
	space := mem.NewSpace(1, 1<<16)
	tab := New(space, 10)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		idx := tab.Pick(rng, 0, 0) // wants remote, none exists
		if tab.HomeNode(idx) != 0 {
			t.Fatal("impossible")
		}
	}
}

func TestFewerLocksThanNodes(t *testing.T) {
	space := mem.NewSpace(4, 1<<16)
	tab := New(space, 2) // nodes 2,3 own nothing
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		idx := tab.Pick(rng, 3, 100) // wants local, has none: falls back
		if tab.HomeNode(idx) == 3 {
			t.Fatal("node 3 owns no locks")
		}
		_ = idx
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	space := mem.NewSpace(2, 1<<12)
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(space, 0)
}

// Property: Pick always returns a valid index whose home matches the
// locality request whenever the request is satisfiable.
func TestQuickPickRespectsLocality(t *testing.T) {
	space := mem.NewSpace(4, 1<<20)
	tab := New(space, 37)
	f := func(seed int64, rawNode, rawPct uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		node := int(rawNode) % 4
		pct := int(rawPct) % 101
		idx := tab.Pick(rng, node, pct)
		if idx < 0 || idx >= tab.Len() {
			return false
		}
		if pct == 100 && len(tab.LocksOn(node)) > 0 && tab.HomeNode(idx) != node {
			return false
		}
		if pct == 0 && len(tab.LocksOn(node)) < tab.Len() && tab.HomeNode(idx) == node {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPickSkewedConcentrates(t *testing.T) {
	space := mem.NewSpace(4, 1<<18)
	tab := New(space, 100)
	rng := rand.New(rand.NewSource(5))
	sk := tab.NewSkew(rng, 1, 1.5)
	if sk == nil {
		t.Fatal("NewSkew(1.5) returned nil")
	}
	counts := map[int]int{}
	const trials = 30000
	for i := 0; i < trials; i++ {
		counts[tab.PickSkewed(rng, 1, 100, sk)]++
	}
	hot := tab.LocksOn(1)[0]
	if counts[hot] < trials/5 {
		t.Errorf("hottest lock got %d of %d picks; expected strong concentration", counts[hot], trials)
	}
	for idx := range counts {
		if tab.HomeNode(idx) != 1 {
			t.Fatalf("100%% locality skew picked remote lock %d", idx)
		}
	}
}

func TestPickSkewedRespectsLocality(t *testing.T) {
	space := mem.NewSpace(4, 1<<18)
	tab := New(space, 100)
	rng := rand.New(rand.NewSource(6))
	sk := tab.NewSkew(rng, 2, 2.0)
	local := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if tab.HomeNode(tab.PickSkewed(rng, 2, 80, sk)) == 2 {
			local++
		}
	}
	got := float64(local) / trials * 100
	if got < 77 || got > 83 {
		t.Errorf("skewed locality = %.1f%%, want ~80%%", got)
	}
}

func TestNewSkewNilForUniform(t *testing.T) {
	space := mem.NewSpace(2, 1<<14)
	tab := New(space, 10)
	rng := rand.New(rand.NewSource(7))
	if tab.NewSkew(rng, 0, 0) != nil || tab.NewSkew(rng, 0, 1.0) != nil {
		t.Fatal("s <= 1 must return nil (uniform)")
	}
	// PickSkewed with nil skew falls back to Pick.
	idx := tab.PickSkewed(rng, 0, 100, nil)
	if tab.HomeNode(idx) != 0 {
		t.Fatal("fallback pick broke locality")
	}
}

func TestSkewedHomeLayout(t *testing.T) {
	space := mem.NewSpace(4, 1<<18)
	tab := NewWithLayout(space, 200, SkewedHome(0, 60))
	hot := len(tab.LocksOn(0))
	if hot != 120 {
		t.Fatalf("hot node owns %d of 200 locks, want exactly 120 (60%%)", hot)
	}
	total := 0
	for n := 0; n < tab.Nodes(); n++ {
		own := len(tab.LocksOn(n))
		total += own
		if n != 0 && own == 0 {
			t.Errorf("node %d owns no locks", n)
		}
	}
	if total != tab.Len() {
		t.Fatalf("ownership does not partition the table: %d != %d", total, tab.Len())
	}
	// Home assignments must match the allocated pointers.
	for i := 0; i < tab.Len(); i++ {
		if tab.HomeNode(i) != tab.Ptr(i).NodeID() {
			t.Fatalf("lock %d home mismatch", i)
		}
	}
}

func TestSkewedHomeSmallTable(t *testing.T) {
	// Regression: the hot fraction must hold for tables smaller than 100
	// locks (the paper's high-contention size is 20).
	space := mem.NewSpace(4, 1<<18)
	tab := NewWithLayout(space, 20, SkewedHome(0, 60))
	if hot := len(tab.LocksOn(0)); hot != 12 {
		t.Fatalf("hot node owns %d of 20 locks, want exactly 12 (60%%)", hot)
	}
	for n := 1; n < tab.Nodes(); n++ {
		if len(tab.LocksOn(n)) == 0 {
			t.Errorf("node %d owns no locks", n)
		}
	}
}

func TestSkewedHomeSingleNode(t *testing.T) {
	space := mem.NewSpace(1, 1<<14)
	tab := NewWithLayout(space, 20, SkewedHome(0, 60))
	if len(tab.LocksOn(0)) != 20 {
		t.Fatal("single-node skewed layout must home everything locally")
	}
}

func TestPickWorksUnderSkewedHome(t *testing.T) {
	space := mem.NewSpace(4, 1<<18)
	tab := NewWithLayout(space, 100, SkewedHome(0, 80))
	rng := rand.New(rand.NewSource(9))
	// A thread on the hot node: locality still honored despite owning 80%.
	local := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if tab.HomeNode(tab.Pick(rng, 0, 70)) == 0 {
			local++
		}
	}
	got := float64(local) / trials * 100
	if got < 67 || got > 73 {
		t.Errorf("hot-node locality = %.1f%%, want ~70%%", got)
	}
	// A thread elsewhere: remote picks must reach the hot node's locks.
	sawHot := false
	for i := 0; i < 1000 && !sawHot; i++ {
		sawHot = tab.HomeNode(tab.Pick(rng, 2, 0)) == 0
	}
	if !sawHot {
		t.Error("remote picks never reached the hot node")
	}
}
