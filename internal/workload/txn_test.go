package workload

import (
	"fmt"
	"testing"

	"alock/internal/api"
	"alock/internal/locks"
	"alock/internal/locktable"
	"alock/internal/model"
	"alock/internal/ptr"
	"alock/internal/sim"
)

func TestTxnSpecValidate(t *testing.T) {
	good := []Spec{
		{LocalityPct: 90, TxnLocks: 2},
		{LocalityPct: 90, TxnLocks: 2, TxnPolicy: TxnPolicyOrdered, AcquireTimeoutNS: 1000},
		{LocalityPct: 90, TxnLocks: 3, TxnPolicy: TxnPolicyBackoff, AcquireTimeoutNS: 1000, TxnBackoffNS: 500},
		{LocalityPct: 90, TxnLocks: 2, TxnPolicy: TxnPolicyWaitDie, AcquireTimeoutNS: 1000},
		{LocalityPct: 90, TxnLocks: 2, TxnPolicy: TxnPolicyWaitDie, AcquireTimeoutNS: 1000, TxnRing: true},
		{LocalityPct: 90, TxnLocks: 2, TxnOrder: TxnUnordered, TxnPolicy: TxnPolicyWaitDie, AcquireTimeoutNS: 1000},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("good case %d rejected: %v", i, err)
		}
	}
	bad := []Spec{
		{LocalityPct: 90, TxnLocks: 1},                              // k must be >= 2
		{LocalityPct: 90, TxnLocks: -1},                             //
		{LocalityPct: 90, TxnPolicy: TxnPolicyWaitDie},              // knobs without TxnLocks
		{LocalityPct: 90, TxnRing: true},                            //
		{LocalityPct: 90, TxnBackoffNS: 10},                         //
		{LocalityPct: 90, TxnLocks: 2, TxnPolicy: "zigzag"},         // unknown policy
		{LocalityPct: 90, TxnLocks: 2, TxnOrder: "sideways"},        // unknown order
		{LocalityPct: 90, TxnLocks: 2, TxnOrder: TxnUnordered},      // blocking unordered = deadlock
		{LocalityPct: 90, TxnLocks: 2, TxnPolicy: TxnPolicyBackoff}, // needs deadline+backoff
		{LocalityPct: 90, TxnLocks: 2, TxnPolicy: TxnPolicyBackoff, AcquireTimeoutNS: 1000},
		{LocalityPct: 90, TxnLocks: 2, TxnPolicy: TxnPolicyWaitDie},     // needs deadline
		{LocalityPct: 90, TxnLocks: 2, ReadPct: 10},                     // txns own the op mix
		{LocalityPct: 90, TxnLocks: 2, PairProb: 0.1},                   //
		{LocalityPct: 90, TxnLocks: 2, LeaseProb: 0.1, LeaseHoldNS: 10}, //
		{LocalityPct: 90, TxnLocks: 2, AbandonProb: 0.1, AbandonHoldNS: 10, AcquireTimeoutNS: 1000},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad case %d accepted", i)
		}
	}
}

// auditLocker wraps a per-thread TokenLocker and tracks guard balance
// across all threads (the simulator serializes, so plain maps are safe):
// every granted guard must be released exactly once, whatever the policy's
// abort/retry behavior does in between.
type auditLocker struct {
	inner api.TokenLocker
	live  map[uint64]bool
	errs  *[]string
}

func (a auditLocker) Acquire(l ptr.Ptr, mode api.Mode, opt api.AcquireOpts) (api.Guard, api.Outcome) {
	g, out := a.inner.Acquire(l, mode, opt)
	if out != api.TimedOut {
		if a.live[g.Token] {
			*a.errs = append(*a.errs, fmt.Sprintf("token %d granted twice", g.Token))
		}
		a.live[g.Token] = true
	}
	return g, out
}

func (a auditLocker) Release(g api.Guard) api.ReleaseOutcome {
	if !a.live[g.Token] {
		*a.errs = append(*a.errs, fmt.Sprintf("token %d released without a live grant (double release or leak)", g.Token))
	}
	delete(a.live, g.Token)
	return a.inner.Release(g)
}

func (a auditLocker) Abandon(g api.Guard) {
	delete(a.live, g.Token)
	a.inner.Abandon(g)
}

// txnRig runs a contended dining-ring transaction workload and returns the
// per-thread results plus whatever the audit recorded. mkDie, when
// non-nil, builds the OnDie hook with access to the run's AgeTable before
// the threads start.
func txnRig(t *testing.T, spec Spec, threads int,
	mkDie func(*AgeTable) func(age, holder uint64)) (
	results []ThreadResult, leaked int, auditErrs []string) {

	t.Helper()
	e := sim.New(2, 1<<18, model.Uniform(10), 7)
	table := locktable.New(e.Space(), threads) // one fork per philosopher
	prov, err := locks.ByName("mcs", locks.Options{Threads: threads, Timed: true})
	if err != nil {
		t.Fatal(err)
	}
	prov.Prepare(e.Space(), table.All())

	ft := locks.NewFenceTable()
	ages := NewAgeTable()
	var onDie func(age, holder uint64)
	if mkDie != nil {
		onDie = mkDie(ages)
	}
	prng := sim.NewPartitionedRNG(7)
	live := map[uint64]bool{}
	var errs []string
	results = make([]ThreadResult, threads)
	for i := 0; i < threads; i++ {
		slot := i
		e.Spawn(i%2, func(ctx api.Ctx) {
			h := auditLocker{
				inner: locks.TokenHandleFor(prov, ctx, ft),
				live:  live, errs: &errs,
			}
			env := Env{
				Backoff: prng.Stream(sim.SubsystemBackoff, slot),
				Ages:    ages,
				OnDie:   onDie,
			}
			results[slot] = RunEnv(ctx, h, table, spec, env, nil, 0, e)
		})
	}
	e.Run(600_000) // 0.6ms horizon
	return results, len(live), errs
}

// TestTxnGuardBalance: no guard is leaked across an abort and none is
// released twice — every Acquired guard is Released exactly once per retry
// round, under both unordered policies, with real aborts happening.
func TestTxnGuardBalance(t *testing.T) {
	for _, policy := range []string{TxnPolicyBackoff, TxnPolicyWaitDie} {
		t.Run(policy, func(t *testing.T) {
			spec := Spec{
				LocalityPct: 90,
				WarmupNS:    50_000,
				TxnLocks:    2,
				TxnRing:     true,
				TxnPolicy:   policy,
				// 8us holds against 6us deadlines: neighbors collide
				// constantly, so the policies abort and retry for real.
				CSWork:           8_000,
				AcquireTimeoutNS: 6_000,
			}
			if policy == TxnPolicyBackoff {
				spec.TxnBackoffNS = 4_000
			}
			results, leaked, errs := txnRig(t, spec, 6, nil)
			var commits, aborts int64
			for _, r := range results {
				commits += r.TxnCommits
				aborts += r.TxnAborts
			}
			if commits == 0 {
				t.Fatal("no transaction committed — the rig is broken")
			}
			if aborts == 0 {
				t.Fatal("no transaction aborted — the balance check is vacuous")
			}
			for _, e := range errs {
				t.Error(e)
			}
			if leaked != 0 {
				t.Errorf("%d guards still live after the run (leaked across aborts)", leaked)
			}
		})
	}
}

// TestWaitDieNeverAbortsOldest: every wait-die self-abort is by a
// transaction that is (a) younger than the holder it lost to and (b) not
// the oldest live transaction — the oldest always waits, which is what
// makes wait-die deadlock-free AND starvation-free.
func TestWaitDieNeverAbortsOldest(t *testing.T) {
	spec := Spec{
		LocalityPct:      90,
		WarmupNS:         0,
		TxnLocks:         2,
		TxnRing:          true,
		TxnPolicy:        TxnPolicyWaitDie,
		CSWork:           8_000,
		AcquireTimeoutNS: 6_000,
	}
	dies := 0
	violations := []string{}
	mkDie := func(ages *AgeTable) func(age, holderAge uint64) {
		return func(age, holderAge uint64) {
			dies++
			if age <= holderAge {
				violations = append(violations,
					fmt.Sprintf("txn age %d died against same-or-younger holder %d", age, holderAge))
			}
			if oldest, ok := ages.OldestLive(); ok && age == oldest {
				violations = append(violations,
					fmt.Sprintf("the oldest live transaction (age %d) aborted", age))
			}
		}
	}
	results, _, _ := txnRig(t, spec, 6, mkDie)
	var commits int64
	for _, r := range results {
		commits += r.TxnCommits
	}
	if commits == 0 {
		t.Fatal("no commits")
	}
	if dies == 0 {
		t.Fatal("no wait-die aborts happened — the invariant check is vacuous")
	}
	for _, v := range violations {
		t.Error(v)
	}
}
