// txn.go is the transaction layer: k-lock exclusive transactions on top
// of the acquisition-token API, with pluggable deadlock policies (Spec.
// TxnPolicy). The ordered policy is deadlock avoidance by lock ordering;
// timeout-backoff is deadlock recovery by bounded per-lock deadlines plus
// randomized exponential backoff; wait-die is deadlock prevention by age —
// a transaction's age is the first fencing token it was ever granted, and
// on a conflict the younger side self-aborts, so waits only ever point
// old→young and no cycle can form.
package workload

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"alock/internal/api"
	"alock/internal/locktable"
)

// AgeTable is the wait-die policy's shared registry: which transaction age
// currently holds each lock, and which transaction ages are live. Like the
// fencing authority it lives outside simulated memory — it models the lock
// service's transaction metadata, not a lock-word protocol — so consulting
// it costs no simulated operations. It is mutex-protected for the
// real-goroutine engine; under the deterministic simulator the mutex is
// uncontended and every decision is part of the reproducible schedule.
type AgeTable struct {
	mu      sync.Mutex
	holders map[uint64]uint64   // lock word -> holder transaction age
	live    map[uint64]struct{} // live transaction ages
}

// NewAgeTable returns an empty registry. One table serves one run.
func NewAgeTable() *AgeTable {
	return &AgeTable{
		holders: make(map[uint64]uint64),
		live:    make(map[uint64]struct{}),
	}
}

// SetHolder records age as the current holder of the lock word.
func (t *AgeTable) SetHolder(lock, age uint64) {
	t.mu.Lock()
	t.holders[lock] = age
	t.mu.Unlock()
}

// ClearHolder removes the holder record, but only if age still owns it (a
// stale clear racing a fresh SetHolder must not erase the new holder).
func (t *AgeTable) ClearHolder(lock, age uint64) {
	t.mu.Lock()
	if t.holders[lock] == age {
		delete(t.holders, lock)
	}
	t.mu.Unlock()
}

// Holder reports the age currently holding the lock word.
func (t *AgeTable) Holder(lock uint64) (uint64, bool) {
	t.mu.Lock()
	age, ok := t.holders[lock]
	t.mu.Unlock()
	return age, ok
}

// TxnStart registers a live transaction age.
func (t *AgeTable) TxnStart(age uint64) {
	t.mu.Lock()
	t.live[age] = struct{}{}
	t.mu.Unlock()
}

// TxnEnd unregisters a transaction age (commit, or wind-down at the
// horizon).
func (t *AgeTable) TxnEnd(age uint64) {
	t.mu.Lock()
	delete(t.live, age)
	t.mu.Unlock()
}

// OldestLive returns the smallest live transaction age — the transaction
// wait-die must never abort (the invariant the tests pin).
func (t *AgeTable) OldestLive() (uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var min uint64
	found := false
	for age := range t.live {
		if !found || age < min {
			min, found = age, true //lint:allow maporder pure minimum over map keys is order-independent
		}
	}
	return min, found
}

// Env carries the run-wide shared state the transaction layer needs beyond
// the per-thread Spec. The zero value serves every TxnLocks == 0 spec.
type Env struct {
	// Backoff is this thread's randomized-backoff stream — a
	// sim.SubsystemBackoff stream from the run's PartitionedRNG, never the
	// workload stream, so backoff draws cannot shift the operation
	// schedule. Required when the spec's policy draws backoff
	// (timeout-backoff always; wait-die iff TxnBackoffNS > 0).
	Backoff *rand.Rand
	// Ages is the wait-die age registry, shared by every thread of the
	// run. Required for the wait-die policy.
	Ages *AgeTable
	// OnDie, when non-nil, observes every wait-die self-abort with the
	// dying transaction's age and the holder age that out-ranked it (test
	// hook; the deterministic simulator serializes calls).
	OnDie func(age, holderAge uint64)
}

// validateFor panics on a spec/env mismatch: these are programmer errors
// in the harness wiring, not runtime conditions.
func (e Env) validateFor(s Spec) {
	if s.TxnLocks < 2 {
		return
	}
	switch s.txnPolicy() {
	case TxnPolicyBackoff:
		if e.Backoff == nil {
			panic("workload: timeout-backoff policy needs Env.Backoff")
		}
	case TxnPolicyWaitDie:
		if e.Ages == nil {
			panic("workload: wait-die policy needs Env.Ages")
		}
		if s.TxnBackoffNS > 0 && e.Backoff == nil {
			panic("workload: wait-die with TxnBackoffNS needs Env.Backoff")
		}
	}
}

// txnBackoffCapExp caps the exponential backoff growth: retry r draws from
// a window of TxnBackoffNS << min(r, txnBackoffCapExp).
const txnBackoffCapExp = 6

// TxnConfig summarizes the run-wide wiring a spec's transaction policy
// needs; the harness uses it to build Env and to reject algorithms whose
// deadlines are best-effort only.
type TxnConfig struct {
	// NeedsTimedPath: the policy recovers through real timeouts, so the
	// algorithm's timed path must be fully abortable
	// (locks.AbortableTimedProvider) — a best-effort deadline (filter,
	// bakery) or a committed waiter whose grant depends on another holder
	// (alock's cohort leaders) blocks forever inside a conflict cycle.
	NeedsTimedPath bool
	// NeedsAges: the policy consults the wait-die age registry.
	NeedsAges bool
	// NeedsBackoff: the policy draws from the randomized backoff stream.
	NeedsBackoff bool
}

// TxnConfigOf inspects a validated spec.
func TxnConfigOf(s Spec) TxnConfig {
	if s.TxnLocks < 2 {
		return TxnConfig{}
	}
	switch s.txnPolicy() {
	case TxnPolicyBackoff:
		return TxnConfig{NeedsTimedPath: true, NeedsBackoff: true}
	case TxnPolicyWaitDie:
		return TxnConfig{NeedsTimedPath: true, NeedsAges: true, NeedsBackoff: s.TxnBackoffNS > 0}
	}
	return TxnConfig{}
}

// pickTxnSet selects the transaction's TxnLocks distinct lock indices. The
// ring layout is deterministic (dining philosophers: thread t takes
// (t+j) mod L); otherwise locks are drawn from the locality/zipf picker
// with rejection of duplicates, falling back to a linear probe if the skew
// keeps hitting the same hot locks. Ordered specs sort the set ascending;
// unordered specs acquire in selection order.
func pickTxnSet(ctx api.Ctx, table *locktable.Table, spec Spec,
	rng *rand.Rand, skew *locktable.Skew, idxs []int) []int {

	k := spec.TxnLocks
	idxs = idxs[:0]
	if spec.TxnRing {
		base := ctx.ThreadID() % table.Len()
		for j := 0; j < k; j++ {
			idxs = append(idxs, (base+j)%table.Len())
		}
	} else {
		tries := 0
		for len(idxs) < k {
			c := table.PickSkewed(rng, ctx.NodeID(), spec.LocalityPct, skew)
			if tries++; tries > 16*k {
				// Pathological skew: finish the set with a linear probe so
				// the draw count stays bounded.
				for len(idxs) < k {
					if !containsInt(idxs, c) {
						idxs = append(idxs, c)
					}
					c = (c + 1) % table.Len()
				}
				break
			}
			if !containsInt(idxs, c) {
				idxs = append(idxs, c)
			}
		}
	}
	if spec.txnOrdered() {
		sort.Ints(idxs)
	}
	return idxs
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// releaseTxn releases every held guard in LIFO order, clearing wait-die
// holder records, and counts fenced releases (none are expected: every
// guard is live). It returns the emptied slice.
func releaseTxn(res *ThreadResult, h api.TokenLocker, env Env, spec Spec,
	held []api.Guard, age uint64, start int64) []api.Guard {

	for i := len(held) - 1; i >= 0; i-- {
		g := held[i]
		if env.Ages != nil {
			env.Ages.ClearHolder(g.Lock.Word(), age)
		}
		if h.Release(g) == api.Fenced && start >= spec.WarmupNS {
			res.FencedReleases++
		}
	}
	return held[:0]
}

// runTxnLoop is the transaction-mode operation loop: every operation is
// one k-lock exclusive transaction driven to commit (or to the horizon)
// under the spec's deadlock policy. It mirrors the single-lock loop's
// bookkeeping: bursts, think time, warmup gating, TargetOps/MaxOps stops.
func runTxnLoop(ctx api.Ctx, h api.TokenLocker, table *locktable.Table,
	spec Spec, env Env, opsDone *int64, targetOps int64,
	stopper StopRequester) ThreadResult {

	var res ThreadResult
	rng := ctx.Rand()
	skew := table.NewSkew(rng, ctx.NodeID(), spec.ZipfS)
	policy := spec.txnPolicy()

	burst := spec.BurstOnNS > 0
	var phaseEnd int64
	if burst {
		phaseEnd = ctx.Now() + 1 + rng.Int63n(spec.BurstOnNS)
	}

	idxs := make([]int, 0, spec.TxnLocks)
	held := make([]api.Guard, 0, spec.TxnLocks)
	for !ctx.Stopped() {
		if burst && ctx.Now() >= phaseEnd {
			ctx.Work(time.Duration(spec.BurstOffNS))
			phaseEnd = ctx.Now() + spec.BurstOnNS
			continue
		}
		idxs = pickTxnSet(ctx, table, spec, rng, skew, idxs)

		start := ctx.Now()
		var age uint64
		var retries int64
		committed, abandoned := false, false

	attempt:
		for {
			for _, li := range idxs {
				l := table.Ptr(li)
				var g api.Guard
				var out api.Outcome
				for { // wait-die waits re-arm the deadline here
					var opt api.AcquireOpts
					if spec.AcquireTimeoutNS > 0 {
						opt.DeadlineNS = ctx.Now() + spec.AcquireTimeoutNS
					}
					g, out = h.Acquire(l, api.Exclusive, opt)
					if out != api.TimedOut {
						break
					}
					if ctx.Stopped() {
						// The stop raced the timeout: abandon the attempt
						// outright — no policy abort is booked and no
						// backoff runs, so the reported abort counts are
						// policy decisions only.
						held = releaseTxn(&res, h, env, spec, held, age, start)
						abandoned = true
						break attempt
					}
					if policy == TxnPolicyWaitDie {
						holderAge, known := env.Ages.Holder(l.Word())
						if !known || age == 0 || age < holderAge {
							// Older than the holder (or nothing to compare
							// against): wait — re-arm the quantum and poll
							// again, keeping every held lock.
							continue
						}
						// Younger: die so the older holder never waits on
						// us — the abort below releases everything.
						if env.OnDie != nil {
							env.OnDie(age, holderAge)
						}
					}
					// Abort the attempt: back out of every held lock in
					// LIFO order.
					held = releaseTxn(&res, h, env, spec, held, age, start)
					if policy == TxnPolicyOrdered {
						// No retry story: the operation completes as a
						// timeout, exactly like PairProb's two-lock path.
						res.recordTimeout(spec, start, ctx.Now())
						res.TotalOps++
						abandoned = true
						break attempt
					}
					if start >= spec.WarmupNS {
						res.TxnAborts++
					}
					if spec.TxnBackoffNS > 0 {
						shift := retries
						if shift > txnBackoffCapExp {
							shift = txnBackoffCapExp
						}
						window := spec.TxnBackoffNS << uint(shift)
						ctx.Work(time.Duration(1 + env.Backoff.Int63n(window)))
					}
					if ctx.Stopped() {
						abandoned = true
						break attempt
					}
					retries++
					if start >= spec.WarmupNS {
						res.TxnRetries++
					}
					continue attempt
				}
				if out == api.AcquiredLate && start >= spec.WarmupNS {
					res.LateAcquires++
				}
				if age == 0 {
					// The transaction's very first grant: its fencing token
					// is the transaction's age for the rest of its life
					// (retries keep it, so a retrying transaction only ever
					// gets older relative to newcomers).
					age = g.Token
					if env.Ages != nil {
						env.Ages.TxnStart(age)
					}
				}
				if env.Ages != nil {
					env.Ages.SetHolder(l.Word(), age)
				}
				held = append(held, g)
			}
			committed = true
			break
		}

		if !committed {
			if env.Ages != nil && age != 0 {
				env.Ages.TxnEnd(age)
			}
			if abandoned && ctx.Stopped() {
				break // horizon: the attempt is abandoned, nothing recorded
			}
			// Ordered-policy timeout: fall through to think time like the
			// single-lock loop's timeout path.
			if spec.Think > 0 {
				ctx.Work(spec.Think)
			}
			continue
		}

		if spec.CSWork > 0 {
			ctx.Work(spec.CSWork)
		}
		held = releaseTxn(&res, h, env, spec, held, age, start)
		if env.Ages != nil && age != 0 {
			env.Ages.TxnEnd(age)
		}
		end := ctx.Now()

		res.TotalOps++
		if start >= spec.WarmupNS {
			res.Ops++
			res.WriteOps++
			res.WriteLatency.Add(end - start)
			res.TxnCommits++
			res.TxnRetryHist.Add(retries)
			res.CommitLatency.Add(end - start)
			if res.FirstRecNS == 0 {
				res.FirstRecNS = end
			}
			res.LastRecNS = end
			if opsDone != nil {
				*opsDone++ // engine-serialized: sim runs one thread at a time
				if stopper != nil && targetOps > 0 && *opsDone >= targetOps {
					stopper.RequestStop()
				}
			}
			if spec.MaxOps > 0 && res.Ops >= spec.MaxOps {
				break
			}
		}
		if spec.Think > 0 {
			ctx.Work(spec.Think)
		}
	}
	res.Latency.Merge(&res.ReadLatency)
	res.Latency.Merge(&res.WriteLatency)
	return res
}
