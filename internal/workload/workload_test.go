package workload

import (
	"testing"
	"time"

	"alock/internal/api"
	"alock/internal/locks"
	"alock/internal/locktable"
	"alock/internal/model"
	"alock/internal/sim"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{LocalityPct: 90}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{LocalityPct: -1},
		{LocalityPct: 101},
		{LocalityPct: 50, CSWork: -time.Nanosecond},
		{LocalityPct: 50, Think: -time.Nanosecond},
		{LocalityPct: 50, BurstOnNS: 1000},              // off phase missing
		{LocalityPct: 50, BurstOffNS: 1000},             // on phase missing
		{LocalityPct: 50, BurstOnNS: -1, BurstOffNS: 1}, // negative
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func runLoop(t *testing.T, spec Spec, horizon int64) ThreadResult {
	t.Helper()
	e := sim.New(2, 1<<18, model.Uniform(10), 1)
	table := locktable.New(e.Space(), 10)
	prov := locks.NewALockProvider()
	var res ThreadResult
	e.Spawn(0, func(ctx api.Ctx) {
		h := prov.NewHandle(ctx)
		res = Run(ctx, h, table, spec, nil, 0, nil)
	})
	e.Run(horizon)
	return res
}

func TestWarmupExcluded(t *testing.T) {
	res := runLoop(t, Spec{LocalityPct: 100, WarmupNS: 50_000}, 100_000)
	if res.TotalOps <= res.Ops {
		t.Fatalf("warmup ops not excluded: total=%d recorded=%d", res.TotalOps, res.Ops)
	}
	if res.Ops == 0 {
		t.Fatal("no recorded ops")
	}
	if res.FirstRecNS < 50_000 {
		t.Fatalf("first recorded completion %d inside warmup", res.FirstRecNS)
	}
}

func TestLatencyRecorded(t *testing.T) {
	res := runLoop(t, Spec{LocalityPct: 100}, 80_000)
	if res.Latency.Count() != res.Ops {
		t.Fatalf("latency count %d != ops %d", res.Latency.Count(), res.Ops)
	}
	if res.Latency.Min() <= 0 {
		t.Fatal("latencies must be positive")
	}
	if res.LastRecNS < res.FirstRecNS {
		t.Fatal("recording span inverted")
	}
}

func TestCSWorkLengthensOps(t *testing.T) {
	fast := runLoop(t, Spec{LocalityPct: 100}, 200_000)
	slow := runLoop(t, Spec{LocalityPct: 100, CSWork: 2 * time.Microsecond}, 200_000)
	if slow.Latency.Mean() < fast.Latency.Mean()+1500 {
		t.Fatalf("CS work not reflected: fast mean %.0f, slow mean %.0f",
			fast.Latency.Mean(), slow.Latency.Mean())
	}
}

func TestThinkReducesOpsNotLatency(t *testing.T) {
	busy := runLoop(t, Spec{LocalityPct: 100}, 200_000)
	idle := runLoop(t, Spec{LocalityPct: 100, Think: 5 * time.Microsecond}, 200_000)
	if idle.TotalOps >= busy.TotalOps {
		t.Fatalf("think time did not reduce op count: %d vs %d", idle.TotalOps, busy.TotalOps)
	}
}

func TestBurstPhasesReduceOps(t *testing.T) {
	steady := runLoop(t, Spec{LocalityPct: 100}, 400_000)
	// 50% duty cycle: ~half the steady operation count.
	bursty := runLoop(t, Spec{
		LocalityPct: 100,
		BurstOnNS:   20_000,
		BurstOffNS:  20_000,
	}, 400_000)
	if bursty.TotalOps >= steady.TotalOps*3/4 {
		t.Fatalf("burst phases did not throttle: steady=%d bursty=%d",
			steady.TotalOps, bursty.TotalOps)
	}
	if bursty.TotalOps < steady.TotalOps/5 {
		t.Fatalf("burst throttled too hard for a 50%% duty cycle: steady=%d bursty=%d",
			steady.TotalOps, bursty.TotalOps)
	}
}

func TestBurstDeterministic(t *testing.T) {
	spec := Spec{LocalityPct: 80, BurstOnNS: 15_000, BurstOffNS: 10_000}
	a := runLoop(t, spec, 300_000)
	b := runLoop(t, spec, 300_000)
	if a.TotalOps != b.TotalOps || a.Ops != b.Ops {
		t.Fatalf("bursty runs nondeterministic: %+v vs %+v", a, b)
	}
}

func TestMaxOpsBounds(t *testing.T) {
	res := runLoop(t, Spec{LocalityPct: 100, MaxOps: 7}, 1<<40)
	if res.Ops != 7 {
		t.Fatalf("MaxOps=7 recorded %d", res.Ops)
	}
}

func TestSharedCounterStopsRun(t *testing.T) {
	e := sim.New(2, 1<<18, model.Uniform(10), 1)
	table := locktable.New(e.Space(), 10)
	prov := locks.NewALockProvider()
	var opsDone int64
	results := make([]ThreadResult, 4)
	for i := 0; i < 4; i++ {
		slot := i
		e.Spawn(i%2, func(ctx api.Ctx) {
			h := prov.NewHandle(ctx)
			results[slot] = Run(ctx, h, table, Spec{LocalityPct: 50}, &opsDone, 100, e)
		})
	}
	e.Run(1 << 40) // would run forever without the target
	var total int64
	for _, r := range results {
		total += r.Ops
	}
	if total < 100 || total > 104 {
		t.Fatalf("total recorded ops = %d, want ~100", total)
	}
}

func TestBadSpecPanics(t *testing.T) {
	e := sim.New(1, 1<<12, model.Uniform(1), 1)
	table := locktable.New(e.Space(), 2)
	prov := locks.NewALockProvider()
	e.Spawn(0, func(ctx api.Ctx) {
		defer func() {
			if recover() == nil {
				t.Error("invalid spec did not panic")
			}
		}()
		Run(ctx, prov.NewHandle(ctx), table, Spec{LocalityPct: -5}, nil, 0, nil)
	})
	e.Run(1 << 40)
}
