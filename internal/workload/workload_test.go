package workload

import (
	"testing"
	"time"

	"alock/internal/api"
	"alock/internal/locks"
	"alock/internal/locktable"
	"alock/internal/model"
	"alock/internal/sim"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{LocalityPct: 90}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{LocalityPct: -1},
		{LocalityPct: 101},
		{LocalityPct: 50, CSWork: -time.Nanosecond},
		{LocalityPct: 50, Think: -time.Nanosecond},
		{LocalityPct: 50, BurstOnNS: 1000},              // off phase missing
		{LocalityPct: 50, BurstOffNS: 1000},             // on phase missing
		{LocalityPct: 50, BurstOnNS: -1, BurstOffNS: 1}, // negative
		{LocalityPct: 50, ReadPct: -1},
		{LocalityPct: 50, ReadPct: 101},
		{LocalityPct: 50, LeaseProb: 1.5, LeaseHoldNS: 1000},
		{LocalityPct: 50, LeaseProb: 0.1},    // hold missing
		{LocalityPct: 50, LeaseHoldNS: 1000}, // probability missing
		{LocalityPct: 50, LeaseProb: -0.1, LeaseHoldNS: 1000},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func runLoop(t *testing.T, spec Spec, horizon int64) ThreadResult {
	t.Helper()
	return runLoopWith(t, locks.NewALockProvider(), spec, horizon)
}

func runLoopWith(t *testing.T, prov locks.Provider, spec Spec, horizon int64) ThreadResult {
	t.Helper()
	e := sim.New(2, 1<<18, model.Uniform(10), 1)
	table := locktable.New(e.Space(), 10)
	prov.Prepare(e.Space(), table.All())
	var res ThreadResult
	ft := locks.NewFenceTable()
	e.Spawn(0, func(ctx api.Ctx) {
		h := locks.TokenHandleFor(prov, ctx, ft)
		res = Run(ctx, h, table, spec, nil, 0, nil)
	})
	e.Run(horizon)
	return res
}

func TestWarmupExcluded(t *testing.T) {
	res := runLoop(t, Spec{LocalityPct: 100, WarmupNS: 50_000}, 100_000)
	if res.TotalOps <= res.Ops {
		t.Fatalf("warmup ops not excluded: total=%d recorded=%d", res.TotalOps, res.Ops)
	}
	if res.Ops == 0 {
		t.Fatal("no recorded ops")
	}
	if res.FirstRecNS < 50_000 {
		t.Fatalf("first recorded completion %d inside warmup", res.FirstRecNS)
	}
}

func TestLatencyRecorded(t *testing.T) {
	res := runLoop(t, Spec{LocalityPct: 100}, 80_000)
	if res.Latency.Count() != res.Ops {
		t.Fatalf("latency count %d != ops %d", res.Latency.Count(), res.Ops)
	}
	if res.Latency.Min() <= 0 {
		t.Fatal("latencies must be positive")
	}
	if res.LastRecNS < res.FirstRecNS {
		t.Fatal("recording span inverted")
	}
}

func TestCSWorkLengthensOps(t *testing.T) {
	fast := runLoop(t, Spec{LocalityPct: 100}, 200_000)
	slow := runLoop(t, Spec{LocalityPct: 100, CSWork: 2 * time.Microsecond}, 200_000)
	if slow.Latency.Mean() < fast.Latency.Mean()+1500 {
		t.Fatalf("CS work not reflected: fast mean %.0f, slow mean %.0f",
			fast.Latency.Mean(), slow.Latency.Mean())
	}
}

func TestThinkReducesOpsNotLatency(t *testing.T) {
	busy := runLoop(t, Spec{LocalityPct: 100}, 200_000)
	idle := runLoop(t, Spec{LocalityPct: 100, Think: 5 * time.Microsecond}, 200_000)
	if idle.TotalOps >= busy.TotalOps {
		t.Fatalf("think time did not reduce op count: %d vs %d", idle.TotalOps, busy.TotalOps)
	}
}

func TestBurstPhasesReduceOps(t *testing.T) {
	steady := runLoop(t, Spec{LocalityPct: 100}, 400_000)
	// 50% duty cycle: ~half the steady operation count.
	bursty := runLoop(t, Spec{
		LocalityPct: 100,
		BurstOnNS:   20_000,
		BurstOffNS:  20_000,
	}, 400_000)
	if bursty.TotalOps >= steady.TotalOps*3/4 {
		t.Fatalf("burst phases did not throttle: steady=%d bursty=%d",
			steady.TotalOps, bursty.TotalOps)
	}
	if bursty.TotalOps < steady.TotalOps/5 {
		t.Fatalf("burst throttled too hard for a 50%% duty cycle: steady=%d bursty=%d",
			steady.TotalOps, bursty.TotalOps)
	}
}

func TestBurstDeterministic(t *testing.T) {
	spec := Spec{LocalityPct: 80, BurstOnNS: 15_000, BurstOffNS: 10_000}
	a := runLoop(t, spec, 300_000)
	b := runLoop(t, spec, 300_000)
	if a.TotalOps != b.TotalOps || a.Ops != b.Ops {
		t.Fatalf("bursty runs nondeterministic: %+v vs %+v", a, b)
	}
}

func TestReadShareSplitsClasses(t *testing.T) {
	res := runLoopWith(t, locks.NewRWBudgetProvider(),
		Spec{LocalityPct: 100, ReadPct: 80}, 400_000)
	if res.ReadOps == 0 || res.WriteOps == 0 {
		t.Fatalf("both classes must record: reads=%d writes=%d", res.ReadOps, res.WriteOps)
	}
	if res.ReadOps+res.WriteOps != res.Ops {
		t.Fatalf("class split %d+%d != ops %d", res.ReadOps, res.WriteOps, res.Ops)
	}
	if res.ReadLatency.Count() != res.ReadOps || res.WriteLatency.Count() != res.WriteOps {
		t.Fatal("per-class latency counts out of sync with per-class ops")
	}
	frac := float64(res.ReadOps) / float64(res.Ops)
	if frac < 0.70 || frac > 0.90 {
		t.Errorf("read fraction %.2f, want ~0.80", frac)
	}
	// Exclusive-only specs record everything as writes.
	excl := runLoop(t, Spec{LocalityPct: 100}, 100_000)
	if excl.ReadOps != 0 || excl.WriteOps != excl.Ops {
		t.Errorf("exclusive spec split reads=%d writes=%d ops=%d",
			excl.ReadOps, excl.WriteOps, excl.Ops)
	}
}

func TestLeaseHoldsStretchTail(t *testing.T) {
	base := runLoop(t, Spec{LocalityPct: 100}, 400_000)
	leased := runLoop(t, Spec{
		LocalityPct: 100,
		LeaseProb:   0.05,
		LeaseHoldNS: 20_000,
	}, 400_000)
	if leased.Ops == 0 {
		t.Fatal("leased run recorded nothing")
	}
	// ~5% of ops hold for 20us: the lease run's max must include a hold
	// span the base run never sees.
	if leased.Latency.Max() < base.Latency.Max()+15_000 {
		t.Fatalf("lease holds not visible in tail: base max=%d leased max=%d",
			base.Latency.Max(), leased.Latency.Max())
	}
	if leased.TotalOps >= base.TotalOps {
		t.Errorf("long holds did not cost throughput: %d vs %d ops",
			leased.TotalOps, base.TotalOps)
	}
}

func TestLeasesAreWriteSide(t *testing.T) {
	// A lease models ownership: even in an all-read mix, leased operations
	// acquire exclusive mode and are recorded as writes.
	res := runLoopWith(t, locks.NewRWBudgetProvider(), Spec{
		LocalityPct: 100,
		ReadPct:     100,
		LeaseProb:   0.10,
		LeaseHoldNS: 5_000,
	}, 600_000)
	if res.WriteOps == 0 {
		t.Fatal("no leases recorded as writes in an all-read mix")
	}
	if res.ReadOps == 0 {
		t.Fatal("read share vanished")
	}
	frac := float64(res.WriteOps) / float64(res.Ops)
	if frac < 0.04 || frac > 0.20 {
		t.Errorf("write (lease) fraction %.3f, want ~0.10", frac)
	}
	// Every write is a lease here, so the write-side median must reflect
	// the hold duration.
	if res.WriteLatency.Quantile(0.5) < 5_000 {
		t.Errorf("write-side p50 %dns below the 5us lease hold", res.WriteLatency.Quantile(0.5))
	}
}

func TestReadHeavyOutpacesExclusiveOnRWLock(t *testing.T) {
	// The point of the RW axis: on a native RW lock, a read-heavy mix
	// admits overlapping holders and completes more operations than the
	// same spec with every acquire exclusive. Contend 4 threads on 1 lock.
	run := func(readPct int) int64 {
		e := sim.New(2, 1<<18, model.Uniform(10), 1)
		table := locktable.New(e.Space(), 1)
		prov := locks.NewRWBudgetProvider()
		prov.Prepare(e.Space(), table.All())
		var total int64
		ft := locks.NewFenceTable()
		for i := 0; i < 4; i++ {
			node := i % 2
			e.Spawn(node, func(ctx api.Ctx) {
				h := locks.TokenHandleFor(prov, ctx, ft)
				r := Run(ctx, h, table, Spec{
					LocalityPct: 50,
					ReadPct:     readPct,
					CSWork:      time.Microsecond,
				}, nil, 0, nil)
				total += r.TotalOps
			})
		}
		e.Run(500_000)
		return total
	}
	excl, readHeavy := run(0), run(95)
	if readHeavy <= excl {
		t.Fatalf("95%% read mix (%d ops) not faster than exclusive (%d ops) on an RW lock",
			readHeavy, excl)
	}
}

func TestSpecValidateTokenFeatures(t *testing.T) {
	good := Spec{LocalityPct: 90, AcquireTimeoutNS: 10_000,
		AbandonProb: 0.01, AbandonHoldNS: 50_000, PairProb: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{LocalityPct: 50, AcquireTimeoutNS: -1},
		{LocalityPct: 50, AbandonProb: 1.5, AbandonHoldNS: 1000},
		{LocalityPct: 50, AbandonProb: 0.1},    // hold missing
		{LocalityPct: 50, AbandonHoldNS: 1000}, // probability missing
		{LocalityPct: 50, PairProb: -0.1},
		{LocalityPct: 50, PairProb: 1.1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// timedProv returns an MCS provider speaking the timed protocol (direct
// workload tests must match spec deadlines with a timed provider, the way
// the harness does via locks.Options.Timed).
func timedProv(t *testing.T) locks.Provider {
	t.Helper()
	p, err := locks.ByName("mcs", locks.Options{Timed: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTimeoutsRecordedUnderContention(t *testing.T) {
	// 4 threads on 1 lock with 5us critical sections: a 4us deadline is
	// below the typical queue wait, so timeouts must appear — recorded
	// separately from completed ops, with their own latency histogram.
	e := sim.New(2, 1<<18, model.Uniform(10), 1)
	table := locktable.New(e.Space(), 1)
	prov := timedProv(t)
	prov.Prepare(e.Space(), table.All())
	ft := locks.NewFenceTable()
	results := make([]ThreadResult, 4)
	for i := 0; i < 4; i++ {
		slot := i
		e.Spawn(i%2, func(ctx api.Ctx) {
			h := locks.TokenHandleFor(prov, ctx, ft)
			results[slot] = Run(ctx, h, table, Spec{
				LocalityPct:      50,
				CSWork:           5 * time.Microsecond,
				AcquireTimeoutNS: 4_000,
			}, nil, 0, nil)
		})
	}
	e.Run(500_000)
	var ops, timeouts, tlCount int64
	for _, r := range results {
		ops += r.Ops
		timeouts += r.Timeouts
		tlCount += r.TimeoutLatency.Count()
	}
	if timeouts == 0 {
		t.Fatal("no timeouts under a sub-service-time deadline")
	}
	if ops == 0 {
		t.Fatal("no completed ops: the lock must survive timeouts")
	}
	if tlCount != timeouts {
		t.Fatalf("timeout histogram count %d != timeouts %d", tlCount, timeouts)
	}
}

func TestAbandonsProduceFencedReleases(t *testing.T) {
	res := runLoopWith(t, timedProv(t), Spec{
		LocalityPct:   100,
		WarmupNS:      20_000,
		AbandonProb:   1, // every op crashes
		AbandonHoldNS: 2_000,
	}, 300_000)
	if res.Abandons == 0 {
		t.Fatal("no abandons with AbandonProb=1")
	}
	if res.Ops != 0 {
		t.Fatalf("abandoned ops counted as completed: %d", res.Ops)
	}
	if res.FencedReleases != res.Abandons {
		t.Fatalf("every abandon must fence its late release: abandons=%d fenced=%d",
			res.Abandons, res.FencedReleases)
	}
	if res.TotalOps <= res.Abandons {
		t.Fatalf("warmup abandons leaked into recorded counts: total=%d abandons=%d",
			res.TotalOps, res.Abandons)
	}
}

func TestPairOpsHoldBothAndComplete(t *testing.T) {
	res := runLoop(t, Spec{LocalityPct: 100, PairProb: 0.5}, 300_000)
	if res.PairOps == 0 {
		t.Fatal("no two-lock transactions with PairProb=0.5")
	}
	if res.PairOps > res.Ops {
		t.Fatalf("pair ops %d exceed ops %d", res.PairOps, res.Ops)
	}
	frac := float64(res.PairOps) / float64(res.Ops)
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("pair fraction %.2f, want ~0.50", frac)
	}
	if res.FencedReleases != 0 {
		t.Errorf("%d valid pair releases fenced", res.FencedReleases)
	}
}

// TestFeatureFreeSpecIgnoresTokenKnobs pins the replay contract at the
// workload level: a spec without timeout/abandon/pair features must
// produce the identical schedule whether those fields exist or not —
// i.e. the zero-valued features draw nothing and record nothing.
func TestFeatureFreeSpecIgnoresTokenKnobs(t *testing.T) {
	res := runLoop(t, Spec{LocalityPct: 80}, 200_000)
	if res.Timeouts != 0 || res.Abandons != 0 || res.FencedReleases != 0 || res.PairOps != 0 {
		t.Fatalf("feature-free spec recorded token outcomes: %+v", res)
	}
	again := runLoop(t, Spec{LocalityPct: 80}, 200_000)
	if res.TotalOps != again.TotalOps || res.Ops != again.Ops {
		t.Fatalf("feature-free runs nondeterministic: %d/%d vs %d/%d",
			res.TotalOps, res.Ops, again.TotalOps, again.Ops)
	}
}

func TestMaxOpsBounds(t *testing.T) {
	res := runLoop(t, Spec{LocalityPct: 100, MaxOps: 7}, 1<<40)
	if res.Ops != 7 {
		t.Fatalf("MaxOps=7 recorded %d", res.Ops)
	}
}

func TestSharedCounterStopsRun(t *testing.T) {
	e := sim.New(2, 1<<18, model.Uniform(10), 1)
	table := locktable.New(e.Space(), 10)
	prov := locks.NewALockProvider()
	var opsDone int64
	ft := locks.NewFenceTable()
	results := make([]ThreadResult, 4)
	for i := 0; i < 4; i++ {
		slot := i
		e.Spawn(i%2, func(ctx api.Ctx) {
			h := locks.TokenHandleFor(prov, ctx, ft)
			results[slot] = Run(ctx, h, table, Spec{LocalityPct: 50}, &opsDone, 100, e)
		})
	}
	e.Run(1 << 40) // would run forever without the target
	var total int64
	for _, r := range results {
		total += r.Ops
	}
	if total < 100 || total > 104 {
		t.Fatalf("total recorded ops = %d, want ~100", total)
	}
}

func TestBadSpecPanics(t *testing.T) {
	e := sim.New(1, 1<<12, model.Uniform(1), 1)
	table := locktable.New(e.Space(), 2)
	prov := locks.NewALockProvider()
	e.Spawn(0, func(ctx api.Ctx) {
		defer func() {
			if recover() == nil {
				t.Error("invalid spec did not panic")
			}
		}()
		Run(ctx, locks.TokenHandleFor(prov, ctx, locks.NewFenceTable()), table,
			Spec{LocalityPct: -5}, nil, 0, nil)
	})
	e.Run(1 << 40)
}
