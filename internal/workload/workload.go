// Package workload drives the lock-table benchmark of Section 6: each
// application thread repeatedly picks a lock — local with the configured
// locality probability — performs one Lock, an optional critical-section
// body, and one Unlock, which together constitute one "operation" in every
// figure of the paper.
package workload

import (
	"fmt"
	"time"

	"alock/internal/api"
	"alock/internal/locktable"
	"alock/internal/stats"
)

// Spec describes one thread's workload.
type Spec struct {
	// LocalityPct is the percentage of operations targeting locks homed on
	// the thread's own node (the paper sweeps 85, 90, 95, 100).
	LocalityPct int
	// CSWork is the simulated critical-section body duration.
	CSWork time.Duration
	// Think is the simulated time between operations (outside the lock).
	Think time.Duration
	// WarmupNS: operations completing before this engine time are executed
	// but not recorded.
	WarmupNS int64
	// MaxOps, if positive, bounds the recorded operations of this thread;
	// combined with Collector.RequestStop it lets the harness cut runs
	// short once enough samples exist.
	MaxOps int64
	// ZipfS, when > 1, skews lock popularity within each locality class
	// with a Zipf(s) rank distribution (hot-key extension; the paper's
	// workloads are uniform).
	ZipfS float64
	// BurstOnNS/BurstOffNS, when both positive, gate the loop through
	// on/off phases: the thread issues operations for BurstOnNS, then goes
	// idle for BurstOffNS, and repeats (bursty-arrival extension; the
	// paper's threads run open-throttle). Each thread's first phase
	// boundary is drawn from its deterministic stream so the cluster's
	// bursts are staggered rather than lockstep.
	BurstOnNS  int64
	BurstOffNS int64
	// ReadPct is the percentage of operations that acquire the lock in
	// shared (read) mode; the rest acquire exclusive. Zero reproduces the
	// paper's exclusive-only workloads and draws nothing from the RNG, so
	// existing schedules are untouched.
	ReadPct int
	// LeaseProb, when > 0, is the per-operation probability of a
	// lease-style long hold: the critical section lasts LeaseHoldNS
	// instead of CSWork, modeling ownership leases, long scans, or a
	// briefly wedged holder the rest of the cluster must ride out.
	// A lease models ownership, so a leased operation always acquires
	// exclusive (write) mode regardless of ReadPct.
	LeaseProb float64
	// LeaseHoldNS is the duration of a lease hold.
	LeaseHoldNS int64
	// AcquireTimeoutNS, when > 0, bounds every acquisition: an acquire
	// still waiting after this much engine time gives up and the
	// operation completes with the timeout outcome (recorded separately —
	// never in Ops/Latency). Requires a run whose lock handles speak the
	// timed protocol (harness wires this through locks.Options.Timed).
	// Deadlines draw nothing from the RNG, so timeout-free specs replay
	// bit-identically.
	AcquireTimeoutNS int64
	// AbandonProb, when > 0, is the per-operation probability that the
	// holder "crashes": it holds the lock for AbandonHoldNS — during
	// which waiters must time out to make progress — after which recovery
	// reclaims the lock (TokenLocker.Abandon) and the crashed holder's
	// own late release is fenced off by its stale token. Only exclusive
	// single-lock holds crash (the case that wedges the lock); the draw
	// is RNG-gated so abandon-free specs replay bit-identically.
	AbandonProb float64
	// AbandonHoldNS is the dead time an abandoned hold wedges its lock.
	AbandonHoldNS int64
	// PairProb, when > 0, is the per-operation probability of a two-lock
	// transaction: the thread acquires two distinct locks in ascending
	// table order (the classic deadlock-avoiding discipline), runs one
	// critical section under both, and releases in reverse order. Pairs
	// acquire exclusive mode and need descriptor-per-acquisition locks
	// (every registered algorithm qualifies). RNG-gated.
	PairProb float64
	// TxnLocks, when >= 2, turns every operation into a k-lock exclusive
	// transaction (generalizing PairProb's two-lock special case): the
	// thread acquires TxnLocks distinct locks, runs one critical section
	// under all of them, and releases in LIFO order. How conflicts between
	// transactions resolve is TxnPolicy's business. All transaction draws
	// are RNG-gated: TxnLocks == 0 specs replay existing schedules
	// bit-identically.
	TxnLocks int
	// TxnOrder selects the acquisition sequence within a transaction:
	// TxnOrdered sorts the lock set ascending (the classic deadlock-free
	// discipline), TxnUnordered acquires in selection order — deadlock-
	// prone by construction, which is the point of the deadlock policies.
	// Empty defaults to the policy's natural order (ordered for the
	// ordered policy, unordered for the others).
	TxnOrder string
	// TxnPolicy selects the deadlock policy:
	//
	//   - TxnPolicyOrdered: acquisitions block (or time out, recording the
	//     operation as a timeout like PairProb does); deadlock is avoided
	//     by the ascending order, so it requires TxnOrdered.
	//   - TxnPolicyBackoff ("timeout-backoff"): unordered acquires, each
	//     bounded by AcquireTimeoutNS; on TimedOut every held guard is
	//     released in LIFO order and the transaction retries after a
	//     randomized, capped exponential backoff drawn from the run's
	//     backoff stream (Env.Backoff — sim.SubsystemBackoff, never the
	//     workload stream). Requires AcquireTimeoutNS and TxnBackoffNS.
	//   - TxnPolicyWaitDie ("wait-die"): a transaction's age is the first
	//     fencing token it is ever granted; on a lock timeout the waiter
	//     consults the age registry (Env.Ages) and either keeps waiting
	//     (it is older than the holder) or self-aborts, releases all held
	//     guards and retries with its original age (it is younger). Waits
	//     only ever point old→young, so no cycle forms, and the oldest
	//     live transaction never aborts. Requires AcquireTimeoutNS as the
	//     wait quantum; TxnBackoffNS optionally pads each retry.
	TxnPolicy string
	// TxnBackoffNS is the base backoff: retry r of a transaction sleeps
	// uniform(1, TxnBackoffNS << min(r, 6)) ns before re-acquiring.
	TxnBackoffNS int64
	// TxnRing pins each transaction's lock set to the dining-philosophers
	// layout instead of random selection: thread t takes locks (t+j) mod
	// table-size for j in 0..TxnLocks-1, so under TxnUnordered the last
	// thread's wrap-around closes the classic cycle.
	TxnRing bool
}

// TxnOrder values.
const (
	TxnOrdered   = "ordered"
	TxnUnordered = "unordered"
)

// TxnPolicy values.
const (
	TxnPolicyOrdered = "ordered"
	TxnPolicyBackoff = "timeout-backoff"
	TxnPolicyWaitDie = "wait-die"
)

// txnPolicy returns the effective policy (empty means ordered).
func (s Spec) txnPolicy() string {
	if s.TxnPolicy == "" {
		return TxnPolicyOrdered
	}
	return s.TxnPolicy
}

// txnOrdered reports whether the lock set is acquired in ascending order.
func (s Spec) txnOrdered() bool {
	if s.TxnOrder == "" {
		return s.txnPolicy() == TxnPolicyOrdered
	}
	return s.TxnOrder == TxnOrdered
}

// Validate rejects nonsensical specs.
func (s Spec) Validate() error {
	if s.LocalityPct < 0 || s.LocalityPct > 100 {
		return fmt.Errorf("workload: locality %d%% out of range", s.LocalityPct)
	}
	if s.CSWork < 0 || s.Think < 0 {
		return fmt.Errorf("workload: negative durations")
	}
	if s.ZipfS != 0 && s.ZipfS <= 1 {
		return fmt.Errorf("workload: ZipfS must be > 1 (got %v)", s.ZipfS)
	}
	if s.BurstOnNS < 0 || s.BurstOffNS < 0 {
		return fmt.Errorf("workload: negative burst phases on=%d off=%d", s.BurstOnNS, s.BurstOffNS)
	}
	if (s.BurstOnNS > 0) != (s.BurstOffNS > 0) {
		return fmt.Errorf("workload: burst phases need both on and off (on=%d off=%d)",
			s.BurstOnNS, s.BurstOffNS)
	}
	if s.ReadPct < 0 || s.ReadPct > 100 {
		return fmt.Errorf("workload: read share %d%% out of range", s.ReadPct)
	}
	if s.LeaseProb < 0 || s.LeaseProb > 1 {
		return fmt.Errorf("workload: lease probability %v out of range", s.LeaseProb)
	}
	if s.LeaseHoldNS < 0 || (s.LeaseProb > 0) != (s.LeaseHoldNS > 0) {
		return fmt.Errorf("workload: lease needs both probability and hold (prob=%v hold=%d)",
			s.LeaseProb, s.LeaseHoldNS)
	}
	if s.AcquireTimeoutNS < 0 {
		return fmt.Errorf("workload: negative acquire timeout %d", s.AcquireTimeoutNS)
	}
	if s.AbandonProb < 0 || s.AbandonProb > 1 {
		return fmt.Errorf("workload: abandon probability %v out of range", s.AbandonProb)
	}
	if s.AbandonHoldNS < 0 || (s.AbandonProb > 0) != (s.AbandonHoldNS > 0) {
		return fmt.Errorf("workload: abandon needs both probability and hold (prob=%v hold=%d)",
			s.AbandonProb, s.AbandonHoldNS)
	}
	if s.PairProb < 0 || s.PairProb > 1 {
		return fmt.Errorf("workload: pair probability %v out of range", s.PairProb)
	}
	if s.TxnLocks < 0 || s.TxnLocks == 1 {
		return fmt.Errorf("workload: TxnLocks %d (transactions need k >= 2)", s.TxnLocks)
	}
	if s.TxnBackoffNS < 0 {
		return fmt.Errorf("workload: negative txn backoff %d", s.TxnBackoffNS)
	}
	if s.TxnLocks == 0 {
		if s.TxnOrder != "" || s.TxnPolicy != "" || s.TxnBackoffNS != 0 || s.TxnRing {
			return fmt.Errorf("workload: txn knobs set without TxnLocks")
		}
		return nil
	}
	switch s.TxnOrder {
	case "", TxnOrdered, TxnUnordered:
	default:
		return fmt.Errorf("workload: unknown TxnOrder %q", s.TxnOrder)
	}
	switch s.txnPolicy() {
	case TxnPolicyOrdered:
		if !s.txnOrdered() {
			// Blocking unordered acquisition has no conflict-resolution
			// story: two transactions genuinely deadlock.
			return fmt.Errorf("workload: the ordered policy requires ordered acquisition")
		}
	case TxnPolicyBackoff:
		if s.AcquireTimeoutNS <= 0 {
			return fmt.Errorf("workload: %s needs AcquireTimeoutNS as the per-lock deadline", TxnPolicyBackoff)
		}
		if s.TxnBackoffNS <= 0 {
			return fmt.Errorf("workload: %s needs TxnBackoffNS", TxnPolicyBackoff)
		}
	case TxnPolicyWaitDie:
		if s.AcquireTimeoutNS <= 0 {
			return fmt.Errorf("workload: %s needs AcquireTimeoutNS as the wait quantum", TxnPolicyWaitDie)
		}
	default:
		return fmt.Errorf("workload: unknown TxnPolicy %q", s.TxnPolicy)
	}
	if s.ReadPct != 0 || s.LeaseProb != 0 || s.AbandonProb != 0 || s.PairProb != 0 {
		// Transactions own the whole operation mix: they are exclusive by
		// nature and subsume PairProb; the crash/lease axes would need
		// their own transactional semantics to be meaningful.
		return fmt.Errorf("workload: TxnLocks excludes ReadPct/LeaseProb/AbandonProb/PairProb")
	}
	return nil
}

// ThreadResult is what one thread's loop produced.
type ThreadResult struct {
	Ops        int64 // recorded (post-warmup) completed operations
	TotalOps   int64 // including warmup, timeouts and abandons
	Latency    stats.Hist
	FirstRecNS int64 // engine time of first recorded completion
	LastRecNS  int64 // engine time of last recorded completion
	// ReadOps/WriteOps split Ops by acquire mode; ReadLatency/WriteLatency
	// split Latency the same way (exclusive-only workloads record
	// everything as writes).
	ReadOps      int64
	WriteOps     int64
	ReadLatency  stats.Hist
	WriteLatency stats.Hist
	// Acquisition outcomes beyond the happy path (recorded post-warmup,
	// like Ops). Timeouts counts operations that gave up waiting;
	// TimeoutLatency is their acquire-latency-to-outcome histogram — how
	// long a thread burned before giving up, the tail the deadline is
	// supposed to cap. Abandons counts simulated holder crashes, and
	// FencedReleases counts releases rejected by a stale fencing token
	// (every abandoned hold produces one when the "crashed" holder
	// retries its release).
	Timeouts       int64
	TimeoutLatency stats.Hist
	Abandons       int64
	FencedReleases int64
	// LateAcquires counts grants that landed after their requested
	// deadline (api.AcquiredLate): the blocking fallback of algorithms
	// without a native timed path, or a committed waiter's grant winning
	// the timeout race late. The operation still completes and is counted
	// in Ops; this counter is the honesty line — how often the deadline
	// was overshot rather than honored.
	LateAcquires int64
	// PairOps counts completed two-lock transactions (a subset of Ops).
	PairOps int64
	// Transaction-layer outcomes (TxnLocks >= 2; post-warmup, like Ops).
	// TxnCommits counts committed transactions (a subset of Ops, which
	// counts each committed transaction as one operation); TxnAborts
	// counts attempts abandoned by the deadlock policy (timeout-backoff
	// give-ups, wait-die self-aborts); TxnRetries counts re-attempts
	// actually started after an abort. TxnRetryHist is the per-commit
	// retry-count distribution and CommitLatency the per-commit
	// start-to-release latency distribution.
	TxnCommits    int64
	TxnAborts     int64
	TxnRetries    int64
	TxnRetryHist  stats.Hist
	CommitLatency stats.Hist
}

// StopRequester is the subset of the engine the loop needs to end a run
// early; internal/sim.Engine implements it.
type StopRequester interface{ RequestStop() }

// Run executes the operation loop until ctx.Stopped(). Every operation is
// one acquisition (shared for the ReadPct share, exclusive otherwise; a
// PairProb draw acquires a second lock in ascending order), an optional
// critical-section body, and the matching release(s) — all through the
// acquisition-token API, so outcomes are explicit: a deadline that fires
// records a timeout, an AbandonProb draw simulates a crashed holder whose
// late release is fenced. Latency is the full acquire-to-release-return
// span, as in the paper ("operations that encompass both one lock and one
// unlock operation").
//
// If stopper is non-nil and opsDone (shared across threads) reaches
// targetOps, the run is cut short — throughput remains unbiased because it
// is computed from recorded spans, not from the nominal horizon.
func Run(ctx api.Ctx, h api.TokenLocker, table *locktable.Table, spec Spec,
	opsDone *int64, targetOps int64, stopper StopRequester) ThreadResult {
	return RunEnv(ctx, h, table, spec, Env{}, opsDone, targetOps, stopper)
}

// RunEnv is Run with the run-wide shared transaction state (backoff
// stream, wait-die age registry). Specs with TxnLocks >= 2 run the
// transaction loop; everything else runs the single-lock loop and ignores
// env.
func RunEnv(ctx api.Ctx, h api.TokenLocker, table *locktable.Table, spec Spec,
	env Env, opsDone *int64, targetOps int64, stopper StopRequester) ThreadResult {

	if err := spec.Validate(); err != nil {
		panic(err)
	}
	env.validateFor(spec)
	if spec.TxnLocks >= 2 {
		return runTxnLoop(ctx, h, table, spec, env, opsDone, targetOps, stopper)
	}
	var res ThreadResult
	rng := ctx.Rand()
	skew := table.NewSkew(rng, ctx.NodeID(), spec.ZipfS)
	// Bursty arrivals: phaseEnd is the engine time the current on-phase
	// closes; the first boundary is staggered per thread.
	burst := spec.BurstOnNS > 0
	var phaseEnd int64
	if burst {
		phaseEnd = ctx.Now() + 1 + rng.Int63n(spec.BurstOnNS)
	}
	for !ctx.Stopped() {
		if burst && ctx.Now() >= phaseEnd {
			ctx.Work(time.Duration(spec.BurstOffNS))
			phaseEnd = ctx.Now() + spec.BurstOnNS
			continue
		}
		idx := table.PickSkewed(rng, ctx.NodeID(), spec.LocalityPct, skew)

		// Feature draws are gated so a spec without them consumes nothing
		// from the stream: feature-free schedules replay bit-identically.
		isRead := spec.ReadPct > 0 && rng.Intn(100) < spec.ReadPct
		hold := spec.CSWork
		if spec.LeaseProb > 0 && rng.Float64() < spec.LeaseProb {
			hold = time.Duration(spec.LeaseHoldNS)
			isRead = false // a lease is ownership: always a write-side hold
		}
		pairIdx := -1
		if spec.PairProb > 0 && rng.Float64() < spec.PairProb && table.Len() > 1 {
			// Second lock, uniform over the rest of the table; the pair is
			// ordered ascending so no two transactions deadlock.
			j := rng.Intn(table.Len() - 1)
			if j >= idx {
				j++
			}
			if j < idx {
				idx, j = j, idx
			}
			pairIdx = j
			isRead = false // transactions take ownership of both locks
		}
		// Crashes are modeled on exclusive single-lock holds — the case
		// that wedges the lock (a crashed reader leaves other readers
		// running, a different severity). The draw itself stays gated
		// only on the spec so RNG consumption is mode-independent.
		abandon := spec.AbandonProb > 0 && rng.Float64() < spec.AbandonProb &&
			pairIdx < 0 && !isRead

		l := table.Ptr(idx)
		mode := api.Exclusive
		if isRead {
			mode = api.Shared
		}
		var opt api.AcquireOpts
		if spec.AcquireTimeoutNS > 0 {
			opt.DeadlineNS = ctx.Now() + spec.AcquireTimeoutNS
		}

		start := ctx.Now()
		g, out := h.Acquire(l, mode, opt)
		if out == api.TimedOut {
			res.recordTimeout(spec, start, ctx.Now())
			res.TotalOps++
			if spec.Think > 0 {
				ctx.Work(spec.Think)
			}
			continue
		}
		if out == api.AcquiredLate && start >= spec.WarmupNS {
			res.LateAcquires++
		}
		var g2 api.Guard //lint:allow guardflow every path that acquires g2 releases it: the acquire and the release sit behind the same pairIdx >= 0 test, and the abandon exit is drawn only when pairIdx < 0 — branch correlation the per-path analysis cannot see
		if pairIdx >= 0 {
			g2, out = h.Acquire(table.Ptr(pairIdx), api.Exclusive, opt) //lint:allow guardflow loop back-edge imprecision: last iteration's g2 was released (or never acquired) before every continue
			if out == api.TimedOut {
				// The transaction cannot complete: back out of the first
				// lock and record the whole operation as a timeout.
				h.Release(g)
				res.recordTimeout(spec, start, ctx.Now())
				res.TotalOps++
				if spec.Think > 0 {
					ctx.Work(spec.Think)
				}
				continue
			}
			if out == api.AcquiredLate && start >= spec.WarmupNS {
				res.LateAcquires++
			}
		}

		if abandon {
			// A crashed holder: the lock stays wedged for the abandon hold
			// (waiters must time out to survive), then recovery reclaims
			// it and the holder's own late release bounces off the fence.
			ctx.Work(time.Duration(spec.AbandonHoldNS))
			h.Abandon(g)
			if h.Release(g) == api.Fenced {
				if start >= spec.WarmupNS {
					res.FencedReleases++
				}
			}
			if start >= spec.WarmupNS {
				res.Abandons++
			}
			res.TotalOps++
			if spec.Think > 0 {
				ctx.Work(spec.Think)
			}
			continue
		}

		if hold > 0 {
			ctx.Work(hold)
		}
		if pairIdx >= 0 {
			if h.Release(g2) == api.Fenced && start >= spec.WarmupNS {
				res.FencedReleases++
			}
		}
		if h.Release(g) == api.Fenced && start >= spec.WarmupNS {
			res.FencedReleases++
		}
		end := ctx.Now()

		res.TotalOps++
		if start >= spec.WarmupNS {
			res.Ops++
			if pairIdx >= 0 {
				res.PairOps++
			}
			if isRead {
				res.ReadOps++
				res.ReadLatency.Add(end - start)
			} else {
				res.WriteOps++
				res.WriteLatency.Add(end - start)
			}
			if res.FirstRecNS == 0 {
				res.FirstRecNS = end
			}
			res.LastRecNS = end
			if opsDone != nil {
				*opsDone++ // engine-serialized: sim runs one thread at a time
				if stopper != nil && targetOps > 0 && *opsDone >= targetOps {
					stopper.RequestStop()
				}
			}
			if spec.MaxOps > 0 && res.Ops >= spec.MaxOps {
				break
			}
		}
		if spec.Think > 0 {
			ctx.Work(spec.Think)
		}
	}
	// The combined hist is the union of the two class hists (they
	// partition the samples), so it is assembled once here instead of
	// paying a second Hist.Add per operation on the hot path.
	res.Latency.Merge(&res.ReadLatency)
	res.Latency.Merge(&res.WriteLatency)
	return res
}

// recordTimeout books one timed-out acquisition (post-warmup only, like
// every recorded statistic).
func (res *ThreadResult) recordTimeout(spec Spec, start, end int64) {
	if start < spec.WarmupNS {
		return
	}
	res.Timeouts++
	res.TimeoutLatency.Add(end - start)
}
