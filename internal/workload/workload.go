// Package workload drives the lock-table benchmark of Section 6: each
// application thread repeatedly picks a lock — local with the configured
// locality probability — performs one Lock, an optional critical-section
// body, and one Unlock, which together constitute one "operation" in every
// figure of the paper.
package workload

import (
	"fmt"
	"time"

	"alock/internal/api"
	"alock/internal/locktable"
	"alock/internal/stats"
)

// Spec describes one thread's workload.
type Spec struct {
	// LocalityPct is the percentage of operations targeting locks homed on
	// the thread's own node (the paper sweeps 85, 90, 95, 100).
	LocalityPct int
	// CSWork is the simulated critical-section body duration.
	CSWork time.Duration
	// Think is the simulated time between operations (outside the lock).
	Think time.Duration
	// WarmupNS: operations completing before this engine time are executed
	// but not recorded.
	WarmupNS int64
	// MaxOps, if positive, bounds the recorded operations of this thread;
	// combined with Collector.RequestStop it lets the harness cut runs
	// short once enough samples exist.
	MaxOps int64
	// ZipfS, when > 1, skews lock popularity within each locality class
	// with a Zipf(s) rank distribution (hot-key extension; the paper's
	// workloads are uniform).
	ZipfS float64
	// BurstOnNS/BurstOffNS, when both positive, gate the loop through
	// on/off phases: the thread issues operations for BurstOnNS, then goes
	// idle for BurstOffNS, and repeats (bursty-arrival extension; the
	// paper's threads run open-throttle). Each thread's first phase
	// boundary is drawn from its deterministic stream so the cluster's
	// bursts are staggered rather than lockstep.
	BurstOnNS  int64
	BurstOffNS int64
	// ReadPct is the percentage of operations that acquire the lock in
	// shared (read) mode; the rest acquire exclusive. Zero reproduces the
	// paper's exclusive-only workloads and draws nothing from the RNG, so
	// existing schedules are untouched.
	ReadPct int
	// LeaseProb, when > 0, is the per-operation probability of a
	// lease-style long hold: the critical section lasts LeaseHoldNS
	// instead of CSWork, modeling ownership leases, long scans, or a
	// briefly wedged holder the rest of the cluster must ride out.
	// A lease models ownership, so a leased operation always acquires
	// exclusive (write) mode regardless of ReadPct.
	LeaseProb float64
	// LeaseHoldNS is the duration of a lease hold.
	LeaseHoldNS int64
}

// Validate rejects nonsensical specs.
func (s Spec) Validate() error {
	if s.LocalityPct < 0 || s.LocalityPct > 100 {
		return fmt.Errorf("workload: locality %d%% out of range", s.LocalityPct)
	}
	if s.CSWork < 0 || s.Think < 0 {
		return fmt.Errorf("workload: negative durations")
	}
	if s.ZipfS != 0 && s.ZipfS <= 1 {
		return fmt.Errorf("workload: ZipfS must be > 1 (got %v)", s.ZipfS)
	}
	if s.BurstOnNS < 0 || s.BurstOffNS < 0 {
		return fmt.Errorf("workload: negative burst phases on=%d off=%d", s.BurstOnNS, s.BurstOffNS)
	}
	if (s.BurstOnNS > 0) != (s.BurstOffNS > 0) {
		return fmt.Errorf("workload: burst phases need both on and off (on=%d off=%d)",
			s.BurstOnNS, s.BurstOffNS)
	}
	if s.ReadPct < 0 || s.ReadPct > 100 {
		return fmt.Errorf("workload: read share %d%% out of range", s.ReadPct)
	}
	if s.LeaseProb < 0 || s.LeaseProb > 1 {
		return fmt.Errorf("workload: lease probability %v out of range", s.LeaseProb)
	}
	if s.LeaseHoldNS < 0 || (s.LeaseProb > 0) != (s.LeaseHoldNS > 0) {
		return fmt.Errorf("workload: lease needs both probability and hold (prob=%v hold=%d)",
			s.LeaseProb, s.LeaseHoldNS)
	}
	return nil
}

// ThreadResult is what one thread's loop produced.
type ThreadResult struct {
	Ops        int64 // recorded (post-warmup) operations
	TotalOps   int64 // including warmup
	Latency    stats.Hist
	FirstRecNS int64 // engine time of first recorded completion
	LastRecNS  int64 // engine time of last recorded completion
	// ReadOps/WriteOps split Ops by acquire mode; ReadLatency/WriteLatency
	// split Latency the same way (exclusive-only workloads record
	// everything as writes).
	ReadOps      int64
	WriteOps     int64
	ReadLatency  stats.Hist
	WriteLatency stats.Hist
}

// StopRequester is the subset of the engine the loop needs to end a run
// early; internal/sim.Engine implements it.
type StopRequester interface{ RequestStop() }

// Run executes the operation loop until ctx.Stopped(). Every operation is
// one Lock + CS + Unlock on a lock drawn from the table per the locality
// spec — shared (RLock) for the ReadPct share, exclusive otherwise.
// Latency is the full Lock-to-Unlock-return span, as in the paper
// ("operations that encompass both one lock and one unlock operation").
//
// If stopper is non-nil and opsDone (shared across threads) reaches
// targetOps, the run is cut short — throughput remains unbiased because it
// is computed from recorded spans, not from the nominal horizon.
func Run(ctx api.Ctx, h api.RWLocker, table *locktable.Table, spec Spec,
	opsDone *int64, targetOps int64, stopper StopRequester) ThreadResult {

	if err := spec.Validate(); err != nil {
		panic(err)
	}
	var res ThreadResult
	rng := ctx.Rand()
	skew := table.NewSkew(rng, ctx.NodeID(), spec.ZipfS)
	// Bursty arrivals: phaseEnd is the engine time the current on-phase
	// closes; the first boundary is staggered per thread.
	burst := spec.BurstOnNS > 0
	var phaseEnd int64
	if burst {
		phaseEnd = ctx.Now() + 1 + rng.Int63n(spec.BurstOnNS)
	}
	for !ctx.Stopped() {
		if burst && ctx.Now() >= phaseEnd {
			ctx.Work(time.Duration(spec.BurstOffNS))
			phaseEnd = ctx.Now() + spec.BurstOnNS
			continue
		}
		idx := table.PickSkewed(rng, ctx.NodeID(), spec.LocalityPct, skew)
		l := table.Ptr(idx)

		// Feature draws are gated so a spec without them consumes nothing
		// from the stream: pre-RW schedules replay bit-identically.
		isRead := spec.ReadPct > 0 && rng.Intn(100) < spec.ReadPct
		hold := spec.CSWork
		if spec.LeaseProb > 0 && rng.Float64() < spec.LeaseProb {
			hold = time.Duration(spec.LeaseHoldNS)
			isRead = false // a lease is ownership: always a write-side hold
		}

		start := ctx.Now()
		if isRead {
			h.RLock(l)
		} else {
			h.Lock(l)
		}
		if hold > 0 {
			ctx.Work(hold)
		}
		if isRead {
			h.RUnlock(l)
		} else {
			h.Unlock(l)
		}
		end := ctx.Now()

		res.TotalOps++
		if start >= spec.WarmupNS {
			res.Ops++
			if isRead {
				res.ReadOps++
				res.ReadLatency.Add(end - start)
			} else {
				res.WriteOps++
				res.WriteLatency.Add(end - start)
			}
			if res.FirstRecNS == 0 {
				res.FirstRecNS = end
			}
			res.LastRecNS = end
			if opsDone != nil {
				*opsDone++ // engine-serialized: sim runs one thread at a time
				if stopper != nil && targetOps > 0 && *opsDone >= targetOps {
					stopper.RequestStop()
				}
			}
			if spec.MaxOps > 0 && res.Ops >= spec.MaxOps {
				break
			}
		}
		if spec.Think > 0 {
			ctx.Work(spec.Think)
		}
	}
	// The combined hist is the union of the two class hists (they
	// partition the samples), so it is assembled once here instead of
	// paying a second Hist.Add per operation on the hot path.
	res.Latency.Merge(&res.ReadLatency)
	res.Latency.Merge(&res.WriteLatency)
	return res
}
