package api

import (
	"testing"
	"testing/quick"

	"alock/internal/ptr"
)

func TestCohortOther(t *testing.T) {
	if CohortLocal.Other() != CohortRemote {
		t.Error("local.Other() != remote")
	}
	if CohortRemote.Other() != CohortLocal {
		t.Error("remote.Other() != local")
	}
}

func TestCohortValuesMatchPetersonIndices(t *testing.T) {
	// The cohort values double as indices into Peterson's cohort[2] array
	// and as victim-word values; they must be exactly 0 and 1.
	if CohortLocal != 0 || CohortRemote != 1 {
		t.Fatalf("cohort values = %d/%d, want 0/1", CohortLocal, CohortRemote)
	}
}

func TestCohortString(t *testing.T) {
	if CohortLocal.String() != "LOCAL" || CohortRemote.String() != "REMOTE" {
		t.Errorf("strings = %q/%q", CohortLocal.String(), CohortRemote.String())
	}
}

func TestClassify(t *testing.T) {
	p := ptr.Pack(3, 128)
	if Classify(3, p) != CohortLocal {
		t.Error("same node must be local")
	}
	for _, n := range []int{0, 1, 2, 4, 15} {
		if Classify(n, p) != CohortRemote {
			t.Errorf("node %d must be remote for %v", n, p)
		}
	}
}

// Property: classification is a pure function of (threadNode == ptr node),
// and exactly one cohort ever results.
func TestQuickClassify(t *testing.T) {
	f := func(rawThread, rawPtrNode uint8, off uint64) bool {
		tn := int(rawThread) % ptr.MaxNodes
		pn := int(rawPtrNode) % ptr.MaxNodes
		p := ptr.Pack(pn, off&ptr.MaxOffset)
		c := Classify(tn, p)
		if tn == pn {
			return c == CohortLocal
		}
		return c == CohortRemote
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: Other is an involution.
func TestQuickOtherInvolution(t *testing.T) {
	f := func(raw bool) bool {
		c := CohortLocal
		if raw {
			c = CohortRemote
		}
		return c.Other().Other() == c && c.Other() != c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
