// Package api defines the execution-context interface that every lock
// algorithm in this repository is written against, plus the cohort
// classification rules of the paper's system model (Section 4).
//
// The paper distinguishes two classes of access to RDMA-accessible memory:
//
//   - Local access (Definition 4.1): shared-memory operations — Read,
//     Write, CAS — used by a thread when the memory resides on its own node.
//   - Remote access (Definition 4.2): RDMA one-sided operations — rRead,
//     rWrite, rCAS — used when the memory resides on another node (or when
//     a loopback-based algorithm insists on RDMA even for its own node).
//
// Atomicity between the classes is asymmetric (Table 1): reads and writes
// of either class are atomic with everything, but an rCAS is NOT atomic
// with a local Write or local RMW — it appears locally as a read followed
// by a write. The engines in internal/sim and internal/rt both honor this
// contract (tearing is configurable), which is what makes it possible to
// test that ALock's discipline — never mixing RMW classes on one word — is
// load-bearing.
//
// The same lock code runs unmodified on the deterministic discrete-event
// engine (internal/sim, used for every figure) and the real-goroutine
// engine (internal/rt, used for race-detector correctness tests and the
// examples), because both implement Ctx.
package api

import (
	"math/rand"
	"time"

	"alock/internal/ptr"
)

// Cohort identifies which of the paper's two cohorts a lock access belongs
// to. The values double as indices into Peterson's cohort[2] array
// (Algorithm 4) and as the values stored in a lock's victim word.
type Cohort int

const (
	// CohortLocal is the cohort of threads accessing a lock stored on
	// their own node using shared-memory operations.
	CohortLocal Cohort = 0
	// CohortRemote is the cohort of threads accessing a lock stored on a
	// different node using RDMA operations.
	CohortRemote Cohort = 1
)

// Other returns the opposing cohort (Algorithm 4: other <- 1 - id).
func (c Cohort) Other() Cohort { return 1 - c }

// String names the cohort as in the paper's example (LOCAL / REMOTE).
func (c Cohort) String() string {
	if c == CohortLocal {
		return "LOCAL"
	}
	return "REMOTE"
}

// Classify determines the cohort of an access by a thread on threadNode to
// the object at p, by inspecting the node ID embedded in the first 4 bits
// of the RDMA pointer (Section 5, "Lock Procedure").
func Classify(threadNode int, p ptr.Ptr) Cohort {
	if p.NodeID() == threadNode {
		return CohortLocal
	}
	return CohortRemote
}

// Ctx is a simulated (or real) thread's handle onto the cluster. All lock
// algorithms, workloads and examples are written against this interface.
//
// The six memory operations mirror the paper's Section 4 exactly. Callers
// choose the class; the engine charges the corresponding cost and enforces
// the corresponding atomicity. Using RRead/RWrite/RCAS against memory on
// the caller's own node is legal and models the loopback mechanism (it
// passes through the local RNIC, with all the congestion that implies) —
// that is precisely what the paper's spinlock and MCS competitors do.
type Ctx interface {
	// NodeID returns the node this thread executes on.
	NodeID() int
	// ThreadID returns a cluster-wide unique thread ID.
	ThreadID() int

	// Read performs a local (shared-memory) 8-byte load.
	Read(p ptr.Ptr) uint64
	// Write performs a local (shared-memory) 8-byte store.
	Write(p ptr.Ptr, v uint64)
	// CAS performs a local compare-and-swap and returns the previous value
	// (the swap succeeded iff the return value equals old).
	CAS(p ptr.Ptr, old, new uint64) uint64

	// RRead performs a one-sided RDMA read.
	RRead(p ptr.Ptr) uint64
	// RWrite performs a one-sided RDMA write.
	RWrite(p ptr.Ptr, v uint64)
	// RCAS performs a one-sided RDMA compare-and-swap and returns the
	// previous value. It is atomic with other remote operations but NOT
	// with local Write/CAS (Table 1) when the engine models tearing.
	RCAS(p ptr.Ptr, old, new uint64) uint64

	// Fence issues the atomic thread fence the algorithm requires after
	// locking and before unlocking (§5.2).
	Fence()

	// Pause backs off inside a spin loop; iter is the number of failed
	// polls so far. Engines translate it into bounded exponential delay.
	Pause(iter int)

	// Work burns d of engine time, modeling a critical-section body or
	// think time between operations.
	Work(d time.Duration)

	// Now returns nanoseconds of engine time since the run began
	// (virtual time under internal/sim, wall time under internal/rt).
	Now() int64

	// Stopped reports whether the engine has passed its measurement
	// horizon; workload loops exit cleanly (finishing their current
	// lock/unlock first) when it returns true.
	Stopped() bool

	// Alloc allocates words 8-byte words, aligned to align words, in this
	// thread's own node's RDMA-accessible memory.
	Alloc(words, align int) ptr.Ptr
	// Free releases a pointer obtained from Alloc.
	Free(p ptr.Ptr)

	// Rand returns this thread's deterministic random stream.
	Rand() *rand.Rand
}

// Locker is a per-thread handle to one lock algorithm. Lock and Unlock
// bracket a critical section on the lock object at l; an operation in the
// paper's evaluation is exactly one Lock followed by one Unlock.
type Locker interface {
	Lock(l ptr.Ptr)
	Unlock(l ptr.Ptr)
}

// RWLocker extends Locker with a shared (read) acquire mode: any number of
// RLock holders may overlap, but a Lock (write) holder excludes everyone.
// This is the operation axis the reader/writer workloads sweep; the paper's
// evaluation itself only exercises the exclusive mode.
type RWLocker interface {
	Locker
	// RLock acquires the lock at l in shared mode.
	RLock(l ptr.Ptr)
	// RUnlock releases a shared acquisition of the lock at l.
	RUnlock(l ptr.Ptr)
}

// ExclusiveRW adapts any Locker to RWLocker by degrading shared acquires
// to exclusive ones. It lets every exclusive-only algorithm run reader/
// writer workloads as a baseline: correct, but readers serialize.
type ExclusiveRW struct{ L Locker }

var _ RWLocker = ExclusiveRW{}

// Lock implements RWLocker.
func (x ExclusiveRW) Lock(l ptr.Ptr) { x.L.Lock(l) }

// Unlock implements RWLocker.
func (x ExclusiveRW) Unlock(l ptr.Ptr) { x.L.Unlock(l) }

// RLock implements RWLocker: a shared acquire degrades to exclusive.
func (x ExclusiveRW) RLock(l ptr.Ptr) { x.L.Lock(l) }

// RUnlock implements RWLocker.
func (x ExclusiveRW) RUnlock(l ptr.Ptr) { x.L.Unlock(l) }
