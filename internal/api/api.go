// Package api defines the execution-context interface that every lock
// algorithm in this repository is written against, plus the cohort
// classification rules of the paper's system model (Section 4).
//
// The paper distinguishes two classes of access to RDMA-accessible memory:
//
//   - Local access (Definition 4.1): shared-memory operations — Read,
//     Write, CAS — used by a thread when the memory resides on its own node.
//   - Remote access (Definition 4.2): RDMA one-sided operations — rRead,
//     rWrite, rCAS — used when the memory resides on another node (or when
//     a loopback-based algorithm insists on RDMA even for its own node).
//
// Atomicity between the classes is asymmetric (Table 1): reads and writes
// of either class are atomic with everything, but an rCAS is NOT atomic
// with a local Write or local RMW — it appears locally as a read followed
// by a write. The engines in internal/sim and internal/rt both honor this
// contract (tearing is configurable), which is what makes it possible to
// test that ALock's discipline — never mixing RMW classes on one word — is
// load-bearing.
//
// The same lock code runs unmodified on the deterministic discrete-event
// engine (internal/sim, used for every figure) and the real-goroutine
// engine (internal/rt, used for race-detector correctness tests and the
// examples), because both implement Ctx.
package api

import (
	"math/rand"
	"time"

	"alock/internal/ptr"
)

// Cohort identifies which of the paper's two cohorts a lock access belongs
// to. The values double as indices into Peterson's cohort[2] array
// (Algorithm 4) and as the values stored in a lock's victim word.
type Cohort int

const (
	// CohortLocal is the cohort of threads accessing a lock stored on
	// their own node using shared-memory operations.
	CohortLocal Cohort = 0
	// CohortRemote is the cohort of threads accessing a lock stored on a
	// different node using RDMA operations.
	CohortRemote Cohort = 1
)

// Other returns the opposing cohort (Algorithm 4: other <- 1 - id).
func (c Cohort) Other() Cohort { return 1 - c }

// String names the cohort as in the paper's example (LOCAL / REMOTE).
func (c Cohort) String() string {
	if c == CohortLocal {
		return "LOCAL"
	}
	return "REMOTE"
}

// Classify determines the cohort of an access by a thread on threadNode to
// the object at p, by inspecting the node ID embedded in the first 4 bits
// of the RDMA pointer (Section 5, "Lock Procedure").
func Classify(threadNode int, p ptr.Ptr) Cohort {
	if p.NodeID() == threadNode {
		return CohortLocal
	}
	return CohortRemote
}

// Ctx is a simulated (or real) thread's handle onto the cluster. All lock
// algorithms, workloads and examples are written against this interface.
//
// The six memory operations mirror the paper's Section 4 exactly. Callers
// choose the class; the engine charges the corresponding cost and enforces
// the corresponding atomicity. Using RRead/RWrite/RCAS against memory on
// the caller's own node is legal and models the loopback mechanism (it
// passes through the local RNIC, with all the congestion that implies) —
// that is precisely what the paper's spinlock and MCS competitors do.
type Ctx interface {
	// NodeID returns the node this thread executes on.
	NodeID() int
	// ThreadID returns a cluster-wide unique thread ID.
	ThreadID() int

	// Read performs a local (shared-memory) 8-byte load.
	Read(p ptr.Ptr) uint64
	// Write performs a local (shared-memory) 8-byte store.
	Write(p ptr.Ptr, v uint64)
	// CAS performs a local compare-and-swap and returns the previous value
	// (the swap succeeded iff the return value equals old).
	CAS(p ptr.Ptr, old, new uint64) uint64

	// RRead performs a one-sided RDMA read.
	RRead(p ptr.Ptr) uint64
	// RWrite performs a one-sided RDMA write.
	RWrite(p ptr.Ptr, v uint64)
	// RCAS performs a one-sided RDMA compare-and-swap and returns the
	// previous value. It is atomic with other remote operations but NOT
	// with local Write/CAS (Table 1) when the engine models tearing.
	RCAS(p ptr.Ptr, old, new uint64) uint64

	// Fence issues the atomic thread fence the algorithm requires after
	// locking and before unlocking (§5.2).
	Fence()

	// Pause backs off inside a spin loop; iter is the number of failed
	// polls so far. Engines translate it into bounded exponential delay.
	Pause(iter int)

	// Work burns d of engine time, modeling a critical-section body or
	// think time between operations.
	Work(d time.Duration)

	// Now returns nanoseconds of engine time since the run began
	// (virtual time under internal/sim, wall time under internal/rt).
	Now() int64

	// Stopped reports whether the engine has passed its measurement
	// horizon; workload loops exit cleanly (finishing their current
	// lock/unlock first) when it returns true.
	Stopped() bool

	// Alloc allocates words 8-byte words, aligned to align words, in this
	// thread's own node's RDMA-accessible memory.
	Alloc(words, align int) ptr.Ptr
	// Free releases a pointer obtained from Alloc.
	Free(p ptr.Ptr)

	// Rand returns this thread's deterministic random stream.
	Rand() *rand.Rand
}

// Locker is a per-thread handle to one lock algorithm. Lock and Unlock
// bracket a critical section on the lock object at l; an operation in the
// paper's evaluation is exactly one Lock followed by one Unlock.
type Locker interface {
	Lock(l ptr.Ptr)
	Unlock(l ptr.Ptr)
}

// RWLocker extends Locker with a shared (read) acquire mode: any number of
// RLock holders may overlap, but a Lock (write) holder excludes everyone.
// This is the operation axis the reader/writer workloads sweep; the paper's
// evaluation itself only exercises the exclusive mode.
type RWLocker interface {
	Locker
	// RLock acquires the lock at l in shared mode.
	RLock(l ptr.Ptr)
	// RUnlock releases a shared acquisition of the lock at l.
	RUnlock(l ptr.Ptr)
}

// --- Acquisition-token API ---
//
// Lock and Unlock model the paper's evaluation exactly: one blocking
// acquire, one implicit outstanding acquisition per handle. Everything the
// paper does not evaluate — timeouts, crashed holders, overlapping holds of
// several locks — needs acquisitions to be first-class values. TokenLocker
// is that redesign: every acquisition attempt returns an explicit Outcome,
// every grant returns a Guard carrying a fencing token minted at grant
// time, and Release validates the token so a stale holder's late release
// is rejected instead of corrupting the lock.

// Mode selects the acquisition class of one lock operation.
type Mode uint8

const (
	// Exclusive is a write-side acquisition: the holder excludes everyone.
	Exclusive Mode = iota
	// Shared is a read-side acquisition: holders may overlap. Algorithms
	// without native shared mode degrade it to Exclusive.
	Shared
)

// String names the mode for stats and test output.
func (m Mode) String() string {
	if m == Shared {
		return "shared"
	}
	return "exclusive"
}

// Outcome is the result of one acquisition attempt.
type Outcome uint8

const (
	// Acquired: the lock was granted; the returned Guard is live.
	Acquired Outcome = iota
	// TimedOut: the deadline passed before the grant; nothing is held and
	// the returned Guard is dead (its release is rejected as Fenced).
	TimedOut
	// AcquiredLate: the lock was granted — the Guard is live, exactly as
	// for Acquired — but only after the requested deadline had already
	// passed. This is the best-effort-deadline detail: algorithms without
	// a native timed path (filter, bakery) block straight through any
	// deadline, and committed queued waiters (ALock cohort leaders,
	// registered drain-wake writers) overshoot by design because grants
	// always win timeout races. Callers that ignore the distinction may
	// treat it as Acquired; callers that promised the deadline to someone
	// else must not pretend it was honored.
	AcquiredLate
)

// Granted reports whether the outcome carries a live Guard (Acquired or
// AcquiredLate).
func (o Outcome) Granted() bool { return o == Acquired || o == AcquiredLate }

// ReleaseOutcome is the result of releasing a Guard.
type ReleaseOutcome uint8

const (
	// Released: the guard was live; the lock has been released.
	Released ReleaseOutcome = iota
	// Fenced: the guard's fencing token was no longer live — a double
	// release, a timed-out acquire's guard, or the late release of an
	// abandoned hold that recovery already reclaimed. The lock state is
	// untouched.
	Fenced
)

// AcquireOpts parameterizes one acquisition attempt.
type AcquireOpts struct {
	// DeadlineNS is the engine time (api.Ctx.Now scale) after which the
	// attempt gives up and reports TimedOut. Zero means block until
	// granted. Algorithms without a native timed path may overshoot the
	// deadline and still return Acquired — a grant that races the timeout
	// and wins is always reported as a grant, never abandoned.
	DeadlineNS int64
}

// Guard is one live acquisition: the capability to release the lock it was
// granted on. Guards are values — a thread may hold guards on several locks
// at once (the algorithms allocate a descriptor per acquisition, not per
// thread).
type Guard struct {
	// Lock is the lock the guard was granted on.
	Lock ptr.Ptr
	// Mode is the acquisition class that was granted.
	Mode Mode
	// Token is the fencing token minted at grant time. Tokens increase
	// monotonically across the cluster, so of any two grants the later one
	// carries the larger token — the classic fencing-token contract.
	Token uint64
	// State is the algorithm's per-acquisition bookkeeping (its queue
	// descriptor, the installed state word); opaque to callers.
	State any
}

// TokenLocker is the acquisition-token lock API. One TokenLocker belongs to
// one thread, like Locker.
type TokenLocker interface {
	// Acquire attempts to take the lock at l in the given mode. On
	// Acquired the returned Guard is live; on TimedOut nothing is held.
	Acquire(l ptr.Ptr, mode Mode, opt AcquireOpts) (Guard, Outcome)
	// Release ends the acquisition g. It validates g's fencing token
	// first: a token that is no longer live (timed out, already released,
	// or reclaimed by Abandon) returns Fenced and leaves the lock alone.
	Release(g Guard) ReleaseOutcome
	// Abandon models a crashed holder being reclaimed by recovery: the
	// underlying lock is physically released so other threads make
	// progress again, but g's token is revoked — the crashed holder's own
	// later Release(g) reports Fenced. Abandon on a dead guard is a no-op.
	Abandon(g Guard)
}

// Blocking adapts a TokenLocker back to the blocking RWLocker shape, so
// call sites written against Lock/Unlock keep working unchanged on top of
// the token API (the migration adapter). It tracks one outstanding guard
// per lock; overlapping holds of distinct locks are fine.
type Blocking struct {
	T    TokenLocker
	held []Guard
}

var _ RWLocker = (*Blocking)(nil)

// NewBlocking wraps a TokenLocker in the blocking adapter.
func NewBlocking(t TokenLocker) *Blocking { return &Blocking{T: t} }

func (b *Blocking) acquire(l ptr.Ptr, mode Mode) {
	//lint:allow guardcheck no deadline: Acquire blocks until granted, so the outcome is always Acquired
	g, _ := b.T.Acquire(l, mode, AcquireOpts{})
	b.held = append(b.held, g)
}

func (b *Blocking) release(l ptr.Ptr, mode Mode) {
	for i := len(b.held) - 1; i >= 0; i-- {
		if b.held[i].Lock == l && b.held[i].Mode == mode {
			g := b.held[i]
			b.held = append(b.held[:i], b.held[i+1:]...)
			b.T.Release(g)
			return
		}
	}
	panic("api: Blocking release without matching acquire")
}

// Lock implements RWLocker.
func (b *Blocking) Lock(l ptr.Ptr) { b.acquire(l, Exclusive) }

// Unlock implements RWLocker.
func (b *Blocking) Unlock(l ptr.Ptr) { b.release(l, Exclusive) }

// RLock implements RWLocker.
func (b *Blocking) RLock(l ptr.Ptr) { b.acquire(l, Shared) }

// RUnlock implements RWLocker.
func (b *Blocking) RUnlock(l ptr.Ptr) { b.release(l, Shared) }

// ExclusiveRW adapts any Locker to RWLocker by degrading shared acquires
// to exclusive ones. It lets every exclusive-only algorithm run reader/
// writer workloads as a baseline: correct, but readers serialize.
type ExclusiveRW struct{ L Locker }

var _ RWLocker = ExclusiveRW{}

// Lock implements RWLocker.
func (x ExclusiveRW) Lock(l ptr.Ptr) { x.L.Lock(l) }

// Unlock implements RWLocker.
func (x ExclusiveRW) Unlock(l ptr.Ptr) { x.L.Unlock(l) }

// RLock implements RWLocker: a shared acquire degrades to exclusive.
func (x ExclusiveRW) RLock(l ptr.Ptr) { x.L.Lock(l) }

// RUnlock implements RWLocker.
func (x ExclusiveRW) RUnlock(l ptr.Ptr) { x.L.Unlock(l) }
