// Package locktest provides shared correctness harnesses for every lock
// algorithm in the repository. It is imported only by test files.
//
// The central check is mutual exclusion under the deterministic simulator
// with Table 1 tearing enabled: threads repeatedly acquire a lock and
// perform a deliberately non-atomic read-modify-write on a counter plus an
// ownership handshake. Any interleaving of two critical sections loses an
// increment or trips the ownership check, so a correct run proves the lock
// serialized every critical section under that schedule.
// CheckOverlappingHolds extends the same idea to two locks held at once
// through the acquisition-token API, proving descriptor-per-acquisition
// correctness and fencing-token acceptance of every valid release.
package locktest

import (
	"sort"
	"testing"
	"time"

	"alock/internal/api"
	"alock/internal/locks"
	"alock/internal/model"
	"alock/internal/ptr"
	"alock/internal/sim"
)

// MutexConfig parameterizes CheckMutualExclusion.
type MutexConfig struct {
	Nodes          int
	ThreadsPerNode int
	Locks          int
	Iters          int // lock/unlock pairs per thread
	LocalityPct    int // percentage of operations targeting the own node
	Seed           int64
	Model          model.Params
	// TokenAPI routes every acquisition through the acquisition-token
	// layer (locks.TokenHandleFor behind the api.Blocking adapter) instead
	// of the provider's plain handles, proving the same serialization
	// under the redesigned API.
	TokenAPI bool
	// EngineShards, if positive, runs the workload on the node-sharded
	// engine (1 = serial merge scheduler, >1 = conservative windowed
	// parallel executor). The schedule — and therefore every observation —
	// is bit-identical to the serial engine at any setting.
	EngineShards int
}

// DefaultMutexConfig returns a small-but-contended configuration with
// tearing enabled.
func DefaultMutexConfig() MutexConfig {
	m := model.Uniform(7)
	m.TornRCAS = true
	m.TornGapNS = 90
	return MutexConfig{
		Nodes:          3,
		ThreadsPerNode: 3,
		Locks:          2,
		Iters:          120,
		LocalityPct:    60,
		Seed:           1,
		Model:          m,
	}
}

// Result reports what the harness observed.
type Result struct {
	TotalOps      int64
	CounterSum    int64
	OwnerTramples int64
	Entries       [][]int // per lock: sequence of acquiring thread IDs
}

// mutexEntry is one critical-section completion, stamped with its virtual
// time so per-thread logs can be merged back into the global serialization
// order (critical sections on one lock never overlap, so stamps on a lock
// are strictly increasing).
type mutexEntry struct {
	at  int64
	tid int
}

// mutexTally is one thread's private observations. Threads on different
// shards run concurrently under the windowed executor, so shared tallies
// would race; each thread owns a slot and the merge happens after Run.
type mutexTally struct {
	ops      int64
	tramples int64
	entries  [][]mutexEntry // per lock
}

// RunMutex executes the mutual-exclusion workload and returns observations
// without judging them (used by both the positive checks and the negative
// Table 1 demonstrations).
func RunMutex(prov locks.Provider, cfg MutexConfig) Result {
	var opts []sim.Option
	if cfg.EngineShards > 0 {
		opts = append(opts, sim.WithShards(cfg.EngineShards))
	}
	e := sim.New(cfg.Nodes, 1<<20, cfg.Model, cfg.Seed, opts...)
	space := e.Space()

	lockPtrs := make([]ptr.Ptr, cfg.Locks)
	counterPtrs := make([]ptr.Ptr, cfg.Locks)
	ownerPtrs := make([]ptr.Ptr, cfg.Locks)
	for i := range lockPtrs {
		node := i % cfg.Nodes
		lockPtrs[i] = space.AllocLine(node)
		counterPtrs[i] = space.AllocLine(node)
		ownerPtrs[i] = space.AllocLine(node)
	}
	prov.Prepare(space, lockPtrs)

	ft := locks.NewFenceTable()
	tallies := make([]mutexTally, cfg.Nodes*cfg.ThreadsPerNode)
	slot := 0
	for n := 0; n < cfg.Nodes; n++ {
		for k := 0; k < cfg.ThreadsPerNode; k++ {
			node := n
			tl := &tallies[slot]
			slot++
			e.Spawn(node, func(ctx api.Ctx) {
				tl.entries = make([][]mutexEntry, cfg.Locks)
				var h api.Locker
				if cfg.TokenAPI {
					h = api.NewBlocking(locks.TokenHandleFor(prov, ctx, ft))
				} else {
					h = prov.NewHandle(ctx)
				}
				rw := rwFor(ctx)
				for it := 0; it < cfg.Iters; it++ {
					li := pickLock(ctx, cfg, lockPtrs)
					l := lockPtrs[li]
					h.Lock(l)
					// Critical section: ownership handshake plus a torn
					// counter increment. Data accesses use the thread's
					// own access class, like real protected data would.
					tag := uint64(ctx.ThreadID()) + 1
					if rw.read(ctx, ownerPtrs[li]) != 0 {
						tl.tramples++
					}
					rw.write(ctx, ownerPtrs[li], tag)
					c := rw.read(ctx, counterPtrs[li])
					rw.write(ctx, counterPtrs[li], c+1)
					if rw.read(ctx, ownerPtrs[li]) != tag {
						tl.tramples++
					}
					rw.write(ctx, ownerPtrs[li], 0)
					tl.entries[li] = append(tl.entries[li],
						mutexEntry{at: ctx.Now(), tid: ctx.ThreadID()})
					h.Unlock(l)
					tl.ops++
				}
			})
		}
	}
	e.Run(1 << 62)

	res := Result{Entries: make([][]int, cfg.Locks)}
	for i := range tallies {
		res.TotalOps += tallies[i].ops
		res.OwnerTramples += tallies[i].tramples
	}
	// Merge the per-thread entry logs back into the global serialization
	// order per lock.
	for li := 0; li < cfg.Locks; li++ {
		var merged []mutexEntry
		for i := range tallies {
			if tallies[i].entries != nil {
				merged = append(merged, tallies[i].entries[li]...)
			}
		}
		sort.Slice(merged, func(a, b int) bool {
			if merged[a].at != merged[b].at {
				return merged[a].at < merged[b].at
			}
			return merged[a].tid < merged[b].tid
		})
		res.Entries[li] = make([]int, len(merged))
		for i, en := range merged {
			res.Entries[li][i] = en.tid
		}
	}

	// Sum the counters after all threads exit, routing each read through
	// the verb protocol the word's placement demands.
	e.Spawn(0, func(ctx api.Ctx) {
		rw := rwFor(ctx)
		for i := range counterPtrs {
			res.CounterSum += int64(rw.read(ctx, counterPtrs[i]))
		}
	})
	e.Run(1 << 62)
	return res
}

// CheckMutualExclusion fails t unless every critical section was perfectly
// serialized.
func CheckMutualExclusion(t *testing.T, prov locks.Provider, cfg MutexConfig) {
	t.Helper()
	res := RunMutex(prov, cfg)
	want := int64(cfg.Nodes * cfg.ThreadsPerNode * cfg.Iters)
	if res.TotalOps != want {
		t.Fatalf("%s: completed %d ops, want %d", prov.Name(), res.TotalOps, want)
	}
	if res.CounterSum != want {
		t.Errorf("%s: lost updates — counter sum %d, want %d (mutual exclusion violated)",
			prov.Name(), res.CounterSum, want)
	}
	if res.OwnerTramples != 0 {
		t.Errorf("%s: %d ownership violations (overlapping critical sections)",
			prov.Name(), res.OwnerTramples)
	}
}

// OverlapConfig parameterizes CheckOverlappingHolds.
type OverlapConfig struct {
	Nodes          int
	ThreadsPerNode int
	Locks          int // must be >= 2
	Iters          int // two-lock transactions per thread
	Seed           int64
	Model          model.Params
	// EngineShards selects the sharded engine, as in MutexConfig.
	EngineShards int
}

// DefaultOverlapConfig returns a small-but-contended configuration with
// tearing enabled.
func DefaultOverlapConfig() OverlapConfig {
	m := model.Uniform(7)
	m.TornRCAS = true
	m.TornGapNS = 90
	return OverlapConfig{
		Nodes:          3,
		ThreadsPerNode: 2,
		Locks:          3,
		Iters:          60,
		Seed:           1,
		Model:          m,
	}
}

// CheckOverlappingHolds proves descriptor-per-acquisition correctness
// under the token API: every thread repeatedly acquires two distinct locks
// (in ascending index order, the deadlock-avoiding discipline), mutates
// both locks' protected counters inside the doubly-held section, and
// releases in both orders (ascending on even iterations, descending on
// odd). A lock algorithm that still ties one descriptor to the thread —
// rather than to the acquisition — corrupts its queue on the second
// acquire and loses increments or tramples ownership; a correct run also
// sees every release accepted by its fencing token.
func CheckOverlappingHolds(t *testing.T, prov locks.Provider, cfg OverlapConfig) {
	t.Helper()
	if cfg.Locks < 2 {
		t.Fatalf("CheckOverlappingHolds needs >= 2 locks, got %d", cfg.Locks)
	}
	var opts []sim.Option
	if cfg.EngineShards > 0 {
		opts = append(opts, sim.WithShards(cfg.EngineShards))
	}
	e := sim.New(cfg.Nodes, 1<<20, cfg.Model, cfg.Seed, opts...)
	space := e.Space()

	lockPtrs := make([]ptr.Ptr, cfg.Locks)
	counterPtrs := make([]ptr.Ptr, cfg.Locks)
	ownerPtrs := make([]ptr.Ptr, cfg.Locks)
	for i := range lockPtrs {
		node := i % cfg.Nodes
		lockPtrs[i] = space.AllocLine(node)
		counterPtrs[i] = space.AllocLine(node)
		ownerPtrs[i] = space.AllocLine(node)
	}
	prov.Prepare(space, lockPtrs)

	ft := locks.NewFenceTable()
	// Per-thread tallies: threads on different shards run concurrently
	// under the windowed executor, so shared counters would race.
	type overlapTally struct{ ops, tramples, fenced int64 }
	tallies := make([]overlapTally, cfg.Nodes*cfg.ThreadsPerNode)
	slot := 0
	for n := 0; n < cfg.Nodes; n++ {
		for k := 0; k < cfg.ThreadsPerNode; k++ {
			node := n
			tl := &tallies[slot]
			slot++
			e.Spawn(node, func(ctx api.Ctx) {
				h := locks.TokenHandleFor(prov, ctx, ft)
				rw := rwFor(ctx)
				for it := 0; it < cfg.Iters; it++ {
					a := ctx.Rand().Intn(cfg.Locks)
					b := ctx.Rand().Intn(cfg.Locks - 1)
					if b >= a {
						b++
					}
					if b < a {
						a, b = b, a
					}
					ga, out := h.Acquire(lockPtrs[a], api.Exclusive, api.AcquireOpts{}) //lint:allow guardflow a blocking acquire cannot time out; the bail-out only fires on a broken lock, where the trample counter already fails the test
					if out != api.Acquired {
						tl.tramples++ // blocking acquire must not time out
						continue
					}
					gb, out := h.Acquire(lockPtrs[b], api.Exclusive, api.AcquireOpts{}) //lint:allow guardflow a blocking acquire cannot time out; the bail-out only fires on a broken lock, where the trample counter already fails the test
					if out != api.Acquired {
						tl.tramples++
						continue
					}
					// Doubly-held section: the handshake on both locks'
					// data trips if any other critical section overlaps.
					tag := uint64(ctx.ThreadID()) + 1
					for _, li := range []int{a, b} {
						if rw.read(ctx, ownerPtrs[li]) != 0 {
							tl.tramples++
						}
						rw.write(ctx, ownerPtrs[li], tag)
					}
					for _, li := range []int{a, b} {
						c := rw.read(ctx, counterPtrs[li])
						rw.write(ctx, counterPtrs[li], c+1)
						if rw.read(ctx, ownerPtrs[li]) != tag {
							tl.tramples++
						}
						rw.write(ctx, ownerPtrs[li], 0)
					}
					first, second := ga, gb
					if it%2 == 1 {
						first, second = gb, ga // release in both orders
					}
					if h.Release(first) != api.Released {
						tl.fenced++
					}
					if h.Release(second) != api.Released {
						tl.fenced++
					}
					tl.ops++
				}
			})
		}
	}
	e.Run(1 << 62)

	var totalOps, tramples, fenced int64
	for i := range tallies {
		totalOps += tallies[i].ops
		tramples += tallies[i].tramples
		fenced += tallies[i].fenced
	}
	var counterSum int64
	e.Spawn(0, func(ctx api.Ctx) {
		rw := rwFor(ctx)
		for i := range counterPtrs {
			counterSum += int64(rw.read(ctx, counterPtrs[i]))
		}
	})
	e.Run(1 << 62)

	want := int64(cfg.Nodes * cfg.ThreadsPerNode * cfg.Iters)
	if totalOps != want {
		t.Fatalf("%s: completed %d two-lock ops, want %d", prov.Name(), totalOps, want)
	}
	if counterSum != 2*want {
		t.Errorf("%s: lost updates under overlapping holds — counter sum %d, want %d",
			prov.Name(), counterSum, 2*want)
	}
	if tramples != 0 {
		t.Errorf("%s: %d ownership violations under overlapping holds", prov.Name(), tramples)
	}
	if fenced != 0 {
		t.Errorf("%s: %d valid releases rejected by fencing tokens", prov.Name(), fenced)
	}
}

// CheckZombieDrain proves the descriptor pools recycle abandoned
// descriptors without relying on the owner acquiring again. The schedule:
// a holder wedges lock B; a patient waiter queues behind it; a third
// thread, already holding lock A, attempts B with a short deadline, times
// out and parks its abandoned descriptor as a zombie — then never acquires
// anything again. Once the holder releases and the patient waiter's grant
// patches the queue (landing the skip mark), the third thread's only
// remaining action is releasing A. The release-side sweep must recycle the
// zombie; before the fix, only the next acquire swept, so a thread that
// stopped acquiring leaked every skipped descriptor until the run ended.
func CheckZombieDrain(t *testing.T, prov locks.Provider) {
	t.Helper()
	tp, ok := prov.(locks.TimedProvider)
	if !ok {
		t.Fatalf("%s: CheckZombieDrain needs a native timed path", prov.Name())
	}
	e := sim.New(2, 1<<20, model.Uniform(7), 1)
	space := e.Space()
	// A is local to the threads, B is remote: for cohort-partitioned pools
	// (alock) the zombie parks in the REMOTE cohort while the final
	// release is on the LOCAL one — the drain must sweep across cohorts.
	lockA := space.AllocLine(0)
	lockB := space.AllocLine(1)
	prov.Prepare(space, []ptr.Ptr{lockA, lockB})

	const (
		us            = 1_000
		holdNS        = 60 * us  // how long the holder wedges B
		shortDeadline = 20 * us  // the zombie-producing attempt's budget
		settleNS      = 200 * us // past the waiter's grant + patch
	)
	zombiesParked, zombiesAfterRelease := -1, -1
	timedOutAttempts := 0

	// The holder: wedges B long enough for the short-deadline attempt to
	// abandon, then releases (which lets the patient waiter in).
	e.Spawn(0, func(ctx api.Ctx) {
		h := tp.NewTimedHandle(ctx)
		st, ok := h.AcquireTimed(lockB, api.Exclusive, 0)
		if !ok {
			t.Errorf("%s: holder failed a blocking acquire", prov.Name())
			return
		}
		ctx.Work(time.Duration(holdNS))
		h.ReleaseAcq(lockB, api.Exclusive, st)
	})
	// The patient waiter: queues behind the holder with a generous
	// deadline; its grant (and release) patches the queue around the
	// abandoned descriptor, landing the skip mark.
	e.Spawn(0, func(ctx api.Ctx) {
		ctx.Work(2 * time.Microsecond)
		h := tp.NewTimedHandle(ctx)
		st, ok := h.AcquireTimed(lockB, api.Exclusive, ctx.Now()+4*holdNS)
		if !ok {
			t.Errorf("%s: patient waiter timed out", prov.Name())
			return
		}
		h.ReleaseAcq(lockB, api.Exclusive, st)
	})
	// The zombie producer: holds A, burns a short-deadline attempt on B,
	// then stops acquiring. Its release of A is the only remaining chance
	// to recycle the abandoned descriptor.
	e.Spawn(0, func(ctx api.Ctx) {
		ctx.Work(5 * time.Microsecond)
		h := tp.NewTimedHandle(ctx)
		zc, ok := h.(locks.ZombieCounter)
		if !ok {
			// Errorf, not Fatalf: Fatalf's Goexit on a sim-thread goroutine
			// would strand the scheduler's yield handshake and hang the
			// run. The missing-attempt check after e.Run fails the test.
			t.Errorf("%s: timed handle does not count zombies", prov.Name())
			return
		}
		stA, okA := h.AcquireTimed(lockA, api.Exclusive, 0)
		if !okA {
			t.Errorf("%s: uncontended acquire of A failed", prov.Name())
			return
		}
		if _, ok := h.AcquireTimed(lockB, api.Exclusive, ctx.Now()+shortDeadline); ok {
			t.Errorf("%s: short-deadline acquire of wedged lock succeeded", prov.Name())
		} else {
			timedOutAttempts++
		}
		zombiesParked = zc.Zombies()
		ctx.Work(time.Duration(settleNS))
		h.ReleaseAcq(lockA, api.Exclusive, stA)
		zombiesAfterRelease = zc.Zombies()
	})
	e.Run(1 << 62)

	if timedOutAttempts == 0 {
		t.Fatalf("%s: schedule produced no timed-out attempt", prov.Name())
	}
	if zombiesParked < 1 {
		t.Fatalf("%s: abandoned descriptor was not parked as a zombie (got %d)",
			prov.Name(), zombiesParked)
	}
	if zombiesAfterRelease != 0 {
		t.Errorf("%s: %d zombie descriptors survived the drain — the release-side sweep leaked them",
			prov.Name(), zombiesAfterRelease)
	}
}

// TrimToContended cuts the entry sequence at the last point where both
// classes were still producing entries, removing the tail where one side
// had already finished its workload and the other ran uncontended (run
// length bounds only apply while the other cohort is actually waiting).
func TrimToContended(entries []int, class func(tid int) int) []int {
	last := map[int]int{}
	for i, tid := range entries {
		last[class(tid)] = i
	}
	cut := len(entries)
	for _, idx := range last {
		if idx+1 < cut {
			cut = idx + 1 //lint:allow maporder pure minimum over map values is order-independent
		}
	}
	return entries[:cut]
}

// MaxRun returns the longest run of consecutive entries whose classifier
// returns the same value — used for fairness assertions.
func MaxRun(entries []int, class func(tid int) int) int {
	maxRun, run, prev := 0, 0, -1
	for _, tid := range entries {
		c := class(tid)
		if c == prev {
			run++
		} else {
			run, prev = 1, c
		}
		if run > maxRun {
			maxRun = run
		}
	}
	return maxRun
}

// rw routes protected-data accesses through the thread's own access class.
type rw struct{ node int }

func rwFor(ctx api.Ctx) rw { return rw{node: ctx.NodeID()} }

func (r rw) read(ctx api.Ctx, p ptr.Ptr) uint64 {
	if p.NodeID() == r.node {
		return ctx.Read(p)
	}
	return ctx.RRead(p)
}

func (r rw) write(ctx api.Ctx, p ptr.Ptr, v uint64) {
	if p.NodeID() == r.node {
		ctx.Write(p, v)
		return
	}
	ctx.RWrite(p, v)
}

func pickLock(ctx api.Ctx, cfg MutexConfig, lockPtrs []ptr.Ptr) int {
	if cfg.Locks == 1 {
		return 0
	}
	local := ctx.Rand().Intn(100) < cfg.LocalityPct
	for tries := 0; ; tries++ {
		i := ctx.Rand().Intn(cfg.Locks)
		if (lockPtrs[i].NodeID() == ctx.NodeID()) == local {
			return i
		}
		if tries > 64 {
			return i // this node may own no (or all) locks
		}
	}
}
