// probes.go implements the adversarial micro-experiments behind Table 1.
// Each probe constructs the interleaving that distinguishes "atomic" from
// "not atomic" for one (local class, remote op) pair and reports what the
// fabric actually did. On an engine modeling remote-RMW tearing, the
// probes must reproduce the paper's matrix exactly: every pair is atomic
// except local Write vs remote CAS and local RMW vs remote CAS.
package harness

import (
	"time"

	"alock/internal/api"
	"alock/internal/sim"
)

const (
	probeValA = 0xAAAA_AAAA_AAAA_AAAA
	probeValB = 0x5555_5555_5555_5555
)

// probeReadRemoteWrite: a local reader polls while a remote writer
// alternates two full-word patterns. Atomic iff the reader only ever
// observes complete patterns (or the initial zero).
func probeReadRemoteWrite() bool {
	e := sim.New(2, 1<<12, tornModel(), 11)
	w := e.Space().AllocLine(0)
	ok := true
	e.Spawn(1, func(ctx api.Ctx) {
		for i := 0; i < 200; i++ {
			if i%2 == 0 {
				ctx.RWrite(w, probeValA)
			} else {
				ctx.RWrite(w, probeValB)
			}
		}
	})
	e.Spawn(0, func(ctx api.Ctx) {
		for i := 0; i < 4000; i++ {
			v := ctx.Read(w)
			if v != 0 && v != probeValA && v != probeValB {
				ok = false
			}
		}
	})
	e.Run(1 << 62)
	return ok
}

// probeReadRemoteCAS: a local reader polls while a remote thread toggles
// the word with rCAS. Atomic iff only the two legal states are observed —
// tearing does not invent values, it reorders them, so reads stay safe.
func probeReadRemoteCAS() bool {
	e := sim.New(2, 1<<12, tornModel(), 12)
	w := e.Space().AllocLine(0)
	ok := true
	e.Spawn(1, func(ctx api.Ctx) {
		for i := 0; i < 200; i++ {
			ctx.RCAS(w, 0, 1)
			ctx.RCAS(w, 1, 0)
		}
	})
	e.Spawn(0, func(ctx api.Ctx) {
		for i := 0; i < 4000; i++ {
			if v := ctx.Read(w); v > 1 {
				ok = false
			}
		}
	})
	e.Run(1 << 62)
	return ok
}

// probeWriteRemoteWrite: local and remote writers race tagged full-word
// values. Atomic iff the word always holds one of the written values
// (8-byte writes never mix).
func probeWriteRemoteWrite() bool {
	e := sim.New(2, 1<<12, tornModel(), 13)
	w := e.Space().AllocLine(0)
	legal := func(v uint64) bool {
		return v == 0 || (v>>32 == 0x10CA && v&0xffff < 512) || (v>>32 == 0xBEEF && v&0xffff < 512)
	}
	ok := true
	e.Spawn(1, func(ctx api.Ctx) {
		for i := uint64(0); i < 300; i++ {
			ctx.RWrite(w, 0xBEEF<<32|i)
		}
	})
	e.Spawn(0, func(ctx api.Ctx) {
		for i := uint64(0); i < 300; i++ {
			ctx.Write(w, 0x10CA<<32|i)
			if !legal(ctx.Read(w)) {
				ok = false
			}
		}
	})
	e.Run(1 << 62)
	return ok
}

// probeWriteRemoteCAS: the paper's central hazard. A remote CAS reads the
// word, a local write lands inside the torn window, then the CAS's write
// half blindly overwrites it. Returns false (non-atomic) iff the local
// write was lost.
func probeWriteRemoteCAS() bool {
	lost := false
	// Sweep the local write's phase across the whole verb round trip; some
	// offset lands inside the responder-side torn window.
	for offset := time.Duration(0); offset <= 8000 && !lost; offset += 40 {
		e := sim.New(2, 1<<12, tornModel(), 14)
		w := e.Space().AllocLine(0)
		e.Spawn(1, func(ctx api.Ctx) {
			ctx.RCAS(w, 0, 999) // torn: read ... gap ... write
		})
		off := offset
		e.Spawn(0, func(ctx api.Ctx) {
			ctx.Work(off * time.Nanosecond)
			ctx.Write(w, 7)
			ctx.Work(20 * time.Microsecond)
			if ctx.Read(w) == 999 {
				lost = true // our write vanished under the CAS's write half
			}
		})
		e.Run(1 << 62)
	}
	return !lost
}

// probeRMWRemoteWrite: a local CAS-increment loop races one remote write.
// Atomic iff the final value is consistent with some serial order of the
// increments and the write.
func probeRMWRemoteWrite() bool {
	e := sim.New(2, 1<<12, tornModel(), 15)
	w := e.Space().AllocLine(0)
	const incs = 400
	e.Spawn(1, func(ctx api.Ctx) {
		ctx.Work(3 * time.Microsecond)
		ctx.RWrite(w, 1_000_000)
	})
	e.Spawn(0, func(ctx api.Ctx) {
		for i := 0; i < incs; i++ {
			for {
				old := ctx.Read(w)
				if ctx.CAS(w, old, old+1) == old {
					break
				}
			}
		}
	})
	var final uint64
	e.Run(1 << 62)
	e.Spawn(0, func(ctx api.Ctx) { final = ctx.Read(w) })
	e.Run(1 << 62)
	// Serial orders allow: all increments before the write (final
	// 1_000_000), or k increments after it (1_000_000+k, k<=incs), or the
	// write never observed... the write always executes, so:
	return final >= 1_000_000 && final <= 1_000_000+incs
}

// probeRMWRemoteCAS: local CAS-increments race remote rCAS-increments on
// one word. Atomic iff no increment is ever lost. Under tearing the
// remote CAS's read/write halves straddle local increments and updates
// vanish — the motivating failure for ALock.
func probeRMWRemoteCAS() bool {
	lost := false
	// Sweep a single local CAS across the remote CAS's round trip. If the
	// local CAS succeeds inside the torn window — after the remote read
	// half saw 0 but before its blind write half — the local RMW vanishes
	// under the remote write: both "succeeded", one update is lost.
	for offset := time.Duration(0); offset <= 8000 && !lost; offset += 40 {
		e := sim.New(2, 1<<12, tornModel(), 16)
		w := e.Space().AllocLine(0)
		e.Spawn(1, func(ctx api.Ctx) {
			ctx.RCAS(w, 0, 999)
		})
		off := offset
		e.Spawn(0, func(ctx api.Ctx) {
			ctx.Work(off * time.Nanosecond)
			casWon := ctx.CAS(w, 0, 7) == 0
			ctx.Work(20 * time.Microsecond)
			if casWon && ctx.Read(w) == 999 {
				lost = true // our successful CAS was blindly overwritten
			}
		})
		e.Run(1 << 62)
	}
	return !lost
}
