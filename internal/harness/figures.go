// figures.go contains one driver per table/figure of the paper's
// evaluation. Each driver returns plain data structures; internal/report
// renders them as text tables / CSV.
//
// Note on cluster sizes: the paper's own pointer format (Section 6,
// Figure 3) reserves 4 bits for the node ID, which addresses at most 16
// nodes, yet the evaluation uses a 20-machine cluster. This reproduction
// keeps the 4-bit format exactly as specified, so the paper's "20 node"
// configurations run at 16 nodes here; the scaling shape is unaffected.
// The substitution is recorded in DESIGN.md and EXPERIMENTS.md.
package harness

import (
	"fmt"
	"time"

	"alock/internal/model"
	"alock/internal/stats"
)

// MaxClusterNodes is the largest cluster the 4-bit node ID addresses; it
// stands in for the paper's 20-node configurations.
const MaxClusterNodes = 16

// Scale selects between the full reproduction and an abbreviated sweep
// with the same structure (fewer thread counts, fewer target ops).
//
// The override fields decouple individual scenarios from the global
// presets: a heavyweight scenario can pin its own thread list or stretch
// its measurement horizon without forking the preset logic. TestTiny wins
// over every override — smoke tests must stay smoke-test sized no matter
// what a scenario asks for.
type Scale struct {
	Quick bool
	// TestTiny shrinks every sweep to smoke-test size while keeping the
	// panel/series structure intact; used by the unit tests of the
	// drivers themselves, never for reported results. It overrides the
	// Override fields below.
	TestTiny bool
	// Seed offsets every run's seed (0 = default).
	Seed int64

	// ThreadsOverride, when non-empty, replaces the preset per-node thread
	// counts (per-scenario scale override).
	ThreadsOverride []int
	// NodesOverride, when non-empty, replaces the preset cluster sizes;
	// its largest entry also caps BigClusterNodes.
	NodesOverride []int
	// TargetOpsOverride, when > 0, replaces the preset per-run op target.
	TargetOpsOverride int64
	// WarmupOverride/MeasureOverride, when > 0, replace the preset
	// warmup/measurement horizons (ns).
	WarmupOverride  int64
	MeasureOverride int64
}

func (s Scale) threads() []int {
	if s.TestTiny {
		return []int{2}
	}
	if len(s.ThreadsOverride) > 0 {
		return s.ThreadsOverride
	}
	if s.Quick {
		return []int{2, 8}
	}
	return []int{1, 2, 4, 8, 12}
}

func (s Scale) nodes() []int {
	if s.TestTiny {
		return []int{2, 3}
	}
	if len(s.NodesOverride) > 0 {
		return s.NodesOverride
	}
	if s.Quick {
		return []int{5, MaxClusterNodes}
	}
	return []int{5, 10, MaxClusterNodes}
}

func (s Scale) targetOps() int64 {
	if s.TestTiny {
		return 1_500
	}
	if s.TargetOpsOverride > 0 {
		return s.TargetOpsOverride
	}
	if s.Quick {
		return 20_000
	}
	return 90_000
}

func (s Scale) windows() (warmup, measure int64) {
	if s.TestTiny {
		return 50_000, 250_000
	}
	warmup, measure = 400_000, 4_000_000
	if s.Quick {
		warmup, measure = 200_000, 1_500_000
	}
	if s.WarmupOverride > 0 {
		warmup = s.WarmupOverride
	}
	if s.MeasureOverride > 0 {
		measure = s.MeasureOverride
	}
	return warmup, measure
}

// bigCluster is the stand-in for the paper's 20-node cluster. A scenario
// NodesOverride caps it (largest listed size), so overriding scenarios
// shrink sweepGrid-based expansions too; fig6Nodes stays paper-pinned.
func (s Scale) bigCluster() int {
	if s.TestTiny {
		return 3
	}
	if len(s.NodesOverride) > 0 {
		max := s.NodesOverride[0]
		for _, n := range s.NodesOverride[1:] {
			if n > max {
				max = n
			}
		}
		return max
	}
	return MaxClusterNodes
}

// fig6Nodes is Figure 6's 10-node cluster.
func (s Scale) fig6Nodes() int {
	if s.TestTiny {
		return 3
	}
	return 10
}

func (s Scale) seed() int64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return 1
}

// Exported accessors so scenario expansions outside this package can build
// config grids at a given scale with the same knobs the figure drivers use.

// ThreadCounts returns the per-node thread counts the scale sweeps.
func (s Scale) ThreadCounts() []int { return s.threads() }

// NodeCounts returns the cluster sizes the scale sweeps.
func (s Scale) NodeCounts() []int { return s.nodes() }

// TargetOpsCount returns the per-run recorded-operation target.
func (s Scale) TargetOpsCount() int64 { return s.targetOps() }

// Windows returns the warmup and measurement windows in nanoseconds.
func (s Scale) Windows() (warmup, measure int64) { return s.windows() }

// BigClusterNodes returns the stand-in for the paper's 20-node cluster.
func (s Scale) BigClusterNodes() int { return s.bigCluster() }

// DefaultSeed returns the effective seed (Seed, or 1 when unset).
func (s Scale) DefaultSeed() int64 { return s.seed() }

// Algorithms compared in Figures 5 and 6 (Section 6: ALock vs the RDMA
// spinlock and the RDMA-ported MCS lock).
var EvalAlgorithms = []string{"alock", "spinlock", "mcs"}

// RunMany executes a batch of configurations and returns results in input
// order: results[i] is cfgs[i]'s outcome. RunSerial is the in-process
// implementation; internal/sweep.Runner provides the parallel one. Every
// figure driver enumerates its full config grid up front and hands it to a
// RunMany, so the same driver code runs serial or fanned out over all cores
// with bit-identical results (each run is an independent seeded simulation).
type RunMany func([]Config) []Result

// RunSerial is the canonical serial RunMany: one config after another on
// the calling goroutine.
func RunSerial(cfgs []Config) []Result {
	out := make([]Result, len(cfgs))
	for i, c := range cfgs {
		out[i] = MustRun(c)
	}
	return out
}

// --- Figure 1 ---

// Fig1Point is one x/y point of Figure 1.
type Fig1Point struct {
	Threads    int
	Throughput float64 // ops/sec
	MaxBacklog int64   // worst NIC queueing delay observed (ns)
}

// Figure1Configs enumerates the Section 2 loopback experiment: an RDMA
// spinlock over 1000 locks on a single machine, all operations through the
// local RNIC, across thread counts.
func Figure1Configs(s Scale) []Config {
	warm, meas := s.windows()
	counts := fig1Threads(s)
	cfgs := make([]Config, 0, len(counts))
	for _, th := range counts {
		cfgs = append(cfgs, Config{
			Algorithm:      "spinlock",
			Nodes:          1,
			ThreadsPerNode: th,
			Locks:          1000,
			LocalityPct:    100, // irrelevant to the spinlock: all loopback
			WarmupNS:       warm,
			MeasureNS:      meas,
			TargetOps:      s.targetOps(),
			Seed:           s.seed(),
		})
	}
	return cfgs
}

func fig1Threads(s Scale) []int {
	if s.Quick {
		return []int{1, 2, 4, 8, 16}
	}
	return []int{1, 2, 3, 4, 6, 8, 12, 16}
}

// Figure1 reproduces the loopback experiment. Throughput must peak at a few
// threads and then decline as loopback traffic congests the card.
func Figure1(s Scale, run RunMany) []Fig1Point {
	counts := fig1Threads(s)
	rs := run(Figure1Configs(s))
	pts := make([]Fig1Point, len(rs))
	for i, r := range rs {
		pts[i] = Fig1Point{
			Threads:    counts[i],
			Throughput: r.Throughput,
			MaxBacklog: r.NIC.MaxBacklogNS,
		}
	}
	return pts
}

// --- Figure 4 ---

// Fig4Row is the relative speedup of one (remote budget, lock count)
// configuration against the baseline (remote budget 5), averaged over the
// localities the paper lists (95%, 90%, 85%) on the largest cluster.
type Fig4Row struct {
	RemoteBudget int64
	LocalBudget  int64
	Locks        int
	PerLocality  map[int]float64 // locality% -> speedup vs baseline
	AvgSpeedup   float64
}

// Figure4 reproduces the budget study (Section 6.1): local budget fixed at
// 5, remote budget swept over {5, 10, 20}; the paper reports up to +23%
// from raising the remote budget at 100 locks. The budget binds when
// remote queues sustain multi-pass runs, so we measure the paper's
// medium-contention table size (100 locks) and additionally the
// high-contention table (20 locks), where the effect is stronger in this
// reproduction's cost model.
func Figure4(s Scale, run RunMany) []Fig4Row {
	warm, meas := s.windows()
	localities := []int{85, 90, 95}
	budgets := []int64{5, 10, 20}
	lockSizes := []int{100, 20}
	threads := 12
	if s.Quick {
		threads = 6
	}
	seeds := []int64{1, 2, 3}
	if s.Quick {
		seeds = []int64{1, 2}
	}
	if s.TestTiny {
		threads = 2
		seeds = []int64{1}
	}

	// Flat enumeration of the (locks, budget, locality, seed) grid, with a
	// key per config so results reassemble regardless of execution order.
	type key struct {
		locks int
		b     int64
		loc   int
	}
	var cfgs []Config
	var keys []key
	for _, locksN := range lockSizes {
		for _, b := range budgets {
			for _, loc := range localities {
				for _, seed := range seeds {
					cfgs = append(cfgs, Config{
						Algorithm:      "alock",
						Nodes:          s.bigCluster(),
						ThreadsPerNode: threads,
						Locks:          locksN,
						LocalityPct:    loc,
						LocalBudget:    5,
						RemoteBudget:   b,
						WarmupNS:       warm,
						MeasureNS:      meas,
						TargetOps:      s.targetOps(),
						Seed:           s.seed() * seed,
					})
					keys = append(keys, key{locksN, b, loc})
				}
			}
		}
	}
	rs := run(cfgs)

	// throughput[(locks, budget, locality)], seed-averaged to denoise the
	// few-percent effect being measured.
	tput := map[key]float64{}
	for i, r := range rs {
		tput[keys[i]] += r.Throughput / float64(len(seeds))
	}

	var rows []Fig4Row
	for _, locksN := range lockSizes {
		for _, b := range budgets {
			row := Fig4Row{RemoteBudget: b, LocalBudget: 5, Locks: locksN,
				PerLocality: map[int]float64{}}
			var sum float64
			for _, loc := range localities {
				sp := tput[key{locksN, b, loc}] / tput[key{locksN, 5, loc}]
				row.PerLocality[loc] = sp
				sum += sp
			}
			row.AvgSpeedup = sum / float64(len(localities))
			rows = append(rows, row)
		}
	}
	return rows
}

// --- Figure 5 ---

// Fig5Series is one algorithm's throughput curve within a panel.
type Fig5Series struct {
	Algorithm  string
	Threads    []int
	Throughput []float64
}

// Fig5Panel is one panel of the 12-panel Figure 5 grid.
type Fig5Panel struct {
	ID          string // a..l
	Nodes       int
	Locks       int
	LocalityPct int
	Series      []Fig5Series
}

// Figure5 reproduces the throughput grid: for each cluster size, three
// contention levels (20/100/1000 locks, panels a/e/i, b/f/j, c/g/k at 90%
// locality) plus the isolated 100%-locality panels (d/h/l at 20 locks),
// each comparing ALock against the spinlock and MCS competitors across
// thread counts.
func Figure5(s Scale, run RunMany) []Fig5Panel {
	ids := [][]string{
		{"a", "b", "c", "d"},
		{"e", "f", "g", "h"},
		{"i", "j", "k", "l"},
	}
	type shape struct {
		locks    int
		locality int
	}
	shapes := []shape{
		{20, 90},   // high contention
		{100, 90},  // medium contention
		{1000, 90}, // low contention
		{20, 100},  // 100% locality, isolated panels
	}

	// Panel skeletons plus the flat config grid: each panel contributes
	// one contiguous Fig5PanelConfigs block, reassembled by block below.
	var panels []Fig5Panel
	var cfgs []Config
	for ni, nodes := range s.nodes() {
		idRow := ids[ni%len(ids)]
		for si, sh := range shapes {
			panels = append(panels, Fig5Panel{
				ID:          idRow[si],
				Nodes:       nodes,
				Locks:       sh.locks,
				LocalityPct: sh.locality,
			})
			cfgs = append(cfgs, Fig5PanelConfigs(s, nodes, sh.locks, sh.locality)...)
		}
	}

	rs := run(cfgs)
	threads := s.threads()
	perPanel := len(EvalAlgorithms) * len(threads)
	for pi := range panels {
		block := rs[pi*perPanel : (pi+1)*perPanel]
		for ai, algo := range EvalAlgorithms {
			ser := Fig5Series{Algorithm: algo, Threads: threads}
			for ti := range threads {
				ser.Throughput = append(ser.Throughput, block[ai*len(threads)+ti].Throughput)
			}
			panels[pi].Series = append(panels[pi].Series, ser)
		}
	}
	return panels
}

// Fig5PanelConfigs enumerates one Figure 5 panel — a fixed cluster size,
// contention and locality — across the evaluation algorithms and the
// scale's thread counts. Both Figure5 and the paper/fig5-* scenarios build
// on it, so the named scenarios cannot drift from the figure's grid.
func Fig5PanelConfigs(s Scale, nodes, locks, localityPct int) []Config {
	warm, meas := s.windows()
	var cfgs []Config
	for _, algo := range EvalAlgorithms {
		for _, th := range s.threads() {
			cfgs = append(cfgs, Config{
				Algorithm:      algo,
				Nodes:          nodes,
				ThreadsPerNode: th,
				Locks:          locks,
				LocalityPct:    localityPct,
				WarmupNS:       warm,
				MeasureNS:      meas,
				TargetOps:      s.targetOps(),
				Seed:           s.seed(),
			})
		}
	}
	return cfgs
}

// Fig5LocalitySweep supplements the low-contention panels with ALock's
// locality sensitivity (the paper: +40% from 85%→90% and a further +75%
// at 95% on five nodes with 1000 locks).
type Fig5LocalityPoint struct {
	LocalityPct int
	Throughput  float64
}

// Figure5LocalitySweep measures ALock at 5 nodes, 1000 locks, 8 threads
// per node across localities.
func Figure5LocalitySweep(s Scale, run RunMany) []Fig5LocalityPoint {
	warm, meas := s.windows()
	nodes, threads := 5, 8
	if s.TestTiny {
		nodes, threads = 3, 2
	}
	localities := []int{85, 90, 95, 100}
	cfgs := make([]Config, 0, len(localities))
	for _, loc := range localities {
		cfgs = append(cfgs, Config{
			Algorithm:      "alock",
			Nodes:          nodes,
			ThreadsPerNode: threads,
			Locks:          1000,
			LocalityPct:    loc,
			WarmupNS:       warm,
			MeasureNS:      meas,
			TargetOps:      s.targetOps(),
			Seed:           s.seed(),
		})
	}
	rs := run(cfgs)
	pts := make([]Fig5LocalityPoint, len(rs))
	for i, r := range rs {
		pts[i] = Fig5LocalityPoint{LocalityPct: localities[i], Throughput: r.Throughput}
	}
	return pts
}

// --- Figure 6 ---

// Fig6Series is one algorithm's latency distribution within a panel.
type Fig6Series struct {
	Algorithm string
	Summary   stats.Summary
	CDF       []stats.Point
}

// Fig6Panel is one panel of the 12-panel Figure 6 grid: a 10-node cluster
// with 8 threads per node; rows are locality (100/95/90/85%), columns are
// contention (20/100/1000 locks).
type Fig6Panel struct {
	ID          string
	Locks       int
	LocalityPct int
	Series      []Fig6Series
}

// Figure6Configs enumerates the latency-CDF grid — rows are locality
// (100/95/90/85%), columns contention (20/100/1000 locks), one config per
// evaluation algorithm — in panel order. Shared by Figure6 and the
// paper/fig6-latency scenario.
func Figure6Configs(s Scale) []Config {
	warm, meas := s.windows()
	threads := 8
	if s.TestTiny {
		threads = 2
	}
	var cfgs []Config
	for _, loc := range []int{100, 95, 90, 85} {
		for _, locksN := range []int{20, 100, 1000} {
			for _, algo := range EvalAlgorithms {
				cfgs = append(cfgs, Config{
					Algorithm:      algo,
					Nodes:          s.fig6Nodes(),
					ThreadsPerNode: threads,
					Locks:          locksN,
					LocalityPct:    loc,
					WarmupNS:       warm,
					MeasureNS:      meas,
					TargetOps:      s.targetOps(),
					Seed:           s.seed(),
				})
			}
		}
	}
	return cfgs
}

// Figure6 reproduces the latency CDF grid.
func Figure6(s Scale, run RunMany) []Fig6Panel {
	ids := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	var panels []Fig6Panel
	for _, loc := range []int{100, 95, 90, 85} {
		for _, locksN := range []int{20, 100, 1000} {
			panels = append(panels, Fig6Panel{
				ID: ids[len(panels)], Locks: locksN, LocalityPct: loc,
			})
		}
	}
	rs := run(Figure6Configs(s))
	for i, r := range rs {
		p := &panels[i/len(EvalAlgorithms)]
		p.Series = append(p.Series, Fig6Series{
			Algorithm: EvalAlgorithms[i%len(EvalAlgorithms)],
			Summary:   r.Latency,
			CDF:       r.CDF,
		})
	}
	return panels
}

// --- Table 1 ---

// Table1Cell is one cell of the atomicity matrix: whether the given local
// access class observed the given remote operation atomically in an
// adversarial probe.
type Table1Cell struct {
	LocalClass string // "Read", "Write", "RMW"
	RemoteOp   string // "Read", "Write", "CAS"
	Atomic     bool
}

// Table1 measures the paper's atomicity matrix empirically on the
// simulator with tearing enabled. The probes are adversarial: each runs a
// workload that loses updates or observes torn state if and only if the
// combination is non-atomic. Expected result (Table 1): everything atomic
// except local Write vs remote CAS and local RMW vs remote CAS.
func Table1() []Table1Cell {
	return []Table1Cell{
		{"Read", "Read", true}, // reads never mutate: vacuously atomic
		{"Read", "Write", probeReadRemoteWrite()},
		{"Read", "CAS", probeReadRemoteCAS()},
		{"Write", "Read", true}, // remote read of an 8B local write is atomic
		{"Write", "Write", probeWriteRemoteWrite()},
		{"Write", "CAS", probeWriteRemoteCAS()},
		{"RMW", "Read", true},
		{"RMW", "Write", probeRMWRemoteWrite()},
		{"RMW", "CAS", probeRMWRemoteCAS()},
	}
}

func tornModel() model.Params {
	p := model.CX3()
	p.TornRCAS = true
	p.TornGapNS = 250
	return p
}

// --- Figure RW (reader/writer and failure tails; beyond the paper) ---

// RWSweepGroup names one scenario family's enumerated configuration grid.
// The figure driver cannot expand scenarios itself (internal/scenario
// imports this package), so callers — the CLIs — expand the registry's
// rw/*, lease/* and fail/* scenarios into groups and hand them over.
type RWSweepGroup struct {
	Name    string
	Configs []Config
}

// FigRWGroup is one scenario family's results, in config order.
type FigRWGroup struct {
	Name    string
	Results []Result
}

// FigureRW runs the reader/writer and failure figure: every group's grid is
// enumerated up front and executed through one RunMany (so the whole figure
// fans out across cores), then results are re-sliced per group. The
// renderers in internal/report emit per-algorithm read and write tail
// latencies (p50/p99) and throughput for each group.
func FigureRW(groups []RWSweepGroup, run RunMany) []FigRWGroup {
	var all []Config
	for _, g := range groups {
		all = append(all, g.Configs...)
	}
	rs := run(all)
	out := make([]FigRWGroup, len(groups))
	i := 0
	for gi, g := range groups {
		out[gi] = FigRWGroup{Name: g.Name, Results: rs[i : i+len(g.Configs)]}
		i += len(g.Configs)
	}
	return out
}

// --- Ablations (DESIGN.md extensions) ---

// AblationRow compares ALock variants under one representative contended
// configuration.
type AblationRow struct {
	Algorithm  string
	Throughput float64
	P99NS      int64
	MaxRunNote string
}

// Ablations quantifies the design choices DESIGN.md calls out: the budget
// (alock vs alock-nobudget) and the asymmetric cohort split (alock vs
// alock-symmetric vs mcs).
func Ablations(s Scale, run RunMany) []AblationRow {
	warm, meas := s.windows()
	nodes, threads := 8, 8
	if s.TestTiny {
		nodes, threads = 3, 2
	}
	algos := []string{"alock", "alock-nobudget", "alock-symmetric", "mcs"}
	cfgs := make([]Config, 0, len(algos))
	for _, algo := range algos {
		cfgs = append(cfgs, Config{
			Algorithm:      algo,
			Nodes:          nodes,
			ThreadsPerNode: threads,
			Locks:          100,
			LocalityPct:    90,
			WarmupNS:       warm,
			MeasureNS:      meas,
			TargetOps:      s.targetOps(),
			Seed:           s.seed(),
		})
	}
	rs := run(cfgs)
	rows := make([]AblationRow, len(rs))
	for i, r := range rs {
		rows[i] = AblationRow{
			Algorithm:  algos[i],
			Throughput: r.Throughput,
			P99NS:      r.Latency.P99NS,
		}
	}
	return rows
}

// HeadlineRatios extracts the paper's headline comparison numbers from a
// Figure 5 result set: max ALock/MCS and ALock/spinlock ratios at high
// contention, at 100% locality, and at low contention.
type HeadlineRatios struct {
	HighContentionVsMCS  float64 // paper: up to 29x
	HighContentionVsSpin float64 // paper: up to 24x
	FullLocalityVsMCS    float64 // paper: up to 24x
	FullLocalityVsSpin   float64 // paper: up to 22x
	LowContentionVsMCS   float64 // paper: up to 3.8x
	LowContentionVsSpin  float64 // paper: up to 3.3x
}

// Headlines computes HeadlineRatios from Figure 5 panels.
func Headlines(panels []Fig5Panel) HeadlineRatios {
	var h HeadlineRatios
	get := func(p Fig5Panel, algo string) []float64 {
		for _, s := range p.Series {
			if s.Algorithm == algo {
				return s.Throughput
			}
		}
		return nil
	}
	maxRatio := func(a, b []float64) float64 {
		var m float64
		for i := range a {
			if i < len(b) && b[i] > 0 {
				if r := a[i] / b[i]; r > m {
					m = r
				}
			}
		}
		return m
	}
	upd := func(dst *float64, v float64) {
		if v > *dst {
			*dst = v
		}
	}
	for _, p := range panels {
		al, mc, sp := get(p, "alock"), get(p, "mcs"), get(p, "spinlock")
		switch {
		case p.LocalityPct == 100:
			upd(&h.FullLocalityVsMCS, maxRatio(al, mc))
			upd(&h.FullLocalityVsSpin, maxRatio(al, sp))
		case p.Locks <= 20:
			upd(&h.HighContentionVsMCS, maxRatio(al, mc))
			upd(&h.HighContentionVsSpin, maxRatio(al, sp))
		case p.Locks >= 1000:
			upd(&h.LowContentionVsMCS, maxRatio(al, mc))
			upd(&h.LowContentionVsSpin, maxRatio(al, sp))
		}
	}
	return h
}

func (h HeadlineRatios) String() string {
	return fmt.Sprintf(
		"high contention: %.1fx vs MCS, %.1fx vs spinlock | 100%% locality: %.1fx vs MCS, %.1fx vs spinlock | low contention: %.1fx vs MCS, %.1fx vs spinlock",
		h.HighContentionVsMCS, h.HighContentionVsSpin,
		h.FullLocalityVsMCS, h.FullLocalityVsSpin,
		h.LowContentionVsMCS, h.LowContentionVsSpin)
}

var _ = time.Nanosecond // keep time imported for Config literals in callers
