package harness

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"alock/internal/model"
)

// quickCfg returns a fast configuration for functional tests.
func quickCfg(algo string) Config {
	return Config{
		Algorithm:      algo,
		Nodes:          3,
		ThreadsPerNode: 4,
		Locks:          30,
		LocalityPct:    90,
		WarmupNS:       100_000,
		MeasureNS:      800_000,
		TargetOps:      8_000,
		Seed:           1,
	}
}

func TestRunSmoke(t *testing.T) {
	for _, algo := range []string{"alock", "spinlock", "mcs"} {
		r, err := Run(quickCfg(algo))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if r.Ops == 0 || r.Throughput <= 0 {
			t.Errorf("%s: no ops recorded: %+v", algo, r)
		}
		if r.Latency.Count != r.Ops {
			t.Errorf("%s: latency count %d != ops %d", algo, r.Latency.Count, r.Ops)
		}
		if len(r.CDF) == 0 {
			t.Errorf("%s: empty CDF", algo)
		}
		if r.NIC.Verbs == 0 && algo != "alock" {
			t.Errorf("%s: competitors must generate verbs", algo)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(quickCfg("alock"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickCfg("alock"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Ops != b.Ops || a.Throughput != b.Throughput || a.SpanNS != b.SpanNS {
		t.Fatalf("nondeterministic: %v vs %v ops, %v vs %v tput",
			a.Ops, b.Ops, a.Throughput, b.Throughput)
	}
	if a.Latency != b.Latency {
		t.Fatalf("nondeterministic latency: %+v vs %+v", a.Latency, b.Latency)
	}
}

func TestRunSeedChangesSchedule(t *testing.T) {
	c1 := quickCfg("alock")
	c2 := quickCfg("alock")
	c2.Seed = 99
	a, _ := Run(c1)
	b, _ := Run(c2)
	if a.Ops == b.Ops && a.Latency.MeanNS == b.Latency.MeanNS {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestWithDefaultsKeepsCallerModel(t *testing.T) {
	// Regression: withDefaults used LocalReadNS == 0 as the "no model"
	// sentinel, clobbering any caller-supplied model that happened to leave
	// that one field zero. Only the fully zero-valued model means default.
	custom := model.Uniform(5)
	custom.LocalReadNS = 0 // invalid on purpose, but unmistakably caller-supplied
	c := quickCfg("alock")
	c.Model = custom
	got := c.withDefaults()
	if got.Model != custom {
		t.Fatalf("caller-supplied model was replaced: got %+v", got.Model)
	}
	// And Run must surface the model's own validation error, not silently
	// substitute CX3.
	if _, err := Run(c); err == nil {
		t.Fatal("invalid caller model accepted (was it clobbered by CX3?)")
	}

	var def Config
	if d := def.withDefaults(); d.Model != model.CX3() {
		t.Fatalf("zero-valued model did not default to CX3: %+v", d.Model)
	}
}

func TestRunValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.Nodes = 17 }, // 4-bit node IDs
		func(c *Config) { c.ThreadsPerNode = 0 },
		func(c *Config) { c.Locks = 0 },
		func(c *Config) { c.LocalityPct = 101 },
		func(c *Config) { c.Algorithm = "nope" },
	}
	for i, mut := range bad {
		c := quickCfg("alock")
		mut(&c)
		if _, err := Run(c); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

func TestALockStatsExposed(t *testing.T) {
	r, err := Run(quickCfg("alock"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Lock.Acquires == 0 {
		t.Fatal("alock runs must expose internal stats")
	}
	if r.Lock.LocalOps+r.Lock.RemoteOps != r.Lock.Acquires {
		t.Fatalf("cohort split inconsistent: %+v", r.Lock)
	}
	// ~90% locality must show up in the cohort classification.
	frac := float64(r.Lock.LocalOps) / float64(r.Lock.Acquires)
	if frac < 0.82 || frac > 0.98 {
		t.Errorf("local fraction %.2f, expected ~0.90", frac)
	}
}

func TestTargetOpsStopsEarly(t *testing.T) {
	c := quickCfg("alock")
	c.TargetOps = 500
	c.MeasureNS = 1 << 40 // effectively unbounded horizon
	r, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops < 500 || r.Ops > 500+int64(c.Nodes*c.ThreadsPerNode) {
		t.Fatalf("ops = %d, want ~500 (early stop)", r.Ops)
	}
}

func TestRecordedSpanSemantics(t *testing.T) {
	// Full-window run: anchored at the warmup boundary.
	if got := recordedSpan(5_000, 9_000, 1_000, false); got != 8_000 {
		t.Errorf("full-window span = %d, want 8000", got)
	}
	// TargetOps-cut run: first to last recorded completion, so a late
	// first completion does not deflate throughput.
	if got := recordedSpan(5_000, 9_000, 1_000, true); got != 4_000 {
		t.Errorf("cut-short span = %d, want 4000", got)
	}
	// Degenerate spans clamp to 1ns.
	if got := recordedSpan(9_000, 9_000, 1_000, true); got != 1 {
		t.Errorf("single-op span = %d, want 1", got)
	}
	if got := recordedSpan(0, 0, 1_000, false); got != 1 {
		t.Errorf("empty-run span = %d, want 1", got)
	}
}

func TestUnreachedTargetKeepsWarmupAnchor(t *testing.T) {
	// A TargetOps the window expires under is NOT a cut-short run: the
	// span must stay warmup-anchored, identical to the target-free run.
	c := quickCfg("alock")
	c.TargetOps = 0
	base, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	c.TargetOps = 1 << 40 // unreachable within the window
	capped, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Ops >= c.TargetOps {
		t.Fatalf("test is vacuous: target reached (%d ops)", capped.Ops)
	}
	if capped.SpanNS != base.SpanNS || capped.Throughput != base.Throughput {
		t.Errorf("unreached target changed the span: %d vs %d ns (tput %v vs %v)",
			capped.SpanNS, base.SpanNS, capped.Throughput, base.Throughput)
	}
}

func TestTargetOpsSpanIgnoresLateStart(t *testing.T) {
	// Regression: Run computed firstRec but never used it, anchoring
	// SpanNS at the warmup boundary even when TargetOps cut the run
	// short. One thread with 200us think time starts recording late
	// (first recorded completion ~200us, warmup boundary 100us); with
	// TargetOps=3 the completions sit ~200us apart, so the recorded span
	// is ~400us — the old warmup anchor would report >=500us.
	c := Config{
		Algorithm:      "alock",
		Nodes:          1,
		ThreadsPerNode: 1,
		Locks:          1,
		LocalityPct:    100,
		Think:          200 * time.Microsecond,
		WarmupNS:       100_000,
		MeasureNS:      1 << 40,
		TargetOps:      3,
		Seed:           1,
	}
	r, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops != 3 {
		t.Fatalf("ops = %d, want 3", r.Ops)
	}
	if r.SpanNS < 400_000 || r.SpanNS >= 500_000 {
		t.Fatalf("SpanNS = %d, want ~400us (>=500us means warmup-anchored)", r.SpanNS)
	}
}

func TestRWBudgetsForwarded(t *testing.T) {
	base := quickCfg("rw-budget")
	base.ReadPct = 70
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	tuned := base
	tuned.ReadBudget, tuned.WriteBudget = 1, 1
	b, err := Run(tuned)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ops == b.Ops && a.Latency == b.Latency {
		t.Error("custom RW budgets did not change the run (not forwarded?)")
	}
	// rw-queue accepts the same knobs.
	q := quickCfg("rw-queue")
	q.ReadPct = 70
	q.ReadBudget, q.WriteBudget = 2, 2
	if _, err := Run(q); err != nil {
		t.Fatalf("rw-queue with custom budgets: %v", err)
	}
	// A partially-set budget pair is rejected, not silently defaulted.
	bad := base
	bad.WriteBudget = 0
	bad.ReadBudget = 8
	if _, err := Run(bad); err == nil {
		t.Error("partial RW budget config accepted")
	}
}

func TestBudgetsForwarded(t *testing.T) {
	c := quickCfg("alock")
	c.LocalBudget, c.RemoteBudget = 1, 1
	r, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Lock.Reacquires == 0 {
		t.Fatal("budget-1 run should reacquire")
	}
}

func TestBurstAndHomeSkewConfigs(t *testing.T) {
	burst := quickCfg("alock")
	burst.BurstOn = 30 * time.Microsecond
	burst.BurstOff = 30 * time.Microsecond
	burst.TargetOps = 0 // run the full window so the duty cycle bites
	steady := quickCfg("alock")
	steady.TargetOps = 0
	rb, err := Run(burst)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(steady)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Ops == 0 {
		t.Fatal("bursty run recorded nothing")
	}
	if rb.Ops >= rs.Ops {
		t.Errorf("50%% duty cycle did not reduce ops: bursty=%d steady=%d", rb.Ops, rs.Ops)
	}

	skew := quickCfg("alock")
	skew.HomeSkewPct = 70
	rk, err := Run(skew)
	if err != nil {
		t.Fatal(err)
	}
	if rk.Ops == 0 {
		t.Fatal("skewed-home run recorded nothing")
	}

	bad := quickCfg("alock")
	bad.BurstOn = time.Microsecond // off phase missing
	if _, err := Run(bad); err == nil {
		t.Error("half-specified burst accepted")
	}
	bad2 := quickCfg("alock")
	bad2.HomeSkewPct = 101
	if _, err := Run(bad2); err == nil {
		t.Error("home skew 101%% accepted")
	}
}

func TestReadWriteWorkloadConfigs(t *testing.T) {
	// Native RW algorithm: both classes recorded, split consistent.
	c := quickCfg("rw-budget")
	c.ReadPct = 80
	r, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReadOps == 0 || r.WriteOps == 0 {
		t.Fatalf("class starved: reads=%d writes=%d", r.ReadOps, r.WriteOps)
	}
	if r.ReadOps+r.WriteOps != r.Ops {
		t.Fatalf("split %d+%d != ops %d", r.ReadOps, r.WriteOps, r.Ops)
	}
	if r.ReadLatency.Count != r.ReadOps || r.WriteLatency.Count != r.WriteOps {
		t.Fatal("per-class summaries out of sync with per-class ops")
	}

	// Exclusive algorithm under a read mix: degrades, still correct.
	d := quickCfg("alock")
	d.ReadPct = 80
	rd, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Ops == 0 || rd.ReadOps+rd.WriteOps != rd.Ops {
		t.Fatalf("degraded RW run inconsistent: %d ops, %d+%d split",
			rd.Ops, rd.ReadOps, rd.WriteOps)
	}

	// Exclusive-only config records everything as writes.
	rx, err := Run(quickCfg("alock"))
	if err != nil {
		t.Fatal(err)
	}
	if rx.ReadOps != 0 || rx.WriteOps != rx.Ops {
		t.Fatalf("exclusive run split reads=%d writes=%d ops=%d", rx.ReadOps, rx.WriteOps, rx.Ops)
	}

	// Lease holds stretch the tail beyond the lease duration.
	lc := quickCfg("alock")
	lc.LeaseProb = 0.05
	lc.LeaseHold = 30 * time.Microsecond
	rl, err := Run(lc)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Latency.MaxNS < lc.LeaseHold.Nanoseconds() {
		t.Fatalf("lease holds invisible: max latency %dns < hold %v", rl.Latency.MaxNS, lc.LeaseHold)
	}

	// Validation rejects malformed RW/lease configs.
	for i, mut := range []func(*Config){
		func(c *Config) { c.ReadPct = -1 },
		func(c *Config) { c.ReadPct = 101 },
		func(c *Config) { c.LeaseProb = 0.5 }, // hold missing
		func(c *Config) { c.LeaseHold = time.Microsecond },
		func(c *Config) { c.LeaseProb = 1.5; c.LeaseHold = time.Microsecond },
	} {
		bad := quickCfg("alock")
		mut(&bad)
		if _, err := Run(bad); err == nil {
			t.Errorf("case %d: malformed RW/lease config accepted", i)
		}
	}
}

// --- Table 1 ---

// TestTokenAxisConfigs pins the acquisition-token plumbing end to end:
// deadlines produce timeout counts with their own latency digest, abandons
// produce matching fenced releases, pair ops complete, and the validator
// rejects half-set failure knobs.
func TestTokenAxisConfigs(t *testing.T) {
	cfg := quickCfg("mcs")
	cfg.Locks = 3 // hot enough that a tight deadline fires
	// The deadline sits near the median contended acquire latency so both
	// outcomes occur in volume: plenty of timeouts AND enough successful
	// acquisitions for the abandon knob to fire.
	cfg.AcquireTimeout = 30 * time.Microsecond
	cfg.AbandonProb = 0.01
	cfg.AbandonHold = 40 * time.Microsecond
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Timeouts == 0 {
		t.Error("no timeouts under a tight deadline on hot locks")
	}
	if r.TimeoutLatency.Count != r.Timeouts {
		t.Errorf("timeout digest count %d != timeouts %d", r.TimeoutLatency.Count, r.Timeouts)
	}
	if r.Abandons == 0 || r.FencedReleases != r.Abandons {
		t.Errorf("abandons=%d fenced=%d, want equal and non-zero", r.Abandons, r.FencedReleases)
	}
	if r.Ops == 0 {
		t.Error("non-abandoning work made no progress (no recovery)")
	}

	pair := quickCfg("alock")
	pair.PairProb = 0.2
	rp, err := Run(pair)
	if err != nil {
		t.Fatal(err)
	}
	if rp.PairOps == 0 || rp.PairOps > rp.Ops {
		t.Errorf("pair ops %d of %d", rp.PairOps, rp.Ops)
	}
	if rp.Timeouts != 0 || rp.FencedReleases != 0 {
		t.Errorf("pair-only config leaked failure outcomes: %+v", rp)
	}

	bad := quickCfg("mcs")
	bad.AbandonProb = 0.01 // no hold, no timeout
	if _, err := Run(bad); err == nil {
		t.Error("half-set abandon config accepted")
	}
	bad = quickCfg("mcs")
	bad.AbandonProb = 0.01
	bad.AbandonHold = 10 * time.Microsecond // still no timeout: waiters wedge
	if _, err := Run(bad); err == nil {
		t.Error("abandon without acquire timeout accepted")
	}
}

// TestTimedRunsDeterministic: the failure axis must stay bit-reproducible
// (the CI serial-vs-parallel diff depends on it).
func TestTimedRunsDeterministic(t *testing.T) {
	mk := func() Config {
		cfg := quickCfg("rw-queue")
		cfg.Locks = 5
		cfg.ReadPct = 50
		cfg.AcquireTimeout = 10 * time.Microsecond
		cfg.AbandonProb = 0.01
		cfg.AbandonHold = 50 * time.Microsecond
		return cfg
	}
	a, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.Ops != b.Ops || a.Timeouts != b.Timeouts || a.Abandons != b.Abandons ||
		a.FencedReleases != b.FencedReleases || a.Events != b.Events {
		t.Fatalf("timed runs nondeterministic: %+v vs %+v", a, b)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	expected := map[string]bool{
		"Read/Read": true, "Read/Write": true, "Read/CAS": true,
		"Write/Read": true, "Write/Write": true, "Write/CAS": false,
		"RMW/Read": true, "RMW/Write": true, "RMW/CAS": false,
	}
	for _, cell := range Table1() {
		key := cell.LocalClass + "/" + cell.RemoteOp
		want, ok := expected[key]
		if !ok {
			t.Errorf("unexpected cell %s", key)
			continue
		}
		if cell.Atomic != want {
			t.Errorf("Table 1 %s: measured atomic=%v, paper says %v", key, cell.Atomic, want)
		}
	}
}

// --- Figure shapes (quick scale) ---

func TestFigure1Shape(t *testing.T) {
	pts := Figure1(Scale{Quick: true}, RunSerial)
	if len(pts) < 4 {
		t.Fatalf("too few points: %d", len(pts))
	}
	peak, peakIdx := 0.0, 0
	for i, p := range pts {
		if p.Throughput > peak {
			peak, peakIdx = p.Throughput, i
		}
	}
	last := pts[len(pts)-1]
	if peakIdx == len(pts)-1 {
		t.Fatal("Figure 1: throughput monotonically increasing — no loopback congestion")
	}
	if pts[peakIdx].Threads > 4 {
		t.Errorf("Figure 1: peak at %d threads, paper peaks at a few", pts[peakIdx].Threads)
	}
	if last.Throughput > 0.7*peak {
		t.Errorf("Figure 1: decline too shallow (peak %.0f, 16 threads %.0f)", peak, last.Throughput)
	}
}

func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows := Figure4(Scale{Quick: true}, RunSerial)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RemoteBudget == 5 && r.AvgSpeedup != 1.0 {
			t.Fatalf("baseline row wrong: %+v", r)
		}
		// Raising the remote budget should not hurt (paper: up to +23%).
		if r.RemoteBudget == 20 && r.AvgSpeedup < 0.95 {
			t.Errorf("remote budget 20 slower than 5: %+v", r)
		}
	}
}

func TestHeadlinesComputation(t *testing.T) {
	panels := []Fig5Panel{
		{
			ID: "a", Nodes: 5, Locks: 20, LocalityPct: 90,
			Series: []Fig5Series{
				{Algorithm: "alock", Threads: []int{2, 8}, Throughput: []float64{10, 29}},
				{Algorithm: "mcs", Threads: []int{2, 8}, Throughput: []float64{5, 1}},
				{Algorithm: "spinlock", Threads: []int{2, 8}, Throughput: []float64{2, 2}},
			},
		},
		{
			ID: "d", Nodes: 5, Locks: 20, LocalityPct: 100,
			Series: []Fig5Series{
				{Algorithm: "alock", Threads: []int{2}, Throughput: []float64{24}},
				{Algorithm: "mcs", Threads: []int{2}, Throughput: []float64{1}},
				{Algorithm: "spinlock", Threads: []int{2}, Throughput: []float64{2}},
			},
		},
	}
	h := Headlines(panels)
	if h.HighContentionVsMCS != 29 {
		t.Errorf("HighContentionVsMCS = %v", h.HighContentionVsMCS)
	}
	if h.HighContentionVsSpin != 14.5 {
		t.Errorf("HighContentionVsSpin = %v", h.HighContentionVsSpin)
	}
	if h.FullLocalityVsMCS != 24 || h.FullLocalityVsSpin != 12 {
		t.Errorf("full locality ratios = %v/%v", h.FullLocalityVsMCS, h.FullLocalityVsSpin)
	}
	if !strings.Contains(h.String(), "29.0x") {
		t.Errorf("String() = %q", h.String())
	}
}

// Property: Run is total over valid random configurations — no panics, and
// accounting identities hold.
func TestQuickRunAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64, rawNodes, rawThreads, rawLocks, rawLoc uint8) bool {
		c := Config{
			Algorithm:      "alock",
			Nodes:          int(rawNodes%4) + 1,
			ThreadsPerNode: int(rawThreads%3) + 1,
			Locks:          int(rawLocks%40) + 1,
			LocalityPct:    int(rawLoc % 101),
			WarmupNS:       50_000,
			MeasureNS:      300_000,
			TargetOps:      2_000,
			Seed:           seed,
		}
		r, err := Run(c)
		if err != nil {
			return false
		}
		return r.Ops >= 0 && r.Latency.Count == r.Ops && r.SpanNS > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// --- Driver structure tests (TestTiny scale) ---

func TestFigure5DriverStructure(t *testing.T) {
	panels := Figure5(Scale{TestTiny: true}, RunSerial)
	if len(panels) != 8 { // 2 node counts x 4 shapes
		t.Fatalf("panels = %d", len(panels))
	}
	seenIDs := map[string]bool{}
	for _, p := range panels {
		if seenIDs[p.ID] {
			t.Errorf("duplicate panel id %q", p.ID)
		}
		seenIDs[p.ID] = true
		if len(p.Series) != len(EvalAlgorithms) {
			t.Fatalf("panel %s has %d series", p.ID, len(p.Series))
		}
		for _, s := range p.Series {
			if len(s.Threads) != len(s.Throughput) || len(s.Threads) == 0 {
				t.Fatalf("panel %s/%s malformed series", p.ID, s.Algorithm)
			}
			for _, v := range s.Throughput {
				if v <= 0 {
					t.Errorf("panel %s/%s nonpositive throughput", p.ID, s.Algorithm)
				}
			}
		}
	}
}

func TestFigure6DriverStructure(t *testing.T) {
	panels := Figure6(Scale{TestTiny: true}, RunSerial)
	if len(panels) != 12 { // 4 localities x 3 contentions
		t.Fatalf("panels = %d", len(panels))
	}
	for _, p := range panels {
		for _, s := range p.Series {
			if s.Summary.Count == 0 {
				t.Errorf("panel %s/%s empty latency summary", p.ID, s.Algorithm)
			}
			if len(s.CDF) == 0 {
				t.Errorf("panel %s/%s empty CDF", p.ID, s.Algorithm)
			}
		}
	}
	// Row/column layout: first panel is 100% locality, 20 locks.
	if panels[0].LocalityPct != 100 || panels[0].Locks != 20 {
		t.Errorf("panel (a) = %d%%/%d locks", panels[0].LocalityPct, panels[0].Locks)
	}
	if panels[11].LocalityPct != 85 || panels[11].Locks != 1000 {
		t.Errorf("panel (l) = %d%%/%d locks", panels[11].LocalityPct, panels[11].Locks)
	}
}

func TestFigure5LocalitySweepDriver(t *testing.T) {
	pts := Figure5LocalitySweep(Scale{TestTiny: true}, RunSerial)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Throughput must increase with locality (the Section 6.2 claim).
	for i := 1; i < len(pts); i++ {
		if pts[i].Throughput <= pts[i-1].Throughput {
			t.Errorf("throughput not increasing with locality: %+v", pts)
		}
	}
}

func TestAblationsDriver(t *testing.T) {
	rows := Ablations(Scale{TestTiny: true}, RunSerial)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Algorithm] = r.Throughput
	}
	// The asymmetric cohort split must beat the symmetric ablation.
	if byName["alock"] <= byName["alock-symmetric"] {
		t.Errorf("asymmetric (%f) not faster than symmetric (%f)",
			byName["alock"], byName["alock-symmetric"])
	}
}

func TestQPThrashingDriver(t *testing.T) {
	rows := QPThrashing(Scale{TestTiny: true}, RunSerial)
	if len(rows) != 3 { // 1 cap x 3 algorithms
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]QPThrashRow{}
	for _, r := range rows {
		byName[r.Algorithm] = r
	}
	// The competitors maintain loopback QPs; ALock does not — its distinct
	// QP working set must be strictly smaller.
	if byName["alock"].DistinctQPs >= byName["spinlock"].DistinctQPs {
		t.Errorf("alock QPs (%d) not fewer than spinlock's (%d)",
			byName["alock"].DistinctQPs, byName["spinlock"].DistinctQPs)
	}
}

func TestFigureRWDriverStructure(t *testing.T) {
	mk := func(algo string, readPct int) Config {
		c := quickCfg(algo)
		c.ReadPct = readPct
		return c
	}
	groups := []RWSweepGroup{
		{Name: "rw/a", Configs: []Config{mk("rw-queue", 70), mk("rw-budget", 70)}},
		{Name: "fail/b", Configs: []Config{mk("alock", 0)}},
	}
	out := FigureRW(groups, RunSerial)
	if len(out) != 2 || out[0].Name != "rw/a" || out[1].Name != "fail/b" {
		t.Fatalf("groups misassembled: %+v", out)
	}
	if len(out[0].Results) != 2 || len(out[1].Results) != 1 {
		t.Fatalf("results misassembled: %d/%d", len(out[0].Results), len(out[1].Results))
	}
	for _, g := range out {
		for i, r := range g.Results {
			if r.Config.Algorithm != groups[0].Configs[0].Algorithm && g.Name == "rw/a" && i == 0 {
				t.Errorf("result order broken in %s", g.Name)
			}
			if r.Ops == 0 {
				t.Errorf("%s run %d recorded nothing", g.Name, i)
			}
		}
	}
	// The RW group must record both classes; the exclusive group only
	// writes.
	for _, r := range out[0].Results {
		if r.ReadOps == 0 || r.WriteOps == 0 {
			t.Errorf("rw/a %s: class starved (reads=%d writes=%d)",
				r.Config.Algorithm, r.ReadOps, r.WriteOps)
		}
	}
	if r := out[1].Results[0]; r.ReadOps != 0 || r.WriteOps != r.Ops {
		t.Errorf("exclusive group split reads=%d writes=%d ops=%d", r.ReadOps, r.WriteOps, r.Ops)
	}
}

func TestFigure4DriverTiny(t *testing.T) {
	rows := Figure4(Scale{TestTiny: true}, RunSerial)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.PerLocality) != 3 {
			t.Fatalf("row missing localities: %+v", r)
		}
		if r.AvgSpeedup <= 0 {
			t.Fatalf("nonpositive speedup: %+v", r)
		}
	}
}

// TestEngineShardsBitIdentical: a harness run on the sharded engine — both
// the serial merge scheduler and the windowed parallel executor — must be
// bit-identical to the serial engine, modulo the engine-selection knob
// itself. The no-TargetOps variant actually executes parallel windows; the
// TargetOps variant proves the serializing degrade path preserves results.
func TestEngineShardsBitIdentical(t *testing.T) {
	for _, algo := range []string{"alock", "mcs"} {
		base := quickCfg(algo)
		variants := []Config{base}
		free := base
		free.TargetOps = 0 // eligible for parallel windows
		variants = append(variants, free)
		for _, cfg := range variants {
			want, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 4} {
				scfg := cfg
				scfg.EngineShards = shards
				got, err := Run(scfg)
				if err != nil {
					t.Fatal(err)
				}
				got.Config.EngineShards = 0
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s (TargetOps=%d): result diverged between serial and shards=%d engines",
						algo, cfg.TargetOps, shards)
				}
			}
		}
	}
}

// TestOracleRejectsEngineShards: the two engine-selection knobs are
// mutually exclusive and must fail validation, not race to pick one.
func TestOracleRejectsEngineShards(t *testing.T) {
	cfg := quickCfg("mcs")
	cfg.Oracle = true
	cfg.EngineShards = 2
	if _, err := Run(cfg); err == nil {
		t.Fatal("Oracle+EngineShards accepted")
	}
	cfg.EngineShards = -1
	cfg.Oracle = false
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative EngineShards accepted")
	}
}
