// Package harness turns an experiment configuration into a measured run on
// the deterministic simulator: it builds the cluster, the distributed lock
// table, and the per-thread workloads, then aggregates throughput, latency
// and fabric statistics. The per-figure drivers in figures.go sit on top
// and regenerate every table and figure of the paper's evaluation
// (Section 6).
package harness

import (
	"fmt"
	"time"

	"alock/internal/api"
	"alock/internal/core"
	"alock/internal/locks"
	"alock/internal/locktable"
	"alock/internal/model"
	"alock/internal/sim"
	"alock/internal/stats"
	"alock/internal/workload"
)

// Config fully describes one experiment run.
type Config struct {
	// Algorithm is a name accepted by locks.ByName.
	Algorithm string
	// Nodes and ThreadsPerNode define the cluster (paper: 5/10/20 nodes,
	// 1..12 threads per node).
	Nodes          int
	ThreadsPerNode int
	// Locks is the lock-table size (paper: 20/100/1000).
	Locks int
	// LocalityPct is the share of operations on node-local locks
	// (paper: 85/90/95/100).
	LocalityPct int
	// LocalBudget/RemoteBudget configure ALock variants (0,0 = paper
	// defaults 5/20).
	LocalBudget, RemoteBudget int64
	// ReadBudget/WriteBudget configure the reader/writer locks' phase
	// budgets (0,0 = locks.DefaultRWConfig, 16/4). Setting only one is an
	// error, surfaced by locks.ByName.
	ReadBudget, WriteBudget int64
	// Model is the cost model; zero value means model.CX3().
	Model model.Params
	// WarmupNS ops are executed but not recorded; MeasureNS bounds the
	// recorded window.
	WarmupNS  int64
	MeasureNS int64
	// TargetOps, if positive, ends the run once this many operations have
	// been recorded (keeps heavyweight sweeps affordable without biasing
	// throughput, which is computed over the recorded span).
	TargetOps int64
	// CSWork and Think shape each operation (both default to zero: the
	// paper measures bare lock+unlock pairs).
	CSWork time.Duration
	Think  time.Duration
	// ZipfS, when > 1, skews lock popularity with a Zipf(s) rank
	// distribution within each locality class (hot-key extension).
	ZipfS float64
	// BurstOn/BurstOff, when both positive, run each thread through on/off
	// arrival phases instead of open-throttle issue (bursty extension).
	BurstOn, BurstOff time.Duration
	// HomeSkewPct, when > 0, homes that percentage of the lock table on
	// node 0 instead of the paper's equal partition (skewed-home
	// extension).
	HomeSkewPct int
	// ReadPct is the percentage of operations acquiring the lock in shared
	// (read) mode; 0 reproduces the paper's exclusive-only workloads.
	// Algorithms without native shared mode degrade reads to exclusive.
	ReadPct int
	// LeaseProb/LeaseHold, when both set, turn that fraction of operations
	// into lease-style long holds of the given duration (failure/recovery
	// and ownership-lease extension). Leases model ownership, so a leased
	// operation always acquires exclusive mode regardless of ReadPct.
	LeaseProb float64
	LeaseHold time.Duration
	// AcquireTimeout, when > 0, bounds every acquisition: acquires still
	// waiting after this much engine time give up and are recorded as
	// timeouts. Setting it also switches the queued algorithms into the
	// abandonment-tolerant handoff protocol (locks.Options.Timed);
	// timeout-free configs keep the paper-exact paths and replay
	// bit-identically.
	AcquireTimeout time.Duration
	// AbandonProb/AbandonHold, when both set, make that fraction of
	// exclusive holds "crash": the lock wedges for AbandonHold, then
	// recovery reclaims it and the holder's late release is fenced off by
	// its stale token (failure-injection extension; pair ops are exempt).
	AbandonProb float64
	AbandonHold time.Duration
	// PairProb, when > 0, turns that fraction of operations into two-lock
	// transactions: both locks acquired in ascending table order, one
	// critical section, released in reverse order.
	PairProb float64
	// TxnLocks, when >= 2, turns every operation into a k-lock exclusive
	// transaction driven by the TxnPolicy deadlock policy (generalizing
	// PairProb). TxnLocks == 0 configs draw nothing new and replay
	// existing schedules bit-identically.
	TxnLocks int
	// TxnOrder is the per-transaction acquisition order: "ordered"
	// (ascending) or "unordered" (selection order; deadlock-prone, which
	// the policies resolve). Empty defaults to the policy's natural order.
	TxnOrder string
	// TxnPolicy is the deadlock policy: "ordered" (avoidance by lock
	// ordering), "timeout-backoff" (per-lock deadlines from
	// AcquireTimeout, LIFO rollback, randomized capped exponential
	// backoff), or "wait-die" (age = first fencing token; younger waiters
	// self-abort against older holders). The unordered policies need an
	// algorithm with a native timed path — filter and bakery block through
	// deadlines and would genuinely deadlock, so Run rejects them.
	TxnPolicy string
	// TxnBackoff is the base backoff window for transaction retries
	// (required by timeout-backoff; optional die padding for wait-die).
	TxnBackoff time.Duration
	// TxnRing pins transactions to the dining-philosophers layout: thread
	// t takes locks (t+j) mod Locks instead of random selection.
	TxnRing bool
	// --- Lock-service layer (internal/cluster; open-loop extension) ---
	//
	// ArrivalRate, when > 0, switches the run to the open-loop lock
	// service: instead of closed-loop threads, per-shard Poisson arrival
	// generators offer this many operations per second in aggregate, and
	// per-shard worker pools (ThreadsPerNode workers each) drain bounded
	// admission queues. Open-loop runs support ReadPct, CSWork, ZipfS
	// (key popularity), BurstOn/Off, AcquireTimeout, HomeSkewPct, Oracle
	// and EngineShards; the closed-loop-only knobs (TargetOps, Think,
	// locality, leases, abandonment, pairs, transactions) are rejected.
	ArrivalRate float64 `json:",omitempty"`
	// Clients is the logical client population (arrival events carry a
	// client ID drawn from it); 0 defaults to one million.
	Clients int64 `json:",omitempty"`
	// SvcShards is the service shard count; 0 defaults to Nodes.
	SvcShards int `json:",omitempty"`
	// SvcPlacement maps keys to shards: "hash" (consistent hashing, the
	// default) or "home" (shard co-located with the lock's home node).
	SvcPlacement string `json:",omitempty"`
	// SvcQueueCap bounds each shard's admission queue; 0 defaults to 64.
	SvcQueueCap int `json:",omitempty"`
	// SvcAdmission is the overflow policy: "drop-tail" (default) or
	// "drop-head".
	SvcAdmission string `json:",omitempty"`
	// SvcRebalance, when true, runs the deterministic pre-run hot-key
	// rebalance: the hottest keys are re-assigned greedily to the least
	// loaded shards before the run starts.
	SvcRebalance bool `json:",omitempty"`
	// Seed makes the run reproducible.
	Seed int64
	// WordsPerNode sizes each node's memory region (0 = 1Mi words = 8 MiB).
	WordsPerNode int
	// Oracle runs the simulation on the reference engine (container/heap
	// event queue, scheduler-mediated run loop) instead of the flattened
	// hot path. Schedules are bit-identical either way — the flag exists so
	// tests can prove it and internal/bench can measure the difference.
	Oracle bool `json:",omitempty"`
	// EngineShards, if positive, runs the simulation on the node-sharded
	// engine: per-node event queues with (at 1) a serial merge scheduler or
	// (above 1) the conservative windowed parallel executor, capped by the
	// process execution-slot budget. Schedules are bit-identical to the
	// serial engine in both cases. Workload features that rely on engine-
	// serialized cross-thread state (TargetOps early stop, wait-die age
	// ordering) force the worker count down to 1 — sharded-serial — rather
	// than racing; combining with Oracle is rejected.
	EngineShards int `json:",omitempty"`
}

func (c Config) withDefaults() Config {
	// Only a genuinely zero-valued model means "use the default": a caller-
	// supplied model that merely leaves one field at zero (and will fail
	// its own validation) must not be silently swapped for CX3.
	if c.Model == (model.Params{}) {
		c.Model = model.CX3()
	}
	if c.WarmupNS == 0 {
		c.WarmupNS = 400_000 // 0.4 ms
	}
	if c.MeasureNS == 0 {
		c.MeasureNS = 4_000_000 // 4 ms
	}
	if c.WordsPerNode == 0 {
		c.WordsPerNode = 1 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.OpenLoop() {
		if c.Clients == 0 {
			c.Clients = 1_000_000
		}
		if c.SvcShards == 0 {
			c.SvcShards = c.Nodes
		}
		if c.SvcQueueCap == 0 {
			c.SvcQueueCap = 64
		}
	}
	if c.TxnLocks >= 2 && c.TxnPolicy == workload.TxnPolicyBackoff && c.TxnBackoff == 0 {
		// A usable default: one deadline's worth of base backoff (doubling
		// up to 64x), so colliding transactions actually separate.
		c.TxnBackoff = c.AcquireTimeout
	}
	return c
}

// OpenLoop reports whether the config runs the open-loop lock service
// (internal/cluster) instead of closed-loop workload threads.
func (c Config) OpenLoop() bool { return c.ArrivalRate > 0 }

// Validate rejects configurations the simulator cannot represent.
func (c Config) Validate() error {
	if c.Nodes < 1 || c.Nodes > 16 {
		return fmt.Errorf("harness: nodes %d out of range 1..16 (4-bit node IDs)", c.Nodes)
	}
	if c.ThreadsPerNode < 1 {
		return fmt.Errorf("harness: threads per node %d", c.ThreadsPerNode)
	}
	if c.Locks < 1 {
		return fmt.Errorf("harness: lock table size %d", c.Locks)
	}
	if c.LocalityPct < 0 || c.LocalityPct > 100 {
		return fmt.Errorf("harness: locality %d%%", c.LocalityPct)
	}
	if c.MeasureNS <= 0 || c.WarmupNS < 0 {
		return fmt.Errorf("harness: bad windows warmup=%d measure=%d", c.WarmupNS, c.MeasureNS)
	}
	if c.HomeSkewPct < 0 || c.HomeSkewPct > 100 {
		return fmt.Errorf("harness: home skew %d%%", c.HomeSkewPct)
	}
	if c.BurstOn < 0 || c.BurstOff < 0 || (c.BurstOn > 0) != (c.BurstOff > 0) {
		return fmt.Errorf("harness: burst phases need both on and off (on=%v off=%v)",
			c.BurstOn, c.BurstOff)
	}
	if c.ReadPct < 0 || c.ReadPct > 100 {
		return fmt.Errorf("harness: read share %d%%", c.ReadPct)
	}
	if c.LeaseProb < 0 || c.LeaseProb > 1 || c.LeaseHold < 0 ||
		(c.LeaseProb > 0) != (c.LeaseHold > 0) {
		return fmt.Errorf("harness: lease needs both probability and hold (prob=%v hold=%v)",
			c.LeaseProb, c.LeaseHold)
	}
	if c.AcquireTimeout < 0 {
		return fmt.Errorf("harness: negative acquire timeout %v", c.AcquireTimeout)
	}
	if c.AbandonProb < 0 || c.AbandonProb > 1 || c.AbandonHold < 0 ||
		(c.AbandonProb > 0) != (c.AbandonHold > 0) {
		return fmt.Errorf("harness: abandon needs both probability and hold (prob=%v hold=%v)",
			c.AbandonProb, c.AbandonHold)
	}
	if c.AbandonProb > 0 && c.AcquireTimeout <= 0 {
		// A wedged lock with unbounded waiters makes no progress at all;
		// the timeout is the recovery story's other half.
		return fmt.Errorf("harness: AbandonProb requires AcquireTimeout so waiters can escape")
	}
	if c.PairProb < 0 || c.PairProb > 1 {
		return fmt.Errorf("harness: pair probability %v out of range", c.PairProb)
	}
	if c.TxnLocks > c.Locks {
		return fmt.Errorf("harness: TxnLocks %d exceeds the lock table (%d)", c.TxnLocks, c.Locks)
	}
	if c.EngineShards < 0 {
		return fmt.Errorf("harness: negative engine shards %d", c.EngineShards)
	}
	if c.Oracle && c.EngineShards > 0 {
		return fmt.Errorf("harness: Oracle is the single-queue serial reference and cannot run sharded (EngineShards=%d)", c.EngineShards)
	}
	if c.OpenLoop() {
		// TargetOps is a global countdown shared across every thread —
		// cross-shard order-dependent state the sharded engine refuses to
		// race on. The closed-loop path degrades to sharded-serial for it;
		// the service layer exists to run wide, so the combination is a
		// config error, not a silent fallback.
		if c.TargetOps > 0 {
			return fmt.Errorf("harness: open-loop service runs (ArrivalRate > 0) cannot use TargetOps: " +
				"the global op countdown is cross-shard order-dependent; bound the run with MeasureNS instead")
		}
		if c.Think > 0 {
			return fmt.Errorf("harness: Think is closed-loop pacing; open-loop load is set by ArrivalRate")
		}
		if c.LeaseProb > 0 || c.AbandonProb > 0 || c.PairProb > 0 || c.TxnLocks > 0 {
			return fmt.Errorf("harness: open-loop service runs support plain lock/unlock operations only "+
				"(lease=%v abandon=%v pair=%v txn=%d)", c.LeaseProb, c.AbandonProb, c.PairProb, c.TxnLocks)
		}
		if c.SvcShards < 1 {
			return fmt.Errorf("harness: service shards %d", c.SvcShards)
		}
		if c.SvcQueueCap < 1 {
			return fmt.Errorf("harness: service queue capacity %d", c.SvcQueueCap)
		}
		if c.Clients < 1 {
			return fmt.Errorf("harness: client population %d", c.Clients)
		}
	} else if c.Clients != 0 || c.SvcShards != 0 || c.SvcPlacement != "" ||
		c.SvcQueueCap != 0 || c.SvcAdmission != "" || c.SvcRebalance {
		return fmt.Errorf("harness: service knobs (clients/shards/placement/queue/admission/rebalance) " +
			"require an open-loop run: set ArrivalRate > 0")
	}
	// The transaction knobs themselves (k >= 2, policy/order names, the
	// policies' deadline and backoff requirements) are validated by
	// workload.Spec.Validate through the spec Run builds; checking there
	// keeps one source of truth.
	return c.Model.Validate()
}

// NICTotals aggregates the fabric counters over all nodes.
type NICTotals struct {
	Verbs        int64
	QPCMisses    int64
	Slowdowns    int64
	MaxBacklogNS int64
	// DistinctQPs is the total number of queue-pair connections serviced
	// across all NICs (the system QP working set; Section 2's scalability
	// concern).
	DistinctQPs int64
}

// Result is the outcome of one run.
type Result struct {
	Config Config
	// Ops is the number of recorded (post-warmup) operations.
	Ops int64
	// SpanNS is the recorded span: from the warmup boundary (threads are
	// already in steady state there) to the last recorded completion for
	// full-window runs, and from the first to the last recorded completion
	// when TargetOps cuts the run short — an early stop leaves no idle tail
	// to amortize, so anchoring at the warmup boundary would understate
	// throughput for runs whose first completion lands late.
	SpanNS int64
	// Throughput is total recorded operations per second.
	Throughput float64
	// Latency summarizes the recorded per-operation latencies.
	Latency stats.Summary
	// ReadOps/WriteOps split Ops by acquire mode, and ReadLatency/
	// WriteLatency are the per-class latency digests. Exclusive-only runs
	// record everything as writes (ReadOps == 0, WriteLatency == Latency).
	ReadOps      int64
	WriteOps     int64
	ReadLatency  stats.Summary
	WriteLatency stats.Summary
	// Acquisition-outcome counters (token API; post-warmup, like Ops).
	// Timeouts counts acquires that gave up at their deadline and
	// TimeoutLatency is their acquire-latency-to-outcome digest; Abandons
	// counts simulated holder crashes; FencedReleases counts releases
	// rejected by a stale fencing token (late releases after timeout or
	// recovery); PairOps counts completed two-lock transactions.
	Timeouts       int64
	TimeoutLatency stats.Summary
	Abandons       int64
	FencedReleases int64
	PairOps        int64
	// LateAcquires counts grants that landed past their requested deadline
	// (best-effort timed paths: the filter/bakery blocking fallback, and
	// committed queued waiters whose grant won the timeout race late). The
	// operations completed and are in Ops; this is how often the deadline
	// was overshot rather than honored.
	LateAcquires int64
	// Transaction-layer outcomes (TxnLocks >= 2). TxnCommits counts
	// committed transactions; TxnAborts counts attempts the deadlock
	// policy abandoned (timeout-backoff give-ups, wait-die self-aborts);
	// TxnRetries counts re-attempts started after aborts. TxnRetryHist is
	// the retry-count distribution over commits and CommitLatency the
	// per-commit start-to-release latency distribution.
	TxnCommits    int64
	TxnAborts     int64
	TxnRetries    int64
	TxnRetryHist  stats.Summary
	CommitLatency stats.Summary
	// CDF is the empirical latency distribution (Figure 6).
	CDF []stats.Point
	// NIC aggregates fabric counters (whole run, including warmup).
	NIC NICTotals
	// Lock carries ALock-internal counters when the algorithm exposes
	// them (passes, reacquires, cohort mix).
	Lock core.Stats
	// Events is the number of simulator events processed.
	Events uint64
	// Svc carries the lock-service metrics of open-loop runs (offered
	// vs. goodput, shed counts, queue-wait/acquire-wait/hold
	// decomposition); nil for closed-loop runs.
	Svc *SvcStats `json:",omitempty"`
}

// Run executes one experiment.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.OpenLoop() {
		return runService(cfg)
	}

	threads := cfg.Nodes * cfg.ThreadsPerNode
	prov, err := locks.ByName(cfg.Algorithm, locks.Options{
		ALockConfig: core.Config{
			LocalBudget:  cfg.LocalBudget,
			RemoteBudget: cfg.RemoteBudget,
		},
		RW: locks.RWConfig{
			ReadBudget:  cfg.ReadBudget,
			WriteBudget: cfg.WriteBudget,
		},
		Threads: threads,
		// Deadlines need the abandonment-tolerant handoff protocol; every
		// other config keeps the paper-exact paths (bit-identical replay).
		Timed: cfg.AcquireTimeout > 0,
	})
	if err != nil {
		return Result{}, err
	}

	spec := workload.Spec{
		LocalityPct:      cfg.LocalityPct,
		CSWork:           cfg.CSWork,
		Think:            cfg.Think,
		WarmupNS:         cfg.WarmupNS,
		ZipfS:            cfg.ZipfS,
		BurstOnNS:        cfg.BurstOn.Nanoseconds(),
		BurstOffNS:       cfg.BurstOff.Nanoseconds(),
		ReadPct:          cfg.ReadPct,
		LeaseProb:        cfg.LeaseProb,
		LeaseHoldNS:      cfg.LeaseHold.Nanoseconds(),
		AcquireTimeoutNS: cfg.AcquireTimeout.Nanoseconds(),
		AbandonProb:      cfg.AbandonProb,
		AbandonHoldNS:    cfg.AbandonHold.Nanoseconds(),
		PairProb:         cfg.PairProb,
		TxnLocks:         cfg.TxnLocks,
		TxnOrder:         cfg.TxnOrder,
		TxnPolicy:        cfg.TxnPolicy,
		TxnBackoffNS:     cfg.TxnBackoff.Nanoseconds(),
		TxnRing:          cfg.TxnRing,
	}
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}

	// Transaction state shared across the run. The unordered deadlock
	// policies recover through real timeouts, so every participant of a
	// conflict cycle must be able to abandon its acquire: algorithms whose
	// deadlines are best-effort (filter, bakery block straight through
	// them) or whose waiters can commit while the grant still depends on
	// another holder (alock's cohort leaders) would deadlock — reject them
	// up front instead of wedging the simulation.
	txn := workload.TxnConfigOf(spec)
	if txn.NeedsTimedPath {
		if _, ok := prov.(locks.AbortableTimedProvider); !ok {
			return Result{}, fmt.Errorf(
				"harness: txn policy %q needs a fully abortable timed path, which algorithm %q lacks",
				cfg.TxnPolicy, cfg.Algorithm)
		}
	}
	var ages *workload.AgeTable
	if txn.NeedsAges {
		ages = workload.NewAgeTable()
	}

	var simOpts []sim.Option
	if cfg.Oracle {
		simOpts = append(simOpts, sim.WithOracle())
	}
	if cfg.EngineShards > 0 {
		workers := cfg.EngineShards
		// These features mutate cross-thread state (the shared op counter,
		// the wait-die age table) relying on the engine serializing threads;
		// under parallel windows that would race. The schedule is identical
		// at any width, so degrading to the sharded-serial merge scheduler
		// changes nothing but concurrency.
		if workers > 1 && (cfg.TargetOps > 0 || txn.NeedsAges) {
			workers = 1
		}
		simOpts = append(simOpts, sim.WithShards(workers))
	}
	e := sim.New(cfg.Nodes, cfg.WordsPerNode, cfg.Model, cfg.Seed, simOpts...)
	layout := locktable.RoundRobinHome
	if cfg.HomeSkewPct > 0 {
		layout = locktable.SkewedHome(0, cfg.HomeSkewPct)
	}
	table := locktable.NewWithLayout(e.Space(), cfg.Locks, layout)
	prov.Prepare(e.Space(), table.All())

	prng := sim.NewPartitionedRNG(cfg.Seed)

	// One fencing authority per run: grant order (hence every token) is
	// part of the deterministic schedule. It lives outside simulated
	// memory, so the token layer costs no simulated operations.
	ft := locks.NewFenceTable()
	results := make([]workload.ThreadResult, threads)
	// The shared op counter exists only for TargetOps early stop; it is
	// engine-serialized state, so don't even hand it out on runs that never
	// read it (those are the runs allowed to execute parallel windows).
	var opsDone int64
	var opsPtr *int64
	if cfg.TargetOps > 0 {
		opsPtr = &opsDone
	}
	idx := 0
	for n := 0; n < cfg.Nodes; n++ {
		for k := 0; k < cfg.ThreadsPerNode; k++ {
			slot := idx
			node := n
			idx++
			e.Spawn(node, func(ctx api.Ctx) {
				h := locks.TokenHandleFor(prov, ctx, ft)
				env := workload.Env{Ages: ages}
				if txn.NeedsBackoff {
					env.Backoff = prng.Stream(sim.SubsystemBackoff, slot)
				}
				results[slot] = workload.RunEnv(ctx, h, table, spec, env,
					opsPtr, cfg.TargetOps, e)
			})
		}
	}
	e.Run(cfg.WarmupNS + cfg.MeasureNS)

	res := Result{Config: cfg, Events: e.Events()}
	var hist, readHist, writeHist, timeoutHist stats.Hist
	var retryHist, commitHist stats.Hist
	var firstRec, lastRec int64
	for i := range results {
		r := &results[i]
		res.Ops += r.Ops
		res.ReadOps += r.ReadOps
		res.WriteOps += r.WriteOps
		res.Timeouts += r.Timeouts
		res.Abandons += r.Abandons
		res.FencedReleases += r.FencedReleases
		res.LateAcquires += r.LateAcquires
		res.PairOps += r.PairOps
		res.TxnCommits += r.TxnCommits
		res.TxnAborts += r.TxnAborts
		res.TxnRetries += r.TxnRetries
		hist.Merge(&r.Latency)
		readHist.Merge(&r.ReadLatency)
		writeHist.Merge(&r.WriteLatency)
		timeoutHist.Merge(&r.TimeoutLatency)
		retryHist.Merge(&r.TxnRetryHist)
		commitHist.Merge(&r.CommitLatency)
		if r.Ops > 0 {
			if firstRec == 0 || r.FirstRecNS < firstRec {
				firstRec = r.FirstRecNS
			}
			if r.LastRecNS > lastRec {
				lastRec = r.LastRecNS
			}
		}
	}
	res.SpanNS = recordedSpan(firstRec, lastRec, cfg.WarmupNS,
		cfg.TargetOps > 0 && res.Ops >= cfg.TargetOps)
	if res.Ops > 0 {
		res.Throughput = float64(res.Ops) / (float64(res.SpanNS) / 1e9)
	}
	res.Latency = hist.Summarize()
	res.ReadLatency = readHist.Summarize()
	res.WriteLatency = writeHist.Summarize()
	res.TimeoutLatency = timeoutHist.Summarize()
	res.TxnRetryHist = retryHist.Summarize()
	res.CommitLatency = commitHist.Summarize()
	res.CDF = hist.CDF()

	for n := 0; n < cfg.Nodes; n++ {
		st := e.NIC(n).Stats()
		res.NIC.Verbs += st.Verbs
		res.NIC.QPCMisses += st.QPCMisses
		res.NIC.Slowdowns += st.Slowdowns
		res.NIC.DistinctQPs += st.DistinctQPs
		if st.MaxBacklogNS > res.NIC.MaxBacklogNS {
			res.NIC.MaxBacklogNS = st.MaxBacklogNS
		}
	}
	if agg, ok := prov.(locks.StatsAggregator); ok {
		res.Lock = agg.AggregateStats()
	}
	return res, nil
}

// recordedSpan picks the span the throughput is computed over. A run that
// fills its whole measurement window is anchored at the warmup boundary:
// the threads were already in steady state, so the interval up to the first
// recorded completion is working time, not idle time. A run actually cut
// short by TargetOps (cutShort: the target was set AND reached — a target
// the window expired under leaves an ordinary full-window run) instead
// spans first to last recorded completion — it ends mid-flight, and
// anchoring at the warmup boundary would charge a late-starting first
// completion (long think time, a slow first operation) against a window
// the run never used.
func recordedSpan(firstRec, lastRec, warmupNS int64, cutShort bool) int64 {
	span := lastRec - warmupNS
	if cutShort && firstRec > 0 {
		span = lastRec - firstRec
	}
	if span <= 0 {
		span = 1
	}
	return span
}

// MustRun is Run that panics on error, for drivers whose configs are
// statically known to be valid.
func MustRun(cfg Config) Result {
	r, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return r
}
