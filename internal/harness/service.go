// service.go is the harness's open-loop run path: configs with
// ArrivalRate > 0 are executed by the lock-service layer
// (internal/cluster) instead of closed-loop workload threads. The two
// paths share Config, Result, the lock providers, the lock table and the
// engine; they differ in who issues operations — a fixed thread population
// looping as fast as the locks allow (closed loop) versus per-shard
// Poisson arrival generators offering a configured load to bounded worker
// pools (open loop).
package harness

import (
	"fmt"

	"alock/internal/cluster"
	"alock/internal/core"
	"alock/internal/locks"
	"alock/internal/locktable"
	"alock/internal/sim"
	"alock/internal/stats"
)

// SvcStats is the service-level outcome of an open-loop run, attached to
// Result.Svc. Counters are recorded (post-warmup-arrival) unless prefixed
// Total; the Total counters exist for the conservation invariant
// TotalOffered == TotalServed + TotalShed over the whole run.
type SvcStats struct {
	// Deployment shape, echoed for reports.
	Shards    int
	Placement string
	Policy    string
	QueueCap  int
	Clients   int64
	// Offered/Served/Shed/Timeouts are the recorded request outcomes
	// (Timeouts is the subset of Shed rejected at the acquire deadline
	// rather than the admission queue).
	Offered  int64
	Served   int64
	Shed     int64
	Timeouts int64
	// Whole-run conservation counters (warmup included, shutdown-swept).
	TotalOffered int64
	TotalServed  int64
	TotalShed    int64
	// OfferedOPS is the recorded arrival rate over the measurement
	// window; GoodputOPS is completed operations over the recorded span
	// (== Result.Throughput). Their gap is what admission control shed.
	OfferedOPS float64
	GoodputOPS float64
	// MaxQueueLen is the deepest any shard queue got.
	MaxQueueLen int
	// ShardServed is the per-shard recorded served count — the balance
	// view the placement and rebalance experiments read.
	ShardServed []int64
	// Latency decomposition over served requests: end-to-end latency
	// (Result.Latency) = QueueWait + AcquireWait + HoldTime per request.
	QueueWait   stats.Summary
	AcquireWait stats.Summary
	HoldTime    stats.Summary
}

// runService executes one open-loop lock-service run. cfg has defaults
// applied and passed Validate.
func runService(cfg Config) (Result, error) {
	workers := cfg.SvcShards * cfg.ThreadsPerNode
	prov, err := locks.ByName(cfg.Algorithm, locks.Options{
		ALockConfig: core.Config{
			LocalBudget:  cfg.LocalBudget,
			RemoteBudget: cfg.RemoteBudget,
		},
		RW: locks.RWConfig{
			ReadBudget:  cfg.ReadBudget,
			WriteBudget: cfg.WriteBudget,
		},
		Threads: workers,
		Timed:   cfg.AcquireTimeout > 0,
	})
	if err != nil {
		return Result{}, err
	}

	var simOpts []sim.Option
	if cfg.Oracle {
		simOpts = append(simOpts, sim.WithOracle())
	}
	if cfg.EngineShards > 0 {
		// No feature gating here: the service keeps every piece of
		// Go-side state shard-local by construction, so open-loop runs
		// are safe at any worker width.
		simOpts = append(simOpts, sim.WithShards(cfg.EngineShards))
	}
	e := sim.New(cfg.Nodes, cfg.WordsPerNode, cfg.Model, cfg.Seed, simOpts...)
	layout := locktable.RoundRobinHome
	if cfg.HomeSkewPct > 0 {
		layout = locktable.SkewedHome(0, cfg.HomeSkewPct)
	}
	table := locktable.NewWithLayout(e.Space(), cfg.Locks, layout)
	prov.Prepare(e.Space(), table.All())
	ft := locks.NewFenceTable()

	place, err := cluster.NewPlacement(cfg.SvcPlacement, cfg.SvcShards, table)
	if err != nil {
		return Result{}, err
	}
	weights := cluster.KeyWeights(cfg.Locks, cfg.ZipfS)
	if cfg.SvcRebalance {
		place = cluster.RebalanceHotKeys(place, weights, cfg.SvcShards)
	}
	policy, err := cluster.ParsePolicy(cfg.SvcAdmission)
	if err != nil {
		return Result{}, err
	}
	spec := cluster.Spec{
		Shards:          cfg.SvcShards,
		WorkersPerShard: cfg.ThreadsPerNode,
		Clients:         cfg.Clients,
		RateOPS:         cfg.ArrivalRate,
		QueueCap:        cfg.SvcQueueCap,
		Policy:          policy,
		ReadPct:         cfg.ReadPct,
		CSWorkNS:        cfg.CSWork.Nanoseconds(),
		TimeoutNS:       cfg.AcquireTimeout.Nanoseconds(),
		WarmupNS:        cfg.WarmupNS,
		BurstOnNS:       cfg.BurstOn.Nanoseconds(),
		BurstOffNS:      cfg.BurstOff.Nanoseconds(),
	}
	cl, err := cluster.Install(e, table, prov, ft, place, weights, spec)
	if err != nil {
		return Result{}, err
	}
	e.Run(cfg.WarmupNS + cfg.MeasureNS)
	m := cl.Metrics()
	if m.Offered != m.Served+m.Shed {
		// The conservation invariant is structural; failing it means the
		// service lost or double-counted a request.
		return Result{}, fmt.Errorf("harness: service conservation violated: offered %d != served %d + shed %d",
			m.Offered, m.Served, m.Shed)
	}

	res := Result{Config: cfg, Events: e.Events()}
	res.Ops = m.RecServed
	res.ReadOps = m.RecReads
	res.WriteOps = m.RecWrites
	res.Timeouts = m.RecTimeouts
	res.SpanNS = recordedSpan(m.FirstRecNS, m.LastRecNS, cfg.WarmupNS, false)
	if res.Ops > 0 {
		res.Throughput = float64(res.Ops) / (float64(res.SpanNS) / 1e9)
	}
	res.Latency = m.E2E.Summarize()
	res.ReadLatency = m.ReadE2E.Summarize()
	res.WriteLatency = m.WriteE2E.Summarize()
	res.CDF = m.E2E.CDF()

	for n := 0; n < cfg.Nodes; n++ {
		st := e.NIC(n).Stats()
		res.NIC.Verbs += st.Verbs
		res.NIC.QPCMisses += st.QPCMisses
		res.NIC.Slowdowns += st.Slowdowns
		res.NIC.DistinctQPs += st.DistinctQPs
		if st.MaxBacklogNS > res.NIC.MaxBacklogNS {
			res.NIC.MaxBacklogNS = st.MaxBacklogNS
		}
	}
	if agg, ok := prov.(locks.StatsAggregator); ok {
		res.Lock = agg.AggregateStats()
	}

	res.Svc = &SvcStats{
		Shards:       cfg.SvcShards,
		Placement:    place.Name(),
		Policy:       policy.String(),
		QueueCap:     cfg.SvcQueueCap,
		Clients:      cfg.Clients,
		Offered:      m.RecOffered,
		Served:       m.RecServed,
		Shed:         m.RecShed,
		Timeouts:     m.RecTimeouts,
		TotalOffered: m.Offered,
		TotalServed:  m.Served,
		TotalShed:    m.Shed,
		// Arrivals are recorded over [WarmupNS, WarmupNS+MeasureNS), so
		// the measurement window is the exact offered-rate denominator.
		OfferedOPS:  float64(m.RecOffered) / (float64(cfg.MeasureNS) / 1e9),
		GoodputOPS:  res.Throughput,
		MaxQueueLen: m.MaxQueueLen,
		ShardServed: m.ShardServed,
		QueueWait:   m.QueueWait.Summarize(),
		AcquireWait: m.AcquireWait.Summarize(),
		HoldTime:    m.Hold.Summarize(),
	}
	return res, nil
}
