package harness

import (
	"strings"
	"testing"
	"time"

	"alock/internal/locks"
)

// diningConfig is a tiny dining-philosophers transaction run: every
// thread's operation takes two neighboring forks on the ring.
func diningConfig(algo, policy string) Config {
	c := Config{
		Algorithm:      algo,
		Nodes:          2,
		ThreadsPerNode: 3,
		Locks:          6,
		LocalityPct:    90,
		WarmupNS:       30_000,
		MeasureNS:      400_000,
		TxnLocks:       2,
		TxnRing:        true,
		TxnPolicy:      policy,
		AcquireTimeout: 15 * time.Microsecond,
		Seed:           1,
	}
	if policy == "timeout-backoff" {
		c.TxnBackoff = 5 * time.Microsecond
	}
	return c
}

// abortableAlgos have fully abortable timed paths (the unordered policies'
// requirement); blockingOnly can run transactions only under the ordered
// policy.
var (
	abortableAlgos = []string{"mcs", "rw-budget", "rw-queue", "rw-wpref", "spinlock"}
	blockingOnly   = []string{"alock", "alock-nobudget", "alock-symmetric", "filter", "bakery"}
)

// TestDiningCompletesUnderEveryPolicy: the dining ring — the canonical
// deadlock construction — runs to completion with commits under every
// policy for every algorithm the policy supports, within the horizon (a
// livelock or deadlock would record nothing, or panic the simulator).
func TestDiningCompletesUnderEveryPolicy(t *testing.T) {
	for _, policy := range []string{"ordered", "timeout-backoff", "wait-die"} {
		algos := abortableAlgos
		if policy == "ordered" {
			algos = append(append([]string{}, abortableAlgos...), blockingOnly...)
		}
		for _, algo := range algos {
			t.Run(policy+"/"+algo, func(t *testing.T) {
				r, err := Run(diningConfig(algo, policy))
				if err != nil {
					t.Fatal(err)
				}
				if r.TxnCommits == 0 {
					t.Errorf("%s/%s: no transaction committed within the horizon", policy, algo)
				}
				if r.Ops != r.TxnCommits {
					t.Errorf("%s/%s: Ops %d != TxnCommits %d (each committed txn is one op)",
						policy, algo, r.Ops, r.TxnCommits)
				}
			})
		}
	}
}

// TestUnorderedPoliciesRejectNonAbortableAlgorithms: algorithms that
// cannot always abandon a timed acquire (blocking fallback, committed
// cohort leaders) would genuinely deadlock inside a conflict cycle, so the
// harness must refuse to run them rather than wedge the simulation.
func TestUnorderedPoliciesRejectNonAbortableAlgorithms(t *testing.T) {
	for _, algo := range blockingOnly {
		for _, policy := range []string{"timeout-backoff", "wait-die"} {
			_, err := Run(diningConfig(algo, policy))
			if err == nil || !strings.Contains(err.Error(), "abortable") {
				t.Errorf("%s under %s: want abortable-timed-path rejection, got %v", algo, policy, err)
			}
		}
	}
	// The marker set matches expectations: exactly the abortable five.
	for _, algo := range abortableAlgos {
		prov, err := locks.ByName(algo, locks.Options{Threads: 4, Timed: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := prov.(locks.AbortableTimedProvider); !ok {
			t.Errorf("%s lost its AbortableTimedProvider marker", algo)
		}
	}
}

// TestTxnConfigValidation: harness-level transaction knob validation
// surfaces as errors, not panics.
func TestTxnConfigValidation(t *testing.T) {
	bad := diningConfig("mcs", "wait-die")
	bad.TxnLocks = 10
	bad.Locks = 4 // k exceeds the table
	if _, err := Run(bad); err == nil {
		t.Error("TxnLocks > Locks accepted")
	}
	bad = diningConfig("mcs", "wait-die")
	bad.AcquireTimeout = 0 // wait-die needs the wait quantum
	if _, err := Run(bad); err == nil {
		t.Error("wait-die without AcquireTimeout accepted")
	}
	bad = diningConfig("mcs", "nonsense")
	if _, err := Run(bad); err == nil {
		t.Error("unknown policy accepted")
	}
}
