// qpthrash.go implements the QP-thrashing experiment suggested by
// Section 2: commodity RNICs cache only ~450 QP contexts, and systems that
// use loopback maintain a QP from every thread to its own node on top of
// the cross-node connections — so ALock "limits QP thrashing by removing
// 1/n QPs from the system". This driver sweeps the QPC cache capacity
// around the cluster's QP working set and reports each algorithm's miss
// rate and throughput. It is an extension: the paper argues the effect,
// this measures it under the model.
package harness

import (
	"alock/internal/model"
)

// QPThrashRow is one (cache capacity, algorithm) measurement.
type QPThrashRow struct {
	CacheCap   int
	Algorithm  string
	Throughput float64
	// MissRate is QPC misses per verb across all NICs.
	MissRate float64
	// DistinctQPs is the cluster-wide QP working set the algorithm
	// created; ALock's should be smaller by the loopback connections
	// (one per thread) the competitors maintain.
	DistinctQPs int64
}

// QPThrashing sweeps the QPC cache capacity for ALock and the loopback
// competitors on the largest cluster. The cross-node QP working set of a
// 16-node x 8-thread cluster is ~232 QPs per NIC (8*15 outgoing + 15*8
// incoming — ALock creates no loopback QPs); the competitors add 8
// loopback QPs per node and touch them constantly.
func QPThrashing(s Scale, run RunMany) []QPThrashRow {
	warm, meas := s.windows()
	threads := 8
	if s.Quick {
		threads = 4
	}
	caps := []int{64, 128, 256, 450}
	if s.Quick {
		caps = []int{64, 256}
	}
	if s.TestTiny {
		threads = 2
		caps = []int{16}
	}
	_ = meas
	var cfgs []Config
	var rows []QPThrashRow
	for _, cacheCap := range caps {
		for _, algo := range EvalAlgorithms {
			m := model.CX3()
			m.QPCCacheCap = cacheCap
			// Every algorithm performs the same number of operations (the
			// horizon is effectively unbounded): distinct-QP counts are
			// then comparable across algorithms rather than confounded by
			// how far each got before a time cutoff.
			cfgs = append(cfgs, Config{
				Algorithm:      algo,
				Nodes:          s.bigCluster(),
				ThreadsPerNode: threads,
				Locks:          1000,
				LocalityPct:    90,
				Model:          m,
				WarmupNS:       warm,
				MeasureNS:      1 << 40,
				TargetOps:      s.targetOps() * 3,
				Seed:           s.seed(),
			})
			rows = append(rows, QPThrashRow{CacheCap: cacheCap, Algorithm: algo})
		}
	}
	for i, r := range run(cfgs) {
		missRate := 0.0
		if r.NIC.Verbs > 0 {
			missRate = float64(r.NIC.QPCMisses) / float64(r.NIC.Verbs)
		}
		rows[i].Throughput = r.Throughput
		rows[i].MissRate = missRate
		rows[i].DistinctQPs = r.NIC.DistinctQPs
	}
	return rows
}
