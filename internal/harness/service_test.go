package harness

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// svcBase is a small but non-trivial open-loop config: 3 nodes, 2 workers
// per shard, offered slightly over capacity so admission control engages.
func svcBase() Config {
	return Config{
		Algorithm:      "alock",
		Nodes:          3,
		ThreadsPerNode: 2,
		Locks:          100,
		ArrivalRate:    1_800_000,
		WarmupNS:       50_000,
		MeasureNS:      400_000,
		Seed:           7,
	}
}

// TestServiceConservation is the admission-control invariant: every
// offered arrival is either served or shed (queue overflow, deadline
// timeout, or still queued at shutdown) — nothing is lost or counted
// twice. Exercised with and without acquire deadlines.
func TestServiceConservation(t *testing.T) {
	for _, timeout := range []time.Duration{0, 3 * time.Microsecond} {
		cfg := svcBase()
		cfg.AcquireTimeout = timeout
		cfg.ZipfS = 1.5 // hot keys make acquire waits (and timeouts) real
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := res.Svc
		if s == nil {
			t.Fatal("open-loop run returned no Svc stats")
		}
		if s.TotalOffered != s.TotalServed+s.TotalShed {
			t.Fatalf("timeout=%v: offered %d != served %d + shed %d",
				timeout, s.TotalOffered, s.TotalServed, s.TotalShed)
		}
		if s.TotalOffered == 0 || s.TotalServed == 0 {
			t.Fatalf("timeout=%v: degenerate run (offered=%d served=%d)",
				timeout, s.TotalOffered, s.TotalServed)
		}
		if timeout > 0 && s.Timeouts == 0 {
			t.Error("hot-key run with a 3us deadline recorded no timeouts")
		}
		if timeout == 0 && s.Timeouts != 0 {
			t.Errorf("deadline-free run recorded %d timeouts", s.Timeouts)
		}
	}
}

// TestServiceDecomposition: the queue-wait / acquire-wait / hold split
// must cover every served request and sum to the end-to-end latency.
func TestServiceDecomposition(t *testing.T) {
	cfg := svcBase()
	cfg.CSWork = 500 * time.Nanosecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Svc
	for name, count := range map[string]int64{
		"queue-wait":   s.QueueWait.Count,
		"acquire-wait": s.AcquireWait.Count,
		"hold":         s.HoldTime.Count,
		"e2e":          res.Latency.Count,
	} {
		if count != s.Served {
			t.Errorf("%s histogram covers %d of %d served requests", name, count, s.Served)
		}
	}
	// Means add exactly: each request's e2e is the sum of its three parts.
	sum := s.QueueWait.MeanNS + s.AcquireWait.MeanNS + s.HoldTime.MeanNS
	if e2e := res.Latency.MeanNS; sum < e2e*0.999 || sum > e2e*1.001 {
		t.Errorf("decomposition means %.1f != e2e mean %.1f", sum, e2e)
	}
	if s.HoldTime.MinNS < cfg.CSWork.Nanoseconds() {
		t.Errorf("hold min %dns below the %v critical section", s.HoldTime.MinNS, cfg.CSWork)
	}
	if res.Ops != s.Served || res.Throughput != s.GoodputOPS {
		t.Error("Result.Ops/Throughput must mirror served count and goodput")
	}
}

// TestServiceBitIdentity is the dedicated determinism diff for the svc
// path: one config, replayed across sweep parallelism 1 vs 8 and engine
// shards 1 vs 4, must produce byte-for-byte identical results. (The
// scenario oracle test covers the whole svc/ family; this pins the exact
// widths the CI steps drive.)
func TestServiceBitIdentity(t *testing.T) {
	cfg := svcBase()
	cfg.ZipfS = 1.5
	cfg.BurstOn = 60 * time.Microsecond
	cfg.BurstOff = 40 * time.Microsecond
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		c := cfg
		c.EngineShards = shards
		got, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		got.Config.EngineShards = 0
		if !reflect.DeepEqual(base, got) {
			t.Errorf("EngineShards=%d diverged from serial run", shards)
		}
	}
	o := cfg
	o.Oracle = true
	got, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	got.Config.Oracle = false
	if !reflect.DeepEqual(base, got) {
		t.Error("oracle engine diverged from serial run")
	}
}

// TestServiceValidation covers the open-loop config gates, including the
// bugfix: TargetOps with an open-loop run must be a clear error, not a
// silent fallback.
func TestServiceValidation(t *testing.T) {
	reject := func(name, wantSub string, mut func(*Config)) {
		t.Helper()
		cfg := svcBase()
		mut(&cfg)
		_, err := Run(cfg)
		if err == nil {
			t.Errorf("%s: accepted", name)
		} else if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %q does not mention %q", name, err, wantSub)
		}
	}
	reject("target-ops", "TargetOps", func(c *Config) { c.TargetOps = 1000 })
	reject("think", "ArrivalRate", func(c *Config) { c.Think = time.Microsecond })
	reject("txn", "plain lock/unlock", func(c *Config) { c.TxnLocks = 2 })
	reject("lease", "plain lock/unlock", func(c *Config) {
		c.LeaseProb = 0.1
		c.LeaseHold = time.Microsecond
	})
	reject("bad-placement", "placement", func(c *Config) { c.SvcPlacement = "nope" })
	reject("bad-admission", "admission", func(c *Config) { c.SvcAdmission = "lifo" })
	reject("svc-knobs-closed-loop", "ArrivalRate", func(c *Config) {
		c.ArrivalRate = 0
		c.SvcShards = 2
	})
	// The valid combinations still pass.
	cfg := svcBase()
	cfg.SvcPlacement = "home"
	cfg.SvcAdmission = "drop-head"
	cfg.SvcRebalance = true
	cfg.ReadPct = 50
	if _, err := Run(cfg); err != nil {
		t.Fatalf("valid svc config rejected: %v", err)
	}
}

// TestServiceDefaults: open-loop defaults fill in, and the defaults echo
// back through Result.Config.
func TestServiceDefaults(t *testing.T) {
	res, err := Run(svcBase())
	if err != nil {
		t.Fatal(err)
	}
	c := res.Config
	if c.SvcShards != c.Nodes || c.SvcQueueCap != 64 || c.Clients != 1_000_000 {
		t.Errorf("defaults: shards=%d cap=%d clients=%d", c.SvcShards, c.SvcQueueCap, c.Clients)
	}
	if res.Svc.Placement != "hash" || res.Svc.Policy != "drop-tail" {
		t.Errorf("defaults: placement=%q policy=%q", res.Svc.Placement, res.Svc.Policy)
	}
	if len(res.Svc.ShardServed) != c.SvcShards {
		t.Errorf("shard balance has %d entries for %d shards", len(res.Svc.ShardServed), c.SvcShards)
	}
}
