// Package model holds the cost model for the simulated RDMA cluster.
//
// All latency parameters are in nanoseconds. The defaults (CX3) are
// calibrated to the paper's testbed — Mellanox ConnectX-3 RNICs on CloudLab
// machines — using published measurements: one-sided verb latency on the
// order of 1.5–2 µs (Kalia et al., ATC'16 [16]), shared-memory operations
// roughly two to three orders of magnitude faster (§1: "RDMA is still at
// least an order of magnitude slower than shared memory operations"),
// commodity RNIC message rates degrading past ~450 cached QP connections
// (Wang et al., ICNP'21 [31]), and loopback traffic draining PCIe bandwidth
// under load (§2, Figure 1).
//
// The model deliberately exposes every knob the experiments depend on so
// that DESIGN.md's substitutions are auditable: reproducing a figure is a
// question of shape under this model, not of matching the authors' absolute
// numbers.
package model

import (
	"errors"
	"fmt"
)

// Params is the full set of cost-model parameters for one simulated cluster.
type Params struct {
	// --- Local (shared-memory) operation costs, in ns ---

	// LocalReadNS is the cost of an 8-byte shared-memory load.
	LocalReadNS int64
	// LocalWriteNS is the cost of an 8-byte shared-memory store.
	LocalWriteNS int64
	// LocalCASNS is the cost of a shared-memory compare-and-swap.
	LocalCASNS int64
	// FenceNS is the cost of an atomic thread fence (§5.2 requires fences
	// after locking and before unlocking).
	FenceNS int64

	// --- Spin-loop polling (event coarsening) ---

	// SpinPollMinNS is the delay of the first re-poll in a spin loop.
	SpinPollMinNS int64
	// SpinPollMaxNS caps the exponential poll back-off. Keeping this small
	// relative to verb latency preserves reactivity while bounding the
	// simulator's event count.
	SpinPollMaxNS int64

	// --- RDMA fabric ---

	// RemoteWireNS is the one-way wire + DMA latency between two distinct
	// nodes (a one-sided verb pays it twice: request and completion).
	RemoteWireNS int64
	// LoopbackWireNS is the one-way PCIe-only latency of the loopback path
	// a thread uses to reach RDMA memory on its own machine (§1, [36]).
	LoopbackWireNS int64

	// --- RNIC model ---

	// NICServiceNS is the RNIC occupancy per verb (TX or RX side). Its
	// inverse is the NIC's peak verb rate.
	NICServiceNS int64

	// Congestion is modeled as load-dependent service inflation, with two
	// regimes matching Section 2's analysis:
	//
	// Loopback verbs cross the host PCIe bus twice and compete with every
	// other DMA on the machine, so they degrade as soon as the NIC has any
	// meaningful backlog ("the loopback traffic drains the PCIe bandwidth,
	// causing accumulation in the RNIC's RX buffer"). LoopbackRXThreshold
	// is the backlog (in verbs) past which a loopback verb's service time
	// inflates by LoopbackAlpha per excess verb, capped at LoopbackCap.
	LoopbackRXThreshold int
	LoopbackAlpha       float64
	LoopbackCap         float64

	// Network verbs only suffer once the RX buffer genuinely overflows —
	// a much deeper backlog, reachable when many nodes converge on one
	// responder (the high-contention collapse of Figure 5).
	RemoteRXThreshold int
	RemoteAlpha       float64
	RemoteCap         float64

	// --- QP context caching (§2, [21][31]) ---

	// QPCCacheCap is the number of QP contexts the RNIC cache holds before
	// thrashing. Wang et al. [31] measure degradation past ~450.
	QPCCacheCap int
	// QPCMissPenaltyNS is the extra service time of a verb whose QP context
	// must be fetched from host memory over PCIe.
	QPCMissPenaltyNS int64

	// --- Failure injection (extension; see DESIGN.md) ---

	// JitterProb is the per-verb probability of a transient fabric delay
	// spike (PFC pause, retransmission, firmware hiccup). Zero disables.
	JitterProb float64
	// JitterNS is the extra wire latency of a jittered verb.
	JitterNS int64

	// --- Remote RMW tearing (Table 1) ---

	// TornRCAS, when true, executes every remote CAS as a read followed by
	// a write separated by TornGapNS, which is how a remote RMW appears to
	// threads performing local accesses (§1, §4). Remote operations remain
	// atomic with each other (the responder NIC serializes them); only
	// cross-class atomicity is lost, exactly as in Table 1.
	TornRCAS bool
	// TornGapNS is the responder-side window between the read and write
	// halves of a torn remote CAS.
	TornGapNS int64
}

// CX3 returns the default parameters calibrated to the paper's ConnectX-3
// testbed. These are the parameters used by every experiment unless a
// figure explicitly overrides them.
func CX3() Params {
	return Params{
		LocalReadNS:         10,
		LocalWriteNS:        10,
		LocalCASNS:          45,
		FenceNS:             16,
		SpinPollMinNS:       12,
		SpinPollMaxNS:       420,
		RemoteWireNS:        780,
		LoopbackWireNS:      260,
		NICServiceNS:        130,
		LoopbackRXThreshold: 2,
		LoopbackAlpha:       0.25,
		LoopbackCap:         8.0,
		RemoteRXThreshold:   40,
		RemoteAlpha:         0.03,
		RemoteCap:           4.0,
		QPCCacheCap:         450,
		QPCMissPenaltyNS:    850,
		TornRCAS:            true,
		TornGapNS:           180,
	}
}

// Uniform returns a degenerate model in which every operation — local or
// remote — costs exactly ns nanoseconds and there is no congestion, QPC
// thrashing, or tearing. It exists for engine and algorithm unit tests
// whose assertions must not depend on the performance model.
func Uniform(ns int64) Params {
	return Params{
		LocalReadNS:         ns,
		LocalWriteNS:        ns,
		LocalCASNS:          ns,
		FenceNS:             ns,
		SpinPollMinNS:       ns,
		SpinPollMaxNS:       ns,
		RemoteWireNS:        ns,
		LoopbackWireNS:      ns,
		NICServiceNS:        ns,
		LoopbackRXThreshold: 1 << 30,
		LoopbackAlpha:       0,
		LoopbackCap:         1,
		RemoteRXThreshold:   1 << 30,
		RemoteAlpha:         0,
		RemoteCap:           1,
		QPCCacheCap:         1 << 20,
		QPCMissPenaltyNS:    0,
		TornRCAS:            false,
		TornGapNS:           0,
	}
}

// Validate checks internal consistency. Every experiment validates its
// model before running so a bad sweep fails fast rather than producing
// quietly meaningless curves.
func (p Params) Validate() error {
	type check struct {
		ok  bool
		msg string
	}
	checks := []check{
		{p.LocalReadNS > 0, "LocalReadNS must be positive"},
		{p.LocalWriteNS > 0, "LocalWriteNS must be positive"},
		{p.LocalCASNS > 0, "LocalCASNS must be positive"},
		{p.FenceNS >= 0, "FenceNS must be non-negative"},
		{p.SpinPollMinNS > 0, "SpinPollMinNS must be positive"},
		{p.SpinPollMaxNS >= p.SpinPollMinNS, "SpinPollMaxNS must be >= SpinPollMinNS"},
		{p.RemoteWireNS > 0, "RemoteWireNS must be positive"},
		{p.LoopbackWireNS > 0, "LoopbackWireNS must be positive"},
		{p.NICServiceNS > 0, "NICServiceNS must be positive"},
		{p.LoopbackRXThreshold >= 0, "LoopbackRXThreshold must be non-negative"},
		{p.LoopbackAlpha >= 0, "LoopbackAlpha must be non-negative"},
		{p.LoopbackCap >= 1, "LoopbackCap must be >= 1"},
		{p.RemoteRXThreshold >= 0, "RemoteRXThreshold must be non-negative"},
		{p.RemoteAlpha >= 0, "RemoteAlpha must be non-negative"},
		{p.RemoteCap >= 1, "RemoteCap must be >= 1"},
		{p.QPCCacheCap > 0, "QPCCacheCap must be positive"},
		{p.QPCMissPenaltyNS >= 0, "QPCMissPenaltyNS must be non-negative"},
		{p.JitterProb >= 0 && p.JitterProb <= 1, "JitterProb must be in [0,1]"},
		{p.JitterProb == 0 || p.JitterNS > 0, "JitterNS must be positive when JitterProb is set"},
		{!p.TornRCAS || p.TornGapNS > 0, "TornGapNS must be positive when TornRCAS is set"},
	}
	var errs []error
	for _, c := range checks {
		if !c.ok {
			errs = append(errs, errors.New(c.msg))
		}
	}
	return errors.Join(errs...)
}

// String gives a compact one-line rendering for experiment logs.
func (p Params) String() string {
	return fmt.Sprintf(
		"model{local r/w/cas=%d/%d/%dns wire=%dns loop=%dns nic=%dns qpc=%d/%dns torn=%v}",
		p.LocalReadNS, p.LocalWriteNS, p.LocalCASNS,
		p.RemoteWireNS, p.LoopbackWireNS, p.NICServiceNS,
		p.QPCCacheCap, p.QPCMissPenaltyNS, p.TornRCAS)
}
