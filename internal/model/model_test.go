package model

import (
	"strings"
	"testing"
)

func TestCX3Valid(t *testing.T) {
	if err := CX3().Validate(); err != nil {
		t.Fatalf("CX3 default params invalid: %v", err)
	}
}

func TestUniformValid(t *testing.T) {
	if err := Uniform(10).Validate(); err != nil {
		t.Fatalf("Uniform(10) invalid: %v", err)
	}
}

func TestCX3Shape(t *testing.T) {
	p := CX3()
	// The paper's premise (§1): RDMA is at least an order of magnitude
	// slower than shared memory. A full verb is >= 2*wire + 2*service.
	verb := 2*p.RemoteWireNS + 2*p.NICServiceNS
	if verb < 10*p.LocalCASNS {
		t.Errorf("remote verb (%dns) not >=10x local CAS (%dns)", verb, p.LocalCASNS)
	}
	// Loopback is cheaper than the full network path but still far from
	// local memory speed.
	if p.LoopbackWireNS >= p.RemoteWireNS {
		t.Error("loopback wire should be cheaper than remote wire")
	}
	if p.LoopbackWireNS < 10*p.LocalReadNS {
		t.Error("loopback should still be much slower than a local read")
	}
	// QPC cache defaults to the ~450-connection knee from Wang et al. [31].
	if p.QPCCacheCap != 450 {
		t.Errorf("QPCCacheCap = %d, want 450", p.QPCCacheCap)
	}
	if !p.TornRCAS {
		t.Error("CX3 must model remote-RMW tearing by default (Table 1)")
	}
}

func TestValidateCatchesEachField(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Params)
		want string
	}{
		{"read", func(p *Params) { p.LocalReadNS = 0 }, "LocalReadNS"},
		{"write", func(p *Params) { p.LocalWriteNS = -1 }, "LocalWriteNS"},
		{"cas", func(p *Params) { p.LocalCASNS = 0 }, "LocalCASNS"},
		{"fence", func(p *Params) { p.FenceNS = -1 }, "FenceNS"},
		{"spinmin", func(p *Params) { p.SpinPollMinNS = 0 }, "SpinPollMinNS"},
		{"spinmax", func(p *Params) { p.SpinPollMaxNS = p.SpinPollMinNS - 1 }, "SpinPollMaxNS"},
		{"wire", func(p *Params) { p.RemoteWireNS = 0 }, "RemoteWireNS"},
		{"loop", func(p *Params) { p.LoopbackWireNS = 0 }, "LoopbackWireNS"},
		{"nic", func(p *Params) { p.NICServiceNS = 0 }, "NICServiceNS"},
		{"lbrx", func(p *Params) { p.LoopbackRXThreshold = -1 }, "LoopbackRXThreshold"},
		{"lbalpha", func(p *Params) { p.LoopbackAlpha = -0.1 }, "LoopbackAlpha"},
		{"lbcap", func(p *Params) { p.LoopbackCap = 0.5 }, "LoopbackCap"},
		{"rrx", func(p *Params) { p.RemoteRXThreshold = -1 }, "RemoteRXThreshold"},
		{"ralpha", func(p *Params) { p.RemoteAlpha = -0.1 }, "RemoteAlpha"},
		{"rcap", func(p *Params) { p.RemoteCap = 0.5 }, "RemoteCap"},
		{"qpccap", func(p *Params) { p.QPCCacheCap = 0 }, "QPCCacheCap"},
		{"qpcmiss", func(p *Params) { p.QPCMissPenaltyNS = -1 }, "QPCMissPenaltyNS"},
		{"torngap", func(p *Params) { p.TornRCAS = true; p.TornGapNS = 0 }, "TornGapNS"},
	}
	for _, m := range mutations {
		p := CX3()
		m.mut(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted bad params", m.name)
			continue
		}
		if !strings.Contains(err.Error(), m.want) {
			t.Errorf("%s: error %q does not mention %s", m.name, err, m.want)
		}
	}
}

func TestValidateJoinsMultipleErrors(t *testing.T) {
	p := CX3()
	p.LocalReadNS = 0
	p.NICServiceNS = 0
	err := p.Validate()
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "LocalReadNS") || !strings.Contains(err.Error(), "NICServiceNS") {
		t.Errorf("joined error missing a field: %v", err)
	}
}

func TestString(t *testing.T) {
	s := CX3().String()
	for _, frag := range []string{"model{", "torn=true", "nic="} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}
