package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"

	"alock/internal/api"
	"alock/internal/model"
)

// TestEventQueueMatchesOracle drives 10k random (at, seq) schedules through
// the typed 4-ary heap and the container/heap oracle with interleaved pops
// and asserts identical pop order. (at, seq) is a total order, so any
// divergence is a queue bug, not tie-break slack.
func TestEventQueueMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	var q eventQueue
	var o eventHeap
	var seq uint64
	pending := 0
	pushed := 0
	for pushed < 10_000 || pending > 0 {
		// Bias toward pushes until the target, then drain.
		push := pushed < 10_000 && (pending == 0 || rng.Intn(3) != 0)
		if push {
			seq++
			// Clustered times force plenty of exact ties broken by seq.
			ev := event{at: int64(rng.Intn(64)), seq: seq}
			q.push(ev)
			heap.Push(&o, ev)
			pushed++
			pending++
			continue
		}
		got, want := q.pop(), heap.Pop(&o).(event)
		if got != want {
			t.Fatalf("pop %d diverged: typed (at=%d seq=%d), oracle (at=%d seq=%d)",
				pushed-pending, got.at, got.seq, want.at, want.seq)
		}
		pending--
	}
	if q.len() != 0 || o.Len() != 0 {
		t.Fatalf("queues not drained: typed %d, oracle %d", q.len(), o.Len())
	}
}

// TestEventQueueAscendingPops pins the heap property directly: any push
// mixture pops in nondecreasing (at, seq) order.
func TestEventQueueAscendingPops(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q eventQueue
	for i := 0; i < 4096; i++ {
		q.push(event{at: int64(rng.Intn(1000)), seq: uint64(i + 1)})
	}
	prev := event{at: -1}
	for q.len() > 0 {
		ev := q.pop()
		if eventLess(ev, prev) {
			t.Fatalf("pop order regressed: (at=%d seq=%d) after (at=%d seq=%d)",
				ev.at, ev.seq, prev.at, prev.seq)
		}
		prev = ev
	}
}

// contendedEngine builds a 2-node, 4-thread engine whose threads hammer one
// word with remote RMW retry loops — an event-dense schedule with constant
// cross-thread handoffs.
func contendedEngine(opts ...Option) (*Engine, func() uint64) {
	e := New(2, 1024, model.CX3(), 99, opts...)
	w := e.Space().AllocLine(0)
	for i := 0; i < 4; i++ {
		node := i % 2
		e.Spawn(node, func(ctx api.Ctx) {
			for !ctx.Stopped() {
				for {
					old := ctx.RRead(w)
					if ctx.RCAS(w, old, old+1) == old {
						break
					}
				}
				ctx.Work(50 * time.Nanosecond)
			}
		})
	}
	read := func() uint64 {
		var v uint64
		e.Spawn(0, func(ctx api.Ctx) { v = ctx.Read(w) })
		e.Run(1 << 41)
		return v
	}
	return e, read
}

// TestDirectRunMatchesOracleEngine runs the same contended workload on the
// production engine (typed heap, direct handoff) and the oracle engine
// (container/heap, mediated scheduler) and asserts bit-identical outcomes:
// same final clock, same event count, same memory effects.
func TestDirectRunMatchesOracleEngine(t *testing.T) {
	typed, readTyped := contendedEngine()
	oracle, readOracle := contendedEngine(WithOracle())
	typed.Run(300_000)
	oracle.Run(300_000)
	if typed.Now() != oracle.Now() {
		t.Errorf("final clock diverged: typed %d, oracle %d", typed.Now(), oracle.Now())
	}
	if typed.Events() != oracle.Events() {
		t.Errorf("event count diverged: typed %d, oracle %d", typed.Events(), oracle.Events())
	}
	if g, w := readTyped(), readOracle(); g != w {
		t.Errorf("memory effects diverged: typed %d, oracle %d", g, w)
	}
}

// TestMaxEventsGuardDirect is TestMaxEventsGuard's cross-thread variant:
// the budget trip happens on a thread goroutine mid-handoff, and the panic
// must still surface on the Run caller's goroutine.
func TestMaxEventsGuardDirect(t *testing.T) {
	e, _ := contendedEngine(WithMaxEvents(500))
	defer func() {
		if recover() == nil {
			t.Fatal("runaway contended simulation did not panic on the caller")
		}
	}()
	e.Run(1 << 40)
}
