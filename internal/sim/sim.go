// Package sim is a deterministic discrete-event simulation engine for the
// RDMA cluster.
//
// Simulated threads are ordinary goroutines running ordinary blocking Go
// code against the api.Ctx interface, but exactly one of them executes at a
// time: every memory operation suspends the thread until its completion
// event fires on the virtual clock, and the scheduler hands control back in
// strict (time, sequence) order. Memory effects therefore apply in a single
// global order — the engine is sequentially consistent at event granularity,
// which is the memory model the paper's algorithms require once the
// prescribed fences are in place (§5.2).
//
// Determinism: given the same seed, workload and model, every run produces
// bit-identical schedules, throughputs and latencies. Ties on the virtual
// clock are broken by event sequence number; per-thread RNGs are derived
// from the engine seed; no host-machine timing leaks in.
//
// Hot path: events live in a typed 4-ary min-heap (eventq.go) — no
// interface boxing, zero allocations per event in steady state — and Run
// transfers control directly from the blocking thread to the next event's
// thread (one channel handoff per event; a thread whose own wake-up is next
// keeps running with no handoff at all). The step primitives
// (ProcessNextEvent/Step) keep the scheduler-mediated two-handoff protocol
// so callers can interleave logic between events. WithOracle selects the
// original container/heap queue plus the mediated Run loop as a bit-exact
// reference: event order is a total order on (at, seq), so both engines
// replay identical schedules, and CI diffs them on every scenario family.
//
// Costs come from internal/model, and every remote operation is routed
// through the requester's and responder's internal/nic instances, which is
// where loopback congestion and QP thrashing arise.
//
// Stop/horizon contract: threads observe Stopped() == true as soon as the
// virtual clock reaches the horizon armed by SetHorizon/Run, or immediately
// after RequestStop. SetHorizon may be re-issued at any point to shorten or
// extend the horizon — extending it un-stops a run that had merely crossed
// the previous horizon — but an explicit RequestStop is sticky: once
// requested, no later SetHorizon call makes Stopped() return false again.
// Workload loops rely on this to wind down exactly once.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"alock/internal/api"
	"alock/internal/mem"
	"alock/internal/model"
	"alock/internal/nic"
	"alock/internal/ptr"
)

// event is a scheduled wake-up of one thread.
type event struct {
	at  int64  // virtual time
	seq uint64 // tie-breaker: insertion order
	th  *Thread
}

// eventHeap is the original container/heap event queue, kept verbatim as
// the bit-exact oracle behind WithOracle. The production queue is the typed
// 4-ary heap in eventq.go; both implement the same total order, so pop
// sequences are identical and the oracle exists purely to prove it.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	return eventLess(h[i], h[j])
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Engine is one simulated cluster run.
type Engine struct {
	space *mem.Space
	p     model.Params
	nics  []*nic.NIC
	seed  int64
	rngs  PartitionedRNG

	// q is the production event queue; oracle, when non-nil (WithOracle),
	// replaces it with the container/heap reference implementation.
	q      eventQueue
	oracle *eventHeap
	now    int64
	seq    uint64
	stopAt int64
	// stopped is what Thread.Stopped reports; it is raised by the clock
	// crossing stopAt or by RequestStop. stopRequested records an explicit
	// RequestStop so that a later SetHorizon cannot silently un-stop a run.
	stopped       bool
	stopRequested bool

	threads  []*Thread
	launched int           // threads[:launched] have running goroutines
	yield    chan struct{} // running thread -> scheduler handoff (step mode)
	// direct marks a Run in progress: blocking threads dispatch the next
	// event themselves and hand control straight to its thread, returning
	// to the Run caller (via wake) only when the queue drains or the engine
	// traps. trap carries a dispatch failure (time regression, event-budget
	// livelock) from a thread goroutine to Run, which re-panics it on the
	// caller's goroutine — the same contract the mediated loop has.
	direct bool
	wake   chan struct{}
	trap   error

	// tornHeld marks words whose remote-RMW read half has executed but
	// whose write half has not; other *remote* operations on such a word
	// stall (the responder NIC serializes remote atomics) while *local*
	// operations pass straight through — the Table 1 asymmetry.
	tornHeld map[ptr.Ptr]bool

	// loopInFlight / remoteInFlight count the operations of each class
	// currently occupying each node's NIC; the congestion model inflates
	// verb service with these (each in-flight op is a concurrent DMA
	// stream competing for the host's PCIe link).
	loopInFlight   []int
	remoteInFlight []int

	events    uint64
	maxEvents uint64
}

// Option configures a new Engine.
type Option func(*Engine)

// WithMaxEvents overrides the runaway-simulation guard (default 2^33).
func WithMaxEvents(n uint64) Option {
	return func(e *Engine) { e.maxEvents = n }
}

// WithOracle switches the engine to the reference implementation: the
// container/heap event queue and the scheduler-mediated Run loop. Event
// order is a total order on (at, seq), so the oracle replays bit-identical
// schedules — it exists to verify the typed-heap/direct-handoff engine
// (and to measure what the flattened hot path buys; see internal/bench).
func WithOracle() Option {
	return func(e *Engine) { e.oracle = &eventHeap{} }
}

// New creates an engine for a cluster of `nodes` nodes, each with
// wordsPerNode words of RDMA-accessible memory, under cost model p.
func New(nodes, wordsPerNode int, p model.Params, seed int64, opts ...Option) *Engine {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("sim: invalid model: %v", err))
	}
	e := &Engine{
		space:          mem.NewSpace(nodes, wordsPerNode),
		p:              p,
		nics:           make([]*nic.NIC, nodes),
		seed:           seed,
		rngs:           NewPartitionedRNG(seed),
		yield:          make(chan struct{}),
		wake:           make(chan struct{}),
		tornHeld:       make(map[ptr.Ptr]bool),
		loopInFlight:   make([]int, nodes),
		remoteInFlight: make([]int, nodes),
		stopAt:         1<<63 - 1,
		maxEvents:      1 << 33,
	}
	for i := range e.nics {
		e.nics[i] = nic.New(i, p)
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Space exposes the cluster memory for setup code (e.g. allocating a lock
// table before threads start). It must not be touched while Run is active.
func (e *Engine) Space() *mem.Space { return e.space }

// Model returns the engine's cost model.
func (e *Engine) Model() model.Params { return e.p }

// NIC returns node i's RNIC model (for stats inspection).
func (e *Engine) NIC(i int) *nic.NIC { return e.nics[i] }

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() int64 { return e.now }

// RequestStop makes Stopped() return true from this point on, regardless
// of the time horizon. It may be called from inside a simulated thread
// (e.g. by a measurement harness once it has collected enough operations).
// An explicit stop is sticky: no subsequent SetHorizon re-arms the run.
func (e *Engine) RequestStop() {
	e.stopRequested = true
	e.stopped = true
}

// Stopped reports whether threads currently observe Stopped() == true —
// either the clock passed the horizon or RequestStop was called.
func (e *Engine) Stopped() bool { return e.stopped }

// Events returns the number of events processed so far.
func (e *Engine) Events() uint64 { return e.events }

// RNG exposes the engine's partitioned randomness so setup code can derive
// streams for its own subsystems without touching the thread streams.
func (e *Engine) RNG() PartitionedRNG { return e.rngs }

// Spawn registers a simulated thread on `node` running fn. All spawns must
// happen before Run. Threads are started at virtual time 0 in spawn order.
func (e *Engine) Spawn(node int, fn func(api.Ctx)) *Thread {
	if node < 0 || node >= e.space.Nodes() {
		panic(fmt.Sprintf("sim: Spawn on node %d of %d", node, e.space.Nodes()))
	}
	id := len(e.threads)
	t := &Thread{
		e:      e,
		id:     id,
		node:   node,
		resume: make(chan struct{}),
		rng:    e.rngs.Stream(SubsystemThread, id),
		fabric: e.rngs.Stream(SubsystemFabric, id),
		fn:     fn,
	}
	e.threads = append(e.threads, t)
	e.schedule(e.now, t) // start at the current virtual time
	return t
}

// schedule enqueues a wake-up for t at virtual time `at`.
func (e *Engine) schedule(at int64, t *Thread) {
	e.seq++
	ev := event{at: at, seq: e.seq, th: t}
	if e.oracle != nil {
		heap.Push(e.oracle, ev)
		return
	}
	e.q.push(ev)
}

// pending reports the number of scheduled events.
func (e *Engine) pending() int {
	if e.oracle != nil {
		return e.oracle.Len()
	}
	return e.q.len()
}

// pop removes and returns the earliest event; the queue must be non-empty.
func (e *Engine) pop() event {
	if e.oracle != nil {
		return heap.Pop(e.oracle).(event)
	}
	return e.q.pop()
}

// minAt returns the earliest scheduled time; ok is false on an empty queue.
func (e *Engine) minAt() (at int64, ok bool) {
	if e.oracle != nil {
		if e.oracle.Len() == 0 {
			return 0, false
		}
		return (*e.oracle)[0].at, true
	}
	if e.q.len() == 0 {
		return 0, false
	}
	return e.q.min().at, true
}

// account applies one event dispatch's bookkeeping: clock advance, horizon
// check, event counting and the runaway guard. It returns an error rather
// than panicking so direct-handoff dispatch on a thread goroutine can trap
// the failure back to the Run caller; mediated callers panic on it
// directly.
func (e *Engine) account(at int64) error {
	if at < e.now {
		return fmt.Errorf("sim: time went backwards (%dns after %dns)", at, e.now)
	}
	e.now = at
	if e.now >= e.stopAt {
		e.stopped = true
	}
	e.events++
	if e.events > e.maxEvents {
		return fmt.Errorf("sim: exceeded %d events at t=%dns — livelock?", e.maxEvents, e.now)
	}
	return nil
}

// SetHorizon (re)arms the measurement horizon: Stopped() returns true from
// the moment the virtual clock reaches stopAt. Step-driving callers use it
// in place of Run's stopAt argument. Extending the horizon un-stops a run
// that had merely crossed the previous horizon, but never one that called
// RequestStop — an explicit stop is sticky.
func (e *Engine) SetHorizon(stopAt int64) {
	e.stopAt = stopAt
	e.stopped = e.stopRequested || e.now >= stopAt
}

// HasPendingEvents reports whether any thread wake-up remains scheduled.
func (e *Engine) HasPendingEvents() bool { return e.pending() > 0 }

// PeekNextEventTime returns the virtual time of the earliest pending event
// without processing it; ok is false when no event is pending.
func (e *Engine) PeekNextEventTime() (at int64, ok bool) {
	return e.minAt()
}

// launchPending starts the goroutine of every spawned-but-not-yet-started
// thread; each waits for its first resume. Threads are only ever appended,
// so a high-water index keeps this O(new threads) on the event hot path.
// (Threads may be added to an already-finished engine, e.g. to inspect
// final memory state.)
func (e *Engine) launchPending() {
	for ; e.launched < len(e.threads); e.launched++ {
		go e.threads[e.launched].main()
	}
}

// ProcessNextEvent pops the earliest pending event, advances the virtual
// clock to it, and runs its thread until that thread blocks again or exits.
// It reports whether an event was processed (false means the heap is empty).
// Panics on time regression or when the event budget is exceeded, which
// indicates a livelock in the simulated system.
func (e *Engine) ProcessNextEvent() bool {
	if e.pending() == 0 {
		return false
	}
	e.launchPending()
	ev := e.pop()
	if err := e.account(ev.at); err != nil {
		panic(err)
	}
	ev.th.resume <- struct{}{}
	<-e.yield // wait until the thread blocks again or exits
	return true
}

// Step advances the simulation by exactly one event and reports whether
// more events remain pending — `for e.Step() {}` drains the run. It is
// ProcessNextEvent with a continuation-friendly return value for callers
// that interleave their own logic between events.
func (e *Engine) Step() bool {
	return e.ProcessNextEvent() && e.HasPendingEvents()
}

// Run drives the simulation until every thread has exited. Threads observe
// Stopped() == true once the virtual clock reaches stopAt and are expected
// to wind down (finishing in-flight critical sections so queues drain).
//
// Run uses direct handoff: the blocking thread pops the next event and
// resumes its thread itself, so each event costs one channel transfer
// instead of the step primitives' two (thread -> scheduler -> thread). The
// oracle engine keeps the mediated loop — it IS the reference behavior.
// Semantics are identical either way: event order, the events counter and
// all memory effects come from the same queue and accounting. A dispatch
// failure (time regression, event-budget livelock) panics on the caller's
// goroutine in both modes; the engine is unusable afterwards.
func (e *Engine) Run(stopAt int64) {
	e.SetHorizon(stopAt)
	e.launchPending()
	if e.oracle != nil {
		for e.ProcessNextEvent() {
		}
	} else if e.pending() > 0 {
		e.direct = true
		ev := e.pop()
		if err := e.account(ev.at); err != nil {
			e.direct = false
			panic(err)
		}
		ev.th.resume <- struct{}{}
		<-e.wake // the queue drained (or a thread trapped)
		e.direct = false
		if err := e.trap; err != nil {
			panic(err)
		}
	}
	// All events drained: every thread must have exited.
	for _, t := range e.threads {
		if !t.exited {
			panic(fmt.Sprintf("sim: thread %d blocked forever (deadlock)", t.id))
		}
	}
}

// dispatchNext (direct mode, called on a thread goroutine that is
// suspending or exiting) pops the earliest event and transfers control to
// its thread. It returns true when the popped event belongs to the calling
// thread itself — the caller just keeps running, no handoff at all (the
// same-timestamp self-reschedule fast path near the event budget; in the
// common case block()'s clock-advance fast path already avoided the queue
// entirely). On a dispatch failure the engine traps: the error is handed to
// the Run caller and this goroutine parks forever, exactly as threads do
// when a mediated Run panics mid-schedule.
func (e *Engine) dispatchNext(self *Thread) (keepRunning bool) {
	if e.launched < len(e.threads) {
		e.launchPending()
	}
	ev := e.pop()
	if err := e.account(ev.at); err != nil {
		e.trap = err
		e.wake <- struct{}{}
		select {} // poisoned: Run re-panics on the caller's goroutine
	}
	if ev.th == self {
		return true
	}
	ev.th.resume <- struct{}{}
	return false
}

// Thread is one simulated thread; it implements api.Ctx.
type Thread struct {
	e      *Engine
	id     int
	node   int
	resume chan struct{}
	// rng is the thread's workload stream (api.Ctx.Rand); fabric feeds the
	// wire-jitter failure injection. Separate PartitionedRNG streams, so
	// algorithm-side draws never shift the fabric's failure schedule.
	rng    *rand.Rand
	fabric *rand.Rand
	fn     func(api.Ctx)
	exited bool
}

var _ api.Ctx = (*Thread)(nil)

func (t *Thread) main() {
	<-t.resume // initial event at t=0
	t.fn(t)
	t.exited = true
	e := t.e
	if !e.direct {
		e.yield <- struct{}{}
		return
	}
	// Direct mode: pass control onward — to the next event's thread, or
	// back to Run when this exit drained the simulation. An exited thread
	// has no pending wake-up, so dispatchNext can never pick t itself.
	if e.pending() == 0 {
		e.wake <- struct{}{}
		return
	}
	e.dispatchNext(nil)
}

// block suspends the thread until virtual time `at`.
//
// Fast path: if no other event is scheduled at or before `at`, no thread
// could observably run in the interval, so the running thread advances the
// clock itself and keeps going without a scheduler handoff. This preserves
// the exact event ordering semantics (any pending event with time <= at
// forces the slow path) while collapsing uncontended operation sequences
// into zero context switches.
func (t *Thread) block(at int64) {
	e := t.e
	if at < e.now {
		at = e.now
	}
	if min, ok := e.minAt(); (!ok || min > at) && e.events <= e.maxEvents {
		e.now = at
		if e.now >= e.stopAt {
			e.stopped = true
		}
		e.events++
		return
	}
	e.schedule(at, t)
	if e.direct {
		// Hand control straight to the next event's thread (or keep it, if
		// that event is our own wake-up) and wait for our turn.
		if e.dispatchNext(t) {
			return
		}
		<-t.resume
		return
	}
	e.yield <- struct{}{}
	<-t.resume
}

// NodeID implements api.Ctx.
func (t *Thread) NodeID() int { return t.node }

// ThreadID implements api.Ctx.
func (t *Thread) ThreadID() int { return t.id }

// Now implements api.Ctx.
func (t *Thread) Now() int64 { return t.e.now }

// Stopped implements api.Ctx.
func (t *Thread) Stopped() bool { return t.e.stopped }

// Rand implements api.Ctx.
func (t *Thread) Rand() *rand.Rand { return t.rng }

// Alloc implements api.Ctx: allocation lands on the thread's own node.
func (t *Thread) Alloc(words, align int) ptr.Ptr {
	return t.e.space.Alloc(t.node, words, align)
}

// Free implements api.Ctx.
func (t *Thread) Free(p ptr.Ptr) { t.e.space.Free(p) }

// --- Local (shared-memory) operations ---

// Read implements api.Ctx.
func (t *Thread) Read(p ptr.Ptr) uint64 {
	t.block(t.e.now + t.e.p.LocalReadNS)
	return *t.e.space.WordAddr(p)
}

// Write implements api.Ctx.
func (t *Thread) Write(p ptr.Ptr, v uint64) {
	t.block(t.e.now + t.e.p.LocalWriteNS)
	*t.e.space.WordAddr(p) = v
}

// CAS implements api.Ctx. Note that a local CAS deliberately ignores any
// in-flight torn remote RMW on the same word: local RMW is not atomic with
// remote RMW (Table 1), and modeling that is the point.
func (t *Thread) CAS(p ptr.Ptr, old, new uint64) uint64 {
	t.block(t.e.now + t.e.p.LocalCASNS)
	addr := t.e.space.WordAddr(p)
	prev := *addr
	if prev == old {
		*addr = new
	}
	return prev
}

// Fence implements api.Ctx. The engine is sequentially consistent at event
// granularity, so the fence only costs time.
func (t *Thread) Fence() {
	t.block(t.e.now + t.e.p.FenceNS)
}

// Pause implements api.Ctx: bounded exponential spin back-off.
func (t *Thread) Pause(iter int) {
	d := t.e.p.SpinPollMinNS
	for i := 0; i < iter && d < t.e.p.SpinPollMaxNS; i++ {
		d <<= 1
	}
	if d > t.e.p.SpinPollMaxNS {
		d = t.e.p.SpinPollMaxNS
	}
	t.block(t.e.now + d)
}

// Work implements api.Ctx.
func (t *Thread) Work(d time.Duration) {
	if d <= 0 {
		return
	}
	t.block(t.e.now + d.Nanoseconds())
}

// --- Remote (RDMA one-sided) operations ---

// verbTimes routes one verb through the fabric: TX on the requester NIC,
// wire to the responder, RX/execute on the responder NIC, wire back.
// It returns the virtual time the verb executes at the responder and the
// time the completion reaches the requester. The caller must call
// retire(p) when the operation finishes to take it back out of the
// in-flight congestion accounting. (retire used to be a closure returned
// from here — one heap allocation per verb on the hot path; everything it
// captured is recomputable from p.)
func (t *Thread) verbTimes(p ptr.Ptr) (execAt, doneAt int64) {
	e := t.e
	src, dst := t.node, p.NodeID()
	qp := nic.QP{SrcNode: src, SrcThread: t.id, DstNode: dst}
	wire := e.p.RemoteWireNS
	// Failure injection: transient fabric delay spikes, drawn from the
	// thread's deterministic fabric stream so runs stay reproducible.
	if e.p.JitterProb > 0 && t.fabric.Float64() < e.p.JitterProb {
		wire += e.p.JitterNS
	}
	if src == dst {
		// Loopback (§1): the thread reaches its own node's memory through
		// its own RNIC; both verb halves occupy the same NIC, the only
		// wire is PCIe, and both halves count as PCIe-hungry loopback
		// traffic for the congestion model.
		wire = e.p.LoopbackWireNS
		e.loopInFlight[src]++
		txDone := e.nics[src].Submit(e.now, qp, true, e.loopInFlight[src])
		arrive := txDone + wire
		rxDone := e.nics[src].Submit(arrive, qp, true, e.loopInFlight[src])
		return rxDone, rxDone + wire
	}
	e.remoteInFlight[src]++
	e.remoteInFlight[dst]++
	txDone := e.nics[src].Submit(e.now, qp, false, e.remoteInFlight[src])
	arrive := txDone + wire
	rxDone := e.nics[dst].Submit(arrive, qp, false, e.remoteInFlight[dst])
	return rxDone, rxDone + wire
}

// retire takes a completed verb on p back out of the in-flight congestion
// accounting; it must be called exactly once per verbTimes call.
func (t *Thread) retire(p ptr.Ptr) {
	e := t.e
	src, dst := t.node, p.NodeID()
	if src == dst {
		e.loopInFlight[src]--
		return
	}
	e.remoteInFlight[src]--
	e.remoteInFlight[dst]--
}

// RRead implements api.Ctx.
func (t *Thread) RRead(p ptr.Ptr) uint64 {
	execAt, doneAt := t.verbTimes(p)
	t.block(execAt)
	v := *t.e.space.WordAddr(p)
	t.block(doneAt)
	t.retire(p)
	return v
}

// RWrite implements api.Ctx.
func (t *Thread) RWrite(p ptr.Ptr, v uint64) {
	execAt, doneAt := t.verbTimes(p)
	t.block(execAt)
	*t.e.space.WordAddr(p) = v
	t.block(doneAt)
	t.retire(p)
}

// RCAS implements api.Ctx.
//
// Without tearing, the compare-and-swap executes atomically at the
// responder. With tearing enabled (model.TornRCAS), the read half executes
// first and the write half TornGapNS later; other remote operations on the
// word stall in between (the responder NIC serializes remote atomics), but
// local operations slide right into the window — reproducing Table 1's
// "remote CAS is not atomic with local Write/RMW".
func (t *Thread) RCAS(p ptr.Ptr, old, new uint64) uint64 {
	execAt, doneAt := t.verbTimes(p)
	t.block(execAt)
	if !t.e.p.TornRCAS {
		addr := t.e.space.WordAddr(p)
		prev := *addr
		if prev == old {
			*addr = new
		}
		t.block(doneAt)
		t.retire(p)
		return prev
	}
	// Torn path: wait until no other remote RMW holds the word.
	for t.e.tornHeld[p] {
		t.block(t.e.now + t.e.p.SpinPollMinNS)
	}
	t.e.tornHeld[p] = true
	addr := t.e.space.WordAddr(p)
	prev := *addr // read half
	t.block(t.e.now + t.e.p.TornGapNS)
	if prev == old { // write half: blind from local memory's perspective
		*addr = new
	}
	delete(t.e.tornHeld, p)
	if doneAt < t.e.now {
		doneAt = t.e.now
	}
	t.block(doneAt)
	t.retire(p)
	return prev
}
