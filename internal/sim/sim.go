// Package sim is a deterministic discrete-event simulation engine for the
// RDMA cluster.
//
// Simulated threads are ordinary goroutines running ordinary blocking Go
// code against the api.Ctx interface. Under the serial engine exactly one
// of them executes at a time: every memory operation suspends the thread
// until its completion event fires on the virtual clock, and the scheduler
// hands control back in strict (time, sequence) order. Memory effects
// therefore apply in a single global order — the engine is sequentially
// consistent at event granularity, which is the memory model the paper's
// algorithms require once the prescribed fences are in place (§5.2).
//
// Layering (this file + shard.go): the engine is sharded by node. Each
// node owns a shard — its event queue, its NIC, its threads' wakeups, its
// region of memory, the torn-RMW book-keeping for words it homes — and all
// cross-node interaction is routed as events on the owning shard's
// timeline through the verb protocol (evArrive/evExec/evComplete below).
// Three run modes share that one event protocol:
//
//   - serial (default): one global event queue, direct-handoff Run loop —
//     the reference behavior.
//   - sharded-serial (WithShards(1)): per-shard queues with a merge
//     scheduler that always pops the globally least (at, seq) event. The
//     total order is the same order, so this mode is bit-identical to
//     serial by construction.
//   - sharded-parallel (WithShards(n), n > 1): the conservative windowed
//     executor in shard.go runs each shard's events inside the safe window
//     [window start, min(shard heads) + lookahead) on its own goroutine,
//     barriers, repeats. Lookahead is the minimum cross-node verb latency
//     (model.Params.RemoteWireNS), and every cross-shard event is sent at
//     least one lookahead ahead of the sender's clock, so no shard can
//     receive anything that lands inside the window it is executing —
//     results are bit-identical to serial, in parallel.
//
// Determinism: given the same seed, workload and model, every run produces
// bit-identical schedules, throughputs and latencies in every mode. Ties on
// the virtual clock are broken by event sequence number; seq is issued
// per-shard (issuing shard in the high bits, that shard's counter below),
// so tie order depends only on the issuing shard and its deterministic
// local push order — never on cross-shard execution interleaving.
//
// Hot path: events live in a typed 4-ary min-heap (eventq.go) — no
// interface boxing, zero allocations per event in steady state — and Run
// transfers control directly from the blocking thread to the next event's
// thread. The step primitives (ProcessNextEvent/Step) keep the
// scheduler-mediated two-handoff protocol so callers can interleave logic
// between events. WithOracle selects the original container/heap queue
// plus the mediated Run loop as a bit-exact reference; it is incompatible
// with WithShards (the oracle IS the single-queue serial path).
//
// Costs come from internal/model, and every remote operation is routed
// through the requester's and responder's internal/nic instances, which is
// where loopback congestion and QP thrashing arise. The responder NIC
// reserves service when the request arrives on its timeline (evArrive),
// not at issue time on the requester's — each NIC is touched only by its
// owning shard.
//
// Stop/horizon contract: threads observe Stopped() == true as soon as the
// virtual clock reaches the horizon armed by SetHorizon/Run, or immediately
// after RequestStop. SetHorizon may be re-issued at any point to shorten or
// extend the horizon — extending it un-stops a run that had merely crossed
// the previous horizon — but an explicit RequestStop is sticky: once
// requested, no later SetHorizon call makes Stopped() return false again.
// Workload loops rely on this to wind down exactly once. Under the
// windowed executor a mid-run RequestStop is observed by other shards
// without a deterministic cross-shard order — harnesses that stop mid-run
// (TargetOps) therefore force the serial path.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync/atomic"
	"time"

	"alock/internal/api"
	"alock/internal/mem"
	"alock/internal/model"
	"alock/internal/nic"
	"alock/internal/ptr"
)

// Event kinds. evWake resumes a blocked thread; the rest are the cross-node
// verb protocol, each executing on the shard that owns the touched state.
const (
	evWake      uint8 = iota // resume th at `at` (block expiry, spawn)
	evArrive                 // th's verb request reaches the responder NIC
	evExec                   // th's verb occupies the responder and executes
	evTornWrite              // write half of th's torn remote CAS
	evComplete               // th's verb completion reaches the requester
)

// event is one scheduled occurrence on a shard's timeline.
type event struct {
	at   int64  // virtual time
	seq  uint64 // tie-breaker: issuing shard in the high bits, then push order
	th   *Thread
	kind uint8
	dst  int16 // owning shard, frozen at schedule time (see destFor)
}

// dest returns the shard that owns the event. The value is computed once at
// schedule time: responder-side events derive it from the thread's verb,
// which the thread is free to re-arm the moment its completion resumes it —
// possibly before a pending evTornWrite pops, under the windowed executor.
func (ev event) dest() int { return int(ev.dst) }

// destFor computes an event's owning shard while the scheduling state is
// still live: thread wakeups and verb completions belong to the thread's
// node, responder-side verb events to the node homing the target word.
func destFor(kind uint8, t *Thread) int16 {
	switch kind {
	case evArrive, evExec, evTornWrite:
		return int16(t.verb.p.NodeID())
	default:
		return int16(t.node)
	}
}

// eventHeap is the original container/heap event queue, kept verbatim as
// the bit-exact oracle behind WithOracle. The production queue is the typed
// 4-ary heap in eventq.go; both implement the same total order, so pop
// sequences are identical and the oracle exists purely to prove it.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	return eventLess(h[i], h[j])
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// curShard sentinels for the access auditor.
const (
	auditIdle     int32 = -1 // no run in progress: setup/teardown may touch anything
	auditParallel int32 = -2 // windowed run: per-shard active flags carry the check
)

// Engine is one simulated cluster run.
type Engine struct {
	space *mem.Space
	p     model.Params
	nics  []*nic.NIC
	seed  int64
	rngs  PartitionedRNG

	// q is the serial engine's global event queue; oracle, when non-nil
	// (WithOracle), replaces it with the container/heap reference. shards
	// always exist (they own seq issue and torn-RMW state in every mode)
	// but their per-shard queues are used only when sharded is set.
	q       eventQueue
	oracle  *eventHeap
	shards  []*shard
	sharded bool
	// workers is WithShards' executor width: 1 = merge scheduler (sharded-
	// serial), >1 = the conservative windowed executor for Run. lookahead
	// is the windowed executor's safety margin: the minimum cross-node verb
	// latency, below which no shard can affect another.
	workers   int
	lookahead int64

	// winActive is the set of shards with events inside the current safe
	// window, rebuilt (in place, reusing the backing array) each window by
	// runWindowed; winClaim is the shared claim counter the coordinator and
	// the pool helpers take shard indices from (claimShards).
	winActive []*shard
	winClaim  atomic.Int64

	now    int64
	stopAt int64
	// stopped is what Thread.Stopped reports on the serial paths; it is
	// raised by the clock crossing stopAt or by RequestStop. stopRequested
	// records an explicit RequestStop (atomically, so threads on parallel
	// shards observe it too) so a later SetHorizon cannot un-stop the run.
	stopped       bool
	stopRequested atomic.Bool

	threads  []*Thread
	launched int           // threads[:launched] have running goroutines
	yield    chan struct{} // running thread -> scheduler handoff (step mode)
	// direct marks a serial Run in progress: blocking threads dispatch the
	// next event themselves and hand control straight to its thread,
	// returning to the Run caller (via wake) only when the queue drains or
	// the engine traps. windowed marks a parallel Run in progress: threads
	// hand off to their shard's worker instead (shard.go). trap carries a
	// dispatch failure (time regression, event-budget livelock) from a
	// thread goroutine to Run, which re-panics it on the caller's goroutine.
	direct   bool
	windowed bool
	wake     chan struct{}
	trap     error

	// loopInFlight / remoteInFlight count the operations of each class
	// currently occupying each node's NIC; the congestion model inflates
	// verb service with these (each in-flight op is a concurrent DMA
	// stream competing for the host's PCIe link). Slot n is touched only
	// from shard n's timeline: the source's share from issue to completion,
	// the responder's from request arrival to execution.
	loopInFlight   []int
	remoteInFlight []int

	events    uint64
	maxEvents uint64

	// audit enables the debug access-audit mode: curShard tracks which
	// shard's timeline is executing (serial modes) and the mem.Space hook
	// panics on touches of another shard's region; under the windowed
	// executor the per-shard active flags catch touches of idle shards and
	// the race detector covers the rest.
	audit    bool
	curShard atomic.Int32

	// onWindowEvent, when non-nil, observes every event the windowed
	// executor dispatches, on the dispatching shard's goroutine. Test hook
	// (the safe-window property test); nil in production.
	onWindowEvent func(s *shard, ev event)
}

// Option configures a new Engine.
type Option func(*Engine)

// WithMaxEvents overrides the runaway-simulation guard (default 2^33).
func WithMaxEvents(n uint64) Option {
	return func(e *Engine) { e.maxEvents = n }
}

// WithOracle switches the engine to the reference implementation: the
// container/heap event queue and the scheduler-mediated Run loop. Event
// order is a total order on (at, seq), so the oracle replays bit-identical
// schedules — it exists to verify the typed-heap/direct-handoff engine
// (and to measure what the flattened hot path buys; see internal/bench).
// The oracle IS the single-queue serial path: combining it with WithShards
// is a configuration error and New panics on it.
func WithOracle() Option {
	return func(e *Engine) { e.oracle = &eventHeap{} }
}

// WithShards routes events through the per-node shard queues. workers is
// the executor width for Run: 1 selects the merge scheduler (sharded but
// serial — bit-identical to the default engine by construction, it pops
// the same global (at, seq) order from per-shard heaps), and workers > 1
// selects the conservative windowed executor (shard.go), which runs up to
// that many shards' windows concurrently — still bit-identical, because no
// event crosses shards with less than one lookahead of slack. Worker
// counts above the node count or the process's execution-slot budget
// (internal/slots) are clamped at Run time; results never depend on the
// effective width.
func WithShards(workers int) Option {
	if workers < 1 {
		panic(fmt.Sprintf("sim: WithShards(%d): need at least one worker", workers))
	}
	return func(e *Engine) {
		e.sharded = true
		e.workers = workers
	}
}

// WithAccessAudit enables the debug access-audit mode: every mem.Space
// access is checked against the shard model, and a word touched from
// another shard's timeline outside the verb protocol panics instead of
// silently racing. The serial modes enforce the check exactly (and any
// violation occurs at the same virtual point in every mode, so a serial
// audit run certifies the schedule for the parallel one); the windowed
// executor catches touches of idle shards and leaves concurrent-touch
// detection to the race detector.
func WithAccessAudit() Option {
	return func(e *Engine) { e.audit = true }
}

// New creates an engine for a cluster of `nodes` nodes, each with
// wordsPerNode words of RDMA-accessible memory, under cost model p.
func New(nodes, wordsPerNode int, p model.Params, seed int64, opts ...Option) *Engine {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("sim: invalid model: %v", err))
	}
	e := &Engine{
		space:          mem.NewSpace(nodes, wordsPerNode),
		p:              p,
		nics:           make([]*nic.NIC, nodes),
		seed:           seed,
		rngs:           NewPartitionedRNG(seed),
		yield:          make(chan struct{}),
		wake:           make(chan struct{}),
		loopInFlight:   make([]int, nodes),
		remoteInFlight: make([]int, nodes),
		stopAt:         1<<63 - 1,
		maxEvents:      1 << 33,
		lookahead:      p.RemoteWireNS,
	}
	e.shards = make([]*shard, nodes)
	for i := range e.shards {
		e.shards[i] = newShard(e, i)
	}
	for i := range e.nics {
		e.nics[i] = nic.New(i, p)
	}
	for _, o := range opts {
		o(e)
	}
	if e.oracle != nil && e.sharded {
		panic("sim: WithOracle is the single-queue serial reference and cannot be combined with WithShards")
	}
	e.curShard.Store(auditIdle)
	if e.audit {
		e.space.SetAudit(e.auditAccess)
	}
	return e
}

// auditAccess is the mem.Space hook installed by WithAccessAudit.
func (e *Engine) auditAccess(node int) {
	switch cur := e.curShard.Load(); cur {
	case auditIdle:
		// Setup/teardown outside a run: unrestricted.
	case auditParallel:
		if !e.shards[node].active.Load() {
			panic(fmt.Sprintf(
				"sim: access audit: node %d memory touched while its shard is idle (out-of-protocol cross-shard access)", node))
		}
	default:
		if int32(node) != cur {
			panic(fmt.Sprintf(
				"sim: access audit: node %d memory touched from node %d's timeline (out-of-protocol cross-shard access)", node, cur))
		}
	}
}

// setCurShard records which shard's timeline the next dispatch executes on,
// for the access auditor. No-op (no atomic traffic) when auditing is off.
func (e *Engine) setCurShard(ev event) {
	if e.audit {
		e.curShard.Store(int32(ev.dest()))
	}
}

// Space exposes the cluster memory for setup code (e.g. allocating a lock
// table before threads start). It must not be touched while Run is active.
func (e *Engine) Space() *mem.Space { return e.space }

// Model returns the engine's cost model.
func (e *Engine) Model() model.Params { return e.p }

// NIC returns node i's RNIC model (for stats inspection).
func (e *Engine) NIC(i int) *nic.NIC { return e.nics[i] }

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() int64 { return e.now }

// RequestStop makes Stopped() return true from this point on, regardless
// of the time horizon. It may be called from inside a simulated thread
// (e.g. by a measurement harness once it has collected enough operations).
// An explicit stop is sticky: no subsequent SetHorizon re-arms the run.
// Under the windowed executor other shards observe the stop without a
// deterministic cross-shard order; mid-run stoppers needing determinism
// must run the serial path (the harness forces this for TargetOps).
func (e *Engine) RequestStop() {
	e.stopRequested.Store(true)
	if !e.windowed {
		e.stopped = true
	}
}

// Stopped reports whether threads currently observe Stopped() == true —
// either the clock passed the horizon or RequestStop was called.
func (e *Engine) Stopped() bool { return e.stopped }

// Events returns the number of events processed so far.
func (e *Engine) Events() uint64 { return e.events }

// RNG exposes the engine's partitioned randomness so setup code can derive
// streams for its own subsystems without touching the thread streams.
func (e *Engine) RNG() PartitionedRNG { return e.rngs }

// Spawn registers a simulated thread on `node` running fn. All spawns must
// happen before Run. Threads are started at virtual time 0 in spawn order.
func (e *Engine) Spawn(node int, fn func(api.Ctx)) *Thread {
	if node < 0 || node >= e.space.Nodes() {
		panic(fmt.Sprintf("sim: Spawn on node %d of %d", node, e.space.Nodes()))
	}
	id := len(e.threads)
	t := &Thread{
		e:      e,
		shard:  e.shards[node],
		id:     id,
		node:   node,
		resume: make(chan struct{}),
		rng:    e.rngs.Stream(SubsystemThread, id),
		fabric: e.rngs.Stream(SubsystemFabric, id),
		fn:     fn,
	}
	e.threads = append(e.threads, t)
	e.scheduleEv(t.shard, e.now, evWake, t) // start at the current virtual time
	return t
}

// scheduleEv creates an event on `from`'s timeline (consuming one of its
// sequence numbers) and routes it to its destination shard's queue — or the
// single global queue in the unsharded modes. During a parallel window a
// cross-shard send is deferred to the sender's outbox, which the barrier
// drains; the conservative contract that makes this safe — nothing may
// cross shards with less than one lookahead of slack — is asserted here.
func (e *Engine) scheduleEv(from *shard, at int64, kind uint8, t *Thread) {
	ev := event{at: at, seq: from.nextSeq(), th: t, kind: kind, dst: destFor(kind, t)}
	if !e.sharded {
		if e.oracle != nil {
			heap.Push(e.oracle, ev) //lint:allow allocfree oracle mode is the boxed container/heap serial reference, kept for verification, never for performance runs
			return
		}
		e.q.push(ev)
		return
	}
	dst := e.shards[ev.dest()]
	if e.windowed && dst != from {
		if at < from.now+e.lookahead {
			panic(fmt.Sprintf(
				"sim: lookahead violation: shard %d sent a t=%dns event to shard %d at t=%dns (lookahead %dns)",
				from.node, at, dst.node, from.now, e.lookahead))
		}
		from.outbox = append(from.outbox, ev)
		return
	}
	dst.q.push(ev)
}

// pending reports the number of scheduled events.
func (e *Engine) pending() int {
	if e.oracle != nil {
		return e.oracle.Len()
	}
	if !e.sharded {
		return e.q.len()
	}
	n := 0
	for _, s := range e.shards {
		n += s.q.len()
	}
	return n
}

// pop removes and returns the earliest event; the queue must be non-empty.
// In the sharded modes this is the merge scheduler: the globally least
// (at, seq) event across all shard heads — the same total order the global
// queue pops, so sharded-serial is bit-identical to serial by construction.
func (e *Engine) pop() event {
	if e.oracle != nil {
		return heap.Pop(e.oracle).(event)
	}
	if !e.sharded {
		return e.q.pop()
	}
	best := -1
	var bestEv event
	for i, s := range e.shards {
		if s.q.len() == 0 {
			continue
		}
		if ev := s.q.min(); best < 0 || eventLess(ev, bestEv) {
			best, bestEv = i, ev
		}
	}
	return e.shards[best].q.pop()
}

// minAt returns the earliest scheduled time; ok is false on an empty queue.
func (e *Engine) minAt() (at int64, ok bool) {
	if e.oracle != nil {
		if e.oracle.Len() == 0 {
			return 0, false
		}
		return (*e.oracle)[0].at, true
	}
	if !e.sharded {
		if e.q.len() == 0 {
			return 0, false
		}
		return e.q.min().at, true
	}
	for _, s := range e.shards {
		if s.q.len() == 0 {
			continue
		}
		if h := s.q.min().at; !ok || h < at {
			at, ok = h, true
		}
	}
	return at, ok
}

// account applies one event dispatch's bookkeeping: clock advance, horizon
// check, event counting and the runaway guard. It returns an error rather
// than panicking so direct-handoff dispatch on a thread goroutine can trap
// the failure back to the Run caller; mediated callers panic on it
// directly.
func (e *Engine) account(at int64) error {
	if at < e.now {
		return fmt.Errorf("sim: time went backwards (%dns after %dns)", at, e.now) //lint:allow allocfree trap path: the run is over once this fires
	}
	e.now = at
	if e.now >= e.stopAt {
		e.stopped = true
	}
	e.events++
	if e.events > e.maxEvents {
		return fmt.Errorf("sim: exceeded %d events at t=%dns — livelock?", e.maxEvents, e.now) //lint:allow allocfree trap path: the run is over once this fires
	}
	return nil
}

// SetHorizon (re)arms the measurement horizon: Stopped() returns true from
// the moment the virtual clock reaches stopAt. Step-driving callers use it
// in place of Run's stopAt argument. Extending the horizon un-stops a run
// that had merely crossed the previous horizon, but never one that called
// RequestStop — an explicit stop is sticky.
func (e *Engine) SetHorizon(stopAt int64) {
	e.stopAt = stopAt
	e.stopped = e.stopRequested.Load() || e.now >= stopAt
}

// HasPendingEvents reports whether any event remains scheduled.
func (e *Engine) HasPendingEvents() bool { return e.pending() > 0 }

// PeekNextEventTime returns the virtual time of the earliest pending event
// without processing it; ok is false when no event is pending.
func (e *Engine) PeekNextEventTime() (at int64, ok bool) {
	return e.minAt()
}

// launchPending starts the goroutine of every spawned-but-not-yet-started
// thread; each waits for its first resume. Threads are only ever appended,
// so a high-water index keeps this O(new threads) on the event hot path.
// (Threads may be added to an already-finished engine, e.g. to inspect
// final memory state.)
func (e *Engine) launchPending() {
	for ; e.launched < len(e.threads); e.launched++ {
		go e.threads[e.launched].main() //lint:allow allocfree one goroutine per spawned thread, O(threads) at startup, not O(events)
	}
}

// execProtocol runs a verb-protocol event's handler. s is the event's
// destination shard, whose timeline ev.at lies on; every piece of state the
// handler touches (the responder NIC, its in-flight counters, its torn-RMW
// book, the target word) is owned by s.
func (e *Engine) execProtocol(s *shard, ev event) {
	t := ev.th
	v := &t.verb
	switch ev.kind {
	case evArrive:
		// The request reaches the responder: it starts occupying the
		// responder NIC now (not acausally at issue time), and service is
		// scheduled under the congestion the responder actually sees.
		e.remoteInFlight[s.node]++
		qp := nic.QP{SrcNode: t.node, SrcThread: t.id, DstNode: s.node}
		rxDone := e.nics[s.node].Submit(ev.at, qp, false, e.remoteInFlight[s.node])
		e.scheduleEv(s, rxDone, evExec, t)
	case evExec:
		if v.op == verbCAS && e.p.TornRCAS {
			if s.tornHeld[v.p] {
				// The responder serializes remote atomics: another remote
				// RMW holds the word mid-tear, so this one re-polls.
				e.scheduleEv(s, ev.at+e.p.SpinPollMinNS, evExec, t)
				return
			}
			s.tornHeld[v.p] = true
			v.result = *e.space.WordAddr(v.p) // read half
			// Snapshot the write half: by the time it executes, the
			// requester may have resumed (completion below) and re-armed
			// t.verb for its next operation.
			s.tornWrites[t] = tornWrite{p: v.p, old: v.old, val: v.val, read: v.result}
			e.scheduleEv(s, ev.at+e.p.TornGapNS, evTornWrite, t)
			done := ev.at + v.wire
			if gapDone := ev.at + e.p.TornGapNS; gapDone > done {
				done = gapDone
			}
			e.scheduleEv(s, done, evComplete, t)
			return
		}
		addr := e.space.WordAddr(v.p)
		switch v.op {
		case verbRead:
			v.result = *addr
		case verbWrite:
			*addr = v.val
		case verbCAS:
			prev := *addr
			if prev == v.old {
				*addr = v.val
			}
			v.result = prev
		}
		e.remoteInFlight[s.node]--
		e.scheduleEv(s, ev.at+v.wire, evComplete, t)
	case evTornWrite:
		// Write half: blind from local memory's perspective (Table 1).
		// Uses the read-half snapshot, not t.verb — see evExec above.
		tw := s.tornWrites[t]
		delete(s.tornWrites, t)
		if tw.read == tw.old {
			*e.space.WordAddr(tw.p) = tw.val
		}
		delete(s.tornHeld, tw.p)
		e.remoteInFlight[s.node]--
	}
}

// ProcessNextEvent pops the earliest pending event, advances the virtual
// clock to it, and processes it: a thread wake-up or verb completion runs
// its thread until that thread blocks again or exits; a verb-protocol event
// executes inline on the scheduler. It reports whether an event was
// processed (false means the heap is empty). Panics on time regression or
// when the event budget is exceeded, which indicates a livelock in the
// simulated system.
func (e *Engine) ProcessNextEvent() bool {
	if e.pending() == 0 {
		return false
	}
	e.launchPending()
	ev := e.pop()
	if err := e.account(ev.at); err != nil {
		panic(err)
	}
	e.setCurShard(ev)
	if ev.kind == evWake || ev.kind == evComplete {
		ev.th.resume <- struct{}{}
		<-e.yield // wait until the thread blocks again or exits
		if err := e.trap; err != nil {
			panic(err)
		}
		return true
	}
	e.execProtocol(e.shards[ev.dest()], ev)
	return true
}

// Step advances the simulation by exactly one event and reports whether
// more events remain pending — `for e.Step() {}` drains the run. It is
// ProcessNextEvent with a continuation-friendly return value for callers
// that interleave their own logic between events.
func (e *Engine) Step() bool {
	return e.ProcessNextEvent() && e.HasPendingEvents()
}

// Run drives the simulation until every thread has exited. Threads observe
// Stopped() == true once the virtual clock reaches stopAt and are expected
// to wind down (finishing in-flight critical sections so queues drain).
//
// Serial modes use direct handoff: the blocking thread pops the next event
// and resumes its thread itself (protocol events it executes inline), so
// each event costs one channel transfer instead of the step primitives'
// two (thread -> scheduler -> thread). The oracle engine keeps the
// mediated loop — it IS the reference behavior. WithShards(n > 1) engages
// the conservative windowed executor in shard.go. Semantics are identical
// in every mode: event order, the events counter and all memory effects
// come from the same total order. A dispatch failure (time regression,
// event-budget livelock) panics on the caller's goroutine in all modes;
// the engine is unusable afterwards.
func (e *Engine) Run(stopAt int64) {
	e.SetHorizon(stopAt)
	e.launchPending()
	if e.audit {
		// Post-run inspection (fingerprints, stats readers) is setup/teardown
		// as far as the auditor is concerned.
		defer e.curShard.Store(auditIdle)
	}
	switch {
	case e.pending() == 0:
		// Nothing scheduled: fall through to the exit check.
	case e.sharded && e.workers > 1:
		e.runWindowed()
	case e.oracle != nil:
		for e.ProcessNextEvent() {
		}
	default:
		e.runDirect()
	}
	// All events drained: every thread must have exited.
	for _, t := range e.threads {
		if !t.exited {
			panic(fmt.Sprintf("sim: thread %d blocked forever (deadlock)", t.id))
		}
	}
}

// runDirect is the serial direct-handoff loop: seed the chain from the
// caller's goroutine (executing any protocol events that precede the first
// thread wake-up inline), hand control to the first thread, and wait for
// the queue to drain or a trap.
func (e *Engine) runDirect() {
	e.direct = true
	seeded := false
	for e.pending() > 0 {
		ev := e.pop()
		if err := e.account(ev.at); err != nil {
			e.direct = false
			panic(err)
		}
		e.setCurShard(ev)
		if ev.kind == evWake || ev.kind == evComplete {
			ev.th.resume <- struct{}{}
			seeded = true
			break
		}
		e.execProtocol(e.shards[ev.dest()], ev)
	}
	if !seeded {
		e.direct = false
		return
	}
	<-e.wake // the queue drained (or a thread trapped)
	e.direct = false
	if err := e.trap; err != nil {
		panic(err)
	}
}

// dispatchNext (direct mode, called on a thread goroutine that is
// suspending or exiting) pops events and transfers control onward. Verb-
// protocol events execute inline on the calling goroutine; the loop ends at
// the first thread wake-up or completion, which either belongs to the
// caller itself — it just keeps running, no handoff at all — or is handed
// its thread. On a dispatch failure the engine traps: the error goes to the
// Run caller and this goroutine parks forever, exactly as threads do when a
// mediated Run panics mid-schedule.
func (e *Engine) dispatchNext(self *Thread) (keepRunning bool) {
	for {
		if e.launched < len(e.threads) {
			e.launchPending()
		}
		ev := e.pop()
		if err := e.account(ev.at); err != nil {
			e.trapOut(err)
		}
		e.setCurShard(ev)
		if ev.kind == evWake || ev.kind == evComplete {
			if ev.th == self {
				return true
			}
			ev.th.resume <- struct{}{}
			return false
		}
		e.execProtocol(e.shards[ev.dest()], ev)
		if e.pending() == 0 {
			// The protocol chain drained with no thread left to wake:
			// every remaining thread is blocked forever; Run reports the
			// deadlock.
			e.wake <- struct{}{}
			select {}
		}
	}
}

// trapOut hands a dispatch failure to the Run caller and parks the calling
// goroutine forever (the engine is poisoned).
func (e *Engine) trapOut(err error) {
	e.trap = err
	e.wake <- struct{}{}
	select {}
}

// Remote verb operations, stored on the Thread while in flight (one
// outstanding verb per thread; no allocation).
const (
	verbRead uint8 = iota
	verbWrite
	verbCAS
)

// verbState is the in-flight remote verb: target, operation, this verb's
// wire latency (jitter included — the completion leg reuses it), and the
// slot the responder-side handlers fill for the requester to read back.
type verbState struct {
	p        ptr.Ptr
	op       uint8
	old, val uint64
	wire     int64
	result   uint64
}

// Thread is one simulated thread; it implements api.Ctx.
type Thread struct {
	e      *Engine
	shard  *shard // the thread's node's shard: its timeline authority
	id     int
	node   int
	resume chan struct{}
	// rng is the thread's workload stream (api.Ctx.Rand); fabric feeds the
	// wire-jitter failure injection. Separate PartitionedRNG streams, so
	// algorithm-side draws never shift the fabric's failure schedule.
	rng    *rand.Rand
	fabric *rand.Rand
	fn     func(api.Ctx)
	exited bool
	verb   verbState
}

var _ api.Ctx = (*Thread)(nil)

func (t *Thread) main() {
	<-t.resume // initial event at t=0
	e := t.e
	if err := t.runUser(); err != nil {
		// The simulated thread panicked (workload bug, audit violation).
		// Deliver it to whichever goroutine drives the engine — it
		// re-panics there, on the Run/Step caller — and let this
		// goroutine exit. The engine is poisoned afterwards.
		switch {
		case e.windowed:
			t.shard.trap = err
			t.shard.yield <- struct{}{}
		case e.direct:
			e.trap = err
			e.wake <- struct{}{}
		default:
			e.trap = err
			e.yield <- struct{}{}
		}
		return
	}
	t.exited = true
	if e.windowed {
		// Windowed mode: hand control back to the shard's worker.
		t.shard.yield <- struct{}{}
		return
	}
	if !e.direct {
		e.yield <- struct{}{}
		return
	}
	// Direct mode: pass control onward — to the next event's thread, or
	// back to Run when this exit drained the simulation. An exited thread
	// has no pending wake-up, so dispatchNext can never pick t itself.
	if e.pending() == 0 {
		e.wake <- struct{}{}
		return
	}
	e.dispatchNext(nil)
}

// runUser executes the thread's body, converting a panic into an error for
// the engine to re-raise on the driving goroutine.
func (t *Thread) runUser() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: thread %d panicked: %v\n%s", t.id, r, debug.Stack())
		}
	}()
	t.fn(t)
	return nil
}

// now is the thread's view of the virtual clock: its shard's clock under
// the windowed executor, the global clock otherwise.
func (t *Thread) now() int64 {
	if t.e.windowed {
		return t.shard.now
	}
	return t.e.now
}

// block suspends the thread until virtual time `at`.
//
// Fast path: if no event that could observably run before `at` is
// scheduled — on the global queue in the serial modes; on the thread's own
// shard, within the safe window, in windowed mode (no other shard can
// affect this one inside the window by the lookahead contract) — the
// running thread advances the clock itself and keeps going without a
// scheduler handoff. Exactly one event is counted per block either way, so
// the events counter is mode-independent.
func (t *Thread) block(at int64) {
	e := t.e
	if e.windowed {
		t.shard.blockThread(t, at)
		return
	}
	if at < e.now {
		at = e.now
	}
	if min, ok := e.minAt(); (!ok || min > at) && e.events <= e.maxEvents {
		e.now = at
		if e.now >= e.stopAt {
			e.stopped = true
		}
		e.events++
		return
	}
	e.scheduleEv(t.shard, at, evWake, t)
	if e.direct {
		// Hand control straight to the next event's thread (or keep it, if
		// that event is our own wake-up) and wait for our turn.
		if e.dispatchNext(t) {
			return
		}
		<-t.resume
		return
	}
	e.yield <- struct{}{}
	<-t.resume
}

// awaitVerb suspends the thread until its in-flight remote verb's
// completion event resumes it. Unlike block it schedules nothing: the
// completion is already threaded through the verb protocol.
func (t *Thread) awaitVerb() {
	e := t.e
	if e.windowed {
		t.shard.yield <- struct{}{}
		<-t.resume
		return
	}
	if e.direct {
		// Drive the dispatch chain ourselves until our own completion pops.
		if e.dispatchNext(t) {
			return
		}
		<-t.resume
		return
	}
	e.yield <- struct{}{}
	<-t.resume
}

// NodeID implements api.Ctx.
func (t *Thread) NodeID() int { return t.node }

// ThreadID implements api.Ctx.
func (t *Thread) ThreadID() int { return t.id }

// Now implements api.Ctx.
func (t *Thread) Now() int64 { return t.now() }

// Stopped implements api.Ctx.
func (t *Thread) Stopped() bool {
	e := t.e
	if e.windowed {
		return e.stopRequested.Load() || t.shard.now >= e.stopAt
	}
	return e.stopped
}

// Rand implements api.Ctx.
func (t *Thread) Rand() *rand.Rand { return t.rng }

// Alloc implements api.Ctx: allocation lands on the thread's own node.
func (t *Thread) Alloc(words, align int) ptr.Ptr {
	return t.e.space.Alloc(t.node, words, align)
}

// Free implements api.Ctx.
func (t *Thread) Free(p ptr.Ptr) { t.e.space.Free(p) }

// auditLocal rejects shared-memory operations on another node's words when
// the access audit is on: a thread's local loads and stores reach only its
// own node's region; everything else must go through verbs. (This is the
// exact per-access check; it holds in every mode, including windowed.)
func (t *Thread) auditLocal(p ptr.Ptr) {
	if t.e.audit && p.NodeID() != t.node {
		panic(fmt.Sprintf(
			"sim: access audit: thread %d on node %d used a local operation on node %d's memory",
			t.id, t.node, p.NodeID()))
	}
}

// --- Local (shared-memory) operations ---

// Read implements api.Ctx.
func (t *Thread) Read(p ptr.Ptr) uint64 {
	t.auditLocal(p)
	t.block(t.now() + t.e.p.LocalReadNS)
	return *t.e.space.WordAddr(p)
}

// Write implements api.Ctx.
func (t *Thread) Write(p ptr.Ptr, v uint64) {
	t.auditLocal(p)
	t.block(t.now() + t.e.p.LocalWriteNS)
	*t.e.space.WordAddr(p) = v
}

// CAS implements api.Ctx. Note that a local CAS deliberately ignores any
// in-flight torn remote RMW on the same word: local RMW is not atomic with
// remote RMW (Table 1), and modeling that is the point.
func (t *Thread) CAS(p ptr.Ptr, old, new uint64) uint64 {
	t.auditLocal(p)
	t.block(t.now() + t.e.p.LocalCASNS)
	addr := t.e.space.WordAddr(p)
	prev := *addr
	if prev == old {
		*addr = new
	}
	return prev
}

// Fence implements api.Ctx. The engine is sequentially consistent at event
// granularity, so the fence only costs time.
func (t *Thread) Fence() {
	t.block(t.now() + t.e.p.FenceNS)
}

// Pause implements api.Ctx: bounded exponential spin back-off.
func (t *Thread) Pause(iter int) {
	d := t.e.p.SpinPollMinNS
	for i := 0; i < iter && d < t.e.p.SpinPollMaxNS; i++ {
		d <<= 1
	}
	if d > t.e.p.SpinPollMaxNS {
		d = t.e.p.SpinPollMaxNS
	}
	t.block(t.now() + d)
}

// Work implements api.Ctx.
func (t *Thread) Work(d time.Duration) {
	if d <= 0 {
		return
	}
	t.block(t.now() + d.Nanoseconds())
}

// --- Remote (RDMA one-sided) operations ---

// verbWire draws one verb's cross-node wire latency: the base plus any
// transient fabric delay spike from the thread's deterministic fabric
// stream. Loopback verbs draw too (keeping each thread's fabric stream
// aligned across locality mixes) but use the PCIe wire instead.
func (t *Thread) verbWire() int64 {
	wire := t.e.p.RemoteWireNS
	if t.e.p.JitterProb > 0 && t.fabric.Float64() < t.e.p.JitterProb {
		wire += t.e.p.JitterNS
	}
	return wire
}

// loopVerbTimes routes a loopback verb (§1: the thread reaches its own
// node's memory through its own RNIC): both verb halves occupy the own
// NIC, the only wire is PCIe, and both halves count as PCIe-hungry
// loopback traffic for the congestion model. Everything it touches is
// own-shard state, so the loopback path stays synchronous in every mode.
// The caller decrements loopInFlight when the verb completes.
func (t *Thread) loopVerbTimes(p ptr.Ptr) (execAt, doneAt int64) {
	e := t.e
	t.verbWire() // consume the fabric draw; loopback rides PCIe regardless
	qp := nic.QP{SrcNode: t.node, SrcThread: t.id, DstNode: t.node}
	wire := e.p.LoopbackWireNS
	e.loopInFlight[t.node]++
	txDone := e.nics[t.node].Submit(t.now(), qp, true, e.loopInFlight[t.node])
	arrive := txDone + wire
	rxDone := e.nics[t.node].Submit(arrive, qp, true, e.loopInFlight[t.node])
	return rxDone, rxDone + wire
}

// remoteVerb issues one cross-node verb and blocks until its completion
// comes back: TX on the requester NIC now, the request arrives at the
// responder one wire later (evArrive on the owning shard), service and
// execution happen on the responder's timeline (evExec), and the
// completion crosses back (evComplete) — at which point the requester's
// side of the congestion accounting retires. The arrival and completion
// legs each cross shards with at least one wire (>= lookahead) of slack,
// which is exactly what lets the windowed executor run shards in parallel.
func (t *Thread) remoteVerb(p ptr.Ptr, op uint8, old, val uint64) uint64 {
	e := t.e
	wire := t.verbWire()
	e.remoteInFlight[t.node]++
	qp := nic.QP{SrcNode: t.node, SrcThread: t.id, DstNode: p.NodeID()}
	txDone := e.nics[t.node].Submit(t.now(), qp, false, e.remoteInFlight[t.node])
	t.verb = verbState{p: p, op: op, old: old, val: val, wire: wire}
	e.scheduleEv(t.shard, txDone+wire, evArrive, t)
	t.awaitVerb()
	e.remoteInFlight[t.node]--
	return t.verb.result
}

// RRead implements api.Ctx.
func (t *Thread) RRead(p ptr.Ptr) uint64 {
	if p.NodeID() == t.node {
		execAt, doneAt := t.loopVerbTimes(p)
		t.block(execAt)
		v := *t.e.space.WordAddr(p)
		t.block(doneAt)
		t.e.loopInFlight[t.node]--
		return v
	}
	return t.remoteVerb(p, verbRead, 0, 0)
}

// RWrite implements api.Ctx.
func (t *Thread) RWrite(p ptr.Ptr, v uint64) {
	if p.NodeID() == t.node {
		execAt, doneAt := t.loopVerbTimes(p)
		t.block(execAt)
		*t.e.space.WordAddr(p) = v
		t.block(doneAt)
		t.e.loopInFlight[t.node]--
		return
	}
	t.remoteVerb(p, verbWrite, 0, v)
}

// RCAS implements api.Ctx.
//
// Without tearing, the compare-and-swap executes atomically at the
// responder. With tearing enabled (model.TornRCAS), the read half executes
// first and the write half TornGapNS later; other remote RMWs on the word
// stall in between (the responder NIC serializes remote atomics), but
// local operations slide right into the window — reproducing Table 1's
// "remote CAS is not atomic with local Write/RMW". The cross-node torn
// path lives in execProtocol on the word's owning shard; the loopback path
// below mirrors it synchronously on the thread's own shard.
func (t *Thread) RCAS(p ptr.Ptr, old, new uint64) uint64 {
	if p.NodeID() != t.node {
		return t.remoteVerb(p, verbCAS, old, new)
	}
	execAt, doneAt := t.loopVerbTimes(p)
	t.block(execAt)
	if !t.e.p.TornRCAS {
		addr := t.e.space.WordAddr(p)
		prev := *addr
		if prev == old {
			*addr = new
		}
		t.block(doneAt)
		t.e.loopInFlight[t.node]--
		return prev
	}
	// Torn path: wait until no other remote RMW holds the word.
	for t.shard.tornHeld[p] {
		t.block(t.now() + t.e.p.SpinPollMinNS)
	}
	t.shard.tornHeld[p] = true
	addr := t.e.space.WordAddr(p)
	prev := *addr // read half
	t.block(t.now() + t.e.p.TornGapNS)
	if prev == old { // write half: blind from local memory's perspective
		*addr = new
	}
	delete(t.shard.tornHeld, p)
	if doneAt < t.now() {
		doneAt = t.now()
	}
	t.block(doneAt)
	t.e.loopInFlight[t.node]--
	return prev
}
