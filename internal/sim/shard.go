// shard.go is the engine's per-node layer and the conservative windowed
// parallel executor.
//
// Every node of the simulated cluster owns a shard: its event queue (one
// typed 4-ary heap), its sequence counter, its clock, its torn-RMW book,
// and — through event destinations (event.dest) — its NIC and in-flight
// congestion counters and its region of cluster memory. In every mode the
// shards are where sequence numbers are issued and torn state lives; the
// modes differ only in who pops events:
//
//   - serial / oracle: events bypass the shard queues entirely (one global
//     queue preserves the seed behavior exactly).
//   - sharded-serial (WithShards(1)): events land on their owning shard's
//     queue and Run/Step pop the globally least (at, seq) head across
//     shards — the same total order, bit-identical by construction.
//   - sharded-parallel (WithShards(n>1)): runWindowed below.
//
// The windowed executor is classic conservative parallel discrete-event
// simulation. Nodes interact only through verbs with a hard latency floor
// — model.Params.RemoteWireNS, the engine's lookahead — so an event at the
// global minimum head time `minHead` cannot cause any cross-shard event
// before minHead+lookahead. Everything in [minHead, minHead+lookahead) is
// therefore safe to execute, per shard, concurrently:
//
//	barrier:  drain cross-shard outboxes into owning shards' queues
//	window:   wend = min(shard heads) + lookahead
//	execute:  each shard pops (at, seq) order while head < wend, on up to
//	          `workers` goroutines (slots permitting); cross-shard sends
//	          buffer in the sender's outbox
//	repeat    until no events remain
//
// Cross-shard sends are asserted (panic) to be at least one lookahead
// ahead of the sending shard's clock, so no shard ever receives an event
// inside a window it already executed — time never regresses, and the
// merged schedule is the serial schedule. Worker counts only set the
// degree of concurrency; window boundaries depend on event times alone,
// so results are bit-identical from 1 worker to N.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"alock/internal/ptr"
	"alock/internal/slots"
)

// seqShardShift positions the issuing shard's node ID in the high bits of
// every sequence number: ties on the virtual clock break first by issuing
// node, then by that shard's local issue order. Both components are
// mode-independent — local issue order is preserved per shard even when
// shards run concurrently — which is what makes tie-breaking (and hence
// the whole schedule) identical across engines.
const seqShardShift = 56

// shard is one node's slice of the engine.
type shard struct {
	e    *Engine
	node int

	seqCtr uint64     // local issue counter (low bits of seq)
	q      eventQueue // this node's pending events (sharded modes)

	// tornHeld tracks words on this node currently mid-tear under a remote
	// RMW (model.TornRCAS): the responder serializes remote atomics, so
	// other remote RMWs on the word stall until the write half lands.
	// Owned by this shard's timeline in every mode.
	tornHeld map[ptr.Ptr]bool

	// tornWrites holds the pending write half of each in-flight torn remote
	// CAS on this node, snapshotted at read-half time. The snapshot keeps
	// evTornWrite self-contained: the requester thread may resume (its
	// completion is up to one lookahead ahead of the write half, so in a
	// parallel window the resume can run first on its own shard) and reuse
	// its verb state before the write half executes here.
	tornWrites map[*Thread]tornWrite

	// Windowed-executor state. now is the shard clock (threads observe it
	// via Ctx.Now while windowed); wend is the current window's exclusive
	// end; events counts dispatches since Run began, folded into the
	// engine counter at the final barrier. outbox buffers cross-shard
	// sends until the next barrier. yield is the running-thread -> shard
	// worker handoff. active marks the shard as executing the current
	// window, for the access auditor. trap carries a dispatch failure to
	// the barrier, which re-panics it on the Run caller.
	now    int64
	wend   int64
	events uint64
	outbox []event
	yield  chan struct{}
	active atomic.Bool
	trap   error
}

// tornWrite is the write half of a torn remote CAS, captured at read-half
// time on the responder shard (see shard.tornWrites).
type tornWrite struct {
	p        ptr.Ptr
	old, val uint64
	read     uint64 // read-half result; the write lands iff read == old
}

func newShard(e *Engine, node int) *shard {
	return &shard{
		e:          e,
		node:       node,
		tornHeld:   make(map[ptr.Ptr]bool),
		tornWrites: make(map[*Thread]tornWrite),
		yield:      make(chan struct{}),
	}
}

// nextSeq issues the next sequence number on this shard's timeline.
func (s *shard) nextSeq() uint64 {
	seq := uint64(s.node)<<seqShardShift | s.seqCtr
	s.seqCtr++
	return seq
}

// blockThread suspends t (a thread homed on this shard) until virtual time
// `at` during a parallel window. Fast path: if `at` is inside the safe
// window and no own-shard event could run first, advance the shard clock
// and keep the thread running — no other shard can affect this one before
// wend, by the lookahead contract. Otherwise schedule the wake-up and hand
// control back to the shard worker; the wake pops in this or a later
// window. One event is counted either way, matching the serial engine.
func (s *shard) blockThread(t *Thread, at int64) {
	if at < s.now {
		at = s.now
	}
	if at < s.wend && (s.q.len() == 0 || s.q.min().at > at) && s.events <= s.e.maxEvents {
		s.now = at
		s.events++
		return
	}
	s.e.scheduleEv(s, at, evWake, t)
	s.yield <- struct{}{}
	<-t.resume
}

// runWindow executes this shard's events with at < s.wend in (at, seq)
// order: wake-ups and completions resume their thread until it blocks
// again or exits; protocol events execute inline. A time regression or a
// blown event budget traps (recorded in s.trap, re-panicked at the
// barrier) — both indicate an engine bug or a livelocked workload, and the
// engine is unusable afterwards.
func (s *shard) runWindow() {
	defer s.active.Store(false)
	for s.q.len() > 0 {
		ev := s.q.min()
		if ev.at >= s.wend {
			return
		}
		s.q.pop()
		if ev.at < s.now {
			s.trap = fmt.Errorf("sim: shard %d: time went backwards (%dns after %dns)", s.node, ev.at, s.now) //lint:allow allocfree trap path: the engine is unusable after this, rate is zero in a healthy run
			return
		}
		s.now = ev.at
		s.events++
		if s.events > s.e.maxEvents {
			s.trap = fmt.Errorf("sim: shard %d: exceeded %d events at t=%dns — livelock?", s.node, s.e.maxEvents, s.now) //lint:allow allocfree trap path: the engine is unusable after this, rate is zero in a healthy run
			return
		}
		if hook := s.e.onWindowEvent; hook != nil {
			hook(s, ev)
		}
		if ev.kind == evWake || ev.kind == evComplete {
			ev.th.resume <- struct{}{}
			<-s.yield
			if s.trap != nil {
				return
			}
			continue
		}
		s.e.execProtocol(s, ev)
	}
}

// windowPool owns the helper goroutines of one windowed Run. The helpers
// are spawned once (each backed by an execution slot the caller already
// acquired) and parked on the start channel between windows; runWindow
// wakes as many as the window can use, joins in as the coordinator, and
// waits for the window to drain. Spawning per Run instead of per window
// keeps the per-window dispatch allocation-free — windows are the hot
// path of a parallel Run, often a handful of events each.
type windowPool struct {
	e       *Engine
	helpers int
	start   chan struct{}
	wg      sync.WaitGroup
}

func newWindowPool(e *Engine, helpers int) *windowPool {
	p := &windowPool{e: e, helpers: helpers, start: make(chan struct{})} //lint:allow allocfree pool construction runs once per windowed Run, not per window
	for i := 0; i < helpers; i++ {
		go p.helperLoop() //lint:allow allocfree helpers are spawned once per Run and parked between windows
	}
	return p
}

// helperLoop parks on the start channel; each token is one window's worth
// of claiming work. close(start) retires the helper.
func (p *windowPool) helperLoop() {
	for range p.start {
		p.e.claimShards()
		p.wg.Done()
	}
}

// runWindow drives one window: every woken helper plus the coordinator
// drain e.winActive through the shared claim counter. Helpers beyond
// len(winActive)-1 stay parked — they could only spin on an exhausted
// counter.
func (p *windowPool) runWindow() {
	k := p.helpers
	if h := len(p.e.winActive) - 1; k > h {
		k = h
	}
	p.e.winClaim.Store(0)
	p.wg.Add(k)
	for i := 0; i < k; i++ {
		p.start <- struct{}{}
	}
	p.e.claimShards()
	p.wg.Wait()
}

// close retires the helpers; the pool is unusable afterwards.
func (p *windowPool) close() { close(p.start) }

// claimShards executes active shards' windows, claiming indices from the
// shared counter until none remain. The coordinator and every pool helper
// run it concurrently; claim order is irrelevant to results because
// window boundaries depend on event times alone.
func (e *Engine) claimShards() {
	for {
		i := int(e.winClaim.Add(1)) - 1
		if i >= len(e.winActive) {
			return
		}
		e.winActive[i].runWindow()
	}
}

// clearWindowed is runWindowed's deferred exit hook.
func (e *Engine) clearWindowed() { e.windowed = false }

// runWindowed is Run's sharded-parallel driver. Concurrency is governed by
// the process-wide execution-slot budget (internal/slots): the Run caller
// owns one implicit slot, and each helper goroutine beyond it needs an
// extra slot, capped by the configured worker count and the node count.
// Zero granted extras still runs the windowed executor — the coordinator
// just executes every active shard's window itself. The window structure
// (and therefore every result) is identical at any width; only wall-clock
// time changes.
func (e *Engine) runWindowed() {
	want := e.workers
	if n := len(e.shards); want > n {
		want = n
	}
	extra := slots.TryAcquire(want - 1)
	defer slots.Release(extra)

	e.windowed = true
	defer e.clearWindowed()
	if e.audit {
		e.curShard.Store(auditParallel)
		defer e.curShard.Store(auditIdle)
	}
	for _, s := range e.shards {
		s.now = e.now
		s.events = 0
	}

	pool := newWindowPool(e, extra)
	defer pool.close()
	for {
		// Barrier: deliver cross-shard sends to their owning shards.
		for _, s := range e.shards {
			for _, ev := range s.outbox {
				e.shards[ev.dest()].q.push(ev)
			}
			s.outbox = s.outbox[:0]
		}
		// Global minimum head; done when every queue is empty.
		minHead, any := int64(0), false
		for _, s := range e.shards {
			if s.q.len() == 0 {
				continue
			}
			if h := s.q.min().at; !any || h < minHead {
				minHead, any = h, true
			}
		}
		if !any {
			break
		}
		// Aggregate event budget (per-shard overshoot traps in runWindow).
		total := e.events
		for _, s := range e.shards {
			total += s.events
		}
		if total > e.maxEvents {
			e.foldShards()
			panic(fmt.Errorf("sim: exceeded %d events at t=%dns — livelock?", e.maxEvents, e.now))
		}
		// The safe window: nothing can cross shards before minHead+lookahead.
		wend := minHead + e.lookahead
		e.winActive = e.winActive[:0]
		for _, s := range e.shards {
			if s.q.len() > 0 && s.q.min().at < wend {
				s.wend = wend
				s.active.Store(true)
				e.winActive = append(e.winActive, s)
			}
		}
		pool.runWindow()
		for _, s := range e.shards {
			if s.trap != nil {
				e.foldShards()
				panic(s.trap)
			}
		}
	}
	e.foldShards()
}

// foldShards commits the windowed run's per-shard state back to the
// engine: the clock advances to the latest shard clock, the per-shard
// event counts fold into the engine counter, and the stop flag is
// recomputed for the serial Stopped path.
func (e *Engine) foldShards() {
	for _, s := range e.shards {
		if s.now > e.now {
			e.now = s.now
		}
		e.events += s.events
		s.events = 0
	}
	if e.stopRequested.Load() || e.now >= e.stopAt {
		e.stopped = true
	}
}
