package sim

import (
	"runtime"
	"testing"
	"time"

	"alock/internal/api"
	"alock/internal/model"
)

// TestScheduleStepZeroAllocs is the allocation guard on the engine's
// schedule/pop hot path: once the event slice has grown to its working
// size, processing an event — heap pop, accounting, the goroutine handoff
// and the re-schedule on the next block — must not allocate. The old
// container/heap queue boxed every event into an interface{} on push and
// pop, one heap allocation per scheduled event; this test keeps it gone.
func TestScheduleStepZeroAllocs(t *testing.T) {
	e := New(1, 1024, model.Uniform(10), 1)
	for i := 0; i < 4; i++ {
		e.Spawn(0, func(ctx api.Ctx) {
			for !ctx.Stopped() {
				ctx.Work(10 * time.Nanosecond)
			}
		})
	}
	e.SetHorizon(1 << 40)
	// Warm up: launch goroutines, grow the event slice to steady state.
	for i := 0; i < 256; i++ {
		e.Step()
	}
	avg := testing.AllocsPerRun(2000, func() {
		if !e.ProcessNextEvent() {
			t.Fatal("engine drained mid-measurement")
		}
	})
	if avg != 0 {
		t.Fatalf("schedule/pop path allocates %.3f allocs/event, want 0", avg)
	}
	e.RequestStop()
	for e.Step() {
	}
}

// TestDirectRunNearZeroAllocs bounds the direct-handoff Run loop: a
// contended run processing tens of thousands of events may allocate only
// its fixed setup (goroutine launches) — not per event.
func TestDirectRunNearZeroAllocs(t *testing.T) {
	e, _ := contendedEngine()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	e.Run(2_000_000)
	runtime.ReadMemStats(&after)
	events := e.Events()
	if events < 10_000 {
		t.Fatalf("run too small to measure: %d events", events)
	}
	allocs := after.Mallocs - before.Mallocs
	// Launching 4 goroutines and the harness of ReadMemStats itself cost a
	// fixed few dozen allocations; per-event allocation would show up as
	// tens of thousands.
	if allocs > 500 {
		t.Fatalf("direct Run allocated %d times over %d events (%.4f allocs/event), want O(setup)",
			allocs, events, float64(allocs)/float64(events))
	}
}

// TestWindowPoolDispatchZeroAllocs guards the windowed executor's
// per-window cost: the old driver spawned fresh helper goroutines and a
// capturing closure for every window; the pool parks persistent helpers
// between windows, so dispatching a window must not allocate. The helper
// count is explicit — the test does not depend on the slot budget.
func TestWindowPoolDispatchZeroAllocs(t *testing.T) {
	e := New(4, 64, model.Uniform(10), 1)
	e.winActive = append(e.winActive[:0], e.shards...) // queues empty: dispatch cost only
	pool := newWindowPool(e, 2)
	defer pool.close()
	pool.runWindow() // warm: helpers reach their parked state
	avg := testing.AllocsPerRun(2000, func() { pool.runWindow() })
	if avg != 0 {
		t.Fatalf("window dispatch allocates %.3f allocs/window, want 0", avg)
	}
}
