package sim

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"alock/internal/api"
	"alock/internal/model"
	"alock/internal/ptr"
	"alock/internal/slots"
)

// shardedWorkload builds a cross-node traffic mix that exercises every
// verb path: remote CAS retry loops (torn on CX3), remote reads/writes,
// loopback verbs, local operations and spin backoff — across `nodes`
// nodes with `tpn` threads each, all hammering a small set of shared
// words with deterministic per-thread access patterns.
func shardedWorkload(nodes, tpn int, opts ...Option) (*Engine, []ptr.Ptr) {
	e := New(nodes, 4096, model.CX3(), 42, opts...)
	words := make([]ptr.Ptr, nodes)
	for n := 0; n < nodes; n++ {
		words[n] = e.Space().AllocLine(n)
	}
	for n := 0; n < nodes; n++ {
		for k := 0; k < tpn; k++ {
			node := n
			e.Spawn(node, func(ctx api.Ctx) {
				i := 0
				for !ctx.Stopped() {
					w := words[(ctx.ThreadID()+i)%len(words)]
					i++
					switch i % 4 {
					case 0: // contended counter increment
						for {
							old := ctx.RRead(w)
							if ctx.RCAS(w, old, old+1) == old {
								break
							}
							ctx.Pause(i % 3)
						}
					case 1:
						ctx.RWrite(w.Add(uint64(1+ctx.ThreadID()%7)), uint64(i))
					case 2:
						_ = ctx.RRead(w)
						ctx.Work(30 * time.Nanosecond)
					case 3: // own-node shared-memory traffic
						own := words[node]
						ctx.Write(own.Add(uint64(1+ctx.ThreadID()%7)), uint64(i))
						_ = ctx.Read(own)
					}
				}
			})
		}
	}
	return e, words
}

// fingerprint condenses a finished run's observable state: clock, event
// count, and every word of cluster memory.
func fingerprint(e *Engine, words []ptr.Ptr) string {
	var b strings.Builder
	fmt.Fprintf(&b, "now=%d events=%d", e.Now(), e.Events())
	for _, w := range words {
		for off := uint64(0); off < 8; off++ {
			fmt.Fprintf(&b, " %d", *e.Space().WordAddr(w.Add(off)))
		}
	}
	for i := 0; i < e.Space().Nodes(); i++ {
		s := e.NIC(i).Stats()
		fmt.Fprintf(&b, " nic%d=%d/%d/%d", i, s.Verbs, s.QPCMisses, s.BusyNS)
	}
	return b.String()
}

// runMode builds the workload under one engine mode and returns its
// fingerprint.
func runMode(t *testing.T, nodes, tpn int, horizon int64, opts ...Option) string {
	t.Helper()
	e, words := shardedWorkload(nodes, tpn, opts...)
	e.Run(horizon)
	return fingerprint(e, words)
}

// TestShardedSerialBitIdentical: the sharded engine with the merge
// scheduler (1 worker) must replay the serial engine's schedule exactly —
// same clock, same event count, same memory image, same NIC stats.
func TestShardedSerialBitIdentical(t *testing.T) {
	const horizon = 300_000
	serial := runMode(t, 4, 3, horizon)
	sharded := runMode(t, 4, 3, horizon, WithShards(1))
	if serial != sharded {
		t.Errorf("sharded-serial diverged from serial:\n serial:  %s\n sharded: %s", serial, sharded)
	}
	oracle := runMode(t, 4, 3, horizon, WithOracle())
	if serial != oracle {
		t.Errorf("typed serial diverged from oracle:\n serial: %s\n oracle: %s", serial, oracle)
	}
}

// TestWindowedBitIdentical: the conservative windowed executor must be
// bit-identical to serial at every worker width, with and without spare
// execution slots (zero granted helpers still runs the windowed code
// path with the coordinator doing all the work).
func TestWindowedBitIdentical(t *testing.T) {
	const horizon = 300_000
	serial := runMode(t, 4, 3, horizon)
	for _, workers := range []int{2, 4, 8} {
		got := runMode(t, 4, 3, horizon, WithShards(workers))
		if got != serial {
			t.Errorf("windowed (workers=%d) diverged from serial:\n serial:   %s\n windowed: %s", workers, got, serial)
		}
	}
	// With extra slots available, helper goroutines actually run.
	restore := slots.SetCapacity(8)
	defer restore()
	got := runMode(t, 4, 3, horizon, WithShards(4))
	if got != serial {
		t.Errorf("windowed (4 workers, 8 slots) diverged from serial:\n serial:   %s\n windowed: %s", got, serial)
	}
}

// TestWindowedWithAudit: the access-audit mode must pass cleanly on a
// protocol-respecting workload in every mode (it would panic on an
// out-of-protocol cross-shard touch).
func TestWindowedWithAudit(t *testing.T) {
	const horizon = 200_000
	serial := runMode(t, 3, 2, horizon, WithAccessAudit())
	windowed := runMode(t, 3, 2, horizon, WithShards(3), WithAccessAudit())
	if serial != windowed {
		t.Errorf("audit-mode windowed diverged from serial:\n serial:   %s\n windowed: %s", serial, windowed)
	}
}

// TestAuditCatchesCrossShardTouch: a local operation on another node's
// memory is an out-of-protocol cross-shard access; the audit must turn it
// into a Run-site panic naming the violation.
func TestAuditCatchesCrossShardTouch(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"serial", []Option{WithAccessAudit()}},
		{"sharded-serial", []Option{WithShards(1), WithAccessAudit()}},
		{"windowed", []Option{WithShards(2), WithAccessAudit()}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			e := New(2, 1024, model.CX3(), 1, mode.opts...)
			remote := e.Space().AllocLine(1)
			e.Spawn(0, func(ctx api.Ctx) {
				_ = ctx.Read(remote) // illegal: local read of node 1's word
			})
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("audit did not fire on a cross-shard local read")
				}
				if !strings.Contains(fmt.Sprint(r), "access audit") {
					t.Fatalf("unexpected panic: %v", r)
				}
			}()
			e.Run(100_000)
		})
	}
}

// TestOracleRejectsShards: WithOracle is the single-queue serial
// reference; combining it with WithShards must fail loudly, not silently
// ignore one of the two.
func TestOracleRejectsShards(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New accepted WithOracle+WithShards")
		}
		if !strings.Contains(fmt.Sprint(r), "WithOracle") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	New(2, 1024, model.CX3(), 1, WithOracle(), WithShards(2))
}

// TestWithShardsRejectsZeroWorkers: worker counts below 1 are a
// configuration error.
func TestWithShardsRejectsZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithShards(0) accepted")
		}
	}()
	WithShards(0)
}

// TestWindowSafetyProperty: the conservative invariant — the windowed
// executor never dispatches an event outside the safe window its barrier
// computed, and a shard's clock never regresses across windows. Checked
// against the engine's own window bookkeeping via the test hook, over a
// randomized-ish workload dense in cross-shard traffic.
func TestWindowSafetyProperty(t *testing.T) {
	restore := slots.SetCapacity(8)
	defer restore()
	e, _ := shardedWorkload(4, 3, WithShards(4))
	var mu sync.Mutex
	violations := []string{}
	lastAt := make([]int64, 4)
	dispatched := 0
	e.onWindowEvent = func(s *shard, ev event) {
		mu.Lock()
		defer mu.Unlock()
		dispatched++
		if ev.at >= s.wend {
			violations = append(violations,
				fmt.Sprintf("shard %d dispatched t=%d beyond window end %d", s.node, ev.at, s.wend))
		}
		if ev.at < lastAt[s.node] {
			violations = append(violations,
				fmt.Sprintf("shard %d time regressed: %d after %d", s.node, ev.at, lastAt[s.node]))
		}
		lastAt[s.node] = ev.at
		if d := ev.dest(); d != s.node {
			violations = append(violations,
				fmt.Sprintf("shard %d dispatched an event owned by shard %d", s.node, d))
		}
	}
	e.Run(200_000)
	if len(violations) > 0 {
		t.Fatalf("%d window-safety violations, first: %s", len(violations), violations[0])
	}
	if dispatched == 0 {
		t.Fatal("window hook saw no events — windowed path did not run")
	}
}

// TestWindowedStopAndHorizon: Run to a horizon under the windowed
// executor stops every thread and commits a final clock at or beyond the
// horizon; a second Run with a longer horizon resumes cleanly.
func TestWindowedStopAndHorizon(t *testing.T) {
	e, words := shardedWorkload(3, 2, WithShards(3))
	e.Run(150_000)
	if e.Now() < 150_000 {
		t.Errorf("clock %d short of horizon", e.Now())
	}
	if !e.Stopped() {
		t.Error("engine not stopped after Run")
	}
	_ = words
}

// TestWindowedDeadlockDetected: threads that block forever under the
// windowed executor must still be reported as a deadlock when the event
// queues drain.
func TestWindowedDeadlockDetected(t *testing.T) {
	e := New(2, 1024, model.CX3(), 1, WithShards(2))
	w := e.Space().AllocLine(0)
	e.Spawn(1, func(ctx api.Ctx) {
		for ctx.RRead(w) == 0 && !ctx.Stopped() {
			ctx.Pause(1)
		}
	})
	// No writer: the poller winds down at the horizon; this run must NOT
	// deadlock. (The deadlock panic path is exercised by the serial tests;
	// here we pin that windowed wind-down terminates.)
	e.Run(50_000)
	if !e.Stopped() {
		t.Error("windowed run did not stop")
	}
}

// TestWindowedEventsCounterMatchesSerial pins the events-counter contract
// directly (it is also part of every fingerprint above): one event per
// block in every mode.
func TestWindowedEventsCounterMatchesSerial(t *testing.T) {
	const horizon = 100_000
	builds := func(opts ...Option) uint64 {
		e, _ := shardedWorkload(2, 2, opts...)
		e.Run(horizon)
		return e.Events()
	}
	serial := builds()
	if w := builds(WithShards(2)); w != serial {
		t.Errorf("windowed events %d != serial %d", w, serial)
	}
	if o := builds(WithOracle()); o != serial {
		t.Errorf("oracle events %d != serial %d", o, serial)
	}
}
