package sim

import "math/rand"

// Subsystem partitions the engine's deterministic randomness. Every random
// stream in a run is derived from the engine seed plus a (subsystem, index)
// key, so adding a draw to one subsystem never perturbs the streams of
// another — runs stay reproducible under refactoring, and two subsystems
// that happen to share an index (e.g. thread 3's workload stream and thread
// 3's fabric stream) are still decorrelated.
type Subsystem uint64

const (
	// SubsystemThread feeds api.Ctx.Rand — the stream workloads and lock
	// algorithms draw from.
	SubsystemThread Subsystem = 1
	// SubsystemFabric feeds the fabric failure injection (wire jitter).
	SubsystemFabric Subsystem = 2
	// SubsystemBackoff feeds the transaction layer's randomized retry
	// backoff (per-thread streams, indexed by thread ID). Keeping backoff
	// draws off the workload stream means a transaction spec's retries
	// never shift the operation schedule of the draws that picked the
	// locks — and specs without transactions consume nothing from either.
	SubsystemBackoff Subsystem = 3
	// SubsystemArrival feeds the lock-service cluster's open-loop arrival
	// generators (per-service-shard streams, indexed by shard ID): Poisson
	// interarrival gaps, burst-phase stagger, client IDs and key picks all
	// come from here. Closed-loop runs spawn no generators and consume
	// nothing, so pre-cluster schedules replay bit-identically; and because
	// each shard owns its stream, the arrival sequence of one shard never
	// depends on another shard's draws — the property that lets the
	// windowed parallel executor run shards concurrently.
	SubsystemArrival Subsystem = 4
)

// PartitionedRNG derives decorrelated deterministic *rand.Rand streams from
// a single engine seed, keyed by (subsystem, index). The derivation is a
// splitmix64 finalizer chain over the three key components, replacing the
// previous ad-hoc seed^id*goldenRatio arithmetic: nearby keys produce
// unrelated streams, and the mapping is stable across runs and platforms.
type PartitionedRNG struct {
	seed int64
}

// NewPartitionedRNG wraps an engine seed.
func NewPartitionedRNG(seed int64) PartitionedRNG { return PartitionedRNG{seed: seed} }

// splitmix64 is the finalizer of the SplitMix64 generator — a full-avalanche
// mixing function, so single-bit key differences flip ~half the output bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SeedFor returns the derived source seed for (subsystem, index).
func (p PartitionedRNG) SeedFor(sub Subsystem, index int) int64 {
	h := splitmix64(uint64(p.seed))
	h = splitmix64(h ^ uint64(sub))
	h = splitmix64(h ^ uint64(index))
	return int64(h)
}

// Stream returns a fresh deterministic generator for (subsystem, index).
// Calling it twice with the same key returns independent generators with
// identical output sequences.
func (p PartitionedRNG) Stream(sub Subsystem, index int) *rand.Rand {
	return rand.New(rand.NewSource(p.SeedFor(sub, index)))
}
