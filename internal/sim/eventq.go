// eventq.go is the engine's event priority queue: a hand-inlined typed
// 4-ary min-heap over []event. The previous implementation went through
// container/heap, which costs an interface conversion (one heap allocation
// boxing the event struct) on every Push and Pop plus dynamic dispatch for
// every comparison — per scheduled event, on the hottest path the engine
// has. The typed queue allocates only when the backing slice grows, so a
// steady-state simulation schedules and pops with zero heap allocations,
// and the slice is reused across re-arms of the same engine.
//
// A 4-ary layout (children of i at 4i+1..4i+4) halves the tree depth of a
// binary heap: sift-down does more comparisons per level but far fewer
// cache-missing level hops, which wins for the engine's queue sizes (one
// pending event per suspended thread).
//
// Ordering is the engine's total event order — (at, seq) with seq unique —
// so pop order is independent of heap shape and bit-identical to the
// container/heap oracle kept in sim.go for verification.
package sim

// eventQueue is a 4-ary min-heap ordered by (at, seq).
type eventQueue struct {
	ev []event
}

// eventLess is the engine's total event order: virtual time, then insertion
// sequence. seq is unique, so there are no incomparable pairs.
func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) len() int { return len(q.ev) }

// min returns the earliest event without removing it. It must not be called
// on an empty queue.
func (q *eventQueue) min() event { return q.ev[0] }

// push inserts ev, sifting it up to its heap position.
func (q *eventQueue) push(ev event) {
	q.ev = append(q.ev, ev)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(ev, q.ev[parent]) {
			break
		}
		q.ev[i] = q.ev[parent]
		i = parent
	}
	q.ev[i] = ev
}

// pop removes and returns the earliest event. It must not be called on an
// empty queue. The backing slice is retained for reuse.
func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	last := q.ev[n]
	q.ev[n] = event{} // drop the *Thread reference for the GC
	q.ev = q.ev[:n]
	if n > 0 {
		q.siftDown(last)
	}
	return top
}

// siftDown places ev (logically at the root) at its heap position.
func (q *eventQueue) siftDown(ev event) {
	n := len(q.ev)
	i := 0
	for {
		first := i<<2 + 1 // leftmost child
		if first >= n {
			break
		}
		// Pick the smallest of up to four children.
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if eventLess(q.ev[c], q.ev[best]) {
				best = c
			}
		}
		if !eventLess(q.ev[best], ev) {
			break
		}
		q.ev[i] = q.ev[best]
		i = best
	}
	q.ev[i] = ev
}
