package sim

import (
	"testing"
	"time"

	"alock/internal/api"
	"alock/internal/model"
	"alock/internal/ptr"
)

func TestSingleThreadTiming(t *testing.T) {
	p := model.Uniform(10)
	e := New(1, 1024, p, 1)
	var times []int64
	e.Spawn(0, func(ctx api.Ctx) {
		w := ctx.Alloc(1, 1)
		times = append(times, ctx.Now())
		ctx.Write(w, 7) // +10ns
		times = append(times, ctx.Now())
		if got := ctx.Read(w); got != 7 { // +10ns
			t.Errorf("Read = %d, want 7", got)
		}
		times = append(times, ctx.Now())
	})
	e.Run(1 << 40)
	want := []int64{0, 10, 20}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times[%d] = %d, want %d", i, times[i], want[i])
		}
	}
}

func TestLocalOpsEffects(t *testing.T) {
	p := model.Uniform(5)
	e := New(2, 1024, p, 1)
	w := e.Space().AllocLine(1)
	e.Spawn(1, func(ctx api.Ctx) {
		if prev := ctx.CAS(w, 0, 42); prev != 0 {
			t.Errorf("CAS on zero word returned %d", prev)
		}
		if prev := ctx.CAS(w, 0, 99); prev != 42 {
			t.Errorf("failed CAS returned %d, want 42", prev)
		}
		if got := ctx.Read(w); got != 42 {
			t.Errorf("Read = %d, want 42 (failed CAS must not write)", got)
		}
	})
	e.Run(1 << 40)
}

func TestRemoteOpsEffects(t *testing.T) {
	p := model.Uniform(5)
	e := New(2, 1024, p, 1)
	w := e.Space().AllocLine(1)
	e.Spawn(0, func(ctx api.Ctx) { // node 0 accessing node 1: genuinely remote
		ctx.RWrite(w, 11)
		if got := ctx.RRead(w); got != 11 {
			t.Errorf("RRead = %d, want 11", got)
		}
		if prev := ctx.RCAS(w, 11, 22); prev != 11 {
			t.Errorf("RCAS returned %d, want 11", prev)
		}
		if got := ctx.RRead(w); got != 22 {
			t.Errorf("RRead after RCAS = %d, want 22", got)
		}
	})
	e.Run(1 << 40)
}

func TestRemoteSlowerThanLocal(t *testing.T) {
	p := model.CX3()
	e := New(2, 1024, p, 1)
	w0 := e.Space().AllocLine(0)
	w1 := e.Space().AllocLine(1)
	var localNS, remoteNS int64
	e.Spawn(0, func(ctx api.Ctx) {
		t0 := ctx.Now()
		ctx.Read(w0)
		localNS = ctx.Now() - t0
		t1 := ctx.Now()
		ctx.RRead(w1)
		remoteNS = ctx.Now() - t1
	})
	e.Run(1 << 40)
	if remoteNS < 10*localNS {
		t.Fatalf("remote read %dns not >=10x local read %dns", remoteNS, localNS)
	}
}

func TestLoopbackCheaperThanRemoteButNotLocal(t *testing.T) {
	p := model.CX3()
	e := New(2, 1024, p, 1)
	w0 := e.Space().AllocLine(0)
	w1 := e.Space().AllocLine(1)
	var loopNS, remoteNS, localNS int64
	e.Spawn(0, func(ctx api.Ctx) {
		t0 := ctx.Now()
		ctx.RRead(w0) // own node via RDMA = loopback
		loopNS = ctx.Now() - t0
		t1 := ctx.Now()
		ctx.RRead(w1)
		remoteNS = ctx.Now() - t1
		t2 := ctx.Now()
		ctx.Read(w0)
		localNS = ctx.Now() - t2
	})
	e.Run(1 << 40)
	if !(loopNS < remoteNS) {
		t.Errorf("loopback (%d) should be cheaper than remote (%d)", loopNS, remoteNS)
	}
	if !(loopNS > 10*localNS) {
		t.Errorf("loopback (%d) should be far slower than local (%d)", loopNS, localNS)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		p := model.CX3()
		e := New(4, 4096, p, 42)
		w := e.Space().AllocLine(0)
		results := make([]int64, 8)
		for i := 0; i < 8; i++ {
			i := i
			e.Spawn(i%4, func(ctx api.Ctx) {
				for k := 0; k < 50; k++ {
					if ctx.Rand().Intn(2) == 0 {
						ctx.RCAS(w, 0, uint64(ctx.ThreadID()))
						ctx.RWrite(w, 0)
					} else {
						ctx.Work(time.Duration(ctx.Rand().Intn(100)) * time.Nanosecond)
					}
				}
				results[i] = ctx.Now()
			})
		}
		e.Run(1 << 40)
		return results
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: run1[%d]=%d run2[%d]=%d", i, a[i], i, b[i])
		}
	}
}

func TestInterleavingTwoThreads(t *testing.T) {
	// Two threads increment a word via read-modify-write cycles made of
	// separate ops; the engine must interleave them at op granularity.
	p := model.Uniform(10)
	e := New(1, 1024, p, 1)
	w := e.Space().AllocLine(0)
	for i := 0; i < 2; i++ {
		e.Spawn(0, func(ctx api.Ctx) {
			for k := 0; k < 100; k++ {
				for {
					old := ctx.Read(w)
					if ctx.CAS(w, old, old+1) == old {
						break
					}
				}
			}
		})
	}
	e.Run(1 << 40)
	var final uint64
	e.Spawn(0, func(ctx api.Ctx) { final = ctx.Read(w) })
	// Run again with remaining thread.
	e.Run(1 << 41)
	if final != 200 {
		t.Fatalf("final counter = %d, want 200", final)
	}
}

func TestStoppedFlag(t *testing.T) {
	p := model.Uniform(10)
	e := New(1, 1024, p, 1)
	var iters int
	e.Spawn(0, func(ctx api.Ctx) {
		for !ctx.Stopped() {
			ctx.Work(100 * time.Nanosecond)
			iters++
		}
	})
	e.Run(10_000)
	if iters < 90 || iters > 110 {
		t.Fatalf("iterations before stop = %d, want ~100", iters)
	}
}

func TestRequestStopSurvivesSetHorizon(t *testing.T) {
	// Regression: SetHorizon used to recompute e.stopped from the clock
	// alone, silently un-stopping a run whose harness had called
	// RequestStop. An explicit stop must be sticky across re-arms.
	p := model.Uniform(10)
	e := New(1, 1024, p, 1)
	var iters int
	e.Spawn(0, func(ctx api.Ctx) {
		for !ctx.Stopped() {
			ctx.Work(100 * time.Nanosecond)
			if iters++; iters == 50 {
				e.RequestStop() // harness-style early stop mid-run
			}
		}
	})
	e.SetHorizon(1 << 40)
	for e.Step() {
	}
	if iters != 50 {
		t.Fatalf("RequestStop did not cut the run short: %d iterations", iters)
	}
	if !e.Stopped() {
		t.Fatal("RequestStop did not stop the engine")
	}
	e.SetHorizon(1 << 41) // re-arm further out: must NOT un-stop the run
	if !e.Stopped() {
		t.Fatal("SetHorizon after RequestStop un-stopped the run")
	}
	var extra int
	e.Spawn(0, func(ctx api.Ctx) {
		for !ctx.Stopped() {
			ctx.Work(100 * time.Nanosecond)
			extra++
		}
	})
	for e.Step() {
	}
	if extra != 0 {
		t.Fatalf("thread ran %d iterations after a sticky stop", extra)
	}
}

func TestSetHorizonRearmsWithoutRequestStop(t *testing.T) {
	// The flip side of the sticky-stop contract: with no explicit stop,
	// extending the horizon past the clock un-stops the run.
	e := New(1, 1024, model.Uniform(10), 1)
	e.SetHorizon(5)
	e.Spawn(0, func(ctx api.Ctx) { ctx.Work(100 * time.Nanosecond) })
	for e.Step() {
	}
	if !e.Stopped() {
		t.Fatal("run past horizon not stopped")
	}
	e.SetHorizon(1 << 40)
	if e.Stopped() {
		t.Fatal("extending the horizon did not re-arm a horizon-only stop")
	}
}

func TestTornRCASAllowsLocalInterleave(t *testing.T) {
	// A local write lands inside the torn window of a remote CAS: the CAS
	// "succeeds" based on its stale read and clobbers the local write —
	// the Table 1 hazard.
	p := model.Uniform(10)
	p.TornRCAS = true
	p.TornGapNS = 1000
	e := New(2, 1024, p, 1)
	w := e.Space().AllocLine(0)
	var clobbered bool
	e.Spawn(1, func(ctx api.Ctx) { // remote thread
		prev := ctx.RCAS(w, 0, 500)
		if prev != 0 {
			t.Errorf("remote CAS saw %d, expected stale 0", prev)
		}
	})
	e.Spawn(0, func(ctx api.Ctx) { // local thread on w's node
		ctx.Work(35 * time.Nanosecond) // land inside the torn window
		ctx.Write(w, 7)
		ctx.Work(3 * time.Microsecond)
		if ctx.Read(w) == 500 {
			clobbered = true
		}
	})
	e.Run(1 << 40)
	if !clobbered {
		t.Fatal("torn RCAS did not clobber the interleaved local write")
	}
}

func TestTornRCASRemoteRemoteStillAtomic(t *testing.T) {
	// Two remote threads CAS-increment a word concurrently; remote RMWs
	// serialize at the responder even in torn mode, so no increment is
	// ever lost.
	p := model.Uniform(10)
	p.TornRCAS = true
	p.TornGapNS = 500
	e := New(3, 1024, p, 7)
	w := e.Space().AllocLine(0)
	const per = 50
	for i := 1; i <= 2; i++ {
		e.Spawn(i, func(ctx api.Ctx) {
			for k := 0; k < per; k++ {
				for {
					old := ctx.RRead(w)
					if ctx.RCAS(w, old, old+1) == old {
						break
					}
				}
			}
		})
	}
	e.Run(1 << 40)
	var final uint64
	e.Spawn(0, func(ctx api.Ctx) { final = ctx.Read(w) })
	e.Run(1 << 41)
	if final != 2*per {
		t.Fatalf("lost updates: counter = %d, want %d", final, 2*per)
	}
}

func TestMaxEventsGuard(t *testing.T) {
	p := model.Uniform(10)
	e := New(1, 1024, p, 1, WithMaxEvents(100))
	e.Spawn(0, func(ctx api.Ctx) {
		for { // spin forever
			ctx.Pause(1)
		}
	})
	defer func() {
		if recover() == nil {
			t.Fatal("runaway simulation did not panic")
		}
	}()
	e.Run(1 << 40)
}

func TestPauseBackoffBounded(t *testing.T) {
	p := model.CX3()
	e := New(1, 1024, p, 1)
	e.Spawn(0, func(ctx api.Ctx) {
		t0 := ctx.Now()
		ctx.Pause(0)
		first := ctx.Now() - t0
		if first != p.SpinPollMinNS {
			t.Errorf("Pause(0) = %dns, want %d", first, p.SpinPollMinNS)
		}
		t1 := ctx.Now()
		ctx.Pause(1000)
		big := ctx.Now() - t1
		if big != p.SpinPollMaxNS {
			t.Errorf("Pause(1000) = %dns, want cap %d", big, p.SpinPollMaxNS)
		}
	})
	e.Run(1 << 40)
}

func TestNICCongestionVisibleThroughEngine(t *testing.T) {
	// Many threads hammering loopback verbs on one node must drive the
	// NIC into its slowdown regime.
	p := model.CX3()
	e := New(1, 1<<14, p, 3)
	w := e.Space().AllocLine(0)
	for i := 0; i < 12; i++ {
		e.Spawn(0, func(ctx api.Ctx) {
			for !ctx.Stopped() {
				ctx.RRead(w)
			}
		})
	}
	e.Run(2_000_000) // 2ms virtual
	if e.NIC(0).Stats().Slowdowns == 0 {
		t.Fatal("expected loopback congestion slowdowns, saw none")
	}
}

func TestSpawnBadNodePanics(t *testing.T) {
	e := New(2, 64, model.Uniform(1), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn on invalid node did not panic")
		}
	}()
	e.Spawn(2, func(api.Ctx) {})
}

func TestAllocOnOwnNode(t *testing.T) {
	e := New(3, 1024, model.Uniform(1), 1)
	e.Spawn(2, func(ctx api.Ctx) {
		p := ctx.Alloc(8, 8)
		if p.NodeID() != 2 {
			t.Errorf("Alloc landed on node %d, want 2", p.NodeID())
		}
		ctx.Free(p)
	})
	e.Run(1 << 40)
}

func TestClassifyMatchesPointer(t *testing.T) {
	if api.Classify(1, ptr.Pack(1, 64)) != api.CohortLocal {
		t.Error("same-node access must classify local")
	}
	if api.Classify(0, ptr.Pack(1, 64)) != api.CohortRemote {
		t.Error("cross-node access must classify remote")
	}
}

func TestVerbJitterInjectsDelay(t *testing.T) {
	base := model.Uniform(10)
	run := func(p model.Params) int64 {
		e := New(2, 1024, p, 9)
		w := e.Space().AllocLine(1)
		var total int64
		e.Spawn(0, func(ctx api.Ctx) {
			t0 := ctx.Now()
			for i := 0; i < 200; i++ {
				ctx.RRead(w)
			}
			total = ctx.Now() - t0
		})
		e.Run(1 << 62)
		return total
	}
	clean := run(base)
	jit := base
	jit.JitterProb = 0.2
	jit.JitterNS = 5000
	jittered := run(jit)
	// ~40 of 200 verbs pick up 5us: expect at least 100us extra.
	if jittered < clean+100_000 {
		t.Fatalf("jitter not applied: clean=%dns jittered=%dns", clean, jittered)
	}
}

func TestStepPrimitivesMatchRun(t *testing.T) {
	// Driving the engine event by event through the step primitives must
	// produce exactly the run Run produces: same final time, same event
	// count, same memory effects.
	build := func() (*Engine, ptr.Ptr) {
		p := model.CX3()
		e := New(2, 1024, p, 21)
		w := e.Space().AllocLine(0)
		for i := 0; i < 4; i++ {
			node := i % 2
			e.Spawn(node, func(ctx api.Ctx) {
				for !ctx.Stopped() {
					for {
						old := ctx.RRead(w)
						if ctx.RCAS(w, old, old+1) == old {
							break
						}
					}
				}
			})
		}
		return e, w
	}

	ref, wRef := build()
	ref.Run(200_000)

	e, w := build()
	e.SetHorizon(200_000)
	steps := 0
	var lastPeek int64 = -1
	for e.HasPendingEvents() {
		at, ok := e.PeekNextEventTime()
		if !ok {
			t.Fatal("HasPendingEvents true but PeekNextEventTime not ok")
		}
		if at < lastPeek {
			t.Fatalf("event times regressed: %d after %d", at, lastPeek)
		}
		lastPeek = at
		if !e.ProcessNextEvent() {
			t.Fatal("ProcessNextEvent found no event despite pending")
		}
		steps++
	}
	if steps == 0 {
		t.Fatal("no events processed")
	}
	if e.Now() != ref.Now() {
		t.Fatalf("stepped Now=%d, Run Now=%d", e.Now(), ref.Now())
	}
	if e.Events() != ref.Events() {
		t.Fatalf("stepped events=%d, Run events=%d", e.Events(), ref.Events())
	}
	var got, want uint64
	e.Spawn(0, func(ctx api.Ctx) { got = ctx.Read(w) })
	ref.Spawn(0, func(ctx api.Ctx) { want = ctx.Read(wRef) })
	e.Run(1 << 41)
	ref.Run(1 << 41)
	if got != want {
		t.Fatalf("stepped counter=%d, Run counter=%d", got, want)
	}
}

func TestStepDrainsRun(t *testing.T) {
	p := model.Uniform(10)
	e := New(1, 1024, p, 1)
	var iters int
	e.Spawn(0, func(ctx api.Ctx) {
		for !ctx.Stopped() {
			ctx.Work(100 * time.Nanosecond)
			iters++
		}
	})
	e.SetHorizon(10_000)
	for e.Step() {
	}
	if e.HasPendingEvents() {
		t.Fatal("Step loop left pending events")
	}
	if iters < 90 || iters > 110 {
		t.Fatalf("iterations before stop = %d, want ~100", iters)
	}
}

func TestPartitionedRNGStreams(t *testing.T) {
	p := NewPartitionedRNG(7)
	// Same key: identical sequences.
	a, b := p.Stream(SubsystemThread, 3), p.Stream(SubsystemThread, 3)
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same key produced different streams")
		}
	}
	// Distinct keys (across subsystem or index or seed) must not collide.
	seeds := map[int64]string{}
	for _, tc := range []struct {
		name string
		seed int64
		sub  Subsystem
		idx  int
	}{
		{"t0", 7, SubsystemThread, 0},
		{"t1", 7, SubsystemThread, 1},
		{"f0", 7, SubsystemFabric, 0},
		{"f1", 7, SubsystemFabric, 1},
		{"s2-t0", 8, SubsystemThread, 0},
	} {
		s := NewPartitionedRNG(tc.seed).SeedFor(tc.sub, tc.idx)
		if prev, dup := seeds[s]; dup {
			t.Fatalf("seed collision between %s and %s", prev, tc.name)
		}
		seeds[s] = tc.name
	}
}

func TestVerbJitterDeterministic(t *testing.T) {
	p := model.Uniform(10)
	p.JitterProb = 0.3
	p.JitterNS = 1000
	run := func() int64 {
		e := New(2, 1024, p, 11)
		w := e.Space().AllocLine(1)
		var total int64
		e.Spawn(0, func(ctx api.Ctx) {
			t0 := ctx.Now()
			for i := 0; i < 100; i++ {
				ctx.RRead(w)
			}
			total = ctx.Now() - t0
		})
		e.Run(1 << 62)
		return total
	}
	if run() != run() {
		t.Fatal("jitter broke determinism")
	}
}
