package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestSuiteExpands(t *testing.T) {
	tiny, err := Suite("tiny")
	if err != nil {
		t.Fatal(err)
	}
	paper, err := Suite("paper")
	if err != nil {
		t.Fatal(err)
	}
	all, err := Suite("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(tiny) == 0 || len(paper) == 0 {
		t.Fatalf("empty suites: tiny=%d paper=%d", len(tiny), len(paper))
	}
	if len(all) != len(tiny)+len(paper) {
		t.Fatalf("all = %d, want tiny+paper = %d", len(all), len(tiny)+len(paper))
	}
	seen := map[string]bool{}
	for _, c := range all {
		if seen[c.Name] {
			t.Errorf("duplicate case name %q", c.Name)
		}
		seen[c.Name] = true
		if c.build == nil && c.cfg.Algorithm == "" {
			t.Errorf("case %q drives neither an engine nor a scenario config", c.Name)
		}
	}
	if _, err := Suite("nope"); err == nil {
		t.Error("unknown suite accepted")
	}
}

// TestMeasureEngineCase runs the event-dense microbenchmark once per
// engine and sanity-checks the metrics that BENCH_*.json reports: both
// variants process the identical schedule (same event count — the
// bit-identity guarantee shows up even in the bench layer), rates are
// populated, and the typed engine's steady-state allocation rate is
// near zero.
func TestMeasureEngineCase(t *testing.T) {
	cases, err := Suite("tiny")
	if err != nil {
		t.Fatal(err)
	}
	c := cases[0] // engine/work-loop
	typed, err := c.Measure(EngineTyped, 1)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := c.Measure(EngineOracle, 1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := c.Measure(EngineSharded, 1)
	if err != nil {
		t.Fatal(err)
	}
	if typed.Events == 0 || typed.EventsPerSec <= 0 || typed.NSPerEvent <= 0 {
		t.Fatalf("typed measurement not populated: %+v", typed)
	}
	if typed.Events != oracle.Events {
		t.Fatalf("engines diverged: typed %d events, oracle %d", typed.Events, oracle.Events)
	}
	if typed.Events != sharded.Events {
		t.Fatalf("engines diverged: typed %d events, sharded %d", typed.Events, sharded.Events)
	}
	if typed.AllocsPerEvent > 0.01 {
		t.Errorf("typed engine allocates %.4f/event in steady state, want ~0", typed.AllocsPerEvent)
	}
}

// TestMeasureScenarioCase runs one harness-backed case end to end.
func TestMeasureScenarioCase(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cases, err := Suite("tiny")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if c.build != nil {
			continue
		}
		m, err := c.Measure(EngineTyped, 1)
		if err != nil {
			t.Fatal(err)
		}
		if m.Events == 0 || m.Ops == 0 {
			t.Fatalf("%s: empty measurement %+v", c.Name, m)
		}
		return // one scenario case keeps the test cheap
	}
	t.Fatal("tiny suite has no scenario case")
}

func TestReportMarshals(t *testing.T) {
	rep := &Report{Schema: Schema, ID: "BENCH_TEST", Suite: "tiny", Reps: 1, Host: hostInfo()}
	rep.Cases = append(rep.Cases, Measurement{Name: "x", Engine: "typed", Events: 10})
	rep.Comparisons = append(rep.Comparisons, Comparison{Name: "x", Speedup: 1.5})
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || back.Cases[0].Name != "x" || back.Comparisons[0].Speedup != 1.5 {
		t.Fatalf("round trip mangled the report: %+v", back)
	}
}

func TestStartProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to write.
	s := 0
	for i := 0; i < 1_000_000; i++ {
		s += i
	}
	_ = s
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	// Both paths empty: a no-op stop.
	stop, err = StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
