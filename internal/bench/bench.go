// Package bench is the repo's standing performance-measurement layer. It
// defines a fixed suite of benchmark cases — raw-engine microbenchmarks
// that isolate the event loop, plus one representative configuration per
// scenario family — runs each case N times on both the production engine
// (typed 4-ary event heap, direct-handoff run loop) and the container/heap
// oracle, and reports events/sec, ns/event and allocs/event in a stable
// JSON schema (BENCH_*.json). cmd/bench is the CLI; perf PRs check the
// next trajectory file in so regressions are diffable in review.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"alock/internal/api"
	"alock/internal/harness"
	"alock/internal/model"
	"alock/internal/scenario"
	"alock/internal/sim"
)

// Schema identifies the report layout; bump on incompatible change.
const Schema = "alock-bench/v1"

// Case is one benchmark workload. Exactly one of engine/config drives it:
// an engine case builds a raw simulator and runs it to Horizon; a scenario
// case goes through harness.Run.
type Case struct {
	// Name is stable across trajectory files ("engine/..." for raw-engine
	// microbenchmarks, the scenario name for harness cases).
	Name string
	// Suite tags the case "tiny" or "paper"; -suite all runs both.
	Suite string

	build   func(oracle bool) *sim.Engine // engine cases
	horizon int64
	cfg     harness.Config // scenario cases (zero build)
}

// Measurement is one case × engine variant, aggregated over reps: rates
// from the fastest rep (least scheduler noise), allocations from the
// smallest rep (steady state).
type Measurement struct {
	Name           string  `json:"name"`
	Engine         string  `json:"engine"` // "typed" | "oracle"
	Reps           int     `json:"reps"`
	Events         uint64  `json:"events"`
	Ops            int64   `json:"ops,omitempty"`
	WallNS         int64   `json:"wall_ns"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NSPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// Comparison pairs the two engine variants of one case.
type Comparison struct {
	Name               string  `json:"name"`
	TypedEventsPerSec  float64 `json:"typed_events_per_sec"`
	OracleEventsPerSec float64 `json:"oracle_events_per_sec"`
	// Speedup is typed/oracle wall-clock rate: >1 means the typed engine
	// is faster.
	Speedup float64 `json:"speedup"`
}

// Host records where a trajectory file was produced.
type Host struct {
	Go         string `json:"go"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Report is the checked-in trajectory file (BENCH_NNNN.json).
type Report struct {
	Schema      string        `json:"schema"`
	ID          string        `json:"id"`
	Created     string        `json:"created"`
	Suite       string        `json:"suite"`
	Reps        int           `json:"reps"`
	Host        Host          `json:"host"`
	Cases       []Measurement `json:"cases"`
	Comparisons []Comparison  `json:"comparisons"`
}

// hostInfo captures the current process's runtime identity.
func hostInfo() Host {
	return Host{
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// contendedEngine builds the event-dense microbenchmark workload: threads
// on two nodes hammer one word with remote CAS retry loops, so the run is
// almost pure event-queue and handoff traffic.
func contendedEngine(threads int, oracle bool) *sim.Engine {
	var opts []sim.Option
	if oracle {
		opts = append(opts, sim.WithOracle())
	}
	e := sim.New(2, 1024, model.CX3(), 99, opts...)
	w := e.Space().AllocLine(0)
	for i := 0; i < threads; i++ {
		node := i % 2
		e.Spawn(node, func(ctx api.Ctx) {
			for !ctx.Stopped() {
				for {
					old := ctx.RRead(w)
					if ctx.RCAS(w, old, old+1) == old {
						break
					}
				}
				ctx.Work(50 * time.Nanosecond)
			}
		})
	}
	return e
}

// workLoopEngine is the pure scheduler-churn workload: compute-only
// threads whose every step is one schedule/pop/handoff cycle — the
// cleanest measurement of the event queue itself.
func workLoopEngine(threads int, oracle bool) *sim.Engine {
	var opts []sim.Option
	if oracle {
		opts = append(opts, sim.WithOracle())
	}
	e := sim.New(1, 1024, model.Uniform(10), 7, opts...)
	for i := 0; i < threads; i++ {
		e.Spawn(0, func(ctx api.Ctx) {
			for !ctx.Stopped() {
				ctx.Work(10 * time.Nanosecond)
			}
		})
	}
	return e
}

// familyReps maps each scenario family to its representative member; the
// suite runs the first config of each expansion.
var familyReps = []string{
	"paper/fig5-high-contention", // paper/: the event-densest figure sweep
	"hotkey-zipf",                // bare extensions
	"rw/mixed",                   // reader/writer family
	"lease/holders",              // lease extension
	"fail/timeout-recovery",      // failure/recovery extension
	"multi/two-lock",             // two-lock transactions
	"deadlock/dining",            // k-lock transaction policies
}

// Suite expands the standing case list for the given suite name ("tiny",
// "paper" or "all").
func Suite(name string) ([]Case, error) {
	var cases []Case
	tiny := name == "tiny" || name == "all"
	paper := name == "paper" || name == "all"
	if !tiny && !paper {
		return nil, fmt.Errorf("bench: unknown suite %q (want tiny, paper or all)", name)
	}
	if tiny {
		cases = append(cases,
			Case{Name: "engine/work-loop", Suite: "tiny", horizon: 2_000_000,
				build: func(o bool) *sim.Engine { return workLoopEngine(4, o) }},
			Case{Name: "engine/contended-rmw", Suite: "tiny", horizon: 4_000_000,
				build: func(o bool) *sim.Engine { return contendedEngine(4, o) }},
		)
		for _, name := range familyReps {
			sc, ok := scenario.Get(name)
			if !ok {
				return nil, fmt.Errorf("bench: scenario %q not registered", name)
			}
			cfgs := sc.Configs(harness.Scale{TestTiny: true})
			cases = append(cases, Case{Name: sc.Name + "@tiny", Suite: "tiny", cfg: cfgs[0]})
		}
	}
	if paper {
		cases = append(cases,
			Case{Name: "engine/work-loop@paper", Suite: "paper", horizon: 20_000_000,
				build: func(o bool) *sim.Engine { return workLoopEngine(8, o) }},
			Case{Name: "engine/contended-rmw@paper", Suite: "paper", horizon: 40_000_000,
				build: func(o bool) *sim.Engine { return contendedEngine(8, o) }},
		)
		for _, name := range familyReps {
			sc, ok := scenario.Get(name)
			if !ok {
				return nil, fmt.Errorf("bench: scenario %q not registered", name)
			}
			cfgs := sc.Configs(harness.Scale{})
			cases = append(cases, Case{Name: sc.Name + "@paper", Suite: "paper", cfg: cfgs[0]})
		}
	}
	return cases, nil
}

// runOnce executes one rep and returns (events, ops, wall, mallocs).
func (c Case) runOnce(oracle bool) (uint64, int64, time.Duration, uint64, error) {
	runtime.GC()
	var before, after runtime.MemStats
	if c.build != nil {
		e := c.build(oracle)
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		e.Run(c.horizon)
		wall := time.Since(t0)
		runtime.ReadMemStats(&after)
		return e.Events(), 0, wall, after.Mallocs - before.Mallocs, nil
	}
	cfg := c.cfg
	cfg.Oracle = oracle
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	res, err := harness.Run(cfg)
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("bench: %s: %w", c.Name, err)
	}
	return res.Events, res.Ops, wall, after.Mallocs - before.Mallocs, nil
}

// Measure runs the case `reps` times on one engine variant. Rates come
// from the fastest rep; the allocation figure from the rep with the
// fewest mallocs (later reps run with warmed allocator state, so the
// minimum is the steady-state answer).
func (c Case) Measure(oracle bool, reps int) (Measurement, error) {
	if reps < 1 {
		reps = 1
	}
	engine := "typed"
	if oracle {
		engine = "oracle"
	}
	m := Measurement{Name: c.Name, Engine: engine, Reps: reps}
	var bestWall time.Duration
	var minAllocs uint64
	for r := 0; r < reps; r++ {
		events, ops, wall, allocs, err := c.runOnce(oracle)
		if err != nil {
			return Measurement{}, err
		}
		if r == 0 || wall < bestWall {
			bestWall = wall
			m.Events, m.Ops, m.WallNS = events, ops, wall.Nanoseconds()
		}
		if r == 0 || allocs < minAllocs {
			minAllocs = allocs
		}
	}
	if m.WallNS > 0 && m.Events > 0 {
		m.EventsPerSec = float64(m.Events) / (float64(m.WallNS) / 1e9)
		m.NSPerEvent = float64(m.WallNS) / float64(m.Events)
	}
	if m.Events > 0 {
		m.AllocsPerEvent = float64(minAllocs) / float64(m.Events)
	}
	return m, nil
}

// Progress receives one line per finished measurement; nil is silent.
type Progress func(m Measurement)

// Run executes the whole suite: every case on both engines, paired into
// comparisons. The report's Created field is left for the caller to stamp
// (hermetic callers, like tests, can leave it empty).
func Run(suiteName, id string, reps int, progress Progress) (*Report, error) {
	cases, err := Suite(suiteName)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Schema: Schema, ID: id, Suite: suiteName, Reps: reps, Host: hostInfo(),
	}
	for _, c := range cases {
		typed, err := c.Measure(false, reps)
		if err != nil {
			return nil, err
		}
		if progress != nil {
			progress(typed)
		}
		oracle, err := c.Measure(true, reps)
		if err != nil {
			return nil, err
		}
		if progress != nil {
			progress(oracle)
		}
		rep.Cases = append(rep.Cases, typed, oracle)
		cmp := Comparison{
			Name:               c.Name,
			TypedEventsPerSec:  typed.EventsPerSec,
			OracleEventsPerSec: oracle.EventsPerSec,
		}
		if oracle.EventsPerSec > 0 {
			cmp.Speedup = typed.EventsPerSec / oracle.EventsPerSec
		}
		rep.Comparisons = append(rep.Comparisons, cmp)
	}
	return rep, nil
}
