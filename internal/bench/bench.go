// Package bench is the repo's standing performance-measurement layer. It
// defines a fixed suite of benchmark cases — raw-engine microbenchmarks
// that isolate the event loop, plus one representative configuration per
// scenario family — runs each case N times on three engine variants: the
// production engine (typed 4-ary event heap, direct-handoff run loop), the
// container/heap oracle, and the node-sharded engine under the conservative
// windowed parallel executor. It reports events/sec, ns/event and
// allocs/event in a stable JSON schema (BENCH_*.json). cmd/bench is the
// CLI; perf PRs check the next trajectory file in so regressions are
// diffable in review.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"alock/internal/api"
	"alock/internal/harness"
	"alock/internal/model"
	"alock/internal/scenario"
	"alock/internal/sim"
)

// Schema identifies the report layout; bump on incompatible change.
// v2 added the "sharded" engine variant and its comparison columns.
const Schema = "alock-bench/v2"

// Engine variant names.
const (
	EngineTyped   = "typed"   // typed 4-ary heap, direct handoff
	EngineOracle  = "oracle"  // container/heap reference, mediated loop
	EngineSharded = "sharded" // per-node queues, windowed parallel executor
)

// shardedWorkers is the worker count benchmarked for the sharded variant;
// the slot budget caps actual concurrency at GOMAXPROCS.
var shardedWorkers = 4

// SetShardedWorkers overrides the sharded variant's worker count (the
// cmd/bench -engine-shards flag). Results are bit-identical at any count;
// only throughput changes.
func SetShardedWorkers(n int) {
	if n > 0 {
		shardedWorkers = n
	}
}

// variantOpts translates an engine variant into simulator options.
func variantOpts(variant string) []sim.Option {
	switch variant {
	case EngineOracle:
		return []sim.Option{sim.WithOracle()}
	case EngineSharded:
		return []sim.Option{sim.WithShards(shardedWorkers)}
	default:
		return nil
	}
}

// Case is one benchmark workload. Exactly one of engine/config drives it:
// an engine case builds a raw simulator and runs it to Horizon; a scenario
// case goes through harness.Run.
type Case struct {
	// Name is stable across trajectory files ("engine/..." for raw-engine
	// microbenchmarks, the scenario name for harness cases).
	Name string
	// Suite tags the case "tiny" or "paper"; -suite all runs both.
	Suite string

	build   func(opts ...sim.Option) *sim.Engine // engine cases
	horizon int64
	cfg     harness.Config // scenario cases (zero build)
}

// Measurement is one case × engine variant, aggregated over reps: rates
// from the fastest rep (least scheduler noise), allocations from the
// smallest rep (steady state).
type Measurement struct {
	Name           string  `json:"name"`
	Engine         string  `json:"engine"` // "typed" | "oracle" | "sharded"
	Reps           int     `json:"reps"`
	Events         uint64  `json:"events"`
	Ops            int64   `json:"ops,omitempty"`
	WallNS         int64   `json:"wall_ns"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NSPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// Comparison pairs the engine variants of one case.
type Comparison struct {
	Name                string  `json:"name"`
	TypedEventsPerSec   float64 `json:"typed_events_per_sec"`
	OracleEventsPerSec  float64 `json:"oracle_events_per_sec"`
	ShardedEventsPerSec float64 `json:"sharded_events_per_sec"`
	// Speedup is typed/oracle wall-clock rate: >1 means the typed engine
	// is faster.
	Speedup float64 `json:"speedup"`
	// ShardedSpeedup is sharded/typed: >1 means the windowed parallel
	// executor beats the serial hot path (expect ~parity on one core).
	ShardedSpeedup float64 `json:"sharded_speedup"`
}

// Host records where a trajectory file was produced.
type Host struct {
	Go         string `json:"go"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Report is the checked-in trajectory file (BENCH_NNNN.json).
type Report struct {
	Schema      string        `json:"schema"`
	ID          string        `json:"id"`
	Created     string        `json:"created"`
	Suite       string        `json:"suite"`
	Reps        int           `json:"reps"`
	Host        Host          `json:"host"`
	Cases       []Measurement `json:"cases"`
	Comparisons []Comparison  `json:"comparisons"`
}

// hostInfo captures the current process's runtime identity.
func hostInfo() Host {
	return Host{
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// contendedEngine builds the event-dense microbenchmark workload: threads
// on two nodes hammer one word with remote CAS retry loops, so the run is
// almost pure event-queue and handoff traffic.
func contendedEngine(threads int, opts ...sim.Option) *sim.Engine {
	e := sim.New(2, 1024, model.CX3(), 99, opts...)
	w := e.Space().AllocLine(0)
	for i := 0; i < threads; i++ {
		node := i % 2
		e.Spawn(node, func(ctx api.Ctx) {
			for !ctx.Stopped() {
				for {
					old := ctx.RRead(w)
					if ctx.RCAS(w, old, old+1) == old {
						break
					}
				}
				ctx.Work(50 * time.Nanosecond)
			}
		})
	}
	return e
}

// workLoopEngine is the pure scheduler-churn workload: compute-only
// threads whose every step is one schedule/pop/handoff cycle — the
// cleanest measurement of the event queue itself.
func workLoopEngine(threads int, opts ...sim.Option) *sim.Engine {
	e := sim.New(1, 1024, model.Uniform(10), 7, opts...)
	for i := 0; i < threads; i++ {
		e.Spawn(0, func(ctx api.Ctx) {
			for !ctx.Stopped() {
				ctx.Work(10 * time.Nanosecond)
			}
		})
	}
	return e
}

// familyReps maps each scenario family to its representative member; the
// suite runs the first config of each expansion.
var familyReps = []string{
	"paper/fig5-high-contention", // paper/: the event-densest figure sweep
	"hotkey-zipf",                // bare extensions
	"rw/mixed",                   // reader/writer family
	"lease/holders",              // lease extension
	"fail/timeout-recovery",      // failure/recovery extension
	"multi/two-lock",             // two-lock transactions
	"deadlock/dining",            // k-lock transaction policies
	"svc/open-loop",              // sharded lock service, open-loop arrivals
}

// Suite expands the standing case list for the given suite name ("tiny",
// "paper" or "all").
func Suite(name string) ([]Case, error) {
	var cases []Case
	tiny := name == "tiny" || name == "all"
	paper := name == "paper" || name == "all"
	if !tiny && !paper {
		return nil, fmt.Errorf("bench: unknown suite %q (want tiny, paper or all)", name)
	}
	if tiny {
		cases = append(cases,
			Case{Name: "engine/work-loop", Suite: "tiny", horizon: 2_000_000,
				build: func(o ...sim.Option) *sim.Engine { return workLoopEngine(4, o...) }},
			Case{Name: "engine/contended-rmw", Suite: "tiny", horizon: 4_000_000,
				build: func(o ...sim.Option) *sim.Engine { return contendedEngine(4, o...) }},
		)
		for _, name := range familyReps {
			sc, ok := scenario.Get(name)
			if !ok {
				return nil, fmt.Errorf("bench: scenario %q not registered", name)
			}
			cfgs := sc.Configs(harness.Scale{TestTiny: true})
			cases = append(cases, Case{Name: sc.Name + "@tiny", Suite: "tiny", cfg: cfgs[0]})
		}
	}
	if paper {
		cases = append(cases,
			Case{Name: "engine/work-loop@paper", Suite: "paper", horizon: 20_000_000,
				build: func(o ...sim.Option) *sim.Engine { return workLoopEngine(8, o...) }},
			Case{Name: "engine/contended-rmw@paper", Suite: "paper", horizon: 40_000_000,
				build: func(o ...sim.Option) *sim.Engine { return contendedEngine(8, o...) }},
		)
		for _, name := range familyReps {
			sc, ok := scenario.Get(name)
			if !ok {
				return nil, fmt.Errorf("bench: scenario %q not registered", name)
			}
			cfgs := sc.Configs(harness.Scale{})
			cases = append(cases, Case{Name: sc.Name + "@paper", Suite: "paper", cfg: cfgs[0]})
		}
	}
	return cases, nil
}

// runOnce executes one rep and returns (events, ops, wall, mallocs).
func (c Case) runOnce(variant string) (uint64, int64, time.Duration, uint64, error) {
	runtime.GC()
	var before, after runtime.MemStats
	if c.build != nil {
		e := c.build(variantOpts(variant)...)
		runtime.ReadMemStats(&before)
		t0 := time.Now() //lint:allow detrand benchmark harness: measuring real wall time is its job
		e.Run(c.horizon)
		wall := time.Since(t0) //lint:allow detrand benchmark harness: measuring real wall time is its job
		runtime.ReadMemStats(&after)
		return e.Events(), 0, wall, after.Mallocs - before.Mallocs, nil
	}
	cfg := c.cfg
	switch variant {
	case EngineOracle:
		cfg.Oracle = true
	case EngineSharded:
		// Scenario configs with TargetOps degrade to sharded-serial inside
		// the harness; the measurement is still the sharded code path.
		cfg.EngineShards = shardedWorkers
	}
	runtime.ReadMemStats(&before)
	t0 := time.Now() //lint:allow detrand benchmark harness: measuring real wall time is its job
	res, err := harness.Run(cfg)
	wall := time.Since(t0) //lint:allow detrand benchmark harness: measuring real wall time is its job
	runtime.ReadMemStats(&after)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("bench: %s: %w", c.Name, err)
	}
	return res.Events, res.Ops, wall, after.Mallocs - before.Mallocs, nil
}

// Measure runs the case `reps` times on one engine variant. Rates come
// from the fastest rep; the allocation figure from the rep with the
// fewest mallocs (later reps run with warmed allocator state, so the
// minimum is the steady-state answer).
func (c Case) Measure(variant string, reps int) (Measurement, error) {
	if reps < 1 {
		reps = 1
	}
	m := Measurement{Name: c.Name, Engine: variant, Reps: reps}
	var bestWall time.Duration
	var minAllocs uint64
	for r := 0; r < reps; r++ {
		events, ops, wall, allocs, err := c.runOnce(variant)
		if err != nil {
			return Measurement{}, err
		}
		if r == 0 || wall < bestWall {
			bestWall = wall
			m.Events, m.Ops, m.WallNS = events, ops, wall.Nanoseconds()
		}
		if r == 0 || allocs < minAllocs {
			minAllocs = allocs
		}
	}
	if m.WallNS > 0 && m.Events > 0 {
		m.EventsPerSec = float64(m.Events) / (float64(m.WallNS) / 1e9)
		m.NSPerEvent = float64(m.WallNS) / float64(m.Events)
	}
	if m.Events > 0 {
		m.AllocsPerEvent = float64(minAllocs) / float64(m.Events)
	}
	return m, nil
}

// Progress receives one line per finished measurement; nil is silent.
type Progress func(m Measurement)

// Run executes the whole suite: every case on all three engine variants,
// paired into comparisons. The report's Created field is left for the
// caller to stamp (hermetic callers, like tests, can leave it empty).
func Run(suiteName, id string, reps int, progress Progress) (*Report, error) {
	cases, err := Suite(suiteName)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Schema: Schema, ID: id, Suite: suiteName, Reps: reps, Host: hostInfo(),
	}
	for _, c := range cases {
		var ms [3]Measurement
		for i, variant := range []string{EngineTyped, EngineOracle, EngineSharded} {
			m, err := c.Measure(variant, reps)
			if err != nil {
				return nil, err
			}
			if progress != nil {
				progress(m)
			}
			ms[i] = m
		}
		typed, oracle, sharded := ms[0], ms[1], ms[2]
		rep.Cases = append(rep.Cases, typed, oracle, sharded)
		cmp := Comparison{
			Name:                c.Name,
			TypedEventsPerSec:   typed.EventsPerSec,
			OracleEventsPerSec:  oracle.EventsPerSec,
			ShardedEventsPerSec: sharded.EventsPerSec,
		}
		if oracle.EventsPerSec > 0 {
			cmp.Speedup = typed.EventsPerSec / oracle.EventsPerSec
		}
		if typed.EventsPerSec > 0 {
			cmp.ShardedSpeedup = sharded.EventsPerSec / typed.EventsPerSec
		}
		rep.Comparisons = append(rep.Comparisons, cmp)
	}
	return rep, nil
}
