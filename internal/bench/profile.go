package bench

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles turns on CPU and/or heap profiling (either path may be
// empty) and returns a stop function that finishes both profiles. Every
// profiling CLI in the repo (cmd/bench, cmd/alockbench) goes through this
// helper so the flags behave identically: the CPU profile covers start to
// stop, the heap profile is a post-GC snapshot taken at stop.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("bench: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("bench: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("bench: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("bench: create mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // report live objects, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("bench: write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
