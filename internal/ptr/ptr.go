// Package ptr implements the 64-bit RDMA pointer representation used
// throughout the ALock system.
//
// Following Section 6 of the paper, an rdma_ptr is a compact 8-byte value
// that is friendly to RDMA atomic operations: the first (most significant)
// 4 bits embed the ID of the node where the referenced memory resides, and
// the remaining 60 bits hold the word offset of the object within that
// node's RDMA-accessible region.
//
// A Ptr is an opaque value; use Pack to build one and NodeID/Offset to
// destructure it. The zero Ptr is the distinguished Null pointer (node 0,
// offset 0); by convention the first word of every node's region is reserved
// so that no allocated object ever has offset 0, which keeps Null
// unambiguous.
package ptr

import (
	"fmt"
)

// Ptr is an RDMA pointer: 4 bits of node ID followed by 60 bits of offset.
// It is represented as a plain uint64 so that it can be stored in — and
// atomically swapped through — a single RDMA-accessible word.
type Ptr uint64

// Layout constants for the node/offset split.
const (
	// NodeBits is the number of high-order bits reserved for the node ID.
	NodeBits = 4
	// OffsetBits is the number of low-order bits holding the word offset.
	OffsetBits = 64 - NodeBits

	// MaxNodes is the number of distinct nodes addressable by a Ptr.
	MaxNodes = 1 << NodeBits // 16
	// MaxOffset is the largest representable offset.
	MaxOffset = (uint64(1) << OffsetBits) - 1

	nodeShift  = OffsetBits
	offsetMask = MaxOffset
)

// Null is the distinguished nil RDMA pointer.
const Null Ptr = 0

// Pack builds a Ptr from a node ID and a word offset.
// It panics if node or offset are out of range; both conditions indicate a
// programming error in the allocator layer, never a data-dependent failure.
func Pack(node int, offset uint64) Ptr {
	if node < 0 || node >= MaxNodes {
		panic(fmt.Sprintf("ptr: node %d out of range [0,%d)", node, MaxNodes))
	}
	if offset > MaxOffset {
		panic(fmt.Sprintf("ptr: offset %#x exceeds %d bits", offset, OffsetBits))
	}
	return Ptr(uint64(node)<<nodeShift | offset)
}

// NodeID returns the ID of the node on which the referenced memory resides.
func (p Ptr) NodeID() int { return int(uint64(p) >> nodeShift) }

// Offset returns the word offset of the referenced memory within its node's
// RDMA-accessible region.
func (p Ptr) Offset() uint64 { return uint64(p) & offsetMask }

// IsNull reports whether p is the Null pointer.
func (p Ptr) IsNull() bool { return p == Null }

// Add returns a Ptr referencing the word `words` past p on the same node.
// It panics on offset overflow.
func (p Ptr) Add(words uint64) Ptr {
	off := p.Offset() + words
	if off > MaxOffset || off < p.Offset() {
		panic(fmt.Sprintf("ptr: Add overflows offset (%#x + %d)", p.Offset(), words))
	}
	return Pack(p.NodeID(), off)
}

// Word returns the raw uint64 representation, suitable for storing the
// pointer itself into an RDMA-accessible word (e.g. an MCS queue tail).
func (p Ptr) Word() uint64 { return uint64(p) }

// FromWord reinterprets a raw word as a Ptr. It is the inverse of Word.
func FromWord(w uint64) Ptr { return Ptr(w) }

// String renders the pointer as n<node>+0x<offset>, or "null".
func (p Ptr) String() string {
	if p.IsNull() {
		return "null"
	}
	return fmt.Sprintf("n%d+%#x", p.NodeID(), p.Offset())
}
