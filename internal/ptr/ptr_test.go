package ptr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackRoundTrip(t *testing.T) {
	cases := []struct {
		node   int
		offset uint64
	}{
		{0, 0},
		{0, 1},
		{1, 0},
		{15, MaxOffset},
		{7, 0xdeadbeef},
		{3, 1 << 40},
	}
	for _, c := range cases {
		p := Pack(c.node, c.offset)
		if got := p.NodeID(); got != c.node {
			t.Errorf("Pack(%d,%#x).NodeID() = %d", c.node, c.offset, got)
		}
		if got := p.Offset(); got != c.offset {
			t.Errorf("Pack(%d,%#x).Offset() = %#x", c.node, c.offset, got)
		}
	}
}

func TestNullProperties(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null.IsNull() = false")
	}
	if Null.NodeID() != 0 || Null.Offset() != 0 {
		t.Fatalf("Null decomposes to (%d,%d), want (0,0)", Null.NodeID(), Null.Offset())
	}
	if Pack(0, 0) != Null {
		t.Fatal("Pack(0,0) != Null")
	}
	if Pack(0, 1).IsNull() {
		t.Fatal("Pack(0,1) reported null")
	}
	if Pack(1, 0).IsNull() {
		t.Fatal("Pack(1,0) reported null")
	}
}

func TestWordRoundTrip(t *testing.T) {
	p := Pack(9, 0x123456)
	if FromWord(p.Word()) != p {
		t.Fatalf("FromWord(Word()) = %v, want %v", FromWord(p.Word()), p)
	}
}

func TestAdd(t *testing.T) {
	p := Pack(5, 100)
	q := p.Add(28)
	if q.NodeID() != 5 || q.Offset() != 128 {
		t.Fatalf("Add(28) = %v", q)
	}
	if p.Offset() != 100 {
		t.Fatal("Add mutated receiver")
	}
}

func TestPackPanicsOnBadNode(t *testing.T) {
	for _, node := range []int{-1, MaxNodes, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pack(%d, 0) did not panic", node)
				}
			}()
			Pack(node, 0)
		}()
	}
}

func TestPackPanicsOnBadOffset(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pack(0, MaxOffset+1) did not panic")
		}
	}()
	Pack(0, MaxOffset+1)
}

func TestAddPanicsOnOverflow(t *testing.T) {
	p := Pack(2, MaxOffset-1)
	defer func() {
		if recover() == nil {
			t.Error("Add past MaxOffset did not panic")
		}
	}()
	p.Add(2)
}

func TestString(t *testing.T) {
	if got := Null.String(); got != "null" {
		t.Errorf("Null.String() = %q", got)
	}
	if got := Pack(3, 0x40).String(); got != "n3+0x40" {
		t.Errorf("String() = %q", got)
	}
}

// Property: encode/decode round-trips for all valid (node, offset) pairs.
func TestQuickRoundTrip(t *testing.T) {
	f := func(rawNode uint8, rawOff uint64) bool {
		node := int(rawNode) % MaxNodes
		off := rawOff & MaxOffset
		p := Pack(node, off)
		return p.NodeID() == node && p.Offset() == off && FromWord(p.Word()) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: distinct (node, offset) pairs give distinct pointers (Pack is
// injective on its valid domain).
func TestQuickInjective(t *testing.T) {
	f := func(n1, n2 uint8, o1, o2 uint64) bool {
		a := Pack(int(n1)%MaxNodes, o1&MaxOffset)
		b := Pack(int(n2)%MaxNodes, o2&MaxOffset)
		same := int(n1)%MaxNodes == int(n2)%MaxNodes && o1&MaxOffset == o2&MaxOffset
		return (a == b) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: NodeID is always in range regardless of the raw word.
func TestQuickFromWordNodeRange(t *testing.T) {
	f := func(w uint64) bool {
		p := FromWord(w)
		return p.NodeID() >= 0 && p.NodeID() < MaxNodes && p.Offset() <= MaxOffset
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPack(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	nodes := make([]int, 1024)
	offs := make([]uint64, 1024)
	for i := range nodes {
		nodes[i] = r.Intn(MaxNodes)
		offs[i] = r.Uint64() & MaxOffset
	}
	b.ResetTimer()
	var sink Ptr
	for i := 0; i < b.N; i++ {
		sink = Pack(nodes[i&1023], offs[i&1023])
	}
	_ = sink
}
