// Package scenario is a registry of named, self-describing experiment
// scenarios. A scenario expands to a slice of harness configurations —
// anything from one run to a full paper-figure grid — which the sweep
// runner executes in parallel. Scenarios make workloads first-class: the
// CLIs list them by name (`-list-scenarios`), papers' sweeps and
// extensions beyond the paper live side by side, and a new workload shape
// is one Register call away.
package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"alock/internal/harness"
)

// Scenario is one named experiment family.
type Scenario struct {
	// Name identifies the scenario; paper reproductions are namespaced
	// "paper/...", extensions are bare or grouped (rw/..., fail/...).
	Name string
	// Description is a one-line summary for -list-scenarios.
	Description string
	// Expand produces the scenario's configuration grid at the given
	// scale. Expansion is pure: same scale, same configs.
	Expand func(s harness.Scale) []harness.Config
	// Scale, when non-nil, rewrites the global scale before Expand runs —
	// per-scenario thread lists, horizons or op targets via the override
	// fields of harness.Scale. Heavyweight scenarios use it to decouple
	// from the presets; TestTiny still wins so smoke tests stay tiny.
	// Callers go through Configs, which applies it.
	Scale func(s harness.Scale) harness.Scale
}

// Configs expands the scenario at the given scale with its per-scenario
// scale override applied. Every runner (CLIs, tests) should use this, not
// Expand directly, or override-bearing scenarios run at the wrong scale.
func (sc Scenario) Configs(s harness.Scale) []harness.Config {
	if sc.Scale != nil {
		s = sc.Scale(s)
	}
	return sc.Expand(s)
}

var (
	mu       sync.RWMutex
	registry = map[string]Scenario{}
)

// Register adds a scenario to the registry; it panics on a duplicate or
// unnamed scenario (registration is programmer intent, not user input).
func Register(sc Scenario) {
	if sc.Name == "" || sc.Expand == nil {
		panic("scenario: Register needs a name and an Expand func")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[sc.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", sc.Name))
	}
	registry[sc.Name] = sc
}

// Get looks a scenario up by name.
func Get(name string) (Scenario, bool) {
	mu.RLock()
	defer mu.RUnlock()
	sc, ok := registry[name]
	return sc, ok
}

// Names returns every registered scenario name, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns every registered scenario, sorted by name. It iterates the
// registry by sorted key (not map order) so the traversal itself is
// deterministic, as the maporder analyzer requires.
func All() []Scenario {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Scenario, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// ByPrefix returns every registered scenario whose name starts with one of
// the given prefixes, sorted by name. The reader/writer figure driver uses
// it to sweep whole families (rw/, lease/, fail/) without naming each
// member.
func ByPrefix(prefixes ...string) []Scenario {
	var out []Scenario
	for _, sc := range All() {
		for _, p := range prefixes {
			if strings.HasPrefix(sc.Name, p) {
				out = append(out, sc)
				break
			}
		}
	}
	return out
}

// RWFigureGroups expands the reader/writer figure's scenario families —
// rw/*, lease/*, fail/*, multi/*, deadlock/* and svc/* — into named config
// groups at the given scale, ready for harness.FigureRW.
func RWFigureGroups(s harness.Scale) []harness.RWSweepGroup {
	var groups []harness.RWSweepGroup
	for _, sc := range ByPrefix("rw/", "lease/", "fail/", "multi/", "deadlock/", "svc/") {
		groups = append(groups, harness.RWSweepGroup{
			Name:    sc.Name,
			Configs: sc.Configs(s),
		})
	}
	return groups
}
