package scenario

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"alock/internal/harness"
	"alock/internal/sweep"
)

func TestRegistryLookup(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("only %d scenarios registered: %v", len(names), names)
	}
	for _, want := range []string{
		"paper/fig1-loopback",
		"paper/fig5-high-contention",
		"paper/fig6-latency",
		"hotkey-zipf",
		"bursty-arrivals",
		"skewed-home",
	} {
		if _, ok := Get(want); !ok {
			t.Errorf("scenario %q not registered", want)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Error("bogus name resolved")
	}
}

func TestAllSortedAndDescribed(t *testing.T) {
	all := All()
	for i, sc := range all {
		if sc.Description == "" {
			t.Errorf("%s has no description", sc.Name)
		}
		if i > 0 && all[i-1].Name >= sc.Name {
			t.Errorf("All() not sorted: %q before %q", all[i-1].Name, sc.Name)
		}
	}
}

func TestExpansionsAreValidAndPure(t *testing.T) {
	s := harness.Scale{TestTiny: true}
	for _, sc := range All() {
		cfgs := sc.Configs(s)
		if len(cfgs) == 0 {
			t.Errorf("%s expands to nothing", sc.Name)
			continue
		}
		again := sc.Configs(s)
		if len(again) != len(cfgs) {
			t.Errorf("%s: expansion not pure (%d vs %d configs)", sc.Name, len(cfgs), len(again))
		}
		for i, c := range cfgs {
			if c != again[i] {
				t.Errorf("%s: config %d differs between expansions", sc.Name, i)
				break
			}
		}
	}
}

func TestPerScenarioScaleOverrides(t *testing.T) {
	sc, ok := Get("lease/holders")
	if !ok {
		t.Fatal("lease/holders not registered")
	}
	// At full scale the override pins the thread list and stretches the
	// measurement window.
	cfgs := sc.Configs(harness.Scale{})
	if len(cfgs) == 0 {
		t.Fatal("no configs")
	}
	threads := map[int]bool{}
	for _, c := range cfgs {
		threads[c.ThreadsPerNode] = true
		if c.MeasureNS != 8_000_000 {
			t.Fatalf("override horizon not applied: measure=%d", c.MeasureNS)
		}
	}
	for _, want := range []int{2, 4, 8} {
		if !threads[want] {
			t.Errorf("override thread list missing %d (got %v)", want, threads)
		}
	}
	if threads[12] {
		t.Error("full-scale preset thread count leaked past the override")
	}
	// TestTiny must win over the override so smoke tests stay tiny.
	for _, c := range sc.Configs(harness.Scale{TestTiny: true}) {
		if c.ThreadsPerNode != 2 || c.MeasureNS != 250_000 {
			t.Fatalf("TestTiny lost to scenario override: threads=%d measure=%d",
				c.ThreadsPerNode, c.MeasureNS)
		}
	}
}

func TestRWAndFailureScenariosRegistered(t *testing.T) {
	for _, want := range []string{
		"rw/read-heavy", "rw/mixed", "rw/queue-scaling", "rw/storm-tails",
		"lease/holders", "lease/rw-leases",
		"fail/jitter-storm", "fail/jitter-recovery",
	} {
		sc, ok := Get(want)
		if !ok {
			t.Errorf("scenario %q not registered", want)
			continue
		}
		if len(sc.Configs(harness.Scale{TestTiny: true})) == 0 {
			t.Errorf("%s expands to nothing", want)
		}
	}
	// The RW scenarios must actually set a read share, the jitter
	// scenarios a jitter model.
	rw, _ := Get("rw/read-heavy")
	for _, c := range rw.Configs(harness.Scale{TestTiny: true}) {
		if c.ReadPct != 95 {
			t.Errorf("rw/read-heavy config has ReadPct=%d", c.ReadPct)
		}
	}
	storm, _ := Get("fail/jitter-storm")
	for _, c := range storm.Configs(harness.Scale{TestTiny: true}) {
		if c.Model.JitterProb == 0 || c.Model.JitterNS == 0 {
			t.Error("fail/jitter-storm config has no jitter model")
		}
	}
}

func TestByPrefixAndRWFigureGroups(t *testing.T) {
	fams := ByPrefix("rw/", "lease/", "fail/", "multi/", "deadlock/", "svc/")
	if len(fams) < 19 {
		t.Fatalf("only %d scenarios in the RW figure families", len(fams))
	}
	for _, sc := range fams {
		if !strings.HasPrefix(sc.Name, "rw/") && !strings.HasPrefix(sc.Name, "lease/") &&
			!strings.HasPrefix(sc.Name, "fail/") && !strings.HasPrefix(sc.Name, "multi/") &&
			!strings.HasPrefix(sc.Name, "deadlock/") && !strings.HasPrefix(sc.Name, "svc/") {
			t.Errorf("ByPrefix leaked %q", sc.Name)
		}
	}
	if got := ByPrefix("paper/fig1"); len(got) != 1 || got[0].Name != "paper/fig1-loopback" {
		t.Errorf("ByPrefix(paper/fig1) = %v", got)
	}

	groups := RWFigureGroups(harness.Scale{TestTiny: true})
	if len(groups) != len(fams) {
		t.Fatalf("groups = %d, want %d", len(groups), len(fams))
	}
	for i, g := range groups {
		if g.Name != fams[i].Name {
			t.Errorf("group %d = %q, want %q", i, g.Name, fams[i].Name)
		}
		if len(g.Configs) == 0 {
			t.Errorf("group %q expands to nothing", g.Name)
		}
	}
}

func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	expectPanic := func(name string, sc Scenario) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(sc)
	}
	expectPanic("empty", Scenario{})
	expectPanic("duplicate", Scenario{
		Name:   "paper/fig1-loopback",
		Expand: func(harness.Scale) []harness.Config { return nil },
	})
}

// TestListingDeterministicallySorted pins the -list-scenarios contract:
// Names and All enumerate the registry in sorted order (maps iterate
// randomly; the sort is what makes CLI output and the figure groups
// reproducible run to run).
func TestListingDeterministicallySorted(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() has %d entries, Names() %d", len(all), len(names))
	}
	for i, sc := range all {
		if sc.Name != names[i] {
			t.Errorf("All()[%d] = %q, Names()[%d] = %q", i, sc.Name, i, names[i])
		}
	}
}

// TestTokenScenariosRegistered pins the failure/transaction catalog added
// with the acquisition-token API.
func TestTokenScenariosRegistered(t *testing.T) {
	ab, ok := Get("fail/abandoned-holder")
	if !ok {
		t.Fatal("fail/abandoned-holder not registered")
	}
	for _, c := range ab.Configs(harness.Scale{TestTiny: true}) {
		if c.AcquireTimeout <= 0 || c.AbandonProb <= 0 || c.AbandonHold <= 0 {
			t.Errorf("fail/abandoned-holder config missing failure knobs: %+v", c)
		}
	}
	to, ok := Get("fail/timeout-recovery")
	if !ok {
		t.Fatal("fail/timeout-recovery not registered")
	}
	timeouts := map[time.Duration]bool{}
	for _, c := range to.Configs(harness.Scale{TestTiny: true}) {
		if c.AcquireTimeout <= 0 {
			t.Errorf("fail/timeout-recovery config without deadline: %+v", c)
		}
		timeouts[c.AcquireTimeout] = true
	}
	if len(timeouts) != 3 {
		t.Errorf("fail/timeout-recovery sweeps %d deadlines, want 3", len(timeouts))
	}
	pair, ok := Get("multi/two-lock")
	if !ok {
		t.Fatal("multi/two-lock not registered")
	}
	for _, c := range pair.Configs(harness.Scale{TestTiny: true}) {
		if c.PairProb <= 0 {
			t.Errorf("multi/two-lock config without pair share: %+v", c)
		}
	}
}

// TestScenariosRunEndToEnd executes every scenario at smoke-test scale
// through the parallel sweep runner: the full scenario → sweep → engine →
// report path of the CLIs.
func TestScenariosRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := harness.Scale{TestTiny: true}
	for _, sc := range All() {
		sc := sc
		name := strings.ReplaceAll(sc.Name, "/", "_")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			results, err := sweep.Runner{Parallel: 2}.Run(sc.Configs(s))
			if err != nil {
				t.Fatalf("%s: %v", sc.Name, err)
			}
			for i, r := range results {
				if r.Ops == 0 {
					t.Errorf("%s: run %d recorded no operations", sc.Name, i)
				}
			}
		})
	}
}

// TestSvcDeterminism pins the lock-service layer's determinism contract
// at the widths CI drives: every svc/ scenario is bit-identical at sweep
// -parallel 1 vs 8, and at -engine-shards 1 vs 4. Open-loop arrivals are
// per-shard Poisson streams with shard-local Go state, so neither sweep
// concurrency nor the windowed parallel executor may change a byte.
func TestSvcDeterminism(t *testing.T) {
	s := harness.Scale{TestTiny: true}
	for _, sc := range ByPrefix("svc/") {
		sc := sc
		t.Run(strings.ReplaceAll(sc.Name, "/", "_"), func(t *testing.T) {
			t.Parallel()
			cfgs := sc.Configs(s)
			serial, err := sweep.Runner{Parallel: 1}.Run(cfgs)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := sweep.Runner{Parallel: 8}.Run(cfgs)
			if err != nil {
				t.Fatal(err)
			}
			sharded := make([]harness.Config, len(cfgs))
			for i, c := range cfgs {
				c.EngineShards = 4
				sharded[i] = c
			}
			shardedRes, err := sweep.Runner{Parallel: 8}.Run(sharded)
			if err != nil {
				t.Fatal(err)
			}
			var served int64
			for i := range cfgs {
				if !reflect.DeepEqual(serial[i], parallel[i]) {
					t.Errorf("config %d: -parallel 8 diverged from -parallel 1", i)
				}
				shardedRes[i].Config.EngineShards = 0
				if !reflect.DeepEqual(serial[i], shardedRes[i]) {
					t.Errorf("config %d: -engine-shards 4 diverged from serial engine", i)
				}
				if serial[i].Svc == nil {
					t.Fatalf("config %d: no service stats", i)
				}
				served += serial[i].Svc.Served
			}
			if served == 0 {
				t.Error("scenario served nothing — determinism check is vacuous")
			}
		})
	}
}

// TestDeadlockDiningParallelDeterminism: the transaction layer's RNG
// discipline (workload draws vs the backoff subsystem, the Go-side age
// registry) keeps runs independent seeded simulations — deadlock/dining
// results are bit-identical at -parallel 1 and -parallel 8.
func TestDeadlockDiningParallelDeterminism(t *testing.T) {
	sc, ok := Get("deadlock/dining")
	if !ok {
		t.Fatal("deadlock/dining not registered")
	}
	cfgs := sc.Configs(harness.Scale{TestTiny: true})
	serial, err := sweep.Runner{Parallel: 1}.Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sweep.Runner{Parallel: 8}.Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("config %d (%s %s): parallel diverged from serial",
				i, cfgs[i].Algorithm, cfgs[i].TxnPolicy)
		}
	}
	var commits int64
	for _, r := range serial {
		commits += r.TxnCommits
	}
	if commits == 0 {
		t.Error("dining sweep recorded no commits — determinism check is vacuous")
	}
}
