package scenario

import (
	"reflect"
	"strings"
	"testing"

	"alock/internal/harness"
	"alock/internal/sweep"
)

// TestTypedEngineMatchesOracleEveryScenario is the engine-swap acceptance
// gate: every registered scenario, expanded at smoke scale, must produce
// bit-identical results on all four engine configurations — the production
// engine (typed 4-ary event heap, direct-handoff run loop), the reference
// engine (container/heap, scheduler-mediated loop), the sharded engine with
// the serial merge scheduler (EngineShards=1), and the conservative windowed
// parallel executor (EngineShards=4). The typed runs go through the parallel
// sweep runner and the oracle runs serially, so the comparison also re-proves
// sweep determinism at any -parallel setting against independent engine
// implementations.
func TestTypedEngineMatchesOracleEveryScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := harness.Scale{TestTiny: true}
	variants := []struct {
		name     string
		parallel int
		mutate   func(*harness.Config)
	}{
		{"oracle", 1, func(c *harness.Config) { c.Oracle = true }},
		{"sharded-serial", 2, func(c *harness.Config) { c.EngineShards = 1 }},
		{"sharded-parallel", 2, func(c *harness.Config) { c.EngineShards = 4 }},
	}
	for _, sc := range All() {
		sc := sc
		name := strings.ReplaceAll(sc.Name, "/", "_")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfgs := sc.Configs(s)
			typed, err := sweep.Runner{Parallel: 4}.Run(cfgs)
			if err != nil {
				t.Fatalf("%s: %v", sc.Name, err)
			}
			for _, v := range variants {
				vcfgs := make([]harness.Config, len(cfgs))
				for i, c := range cfgs {
					v.mutate(&c)
					vcfgs[i] = c
				}
				got, err := sweep.Runner{Parallel: v.parallel}.Run(vcfgs)
				if err != nil {
					t.Fatalf("%s (%s): %v", sc.Name, v.name, err)
				}
				for i := range typed {
					// The engine-selection knobs are the one legitimate
					// difference; everything else must match bit for bit.
					g := got[i]
					g.Config.Oracle = false
					g.Config.EngineShards = 0
					if !reflect.DeepEqual(typed[i], g) {
						t.Errorf("%s: config %d (%s) diverged between typed and %s engines",
							sc.Name, i, cfgs[i].Algorithm, v.name)
					}
				}
			}
		})
	}
}
