package scenario

import (
	"reflect"
	"strings"
	"testing"

	"alock/internal/harness"
	"alock/internal/sweep"
)

// TestTypedEngineMatchesOracleEveryScenario is the engine-swap acceptance
// gate: every registered scenario, expanded at smoke scale, must produce
// bit-identical results on the production engine (typed 4-ary event heap,
// direct-handoff run loop) and on the reference engine (container/heap,
// scheduler-mediated loop). The typed runs go through the parallel sweep
// runner and the oracle runs serially, so the comparison also re-proves
// sweep determinism at any -parallel setting against an independent
// engine implementation.
func TestTypedEngineMatchesOracleEveryScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := harness.Scale{TestTiny: true}
	for _, sc := range All() {
		sc := sc
		name := strings.ReplaceAll(sc.Name, "/", "_")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfgs := sc.Configs(s)
			typed, err := sweep.Runner{Parallel: 4}.Run(cfgs)
			if err != nil {
				t.Fatalf("%s: %v", sc.Name, err)
			}
			oracleCfgs := make([]harness.Config, len(cfgs))
			for i, c := range cfgs {
				c.Oracle = true
				oracleCfgs[i] = c
			}
			oracle, err := sweep.Runner{Parallel: 1}.Run(oracleCfgs)
			if err != nil {
				t.Fatalf("%s (oracle): %v", sc.Name, err)
			}
			for i := range typed {
				// The engine-selection flag is the one legitimate
				// difference; everything else must match bit for bit.
				o := oracle[i]
				o.Config.Oracle = false
				if !reflect.DeepEqual(typed[i], o) {
					t.Errorf("%s: config %d (%s) diverged between typed and oracle engines",
						sc.Name, i, cfgs[i].Algorithm)
				}
			}
		})
	}
}
